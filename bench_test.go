package bvap_test

// This file holds the benchmark harness for the paper's evaluation: one
// benchmark per table/figure of §8 (the corresponding exact-trace tables of
// §2–§3 are pinned by unit tests in the internal packages), plus throughput
// benchmarks of the library primitives. Custom metrics attach the
// experiment's headline numbers to the benchmark output, so
// `go test -bench .` regenerates the paper's results in one run;
// cmd/bvapbench prints the full tables.

import (
	"strings"
	"testing"

	"bvap"
	"bvap/internal/experiments"
)

// BenchmarkFig11Micro regenerates Fig. 11: BVAP vs CAMA on r·a{n} across
// repetition bounds and BV-activation ratios. The reported metrics are the
// large-bound (n=256, α=5%) normalized energy and compute density.
func BenchmarkFig11Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig11(experiments.Fig11Options{
			Ns:       []int{16, 64, 256},
			Alphas:   []float64{0.05, 0.20},
			InputLen: 8000,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.N == 256 && p.Alpha == 0.05 {
				b.ReportMetric(p.EnergyNorm, "energy/CAMA@n256")
				b.ReportMetric(p.DensityNorm, "density/CAMA@n256")
			}
		}
	}
}

// BenchmarkFig12CNT regenerates Fig. 12: BVAP vs CNT (CAMA + counters) vs
// CAMA on r·a{64}·b{m}.
func BenchmarkFig12CNT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig12(experiments.Fig12Options{
			Ms:       []int{64, 256, 512},
			InputLen: 8000,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.BVAPEnergyNorm, "BVAPenergy/CAMA@m512")
		b.ReportMetric(last.CNTEnergyNorm, "CNTenergy/CAMA@m512")
	}
}

// BenchmarkFig13DSE regenerates Fig. 13: the design space exploration over
// (bv_size, unfold_th) across the seven datasets, normalized to CAMA.
func BenchmarkFig13DSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13(experiments.DSEOptions{
			Sample:   40,
			InputLen: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Report the Snort sweet spot.
		bestFoM := 0.0
		for _, p := range points {
			if p.Dataset == "Snort" && (bestFoM == 0 || p.FoMNorm < bestFoM) {
				bestFoM = p.FoMNorm
			}
		}
		b.ReportMetric(bestFoM, "SnortFoM/CAMA")
	}
}

// BenchmarkTable5BestFoM regenerates Table 5: the best-FoM parameters per
// dataset, selected from the DSE.
func BenchmarkTable5BestFoM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13(experiments.DSEOptions{
			Sample:   40,
			InputLen: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		best := experiments.Table5(points)
		if len(best) != 7 {
			b.Fatalf("Table 5 rows = %d", len(best))
		}
		bv64 := 0
		for _, row := range best {
			if row.BVSize == 64 {
				bv64++
			}
		}
		b.ReportMetric(float64(bv64), "datasets-preferring-bv64")
	}
}

// BenchmarkFig14RealWorld regenerates Fig. 14 and the paper's headline
// summary: BVAP, BVAP-S, CAMA, eAP and CA across the seven real-world
// dataset profiles, normalized to CA.
func BenchmarkFig14RealWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(experiments.Fig14Options{
			Sample:   40,
			InputLen: 2048,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.Summarize(rows)
		b.ReportMetric(s.EnergyReductionVsCAMA*100, "%energy-saved-vs-CAMA")
		b.ReportMetric(s.EnergyReductionVsCA*100, "%energy-saved-vs-CA")
		b.ReportMetric(s.EnergyReductionVsEAP*100, "%energy-saved-vs-eAP")
		b.ReportMetric(s.FoMGainVsCAMA, "FoMx-vs-CAMA")
		b.ReportMetric(s.SEnergySaving*100, "%BVAP-S-energy-saving")
	}
}

// BenchmarkAblationDesignChoices quantifies the §3/§5/§6 design decisions
// (naïve PE array, routing strategy, event-driven clocking, virtual BV
// sizing) by disabling each in isolation on the Snort profile.
func BenchmarkAblationDesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation(experiments.AblationOptions{
			Sample:   40,
			InputLen: 2048,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Name {
			case "naive PE array (§3)":
				b.ReportMetric(r.AreaNorm, "naivePE-area-x")
			case "always-on BVM (§6)":
				b.ReportMetric(r.ThroughputNorm, "alwayson-throughput-x")
			}
		}
	}
}

// --- Library primitive benchmarks ---

func benchPatterns() []string {
	return []string{
		"ab{300}c",
		"attack[0-9a-f]{32}end",
		"x.{1000}y",
		`\d{3}-\d{4}`,
		"(ab|cd){12}",
	}
}

// BenchmarkCompile measures the full §7 pipeline: parse, rewrite, NBVA,
// AH transform, instruction selection, mapping, serialization.
func BenchmarkCompile(b *testing.B) {
	patterns := benchPatterns()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bvap.Compile(patterns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchThroughput measures functional AH-NBVA matching speed.
func BenchmarkMatchThroughput(b *testing.B) {
	engine := bvap.MustCompile(benchPatterns())
	input := []byte(strings.Repeat("attack0123456789abcdef x end ", 1000))
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Count(input)
	}
}

// BenchmarkBVAPCycleSim measures the cycle-accurate simulator's own speed
// (simulated symbols per second).
func BenchmarkBVAPCycleSim(b *testing.B) {
	engine := bvap.MustCompile(benchPatterns())
	input := []byte(strings.Repeat("background traffic with attack bits ", 500))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := engine.NewSimulator(bvap.ArchBVAP)
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(input)
		sim.Result()
	}
}

// BenchmarkBaselineCycleSim measures the unfolding-baseline simulator.
func BenchmarkBaselineCycleSim(b *testing.B) {
	patterns := benchPatterns()
	input := []byte(strings.Repeat("background traffic with attack bits ", 500))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := bvap.NewBaselineSimulator(bvap.ArchCAMA, patterns)
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(input)
		sim.Result()
	}
}

// BenchmarkStreamStep measures the per-byte streaming cost.
func BenchmarkStreamStep(b *testing.B) {
	engine := bvap.MustCompile(benchPatterns())
	s := engine.NewStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(byte('a' + i%26))
	}
}

// BenchmarkStride2Extension measures the Impala-style 2-stride extension:
// doubled symbol rate versus the automaton expansion it costs.
func BenchmarkStride2Extension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Stride2(experiments.Stride2Options{
			Sample:   25,
			InputLen: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		exp := 0.0
		for _, r := range rows {
			exp += r.Expansion
		}
		b.ReportMetric(exp/float64(len(rows)), "mean-state-expansion")
	}
}
