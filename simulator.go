package bvap

import (
	"fmt"
	"strings"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/faults"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
	"bvap/internal/profile"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// Architecture selects a modeled automata processor for simulation.
type Architecture int

const (
	// ArchBVAP is the paper's design: CAMA-style state matching and
	// transition plus the Bit Vector Module, event-driven.
	ArchBVAP Architecture = iota
	// ArchBVAPStreaming is the BVAP-S mode: constant throughput at a
	// lower clock and supply voltage for direct sensor streaming.
	ArchBVAPStreaming
	// ArchCAMA, ArchCA and ArchEAP are the unfolding baselines.
	ArchCAMA
	ArchCA
	ArchEAP
	// ArchCNT is CAMA extended with counter elements (the §8
	// micro-benchmark alternative).
	ArchCNT
)

func (a Architecture) String() string {
	switch a {
	case ArchBVAP:
		return "BVAP"
	case ArchBVAPStreaming:
		return "BVAP-S"
	case ArchCAMA:
		return "CAMA"
	case ArchCA:
		return "CA"
	case ArchEAP:
		return "eAP"
	case ArchCNT:
		return "CNT"
	}
	return fmt.Sprintf("Architecture(%d)", int(a))
}

// Architectures lists every modeled architecture in declaration order.
func Architectures() []Architecture {
	return []Architecture{ArchBVAP, ArchBVAPStreaming, ArchCAMA, ArchCA, ArchEAP, ArchCNT}
}

// ParseArchitecture parses an architecture name. It accepts the String()
// forms of every architecture case-insensitively, plus the aliases
// "bvaps", "bvap-streaming" and "streaming" for BVAP-S. It round-trips
// String(): for every Architecture a, ParseArchitecture(a.String()) == a.
func ParseArchitecture(name string) (Architecture, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "bvap":
		return ArchBVAP, nil
	case "bvap-s", "bvaps", "bvap-streaming", "streaming":
		return ArchBVAPStreaming, nil
	case "cama":
		return ArchCAMA, nil
	case "ca":
		return ArchCA, nil
	case "eap":
		return ArchEAP, nil
	case "cnt":
		return ArchCNT, nil
	}
	return 0, fmt.Errorf("bvap: unknown architecture %q (want BVAP, BVAP-S, CAMA, CA, eAP or CNT)", name)
}

func (a Architecture) internal() archmodel.Arch {
	switch a {
	case ArchBVAP:
		return archmodel.BVAP
	case ArchBVAPStreaming:
		return archmodel.BVAPS
	case ArchCAMA:
		return archmodel.CAMA
	case ArchCA:
		return archmodel.CA
	case ArchEAP:
		return archmodel.EAP
	case ArchCNT:
		return archmodel.CNT
	}
	panic("bvap: unknown architecture")
}

// Result is the outcome of one simulation run: raw counters plus the
// derived metrics of the paper's evaluation.
type Result struct {
	Architecture Architecture
	Symbols      uint64
	Cycles       uint64
	Matches      uint64
	StallCycles  uint64

	// EnergyPerSymbolNJ is nJ per input byte (lower is better).
	EnergyPerSymbolNJ float64
	// AreaMm2 is the modeled silicon area.
	AreaMm2 float64
	// ThroughputGbps is the sustained input bandwidth.
	ThroughputGbps float64
	// PowerW is the average power.
	PowerW float64
	// ComputeDensityGbpsPerMm2 is throughput per area.
	ComputeDensityGbpsPerMm2 float64
	// FoM is the paper's figure of merit, energy × area / throughput
	// (mJ·mm²/Gbps, lower is better).
	FoM float64
}

func resultFrom(a Architecture, s *hwsim.Stats) Result {
	p := metrics.FromStats(a.String(), s)
	return Result{
		Architecture:             a,
		Symbols:                  s.Symbols,
		Cycles:                   s.Cycles,
		Matches:                  s.Matches,
		StallCycles:              s.StallCycles,
		EnergyPerSymbolNJ:        p.EnergyPerSymbolNJ,
		AreaMm2:                  p.AreaMm2,
		ThroughputGbps:           p.ThroughputGbps,
		PowerW:                   p.PowerW,
		ComputeDensityGbpsPerMm2: p.ComputeDensity,
		FoM:                      p.FoM,
	}
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %.4f nJ/B, %.3f mm², %.2f Gbps, %.2f Gbps/mm², %d matches",
		r.Architecture, r.EnergyPerSymbolNJ, r.AreaMm2, r.ThroughputGbps,
		r.ComputeDensityGbpsPerMm2, r.Matches)
}

// Simulator replays an input stream on a modeled automata processor,
// accumulating cycle and energy statistics.
type Simulator struct {
	arch     Architecture
	eng      *Engine
	bvapSys  *hwsim.BVAPSystem
	baseSys  *hwsim.BaselineSystem
	finished bool

	// budget / symbolsRun implement the run-time symbol budget of
	// RunContext (see SetBudget in context.go).
	budget     Budget
	symbolsRun int64

	// inj is the attached fault injector (see faults.go).
	inj *faults.Injector

	// patterns backs Profile() for baseline simulators (engines carry
	// their configuration instead).
	patterns []string
}

// NewSimulator builds a cycle-accurate simulator for this engine's compiled
// configuration on BVAP or BVAP-S.
func (e *Engine) NewSimulator(arch Architecture) (*Simulator, error) {
	switch arch {
	case ArchBVAP, ArchBVAPStreaming:
	default:
		return nil, fmt.Errorf("bvap: engine simulators support BVAP and BVAP-S; use NewBaselineSimulator for %v", arch)
	}
	sys, err := hwsim.NewBVAPSystem(e.res.Config, arch == ArchBVAPStreaming)
	if err != nil {
		return nil, err
	}
	return &Simulator{arch: arch, eng: e, bvapSys: sys}, nil
}

// NewBaselineSimulator builds a simulator for one of the baseline
// architectures (CAMA, CA, eAP, CNT) over the same patterns. Baselines
// unfold bounded repetitions; patterns beyond the AP-style 4096-STE limit
// are skipped (and never match).
func NewBaselineSimulator(arch Architecture, patterns []string) (*Simulator, error) {
	var machines []compiler.BaselineMachine
	switch arch {
	case ArchCAMA, ArchCA, ArchEAP:
		machines = compiler.CompileBaseline(patterns)
	case ArchCNT:
		machines = compiler.CompileCNT(patterns)
	default:
		return nil, fmt.Errorf("bvap: %v is not a baseline architecture", arch)
	}
	sys, err := hwsim.NewBaselineSystem(arch.internal(), machines)
	if err != nil {
		return nil, err
	}
	return &Simulator{arch: arch, baseSys: sys, patterns: append([]string(nil), patterns...)}, nil
}

// SetSink attaches a raw per-stage instrumentation sink to the underlying
// hardware model (see hwsim.Sink). Pass nil to detach. The uninstrumented
// simulation path costs one nil check per step.
func (s *Simulator) SetSink(k hwsim.Sink) {
	if s.bvapSys != nil {
		s.bvapSys.SetSink(k)
	} else {
		s.baseSys.SetSink(k)
	}
}

// Profile builds an activity profiler for this simulator's compiled
// machines, attaches it as the sink, and returns it: per-tile occupancy
// and stall-cause heatmaps, hot-state ranking and per-pattern energy
// attribution accrue while the simulation runs. Profile replaces any
// previously attached sink; to combine a profiler with other sinks, build
// one with the profile package directly and attach hwsim.FanOut(...).
func (s *Simulator) Profile(opt profile.Options) *profile.Profiler {
	var p *profile.Profiler
	if s.bvapSys != nil {
		p = profile.New(s.eng.res.Config, opt)
	} else {
		p = profile.NewForPatterns(s.patterns, opt)
	}
	s.SetSink(p)
	return p
}

// Stats exposes the underlying hardware-model statistics (the attribution
// ground truth profile.Profiler.Attribute partitions). The returned Stats
// continue to accumulate if Run is called again; call Result first to fold
// in the terminal leakage and I/O charges.
func (s *Simulator) Stats() *hwsim.Stats {
	if s.bvapSys != nil {
		return s.bvapSys.Stats()
	}
	return s.baseSys.Stats()
}

// Instrument builds a TelemetrySink over reg, attaches it, and returns it:
// per-stage energy counters, per-array stall histograms, and step/cycle/
// match/occupancy series accrue on reg while the simulation runs.
func (s *Simulator) Instrument(reg *telemetry.Registry) *hwsim.TelemetrySink {
	k := hwsim.NewTelemetrySink(reg)
	s.SetSink(k)
	return k
}

// TraceEnergy attaches a fresh tracing.EnergySink and returns it: after
// Result() finalizes the run, sink.Finish(trace, sim.Stats()) records an
// exact per-stage energy partition (summing to Stats.TotalEnergyPJ()
// bit-for-bit) on a flight-recorder trace. Combine with hwsim.FanOut to
// keep another sink attached.
func (s *Simulator) TraceEnergy() *tracing.EnergySink {
	k := tracing.NewEnergySink()
	s.SetSink(k)
	return k
}

// Run processes input. It may be called multiple times; statistics
// accumulate.
func (s *Simulator) Run(input []byte) {
	if s.bvapSys != nil {
		s.bvapSys.Run(input)
	} else {
		s.baseSys.Run(input)
	}
}

// Result finalizes the run (charging leakage over the elapsed cycles) and
// returns the metrics. Further Run calls continue accumulating, but
// leakage is only charged once per Result call boundary.
func (s *Simulator) Result() Result {
	var st *hwsim.Stats
	if s.bvapSys != nil {
		if !s.finished {
			st = s.bvapSys.Finish()
		} else {
			st = s.bvapSys.Stats()
		}
	} else {
		if !s.finished {
			st = s.baseSys.Finish()
		} else {
			st = s.baseSys.Stats()
		}
	}
	s.finished = true
	return resultFrom(s.arch, st)
}

// Breakdown renders the per-component energy split of the run so far as an
// aligned text table.
func (s *Simulator) Breakdown() string {
	if s.bvapSys != nil {
		return s.bvapSys.Stats().Breakdown()
	}
	return s.baseSys.Stats().Breakdown()
}
