package bvap

import (
	"bvap/internal/datasets"
)

// Dataset is a synthetic stand-in for one of the paper's seven benchmark
// rule collections, generated deterministically from its published
// statistical profile (see internal/datasets for the calibration anchors).
type Dataset struct {
	profile datasets.Profile
}

// Datasets lists the seven benchmark datasets of the paper's evaluation:
// ClamAV, Prosite, RegexLib, Snort, SpamAssassin, Suricata, YARA.
func Datasets() []Dataset {
	ps := datasets.Profiles()
	out := make([]Dataset, len(ps))
	for i, p := range ps {
		out[i] = Dataset{profile: p}
	}
	return out
}

// DatasetByName looks a dataset up by (case-insensitive) name.
func DatasetByName(name string) (Dataset, error) {
	p, err := datasets.ByName(name)
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{profile: p}, nil
}

// Name returns the dataset's name.
func (d Dataset) Name() string { return d.profile.Name }

// Patterns generates n regexes from the dataset's profile (n ≤ 0 yields the
// full nominal collection). Generation is deterministic.
func (d Dataset) Patterns(n int) []string { return d.profile.Generate(n) }

// Input generates a corpus of length n with the dataset's symbol
// distribution and realistic (<10%) planted match rate for the given
// patterns.
func (d Dataset) Input(n int, patterns []string) []byte {
	return d.profile.Input(n, patterns)
}

// DatasetStats summarizes the counting structure of a pattern collection —
// the §1 motivation numbers.
type DatasetStats struct {
	Regexes        int
	WithCounting   int
	UnfoldedStates int
	CountingStates int
	MaxBound       int
}

// CountingRegexFraction is the share of regexes with bounded repetition
// (≈37% across the paper's combined collections).
func (s DatasetStats) CountingRegexFraction() float64 {
	if s.Regexes == 0 {
		return 0
	}
	return float64(s.WithCounting) / float64(s.Regexes)
}

// CountingStateFraction is the share of unfolded NFA states contributed by
// bounded repetitions (≈85% in the paper).
func (s DatasetStats) CountingStateFraction() float64 {
	if s.UnfoldedStates == 0 {
		return 0
	}
	return float64(s.CountingStates) / float64(s.UnfoldedStates)
}

// AnalyzePatterns computes DatasetStats over any pattern collection.
func AnalyzePatterns(patterns []string) DatasetStats {
	st := datasets.Analyze(patterns)
	return DatasetStats{
		Regexes:        st.Regexes,
		WithCounting:   st.WithCounting,
		UnfoldedStates: st.UnfoldedStates,
		CountingStates: st.CountingStates,
		MaxBound:       st.MaxBound,
	}
}
