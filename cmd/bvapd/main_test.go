package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bvap"
	"bvap/internal/cluster"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

func testDaemon(t *testing.T, patterns []string) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := tracing.NewRecorder(tracing.Config{Capacity: 16, PinCapacity: 4})
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		ScanTimeout:    time.Second,
		Metrics:        reg,
		FlightRecorder: rec,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return &daemon{
		svc: svc, reg: reg, rec: rec,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		maxBody: 1 << 20,
	}
}

func TestHandleScan(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c", "xy{3}z"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/scan", strings.NewReader("..abbc..xyyyz.."))
	d.handleScan(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp scanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 || len(resp.Matches) != 2 {
		t.Errorf("generation %d, %d matches; want 1 and 2: %+v", resp.Generation, len(resp.Matches), resp)
	}
}

func TestHandleScanNoMatchesIsEmptyArray(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("nothing here")))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"matches":[]`)) {
		t.Errorf("want empty matches array, got %s", rec.Body)
	}
}

func TestHandleScanBodyTooLarge(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	d.maxBody = 8
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("0123456789")))
	if rec.Code != 413 {
		t.Errorf("status %d, want 413", rec.Code)
	}
}

func TestHandleReloadSwapsAndRejects(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})

	rec := httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("# new set\ncd{3}e\nfg{2,4}h\n")))
	if rec.Code != 200 {
		t.Fatalf("reload status %d, body %s", rec.Code, rec.Body)
	}
	var resp reloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 || resp.Patterns != 2 {
		t.Errorf("generation %d patterns %d; want 2 and 2", resp.Generation, resp.Patterns)
	}

	// A bad set is rejected with a reload-phase kind and does not bump
	// the generation.
	rec = httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("a(b\n")))
	if rec.Code != 422 {
		t.Errorf("bad reload status %d, want 422", rec.Code)
	}
	var eresp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(eresp.Kind, "reload-") {
		t.Errorf("kind %q, want reload-<phase>", eresp.Kind)
	}
	if d.svc.Generation() != 2 {
		t.Errorf("generation %d after rejected reload, want 2", d.svc.Generation())
	}

	// An empty body never reaches the service.
	rec = httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("\n# only comments\n")))
	if rec.Code != 400 {
		t.Errorf("empty reload status %d, want 400", rec.Code)
	}
}

func TestHandleHealthzAndMetrics(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})

	rec := httptest.NewRecorder()
	d.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte(`"generation":1`)) {
		t.Errorf("healthz: status %d body %s", rec.Code, rec.Body)
	}

	// Scan once so the counters exist, then check the exposition.
	d.handleScan(httptest.NewRecorder(), httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))
	rec = httptest.NewRecorder()
	d.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte("bvap_serve_generation")) {
		t.Errorf("metrics: status %d missing bvap_serve_generation", rec.Code)
	}
}

func TestHandleScanReturnsTraceIDAndRecordsFlight(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("..abbc..")))
	if rec.Code != 200 {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp scanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 16 {
		t.Fatalf("trace_id %q, want 16 hex digits", resp.TraceID)
	}

	rec = httptest.NewRecorder()
	d.handleFlight(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("flight status %d", rec.Code)
	}
	var flight flightResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &flight); err != nil {
		t.Fatalf("flight dump not JSON: %v\n%s", err, rec.Body)
	}
	if flight.Capacity != 16 || flight.Recorded != 1 || len(flight.Recent) != 1 {
		t.Fatalf("flight = capacity %d recorded %d recent %d; want 16, 1, 1",
			flight.Capacity, flight.Recorded, len(flight.Recent))
	}
	tv := flight.Recent[0]
	if tv.TraceID != resp.TraceID {
		t.Errorf("flight trace id %q, want %q", tv.TraceID, resp.TraceID)
	}
	if tv.Name != "http.scan" || tv.Attrs["outcome"] != "ok" {
		t.Errorf("trace name %q attrs %v; want http.scan with outcome ok", tv.Name, tv.Attrs)
	}
	if len(tv.Spans) == 0 {
		t.Error("recorded trace has no spans; service stages were not instrumented")
	}
}

func TestHandleTraceEndpoint(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))
	var resp scanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	// handleTrace reads the {id} path value, so route through a mux.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/trace/{id}", d.handleTrace)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+resp.TraceID, nil))
	if rec.Code != 200 {
		t.Fatalf("trace status %d, body %s", rec.Code, rec.Body)
	}
	var tv tracing.TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &tv); err != nil {
		t.Fatal(err)
	}
	if tv.TraceID != resp.TraceID {
		t.Errorf("view trace id %q, want %q", tv.TraceID, resp.TraceID)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+resp.TraceID+"?format=chrome", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte("traceEvents")) {
		t.Errorf("chrome export: status %d body %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/not-hex", nil))
	if rec.Code != 400 {
		t.Errorf("bad id status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/00000000000000ff", nil))
	if rec.Code != 404 {
		t.Errorf("unknown id status %d, want 404", rec.Code)
	}
}

func TestHandleMetricsContentNegotiation(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	d.handleScan(httptest.NewRecorder(), httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))

	// Default scrape: classic Prometheus text, no OpenMetrics syntax.
	rec := httptest.NewRecorder()
	d.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.Contains(got, "0.0.4") {
		t.Errorf("default content type %q", got)
	}
	if bytes.Contains(rec.Body.Bytes(), []byte("# EOF")) {
		t.Error("classic exposition must not end with # EOF")
	}

	// OpenMetrics negotiation carries exemplars and the EOF terminator.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	d.handleMetrics(rec, req)
	if got := rec.Header().Get("Content-Type"); !strings.Contains(got, "openmetrics-text") {
		t.Errorf("negotiated content type %q", got)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}
	if !strings.Contains(body, `trace_id="`) {
		t.Error("OpenMetrics exposition missing trace_id exemplar on serve histograms")
	}
}

func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		for _, level := range []string{"debug", "info", "warn", "error"} {
			if _, err := newLogger(format, level); err != nil {
				t.Errorf("newLogger(%q, %q): %v", format, level, err)
			}
		}
	}
	if _, err := newLogger("xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := newLogger("json", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestParsePatterns(t *testing.T) {
	ps, err := parsePatterns("  a{2}b \n\n# comment\nc{3}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0] != "a{2}b" || ps[1] != "c{3}" {
		t.Errorf("parsePatterns = %q", ps)
	}
	if _, err := parsePatterns("# nothing\n"); err == nil {
		t.Error("all-comment input accepted")
	}
}

// testQuotaDaemon is testDaemon with a metered tenant quota layer.
func testQuotaDaemon(t *testing.T, patterns []string, quotas map[string]bvap.QuotaConfig) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := tracing.NewRecorder(tracing.Config{Capacity: 16, PinCapacity: 4})
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		ScanTimeout:    time.Second,
		TenantQuotas:   quotas,
		Metrics:        reg,
		FlightRecorder: rec,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return &daemon{
		svc: svc, reg: reg, rec: rec,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		maxBody: 1 << 20,
	}
}

func TestHandleScanTenantQuota(t *testing.T) {
	d := testQuotaDaemon(t, []string{"ab{2}c"}, map[string]bvap.QuotaConfig{
		"metered": {RatePerSec: 0.001, Burst: 2},
	})
	scan := func(tenant string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/scan", strings.NewReader("..abbc.."))
		if tenant != "" {
			req.Header.Set(cluster.TenantHeader, tenant)
		}
		d.handleScan(rec, req)
		return rec
	}
	if scan("metered").Code != 200 || scan("metered").Code != 200 {
		t.Fatal("metered tenant's burst refused")
	}
	rec := scan("metered")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota scan = %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 quota response missing Retry-After")
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Kind != "quota" {
		t.Errorf("error body kind = %q (%v), want quota", resp.Kind, err)
	}
	// Other tenants keep their own buckets.
	if scan("").Code != 200 || scan("neighbor").Code != 200 {
		t.Error("unmetered tenants refused; quota must be per tenant")
	}
}

// TestClusterSurfaceMounted wires the daemon mux the way run() does and
// drives a two-node coordinated publish plus a session migration through
// it — the bvapd-level integration of the fleet surface.
func TestClusterSurfaceMounted(t *testing.T) {
	newNode := func(id string) (*daemon, *httptest.Server) {
		d := testDaemon(t, []string{"ab{2}c"})
		d.node = cluster.NewNode(d.svc, cluster.NodeConfig{ID: id, Recorder: d.rec})
		t.Cleanup(func() { d.node.Close() })
		mux := http.NewServeMux()
		mux.HandleFunc("POST /scan", d.handleScan)
		mux.Handle("/cluster/", d.node.Handler())
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return d, srv
	}
	da, sa := newNode("a")
	db, sb := newNode("b")

	// Coordinator via the publish handler on node a.
	da.coord = cluster.NewCoordinator(cluster.NewClient(cluster.ClientConfig{}), []string{sa.URL, sb.URL})
	rec := httptest.NewRecorder()
	da.handlePublish(rec, httptest.NewRequest("POST", "/cluster/publish", strings.NewReader("ab{2}c\nc{3}\n")))
	if rec.Code != 200 {
		t.Fatalf("publish = %d: %s", rec.Code, rec.Body)
	}
	if da.svc.Generation() != 2 || db.svc.Generation() != 2 {
		t.Fatalf("generations %d/%d after publish, want 2/2", da.svc.Generation(), db.svc.Generation())
	}
	// Replaying the same body is idempotent (deterministic default ticket).
	rec = httptest.NewRecorder()
	da.handlePublish(rec, httptest.NewRequest("POST", "/cluster/publish", strings.NewReader("ab{2}c\nc{3}\n")))
	if rec.Code != 200 || da.svc.Generation() != 2 {
		t.Fatalf("replayed publish = %d, generation %d; want 200 and 2", rec.Code, da.svc.Generation())
	}

	// Session migration a → b through the mounted surface.
	client := cluster.NewClient(cluster.ClientConfig{})
	ctx := context.Background()
	if err := client.PostJSON(ctx, sa.URL, "/cluster/session/open",
		cluster.SessionOpenRequest{SessionID: "s1", Interval: 64}, nil); err != nil {
		t.Fatalf("open: %v", err)
	}
	var feed cluster.SessionResponse
	if err := client.PostJSON(ctx, sa.URL, "/cluster/session/feed",
		cluster.SessionFeedRequest{SessionID: "s1", Chunk: bytes.Repeat([]byte("xabbc"), 40)}, &feed); err != nil {
		t.Fatalf("feed: %v", err)
	}
	var ck cluster.SessionResponse
	if err := client.PostJSON(ctx, sa.URL, "/cluster/session/checkpoint",
		cluster.SessionRequest{SessionID: "s1"}, &ck); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	var res cluster.SessionResponse
	if err := client.PostJSON(ctx, sb.URL, "/cluster/session/resume",
		cluster.SessionResumeRequest{SessionID: "s1", Checkpoint: ck.Checkpoint}, &res); err != nil {
		t.Fatalf("resume on b: %v", err)
	}
	if res.Pos != ck.Pos || res.Pos != 200 {
		t.Fatalf("resumed at %d, checkpointed at %d; want 200", res.Pos, ck.Pos)
	}
	total := len(feed.Matches) + len(ck.Matches)
	if total != 40 {
		t.Fatalf("%d matches before migration, want 40", total)
	}
}

// TestNodeIDLabelsMetrics pins satellite behavior of -node-id: every
// exposed metric series carries node="...".
func TestNodeIDLabelsMetrics(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	d.nodeID = "node-7"
	d.handleScan(httptest.NewRecorder(), httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))

	rec := httptest.NewRecorder()
	d.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `node="node-7"`) {
		t.Fatalf("exposition missing node label:\n%s", body)
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, `node="node-7"`) {
			t.Fatalf("series without node label: %q", line)
		}
	}

	// The scan trace carries the node attribute into the flight recorder.
	traces := d.rec.Recent()
	if len(traces) != 1 || traces[0].View().Attrs["node"] != "node-7" {
		t.Fatalf("scan trace missing node attr: %+v", traces[0].View().Attrs)
	}
}

func TestNewSLOMonitorObjectives(t *testing.T) {
	reg := telemetry.NewRegistry()
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	if m := newSLOMonitor(config{}, reg, log); m.Objectives() != 0 {
		t.Fatalf("no targets configured, got %d objectives", m.Objectives())
	}
	cfg := config{sloAvailTarget: 0.999, sloLatencyTarget: 0.95, sloLatencyMS: 50}
	if m := newSLOMonitor(cfg, reg, log); m.Objectives() != 2 {
		t.Fatalf("both targets configured, got %d objectives", m.Objectives())
	}
}

// TestSLOMonitorFiresOnServeErrors drives the availability objective off
// the real serve metrics: healthy scans keep it quiet, a burst of scan
// failures fires it.
func TestSLOMonitorFiresOnServeErrors(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	mon := newSLOMonitor(config{
		sloAvailTarget: 0.999,
		sloFastWindow:  5 * time.Minute,
		sloSlowWindow:  time.Hour,
		sloBurn:        14.4,
	}, d.reg, slog.New(slog.NewTextHandler(io.Discard, nil)))

	now := time.Unix(1_700_000_000, 0)
	scanOK := func() {
		rec := httptest.NewRecorder()
		d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))
		if rec.Code != 200 {
			t.Fatalf("scan = %d", rec.Code)
		}
	}
	// Healthy hour.
	for i := 0; i < 60; i++ {
		scanOK()
		now = now.Add(time.Minute)
		mon.Observe(now)
	}
	if mon.Firing() {
		t.Fatal("healthy baseline fired")
	}

	// Inject a regression: a second service on the same registry whose
	// watchdog deadline is unmeetable, so every admitted scan lands in
	// bvap_serve_scans_total with a non-ok outcome — the counter the
	// availability objective watches. (Distinct inputs dodge the
	// quarantine breaker; the quarantine path stops counting.)
	bad, err := bvap.NewService([]string{"ab{2}c"}, &bvap.ServiceConfig{
		ScanTimeout:         time.Nanosecond,
		QuarantineThreshold: 1 << 30,
		Metrics:             d.reg,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer bad.Close()
	for i := 0; i < 40; i++ {
		input := []byte(fmt.Sprintf("abbc-%d", i))
		if _, err := bad.Scan(context.Background(), input); err == nil {
			t.Fatal("1ns-deadline scan succeeded")
		}
		now = now.Add(30 * time.Second)
		mon.Observe(now)
	}
	if !mon.Firing() {
		t.Fatalf("sustained failures did not fire: %+v", mon.Status(now))
	}
}
