package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bvap"
	"bvap/internal/telemetry"
)

func testDaemon(t *testing.T, patterns []string) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		ScanTimeout: time.Second,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return &daemon{svc: svc, reg: reg, maxBody: 1 << 20}
}

func TestHandleScan(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c", "xy{3}z"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/scan", strings.NewReader("..abbc..xyyyz.."))
	d.handleScan(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp scanResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 || len(resp.Matches) != 2 {
		t.Errorf("generation %d, %d matches; want 1 and 2: %+v", resp.Generation, len(resp.Matches), resp)
	}
}

func TestHandleScanNoMatchesIsEmptyArray(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("nothing here")))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"matches":[]`)) {
		t.Errorf("want empty matches array, got %s", rec.Body)
	}
}

func TestHandleScanBodyTooLarge(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})
	d.maxBody = 8
	rec := httptest.NewRecorder()
	d.handleScan(rec, httptest.NewRequest("POST", "/scan", strings.NewReader("0123456789")))
	if rec.Code != 413 {
		t.Errorf("status %d, want 413", rec.Code)
	}
}

func TestHandleReloadSwapsAndRejects(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})

	rec := httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("# new set\ncd{3}e\nfg{2,4}h\n")))
	if rec.Code != 200 {
		t.Fatalf("reload status %d, body %s", rec.Code, rec.Body)
	}
	var resp reloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 || resp.Patterns != 2 {
		t.Errorf("generation %d patterns %d; want 2 and 2", resp.Generation, resp.Patterns)
	}

	// A bad set is rejected with a reload-phase kind and does not bump
	// the generation.
	rec = httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("a(b\n")))
	if rec.Code != 422 {
		t.Errorf("bad reload status %d, want 422", rec.Code)
	}
	var eresp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(eresp.Kind, "reload-") {
		t.Errorf("kind %q, want reload-<phase>", eresp.Kind)
	}
	if d.svc.Generation() != 2 {
		t.Errorf("generation %d after rejected reload, want 2", d.svc.Generation())
	}

	// An empty body never reaches the service.
	rec = httptest.NewRecorder()
	d.handleReload(rec, httptest.NewRequest("POST", "/reload", strings.NewReader("\n# only comments\n")))
	if rec.Code != 400 {
		t.Errorf("empty reload status %d, want 400", rec.Code)
	}
}

func TestHandleHealthzAndMetrics(t *testing.T) {
	d := testDaemon(t, []string{"ab{2}c"})

	rec := httptest.NewRecorder()
	d.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte(`"generation":1`)) {
		t.Errorf("healthz: status %d body %s", rec.Code, rec.Body)
	}

	// Scan once so the counters exist, then check the exposition.
	d.handleScan(httptest.NewRecorder(), httptest.NewRequest("POST", "/scan", strings.NewReader("abbc")))
	rec = httptest.NewRecorder()
	d.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte("bvap_serve_generation")) {
		t.Errorf("metrics: status %d missing bvap_serve_generation", rec.Code)
	}
}

func TestParsePatterns(t *testing.T) {
	ps, err := parsePatterns("  a{2}b \n\n# comment\nc{3}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0] != "a{2}b" || ps[1] != "c{3}" {
		t.Errorf("parsePatterns = %q", ps)
	}
	if _, err := parsePatterns("# nothing\n"); err == nil {
		t.Error("all-comment input accepted")
	}
}
