// Command bvapd is a long-lived scan service daemon over the bvap.Service
// layer: it keeps a compiled pattern set hot behind an HTTP API, hot-reloads
// new sets without dropping in-flight scans, sheds load when the admission
// queue fills, quarantines inputs that repeatedly time out or panic, and
// drains gracefully on shutdown.
//
// Usage:
//
//	bvapd [-listen ADDR] [-patterns FILE | -dataset NAME -sample N] [flags]
//
// Endpoints:
//
//	POST /scan     body = raw input bytes → JSON {generation, matches}
//	POST /reload   body = newline-separated patterns → JSON {generation}
//	GET  /healthz  liveness + current generation and quarantine set
//	GET  /metrics  service telemetry (Prometheus text format)
//
// Service errors map onto HTTP statuses: overload and draining → 503
// (with Retry-After), quarantine → 429, watchdog timeout → 504, recovered
// panic → 500. SIGHUP re-reads -patterns and hot-reloads; SIGINT/SIGTERM
// drain in-flight work (bounded by -drain-timeout) before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bvap"
	"bvap/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8712", "HTTP listen address")
	patternsPath := flag.String("patterns", "", "pattern file, one regex per line (# comments); reloaded on SIGHUP")
	dataset := flag.String("dataset", "Snort", "dataset to sample patterns from when -patterns is not given")
	sample := flag.Int("sample", 20, "patterns sampled from -dataset")
	scanTimeout := flag.Duration("scan-timeout", 2*time.Second, "per-scan watchdog deadline (0 disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission slots (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 64, "admission queue depth beyond the slots")
	quarantine := flag.Int("quarantine-threshold", 3, "hard failures per input key before quarantine")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "bound on the shutdown drain")
	maxBody := flag.Int64("max-body", 16<<20, "largest accepted request body in bytes")
	flag.Parse()

	if err := run(*listen, *patternsPath, *dataset, *sample, *scanTimeout,
		*maxConcurrent, *maxQueue, *quarantine, *drainTimeout, *maxBody); err != nil {
		fmt.Fprintln(os.Stderr, "bvapd:", err)
		os.Exit(1)
	}
}

func run(listen, patternsPath, dataset string, sample int, scanTimeout time.Duration,
	maxConcurrent, maxQueue, quarantine int, drainTimeout time.Duration, maxBody int64) error {
	patterns, err := loadPatterns(patternsPath, dataset, sample)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		MaxConcurrent:       maxConcurrent,
		MaxQueue:            maxQueue,
		ScanTimeout:         scanTimeout,
		QuarantineThreshold: quarantine,
		Metrics:             reg,
	})
	if err != nil {
		return fmt.Errorf("initial pattern set: %w", err)
	}

	d := &daemon{svc: svc, reg: reg, maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scan", d.handleScan)
	mux.HandleFunc("POST /reload", d.handleReload)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	srv := &http.Server{Addr: listen, Handler: mux}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	log.Printf("bvapd: serving %d patterns (generation %d) on %s", len(patterns), svc.Generation(), listen)

	for {
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if patternsPath == "" {
					log.Printf("bvapd: SIGHUP ignored (no -patterns file to re-read)")
					continue
				}
				next, err := loadPatterns(patternsPath, dataset, sample)
				if err != nil {
					log.Printf("bvapd: reload: %v (keeping generation %d)", err, svc.Generation())
					continue
				}
				gen, err := svc.Reload(context.Background(), next)
				if err != nil {
					log.Printf("bvapd: reload rejected: %v (keeping generation %d)", err, svc.Generation())
					continue
				}
				log.Printf("bvapd: reloaded %d patterns, generation %d", len(next), gen)
				continue
			}
			log.Printf("bvapd: %s — draining (bound %s)", sig, drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			if err := svc.Drain(ctx); err != nil {
				log.Printf("bvapd: drain: %v", err)
			}
			err := srv.Shutdown(ctx)
			cancel()
			return err
		}
	}
}

// loadPatterns reads the pattern file (one regex per line, blank lines and
// # comments skipped) or falls back to sampling the named dataset.
func loadPatterns(path, dataset string, sample int) ([]string, error) {
	if path == "" {
		d, err := bvap.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Patterns(sample), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parsePatterns(string(raw))
}

func parsePatterns(raw string) ([]string, error) {
	var out []string
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return nil, errors.New("no patterns in input")
	}
	return out, nil
}

type daemon struct {
	svc     *bvap.Service
	reg     *telemetry.Registry
	maxBody int64
}

type scanResponse struct {
	Generation uint64       `json:"generation"`
	Matches    []bvap.Match `json:"matches"`
}

type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Patterns   int    `json:"patterns"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func (d *daemon) handleScan(w http.ResponseWriter, r *http.Request) {
	input, err := io.ReadAll(io.LimitReader(r.Body, d.maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(input)) > d.maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", d.maxBody))
		return
	}
	ms, err := d.svc.Scan(r.Context(), input)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	if ms == nil {
		ms = []bvap.Match{}
	}
	writeJSON(w, http.StatusOK, scanResponse{Generation: d.svc.Generation(), Matches: ms})
}

func (d *daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, d.maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	patterns, err := parsePatterns(string(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gen, err := d.svc.Reload(r.Context(), patterns)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Generation: gen, Patterns: len(patterns)})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"generation":  d.svc.Generation(),
		"quarantined": d.svc.Quarantined(),
	})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := d.reg.WritePrometheus(w); err != nil {
		log.Printf("bvapd: /metrics: %v", err)
	}
}

// writeServiceError maps the service's typed errors onto HTTP statuses so
// clients can distinguish "back off" from "this input is poison".
func writeServiceError(w http.ResponseWriter, err error) {
	var (
		pe *bvap.PanicError
		re *bvap.ReloadError
	)
	switch {
	case errors.Is(err, bvap.ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeErrorKind(w, http.StatusServiceUnavailable, err, "draining")
	case errors.Is(err, bvap.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErrorKind(w, http.StatusServiceUnavailable, err, "overloaded")
	case errors.Is(err, bvap.ErrQuarantined):
		writeErrorKind(w, http.StatusTooManyRequests, err, "quarantined")
	case errors.Is(err, context.DeadlineExceeded):
		writeErrorKind(w, http.StatusGatewayTimeout, err, "timeout")
	case errors.As(err, &pe):
		writeErrorKind(w, http.StatusInternalServerError, err, "panic")
	case errors.As(err, &re):
		writeErrorKind(w, http.StatusUnprocessableEntity, err, "reload-"+re.Phase)
	default:
		writeErrorKind(w, http.StatusUnprocessableEntity, err, "")
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorKind(w, status, err, "")
}

func writeErrorKind(w http.ResponseWriter, status int, err error, kind string) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("bvapd: encode response: %v", err)
	}
}
