// Command bvapd is a long-lived scan service daemon over the bvap.Service
// layer: it keeps a compiled pattern set hot behind an HTTP API, hot-reloads
// new sets without dropping in-flight scans, sheds load when the admission
// queue fills, quarantines inputs that repeatedly time out or panic, and
// drains gracefully on shutdown.
//
// Usage:
//
//	bvapd [-listen ADDR] [-patterns FILE | -dataset NAME -sample N] [flags]
//
// Endpoints:
//
//	POST /scan             body = raw input bytes → JSON {generation, matches, trace_id}
//	POST /reload           body = newline-separated patterns → JSON {generation}
//	GET  /healthz          liveness + current generation and quarantine set
//	GET  /metrics          service telemetry (Prometheus text format; OpenMetrics
//	                       with exemplars on Accept: application/openmetrics-text)
//	GET  /debug/flight     flight-recorder ring dump (recent + pinned traces, JSON)
//	GET  /debug/trace/{id} one trace by hex id (JSON; ?format=chrome for a
//	                       chrome://tracing / Perfetto document)
//	POST /cluster/*        fleet surface (-node-id): two-phase reload
//	                       prepare/commit/abort, session migration, scans,
//	                       span-fragment export, metric snapshots, health
//	POST /cluster/join     gossip membership (-advertise/-join): a new node
//	                       announces itself here; the SWIM probe loop and
//	                       piggybacked gossip spread the table fleet-wide
//	GET  /cluster/ring     live ring view: epoch, members with states, and
//	                       (?key=) the owner + failover chain of one key
//	POST /cluster/publish  coordinated fleet-wide reload (-peers): body =
//	                       newline-separated patterns, ?ticket= optional
//	GET  /debug/fleet/trace/{id}  (-peers) cross-node stitched trace: every
//	                       peer's span fragments grafted into one causal
//	                       tree (?format=chrome for Perfetto)
//	GET  /debug/fleet/metrics     (-peers) federated OpenMetrics: fleet
//	                       totals plus node="..."-labeled per-node series
//	GET  /debug/fleet/health      (-peers) per-node health probe + SLO
//	                       burn-rate alerts
//
// Every scan runs under a request-scoped trace: the returned trace_id keys
// the flight recorder's ring (tune with -flight-*), appears on every log
// line for the request, and is attached to the serve histograms as an
// OpenMetrics exemplar. -debug-addr serves net/http/pprof on a separate
// listener. Logs are structured log/slog (-log-format text|json).
//
// Cluster mode: -node-id mounts the fleet surface under /cluster/* —
// two-phase prepare/commit/abort for coordinated reloads, session
// open/feed/checkpoint/resume/close for live BVAP-S migration, and scan
// with per-tenant quota accounting (X-Bvap-Tenant header; quotas via
// -quota-rate/-quota-burst). With -peers, POST /cluster/publish drives a
// fleet-wide two-phase reload across the peer list: every node stages and
// validates the candidate, fingerprints are compared, and only a unanimous
// fleet commits — one failing node rolls the round back everywhere by
// non-publication. Trace ids propagate across node hops via X-Bvap-Trace-Id.
//
// Self-healing fleet: -advertise (or -join) upgrades the static ring to
// gossip membership. The node probes peers on -probe-interval, piggybacks
// its member table on every inter-node hop, and rebuilds the consistent-
// hash ring live as members join, die or leave — each change bumps a
// monotonic epoch. Session checkpoints replicate synchronously to
// -replicas distinct owners of the ring's failover chain before they ack
// (quorum shortfall → 503, the driver retries), and a background
// rebalancer re-places sessions on every epoch change: hand-off when a
// join moved ownership, adoption from replicated checkpoints when the
// owner died. -join names seed URLs to announce through at startup
// (retried with backoff); on drain the node gossips a graceful leave and
// hands its sessions to their new owners before shutting down.
//
// Service errors map onto HTTP statuses: overload and draining → 503
// (with Retry-After), quarantine and tenant quota → 429 (quota with
// Retry-After), watchdog timeout → 504, recovered panic → 500. SIGHUP
// re-reads -patterns and hot-reloads; SIGINT/SIGTERM drain in-flight work
// bounded by -drain-timeout, then force-close whatever remains so the
// process always exits within the bound.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bvap"
	"bvap/internal/cluster"
	"bvap/internal/serve"
	"bvap/internal/slo"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// config carries the parsed flag set through run.
type config struct {
	listen        string
	debugAddr     string
	patternsPath  string
	dataset       string
	sample        int
	scanTimeout   time.Duration
	maxConcurrent int
	maxQueue      int
	quarantine    int
	drainTimeout  time.Duration
	maxBody       int64
	logFormat     string
	logLevel      string
	nodeID        string
	peers         string
	join          string
	advertise     string
	replicas      int
	probeInterval time.Duration
	quotaRate     float64
	quotaBurst    float64

	flightCapacity      int
	flightPinned        int
	flightLatencyBudget time.Duration
	flightEnergyBudget  float64

	federateInterval time.Duration
	sloAvailTarget   float64
	sloLatencyTarget float64
	sloLatencyMS     float64
	sloFastWindow    time.Duration
	sloSlowWindow    time.Duration
	sloBurn          float64
	sloInterval      time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:8712", "HTTP listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof (empty disables)")
	flag.StringVar(&cfg.patternsPath, "patterns", "", "pattern file, one regex per line (# comments); reloaded on SIGHUP")
	flag.StringVar(&cfg.dataset, "dataset", "Snort", "dataset to sample patterns from when -patterns is not given")
	flag.IntVar(&cfg.sample, "sample", 20, "patterns sampled from -dataset")
	flag.DurationVar(&cfg.scanTimeout, "scan-timeout", 2*time.Second, "per-scan watchdog deadline (0 disables)")
	flag.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "admission slots (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 64, "admission queue depth beyond the slots")
	flag.IntVar(&cfg.quarantine, "quarantine-threshold", 3, "hard failures per input key before quarantine")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "bound on the shutdown drain")
	flag.Int64Var(&cfg.maxBody, "max-body", 16<<20, "largest accepted request body in bytes")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&cfg.nodeID, "node-id", "", "cluster node identity; mounts the /cluster/* fleet surface when set")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated peer base URLs; enables POST /cluster/publish coordinated reloads")
	flag.StringVar(&cfg.join, "join", "", "comma-separated seed URLs to announce this node to at startup; enables gossip membership (requires -node-id)")
	flag.StringVar(&cfg.advertise, "advertise", "", "this node's base URL as peers reach it; enables gossip membership even without -join seeds (default http://<-listen> when -join is set)")
	flag.IntVar(&cfg.replicas, "replicas", 2, "checkpoint replication factor R: distinct failover-chain owners that must hold a session checkpoint before it acks")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", time.Second, "gossip failure-detector probe cadence")
	flag.Float64Var(&cfg.quotaRate, "quota-rate", 0, "default per-tenant admission tokens per second (0 = unlimited)")
	flag.Float64Var(&cfg.quotaBurst, "quota-burst", 0, "default per-tenant admission burst (0 = rate-derived)")
	flag.IntVar(&cfg.flightCapacity, "flight-capacity", 256, "completed traces retained by the flight recorder")
	flag.IntVar(&cfg.flightPinned, "flight-pinned", 32, "over-budget traces retained by the flight recorder's black box")
	flag.DurationVar(&cfg.flightLatencyBudget, "flight-latency-budget", 0, "pin any scan slower than this into the black box (0 disables)")
	flag.Float64Var(&cfg.flightEnergyBudget, "flight-energy-budget", 0, "pin any scan above this many picojoules into the black box (0 disables)")
	flag.DurationVar(&cfg.federateInterval, "federate-interval", 10*time.Second, "fleet metrics scrape cadence (-peers)")
	flag.Float64Var(&cfg.sloAvailTarget, "slo-availability-target", 0, "scan availability SLO target in (0,1), e.g. 0.999 (0 disables)")
	flag.Float64Var(&cfg.sloLatencyTarget, "slo-latency-target", 0, "scan latency SLO target in (0,1): fraction of scans under -slo-latency-ms (0 disables)")
	flag.Float64Var(&cfg.sloLatencyMS, "slo-latency-ms", 50, "latency SLO threshold, ms (rounded down to a histogram bucket bound)")
	flag.DurationVar(&cfg.sloFastWindow, "slo-fast-window", 5*time.Minute, "fast burn-rate window")
	flag.DurationVar(&cfg.sloSlowWindow, "slo-slow-window", time.Hour, "slow burn-rate window")
	flag.Float64Var(&cfg.sloBurn, "slo-burn-threshold", 14.4, "burn rate both windows must exceed to fire")
	flag.DurationVar(&cfg.sloInterval, "slo-interval", 10*time.Second, "SLO monitor sampling cadence")
	flag.Parse()

	logger, err := newLogger(cfg.logFormat, cfg.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvapd:", err)
		os.Exit(2)
	}
	if err := run(cfg, logger); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-format / -log-level
// flags: structured text or JSON on stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}

func run(cfg config, logger *slog.Logger) error {
	if cfg.nodeID != "" {
		// Node identity on every log line: a multi-node fleet's interleaved
		// log streams stay attributable.
		logger = logger.With("node_id", cfg.nodeID)
	}
	patterns, err := loadPatterns(cfg.patternsPath, cfg.dataset, cfg.sample)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	rec := tracing.NewRecorder(tracing.Config{
		Capacity:       cfg.flightCapacity,
		PinCapacity:    cfg.flightPinned,
		LatencyBudget:  cfg.flightLatencyBudget,
		EnergyBudgetPJ: cfg.flightEnergyBudget,
	})
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		MaxConcurrent:       cfg.maxConcurrent,
		MaxQueue:            cfg.maxQueue,
		ScanTimeout:         cfg.scanTimeout,
		QuarantineThreshold: cfg.quarantine,
		DefaultQuota:        bvap.QuotaConfig{RatePerSec: cfg.quotaRate, Burst: cfg.quotaBurst},
		Metrics:             reg,
		FlightRecorder:      rec,
	})
	if err != nil {
		return fmt.Errorf("initial pattern set: %w", err)
	}

	d := &daemon{svc: svc, reg: reg, rec: rec, log: logger, maxBody: cfg.maxBody, nodeID: cfg.nodeID}
	d.mon = newSLOMonitor(cfg, reg, logger)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scan", d.handleScan)
	mux.HandleFunc("POST /reload", d.handleReload)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /debug/flight", d.handleFlight)
	mux.HandleFunc("GET /debug/trace/{id}", d.handleTrace)
	gossip := cfg.advertise != "" || cfg.join != ""
	if gossip && cfg.nodeID == "" {
		return errors.New("-join/-advertise require -node-id: gossip rides the /cluster/* surface")
	}
	var mem *cluster.Membership
	var seeds []string
	if cfg.nodeID != "" {
		// Fleet surface: two-phase reload participation and live session
		// migration. The node shares this daemon's service, so cluster
		// scans and sessions see the same generations, quotas and metrics,
		// and shares the registry + recorder, so /cluster/metrics and
		// /cluster/trace/{id} export what this process observed.
		nodeCfg := cluster.NodeConfig{ID: cfg.nodeID, Recorder: rec, Metrics: reg, Logger: logger}
		if gossip {
			advertise := cfg.advertise
			if advertise == "" {
				advertise = "http://" + cfg.listen
			}
			seeds = splitList(cfg.join)
			// Construction order matters: the membership probes through
			// the client, and the client piggybacks the membership's
			// table — NewClient → NewMembership → SetMembership breaks
			// the cycle.
			nodeClient := cluster.NewClient(cluster.ClientConfig{})
			mem = cluster.NewMembership(cluster.MembershipConfig{
				Self:          advertise,
				ProbeInterval: cfg.probeInterval,
				Client:        nodeClient,
				Logger:        logger,
				Metrics:       reg,
			})
			nodeClient.SetMembership(mem)
			nodeCfg.Self = advertise
			nodeCfg.Client = nodeClient
			nodeCfg.Membership = mem
			nodeCfg.Replicas = cfg.replicas
		}
		d.node = cluster.NewNode(svc, nodeCfg)
		if mem != nil {
			// Every ring-set change wakes the rebalancer, so hand-off and
			// adoption begin within one scheduling hop of the epoch bump.
			mem.SetOnChange(d.node.WakeRebalance)
		}
		mux.Handle("/cluster/", d.node.Handler())
		if gossip {
			logger.Info("cluster surface mounted", "node", cfg.nodeID,
				"advertise", mem.Self(), "seeds", len(seeds),
				"replicas", cfg.replicas, "probe_interval", cfg.probeInterval)
		} else {
			logger.Info("cluster surface mounted", "node", cfg.nodeID)
		}
	}
	background, stopBackground := context.WithCancel(context.Background())
	defer stopBackground()
	if mem != nil {
		go mem.Run(background)
		go d.node.RunRebalancer(background)
	}
	if cfg.peers != "" {
		peers := splitList(cfg.peers)
		client := cluster.NewClient(cluster.ClientConfig{})
		d.coord = cluster.NewCoordinator(client, peers)
		localID := cfg.nodeID
		if localID == "" {
			localID = "coordinator"
		}
		d.fed = cluster.NewFederator(client, peers, cluster.FederatorConfig{
			Interval:      cfg.federateInterval,
			Logger:        logger,
			Local:         reg,
			LocalID:       localID,
			LocalRecorder: rec,
			// With gossip enabled the federator skips peers the
			// membership knows to be dead or left instead of burning
			// breaker budget on hosts that are never coming back.
			Membership: mem,
			Metrics:    reg,
		})
		mux.HandleFunc("POST /cluster/publish", d.handlePublish)
		mux.HandleFunc("GET /debug/fleet/trace/{id}", d.handleFleetTrace)
		mux.HandleFunc("GET /debug/fleet/metrics", d.handleFleetMetrics)
		mux.HandleFunc("GET /debug/fleet/health", d.handleFleetHealth)
		go d.fed.Run(background)
		logger.Info("cluster coordinator enabled", "peers", len(peers), "federate_interval", cfg.federateInterval)
	}
	if d.mon.Objectives() > 0 {
		go func() {
			ticker := time.NewTicker(cfg.sloInterval)
			defer ticker.Stop()
			for {
				select {
				case <-background.Done():
					return
				case now := <-ticker.C:
					d.mon.Observe(now)
				}
			}
		}()
		logger.Info("slo monitor running", "objectives", d.mon.Objectives(),
			"fast_window", cfg.sloFastWindow, "slow_window", cfg.sloSlowWindow,
			"burn_threshold", cfg.sloBurn, "interval", cfg.sloInterval)
	}
	srv := &http.Server{Addr: cfg.listen, Handler: mux}

	if cfg.debugAddr != "" {
		// The blank net/http/pprof import registered its handlers on
		// http.DefaultServeMux; expose that mux on its own listener so
		// profiling never shares a port with the scan API.
		dbg := &http.Server{Addr: cfg.debugAddr, Handler: http.DefaultServeMux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", cfg.debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", cfg.debugAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	logger.Info("serving", "patterns", len(patterns), "generation", svc.Generation(), "addr", cfg.listen)

	if mem != nil && len(seeds) > 0 {
		// Announce to the fleet once the listener is up (so seeds can
		// immediately probe back), retrying with backoff: a node booting
		// before its seeds converges as soon as one answers.
		go func() {
			backoff := time.Second
			for attempt := 1; ; attempt++ {
				ctx, cancel := context.WithTimeout(background, 5*time.Second)
				err := mem.Join(ctx, seeds)
				cancel()
				if err == nil {
					logger.Info("joined fleet", "seeds", len(seeds), "attempt", attempt, "epoch", mem.Epoch())
					return
				}
				logger.Warn("fleet join failed; retrying", "attempt", attempt, "backoff", backoff, "err", err)
				select {
				case <-background.Done():
					return
				case <-time.After(backoff):
				}
				if backoff < 10*time.Second {
					backoff *= 2
				}
			}
		}()
	}

	for {
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if cfg.patternsPath == "" {
					logger.Warn("SIGHUP ignored: no -patterns file to re-read")
					continue
				}
				next, err := loadPatterns(cfg.patternsPath, cfg.dataset, cfg.sample)
				if err != nil {
					logger.Warn("reload read failed", "err", err, "generation", svc.Generation(), "outcome", "rejected")
					continue
				}
				gen, err := svc.Reload(context.Background(), next)
				if err != nil {
					logger.Warn("reload rejected", "err", err, "generation", svc.Generation(), "outcome", "rejected")
					continue
				}
				logger.Info("reloaded", "patterns", len(next), "generation", gen, "outcome", "ok")
				continue
			}
			logger.Info("draining", "signal", sig.String(), "bound", cfg.drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
			if mem != nil {
				// Graceful leave first: gossip the departure (peers drop
				// this node from the ring without a suspect timeout), then
				// hand every live session to its new ring owner while the
				// listener still answers the custody transfers.
				mem.Leave(ctx)
				if h, a := d.node.Rebalance(ctx); h+a > 0 {
					logger.Info("sessions re-placed on leave", "handoffs", h, "adoptions", a)
				}
			}
			if err := svc.Drain(ctx); err != nil {
				logger.Warn("drain incomplete", "err", err)
			}
			if d.node != nil {
				// Open migration sessions commit their pending reports and
				// return their pooled streams before the listener goes away.
				d.node.Close()
			}
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				// The graceful drain ran out of budget with connections
				// still open: force-close them. Exiting on time matters
				// more than the stragglers — their clients hold durable
				// checkpoints and resume elsewhere.
				logger.Warn("graceful shutdown incomplete; forcing close", "err", err)
				if cerr := srv.Close(); cerr != nil {
					logger.Warn("forced close failed", "err", cerr)
				}
			}
			return nil
		}
	}
}

// splitList parses a comma-separated flag value into its non-empty,
// whitespace-trimmed elements.
func splitList(raw string) []string {
	var out []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadPatterns reads the pattern file (one regex per line, blank lines and
// # comments skipped) or falls back to sampling the named dataset.
func loadPatterns(path, dataset string, sample int) ([]string, error) {
	if path == "" {
		d, err := bvap.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Patterns(sample), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parsePatterns(string(raw))
}

func parsePatterns(raw string) ([]string, error) {
	var out []string
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return nil, errors.New("no patterns in input")
	}
	return out, nil
}

type daemon struct {
	svc     *bvap.Service
	reg     *telemetry.Registry
	rec     *tracing.Recorder
	log     *slog.Logger
	maxBody int64
	nodeID  string               // labels metrics and traces when -node-id set
	node    *cluster.Node        // non-nil when -node-id mounted /cluster/*
	coord   *cluster.Coordinator // non-nil when -peers enabled /cluster/publish
	fed     *cluster.Federator   // non-nil when -peers enabled /debug/fleet/*
	mon     *slo.Monitor         // nil-safe; empty unless -slo-* targets set
}

// newSLOMonitor builds the burn-rate monitor from the -slo-* flags. Both
// objectives read the serve metrics straight out of the registry snapshot,
// so the monitor needs no hooks inside the scan path.
func newSLOMonitor(cfg config, reg *telemetry.Registry, logger *slog.Logger) *slo.Monitor {
	var objectives []slo.Objective
	if cfg.sloAvailTarget > 0 && cfg.sloAvailTarget < 1 {
		objectives = append(objectives, slo.Objective{
			Name:   "scan-availability",
			Target: cfg.sloAvailTarget,
			Source: func() (good, total float64) {
				for _, s := range reg.Snapshot() {
					if s.Name != serve.MetricScans {
						continue
					}
					total += s.Value
					if s.Labels["outcome"] == "ok" {
						good += s.Value
					}
				}
				return good, total
			},
			FastWindow:    cfg.sloFastWindow,
			SlowWindow:    cfg.sloSlowWindow,
			BurnThreshold: cfg.sloBurn,
		})
	}
	if cfg.sloLatencyTarget > 0 && cfg.sloLatencyTarget < 1 {
		le := cfg.sloLatencyMS
		objectives = append(objectives, slo.Objective{
			Name:   fmt.Sprintf("scan-latency-%gms", le),
			Target: cfg.sloLatencyTarget,
			Source: func() (good, total float64) {
				for _, s := range reg.Snapshot() {
					if s.Name != serve.MetricScanDuration {
						continue
					}
					total += float64(s.Count)
					// Cumulative buckets: the largest bound ≤ the threshold
					// carries the count of scans at least that fast.
					var under uint64
					for _, b := range s.Buckets {
						if b.UpperBound <= le {
							under = b.Count
						}
					}
					good += float64(under)
				}
				return good, total
			},
			FastWindow:    cfg.sloFastWindow,
			SlowWindow:    cfg.sloSlowWindow,
			BurnThreshold: cfg.sloBurn,
		})
	}
	return slo.NewMonitor(objectives, logger)
}

// logger returns the daemon's logger, defaulting for tests that construct
// a bare daemon.
func (d *daemon) logger() *slog.Logger {
	if d.log != nil {
		return d.log
	}
	return slog.Default()
}

type scanResponse struct {
	Generation uint64       `json:"generation"`
	Matches    []bvap.Match `json:"matches"`
	TraceID    string       `json:"trace_id,omitempty"`
}

type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Patterns   int    `json:"patterns"`
}

type errorResponse struct {
	Error   string `json:"error"`
	Kind    string `json:"kind,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

// flightResponse is the /debug/flight document.
type flightResponse struct {
	Capacity    int                 `json:"capacity"`
	PinCapacity int                 `json:"pin_capacity"`
	Recorded    uint64              `json:"recorded"`
	PinnedTotal uint64              `json:"pinned_total"`
	Recent      []tracing.TraceView `json:"recent"`
	Pinned      []tracing.TraceView `json:"pinned"`
}

func (d *daemon) handleScan(w http.ResponseWriter, r *http.Request) {
	ctx, tr := d.rec.StartTrace(r.Context(), "http.scan")
	defer d.rec.Record(tr)
	if d.nodeID != "" {
		tr.SetStr("node", d.nodeID)
	}
	input, err := io.ReadAll(io.LimitReader(r.Body, d.maxBody+1))
	if err != nil {
		tr.SetStr("outcome", "bad_request")
		d.writeError(w, http.StatusBadRequest, err, "", tr)
		return
	}
	if int64(len(input)) > d.maxBody {
		tr.SetStr("outcome", "body_too_large")
		d.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", d.maxBody), "", tr)
		return
	}
	if tenant := r.Header.Get(cluster.TenantHeader); tenant != "" {
		ctx = bvap.WithTenant(ctx, tenant)
		tr.SetStr("tenant", tenant)
	}
	start := time.Now()
	ms, err := d.svc.Scan(ctx, input)
	if err != nil {
		status, kind := serviceErrorStatus(w, err)
		d.logger().Warn("scan failed",
			"trace_id", tr.IDString(), "generation", d.svc.Generation(),
			"bytes", len(input), "outcome", kind, "err", err)
		d.writeError(w, status, err, kind, tr)
		return
	}
	if ms == nil {
		ms = []bvap.Match{}
	}
	d.logger().Debug("scan ok",
		"trace_id", tr.IDString(), "generation", d.svc.Generation(),
		"bytes", len(input), "matches", len(ms), "outcome", "ok",
		"duration", time.Since(start))
	writeJSON(w, d.logger(), http.StatusOK, scanResponse{
		Generation: d.svc.Generation(), Matches: ms, TraceID: tr.IDString(),
	})
}

func (d *daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, d.maxBody))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, err, "", nil)
		return
	}
	patterns, err := parsePatterns(string(raw))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, err, "", nil)
		return
	}
	gen, err := d.svc.Reload(r.Context(), patterns)
	if err != nil {
		status, kind := serviceErrorStatus(w, err)
		d.logger().Warn("reload rejected",
			"generation", d.svc.Generation(), "patterns", len(patterns),
			"outcome", kind, "err", err)
		d.writeError(w, status, err, kind, nil)
		return
	}
	d.logger().Info("reloaded", "patterns", len(patterns), "generation", gen, "outcome", "ok")
	writeJSON(w, d.logger(), http.StatusOK, reloadResponse{Generation: gen, Patterns: len(patterns)})
}

// publishResponse is the POST /cluster/publish document: the round's
// ticket and the per-peer generation each node now serves.
type publishResponse struct {
	Ticket      string            `json:"ticket"`
	Generations map[string]uint64 `json:"generations"`
	// TraceID keys the publish round's distributed trace: the coordinator's
	// client spans live here, each node's prepare/commit spans on the node —
	// GET /debug/fleet/trace/{id} stitches them back together.
	TraceID string `json:"trace_id,omitempty"`
}

// handlePublish drives the fleet-wide two-phase reload over the configured
// peer set. The body is a pattern file (one regex per line); the round's
// ticket comes from ?ticket= or, by default, a hash of the candidate set —
// deterministic, so a retried publish replays the same round idempotently
// instead of opening a new one.
func (d *daemon) handlePublish(w http.ResponseWriter, r *http.Request) {
	// A publish round is the natural cross-node trace: the cluster client
	// stamps this trace's id (and the current span as parent) on every
	// prepare/commit hop, so each node retains a child fragment and
	// /debug/fleet/trace/{id} can rebuild the whole round.
	ctx, tr := d.rec.StartTrace(r.Context(), "fleet.publish")
	defer d.rec.Record(tr)
	if d.nodeID != "" {
		tr.SetStr("node", d.nodeID)
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, d.maxBody))
	if err != nil {
		tr.SetStr("outcome", "bad_request")
		d.writeError(w, http.StatusBadRequest, err, "", tr)
		return
	}
	patterns, err := parsePatterns(string(raw))
	if err != nil {
		tr.SetStr("outcome", "bad_request")
		d.writeError(w, http.StatusBadRequest, err, "", tr)
		return
	}
	ticket := r.URL.Query().Get("ticket")
	if ticket == "" {
		h := fnv.New64a()
		for _, p := range patterns {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
		ticket = fmt.Sprintf("set-%016x", h.Sum64())
	}
	tr.SetStr("ticket", ticket)
	gens, err := d.coord.Publish(ctx, ticket, patterns)
	if err != nil {
		var pub *cluster.PublishError
		status, kind := http.StatusBadGateway, "publish"
		if errors.As(err, &pub) {
			kind = "publish-" + pub.Phase
		}
		tr.SetStr("outcome", kind)
		d.logger().Warn("fleet publish failed", "trace_id", tr.IDString(), "ticket", ticket, "patterns", len(patterns), "outcome", kind, "err", err)
		d.writeError(w, status, err, kind, tr)
		return
	}
	tr.SetStr("outcome", "ok")
	d.logger().Info("fleet published", "trace_id", tr.IDString(), "ticket", ticket, "patterns", len(patterns), "peers", len(gens), "outcome", "ok")
	writeJSON(w, d.logger(), http.StatusOK, publishResponse{Ticket: ticket, Generations: gens, TraceID: tr.IDString()})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, d.logger(), http.StatusOK, map[string]any{
		"generation":  d.svc.Generation(),
		"quarantined": d.svc.Quarantined(),
	})
}

func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// In a fleet (-node-id set), stamp node="..." on every series so
	// per-node streams stay distinguishable after federation.
	samples := d.reg.Snapshot()
	if d.nodeID != "" {
		samples = telemetry.WithLabel(samples, "node", d.nodeID)
	}
	// OpenMetrics (exemplar-capable) only when the scraper asks for it;
	// classic 0.0.4 text otherwise, which must never carry exemplar syntax.
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := telemetry.WriteOpenMetricsSamples(w, samples); err != nil {
			d.logger().Warn("metrics write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := telemetry.WritePrometheusSamples(w, samples); err != nil {
		d.logger().Warn("metrics write failed", "err", err)
	}
}

func (d *daemon) handleFlight(w http.ResponseWriter, _ *http.Request) {
	recent := d.rec.Recent()
	pinned := d.rec.Pinned()
	resp := flightResponse{
		Capacity:    d.rec.Config().Capacity,
		PinCapacity: d.rec.Config().PinCapacity,
		Recorded:    d.rec.Recorded(),
		PinnedTotal: d.rec.PinnedTotal(),
		Recent:      make([]tracing.TraceView, 0, len(recent)),
		Pinned:      make([]tracing.TraceView, 0, len(pinned)),
	}
	for _, t := range recent {
		resp.Recent = append(resp.Recent, t.View())
	}
	for _, t := range pinned {
		resp.Pinned = append(resp.Pinned, t.View())
	}
	writeJSON(w, d.logger(), http.StatusOK, resp)
}

func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := tracing.ParseTraceID(r.PathValue("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace id: %w", err), "", nil)
		return
	}
	t := d.rec.Lookup(id)
	if t == nil {
		d.writeError(w, http.StatusNotFound, fmt.Errorf("trace %s not retained", id), "", nil)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			d.logger().Warn("chrome trace write failed", "trace_id", id.String(), "err", err)
		}
		return
	}
	writeJSON(w, d.logger(), http.StatusOK, t.View())
}

// handleFleetTrace serves the cross-node stitched view of one trace:
// every peer's span fragments (plus this process's own) grafted into a
// single causal tree. Malformed ids are the caller's fault (400);
// unknown-everywhere ids are 404.
func (d *daemon) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	id, err := tracing.ParseTraceID(r.PathValue("id"))
	if err != nil {
		d.writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace id: %w", err), "", nil)
		return
	}
	st, err := d.fed.FleetTrace(r.Context(), id)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, cluster.ErrNoFragments) {
			status = http.StatusNotFound
		}
		d.writeError(w, status, err, "", nil)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := st.WriteChrome(w); err != nil {
			d.logger().Warn("chrome fleet trace write failed", "trace_id", id.String(), "err", err)
		}
		return
	}
	writeJSON(w, d.logger(), http.StatusOK, st)
}

// handleFleetMetrics scrapes the fleet now (the background loop keeps the
// view warm, but a scrape on demand never serves stale totals) and renders
// one OpenMetrics document: fleet-merged series first, then per-node
// series labeled node="...".
func (d *daemon) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	snap := d.fed.Scrape(r.Context())
	if snap.MergeErr != nil {
		d.writeError(w, http.StatusInternalServerError, snap.MergeErr, "federation-layout", nil)
		return
	}
	if err := snap.WriteOpenMetrics(w); err != nil {
		d.logger().Warn("fleet metrics write failed", "err", err)
	}
}

// fleetHealthResponse is the /debug/fleet/health document: the per-node
// probe report plus the SLO monitor's burn-rate state.
type fleetHealthResponse struct {
	cluster.FleetHealth
	SLO       []slo.Status `json:"slo,omitempty"`
	SLOFiring bool         `json:"slo_firing"`
}

func (d *daemon) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	report := d.fed.Health(r.Context())
	writeJSON(w, d.logger(), http.StatusOK, fleetHealthResponse{
		FleetHealth: report,
		SLO:         d.mon.Status(time.Now()),
		SLOFiring:   d.mon.Firing(),
	})
}

// serviceErrorStatus maps the service's typed errors onto HTTP statuses so
// clients can distinguish "back off" from "this input is poison", setting
// Retry-After where backoff applies. The kind also labels the failure log
// line and error body.
func serviceErrorStatus(w http.ResponseWriter, err error) (status int, kind string) {
	var (
		pe *bvap.PanicError
		re *bvap.ReloadError
	)
	switch {
	case errors.Is(err, bvap.ErrDraining):
		w.Header().Set("Retry-After", "5")
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, bvap.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, bvap.ErrQuotaExceeded):
		w.Header().Set("Retry-After", "1")
		return http.StatusTooManyRequests, "quota"
	case errors.Is(err, bvap.ErrQuarantined):
		return http.StatusTooManyRequests, "quarantined"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic"
	case errors.As(err, &re):
		return http.StatusUnprocessableEntity, "reload-" + re.Phase
	default:
		return http.StatusUnprocessableEntity, ""
	}
}

func (d *daemon) writeError(w http.ResponseWriter, status int, err error, kind string, tr *tracing.Trace) {
	writeJSON(w, d.logger(), status, errorResponse{Error: err.Error(), Kind: kind, TraceID: tr.IDString()})
}

func writeJSON(w http.ResponseWriter, logger *slog.Logger, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logger.Warn("encode response failed", "err", err)
	}
}
