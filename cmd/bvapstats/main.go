// Command bvapstats reports the dataset statistics that motivate BVAP (§1
// of the paper): how many regexes use bounded repetition, what share of the
// unfolded NFA states counting contributes, the largest bounds, and the
// hardware resource compression BVAP achieves over unfolding designs.
//
// Usage:
//
//	bvapstats [-sample N] [-metrics FILE] [dataset...]
//
// With no arguments it analyzes all seven synthetic datasets and the
// combined collection. -metrics writes the compile-pipeline counters
// accrued across every analyzed dataset (phase wall time, rewrite
// decisions, Table 3 read-kind hits) as Prometheus text, or JSON with a
// .json suffix.
package main

import (
	"flag"
	"fmt"
	"os"

	"bvap"
	"bvap/internal/obs"
)

func main() {
	sample := flag.Int("sample", 300, "regexes sampled per dataset")
	metricsPath := flag.String("metrics", "", "write compile metrics to this file (Prometheus text; .json for JSON)")
	flag.Parse()

	sess, err := obs.Setup(*metricsPath, "", "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvapstats:", err)
		os.Exit(1)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bvapstats:", err)
			os.Exit(1)
		}
	}()

	var sets []bvap.Dataset
	if flag.NArg() == 0 {
		sets = bvap.Datasets()
	} else {
		for _, name := range flag.Args() {
			d, err := bvap.DatasetByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bvapstats:", err)
				os.Exit(1)
			}
			sets = append(sets, d)
		}
	}

	fmt.Printf("%-14s %8s %10s %12s %12s %10s %12s %10s\n",
		"dataset", "regexes", "counting", "unfolded", "count-states", "max-bound", "bvap-STEs", "saving")
	var all []string
	for _, d := range sets {
		patterns := d.Patterns(*sample)
		all = append(all, patterns...)
		st := bvap.AnalyzePatterns(patterns)
		engine, err := bvap.Compile(patterns, bvap.WithMetrics(sess.Registry))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bvapstats:", err)
			os.Exit(1)
		}
		rep := engine.Report()
		saving := 0.0
		if rep.TotalSTEs > 0 {
			saving = float64(st.UnfoldedStates) / float64(rep.TotalSTEs)
		}
		fmt.Printf("%-14s %8d %9.1f%% %12d %11.1f%% %10d %12d %9.1fx\n",
			d.Name(), st.Regexes, st.CountingRegexFraction()*100,
			st.UnfoldedStates, st.CountingStateFraction()*100,
			st.MaxBound, rep.TotalSTEs, saving)
	}

	st := bvap.AnalyzePatterns(all)
	fmt.Printf("\ncombined: %.1f%% of regexes use bounded repetition (paper: 37%%); "+
		"counting accounts for %.1f%% of unfolded NFA states (paper: 85%%); "+
		"largest bound %d (paper: >10,000 across collections)\n",
		st.CountingRegexFraction()*100, st.CountingStateFraction()*100, st.MaxBound)
}
