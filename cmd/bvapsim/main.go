// Command bvapsim runs the cycle-accurate BVAP simulator over an input
// stream, reporting matches and the paper's evaluation metrics.
//
// Usage:
//
//	bvapsim -config cfg.json -input data.bin [-arch bvap|bvap-s] [-matches]
//	bvapsim -patterns rules.txt -dataset Snort -len 65536 -arch cama
//	bvapsim -patterns rules.txt -dataset Snort -metrics out.prom -trace out.json
//
// The first form executes a compiled configuration (from bvapc) on BVAP or
// BVAP-S. The second compiles patterns on the fly and can also target the
// baseline architectures (cama, ca, eap, cnt) for comparison; -dataset
// generates a synthetic corpus when no -input file is given.
//
// Observability: -metrics writes the per-stage energy/cycle counters of
// the run (Prometheus text, or JSON with a .json suffix), -trace writes a
// structured trace of the compile pipeline and simulated occupancy (Chrome
// trace_event JSON, or JSONL with a .jsonl suffix), and -pprof serves
// net/http/pprof, expvar and a live /metrics endpoint. -profile attaches
// the activity profiler and prints ASCII tile-occupancy and stall-cause
// heatmaps, the hot-state ranking, and the per-pattern energy attribution
// after the run (with -trace, the heatmaps are also exported as Chrome
// counter tracks).
//
// Fault injection: -faults attaches a deterministic fault plan (e.g.
// "seed=42,rate=1e-4,parity=1") to a BVAP or BVAP-S run and executes it
// under the detect/retry/degrade resilience harness, reporting injection
// and recovery counters alongside the usual metrics; -fault-window and
// -fault-retries tune the checkpoint interval and the retry budget, and
// -fault-crosscheck verifies committed windows against an independent
// software matcher.
//
// Parallel scanning: -parallel scans the input with the sharded parallel
// engine (FindAllParallel) — chunked when the pattern set's reach is
// bounded, sequential fallback otherwise — verifies the result against the
// sequential scan, and prints both paths' throughput; -workers and -chunk
// tune the worker pool and chunk size, and -matches prints the verified
// parallel matches.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bvap"
	"bvap/internal/experiments"
	"bvap/internal/hwconf"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
	"bvap/internal/nbva"
	"bvap/internal/obs"
	"bvap/internal/profile"
	"bvap/internal/regex"
	"bvap/internal/telemetry"
)

func main() {
	configPath := flag.String("config", "", "compiled configuration (from bvapc)")
	patternsPath := flag.String("patterns", "", "pattern file (compiled on the fly)")
	inputPath := flag.String("input", "", "input stream file")
	dataset := flag.String("dataset", "", "generate input from a synthetic dataset profile")
	length := flag.Int("len", 65536, "generated input length")
	archName := flag.String("arch", "bvap", "architecture: bvap, bvap-s, cama, ca, eap, cnt")
	showMatches := flag.Bool("matches", false, "print match end offsets")
	tableTrace := flag.Bool("table-trace", false, "print the Table 2 style execution trace (single pattern, short input)")
	breakdown := flag.Bool("breakdown", false, "print the per-component energy breakdown")
	compare := flag.Bool("compare", false, "run BVAP, BVAP-S, CAMA, eAP and CA over the same patterns and input, printing a comparison table")
	profileRun := flag.Bool("profile", false, "print the run's activity profile: tile-occupancy and stall heatmaps, hot states, and per-pattern energy attribution")
	metricsPath := flag.String("metrics", "", "write run metrics to this file (Prometheus text; .json for JSON)")
	tracePath := flag.String("trace", "", "write a structured trace to this file (Chrome trace_event JSON; .jsonl for JSONL)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	occupancyEvery := flag.Int("trace-occupancy", 0, "with -trace: sample active-state occupancy into the trace every N steps (0 disables)")
	faultPlan := flag.String("faults", "", "fault-injection plan, e.g. \"seed=42,rate=1e-4,parity=1\" (BVAP/BVAP-S with -patterns only)")
	faultWindow := flag.Int("fault-window", 256, "with -faults: checkpoint window in symbols")
	faultRetries := flag.Int("fault-retries", 2, "with -faults: window re-executions before degrading to software")
	faultCrossCheck := flag.Bool("fault-crosscheck", false, "with -faults: cross-check committed windows against a software reference matcher")
	parallel := flag.Bool("parallel", false, "scan with the sharded parallel engine (needs -patterns): chunked FindAllParallel verified against the sequential scan")
	workers := flag.Int("workers", 0, "with -parallel: worker goroutines (0 = GOMAXPROCS)")
	chunkSize := flag.Int("chunk", 0, "with -parallel: live bytes per chunk (0 = default 64 KiB)")
	flag.Parse()

	arch, err := bvap.ParseArchitecture(*archName)
	if err != nil {
		fatal(err)
	}

	sess, err := obs.Setup(*metricsPath, *tracePath, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
	}()

	var patterns []string
	if *patternsPath != "" {
		patterns, err = readPatterns(*patternsPath)
		if err != nil {
			fatal(err)
		}
	}

	input, err := loadInput(*inputPath, *dataset, *length, patterns)
	if err != nil {
		fatal(err)
	}

	if *tableTrace {
		if err := printTrace(patterns, input); err != nil {
			fatal(err)
		}
		return
	}

	if *compare {
		if len(patterns) == 0 {
			fatal(fmt.Errorf("-compare needs -patterns"))
		}
		if err := runComparison(patterns, input); err != nil {
			fatal(err)
		}
		return
	}

	if *parallel {
		if len(patterns) == 0 {
			fatal(fmt.Errorf("-parallel needs -patterns"))
		}
		if err := runParallel(patterns, input, *workers, *chunkSize, *showMatches, sess); err != nil {
			fatal(err)
		}
		return
	}

	// instrument attaches the session's registry and tracer to a
	// simulator, plus the activity profiler when -profile is set (combined
	// through a fan-out so both observe the run).
	instrument := func(sim *bvap.Simulator) *profile.Profiler {
		var k *hwsim.TelemetrySink
		if sess.Registry != nil || sess.Tracer != nil {
			if sess.Registry != nil {
				k = sim.Instrument(sess.Registry)
			} else {
				k = hwsim.NewTelemetrySink(telemetryScratch())
				sim.SetSink(k)
			}
			if sess.Tracer != nil && *occupancyEvery > 0 {
				k.TraceOccupancy(sess.Tracer, *occupancyEvery)
			}
		}
		if !*profileRun {
			return nil
		}
		p := sim.Profile(profile.Options{})
		if k != nil {
			sim.SetSink(hwsim.FanOut(k, p))
		}
		return p
	}

	// printProfile renders a finished run's profile (and exports the
	// heatmaps as trace counter tracks when -trace is active).
	printProfile := func(p *profile.Profiler, label string, st *hwsim.Stats) {
		if p == nil {
			return
		}
		experiments.RenderProfile(os.Stdout, label, p, 10)
		experiments.RenderAttribution(os.Stdout, p.Attribute(st), 10)
		p.ExportTrace(sess.Tracer)
	}

	switch arch {
	case bvap.ArchBVAP, bvap.ArchBVAPStreaming:
		if *configPath != "" {
			if *faultPlan != "" {
				fatal(fmt.Errorf("-faults needs -patterns (the resilience harness degrades to the compiled software engine)"))
			}
			runConfig(*configPath, arch == bvap.ArchBVAPStreaming, input, *showMatches, *breakdown, *profileRun, sess, *occupancyEvery)
			return
		}
		if len(patterns) == 0 {
			fatal(fmt.Errorf("need -config or -patterns"))
		}
		engine, err := bvap.Compile(patterns,
			bvap.WithMetrics(sess.Registry), bvap.WithTracer(sess.Tracer))
		if err != nil {
			fatal(err)
		}
		sim, err := engine.NewSimulator(arch)
		if err != nil {
			fatal(err)
		}
		prof := instrument(sim)
		if *faultPlan != "" {
			if err := runFaults(sim, input, *faultPlan, *faultWindow, *faultRetries, *faultCrossCheck, sess); err != nil {
				fatal(err)
			}
		} else {
			sim.Run(input)
		}
		printResult(sim.Result())
		if *breakdown {
			fmt.Print(sim.Breakdown())
		}
		printProfile(prof, arch.String(), sim.Stats())
		if *showMatches {
			for _, m := range engine.FindAll(input) {
				fmt.Printf("match pattern=%d end=%d\n", m.Pattern, m.End)
			}
		}
	default:
		if *faultPlan != "" {
			fatal(fmt.Errorf("-faults supports BVAP and BVAP-S only (got %v)", arch))
		}
		if len(patterns) == 0 {
			fatal(fmt.Errorf("baseline architectures need -patterns"))
		}
		sim, err := bvap.NewBaselineSimulator(arch, patterns)
		if err != nil {
			fatal(err)
		}
		prof := instrument(sim)
		sim.Run(input)
		printResult(sim.Result())
		if *breakdown {
			fmt.Print(sim.Breakdown())
		}
		printProfile(prof, arch.String(), sim.Stats())
	}
}

// telemetryScratch backs an occupancy-only sink (a -trace without -metrics)
// with a throwaway registry.
func telemetryScratch() *telemetry.Registry { return telemetry.NewRegistry() }

// runFaults executes the input under a fault-injection plan with the
// detect/retry/degrade resilience harness and prints the campaign report.
func runFaults(sim *bvap.Simulator, input []byte, planSpec string, window, retries int, crossCheck bool, sess *obs.Session) error {
	plan, err := bvap.ParseFaultPlan(planSpec)
	if err != nil {
		return err
	}
	if err := sim.InjectFaults(plan); err != nil {
		return err
	}
	if sess.Registry != nil {
		sim.InstrumentFaults(sess.Registry)
	}
	rep, err := sim.RunResilient(context.Background(), input, bvap.ResilienceConfig{
		Window:     window,
		MaxRetries: retries,
		CrossCheck: crossCheck,
		Metrics:    sess.Registry,
	})
	if err != nil {
		return err
	}
	fs := rep.Faults
	fmt.Printf("faults: injected=%d detected=%d (%.1f%%) silent=%d\n",
		fs.TotalInjected(), fs.Detected, fs.DetectionRate()*100, fs.Silent)
	fmt.Printf("recovery: windows=%d retries=%d fallbacks=%d", rep.Windows, rep.Retries, rep.Fallbacks)
	if crossCheck {
		fmt.Printf(" mismatches=%d", rep.Mismatches)
	}
	fmt.Println()
	return nil
}

func runConfig(path string, streaming bool, input []byte, showMatches, breakdown, profileRun bool, sess *obs.Session, occupancyEvery int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	cfg, err := hwconf.Read(f)
	if err != nil {
		fatal(err)
	}
	sys, err := hwsim.NewBVAPSystem(cfg, streaming)
	if err != nil {
		fatal(err)
	}
	sys.RecordMatchEnds(showMatches)
	var k *hwsim.TelemetrySink
	if sess.Registry != nil || sess.Tracer != nil {
		reg := sess.Registry
		if reg == nil {
			reg = telemetryScratch()
		}
		k = hwsim.NewTelemetrySink(reg)
		if sess.Tracer != nil && occupancyEvery > 0 {
			k.TraceOccupancy(sess.Tracer, occupancyEvery)
		}
		sys.SetSink(k)
	}
	var prof *profile.Profiler
	if profileRun {
		prof = profile.New(cfg, profile.Options{})
		if k != nil {
			sys.SetSink(hwsim.FanOut(k, prof))
		} else {
			sys.SetSink(prof)
		}
	}
	sys.Run(input)
	stats := sys.Finish()
	fmt.Println(metrics.FromStats(stats.Arch.String(), stats).String())
	fmt.Printf("symbols=%d cycles=%d stalls=%d matches=%d tiles=%d\n",
		stats.Symbols, stats.Cycles, stats.StallCycles, stats.Matches, stats.Tiles)
	if breakdown {
		fmt.Print(stats.Breakdown())
	}
	if prof != nil {
		experiments.RenderProfile(os.Stdout, path, prof, 10)
		experiments.RenderAttribution(os.Stdout, prof.Attribute(stats), 10)
		prof.ExportTrace(sess.Tracer)
	}
	if showMatches {
		for i := range cfg.Machines {
			for _, end := range sys.MatchEnds(i) {
				fmt.Printf("match pattern=%d end=%d\n", i, end)
			}
		}
	}
}

// runComparison replays the same workload on every modeled architecture and
// prints one row per design (the shape of a Fig. 14 group).
func runComparison(patterns []string, input []byte) error {
	fmt.Printf("%-8s %12s %10s %10s %14s %10s %10s\n",
		"arch", "nJ/byte", "mm²", "Gbps", "Gbps/mm²", "matches", "FoM")
	row := func(r bvap.Result) {
		fmt.Printf("%-8s %12.4f %10.3f %10.2f %14.2f %10d %10.5f\n",
			r.Architecture, r.EnergyPerSymbolNJ, r.AreaMm2, r.ThroughputGbps,
			r.ComputeDensityGbpsPerMm2, r.Matches, r.FoM)
	}
	engine, err := bvap.Compile(patterns)
	if err != nil {
		return err
	}
	for _, arch := range []bvap.Architecture{bvap.ArchBVAP, bvap.ArchBVAPStreaming} {
		sim, err := engine.NewSimulator(arch)
		if err != nil {
			return err
		}
		sim.Run(input)
		row(sim.Result())
	}
	for _, arch := range []bvap.Architecture{bvap.ArchCAMA, bvap.ArchEAP, bvap.ArchCA, bvap.ArchCNT} {
		sim, err := bvap.NewBaselineSimulator(arch, patterns)
		if err != nil {
			return err
		}
		sim.Run(input)
		row(sim.Result())
	}
	return nil
}

// runParallel compiles patterns with the session's observability attached
// and scans input with the sharded parallel engine, verifying the result
// against the sequential oracle and printing the seam-window decision and
// the throughput of both paths. The parascan telemetry (chunks, seam
// replays, fallbacks) accrues on the session registry for -metrics.
func runParallel(patterns []string, input []byte, workers, chunkSize int, showMatches bool, sess *obs.Session) error {
	engine, err := bvap.Compile(patterns,
		bvap.WithMetrics(sess.Registry), bvap.WithTracer(sess.Tracer))
	if err != nil {
		return err
	}
	rep := engine.Report()
	if rep.Unsupported > 0 {
		fmt.Printf("note: %d of %d patterns unsupported (they never match)\n",
			rep.Unsupported, len(rep.Patterns))
	}
	if w, ok := engine.SeamWindow(); ok {
		fmt.Printf("seam window: %d bytes (bounded reach; chunked scan eligible)\n", w)
	} else {
		fmt.Println("seam window: unbounded reach — FindAllParallel falls back to the sequential scan")
	}

	t0 := time.Now()
	want := engine.FindAll(input)
	seqDur := time.Since(t0)

	reg := sess.Registry
	if reg == nil {
		reg = telemetryScratch()
	}
	opts := &bvap.ParallelOptions{Workers: workers, ChunkSize: chunkSize, Metrics: reg}
	t1 := time.Now()
	got, err := engine.FindAllParallel(context.Background(), input, opts)
	parDur := time.Since(t1)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("parallel scan diverged from sequential: %d vs %d matches", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("parallel scan diverged from sequential at match %d: %+v vs %+v", i, got[i], want[i])
		}
	}

	mbps := func(d time.Duration) float64 {
		if s := d.Seconds(); s > 0 {
			return float64(len(input)) / s / 1e6
		}
		return 0
	}
	fmt.Printf("sequential: %d matches in %v (%.1f MB/s)\n", len(want), seqDur.Round(time.Microsecond), mbps(seqDur))
	fmt.Printf("parallel:   %d matches in %v (%.1f MB/s), verified identical\n", len(got), parDur.Round(time.Microsecond), mbps(parDur))
	if parDur > 0 {
		fmt.Printf("speedup: %.2fx (workers=%d chunk=%d)\n", seqDur.Seconds()/parDur.Seconds(), workers, chunkSize)
	}
	if showMatches {
		for _, m := range got {
			fmt.Printf("match pattern=%d end=%d\n", m.Pattern, m.End)
		}
	}
	return nil
}

// printTrace renders the paper's Table 1/Table 2 style execution traces for
// one pattern over a short input: the naïve per-transition NBVA next to the
// action-homogeneous BVAP execution.
func printTrace(patterns []string, input []byte) error {
	if len(patterns) != 1 {
		return fmt.Errorf("-trace needs exactly one pattern (got %d)", len(patterns))
	}
	if len(input) > 64 {
		input = input[:64]
	}
	ast, err := regex.Parse(patterns[0])
	if err != nil {
		return err
	}
	machine, err := nbva.Build(ast)
	if err != nil {
		return err
	}
	ah, err := nbva.Transform(machine)
	if err != nil {
		return err
	}
	fmt.Printf("naïve NBVA execution of %q (Table 1 style):\n%s\n", patterns[0], nbva.TraceNaive(machine, input))
	fmt.Printf("AH-NBVA (BVAP) execution (Table 2 style):\n%s", nbva.TraceAH(ah, input))
	return nil
}

func printResult(r bvap.Result) {
	fmt.Println(r)
	fmt.Printf("symbols=%d cycles=%d stalls=%d power=%.4fW FoM=%.6f\n",
		r.Symbols, r.Cycles, r.StallCycles, r.PowerW, r.FoM)
}

func loadInput(path, dataset string, length int, patterns []string) ([]byte, error) {
	if path != "" {
		return os.ReadFile(path)
	}
	if dataset != "" {
		d, err := bvap.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		pats := patterns
		if len(pats) == 0 {
			pats = d.Patterns(100)
		}
		return d.Input(length, pats), nil
	}
	// Default: read stdin if piped.
	info, err := os.Stdin.Stat()
	if err == nil && info.Mode()&os.ModeCharDevice == 0 {
		return io.ReadAll(os.Stdin)
	}
	return nil, fmt.Errorf("no input: pass -input, -dataset, or pipe data on stdin")
}

func readPatterns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvapsim:", err)
	os.Exit(1)
}
