package main

import (
	"os"
	"path/filepath"
	"testing"

	"bvap"
	"bvap/internal/obs"
)

func TestParseArch(t *testing.T) {
	// The CLI resolves -arch through bvap.ParseArchitecture; the aliases
	// the tool documents must keep parsing.
	cases := map[string]bvap.Architecture{
		"bvap":      bvap.ArchBVAP,
		"BVAP":      bvap.ArchBVAP,
		"bvap-s":    bvap.ArchBVAPStreaming,
		"streaming": bvap.ArchBVAPStreaming,
		"cama":      bvap.ArchCAMA,
		"CA":        bvap.ArchCA,
		"eap":       bvap.ArchEAP,
		"cnt":       bvap.ArchCNT,
	}
	for in, want := range cases {
		got, err := bvap.ParseArchitecture(in)
		if err != nil || got != want {
			t.Errorf("ParseArchitecture(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := bvap.ParseArchitecture("gpu"); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestReadPatterns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	content := "# comment\nab{3}c\n\n  x.{10}y  \n#trailing\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pats, err := readPatterns(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 || pats[0] != "ab{3}c" || pats[1] != "x.{10}y" {
		t.Fatalf("patterns = %q", pats)
	}
	if _, err := readPatterns(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadInputDataset(t *testing.T) {
	in, err := loadInput("", "Snort", 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 2048 {
		t.Fatalf("length = %d", len(in))
	}
	if _, err := loadInput("", "unknown-set", 10, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadInput(path, "", 0, nil)
	if err != nil || string(in) != "hello" {
		t.Fatalf("loadInput file = %q, %v", in, err)
	}
}

func TestRunParallel(t *testing.T) {
	sess, err := obs.Setup("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	input, err := loadInput("", "Snort", 4096, []string{"ab{2,8}c"})
	if err != nil {
		t.Fatal(err)
	}
	// Bounded-reach pattern: chunked path, verified against sequential.
	if err := runParallel([]string{"ab{2,8}c"}, input, 2, 512, false, sess); err != nil {
		t.Fatal(err)
	}
	// Unbounded-reach pattern: sequential fallback, still verified.
	if err := runParallel([]string{"ab+c"}, input, 2, 512, false, sess); err != nil {
		t.Fatal(err)
	}
}
