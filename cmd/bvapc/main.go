// Command bvapc is the BVAP regex-to-hardware compiler (§7 of the paper):
// it translates a set of regexes into the JSON configuration that programs
// the (simulated) hardware.
//
// Usage:
//
//	bvapc [flags] pattern...
//	bvapc [flags] -f rules.txt
//
// Flags:
//
//	-bv N       virtual bit-vector size K (power of two in [8,64]; default 64)
//	-unfold N   unfolding threshold (default 8)
//	-o FILE     write the configuration to FILE (default stdout)
//	-f FILE     read patterns from FILE, one per line ('#' comments)
//	-q          suppress the per-pattern report
//	-trace FILE write a structured trace of the compile pipeline (per-phase
//	            spans, per-pattern rewrite decisions); Chrome trace_event
//	            JSON, or JSONL with a .jsonl suffix
//	-metrics FILE write compile counters (Prometheus text; .json for JSON)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"bvap"
	"bvap/internal/nbva"
	"bvap/internal/obs"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
	"bvap/internal/workload"
)

func main() {
	bv := flag.Int("bv", 64, "virtual bit-vector size K")
	unfold := flag.Int("unfold", 8, "unfolding threshold")
	out := flag.String("o", "", "output file (default stdout)")
	file := flag.String("f", "", "pattern file, one regex per line")
	quiet := flag.Bool("q", false, "suppress the report")
	verify := flag.Bool("verify", false, "differentially verify the compiled machines against the reference software matcher on random inputs (the paper's §8 consistency check)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT of each pattern's AH-NBVA instead of the JSON configuration")
	metricsPath := flag.String("metrics", "", "write compile metrics to this file (Prometheus text; .json for JSON)")
	tracePath := flag.String("trace", "", "write a compile-pipeline trace to this file (Chrome trace_event JSON; .jsonl for JSONL)")
	flag.Parse()

	sess, err := obs.Setup(*metricsPath, *tracePath, "")
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
	}()

	patterns := flag.Args()
	if *file != "" {
		fromFile, err := readPatterns(*file)
		if err != nil {
			fatal(err)
		}
		patterns = append(fromFile, patterns...)
	}
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "bvapc: no patterns; pass them as arguments or with -f")
		flag.Usage()
		os.Exit(2)
	}

	engine, err := bvap.Compile(patterns, bvap.WithBVSize(*bv), bvap.WithUnfoldThreshold(*unfold),
		bvap.WithMetrics(sess.Registry), bvap.WithTracer(sess.Tracer))
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *dot {
		if err := writeDOT(w, patterns); err != nil {
			fatal(err)
		}
	} else if err := engine.WriteConfig(w); err != nil {
		fatal(err)
	}

	if *verify {
		if err := verifyEngine(engine); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "bvapc: consistency check passed (compiled machines agree with the reference matcher)")
	}

	if !*quiet {
		rep := engine.Report()
		fmt.Fprintf(os.Stderr, "compiled %d patterns: %d STEs (%d BV-STEs) across %d tiles, %d unsupported\n",
			len(rep.Patterns), rep.TotalSTEs, rep.TotalBVSTEs, rep.Tiles, rep.Unsupported)
		ms := engine.MappingStats()
		fmt.Fprintf(os.Stderr, "mapping: %.0f%% STE utilization, %.0f%% BV utilization (%.0f%% BVM capacity idle), busiest tile %d STEs / %d BVs\n",
			ms.STEUtilization*100, ms.BVUtilization*100, ms.WastedBVMFrac*100, ms.MaxSTEs, ms.MaxBVs)
		for _, p := range rep.Patterns {
			if !p.Supported {
				fmt.Fprintf(os.Stderr, "  UNSUPPORTED %q: %s\n", p.Pattern, p.Reason)
				continue
			}
			fmt.Fprintf(os.Stderr, "  %q: %d STEs (%d BV), %d unfolded (%.1fx saving)\n",
				p.Pattern, p.STEs, p.BVSTEs, p.UnfoldedSTEs,
				float64(p.UnfoldedSTEs)/float64(p.STEs))
		}
	}
}

// verifyEngine replays random inputs (seeded, plus planted witnesses)
// through the compiled machines and the independent reference matcher and
// compares every match position.
func verifyEngine(engine *bvap.Engine) error {
	patterns := engine.Patterns()
	refs := make([]*swmatch.Matcher, len(patterns))
	rep := engine.Report()
	for i, pat := range patterns {
		if !rep.Patterns[i].Supported {
			continue
		}
		m, err := swmatch.New(pat)
		if err != nil {
			return fmt.Errorf("reference matcher for %q: %v", pat, err)
		}
		refs[i] = m
	}
	for trial := 0; trial < 8; trial++ {
		seed := rand.New(rand.NewSource(int64(trial))).Int63()
		input := workload.Corpus(seed, 4096, "", patterns, 0.05)
		got := map[int][]int{}
		for _, m := range engine.FindAll(input) {
			got[m.Pattern] = append(got[m.Pattern], m.End)
		}
		for i, ref := range refs {
			if ref == nil {
				continue
			}
			want := ref.MatchEnds(input)
			if len(got[i]) != len(want) {
				return fmt.Errorf("pattern %q: %d matches vs reference %d (trial %d)",
					patterns[i], len(got[i]), len(want), trial)
			}
			for j := range want {
				if got[i][j] != want[j] {
					return fmt.Errorf("pattern %q: match %d at %d vs reference %d",
						patterns[i], j, got[i][j], want[j])
				}
			}
		}
	}
	return nil
}

// writeDOT renders each pattern's AH-NBVA as a Graphviz digraph (one graph
// per pattern), in the style of the paper's Fig. 2(g).
func writeDOT(w *os.File, patterns []string) error {
	for i, pat := range patterns {
		ast, err := regex.Parse(pat)
		if err != nil {
			return fmt.Errorf("%q: %v", pat, err)
		}
		machine, err := nbva.Build(regex.Rewrite(ast, regex.DefaultOptions()))
		if err != nil {
			return fmt.Errorf("%q: %v", pat, err)
		}
		ah, err := nbva.Transform(machine)
		if err != nil {
			return fmt.Errorf("%q: %v", pat, err)
		}
		if _, err := fmt.Fprint(w, ah.DOT(fmt.Sprintf("pattern%d", i))); err != nil {
			return err
		}
	}
	return nil
}

func readPatterns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvapc:", err)
	os.Exit(1)
}
