// Command bvapbench regenerates the tables and figures of the paper's
// evaluation (§8): the Fig. 11 and Fig. 12 micro-benchmarks, the Fig. 13
// design space exploration, Table 5's best-FoM parameters, the Fig. 14
// real-world comparison, and the headline summary.
//
// Usage:
//
//	bvapbench -exp fig11|fig12|fig13|table5|fig14|summary|ablation|stride2|all [flags]
//
// Flags:
//
//	-sample N    regexes sampled per dataset (default 80; paper uses >300)
//	-inputlen N  corpus length per run (default 4096)
//	-datasets    comma-separated dataset subset (default all seven)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bvap/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig11, fig12, fig13, table5, fig14, summary, ablation, stride2, all")
	ablationDataset := flag.String("ablation-dataset", "Snort", "dataset for the -exp ablation run")
	sample := flag.Int("sample", 80, "regexes sampled per dataset")
	inputLen := flag.Int("inputlen", 4096, "input corpus length")
	datasetList := flag.String("datasets", "", "comma-separated dataset subset")
	jsonPath := flag.String("json", "", "also write the structured results as JSON to this file")
	flag.Parse()

	var dump jsonResults
	var dsets []string
	if *datasetList != "" {
		for _, d := range strings.Split(*datasetList, ",") {
			dsets = append(dsets, strings.TrimSpace(d))
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	if all || want["fig11"] {
		points, err := experiments.Fig11(experiments.Fig11Options{InputLen: *inputLen * 4})
		if err != nil {
			fatal(err)
		}
		dump.Fig11 = points
		experiments.RenderFig11(os.Stdout, points)
		fmt.Println()
	}
	if all || want["fig12"] {
		points, err := experiments.Fig12(experiments.Fig12Options{InputLen: *inputLen * 4})
		if err != nil {
			fatal(err)
		}
		dump.Fig12 = points
		experiments.RenderFig12(os.Stdout, points)
		fmt.Println()
	}

	var dse []experiments.DSEPoint
	needDSE := all || want["fig13"] || want["table5"] || want["fig14"] || want["summary"]
	if needDSE {
		var err error
		dse, err = experiments.Fig13(experiments.DSEOptions{
			Sample:   *sample,
			InputLen: *inputLen / 2,
			Datasets: dsets,
		})
		if err != nil {
			fatal(err)
		}
	}
	if all || want["fig13"] {
		dump.Fig13 = dse
		experiments.RenderFig13(os.Stdout, dse)
		fmt.Println()
	}
	best := experiments.Table5(dse)
	dump.Table5 = best
	if all || want["table5"] {
		experiments.RenderTable5(os.Stdout, best)
		fmt.Println()
	}
	if all || want["fig14"] || want["summary"] {
		params := map[string]experiments.BestParams{}
		for _, b := range best {
			params[b.Dataset] = b
		}
		rows, err := experiments.Fig14(experiments.Fig14Options{
			Sample:   *sample,
			InputLen: *inputLen,
			Datasets: dsets,
			Params:   params,
		})
		if err != nil {
			fatal(err)
		}
		if all || want["fig14"] {
			dump.Fig14 = rows
			experiments.RenderFig14(os.Stdout, rows)
			fmt.Println()
		}
		if all || want["summary"] {
			s := experiments.Summarize(rows)
			dump.Summary = &s
			experiments.RenderSummary(os.Stdout, s)
			fmt.Println()
		}
	}
	if all || want["ablation"] {
		rows, err := experiments.Ablation(experiments.AblationOptions{
			Dataset:  *ablationDataset,
			Sample:   *sample,
			InputLen: *inputLen,
		})
		if err != nil {
			fatal(err)
		}
		dump.Ablation = rows
		experiments.RenderAblation(os.Stdout, *ablationDataset, rows)
	}

	if all || want["stride2"] {
		rows, err := experiments.Stride2(experiments.Stride2Options{
			Sample:   *sample,
			InputLen: *inputLen,
			Datasets: dsets,
		})
		if err != nil {
			fatal(err)
		}
		dump.Stride2 = rows
		fmt.Println()
		experiments.RenderStride2(os.Stdout, rows)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// jsonResults is the machine-readable form of a bvapbench run, for plotting
// the figures outside this repository.
type jsonResults struct {
	Fig11    []experiments.Fig11Point  `json:"fig11,omitempty"`
	Fig12    []experiments.Fig12Point  `json:"fig12,omitempty"`
	Fig13    []experiments.DSEPoint    `json:"fig13,omitempty"`
	Table5   []experiments.BestParams  `json:"table5,omitempty"`
	Fig14    []experiments.Fig14Row    `json:"fig14,omitempty"`
	Summary  *experiments.Summary      `json:"summary,omitempty"`
	Ablation []experiments.AblationRow `json:"ablation,omitempty"`
	Stride2  []experiments.Stride2Row  `json:"stride2,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvapbench:", err)
	os.Exit(1)
}
