// Command bvapbench regenerates the tables and figures of the paper's
// evaluation (§8) and runs the canonical perf harness. Every experiment is
// declared once in the registry below; the -exp help text, the usage
// listing and the dispatch all derive from it.
//
// Usage:
//
//	bvapbench -exp <name>[,<name>...] [flags]
//	bvapbench -exp all            # every experiment except perf
//	bvapbench -exp perf -baseline testdata/bench_baseline.json
//
// Flags:
//
//	-sample N    regexes sampled per dataset (default 80; paper uses >300)
//	-inputlen N  corpus length per run (default 4096)
//	-datasets    comma-separated dataset subset (default all seven)
//
// The perf experiment writes a versioned BENCH_<n>.json report (schema in
// EXPERIMENTS.md) into the current directory (-bench-out overrides), and
// with -baseline compares the counted metrics against a previous report,
// exiting non-zero when any metric regresses beyond its threshold.
// -render adds ASCII tile-occupancy and stall heatmaps per dataset.
//
// Observability: -metrics writes the accrued telemetry counters (Prometheus
// text, or JSON with a .json suffix), -trace writes a structured trace with
// one span per experiment (Chrome trace_event JSON, or JSONL with a .jsonl
// suffix), and -pprof serves net/http/pprof, expvar and a live /metrics
// endpoint while the benchmarks run. The breakdown experiment attributes a
// run's energy to pipeline stages on the architecture chosen by -arch.
//
// The faults experiment sweeps a fault-injection rate over one dataset and
// reports what the resilience stack delivers: detection rate, window
// retries, software fallbacks, cross-check mismatches, and the energy
// overhead of parity protection plus re-execution (see -fault-* flags).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bvap"
	"bvap/internal/experiments"
	"bvap/internal/hwsim"
	"bvap/internal/obs"
	"bvap/internal/telemetry"
)

// experiment is one -exp registry entry. The registry is the single source
// of truth: usage text, the -exp help string and the dispatch loop are all
// generated from it, in declaration order (which is also the execution
// order of -exp all).
type experiment struct {
	name string
	desc string
	// inAll marks experiments included in -exp all. The perf harness is
	// excluded: its reports are only comparable at pinned parameters, so
	// it must be invoked deliberately.
	inAll bool
	run   func(a *app) error
}

func registry() []experiment {
	return []experiment{
		{"fig11", "r·a{n} micro-benchmark vs CAMA", true, (*app).runFig11},
		{"fig12", "r·a{64}·b{m} vs CNT and CAMA", true, (*app).runFig12},
		{"fig13", "design space exploration grid", true, (*app).runFig13},
		{"table5", "best-FoM parameters per dataset", true, (*app).runTable5},
		{"fig14", "real-world comparison across architectures", true, (*app).runFig14},
		{"summary", "headline aggregate claims", true, (*app).runSummary},
		{"ablation", "BVAP design-choice ablation", true, (*app).runAblation},
		{"stride2", "two-symbol stride variant", true, (*app).runStride2},
		{"faults", "fault-injection resilience sweep", true, (*app).runFaults},
		{"breakdown", "per-stage energy attribution on one dataset", true, (*app).runBreakdown},
		{"perf", "canonical perf harness → BENCH_<n>.json (+ -baseline compare)", false, (*app).runPerf},
		{"throughput", "parallel-vs-sequential scan throughput sweep → BENCH_<n>.json (+ -baseline compare)", false, (*app).runThroughput},
		{"soak", "service soak: crash/resume correctness + overload/reload churn → BENCH_<n>.json (+ -baseline compare)", false, (*app).runSoak},
		{"obs", "tracing overhead: disabled-path allocs, live throughput cost, energy-partition exactness → BENCH_<n>.json (+ -baseline compare)", false, (*app).runObs},
		{"cluster", "fleet soak: node kills, session migration, coordinated reloads, tenant quotas → BENCH_<n>.json (+ -baseline compare)", false, (*app).runCluster},
		{"fleetobs", "fleet observability gate: cross-node trace stitching, exact metrics federation, SLO burn-rate alerting, disabled-path allocs → BENCH_<n>.json (+ -baseline compare)", false, (*app).runFleetObs},
		{"heal", "self-healing soak: gossip membership, replicated checkpoints, kill/join re-placement with NO driver-side migration → BENCH_<n>.json (+ -baseline compare)", false, (*app).runHeal},
		{"rebar", "curated competitive conformance suite: verified per-engine match counts + BVAP-vs-regexp position → BENCH_<n>.json (+ -baseline compare)", false, (*app).runRebar},
	}
}

func expNames(includeAll bool) string {
	var names []string
	for _, e := range registry() {
		names = append(names, e.name)
	}
	if includeAll {
		names = append(names, "all")
	}
	return strings.Join(names, ", ")
}

// app carries the parsed flags and cross-experiment memoized state.
type app struct {
	// flags
	ablationDataset  string
	breakdownDataset string
	archName         string
	faultsDataset    string
	faultSeed        int64
	faultRates       string
	faultStreaming   bool
	faultNoParity    bool
	sample           int
	inputLen         int
	tpDataset        string
	tpInputs         int
	tpWorkers        string
	tpChunks         string
	soakDataset      string
	soakDuration     time.Duration
	soakScanners     int
	soakReloads      int
	soakRestarts     int
	obsDataset       string
	obsScans         int
	obsRounds        int
	clusterDataset   string
	clusterNodes     int
	clusterStreams   int
	clusterKills     int
	clusterPublishes int
	fleetobsDataset  string
	fleetobsNodes    int
	fleetobsScans    int
	healDataset      string
	healNodes        int
	healStreams      int
	healKills        int
	healJoins        int
	healReplicas     int
	healInjectLoss   bool
	rebarDir         string
	rebarFilter      string
	rebarEngines     string
	rebarReps        int
	datasets         []string
	archs            []string
	baselinePath     string
	benchOut         string
	render           bool

	sess *obs.Session
	dump jsonResults

	// Memoized stages shared between experiments (fig13 → table5 →
	// fig14 → summary all build on the DSE).
	dse     []experiments.DSEPoint
	dseDone bool
	fig14   []experiments.Fig14Row
}

func main() {
	var a app
	exp := flag.String("exp", "all", "comma-separated experiments: "+expNames(true))
	flag.StringVar(&a.ablationDataset, "ablation-dataset", "Snort", "dataset for the -exp ablation run")
	flag.StringVar(&a.breakdownDataset, "breakdown-dataset", "Snort", "dataset for the -exp breakdown run")
	flag.StringVar(&a.archName, "arch", "bvap", "architecture for the -exp breakdown run: bvap, bvap-s, cama, ca, eap, cnt")
	flag.StringVar(&a.faultsDataset, "fault-dataset", "Snort", "dataset for the -exp faults sweep")
	flag.Int64Var(&a.faultSeed, "fault-seed", 1, "fault-injection seed for the -exp faults sweep")
	flag.StringVar(&a.faultRates, "fault-rates", "", "comma-separated per-site injection rates for -exp faults (default 0,1e-4,5e-4,2e-3,1e-2)")
	flag.BoolVar(&a.faultStreaming, "fault-streaming", false, "run the -exp faults sweep on BVAP-S (stream drop/dup faults)")
	flag.BoolVar(&a.faultNoParity, "fault-noparity", false, "disable the per-BV parity detection circuit in -exp faults")
	flag.IntVar(&a.sample, "sample", 80, "regexes sampled per dataset")
	flag.IntVar(&a.inputLen, "inputlen", 4096, "input corpus length")
	flag.StringVar(&a.tpDataset, "tp-dataset", "Snort", "dataset for the -exp throughput sweep")
	flag.IntVar(&a.tpInputs, "tp-inputs", 32, "batch pieces the -exp throughput corpus is split into")
	flag.StringVar(&a.tpWorkers, "tp-workers", "", "comma-separated worker counts for -exp throughput (default 1,2,4[,NumCPU])")
	flag.StringVar(&a.tpChunks, "tp-chunks", "", "comma-separated chunk sizes for -exp throughput (default 4096,16384)")
	flag.StringVar(&a.soakDataset, "soak-dataset", "Snort", "dataset for the -exp soak run")
	flag.DurationVar(&a.soakDuration, "soak-duration", 2*time.Second, "overload-phase wall bound for -exp soak")
	flag.IntVar(&a.soakScanners, "soak-scanners", 8, "concurrent scan goroutines for -exp soak")
	flag.IntVar(&a.soakReloads, "soak-reloads", 3, "concurrent hot reloads during the -exp soak overload phase")
	flag.IntVar(&a.soakRestarts, "soak-restarts", 4, "checkpoint/resume crash cycles in the -exp soak session phase")
	flag.StringVar(&a.obsDataset, "obs-dataset", "Snort", "dataset for the -exp obs overhead run")
	flag.IntVar(&a.obsScans, "obs-scans", 32, "timed scans per side per round in -exp obs")
	flag.IntVar(&a.obsRounds, "obs-rounds", 3, "alternating measurement rounds in -exp obs")
	flag.StringVar(&a.clusterDataset, "cluster-dataset", "Snort", "dataset for the -exp cluster fleet soak")
	flag.IntVar(&a.clusterNodes, "cluster-nodes", 3, "in-process nodes in the -exp cluster fleet")
	flag.IntVar(&a.clusterStreams, "cluster-streams", 6, "concurrent migrating sessions in -exp cluster")
	flag.IntVar(&a.clusterKills, "cluster-kills", 2, "forced node kills during -exp cluster (capped at nodes-1)")
	flag.IntVar(&a.clusterPublishes, "cluster-publishes", 2, "coordinated reload rounds during -exp cluster")
	flag.StringVar(&a.fleetobsDataset, "fleetobs-dataset", "Snort", "dataset for the -exp fleetobs gate")
	flag.IntVar(&a.fleetobsNodes, "fleetobs-nodes", 3, "in-process nodes in the -exp fleetobs fleet")
	flag.IntVar(&a.fleetobsScans, "fleetobs-scans", 24, "forced-forward ring-routed scans in -exp fleetobs")
	flag.StringVar(&a.healDataset, "heal-dataset", "Snort", "dataset for the -exp heal self-healing soak")
	flag.IntVar(&a.healNodes, "heal-nodes", 3, "initial in-process nodes in the -exp heal fleet")
	flag.IntVar(&a.healStreams, "heal-streams", 6, "concurrent sessions in -exp heal")
	flag.IntVar(&a.healKills, "heal-kills", 1, "forced node kills during -exp heal (capped at nodes-1)")
	flag.IntVar(&a.healJoins, "heal-joins", 1, "standby nodes joining mid-stream during -exp heal")
	flag.IntVar(&a.healReplicas, "heal-replicas", 2, "checkpoint replication factor R in -exp heal")
	flag.BoolVar(&a.healInjectLoss, "heal-inject-loss", false, "force R=1 so a kill loses checkpoints; the soak must then fail (negative control)")
	flag.StringVar(&a.rebarDir, "rebar-dir", "testdata/rebar", "case-file directory for -exp rebar")
	flag.StringVar(&a.rebarFilter, "rebar-filter", "", "regexp selecting case names for -exp rebar")
	flag.StringVar(&a.rebarEngines, "rebar-engines", "", "comma-separated engine subset for -exp rebar (default: all registered engines)")
	flag.IntVar(&a.rebarReps, "rebar-reps", 2, "timed runs per (case, engine) cell in -exp rebar")
	datasetList := flag.String("datasets", "", "comma-separated dataset subset")
	archList := flag.String("archs", "", "comma-separated architecture subset for -exp perf (BVAP, BVAP-S, CAMA, CA, eAP, CNT)")
	jsonPath := flag.String("json", "", "also write the structured results as JSON to this file")
	flag.StringVar(&a.baselinePath, "baseline", "", "BENCH_<n>.json to compare the -exp perf run against (non-zero exit on regression)")
	flag.StringVar(&a.benchOut, "bench-out", "", "where -exp perf writes its report (default: next BENCH_<n>.json in the current directory)")
	flag.BoolVar(&a.render, "render", false, "print ASCII tile-occupancy and stall heatmaps during -exp perf")
	metricsPath := flag.String("metrics", "", "write telemetry metrics to this file (Prometheus text; .json for JSON)")
	tracePath := flag.String("trace", "", "write a structured trace to this file (Chrome trace_event JSON; .jsonl for JSONL)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bvapbench -exp <name>[,<name>...] [flags]\n\nexperiments:\n")
		for _, e := range registry() {
			all := ""
			if !e.inAll {
				all = " (not in -exp all)"
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s%s\n", e.name, e.desc, all)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *datasetList != "" {
		for _, d := range strings.Split(*datasetList, ",") {
			a.datasets = append(a.datasets, strings.TrimSpace(d))
		}
	}
	if *archList != "" {
		for _, ar := range strings.Split(*archList, ",") {
			a.archs = append(a.archs, strings.TrimSpace(ar))
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	known := map[string]bool{"all": true}
	for _, e := range registry() {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			fatal(fmt.Errorf("unknown experiment %q (want %s)", name, expNames(true)))
		}
	}

	sess, err := obs.Setup(*metricsPath, *tracePath, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	a.sess = sess
	defer func() {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
	}()

	for _, e := range registry() {
		if !(want[e.name] || (want["all"] && e.inAll)) {
			continue
		}
		end := a.span(e.name)
		err := e.run(&a)
		end()
		if err != nil {
			fatal(fmt.Errorf("%s: %v", e.name, err))
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a.dump); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// span wraps one experiment in a trace span (a no-op without -trace).
func (a *app) span(name string) func() {
	if a.sess == nil || a.sess.Tracer == nil {
		return func() {}
	}
	sp := a.sess.Tracer.Span(name, "bvapbench")
	return func() { sp.End() }
}

// ensureDSE memoizes the Fig. 13 exploration shared by fig13, table5,
// fig14 and summary.
func (a *app) ensureDSE() ([]experiments.DSEPoint, error) {
	if a.dseDone {
		return a.dse, nil
	}
	end := a.span("fig13-dse")
	defer end()
	dse, err := experiments.Fig13(experiments.DSEOptions{
		Sample:   a.sample,
		InputLen: a.inputLen / 2,
		Datasets: a.datasets,
	})
	if err != nil {
		return nil, err
	}
	a.dse, a.dseDone = dse, true
	return dse, nil
}

// ensureFig14 memoizes the real-world comparison shared by fig14 and
// summary.
func (a *app) ensureFig14() ([]experiments.Fig14Row, error) {
	if a.fig14 != nil {
		return a.fig14, nil
	}
	dse, err := a.ensureDSE()
	if err != nil {
		return nil, err
	}
	params := map[string]experiments.BestParams{}
	for _, b := range experiments.Table5(dse) {
		params[b.Dataset] = b
	}
	rows, err := experiments.Fig14(experiments.Fig14Options{
		Sample:   a.sample,
		InputLen: a.inputLen,
		Datasets: a.datasets,
		Params:   params,
	})
	if err != nil {
		return nil, err
	}
	a.fig14 = rows
	return rows, nil
}

func (a *app) runFig11() error {
	points, err := experiments.Fig11(experiments.Fig11Options{InputLen: a.inputLen * 4})
	if err != nil {
		return err
	}
	a.dump.Fig11 = points
	experiments.RenderFig11(os.Stdout, points)
	fmt.Println()
	return nil
}

func (a *app) runFig12() error {
	points, err := experiments.Fig12(experiments.Fig12Options{InputLen: a.inputLen * 4})
	if err != nil {
		return err
	}
	a.dump.Fig12 = points
	experiments.RenderFig12(os.Stdout, points)
	fmt.Println()
	return nil
}

func (a *app) runFig13() error {
	dse, err := a.ensureDSE()
	if err != nil {
		return err
	}
	a.dump.Fig13 = dse
	experiments.RenderFig13(os.Stdout, dse)
	fmt.Println()
	return nil
}

func (a *app) runTable5() error {
	dse, err := a.ensureDSE()
	if err != nil {
		return err
	}
	best := experiments.Table5(dse)
	a.dump.Table5 = best
	experiments.RenderTable5(os.Stdout, best)
	fmt.Println()
	return nil
}

func (a *app) runFig14() error {
	rows, err := a.ensureFig14()
	if err != nil {
		return err
	}
	a.dump.Fig14 = rows
	experiments.RenderFig14(os.Stdout, rows)
	fmt.Println()
	return nil
}

func (a *app) runSummary() error {
	rows, err := a.ensureFig14()
	if err != nil {
		return err
	}
	s := experiments.Summarize(rows)
	a.dump.Summary = &s
	experiments.RenderSummary(os.Stdout, s)
	fmt.Println()
	return nil
}

func (a *app) runAblation() error {
	rows, err := experiments.Ablation(experiments.AblationOptions{
		Dataset:  a.ablationDataset,
		Sample:   a.sample,
		InputLen: a.inputLen,
	})
	if err != nil {
		return err
	}
	a.dump.Ablation = rows
	experiments.RenderAblation(os.Stdout, a.ablationDataset, rows)
	return nil
}

func (a *app) runStride2() error {
	rows, err := experiments.Stride2(experiments.Stride2Options{
		Sample:   a.sample,
		InputLen: a.inputLen,
		Datasets: a.datasets,
	})
	if err != nil {
		return err
	}
	a.dump.Stride2 = rows
	fmt.Println()
	experiments.RenderStride2(os.Stdout, rows)
	return nil
}

func (a *app) runFaults() error {
	rates, err := parseRates(a.faultRates)
	if err != nil {
		return err
	}
	fopt := experiments.FaultsOptions{
		Dataset:   a.faultsDataset,
		Sample:    a.sample,
		InputLen:  a.inputLen,
		Rates:     rates,
		Seed:      a.faultSeed,
		Streaming: a.faultStreaming,
		NoParity:  a.faultNoParity,
	}
	rows, err := experiments.Faults(fopt)
	if err != nil {
		return err
	}
	a.dump.Faults = rows
	experiments.RenderFaults(os.Stdout, fopt, rows)
	fmt.Println()
	return nil
}

// runPerf runs the canonical perf harness, writes the versioned BENCH
// report, and — when -baseline names a previous report — compares the
// counted metrics and fails on any regression beyond the thresholds.
func (a *app) runPerf() error {
	opt := experiments.PerfOptions{
		Datasets: a.datasets,
		Archs:    a.archs,
		Sample:   a.sample,
		InputLen: a.inputLen,
	}
	if a.render {
		opt.RenderTo = os.Stdout
	}
	rep, err := experiments.Perf(opt)
	if err != nil {
		return err
	}
	a.dump.Perf = rep
	experiments.RenderPerf(os.Stdout, rep)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runThroughput runs the parallel-scan throughput sweep, writes its
// BENCH-schema report, and — when -baseline names a previous throughput
// report — compares the counted metrics (symbols and matches exactly,
// allocations within the bounded threshold) against it.
func (a *app) runThroughput() error {
	workers, err := parseIntList(a.tpWorkers)
	if err != nil {
		return fmt.Errorf("-tp-workers: %v", err)
	}
	chunks, err := parseIntList(a.tpChunks)
	if err != nil {
		return fmt.Errorf("-tp-chunks: %v", err)
	}
	opt := experiments.ThroughputOptions{
		Dataset:  a.tpDataset,
		Sample:   a.sample,
		InputLen: a.inputLen,
		Inputs:   a.tpInputs,
		Workers:  workers,
		Chunks:   chunks,
	}
	res, rep, err := experiments.Throughput(opt)
	if err != nil {
		return err
	}
	a.dump.Throughput = res
	experiments.RenderThroughput(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runSoak exercises the long-lived scan service: a checkpoint/resume
// session interrupted by forced restarts (exact-report correctness), then
// an overload phase with concurrent scanners and hot reloads. The counted
// correctness cell goes into a BENCH-schema report; -baseline compares it
// against a previous soak run.
func (a *app) runSoak() error {
	opt := experiments.SoakOptions{
		Dataset:  a.soakDataset,
		Sample:   a.sample,
		InputLen: a.inputLen,
		Restarts: a.soakRestarts,
		Duration: a.soakDuration,
		Scanners: a.soakScanners,
		Reloads:  a.soakReloads,
	}
	res, rep, err := experiments.Soak(opt)
	if err != nil {
		return err
	}
	a.dump.Soak = res
	experiments.RenderSoak(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runObs measures the observability layer's own cost: the disabled-path
// allocation contract (counted, pinned at zero), the live throughput
// overhead of an attached flight recorder (informational), and the
// bit-exactness of the traced energy partition (counted). The report goes
// into a BENCH-schema file; -baseline compares a previous obs run.
func (a *app) runObs() error {
	opt := experiments.ObsOptions{
		Dataset:  a.obsDataset,
		Sample:   a.sample,
		InputLen: a.inputLen,
		Scans:    a.obsScans,
		Rounds:   a.obsRounds,
	}
	res, rep, err := experiments.Obs(opt)
	if err != nil {
		return err
	}
	a.dump.Obs = res
	experiments.RenderObs(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runCluster runs the fleet soak: an in-process cluster of bvapd nodes
// behind a consistent-hash ring, streams migrating across forced node
// kills via wire checkpoints, rolling coordinated reloads, and a tenant
// quota pressure phase. The counted exactly-once cell goes into a
// BENCH-schema report; -baseline compares a previous cluster run.
func (a *app) runCluster() error {
	opt := experiments.ClusterSoakOptions{
		Dataset:   a.clusterDataset,
		Nodes:     a.clusterNodes,
		Streams:   a.clusterStreams,
		Kills:     a.clusterKills,
		Publishes: a.clusterPublishes,
		Sample:    a.sample,
		InputLen:  a.inputLen,
	}
	res, rep, err := experiments.ClusterSoak(opt)
	if err != nil {
		return err
	}
	a.dump.Cluster = res
	experiments.RenderClusterSoak(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runHeal runs the self-healing soak: gossip membership with a standby
// joining and a node force-killed mid-stream, exactly-once delivery
// recovered purely through replicated checkpoints and session sync (no
// driver-side migration). With -heal-inject-loss the run MUST fail — CI
// pins the non-zero exit as the negative control.
func (a *app) runHeal() error {
	opt := experiments.HealSoakOptions{
		Dataset:    a.healDataset,
		Nodes:      a.healNodes,
		Streams:    a.healStreams,
		Kills:      a.healKills,
		Joins:      a.healJoins,
		Replicas:   a.healReplicas,
		InjectLoss: a.healInjectLoss,
		Sample:     a.sample,
		InputLen:   a.inputLen,
	}
	res, rep, err := experiments.HealSoak(opt)
	if err != nil {
		return err
	}
	a.dump.Heal = res
	experiments.RenderHealSoak(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// runRebar runs the curated competitive conformance suite: every case's
// declared per-engine match count is asserted before any timing is
// trusted, the cells go into a BENCH-schema report, and any count
// mismatch fails the run after the report is rendered and written.
func (a *app) runRebar() error {
	var engines []string
	if strings.TrimSpace(a.rebarEngines) != "" {
		for _, e := range strings.Split(a.rebarEngines, ",") {
			engines = append(engines, strings.TrimSpace(e))
		}
	}
	res, rep, err := experiments.Rebar(experiments.RebarOptions{
		Dir:     a.rebarDir,
		Filter:  a.rebarFilter,
		Engines: engines,
		Reps:    a.rebarReps,
	})
	if err != nil && res == nil {
		return err // load/config error: nothing to render
	}
	a.dump.Rebar = res
	experiments.RenderRebar(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		var perr error
		out, perr = experiments.NextBenchPath(".")
		if perr != nil {
			return perr
		}
	}
	if werr := experiments.WriteBenchReport(out, rep); werr != nil {
		return werr
	}
	fmt.Printf("wrote %s\n", out)
	if err != nil {
		return err // count mismatches: non-zero exit after archiving the run
	}

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// parseIntList parses a comma-separated list of positive ints; an empty
// string selects the experiment's defaults (nil).
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runFleetObs runs the fleet observability gate: cross-node trace
// stitching with zero orphans, exact metrics federation, SLO burn-rate
// fire/resolve on an injected regression, and the zero-alloc disabled
// tracing path.
func (a *app) runFleetObs() error {
	opt := experiments.FleetObsOptions{
		Dataset:  a.fleetobsDataset,
		Nodes:    a.fleetobsNodes,
		Scans:    a.fleetobsScans,
		Sample:   a.sample,
		InputLen: a.inputLen,
	}
	res, rep, err := experiments.FleetObs(opt)
	if err != nil {
		return err
	}
	a.dump.FleetObs = res
	experiments.RenderFleetObs(os.Stdout, res)

	out := a.benchOut
	if out == "" {
		out, err = experiments.NextBenchPath(".")
		if err != nil {
			return err
		}
	}
	if err := experiments.WriteBenchReport(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if a.baselinePath != "" {
		base, err := experiments.ReadBenchReport(a.baselinePath)
		if err != nil {
			return err
		}
		regs := experiments.CompareBench(rep, base, experiments.Thresholds{})
		experiments.RenderRegressions(os.Stdout, regs)
		if len(regs) > 0 {
			return fmt.Errorf("%d counted metric(s) regressed vs %s", len(regs), a.baselinePath)
		}
	}
	return nil
}

// jsonResults is the machine-readable form of a bvapbench run, for plotting
// the figures outside this repository.
type jsonResults struct {
	Fig11      []experiments.Fig11Point       `json:"fig11,omitempty"`
	Fig12      []experiments.Fig12Point       `json:"fig12,omitempty"`
	Fig13      []experiments.DSEPoint         `json:"fig13,omitempty"`
	Table5     []experiments.BestParams       `json:"table5,omitempty"`
	Fig14      []experiments.Fig14Row         `json:"fig14,omitempty"`
	Summary    *experiments.Summary           `json:"summary,omitempty"`
	Ablation   []experiments.AblationRow      `json:"ablation,omitempty"`
	Stride2    []experiments.Stride2Row       `json:"stride2,omitempty"`
	Faults     []experiments.FaultsRow        `json:"faults,omitempty"`
	Perf       *experiments.BenchReport       `json:"perf,omitempty"`
	Throughput *experiments.ThroughputResult  `json:"throughput,omitempty"`
	Soak       *experiments.SoakResult        `json:"soak,omitempty"`
	Obs        *experiments.ObsResult         `json:"obs,omitempty"`
	Cluster    *experiments.ClusterSoakResult `json:"cluster,omitempty"`
	FleetObs   *experiments.FleetObsResult    `json:"fleetobs,omitempty"`
	Heal       *experiments.HealSoakResult    `json:"heal,omitempty"`
	Rebar      *experiments.RebarResult       `json:"rebar,omitempty"`
}

// parseRates parses the -fault-rates list; an empty string selects the
// experiment's default sweep.
func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-rates entry %q: %v", f, err)
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("bad -fault-rates entry %q: rate must be in [0, 1]", f)
		}
		out = append(out, r)
	}
	return out, nil
}

// runBreakdown replays one dataset on the architecture named by -arch with
// a per-stage telemetry sink attached and prints the energy attribution
// table: which pipeline stage (state match, transition, BVM read/swap,
// MFCB routing, I/O buffering, leakage...) consumed which share.
func (a *app) runBreakdown() error {
	arch, err := bvap.ParseArchitecture(a.archName)
	if err != nil {
		return err
	}
	d, err := bvap.DatasetByName(a.breakdownDataset)
	if err != nil {
		return err
	}
	patterns := d.Patterns(a.sample)
	input := d.Input(a.inputLen, patterns)

	var sim *bvap.Simulator
	switch arch {
	case bvap.ArchBVAP, bvap.ArchBVAPStreaming:
		engine, err := bvap.Compile(patterns,
			bvap.WithMetrics(a.sess.Registry), bvap.WithTracer(a.sess.Tracer))
		if err != nil {
			return err
		}
		sim, err = engine.NewSimulator(arch)
		if err != nil {
			return err
		}
	default:
		sim, err = bvap.NewBaselineSimulator(arch, patterns)
		if err != nil {
			return err
		}
	}

	reg := a.sess.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	sink := hwsim.NewTelemetrySink(reg)
	sim.SetSink(sink)
	sim.Run(input)
	r := sim.Result()

	total := sink.TotalStageEnergyPJ()
	fmt.Printf("energy attribution: %s over %s (%d regexes, %d bytes)\n",
		arch, a.breakdownDataset, len(patterns), len(input))
	fmt.Printf("%-14s %16s %8s\n", "stage", "energy(pJ)", "share")
	for s := hwsim.Stage(0); s < hwsim.NumStages; s++ {
		pj := sink.StageEnergyPJ(s)
		if pj == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * pj / total
		}
		fmt.Printf("%-14s %16.2f %7.2f%%\n", s, pj, share)
	}
	fmt.Printf("%-14s %16.2f\n", "total", total)
	fmt.Printf("%s\n", r)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvapbench:", err)
	os.Exit(1)
}
