// Command bvapbench regenerates the tables and figures of the paper's
// evaluation (§8): the Fig. 11 and Fig. 12 micro-benchmarks, the Fig. 13
// design space exploration, Table 5's best-FoM parameters, the Fig. 14
// real-world comparison, and the headline summary.
//
// Usage:
//
//	bvapbench -exp fig11|fig12|fig13|table5|fig14|summary|ablation|stride2|breakdown|faults|all [flags]
//
// Flags:
//
//	-sample N    regexes sampled per dataset (default 80; paper uses >300)
//	-inputlen N  corpus length per run (default 4096)
//	-datasets    comma-separated dataset subset (default all seven)
//
// Observability: -metrics writes the accrued telemetry counters (Prometheus
// text, or JSON with a .json suffix), -trace writes a structured trace with
// one span per experiment (Chrome trace_event JSON, or JSONL with a .jsonl
// suffix), and -pprof serves net/http/pprof, expvar and a live /metrics
// endpoint while the benchmarks run. The breakdown experiment attributes a
// run's energy to pipeline stages on the architecture chosen by -arch.
//
// The faults experiment sweeps a fault-injection rate over one dataset and
// reports what the resilience stack delivers: detection rate, window
// retries, software fallbacks, cross-check mismatches, and the energy
// overhead of parity protection plus re-execution (see -fault-* flags).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bvap"
	"bvap/internal/experiments"
	"bvap/internal/hwsim"
	"bvap/internal/obs"
	"bvap/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig11, fig12, fig13, table5, fig14, summary, ablation, stride2, breakdown, faults, all")
	ablationDataset := flag.String("ablation-dataset", "Snort", "dataset for the -exp ablation run")
	breakdownDataset := flag.String("breakdown-dataset", "Snort", "dataset for the -exp breakdown run")
	archName := flag.String("arch", "bvap", "architecture for the -exp breakdown run: bvap, bvap-s, cama, ca, eap, cnt")
	faultsDataset := flag.String("fault-dataset", "Snort", "dataset for the -exp faults sweep")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed for the -exp faults sweep")
	faultRates := flag.String("fault-rates", "", "comma-separated per-site injection rates for -exp faults (default 0,1e-4,5e-4,2e-3,1e-2)")
	faultStreaming := flag.Bool("fault-streaming", false, "run the -exp faults sweep on BVAP-S (stream drop/dup faults)")
	faultNoParity := flag.Bool("fault-noparity", false, "disable the per-BV parity detection circuit in -exp faults")
	sample := flag.Int("sample", 80, "regexes sampled per dataset")
	inputLen := flag.Int("inputlen", 4096, "input corpus length")
	datasetList := flag.String("datasets", "", "comma-separated dataset subset")
	jsonPath := flag.String("json", "", "also write the structured results as JSON to this file")
	metricsPath := flag.String("metrics", "", "write telemetry metrics to this file (Prometheus text; .json for JSON)")
	tracePath := flag.String("trace", "", "write a structured trace to this file (Chrome trace_event JSON; .jsonl for JSONL)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address")
	flag.Parse()

	sess, err := obs.Setup(*metricsPath, *tracePath, *pprofAddr)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			fatal(err)
		}
	}()

	// span wraps one experiment in a trace span (a no-op without -trace).
	span := func(name string) func() {
		if sess.Tracer == nil {
			return func() {}
		}
		sp := sess.Tracer.Span(name, "bvapbench")
		return func() { sp.End() }
	}

	var dump jsonResults
	var dsets []string
	if *datasetList != "" {
		for _, d := range strings.Split(*datasetList, ",") {
			dsets = append(dsets, strings.TrimSpace(d))
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	if all || want["fig11"] {
		end := span("fig11")
		points, err := experiments.Fig11(experiments.Fig11Options{InputLen: *inputLen * 4})
		if err != nil {
			fatal(err)
		}
		dump.Fig11 = points
		experiments.RenderFig11(os.Stdout, points)
		fmt.Println()
		end()
	}
	if all || want["fig12"] {
		end := span("fig12")
		points, err := experiments.Fig12(experiments.Fig12Options{InputLen: *inputLen * 4})
		if err != nil {
			fatal(err)
		}
		dump.Fig12 = points
		experiments.RenderFig12(os.Stdout, points)
		fmt.Println()
		end()
	}

	var dse []experiments.DSEPoint
	needDSE := all || want["fig13"] || want["table5"] || want["fig14"] || want["summary"]
	if needDSE {
		end := span("fig13-dse")
		var err error
		dse, err = experiments.Fig13(experiments.DSEOptions{
			Sample:   *sample,
			InputLen: *inputLen / 2,
			Datasets: dsets,
		})
		end()
		if err != nil {
			fatal(err)
		}
	}
	if all || want["fig13"] {
		dump.Fig13 = dse
		experiments.RenderFig13(os.Stdout, dse)
		fmt.Println()
	}
	best := experiments.Table5(dse)
	dump.Table5 = best
	if all || want["table5"] {
		experiments.RenderTable5(os.Stdout, best)
		fmt.Println()
	}
	if all || want["fig14"] || want["summary"] {
		end := span("fig14")
		params := map[string]experiments.BestParams{}
		for _, b := range best {
			params[b.Dataset] = b
		}
		rows, err := experiments.Fig14(experiments.Fig14Options{
			Sample:   *sample,
			InputLen: *inputLen,
			Datasets: dsets,
			Params:   params,
		})
		end()
		if err != nil {
			fatal(err)
		}
		if all || want["fig14"] {
			dump.Fig14 = rows
			experiments.RenderFig14(os.Stdout, rows)
			fmt.Println()
		}
		if all || want["summary"] {
			s := experiments.Summarize(rows)
			dump.Summary = &s
			experiments.RenderSummary(os.Stdout, s)
			fmt.Println()
		}
	}
	if all || want["ablation"] {
		end := span("ablation")
		rows, err := experiments.Ablation(experiments.AblationOptions{
			Dataset:  *ablationDataset,
			Sample:   *sample,
			InputLen: *inputLen,
		})
		if err != nil {
			fatal(err)
		}
		dump.Ablation = rows
		experiments.RenderAblation(os.Stdout, *ablationDataset, rows)
		end()
	}

	if all || want["stride2"] {
		end := span("stride2")
		rows, err := experiments.Stride2(experiments.Stride2Options{
			Sample:   *sample,
			InputLen: *inputLen,
			Datasets: dsets,
		})
		if err != nil {
			fatal(err)
		}
		dump.Stride2 = rows
		fmt.Println()
		experiments.RenderStride2(os.Stdout, rows)
		end()
	}

	if all || want["faults"] {
		end := span("faults")
		rates, err := parseRates(*faultRates)
		if err != nil {
			fatal(err)
		}
		fopt := experiments.FaultsOptions{
			Dataset:   *faultsDataset,
			Sample:    *sample,
			InputLen:  *inputLen,
			Rates:     rates,
			Seed:      *faultSeed,
			Streaming: *faultStreaming,
			NoParity:  *faultNoParity,
		}
		rows, err := experiments.Faults(fopt)
		if err != nil {
			fatal(err)
		}
		dump.Faults = rows
		experiments.RenderFaults(os.Stdout, fopt, rows)
		fmt.Println()
		end()
	}

	if all || want["breakdown"] {
		end := span("breakdown")
		if err := runBreakdown(*archName, *breakdownDataset, *sample, *inputLen, sess); err != nil {
			fatal(err)
		}
		end()
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// jsonResults is the machine-readable form of a bvapbench run, for plotting
// the figures outside this repository.
type jsonResults struct {
	Fig11    []experiments.Fig11Point  `json:"fig11,omitempty"`
	Fig12    []experiments.Fig12Point  `json:"fig12,omitempty"`
	Fig13    []experiments.DSEPoint    `json:"fig13,omitempty"`
	Table5   []experiments.BestParams  `json:"table5,omitempty"`
	Fig14    []experiments.Fig14Row    `json:"fig14,omitempty"`
	Summary  *experiments.Summary      `json:"summary,omitempty"`
	Ablation []experiments.AblationRow `json:"ablation,omitempty"`
	Stride2  []experiments.Stride2Row  `json:"stride2,omitempty"`
	Faults   []experiments.FaultsRow   `json:"faults,omitempty"`
}

// parseRates parses the -fault-rates list; an empty string selects the
// experiment's default sweep.
func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-rates entry %q: %v", f, err)
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("bad -fault-rates entry %q: rate must be in [0, 1]", f)
		}
		out = append(out, r)
	}
	return out, nil
}

// runBreakdown replays one dataset on the architecture named by -arch with
// a per-stage telemetry sink attached and prints the energy attribution
// table: which pipeline stage (state match, transition, BVM read/swap,
// MFCB routing, I/O buffering, leakage...) consumed which share.
func runBreakdown(archName, dataset string, sample, inputLen int, sess *obs.Session) error {
	arch, err := bvap.ParseArchitecture(archName)
	if err != nil {
		return err
	}
	d, err := bvap.DatasetByName(dataset)
	if err != nil {
		return err
	}
	patterns := d.Patterns(sample)
	input := d.Input(inputLen, patterns)

	var sim *bvap.Simulator
	switch arch {
	case bvap.ArchBVAP, bvap.ArchBVAPStreaming:
		engine, err := bvap.Compile(patterns,
			bvap.WithMetrics(sess.Registry), bvap.WithTracer(sess.Tracer))
		if err != nil {
			return err
		}
		sim, err = engine.NewSimulator(arch)
		if err != nil {
			return err
		}
	default:
		sim, err = bvap.NewBaselineSimulator(arch, patterns)
		if err != nil {
			return err
		}
	}

	reg := sess.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	sink := hwsim.NewTelemetrySink(reg)
	sim.SetSink(sink)
	sim.Run(input)
	r := sim.Result()

	total := sink.TotalStageEnergyPJ()
	fmt.Printf("energy attribution: %s over %s (%d regexes, %d bytes)\n",
		arch, dataset, len(patterns), len(input))
	fmt.Printf("%-14s %16s %8s\n", "stage", "energy(pJ)", "share")
	for s := hwsim.Stage(0); s < hwsim.NumStages; s++ {
		pj := sink.StageEnergyPJ(s)
		if pj == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * pj / total
		}
		fmt.Printf("%-14s %16.2f %7.2f%%\n", s, pj, share)
	}
	fmt.Printf("%-14s %16.2f\n", "total", total)
	fmt.Printf("%s\n", r)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bvapbench:", err)
	os.Exit(1)
}
