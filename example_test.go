package bvap_test

import (
	"fmt"

	"bvap"
)

// Compiling a rule set and scanning a buffer.
func ExampleCompile() {
	engine, err := bvap.Compile([]string{"ab{3}c", "x.{5}y"})
	if err != nil {
		panic(err)
	}
	for _, m := range engine.FindAll([]byte("..abbbc..x12345y..")) {
		fmt.Printf("pattern %d matched ending at %d\n", m.Pattern, m.End)
	}
	// Output:
	// pattern 0 matched ending at 6
	// pattern 1 matched ending at 15
}

// Bounded repetitions compile to a handful of states instead of thousands.
func ExampleEngine_Report() {
	engine := bvap.MustCompile([]string{"url=.{8000}"})
	p := engine.Report().Patterns[0]
	fmt.Printf("BVAP: %d states; unfolding baseline: %d states\n", p.STEs, p.UnfoldedSTEs)
	// Output:
	// BVAP: 254 states; unfolding baseline: 8004 states
}

// Incremental matching over a stream, one byte at a time.
func ExampleEngine_NewStream() {
	engine := bvap.MustCompile([]string{"end"})
	stream := engine.NewStream()
	for i, b := range []byte("the end") {
		for range stream.Step(b) {
			fmt.Printf("match ends at byte %d\n", i)
		}
	}
	// Output:
	// match ends at byte 6
}

// Cycle-accurate hardware simulation with the paper's metrics.
func ExampleEngine_NewSimulator() {
	engine := bvap.MustCompile([]string{"attack.{100}end"})
	sim, err := engine.NewSimulator(bvap.ArchBVAP)
	if err != nil {
		panic(err)
	}
	sim.Run(make([]byte, 100000))
	res := sim.Result()
	fmt.Printf("simulated %d symbols on %s\n", res.Symbols, res.Architecture)
	// Output:
	// simulated 100000 symbols on BVAP
}

// Structural analysis of a pattern without compiling it.
func ExampleAnalyzePattern() {
	counting, bound, unfolded, _ := bvap.AnalyzePattern(".*a.{100}")
	fmt.Printf("counting=%v bound=%d unfolded=%d\n", counting, bound, unfolded)
	// Output:
	// counting=true bound=100 unfolded=102
}

// The synthetic benchmark datasets of the paper's evaluation.
func ExampleDatasets() {
	for _, d := range bvap.Datasets() {
		fmt.Println(d.Name())
	}
	// Output:
	// ClamAV
	// Prosite
	// RegexLib
	// Snort
	// SpamAssassin
	// Suricata
	// YARA
}
