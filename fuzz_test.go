package bvap

import (
	"testing"

	"bvap/internal/swmatch"
)

// FuzzEngineAgainstReference feeds arbitrary inputs to a fixed set of
// counting-heavy compiled patterns and cross-checks every match position
// against the independent reference matcher. Run with
// `go test -fuzz FuzzEngineAgainstReference .` for a longer campaign.
func FuzzEngineAgainstReference(f *testing.F) {
	patterns := []string{
		"ab{3}c",
		"a(.a){3}b",
		"ab{2,30}c",
		"x(yz){4}",
		"a{1,20}b",
	}
	engine := MustCompile(patterns, WithBVSize(16), WithUnfoldThreshold(2))
	refs := make([]*swmatch.Matcher, len(patterns))
	for i, pat := range patterns {
		refs[i] = swmatch.MustNew(pat)
	}

	f.Add([]byte("abbbc"))
	f.Add([]byte("abaaabab"))
	f.Add([]byte("xyzyzyzyzyz"))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaab"))
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabcabc"))

	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<12 {
			input = input[:1<<12]
		}
		got := map[int][]int{}
		for _, m := range engine.FindAll(input) {
			got[m.Pattern] = append(got[m.Pattern], m.End)
		}
		for i := range patterns {
			want := refs[i].MatchEnds(input)
			if len(got[i]) != len(want) {
				t.Fatalf("pattern %q on %q: %v vs %v", patterns[i], input, got[i], want)
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("pattern %q on %q: %v vs %v", patterns[i], input, got[i], want)
				}
			}
		}
	})
}

// FuzzCompileNeverPanics compiles arbitrary pattern strings; invalid ones
// must be reported, not crash the pipeline.
func FuzzCompileNeverPanics(f *testing.F) {
	for _, s := range []string{
		"a", "a{3000}", "(a{3}b){4}", "url=.{8000}", "(?i)[A-Z]{5}",
		"a{999999}", "((((a))))", "a|b|c{2,}", `\x00{17}`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		engine, err := Compile([]string{pattern})
		if err != nil {
			t.Fatalf("Compile must isolate per-pattern failures, got %v", err)
		}
		rep := engine.Report()
		if len(rep.Patterns) != 1 {
			t.Fatal("report shape wrong")
		}
		// Supported patterns must execute without panicking.
		engine.Count([]byte("abcabc\x00\x00url=xx"))
	})
}
