// Package bvap is a software implementation and cycle-accurate hardware
// model of BVAP, the Bit Vector Automata Processor for regular expressions
// with bounded repetitions (Wen, Kong, Le Glaunec, Mamouras, Yang —
// ASPLOS 2024).
//
// The package offers three layers:
//
//   - a regex engine (Compile / Engine) that executes patterns with
//     streaming partial-match semantics using Action-Homogeneous
//     Nondeterministic Bit Vector Automata, the paper's theoretical model:
//     bounded repetitions like a{1000} cost a handful of states instead of
//     thousands;
//   - a compiler to the BVAP hardware configuration format (WriteConfig),
//     including the §7 rewriting pipeline, Table 3 instruction selection and
//     tile mapping;
//   - a cycle-accurate simulator (NewSimulator, NewBaselineSimulator) that
//     replays workloads on the modeled BVAP hardware and on the baseline
//     automata processors CAMA, CA, eAP and CNT, reporting energy, area,
//     throughput and the paper's derived metrics.
package bvap

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"

	"bvap/internal/compiler"
	"bvap/internal/nbva"
	"bvap/internal/parascan"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
	"bvap/internal/telemetry"
)

// Option configures compilation.
type Option func(*compiler.Options)

// WithBVSize sets the virtual bit-vector size K (a power of two in [8, 64]).
// Larger values compress large repetitions better; smaller values cut the
// word-serial processing latency (§8's design space exploration).
func WithBVSize(bits int) Option {
	return func(o *compiler.Options) { o.BVSizeBits = bits }
}

// WithUnfoldThreshold sets the largest repetition bound that is unfolded
// into plain states instead of counted (unfold_th; Table 5 reports best
// values between 4 and 12).
func WithUnfoldThreshold(th int) Option {
	return func(o *compiler.Options) { o.UnfoldThreshold = th }
}

// WithTracer attaches a structured-trace emitter to compilation: the
// compiler emits one wall-time span per pipeline phase (parse → rewrite →
// Glushkov → AH → instruction selection → tile mapping) and one instant
// event per pattern recording the rewrite decision it took.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(o *compiler.Options) { o.Tracer = tr }
}

// WithMetrics attaches a metrics registry to compilation: phase wall-time
// counters, per-pattern rewrite-decision counters, Table 3 read-kind hits,
// and resource totals accrue on reg.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *compiler.Options) { o.Metrics = reg }
}

// Match reports that pattern Pattern (index into the compiled set) matched
// some substring of the input ending at byte offset End.
type Match struct {
	Pattern int
	End     int
}

// PatternReport summarizes how one pattern compiled.
type PatternReport struct {
	Pattern string
	// Supported is false when the pattern cannot be mapped onto BVAP
	// hardware; Reason explains why. Unsupported patterns never match.
	Supported bool
	Reason    string
	// Kind classifies the failure ("syntax", "capacity", "budget"); see
	// Engine.PatternErrors for the typed-error view.
	Kind string
	// STEs and BVSTEs are the hardware resources the pattern occupies.
	STEs   int
	BVSTEs int
	// UnfoldedSTEs is the state count a conventional (unfolding)
	// automata processor would need — the paper's headline saving.
	UnfoldedSTEs int
}

// Report summarizes a compilation.
type Report struct {
	Patterns    []PatternReport
	TotalSTEs   int
	TotalBVSTEs int
	Tiles       int
	Unsupported int
}

// Engine is a compiled set of patterns.
//
// Concurrency contract: an Engine is immutable after Compile returns and is
// safe for unrestricted concurrent use — any number of goroutines may call
// FindAll, Count, ScanBatch, FindAllParallel, NewStream, Report and the
// simulator constructors on one shared Engine (the race/stress tests in
// parallel_test.go hammer exactly this). The only mutable objects are the
// values an Engine hands out: a Stream (and a Simulator) is owned by one
// goroutine at a time and is not safe for concurrent use.
type Engine struct {
	res      *compiler.Result
	patterns []string

	// spool pools Streams for the batch and chunk scanners so steady-state
	// scanning allocates nothing per input; refPool pools independent
	// reference-matcher sets for the shard cross-check ladder (swmatch
	// matchers are stateful, so each concurrent verification owns a set).
	spool   *parascan.Pool[*Stream]
	refPool *parascan.Pool[[]*swmatch.Matcher]

	// seamOnce caches the SeamWindow reach analysis (safe under the
	// immutability contract: sync.Once is the one blessed lazy field).
	seamOnce    sync.Once
	seamBytes   int
	seamBounded bool

	// streamsOut counts pooled streams currently checked out (atomic
	// accounting, not engine state): the goroutine-hygiene tests assert
	// it returns to zero after every batch — including batches whose
	// shards panicked — proving the panic-recovery path returns its
	// pooled Stream.
	streamsOut atomic.Int64

	// energyRatePJPerSym is the calibrated per-symbol energy of this
	// configuration on the BVAP model, in pJ: set once by the service's
	// pre-publish calibration (before the engine is visible to scans) and 0
	// when never calibrated. It powers the serving path's live per-scan
	// energy estimate — the software engine burns no modeled energy itself.
	energyRatePJPerSym float64

	// fingerprint identifies the compiled behavior (see Fingerprint).
	fingerprint uint64
}

// Fingerprint is a stable 64-bit identity of the engine's compiled
// behavior: FNV-64a over the compile parameters that shape the machines
// (BV size, unfold threshold) plus each pattern's text and supported flag.
// Two engines with equal fingerprints execute identical automata, so a
// wire session checkpoint (SessionCheckpoint.MarshalBinary) taken against
// one resumes correctly against the other — even across processes or
// reloads that recompiled the same pattern set.
func (e *Engine) Fingerprint() uint64 { return e.fingerprint }

// computeFingerprint derives the engine fingerprint at construction time.
func computeFingerprint(res *compiler.Result, patterns []string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeInt(res.Config.Params.BVSizeBits)
	writeInt(res.Config.Params.UnfoldThreshold)
	writeInt(len(patterns))
	for i, p := range patterns {
		writeInt(len(p))
		h.Write([]byte(p))
		supported := byte(0)
		if i < len(res.Report.PerRegex) && res.Report.PerRegex[i].Supported {
			supported = 1
		}
		h.Write([]byte{supported})
	}
	return h.Sum64()
}

// getStream and putStream wrap the stream pool with checkout accounting;
// every pool access in the batch/chunk scanners goes through them so the
// panic-safety defers provably return what they took.
func (e *Engine) getStream() *Stream {
	e.streamsOut.Add(1)
	return e.spool.Get()
}

func (e *Engine) putStream(s *Stream) {
	e.spool.Put(s)
	e.streamsOut.Add(-1)
}

// StreamsOut returns the number of pooled streams currently checked out by
// in-flight ScanBatch / FindAllParallel shards. It is zero whenever no
// scan is in flight — even after shards that panicked — and exists for
// leak detection in tests and the service soak harness.
func (e *Engine) StreamsOut() int64 { return e.streamsOut.Load() }

// ScanEnergyEstimatePJ estimates the modeled energy of scanning inputBytes
// on this configuration, in pJ, from the service's simulator calibration
// (rate × length). ok is false when the engine was never calibrated —
// engines outside a Service, or services with calibration disabled. The
// figure is an estimate, not the exact per-run partition a Simulator with
// a tracing.EnergySink produces.
func (e *Engine) ScanEnergyEstimatePJ(inputBytes int) (float64, bool) {
	if e.energyRatePJPerSym <= 0 {
		return 0, false
	}
	return e.energyRatePJPerSym * float64(inputBytes), true
}

// newEngine wraps a compilation result with the engine's concurrency
// plumbing. Pool constructors run lazily, on first use.
func newEngine(res *compiler.Result, patterns []string) *Engine {
	e := &Engine{res: res, patterns: append([]string(nil), patterns...)}
	e.fingerprint = computeFingerprint(res, e.patterns)
	e.spool = parascan.NewPool(e.NewStream)
	e.refPool = parascan.NewPool(e.crossCheckRefs)
	return e
}

// Compile compiles patterns into an Engine using the §7 pipeline. Patterns
// use PCRE-subset syntax (see internal/regex): literals, escapes, classes,
// alternation, grouping, the (?i) case-folding modifier, a leading ^ start
// anchor, * + ? and the bounded repetitions {n}, {m,n}, {n,}. Individual
// patterns that fail to compile are reported in Report and skipped rather
// than failing the whole set, matching how rule sets are deployed in
// practice.
func Compile(patterns []string, opts ...Option) (*Engine, error) {
	copt := compiler.DefaultOptions()
	for _, o := range opts {
		o(&copt)
	}
	res, err := compiler.Compile(patterns, copt)
	if err != nil {
		return nil, err
	}
	return newEngine(res, patterns), nil
}

// MustCompile is Compile for known-good inputs; it panics on error.
func MustCompile(patterns []string, opts ...Option) *Engine {
	e, err := Compile(patterns, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Patterns returns the source patterns.
func (e *Engine) Patterns() []string { return e.patterns }

// Report returns the compilation summary.
func (e *Engine) Report() Report {
	r := Report{
		TotalSTEs:   e.res.Report.TotalSTEs,
		TotalBVSTEs: e.res.Report.TotalBVSTEs,
		Tiles:       e.res.Report.Tiles,
		Unsupported: e.res.Report.Unsupported,
	}
	for _, pr := range e.res.Report.PerRegex {
		r.Patterns = append(r.Patterns, PatternReport{
			Pattern:      pr.Pattern,
			Supported:    pr.Supported,
			Reason:       pr.Reason,
			Kind:         pr.Kind,
			STEs:         pr.STEs,
			BVSTEs:       pr.BVSTEs,
			UnfoldedSTEs: pr.UnfoldedSTEs,
		})
	}
	return r
}

// WriteConfig writes the JSON hardware configuration (the compiler's §7
// output) to w.
func (e *Engine) WriteConfig(w io.Writer) error { return e.res.Config.Write(w) }

// FindAll scans input and returns every match of every pattern, ordered by
// end position (and by pattern index within a position).
func (e *Engine) FindAll(input []byte) []Match {
	s := e.NewStream()
	var out []Match
	for i, b := range input {
		for _, p := range s.Step(b) {
			out = append(out, Match{Pattern: p, End: i})
		}
	}
	return out
}

// Count returns the total number of matches in input across all patterns.
func (e *Engine) Count(input []byte) int {
	s := e.NewStream()
	n := 0
	for _, b := range input {
		n += len(s.Step(b))
	}
	return n
}

// Engine-metric names exposed by Stream.Instrument.
const (
	MetricEngineSymbols      = "bvap_engine_symbols_total"
	MetricEngineMatches      = "bvap_engine_matches_total"
	MetricEngineActiveStates = "bvap_engine_active_states"
)

// streamInstr is the optional per-stream instrumentation; Stream.Step pays
// a single nil check when it is absent.
type streamInstr struct {
	symbols *telemetry.Counter
	matches *telemetry.Counter
	active  *telemetry.Gauge
}

// Stream matches incrementally over a byte stream. Streams are not safe for
// concurrent use.
type Stream struct {
	engine  *Engine
	runners []*nbva.AHRunner
	hits    []int
	inst    *streamInstr

	// budget / symbolsRun implement the run-time symbol budget of
	// ScanContext (see SetBudget in context.go).
	budget     Budget
	symbolsRun int64
}

// NewStream creates an independent matching stream.
func (e *Engine) NewStream() *Stream {
	s := &Stream{engine: e}
	for _, m := range e.res.Machines {
		if m == nil {
			s.runners = append(s.runners, nil)
			continue
		}
		s.runners = append(s.runners, nbva.NewAHRunner(m))
	}
	return s
}

// Instrument attaches a metrics registry to this stream: a symbol counter,
// a match counter, and an active-NFA-state occupancy gauge updated after
// every Step. Pass nil to detach. The uninstrumented Step path costs a
// single nil check and allocates nothing.
func (s *Stream) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		s.inst = nil
		return
	}
	s.inst = &streamInstr{
		symbols: reg.Counter(MetricEngineSymbols, "input symbols processed by the engine"),
		matches: reg.Counter(MetricEngineMatches, "pattern matches reported by the engine"),
		active:  reg.Gauge(MetricEngineActiveStates, "active NFA states after the last engine step"),
	}
}

// Step consumes one byte and returns the indices of the patterns for which
// a match ends at it. The returned slice is reused across calls.
func (s *Stream) Step(b byte) []int {
	s.hits = s.hits[:0]
	for i, r := range s.runners {
		if r != nil && r.Step(b) {
			s.hits = append(s.hits, i)
		}
	}
	if s.inst != nil {
		s.inst.symbols.Inc()
		if len(s.hits) > 0 {
			s.inst.matches.Add(uint64(len(s.hits)))
		}
		active := 0
		for _, r := range s.runners {
			if r != nil {
				active += r.ActiveStates()
			}
		}
		s.inst.active.Set(float64(active))
	}
	return s.hits
}

// Reset returns the stream to its start-of-input state: runner
// configurations return to start-of-stream AND the ScanContext symbol
// consumption is cleared, so a reused (pooled) stream begins every input
// with its full budget. The budget limit itself is configuration, not
// state, and survives Reset; between ScanContext calls without a Reset,
// consumption stays cumulative (see SetBudget).
func (s *Stream) Reset() {
	for _, r := range s.runners {
		if r != nil {
			r.Reset()
		}
	}
	s.symbolsRun = 0
}

// ParsePattern validates a single pattern, returning a descriptive error
// for invalid syntax.
func ParsePattern(pattern string) error {
	_, err := regex.Parse(pattern)
	return err
}

// AnalyzePattern returns structural statistics of a pattern: whether it
// uses bounded repetition, its largest bound, and the unfolded NFA size a
// conventional automata processor would need.
func AnalyzePattern(pattern string) (hasCounting bool, maxBound, unfoldedStates int, err error) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return false, 0, 0, err
	}
	st := regex.Analyze(ast)
	return st.HasCounting(), st.MaxUpperBound, st.UnfoldedLiterals, nil
}

// MappingStats describes how the compiled machines pack into hardware
// tiles; whole tiles are provisioned, so low utilization is paid silicon.
type MappingStats struct {
	Tiles          int
	STEUtilization float64
	BVUtilization  float64
	WastedBVMFrac  float64
	MaxSTEs        int
	MaxBVs         int
}

// MappingStats returns tile-utilization statistics for the compiled set.
func (e *Engine) MappingStats() MappingStats {
	s := compiler.ComputeMappingStats(e.res.Config)
	return MappingStats{
		Tiles:          s.Tiles,
		STEUtilization: s.STEUtilization,
		BVUtilization:  s.BVUtilization,
		WastedBVMFrac:  s.WastedBVMFrac,
		MaxSTEs:        s.MaxSTEs,
		MaxBVs:         s.MaxBVs,
	}
}
