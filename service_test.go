package bvap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bvap/internal/serve"
	"bvap/internal/telemetry"
)

func TestServiceScanBasic(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c", "b{3}"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	input := []byte("xxabbcxbbbx")
	got, err := svc.Scan(context.Background(), input)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := svc.Engine().FindAll(input)
	if len(got) != len(want) {
		t.Fatalf("Scan = %v, FindAll = %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if g := svc.Generation(); g != 1 {
		t.Errorf("Generation() = %d, want 1", g)
	}
}

func TestServiceReloadSwap(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{
		ProbeCorpus: [][]byte{[]byte("xxabbcxx"), []byte("zzz")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	input := []byte("abbc-defc")
	if ms, _ := svc.Scan(context.Background(), input); len(ms) != 1 {
		t.Fatalf("gen 1 scan: %v", ms)
	}
	seq, err := svc.Reload(context.Background(), []string{"def{1}c"})
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if seq != 2 || svc.Generation() != 2 {
		t.Fatalf("generation after reload = %d (ret %d), want 2", svc.Generation(), seq)
	}
	ms, err := svc.Scan(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].End != 8 {
		t.Errorf("gen 2 scan = %v, want one match ending at 8", ms)
	}
}

func TestServiceReloadRollback(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A candidate where every pattern fails to compile is rejected in the
	// validate phase; the served generation is untouched.
	_, err = svc.Reload(context.Background(), []string{"(", "[z-a]"})
	var re *ReloadError
	if !errors.As(err, &re) {
		t.Fatalf("Reload err = %v (%T), want *ReloadError", err, err)
	}
	if re.Phase != "validate" {
		t.Errorf("ReloadError.Phase = %q, want validate", re.Phase)
	}
	if g := svc.Generation(); g != 1 {
		t.Errorf("generation after rejected reload = %d, want 1", g)
	}
	if ms, err := svc.Scan(context.Background(), []byte("abbc")); err != nil || len(ms) != 1 {
		t.Errorf("old generation no longer serves: %v, %v", ms, err)
	}

	// Build-phase failure: a canceled compile context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = svc.Reload(ctx, []string{"xy{2}z"})
	if !errors.As(err, &re) || re.Phase != "build" {
		t.Errorf("canceled reload = %v, want build-phase *ReloadError", err)
	}
	if g := svc.Generation(); g != 1 {
		t.Errorf("generation = %d, want 1", g)
	}
}

func TestServiceReloadCrossCheckRejects(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{
		ProbeCorpus: [][]byte{[]byte("xxabbcxx")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	crossCheckCorruptHook = func(ms []Match) []Match { return ms[:0] } // drop every probe match
	defer func() { crossCheckCorruptHook = nil }()
	_, err = svc.Reload(context.Background(), []string{"ab{2}c", "q{4}"})
	var re *ReloadError
	if !errors.As(err, &re) {
		t.Fatalf("Reload err = %v, want *ReloadError", err)
	}
	if re.Phase != "crosscheck" {
		t.Errorf("Phase = %q, want crosscheck", re.Phase)
	}
	if g := svc.Generation(); g != 1 {
		t.Errorf("generation = %d, want 1", g)
	}
}

// Concurrent reloads all apply, scans never observe a broken generation,
// and the final generation reflects every successful swap.
func TestServiceConcurrentReloads(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const reloads = 5
	var wg sync.WaitGroup
	for i := 0; i < reloads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pats := []string{"ab{2}c", fmt.Sprintf("x{%d}y", i+2)}
			if _, err := svc.Reload(context.Background(), pats); err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
		}(i)
	}
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, err := svc.Scan(context.Background(), []byte("zzabbczz"))
				if errors.Is(err, ErrOverloaded) {
					continue // admission shed under the stress loop: fine
				}
				if err != nil {
					t.Errorf("scan during reloads: %v", err)
					return
				}
				// ab{2}c is in every generation.
				if len(ms) == 0 {
					t.Error("scan during reloads lost the stable pattern")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scanWG.Wait()
	if g := svc.Generation(); g != 1+reloads {
		t.Errorf("final generation = %d, want %d", g, 1+reloads)
	}
}

func TestServiceQuarantine(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{
		QuarantineThreshold: 2,
		QuarantineCooldown:  time.Hour, // stays tripped for the test
		Metrics:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	poison := []byte("poison-input")
	shardCorruptHook = func(input []byte, _ int, ms []Match) []Match {
		if bytes.Equal(input, poison) {
			panic("poisoned")
		}
		return ms
	}
	defer func() { shardCorruptHook = nil }()

	for i := 0; i < 2; i++ {
		_, err := svc.Scan(context.Background(), poison)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("scan %d: err = %v, want *PanicError", i, err)
		}
	}
	// Tripped: the third scan sheds without running anything.
	_, err = svc.Scan(context.Background(), poison)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-trip scan err = %v, want ErrQuarantined", err)
	}
	if q := svc.Quarantined(); len(q) != 1 {
		t.Errorf("Quarantined() = %v, want one key", q)
	}
	// Other inputs are unaffected.
	if ms, err := svc.Scan(context.Background(), []byte("abbc")); err != nil || len(ms) != 1 {
		t.Errorf("healthy input degraded: %v, %v", ms, err)
	}
	// Pool hygiene across the panics.
	if out := svc.Engine().StreamsOut(); out != 0 {
		t.Errorf("StreamsOut() = %d, want 0", out)
	}
}

func TestServiceOverloadSheds(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{
		MaxConcurrent: 1,
		MaxQueue:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	slow := []byte("slow-input")
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	shardCorruptHook = func(input []byte, _ int, ms []Match) []Match {
		if bytes.Equal(input, slow) {
			once.Do(func() { close(started) })
			<-block
		}
		return ms
	}
	defer func() { shardCorruptHook = nil }()

	done := make(chan error, 1)
	go func() {
		_, err := svc.Scan(context.Background(), slow)
		done <- err
	}()
	<-started

	// Gate full, no queue: immediate shed.
	_, err = svc.Scan(context.Background(), []byte("abbc"))
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("scan under load err = %v, want ErrOverloaded", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Errorf("slow scan: %v", err)
	}
	// Slot freed: scans admit again.
	if _, err := svc.Scan(context.Background(), []byte("abbc")); err != nil {
		t.Errorf("scan after load: %v", err)
	}
}

func TestServiceDrain(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := svc.Scan(context.Background(), []byte("abbc")); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Scan err = %v, want ErrDraining", err)
	}
	if _, err := svc.NewSession(nil); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain NewSession err = %v, want ErrDraining", err)
	}
	if _, err := svc.Reload(context.Background(), []string{"xy"}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Reload err = %v, want ErrDraining", err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("Close after Drain: %v", err)
	}
}

func TestServiceWatchdogTimeout(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{
		ScanTimeout:         20 * time.Millisecond,
		QuarantineThreshold: 1,
		QuarantineCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	slow := []byte("watchdog-victim")
	serviceScanHook = func(input []byte) {
		if bytes.Equal(input, slow) {
			time.Sleep(100 * time.Millisecond) // outlive the 20ms watchdog
		}
	}
	defer func() { serviceScanHook = nil }()

	// The hook stalls past the deadline, then the cooperative scan body
	// observes the expired watchdog context at its first chunk check.
	_, err = svc.Scan(context.Background(), slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("watchdog scan err = %v, want DeadlineExceeded", err)
	}
	// Threshold 1: the key is quarantined now.
	_, err = svc.Scan(context.Background(), slow)
	if !errors.Is(err, ErrQuarantined) {
		t.Errorf("post-timeout scan err = %v, want ErrQuarantined", err)
	}
	// Other inputs still serve.
	if ms, err := svc.Scan(context.Background(), []byte("abbc")); err != nil || len(ms) != 1 {
		t.Errorf("healthy input degraded: %v, %v", ms, err)
	}
}

// Exactly-once delivery across an explicit checkpoint + resume: the
// delivered reports of (session → crash → resumed session) equal the
// uninterrupted reference run, with no loss and no duplicates.
func TestSessionCheckpointResumeExactlyOnce(t *testing.T) {
	patterns := []string{"ab{2}c", "ab{2,5}c", "c{3}"}
	svc, err := NewService(patterns, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	input := checkpointInput(42, 64<<10)
	want := svc.Engine().FindAll(input)
	if len(want) == 0 {
		t.Fatal("reference run found no matches; bad corpus")
	}

	var got []Match
	seen := map[Match]int{}
	onMatch := func(m Match) {
		got = append(got, m)
		seen[m]++
	}

	sess, err := svc.NewSession(&SessionConfig{CheckpointInterval: 1 << 10, OnMatch: onMatch})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a prefix in awkward chunk sizes.
	cut := 37*len(input)/64 + 13
	for off := 0; off < cut; {
		n := 777
		if off+n > cut {
			n = cut - off
		}
		if err := sess.Feed(context.Background(), input[off:off+n]); err != nil {
			t.Fatalf("feed at %d: %v", off, err)
		}
		off += n
	}
	ck := sess.Checkpoint() // durable handle; commits pending reports
	if ck.Pos() != int64(cut) {
		t.Fatalf("checkpoint Pos() = %d, want %d", ck.Pos(), cut)
	}

	// "Crash": feed a sub-interval tail on the doomed session (short of
	// the next commit boundary, so nothing more is delivered), then
	// abandon it without Close — the pending matches are lost with it.
	_ = sess.Feed(context.Background(), input[cut:cut+700])
	if sess.Pos() != ck.Pos() {
		t.Fatalf("doomed feed advanced the commit point to %d", sess.Pos())
	}

	resumed, err := svc.ResumeSession(ck, &SessionConfig{CheckpointInterval: 1 << 10, OnMatch: onMatch})
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	if resumed.Pos() != ck.Pos() {
		t.Fatalf("resumed Pos() = %d, want %d", resumed.Pos(), ck.Pos())
	}
	if err := resumed.Feed(context.Background(), input[ck.Pos():]); err != nil {
		t.Fatalf("resumed feed: %v", err)
	}
	resumed.Close()

	if len(got) != len(want) {
		t.Fatalf("delivered %d reports, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("report %d: %+v != reference %+v", i, got[i], want[i])
		}
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("match %+v delivered %d times", m, n)
		}
	}
}

// A mid-feed failure rewinds to the last automatic checkpoint; re-feeding
// from Pos() regenerates exactly the undelivered reports.
func TestSessionFeedFailureRewinds(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c", "c{3}"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	input := checkpointInput(99, 32<<10)
	want := svc.Engine().FindAll(input)

	var got []Match
	sess, err := svc.NewSession(&SessionConfig{
		CheckpointInterval: 2048,
		OnMatch:            func(m Match) { got = append(got, m) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Blow up once the stream passes byte 20000.
	const bomb = 20000
	armed := true
	sessionFeedHook = func(base int, data []byte) {
		if armed && base+len(data) > bomb {
			panic("injected mid-stream fault")
		}
	}
	defer func() { sessionFeedHook = nil }()

	err = sess.Feed(context.Background(), input)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("feed err = %v, want *PanicError", err)
	}
	if pe.Op != "session feed" {
		t.Errorf("PanicError.Op = %q", pe.Op)
	}
	pos := sess.Pos()
	if pos%2048 != 0 || pos > bomb {
		t.Fatalf("rewound Pos() = %d, want a checkpoint boundary at or before %d", pos, bomb)
	}
	// Every delivered report so far precedes the commit point.
	for _, m := range got {
		if int64(m.End) >= pos {
			t.Fatalf("report %+v delivered beyond the commit point %d", m, pos)
		}
	}

	// Disarm and resume feeding from Pos().
	armed = false
	if err := sess.Feed(context.Background(), input[pos:]); err != nil {
		t.Fatalf("resumed feed: %v", err)
	}
	sess.Close()

	if len(got) != len(want) {
		t.Fatalf("delivered %d reports, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("report %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// A session pins its generation: reloading does not disturb an open
// session, and a new session sees the new set.
func TestSessionPinsGeneration(t *testing.T) {
	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var old []Match
	sess, err := svc.NewSession(&SessionConfig{CheckpointInterval: 64, OnMatch: func(m Match) { old = append(old, m) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Reload(context.Background(), []string{"x{3}y"}); err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("abbc-xxxy-"), 30)
	if err := sess.Feed(context.Background(), input); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	for _, m := range old {
		if m.Pattern != 0 {
			t.Fatalf("pinned session reported pattern %d", m.Pattern)
		}
	}
	if len(old) != 30 {
		t.Errorf("pinned session: %d reports, want 30 (ab{2}c)", len(old))
	}

	var fresh []Match
	s2, err := svc.NewSession(&SessionConfig{CheckpointInterval: 64, OnMatch: func(m Match) { fresh = append(fresh, m) }})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Generation() != 2 {
		t.Errorf("new session generation = %d, want 2", s2.Generation())
	}
	if err := s2.Feed(context.Background(), input); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if len(fresh) != 30 {
		t.Errorf("gen-2 session: %d reports, want 30 (x{3}y)", len(fresh))
	}
}

// The service gauges move: generation, scans, sheds, checkpoints.
func TestServiceMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, err := NewService([]string{"ab{2}c"}, &ServiceConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.Scan(context.Background(), []byte("abbc")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Reload(context.Background(), []string{"ab{2}c", "z{2}"}); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.NewSession(&SessionConfig{CheckpointInterval: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Feed(context.Background(), bytes.Repeat([]byte("abbc"), 16)); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	find := func(name string, labels map[string]string) float64 {
	samples:
		for _, s := range reg.Snapshot() {
			if s.Name != name {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue samples
				}
			}
			return s.Value
		}
		t.Fatalf("metric %s%v not found", name, labels)
		return 0
	}
	if v := find(serve.MetricGeneration, nil); v != 2 {
		t.Errorf("%s = %v, want 2", serve.MetricGeneration, v)
	}
	if v := find(serve.MetricScans, map[string]string{"outcome": "ok"}); v < 1 {
		t.Errorf("%s{ok} = %v, want >= 1", serve.MetricScans, v)
	}
	if v := find(serve.MetricReloads, map[string]string{"result": "ok"}); v != 1 {
		t.Errorf("%s{ok} = %v, want 1", serve.MetricReloads, v)
	}
	if v := find(serve.MetricCheckpoints, nil); v < 4 {
		t.Errorf("%s = %v, want >= 4", serve.MetricCheckpoints, v)
	}
}
