package bvap

import (
	"bytes"
	"testing"

	"bvap/internal/profile"
)

// newProfiledSimulator builds a simulator for arch over patterns with a
// profiler attached.
func newProfiledSimulator(t *testing.T, arch Architecture, patterns []string) (*Simulator, *profile.Profiler) {
	t.Helper()
	var sim *Simulator
	var err error
	switch arch {
	case ArchBVAP, ArchBVAPStreaming:
		var eng *Engine
		eng, err = Compile(patterns)
		if err != nil {
			t.Fatalf("%v: Compile: %v", arch, err)
		}
		sim, err = eng.NewSimulator(arch)
	default:
		sim, err = NewBaselineSimulator(arch, patterns)
	}
	if err != nil {
		t.Fatalf("%v: simulator: %v", arch, err)
	}
	return sim, sim.Profile(profile.Options{})
}

// checkConservation asserts the attribution's bit-for-bit guarantees
// against the simulator's terminal stats.
func checkConservation(t *testing.T, arch Architecture, sim *Simulator, p *profile.Profiler) {
	t.Helper()
	sim.Result() // finalize: fold in leakage and I/O
	st := sim.Stats()
	a := p.Attribute(st)
	if a.TotalPJ != st.TotalEnergyPJ() {
		t.Fatalf("%v: attribution total %v != stats total %v", arch, a.TotalPJ, st.TotalEnergyPJ())
	}
	if a.UnattributedPJ != 0 {
		t.Fatalf("%v: unattributed residual %g, want exactly 0", arch, a.UnattributedPJ)
	}
	// The acceptance guarantee: per-pattern shares summed left-to-right in
	// slice order reproduce TotalEnergyPJ bit-for-bit.
	sum := 0.0
	for _, row := range a.Patterns {
		sum += row.EnergyPJ
	}
	if sum != st.TotalEnergyPJ() {
		t.Fatalf("%v: pattern shares sum %v != total %v (diff %g)",
			arch, sum, st.TotalEnergyPJ(), sum-st.TotalEnergyPJ())
	}
	// Component columns partition each Stats component exactly as well.
	colSums := make([]float64, profile.NumComponents)
	for c := profile.Component(0); c < profile.NumComponents; c++ {
		for _, row := range a.Patterns {
			colSums[c] += row.Components[c]
		}
	}
	wantCols := []float64{
		st.MatchEnergyPJ, st.TransitionEnergyPJ, st.BVMEnergyPJ, st.CounterEnergyPJ,
		st.WireEnergyPJ, st.IOEnergyPJ, st.LeakageEnergyPJ, st.ParityEnergyPJ,
	}
	for c, want := range wantCols {
		if colSums[c] != want {
			t.Fatalf("%v: component %v column sum %v != %v",
				arch, profile.Component(c), colSums[c], want)
		}
	}
}

// TestAttributionConservation pins the tentpole invariant on every modeled
// architecture: per-pattern energy attribution partitions
// Stats.TotalEnergyPJ() exactly, with zero residual.
func TestAttributionConservation(t *testing.T) {
	patterns := []string{"a(.a){3}b", "x{2,30}y", "(?i)get /[a-z]{8}", "^hdr.{10}z", "abc"}
	input := bytes.Repeat([]byte("abcab abaab xyhdrz get /abcdefgh aaaaab 0123 xxyy "), 40)
	for _, arch := range Architectures() {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			sim, p := newProfiledSimulator(t, arch, patterns)
			sim.Run(input)
			checkConservation(t, arch, sim, p)
			if p.Symbols() != uint64(len(input)) {
				t.Fatalf("profiler saw %d symbols, want %d", p.Symbols(), len(input))
			}
		})
	}
}

// TestAttributionConservationZeroBytes covers the degenerate empty run:
// the only energy is terminal (leakage over zero cycles = 0), and the
// partition must still be exact.
func TestAttributionConservationZeroBytes(t *testing.T) {
	for _, arch := range Architectures() {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			sim, p := newProfiledSimulator(t, arch, []string{"ab{3}c", "xyz"})
			checkConservation(t, arch, sim, p)
		})
	}
}

// TestAttributionConservationSinglePattern covers the single-pattern run,
// where the whole total lands on one row.
func TestAttributionConservationSinglePattern(t *testing.T) {
	input := bytes.Repeat([]byte("ab{3}c abbbc abbc "), 30)
	for _, arch := range Architectures() {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			sim, p := newProfiledSimulator(t, arch, []string{"ab{3}c"})
			sim.Run(input)
			checkConservation(t, arch, sim, p)
			sim.Result()
			a := p.Attribute(sim.Stats())
			if len(a.Patterns) != 1 {
				t.Fatalf("%d rows", len(a.Patterns))
			}
			if a.Patterns[0].EnergyPJ != a.TotalPJ {
				t.Fatalf("single pattern got %v of %v", a.Patterns[0].EnergyPJ, a.TotalPJ)
			}
		})
	}
}

// TestAttributionWithUnsupportedPattern ensures unsupported patterns ride
// along with zero weight and the partition stays exact.
func TestAttributionWithUnsupportedPattern(t *testing.T) {
	input := bytes.Repeat([]byte("abcabc "), 50)
	sim, p := newProfiledSimulator(t, ArchBVAP, []string{"abc", "bad("})
	sim.Run(input)
	checkConservation(t, ArchBVAP, sim, p)
}

// TestProfilerHotStatesBVAP sanity-checks the hot-state ranking on a real
// run: entries are sorted, counted, and carry tile provenance.
func TestProfilerHotStatesBVAP(t *testing.T) {
	input := bytes.Repeat([]byte("abcabcabc"), 20)
	sim, p := newProfiledSimulator(t, ArchBVAP, []string{"abc", "x{2,30}y"})
	sim.Run(input)
	sim.Result()
	hot := p.HotStates(5)
	if len(hot) == 0 {
		t.Fatal("no hot states recorded")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Activations > hot[i-1].Activations {
			t.Fatalf("hot states not sorted: %+v", hot)
		}
	}
	for _, h := range hot {
		if h.Tile < 0 {
			t.Errorf("hot state %+v lacks tile provenance", h)
		}
		if h.Pattern == "" {
			t.Errorf("hot state %+v lacks pattern provenance", h)
		}
	}
	if th := p.TileHeatmap(); th == nil || th.Max() == 0 {
		t.Fatal("tile heatmap empty after a matching run")
	}
}
