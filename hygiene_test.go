package bvap

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// settleGoroutines waits up to 2s for the goroutine count to fall back to
// the baseline, then reports the final count.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// Cancelling service scans mid-flight under load leaves no goroutines
// behind and returns every pooled stream: admission slots are released on
// the cancellation path, not just on success.
func TestServiceCancelMidFlightHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := NewService([]string{"ab{2}c", "ab{2,5}c", "c{3}"}, &ServiceConfig{
		MaxConcurrent: 2,
		MaxQueue:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("xxabbcyy"), 4<<10)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%2 == 0 {
					cancel() // already dead: shed or fail fast
				} else {
					go func() {
						time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
						cancel()
					}()
				}
				_, err := svc.Scan(ctx, input)
				if err != nil && !errors.Is(err, context.Canceled) &&
					!errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected scan error: %v", err)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n := svc.Engine().StreamsOut(); n != 0 {
		t.Errorf("%d pooled streams still checked out after drain", n)
	}
	if after := settleGoroutines(before); after > before {
		t.Errorf("goroutines grew %d → %d across canceled service scans", before, after)
	}
}

// Cancelling a batch mid-flight returns all pooled streams even when some
// shards also panic while others are still scanning.
func TestScanBatchCancelAndPanicHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	e := MustCompile([]string{"ab{2}c"})
	inputs := make([][]byte, 32)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte("zabbcz"), 2<<10)
	}

	poison := inputs[5]
	shardCorruptHook = func(in []byte, _ int, ms []Match) []Match {
		if len(in) > 0 && &in[0] == &poison[0] {
			panic("hygiene: poisoned shard")
		}
		return ms
	}
	defer func() { shardCorruptHook = nil }()

	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i%4) * 50 * time.Microsecond)
			cancel()
		}()
		res, err := e.ScanBatch(ctx, inputs, &BatchOptions{Workers: 4})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("ScanBatch: %v", err)
		}
		for _, r := range res {
			if r.Err != nil {
				var pe *PanicError
				if !errors.Is(r.Err, context.Canceled) && !errors.As(r.Err, &pe) {
					t.Errorf("shard error neither cancel nor panic: %v", r.Err)
				}
			}
		}
		cancel()
		if n := e.StreamsOut(); n != 0 {
			t.Fatalf("iteration %d: %d pooled streams checked out after batch", i, n)
		}
	}

	if after := settleGoroutines(before); after > before {
		t.Errorf("goroutines grew %d → %d across canceled batches", before, after)
	}
}

// An abandoned stream session (never closed, never resumed) holds no
// goroutines, and draining the service afterwards still completes.
func TestSessionAbandonHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := NewService([]string{"ab{2}c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sess, err := svc.NewSession(&SessionConfig{CheckpointInterval: 512})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Feed(context.Background(), bytes.Repeat([]byte("abbc"), 300)); err != nil {
			t.Fatal(err)
		}
		// Dropped on the floor: sessions own plain heap state, so
		// abandonment must cost nothing.
		_ = sess
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain after abandoned sessions: %v", err)
	}
	if after := settleGoroutines(before); after > before {
		t.Errorf("goroutines grew %d → %d across abandoned sessions", before, after)
	}
}
