module bvap

go 1.22
