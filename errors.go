package bvap

// The package's error taxonomy. Batch compilation isolates per-pattern
// failures (a bad rule does not take down the rule set); the taxonomy lets
// callers triage what happened with errors.Is / errors.As instead of string
// matching:
//
//	errs := engine.PatternErrors()
//	for _, err := range errs {
//		var pe *bvap.PatternError
//		switch {
//		case errors.Is(err, bvap.ErrSyntax):    // fix the rule
//		case errors.Is(err, bvap.ErrBudget):    // raise the budget
//		case errors.As(err, &pe):               // inspect pe.Reason
//		}
//	}
//
// Budget exhaustion during simulation (Simulator.RunContext,
// Stream.ScanContext) surfaces as *BudgetError, which also unwraps to
// ErrBudget. Context cancellation surfaces as the context's own error
// (context.Canceled / context.DeadlineExceeded) wrapped with position
// information.

import (
	"errors"
	"fmt"

	"bvap/internal/compiler"
	"bvap/internal/serve"
)

var (
	// ErrSyntax marks a pattern the parser rejected.
	ErrSyntax = errors.New("pattern syntax error")
	// ErrUnsupported marks a pattern that parsed but cannot be mapped to
	// BVAP hardware (resource limits, unsupported constructs).
	ErrUnsupported = errors.New("pattern not supported on BVAP hardware")
	// ErrBudget marks work stopped by an exhausted resource budget
	// (compile-time STE budget or run-time symbol budget).
	ErrBudget = errors.New("resource budget exceeded")
)

// Service lifecycle sentinels. They are the same values internal/serve
// uses, so errors.Is holds across the package boundary; every one is
// returned by Service methods (see service.go) and never by the plain
// Engine scan paths.
var (
	// ErrOverloaded marks a request shed by the service's admission
	// control: the concurrency gate and its bounded wait queue are full,
	// or the request's deadline expired while it was queued (in which
	// case the error also unwraps to the context error). Back off and
	// retry; the service itself is healthy.
	ErrOverloaded = serve.ErrOverloaded
	// ErrDraining marks a request rejected because Service.Drain or
	// Close has begun: in-flight work completes, new work is refused.
	ErrDraining = serve.ErrDraining
	// ErrQuarantined marks a request refused because its input — or
	// every pattern it would exercise — has been quarantined by the
	// service's circuit breaker after repeated timeouts or cross-check
	// failures. Quarantined keys re-enter service after the cooldown.
	ErrQuarantined = serve.ErrQuarantined
	// ErrQuotaExceeded marks a request refused by its tenant's token-bucket
	// quota (see ServiceConfig.DefaultQuota / TenantQuotas and WithTenant)
	// before it could contend for an admission slot. The bucket refills
	// continuously; back off and retry.
	ErrQuotaExceeded = serve.ErrQuotaExceeded
	// ErrStaleGeneration marks a PreparedReload.Commit refused because
	// another reload published between prepare and commit: the candidate
	// was validated against a generation that no longer serves. Re-prepare
	// against the new generation.
	ErrStaleGeneration = serve.ErrStaleGeneration
)

// PanicError is a panic recovered from a scan body (a ScanBatch shard, a
// FindAllParallel chunk, or a Service scan), converted into an ordinary
// error: Op names the operation, Value is the recovered panic value, and
// Stack is the goroutine stack captured at recovery. One pathological
// input degrades one request instead of the process.
type PanicError = serve.PanicError

// ReloadError is a rejected Service.Reload, annotated with the phase that
// refused the candidate pattern set ("build", "validate" or "crosscheck").
// The served generation is unchanged when a ReloadError is returned.
type ReloadError = serve.ReloadError

// PatternError describes one pattern that failed to compile. It unwraps to
// ErrSyntax, ErrBudget or ErrUnsupported according to the failure kind, so
// errors.Is triages without string inspection.
type PatternError struct {
	// Index is the pattern's position in the compiled set.
	Index int
	// Pattern is the source text.
	Pattern string
	// Kind is the compiler's failure class: "syntax", "capacity" or
	// "budget".
	Kind string
	// Reason is the human-readable diagnostic.
	Reason string
}

func (e *PatternError) Error() string {
	return fmt.Sprintf("bvap: pattern %d (%q): %s: %s", e.Index, e.Pattern, e.Kind, e.Reason)
}

// Unwrap maps the failure kind onto the sentinel taxonomy.
func (e *PatternError) Unwrap() error {
	switch e.Kind {
	case compiler.KindSyntax:
		return ErrSyntax
	case compiler.KindBudget:
		return ErrBudget
	default:
		return ErrUnsupported
	}
}

// BudgetError reports which resource budget was exhausted and where. It
// unwraps to ErrBudget.
type BudgetError struct {
	// Resource names the exhausted budget: "symbols" or "states".
	Resource string
	// Limit is the configured budget; Used is the consumption when the
	// budget tripped.
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("bvap: %s budget exceeded (limit %d, used %d)", e.Resource, e.Limit, e.Used)
}

// Unwrap makes errors.Is(err, ErrBudget) hold.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Budget bounds the resources a compilation or simulation may consume.
// Zero fields mean unlimited. Wall-clock deadlines are expressed through
// context.WithTimeout / WithDeadline on the ctx passed to the *Context
// methods.
type Budget struct {
	// MaxStates caps the total STEs a Compile call may allocate across
	// the pattern set; patterns past the cap are reported unsupported
	// with a budget PatternError instead of failing the batch.
	MaxStates int
	// MaxSymbols caps the input symbols a Simulator.RunContext or
	// Stream.ScanContext call chain may consume (cumulative across calls
	// on the same object).
	MaxSymbols int64
}

// WithBudget applies a compile-time resource budget (Budget.MaxStates).
func WithBudget(b Budget) Option {
	return func(o *compiler.Options) { o.MaxTotalSTEs = b.MaxStates }
}
