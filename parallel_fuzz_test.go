package bvap

import (
	"context"
	"testing"
)

// FuzzParallelSeam fuzzes the chunk-boundary reconciliation of the sharded
// scanner: for an arbitrary (pattern, input, chunk size, worker count) the
// parallel paths must agree byte-for-byte with the sequential FindAll
// oracle — FindAllParallel over every chunk phase the fuzzer reaches, and
// ScanBatch treating the input as a one-element batch. Patterns that fail
// to compile (or compile unsupported) still go through: the engine's
// contract is that they never match, so equivalence must hold regardless.
// Run with `go test -fuzz FuzzParallelSeam .` for a longer campaign; CI
// runs a 15-second smoke.
func FuzzParallelSeam(f *testing.F) {
	f.Add("ab{3,6}c", []byte("xxabbbbbbcxx"), 5, 2)
	f.Add("ab{2}c", []byte("abbcabbcabbc"), 1, 1)
	f.Add("^ab{1,4}c", []byte("abbcxabbcx"), 7, 3)
	f.Add("a{3}|b{2}c", []byte("aaabbcaaa"), 3, 8)
	f.Add("a+b", []byte("aaabaab"), 4, 2) // unbounded reach → fallback path
	f.Add("[ab]{2,5}", []byte("ababababab"), 6, 2)
	f.Add("", []byte(""), 1, 1)

	ctx := context.Background()
	f.Fuzz(func(t *testing.T, pattern string, input []byte, chunk, workers int) {
		if len(pattern) > 64 {
			pattern = pattern[:64]
		}
		if len(input) > 1<<10 {
			input = input[:1<<10]
		}
		e, err := Compile([]string{pattern})
		if err != nil {
			t.Fatalf("Compile must isolate per-pattern failures, got %v", err)
		}
		// Normalize fuzzed knobs into their valid ranges.
		if chunk < 1 {
			chunk = 1
		}
		if chunk > len(input)+1 {
			chunk = len(input) + 1
		}
		workers = workers%8 + 1
		if workers < 1 {
			workers = 1
		}

		want := e.FindAll(input)

		got, err := e.FindAllParallel(ctx, input, &ParallelOptions{Workers: workers, ChunkSize: chunk})
		if err != nil {
			t.Fatalf("FindAllParallel(%q, chunk=%d, workers=%d): %v", pattern, chunk, workers, err)
		}
		if !matchesEqual(got, want) {
			w, bounded := e.SeamWindow()
			t.Fatalf("FindAllParallel diverged for %q on %q (chunk=%d workers=%d window=%d bounded=%v):\npar %v\nseq %v",
				pattern, input, chunk, workers, w, bounded, got, want)
		}

		results, err := e.ScanBatch(ctx, [][]byte{input}, &BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("ScanBatch: %v", err)
		}
		if results[0].Err != nil {
			t.Fatalf("ScanBatch input err: %v", results[0].Err)
		}
		if !matchesEqual(results[0].Matches, want) {
			t.Fatalf("ScanBatch diverged for %q on %q:\nbatch %v\nseq   %v",
				pattern, input, results[0].Matches, want)
		}
	})
}
