package bvap

// Public fault-injection and resilience surface. The simulator can model
// hardware faults striking the structures BVAP's efficiency depends on —
// BVM SRAM bit vectors, STE active latches, the BVAP-S streaming input, the
// hierarchical I/O buffers — and evaluate the detect/retry/degrade recovery
// stack against them:
//
//	sim, _ := engine.NewSimulator(bvap.ArchBVAP)
//	plan, _ := bvap.ParseFaultPlan("seed=42,rate=1e-4,parity=1")
//	sim.InjectFaults(plan)
//	rep, _ := sim.RunResilient(ctx, input, bvap.ResilienceConfig{CrossCheck: true})
//	// rep.Faults.DetectionRate(), rep.Fallbacks, rep.Mismatches …
//
// Injection is deterministic: a plan's seed fully determines the fault
// stream, and the fault set at rate r is a subset of the set at any higher
// rate, so detection and recovery curves are monotone by construction.

import (
	"context"
	"fmt"

	"bvap/internal/faults"
	"bvap/internal/telemetry"
)

// FaultPlan describes a deterministic fault-injection campaign: seed,
// per-site rates, site filters, and whether the hardware pays for per-BV
// parity detection. See the internal/faults documentation for field
// details.
type FaultPlan = faults.Plan

// FaultEvent is one injected fault from the recorded trace.
type FaultEvent = faults.Event

// FaultStats counts a campaign's injections and detection outcomes.
type FaultStats = faults.Stats

// ParseFaultPlan parses the CLI form of a fault plan: comma-separated
// key=value terms with keys seed, rate, bitflip, ste, drop, dup, io,
// parity, trace. Example: "seed=42,rate=1e-4,parity=1".
func ParseFaultPlan(s string) (*FaultPlan, error) { return faults.ParsePlan(s) }

// UniformFaultPlan builds a plan with every site rate set to rate.
func UniformFaultPlan(seed int64, rate float64, parity bool) *FaultPlan {
	return faults.UniformPlan(seed, rate, parity)
}

// InjectFaults attaches (or with nil detaches) a fault-injection plan to
// this simulator. Only BVAP and BVAP-S simulators support injection. Call
// before Run; when the plan enables parity, the modeled area and BV access
// energy grow by the parity surcharge. With no plan attached the simulation
// hot path pays a single nil check and is bit-identical to an uninjected
// run.
func (s *Simulator) InjectFaults(p *FaultPlan) error {
	if s.bvapSys == nil {
		return fmt.Errorf("bvap: fault injection supports BVAP and BVAP-S simulators (got %v)", s.arch)
	}
	if p == nil {
		s.bvapSys.SetFaults(nil)
		s.inj = nil
		return nil
	}
	in, err := faults.NewInjector(p)
	if err != nil {
		return err
	}
	s.bvapSys.SetFaults(in)
	s.inj = in
	return nil
}

// FaultStats returns the injected-fault counters (zero value with no plan
// attached).
func (s *Simulator) FaultStats() FaultStats {
	if s.inj == nil {
		return FaultStats{}
	}
	return s.inj.Stats()
}

// FaultTrace returns the recorded fault events, up to the plan's trace cap.
// Callers must not mutate the returned slice.
func (s *Simulator) FaultTrace() []FaultEvent {
	if s.inj == nil {
		return nil
	}
	return s.inj.Trace()
}

// InstrumentFaults attaches a telemetry registry to the fault layer:
// per-site injection counters and detected/silent totals accrue live.
func (s *Simulator) InstrumentFaults(reg *telemetry.Registry) {
	if s.inj != nil {
		s.inj.Instrument(reg)
	}
}

// ResilienceConfig tunes RunResilient's detect/retry/degrade loop.
type ResilienceConfig struct {
	// Window is the checkpoint interval in symbols (default 256).
	Window int
	// MaxRetries bounds re-executions of a window after a detected fault
	// before degrading to the clean software path (default 2).
	MaxRetries int
	// CrossCheck verifies every committed window's match ends against an
	// independent software matcher per pattern; disagreements count as
	// silent-corruption escapes (Report.Mismatches). Patterns whose
	// unfolded form is too large for the reference matcher are skipped.
	CrossCheck bool
	// Metrics, when non-nil, accrues live window/retry/fallback/mismatch
	// counters on the registry.
	Metrics *telemetry.Registry
}

// crossCheckMaxUnfolded caps the reference matchers built for CrossCheck:
// swmatch fully unfolds bounded repetitions, so enormous bounds would make
// the reference quadratically expensive. Patterns above the cap are skipped
// (their windows are not cross-checked).
const crossCheckMaxUnfolded = 4096

// ResilienceReport summarizes one RunResilient campaign.
type ResilienceReport struct {
	// Windows is the number of committed checkpoint windows.
	Windows uint64
	// Retries counts window re-executions after detected faults.
	Retries uint64
	// Fallbacks counts windows that exhausted retries and were replayed
	// on the clean software path (graceful degradation).
	Fallbacks uint64
	// Mismatches counts machine-windows whose committed output diverged
	// from the reference matcher — corruption that escaped detection and
	// recovery. Requires CrossCheck.
	Mismatches uint64
	// Faults is the injector's final counter snapshot.
	Faults FaultStats
}

// RunResilient executes input under the attached fault plan with
// checkpoint/rollback recovery: windows with detected faults are retried
// (each retry draws a fresh transient-fault stream) up to MaxRetries, then
// replayed with injection suppressed — the graceful degradation to the
// clean software NBVA path. InjectFaults must have been called first.
// Statistics (energy, cycles) accumulated by discarded attempts stay
// charged: that is the measured cost of recovery. The context cancels
// between windows; the partial report is returned alongside the error.
func (s *Simulator) RunResilient(ctx context.Context, input []byte, cfg ResilienceConfig) (ResilienceReport, error) {
	if s.bvapSys == nil {
		return ResilienceReport{}, fmt.Errorf("bvap: resilient execution supports BVAP and BVAP-S simulators (got %v)", s.arch)
	}
	if s.inj == nil {
		return ResilienceReport{}, fmt.Errorf("bvap: no fault plan attached (call InjectFaults first)")
	}
	hcfg := faults.HarnessConfig{Window: cfg.Window, MaxRetries: cfg.MaxRetries}
	if cfg.CrossCheck {
		if s.eng == nil {
			return ResilienceReport{}, fmt.Errorf("bvap: cross-check needs an engine-built simulator")
		}
		s.bvapSys.RecordMatchEnds(true)
		hcfg.Reference = s.eng.crossCheckRefs()
	}
	h, err := faults.NewHarness(s.bvapSys, s.inj, hcfg)
	if err != nil {
		return ResilienceReport{}, err
	}
	if cfg.Metrics != nil {
		h.Instrument(cfg.Metrics)
	}
	rep, err := h.Run(ctx, input)
	out := ResilienceReport{
		Windows:    rep.Windows,
		Retries:    rep.Retries,
		Fallbacks:  rep.Fallbacks,
		Mismatches: rep.Mismatches,
		Faults:     rep.Faults,
	}
	if err != nil {
		return out, fmt.Errorf("bvap: resilient run: %w", err)
	}
	return out, nil
}
