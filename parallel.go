package bvap

// Sharded parallel scanning. Two axes of parallelism over the same
// compiled Engine (which is immutable after Compile and safe to share):
//
//   - batch sharding: ScanBatch fans a set of independent inputs over a
//     bounded worker pool, each worker reusing a pooled Stream — the
//     software analogue of the many independent streams a CAMA/BVAP tile
//     array processes side by side;
//   - chunk parallelism: FindAllParallel splits one large input into
//     chunks scanned concurrently. Each chunk starts from the stream's
//     suffix-closed start configuration (unanchored initial states re-arm
//     on every symbol, so a fresh stream started anywhere sees every match
//     that begins at or after its start) and replays a bounded seam window
//     before its live region so its frontier at the chunk boundary equals
//     the sequential scanner's. The window is the compiled set's reach: an
//     upper bound on any match's length, derived from the same analysis as
//     AnalyzePattern (bounded-repetition upper bounds times the unfolded
//     body length). Patterns with unbounded reach (*, + or {n,}) force a
//     sequential fallback, recorded in telemetry.
//
// Differential tests (parascan_diff_test.go) and the FuzzParallelSeam
// target pin both paths byte-for-byte to the sequential FindAll oracle.

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"

	"bvap/internal/parascan"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// DefaultChunkSize is the FindAllParallel chunk size when ParallelOptions
// leaves it zero: large enough that seam replay is noise for realistic
// reach bounds, small enough to shard a few hundred kilobytes usefully.
const DefaultChunkSize = 64 << 10

// BatchOptions configures Engine.ScanBatch. The zero value (or a nil
// pointer) scans with GOMAXPROCS workers, no budget and no telemetry.
type BatchOptions struct {
	// Workers bounds the worker pool; values < 1 select
	// runtime.GOMAXPROCS(0). Each worker owns one pooled Stream at a time,
	// so peak live streams equal the worker count.
	Workers int
	// Budget is the per-input symbol budget: every input starts with the
	// full MaxSymbols allowance (pooled streams are Reset between inputs,
	// which clears consumed symbols). An exhausted budget surfaces as that
	// input's BatchResult.Err (*BudgetError) without affecting the rest of
	// the batch.
	Budget Budget
	// Metrics, when non-nil, accrues the bvap_parascan_* counters and the
	// workers-busy gauge on this registry.
	Metrics *telemetry.Registry
	// Resilience, when non-nil, enables the shard-local
	// detect/retry/degrade ladder (see ShardResilience).
	Resilience *ShardResilience
}

// ShardResilience tunes ScanBatch's RunResilient-style recovery ladder,
// applied per shard: after scanning an input, its match set is verified
// against an independent software matcher per pattern; a mismatch triggers
// a shard-local re-scan on a fresh stream (other shards are unaffected),
// and a shard that exhausts its retries degrades to the reference
// matcher's output for the patterns the reference covers. Because the
// software engine is deterministic this ladder only fires when the
// execution substrate misbehaves; it exists so batch serving keeps the
// same detect/retry/degrade shape as Simulator.RunResilient.
type ShardResilience struct {
	// CrossCheck enables per-shard verification. Patterns whose unfolded
	// form exceeds the reference-size cap are skipped (as in
	// ResilienceConfig.CrossCheck).
	CrossCheck bool
	// MaxRetries bounds shard-local re-scans before degrading (default 2).
	MaxRetries int
}

// BatchResult is one input's outcome, delivered at the input's index.
type BatchResult struct {
	// Matches are the input's matches with End offsets relative to that
	// input, identical to what FindAll would return for it.
	Matches []Match
	// Err is the per-input error: a *BudgetError for an exhausted symbol
	// budget, a *PanicError for a shard whose scan body panicked (the
	// worker recovers, returns its pooled stream and keeps serving other
	// inputs), or the wrapped context error for inputs the batch never
	// started or abandoned mid-scan.
	Err error
	// Retries counts shard-local re-scans taken by the resilience ladder.
	Retries int
}

// shardCorruptHook, when non-nil, corrupts one scan attempt's match set
// before verification — the software stand-in for the hardware fault
// injector, letting tests exercise the shard-local detect/retry/degrade
// ladder deterministically. It runs inside the shard's panic guard, so a
// hook that panics exercises the recovery path too. Never set outside
// tests.
var shardCorruptHook func(input []byte, attempt int, ms []Match) []Match

// ScanBatch scans every input concurrently on a bounded worker pool and
// returns one BatchResult per input, in input order. Workers reuse pooled
// streams (steady-state scanning allocates nothing per input beyond match
// storage); per-input budgets and the ctx are threaded through each shard's
// ScanContext-equivalent scan. On cancellation the already-finished results
// stay valid, unfinished inputs carry the wrapped context error, and the
// batch-level error reports the cancellation.
func (e *Engine) ScanBatch(ctx context.Context, inputs [][]byte, opts *BatchOptions) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o BatchOptions
	if opts != nil {
		o = *opts
	}
	results := make([]BatchResult, len(inputs))
	if len(inputs) == 0 {
		return results, ctx.Err()
	}
	pm := parascan.NewMetrics(o.Metrics)
	done := make([]bool, len(inputs))
	err := parascan.ForEach(ctx, len(inputs), o.Workers, pm, func(ctx context.Context, i int) {
		results[i] = e.scanShard(ctx, inputs[i], &o, pm)
		pm.BatchInput()
		done[i] = true
	})
	if err != nil {
		for i := range results {
			if !done[i] {
				results[i].Err = fmt.Errorf("bvap: batch input %d not scanned: %w", i, err)
			}
		}
		return results, fmt.Errorf("bvap: batch scan canceled: %w", err)
	}
	return results, nil
}

// scanShard scans one batch input on a pooled stream, applying the
// resilience ladder when configured.
func (e *Engine) scanShard(ctx context.Context, input []byte, o *BatchOptions, pm *parascan.Metrics) BatchResult {
	crossCheck := false
	maxRetries := 0
	if o.Resilience != nil {
		crossCheck = o.Resilience.CrossCheck
		maxRetries = o.Resilience.MaxRetries
		if maxRetries == 0 {
			maxRetries = 2
		}
		if maxRetries < 0 {
			maxRetries = 0
		}
	}
	var res BatchResult
	for attempt := 0; ; attempt++ {
		ms, err := e.scanShardAttempt(ctx, input, o.Budget, attempt)
		res.Matches, res.Err, res.Retries = ms, err, attempt
		if err != nil || !crossCheck || e.verifyShard(input, ms) {
			return res
		}
		if attempt < maxRetries {
			pm.ShardRetry()
			continue
		}
		// Retries exhausted: degrade to the independent reference for the
		// patterns it covers (the clean path), keeping the engine's output
		// for patterns outside the reference's reach.
		pm.ShardFallback()
		res.Matches = e.referenceMatches(input, ms)
		return res
	}
}

// scanShardAttempt runs one scan attempt of one batch input on a pooled
// stream. It is panic-safe: the deferred recovery returns the pooled
// Stream (a reused stream is Reset before its next scan, so a mid-scan
// panic cannot leak state into a later input) and converts the panic into
// a typed *PanicError, so a pathological shard degrades one input's
// result instead of crashing the worker goroutine — and with it the
// process, since a panic on a bare worker goroutine is unrecoverable.
func (e *Engine) scanShardAttempt(ctx context.Context, input []byte, budget Budget, attempt int) (ms []Match, err error) {
	sctx, sp := tracing.StartSpan(ctx, "shard")
	sp.SetInt("attempt", attempt)
	sp.SetInt("bytes", len(input))
	s := e.getStream()
	defer func() {
		if v := recover(); v != nil {
			ms = nil
			err = &PanicError{Op: "batch shard", Value: v, Stack: debug.Stack()}
			sp.SetStr("panic", "recovered")
		}
		e.putStream(s)
		sp.SetInt("matches", len(ms))
		sp.End()
	}()
	s.Reset() // fresh runner state and a full symbol budget
	s.SetBudget(budget)
	ms, err = s.scanContext(sctx, input, 0)
	if hook := shardCorruptHook; hook != nil {
		// The hook runs inside the guarded region so tests can exercise
		// the panic path exactly where a scan body would blow up.
		ms = hook(input, attempt, ms)
	}
	return ms, err
}

// verifyShard compares a shard's match set against the engine's
// independent reference matchers, pattern by pattern. Patterns without a
// reference (unsupported, oversized, or reference-unparseable) are skipped.
func (e *Engine) verifyShard(input []byte, ms []Match) bool {
	refs := e.refPool.Get()
	defer e.refPool.Put(refs)
	for p, ref := range refs {
		if ref == nil {
			continue
		}
		ends := ref.MatchEnds(input)
		j := 0
		for _, m := range ms {
			if m.Pattern != p {
				continue
			}
			if j >= len(ends) || ends[j] != m.End {
				return false
			}
			j++
		}
		if j != len(ends) {
			return false
		}
	}
	return true
}

// referenceMatches rebuilds a shard's match set from the reference
// matchers, keeping the engine's matches for patterns the reference does
// not cover, ordered like FindAll (End, then pattern index).
func (e *Engine) referenceMatches(input []byte, engineMS []Match) []Match {
	refs := e.refPool.Get()
	defer e.refPool.Put(refs)
	var out []Match
	for p, ref := range refs {
		if ref == nil {
			continue
		}
		for _, end := range ref.MatchEnds(input) {
			out = append(out, Match{Pattern: p, End: end})
		}
	}
	for _, m := range engineMS {
		if m.Pattern >= len(refs) || refs[m.Pattern] == nil {
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// ParallelOptions configures Engine.FindAllParallel. The zero value (or a
// nil pointer) selects GOMAXPROCS workers and DefaultChunkSize chunks.
type ParallelOptions struct {
	// Workers bounds the chunk-scanning worker pool; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// ChunkSize is the live bytes per chunk; values < 1 select
	// DefaultChunkSize. Inputs no longer than one chunk are scanned
	// sequentially ("short_input" fallback), and a chunk size at or below
	// the seam window also falls back ("window_dominates": replay would
	// outweigh useful work).
	ChunkSize int
	// Metrics, when non-nil, accrues the bvap_parascan_* chunk, seam and
	// fallback counters on this registry.
	Metrics *telemetry.Registry
}

// FindAllParallel is FindAll over concurrent chunks: the input is split
// into ChunkSize shards, each scanned from the suffix-closed start
// configuration after replaying the seam window before its live region,
// and the per-chunk match lists are concatenated in chunk order — the
// result is byte-for-byte identical to FindAll. Pattern sets with
// unbounded reach (some supported pattern contains *, + or {n,}) cannot
// bound the seam window and fall back to the sequential scan; the decision
// is recorded on Metrics as bvap_parascan_fallback_total{reason=...}. On
// cancellation FindAllParallel returns nil matches and the wrapped context
// error.
func (e *Engine) FindAllParallel(ctx context.Context, input []byte, opts *ParallelOptions) ([]Match, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o ParallelOptions
	if opts != nil {
		o = *opts
	}
	if o.ChunkSize < 1 {
		o.ChunkSize = DefaultChunkSize
	}
	pm := parascan.NewMetrics(o.Metrics)

	tr := tracing.FromContext(ctx)
	window, bounded := e.SeamWindow()
	reason := ""
	switch {
	case !bounded:
		reason = "unbounded_reach"
	case len(input) <= o.ChunkSize:
		reason = "short_input"
	case window >= o.ChunkSize:
		reason = "window_dominates"
	}
	if reason != "" {
		pm.Fallback(reason)
		tr.SetStr("parallel_fallback", reason)
		return e.FindAllContext(ctx, input)
	}

	chunks := parascan.PlanChunks(len(input), o.ChunkSize, window)
	tr.SetInt("chunks", len(chunks))
	tr.SetInt("seam_window", window)
	shards := make([][]Match, len(chunks))
	panics := make([]error, len(chunks))
	err := parascan.ForEach(ctx, len(chunks), o.Workers, pm, func(ctx context.Context, i int) {
		panics[i] = e.scanChunk(ctx, input, chunks[i], shards, pm)
	})
	if err != nil {
		return nil, fmt.Errorf("bvap: parallel scan canceled: %w", err)
	}
	for _, perr := range panics {
		if perr != nil {
			return nil, fmt.Errorf("bvap: parallel scan failed: %w", perr)
		}
	}
	total := 0
	for _, ms := range shards {
		total += len(ms)
	}
	if total == 0 {
		return nil, nil // FindAll returns nil for a matchless input
	}
	out := make([]Match, 0, total)
	for _, ms := range shards {
		out = append(out, ms...)
	}
	return out, nil
}

// scanChunk scans one FindAllParallel chunk on a pooled stream, writing
// the chunk's live matches into its shards slot. Like scanShardAttempt it
// is panic-safe: the deferred recovery returns the pooled Stream and
// converts the panic into the returned *PanicError (nil on success), which
// FindAllParallel surfaces as the call's error.
func (e *Engine) scanChunk(ctx context.Context, input []byte, c parascan.Chunk, shards [][]Match, pm *parascan.Metrics) (perr error) {
	cctx, sp := tracing.StartSpan(ctx, "chunk")
	sp.SetInt("index", c.Index)
	sp.SetInt("replay_bytes", c.ReplayLen())
	s := e.getStream()
	defer func() {
		if v := recover(); v != nil {
			shards[c.Index] = nil
			perr = &PanicError{Op: "chunk scan", Value: v, Stack: debug.Stack()}
			sp.SetStr("panic", "recovered")
		}
		e.putStream(s)
		sp.SetInt("matches", len(shards[c.Index]))
		sp.End()
	}()
	s.Reset()
	s.SetBudget(Budget{}) // chunk scans are never budgeted
	ms, serr := s.scanContext(cctx, input[c.ReplayStart:c.End], c.ReplayStart)
	if hook := chunkPanicHook; hook != nil {
		hook(c)
	}
	if serr != nil {
		return nil // canceled mid-chunk; ForEach surfaces ctx.Err()
	}
	// Matches ending in the warm-up region belong to the previous chunk;
	// drop them in place.
	live := ms[:0]
	for _, m := range ms {
		if m.End >= c.Start {
			live = append(live, m)
		}
	}
	shards[c.Index] = live
	pm.ChunkScanned(c.ReplayLen())
	return nil
}

// chunkPanicHook, when non-nil, runs inside every chunk scan's guarded
// region — the test lever for the chunk panic-recovery path. Never set
// outside tests.
var chunkPanicHook func(c parascan.Chunk)

// SeamWindow returns the compiled set's seam replay window: an upper bound
// on the byte length of any match of any supported pattern, and whether
// such a bound exists. FindAllParallel replays this many bytes before each
// chunk; unsupported patterns never match and do not constrain the window.
// The result is computed once per engine and cached.
func (e *Engine) SeamWindow() (window int, bounded bool) {
	e.seamOnce.Do(func() {
		e.seamBounded = true
		for _, pr := range e.res.Report.PerRegex {
			if !pr.Supported {
				continue
			}
			ast, _, err := regex.ParseAnchored(pr.Pattern)
			if err != nil {
				e.seamBounded = false
				return
			}
			n, ok := regex.MaxMatchLen(ast)
			if !ok {
				e.seamBounded = false
				return
			}
			if n > e.seamBytes {
				e.seamBytes = n
			}
		}
	})
	if !e.seamBounded {
		return 0, false
	}
	return e.seamBytes, true
}

// PatternReach returns an upper bound on the byte length of any match of
// pattern and whether such a bound exists (false when the pattern contains
// *, + or {n,}). It is the per-pattern form of Engine.SeamWindow and uses
// the same analysis family as AnalyzePattern.
func PatternReach(pattern string) (reach int, bounded bool, err error) {
	ast, _, err := regex.ParseAnchored(pattern)
	if err != nil {
		return 0, false, err
	}
	n, ok := regex.MaxMatchLen(ast)
	return n, ok, nil
}

// crossCheckRefs builds one independent software matcher per compiled
// machine: nil entries stand for unsupported patterns, patterns whose
// unfolded form exceeds crossCheckMaxUnfolded, and patterns the reference
// parser rejects. The matchers are stateful — each caller owns the set it
// gets (ScanBatch pools them via Engine.refPool).
func (e *Engine) crossCheckRefs() []*swmatch.Matcher {
	per := e.res.Report.PerRegex
	refs := make([]*swmatch.Matcher, len(per))
	for i, pr := range per {
		if !pr.Supported || pr.UnfoldedSTEs > crossCheckMaxUnfolded {
			continue
		}
		m, err := swmatch.New(pr.Pattern)
		if err != nil {
			// The hardware compiler accepted the pattern; a reference
			// build failure means the reference doesn't cover this syntax
			// — skip rather than fail.
			continue
		}
		refs[i] = m
	}
	return refs
}
