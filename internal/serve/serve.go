// Package serve is the lifecycle substrate of the long-lived scan service
// (bvap.Service in the root package): the mechanisms an always-on matcher
// needs above the single-scan level, each independent of the automata model
// and therefore testable in isolation:
//
//   - admission control: a bounded concurrency gate with a bounded wait
//     queue and deadline-aware load shedding (Admission) — under overload
//     the service sheds requests with ErrOverloaded instead of queueing
//     unboundedly, and a request whose deadline expires while queued is
//     shed rather than admitted to do work nobody is waiting for;
//   - quarantine: a keyed circuit breaker (Breaker) that takes repeatedly
//     failing patterns or inputs out of service for a cooldown
//     (ErrQuarantined), degrading the served set rather than the process;
//   - hot reload: a generation cell (Generations) built on atomic.Pointer
//     with a serialized two-phase swap protocol — background build,
//     validation, atomic publish — where a failed candidate never becomes
//     visible (automatic rollback is the default, not a recovery path);
//   - panic containment: Guard converts a panic in a scan body into a
//     typed *PanicError carrying the recovered value and stack, so one
//     pathological input cannot take the process down;
//   - watchdogs: Watchdog bounds one scan's wall time with a deadline
//     context and reports overruns distinctly from caller cancellation.
//
// The package deliberately knows nothing about regexes, engines or matches:
// the root package supplies closures over its own Engine/Stream types,
// keeping the dependency arrow pointing the usual way (bvap →
// internal/serve) and the lifecycle state machines property-testable
// without compiling patterns.
package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors of the service lifecycle. The root package re-exports
// them (bvap.ErrOverloaded, bvap.ErrDraining, bvap.ErrQuarantined) as the
// same values, so errors.Is works across the boundary.
var (
	// ErrOverloaded marks a request shed by admission control: the
	// concurrency gate and its wait queue are full, or the request's
	// deadline expired while it was queued.
	ErrOverloaded = errors.New("service overloaded")
	// ErrDraining marks a request rejected because the service is
	// draining: shutdown has begun, in-flight work is completing, and no
	// new work is admitted.
	ErrDraining = errors.New("service draining")
	// ErrQuarantined marks a request (or pattern) refused because the
	// circuit breaker has taken its key out of service after repeated
	// failures; it re-enters service after the cooldown.
	ErrQuarantined = errors.New("quarantined by circuit breaker")
	// ErrQuotaExceeded marks a request refused by the per-tenant
	// token-bucket quota before it could contend for an admission slot:
	// the tenant has exhausted its sustained rate and burst allowance.
	// Other tenants are unaffected; the bucket refills continuously.
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrStaleGeneration marks a staged candidate whose base generation
	// was superseded between prepare and commit: another reload published
	// first, so the commit is refused and the candidate must be re-staged
	// against the new generation.
	ErrStaleGeneration = errors.New("staged candidate is stale: generation advanced since prepare")
)

// PanicError is a panic recovered from a scan body, converted into an
// ordinary error so a pathological pattern or input degrades one request
// instead of the process.
type PanicError struct {
	// Op names the operation that panicked ("scan", "batch shard",
	// "chunk scan", "reload build", ...).
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// Guard runs fn, converting a panic into a *PanicError. The returned error
// is nil when fn returns normally.
func Guard(op string, fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Op: op, Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// ReloadError is a failed hot reload, annotated with the phase that
// rejected the candidate generation. The served generation is unchanged
// when a ReloadError is returned — rollback is automatic because the
// candidate is only published after every phase passes.
type ReloadError struct {
	// Phase is the reload phase that failed: "build", "validate" or
	// "crosscheck".
	Phase string
	// Err is the underlying cause.
	Err error
}

func (e *ReloadError) Error() string {
	return fmt.Sprintf("reload rejected in %s phase: %v", e.Phase, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ReloadError) Unwrap() error { return e.Err }
