package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffUnjitteredSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for attempt, w := range want {
		if d := b.Delay(attempt); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, d, w)
		}
	}
	if d := b.Delay(-3); d != 100*time.Millisecond {
		t.Fatalf("Delay(-3) = %v, want the base delay", d)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	d0 := b.Delay(0)
	// 50 ms base with 20% jitter: within [45, 55] ms.
	if d0 < 45*time.Millisecond || d0 > 55*time.Millisecond {
		t.Fatalf("zero-value Delay(0) = %v, want ~50ms ±10%%", d0)
	}
	// The cap holds under growth: far attempts stay within jitter of 30 s.
	if d := b.Delay(40); d < 27*time.Second || d > 33*time.Second {
		t.Fatalf("zero-value Delay(40) = %v, want ~30s ±10%%", d)
	}
}

func TestBackoffJitterBoundsAndSpread(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Hour, Factor: 2, Jitter: 0.5, Seed: 42}
	lo, hi := 750*time.Millisecond, 1250*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := b.Delay(0)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 jittered draws produced one value; jitter stream is stuck")
	}
}

func TestBackoffWaitHonorsContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Wait(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after cancellation")
	}
}

func TestBackoffWaitCompletes(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: -1}
	if err := b.Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait = %v, want nil", err)
	}
}

// TestBreakerCooldownEscalates pins the satellite behavior: a key that
// re-trips after a half-open probe quarantines on the doubling schedule,
// capped at MaxCooldown, and a success resets it to the base cooldown.
func TestBreakerCooldownEscalates(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		Threshold: 1, Window: time.Minute,
		Cooldown: 10 * time.Second, MaxCooldown: 40 * time.Second,
	}, nil)
	b.SetClock(func() time.Time { return now })

	trip := func() {
		t.Helper()
		if !b.Failure("k") {
			t.Fatal("failure at threshold 1 should trip")
		}
	}
	quarantinedFor := func(d time.Duration) {
		t.Helper()
		probe := now
		if b.Allow("k") {
			t.Fatal("key allowed immediately after trip")
		}
		now = probe.Add(d - time.Nanosecond)
		if b.Allow("k") {
			t.Fatalf("key released before the %v cooldown elapsed", d)
		}
		now = probe.Add(d + time.Millisecond)
		if !b.Allow("k") {
			t.Fatalf("key still quarantined after the %v cooldown", d)
		}
	}

	trip()
	quarantinedFor(10 * time.Second) // first trip: base cooldown
	trip()
	quarantinedFor(20 * time.Second) // second consecutive: doubled
	trip()
	quarantinedFor(40 * time.Second) // third: doubled again
	trip()
	quarantinedFor(40 * time.Second) // capped at MaxCooldown

	// An in-service success resets the escalation to the base schedule.
	b.Success("k")
	trip()
	quarantinedFor(10 * time.Second)
}

func TestQuotasTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	q := NewQuotas(QuotaConfig{RatePerSec: 1, Burst: 3}, map[string]QuotaConfig{
		"vip":  {RatePerSec: 1000},
		"free": {RatePerSec: 0.5, Burst: 1},
	})
	if q == nil {
		t.Fatal("NewQuotas returned nil for a metered config")
	}
	q.SetClock(func() time.Time { return now })

	// Default tenant: burst of 3, then refusal.
	for i := 0; i < 3; i++ {
		if !q.Allow("t1") {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	if q.Allow("t1") {
		t.Fatal("4th admission allowed past a burst of 3")
	}
	// Tenants are independent buckets.
	if !q.Allow("t2") {
		t.Fatal("t1's exhaustion starved t2")
	}
	// Continuous refill at 1/s.
	now = now.Add(1500 * time.Millisecond)
	if !q.Allow("t1") {
		t.Fatal("bucket did not refill after 1.5s at 1/s")
	}
	if q.Allow("t1") {
		t.Fatal("bucket over-refilled: 1.5 tokens should admit exactly once")
	}
	// Per-tenant overrides.
	for i := 0; i < 100; i++ {
		if !q.Allow("vip") {
			t.Fatalf("vip admission %d refused under a 1000/s quota", i)
		}
	}
	if !q.Allow("free") {
		t.Fatal("free tenant's single-burst bucket refused its first request")
	}
	if q.Allow("free") {
		t.Fatal("free tenant admitted past burst 1")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	if tokens, metered := q.Tokens("t1"); !metered || tokens != 3 {
		t.Fatalf("Tokens(t1) = %v, %v; want 3 (capped at burst), true", tokens, metered)
	}
}

func TestQuotasUnlimited(t *testing.T) {
	if q := NewQuotas(QuotaConfig{}, nil); q != nil {
		t.Fatal("fully unlimited config should build the nil (disabled) layer")
	}
	var q *Quotas
	if !q.Allow("anyone") {
		t.Fatal("nil Quotas must admit everything")
	}
	if _, metered := q.Tokens("anyone"); metered {
		t.Fatal("nil Quotas reports tenants as metered")
	}
	// An explicitly unlimited tenant inside a metered layer keeps no bucket.
	ql := NewQuotas(QuotaConfig{RatePerSec: 1}, map[string]QuotaConfig{"open": {}})
	for i := 0; i < 1000; i++ {
		if !ql.Allow("open") {
			t.Fatal("unlimited tenant refused")
		}
	}
}

func TestQuotasEvictionBounded(t *testing.T) {
	q := NewQuotas(QuotaConfig{RatePerSec: 1, Burst: 1}, nil)
	now := time.Unix(0, 0)
	q.SetClock(func() time.Time { return now })
	for i := 0; i < maxTrackedTenants+100; i++ {
		q.Allow(string(rune('a')) + string(rune(i)))
	}
	q.mu.Lock()
	n := len(q.state)
	q.mu.Unlock()
	if n > maxTrackedTenants {
		t.Fatalf("tracked buckets = %d, want <= %d", n, maxTrackedTenants)
	}
}

func TestGenerationsStageCommit(t *testing.T) {
	g := NewGenerations("v1", nil)
	st, err := g.Stage(
		func(old *Generation[string]) (string, error) { return old.Value + "+v2", nil },
		nil,
	)
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	if got := g.Load().Value; got != "v1" {
		t.Fatalf("staged candidate visible before commit: serving %q", got)
	}
	gen, err := st.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if gen.Seq != 2 || g.Load().Value != "v1+v2" {
		t.Fatalf("after commit: seq=%d value=%q, want 2, v1+v2", gen.Seq, g.Load().Value)
	}
	// Commit is idempotent-exclusive: the second call is refused as stale.
	if _, err := st.Commit(); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("second Commit = %v, want ErrStaleGeneration", err)
	}
}

func TestGenerationsStageStaleOnInterleavedSwap(t *testing.T) {
	g := NewGenerations(1, nil)
	st, err := g.Stage(func(old *Generation[int]) (int, error) { return old.Value + 1, nil }, nil)
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	// Another reload lands between prepare and commit.
	if _, err := g.Swap(func(old *Generation[int]) (int, error) { return old.Value + 100, nil }, nil); err != nil {
		t.Fatalf("interleaved Swap: %v", err)
	}
	if _, err := st.Commit(); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("Commit after interleaved Swap = %v, want ErrStaleGeneration", err)
	}
	if got := g.Load().Value; got != 101 {
		t.Fatalf("stale commit disturbed the served value: %d, want 101", got)
	}
}

func TestGenerationsStageAbort(t *testing.T) {
	g := NewGenerations("a", nil)
	st, err := g.Stage(func(*Generation[string]) (string, error) { return "b", nil }, nil)
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	st.Abort()
	st.Abort() // idempotent
	if _, err := st.Commit(); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("Commit after Abort = %v, want stale refusal", err)
	}
	if g.Load().Value != "a" || g.Seq() != 1 {
		t.Fatal("abort disturbed the served generation")
	}
	// The cell still reloads normally afterwards.
	if _, err := g.Swap(func(*Generation[string]) (string, error) { return "c", nil }, nil); err != nil {
		t.Fatalf("Swap after Abort: %v", err)
	}
	if g.Load().Value != "c" {
		t.Fatal("post-abort swap did not publish")
	}
}

func TestGenerationsStageValidateRejects(t *testing.T) {
	g := NewGenerations(0, nil)
	_, err := g.Stage(
		func(*Generation[int]) (int, error) { return 9, nil },
		func(int) error { return errors.New("candidate rejected") },
	)
	if err == nil {
		t.Fatal("Stage with failing validator succeeded")
	}
	var re *ReloadError
	if !errors.As(err, &re) || re.Phase != "validate" {
		t.Fatalf("Stage error = %v, want *ReloadError{Phase: validate}", err)
	}
	if g.Seq() != 1 {
		t.Fatal("rejected stage advanced the generation")
	}
}
