package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bvap/internal/telemetry"
)

// --- Admission ---

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2}, nil)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	rel1()
	rel1() // release is idempotent
	rel2()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestAdmissionShedsQueueFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 0}, NewMetrics(reg))
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate: err = %v, want ErrOverloaded", err)
	}
	assertSample(t, reg, MetricSheds, map[string]string{"reason": "queue_full"}, 1)
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := a.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Wait until the second request is queued, then free the slot.
	waitFor(t, func() bool { return a.Queued() == 1 })
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestAdmissionShedsExpiredWaiter(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = a.Acquire(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired waiter: err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: err = %v, want to also wrap DeadlineExceeded", err)
	}
	if a.Queued() != 0 {
		t.Fatalf("queued = %d after shed, want 0", a.Queued())
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Drain with work in flight: bounded wait expires.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain: err = %v, want DeadlineExceeded", err)
	}
	// New work is rejected while draining.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: err = %v, want ErrDraining", err)
	}
	rel()
	if err := a.Drain(context.Background()); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 4, MaxQueue: 8}, nil)
	var admitted, shed, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background())
			if err != nil {
				shed.Add(1)
				return
			}
			n := a.Inflight()
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			admitted.Add(1)
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if admitted.Load()+shed.Load() != 64 {
		t.Fatalf("admitted %d + shed %d != 64", admitted.Load(), shed.Load())
	}
	if peak.Load() > 4 {
		t.Fatalf("peak inflight %d exceeds MaxConcurrent 4", peak.Load())
	}
	if a.Inflight() != 0 || a.Queued() != 0 {
		t.Fatalf("gate not quiescent: inflight=%d queued=%d", a.Inflight(), a.Queued())
	}
}

// --- Breaker ---

func TestBreakerTripsAndCoolsDown(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	reg := telemetry.NewRegistry()
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: time.Minute, Cooldown: 30 * time.Second}, NewMetrics(reg))
	b.SetClock(clock)

	if !b.Allow("p0") {
		t.Fatal("fresh key not allowed")
	}
	b.Failure("p0")
	b.Failure("p0")
	if tripped := b.Failure("p0"); !tripped {
		t.Fatal("third failure should trip")
	}
	if b.Allow("p0") {
		t.Fatal("tripped key still allowed")
	}
	if q := b.Quarantined(); len(q) != 1 || q[0] != "p0" {
		t.Fatalf("quarantined = %v, want [p0]", q)
	}
	if b.Allow("p1") {
		// other keys unaffected
	} else {
		t.Fatal("unrelated key quarantined")
	}
	// Cooldown elapses: half-open, fresh budget.
	now = now.Add(31 * time.Second)
	if !b.Allow("p0") {
		t.Fatal("key not released after cooldown")
	}
	if b.Failure("p0") {
		t.Fatal("single failure after cooldown should not re-trip")
	}
	assertSample(t, reg, MetricQuarantineTrips, nil, 1)
}

func TestBreakerWindowSlides(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 2, Window: 10 * time.Second, Cooldown: time.Minute}, nil)
	b.SetClock(func() time.Time { return now })
	b.Failure("k")
	now = now.Add(11 * time.Second) // first failure ages out
	if b.Failure("k") {
		t.Fatal("stale failure should have aged out of the window")
	}
	if !b.Allow("k") {
		t.Fatal("key quarantined despite window slide")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Window: time.Minute, Cooldown: time.Minute}, nil)
	b.Failure("k")
	b.Success("k")
	if b.Failure("k") {
		t.Fatal("success should have cleared the failure history")
	}
}

// --- Generations ---

func TestGenerationsSwapAndRollback(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := NewGenerations("v1", NewMetrics(reg))
	if g.Seq() != 1 || g.Load().Value != "v1" {
		t.Fatalf("initial generation = %d/%q", g.Seq(), g.Load().Value)
	}
	// Failed build: generation unchanged, typed error names the phase.
	_, err := g.Swap(
		func(old *Generation[string]) (string, error) { return "", fmt.Errorf("boom") },
		nil,
	)
	var re *ReloadError
	if !errors.As(err, &re) || re.Phase != "build" {
		t.Fatalf("err = %v, want ReloadError{build}", err)
	}
	if g.Seq() != 1 {
		t.Fatalf("failed build advanced generation to %d", g.Seq())
	}
	// Failed validation: same story, phase preserved from the validator.
	_, err = g.Swap(
		func(old *Generation[string]) (string, error) { return "v2", nil },
		func(c string) error { return &ReloadError{Phase: "crosscheck", Err: fmt.Errorf("diverged")} },
	)
	if !errors.As(err, &re) || re.Phase != "crosscheck" {
		t.Fatalf("err = %v, want ReloadError{crosscheck}", err)
	}
	if g.Seq() != 1 || g.Load().Value != "v1" {
		t.Fatal("failed validation must not publish the candidate")
	}
	// Successful swap.
	gen, err := g.Swap(
		func(old *Generation[string]) (string, error) { return old.Value + "+v2", nil },
		func(c string) error { return nil },
	)
	if err != nil || gen.Seq != 2 || gen.Value != "v1+v2" {
		t.Fatalf("swap = %+v, %v", gen, err)
	}
	assertSample(t, reg, MetricGeneration, nil, 2)
}

func TestGenerationsConcurrentSwaps(t *testing.T) {
	g := NewGenerations(0, nil)
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Swap(
				func(old *Generation[int]) (int, error) { return old.Value + 1, nil },
				nil,
			)
			if err != nil {
				t.Errorf("swap: %v", err)
			}
		}()
	}
	wg.Wait()
	if g.Seq() != n+1 || g.Load().Value != n {
		t.Fatalf("after %d concurrent swaps: seq=%d value=%d", n, g.Seq(), g.Load().Value)
	}
}

// --- Guard / Watchdog ---

func TestGuardConvertsPanics(t *testing.T) {
	err := Guard("scan", func() { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Op != "scan" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	if err := Guard("scan", func() {}); err != nil {
		t.Fatalf("clean body: err = %v", err)
	}
}

func TestWatchdogOutcomes(t *testing.T) {
	bg := context.Background()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	if o, err := Watchdog(bg, 0, "op", m, func(ctx context.Context) error { return nil }); o != OutcomeOK || err != nil {
		t.Fatalf("ok: %v, %v", o, err)
	}
	sentinel := fmt.Errorf("scan failed")
	if o, err := Watchdog(bg, 0, "op", m, func(ctx context.Context) error { return sentinel }); o != OutcomeError || !errors.Is(err, sentinel) {
		t.Fatalf("error: %v, %v", o, err)
	}
	// Timeout: the body blocks until the watchdog context expires.
	o, err := Watchdog(bg, 5*time.Millisecond, "op", m, func(ctx context.Context) error {
		<-ctx.Done()
		return fmt.Errorf("stopped: %w", ctx.Err())
	})
	if o != OutcomeTimeout || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: %v, %v", o, err)
	}
	// Caller cancellation wins over the watchdog.
	cctx, cancel := context.WithCancel(bg)
	cancel()
	o, err = Watchdog(cctx, time.Hour, "op", m, func(ctx context.Context) error {
		return fmt.Errorf("stopped: %w", ctx.Err())
	})
	if o != OutcomeCanceled || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: %v, %v", o, err)
	}
	// Panic.
	o, err = Watchdog(bg, 0, "op", m, func(ctx context.Context) error { panic(42) })
	var pe *PanicError
	if o != OutcomePanic || !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("panic: %v, %v", o, err)
	}
	assertSample(t, reg, MetricPanics, nil, 1)
	assertSample(t, reg, MetricWatchdogTimeouts, nil, 1)

	for o, want := range map[Outcome]string{
		OutcomeOK: "ok", OutcomeError: "error", OutcomeTimeout: "timeout",
		OutcomeCanceled: "canceled", OutcomePanic: "panic", Outcome(99): "unknown",
	} {
		if o.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

// --- nil-metrics safety ---

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Generation(1)
	m.QueueDepth(1)
	m.Inflight(1)
	m.Shed("queue_full")
	m.AdmissionWait(time.Millisecond)
	m.Scan("ok")
	m.Reload("ok")
	m.QuarantineTrip()
	m.QuarantineActive(1)
	m.Panic()
	m.WatchdogTimeout()
	m.CheckpointTaken()
	m.CheckpointAge(1)
}

// --- helpers ---

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// assertSample checks one metric sample's value on the registry.
func assertSample(t *testing.T, reg *telemetry.Registry, name string, labels map[string]string, want float64) {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			if s.Value != want {
				t.Fatalf("%s%v = %v, want %v", name, labels, s.Value, want)
			}
			return
		}
	}
	t.Fatalf("metric %s%v not found", name, labels)
}
