package serve

import (
	"sort"
	"sync"
	"time"
)

// BreakerConfig tunes the quarantine circuit breaker. The zero value
// selects 3 failures within 1 minute to trip, and a 30-second cooldown.
type BreakerConfig struct {
	// Threshold is the number of failures within Window that trips the
	// breaker for a key; values < 1 select 3.
	Threshold int
	// Window is the sliding interval failures are counted over; values
	// <= 0 select one minute.
	Window time.Duration
	// Cooldown is how long a tripped key stays quarantined; values <= 0
	// select 30 seconds. After the cooldown the key re-enters service
	// half-open: its failure count restarts from zero, so one more
	// failure window is needed to re-trip.
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
}

// Breaker is a keyed circuit breaker: repeated failures of one key
// (a pattern index, an input digest) within the window quarantine that key
// for the cooldown, taking it out of service without affecting other keys
// — the degraded-set alternative to crashing or serving corrupt results.
// Construct with NewBreaker; all methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	m   *Metrics

	// now is the clock, swappable in tests.
	now func() time.Time

	mu    sync.Mutex
	state map[string]*breakerEntry
}

type breakerEntry struct {
	failures []time.Time // within the window, oldest first
	until    time.Time   // quarantined while now < until
	trips    uint64
}

// NewBreaker builds a breaker. m may be nil.
func NewBreaker(cfg BreakerConfig, m *Metrics) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg, m: m, now: time.Now, state: map[string]*breakerEntry{}}
}

// Allow reports whether key is currently in service. A key past its
// cooldown is half-open: Allow returns true and the stale failure history
// is discarded.
func (b *Breaker) Allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.state[key]
	if e == nil {
		return true
	}
	now := b.now()
	if now.Before(e.until) {
		return false
	}
	if !e.until.IsZero() {
		// Cooldown elapsed: half-open, fresh failure budget.
		e.until = time.Time{}
		e.failures = e.failures[:0]
		b.m.QuarantineActive(int64(b.activeLocked(now)))
	}
	return true
}

// Failure records one failure of key, returning true when this failure
// tripped the breaker (the key is now quarantined).
func (b *Breaker) Failure(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	e := b.state[key]
	if e == nil {
		e = &breakerEntry{}
		b.state[key] = e
	}
	if now.Before(e.until) {
		return false // already quarantined; nothing new trips
	}
	// Slide the window.
	cutoff := now.Add(-b.cfg.Window)
	keep := e.failures[:0]
	for _, t := range e.failures {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	e.failures = append(keep, now)
	if len(e.failures) < b.cfg.Threshold {
		return false
	}
	e.until = now.Add(b.cfg.Cooldown)
	e.failures = e.failures[:0]
	e.trips++
	b.m.QuarantineTrip()
	b.m.QuarantineActive(int64(b.activeLocked(now)))
	return true
}

// Success records one success of key, clearing its failure history (a key
// must fail Threshold times within one window with no intervening success
// to trip).
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.state[key]; e != nil && !b.now().Before(e.until) {
		e.failures = e.failures[:0]
	}
}

// Quarantined returns the currently quarantined keys, sorted.
func (b *Breaker) Quarantined() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var out []string
	for k, e := range b.state {
		if now.Before(e.until) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// activeLocked counts quarantined keys; callers hold b.mu.
func (b *Breaker) activeLocked(now time.Time) int {
	n := 0
	for _, e := range b.state {
		if now.Before(e.until) {
			n++
		}
	}
	return n
}

// SetClock replaces the breaker's clock; tests use it to step time
// deterministically.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}
