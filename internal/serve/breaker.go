package serve

import (
	"sort"
	"sync"
	"time"
)

// BreakerConfig tunes the quarantine circuit breaker. The zero value
// selects 3 failures within 1 minute to trip, and a 30-second first
// cooldown that doubles per consecutive trip up to 8× (the shared Backoff
// schedule, unjittered so quarantine windows are exact).
type BreakerConfig struct {
	// Threshold is the number of failures within Window that trips the
	// breaker for a key; values < 1 select 3.
	Threshold int
	// Window is the sliding interval failures are counted over; values
	// <= 0 select one minute.
	Window time.Duration
	// Cooldown is how long a key stays quarantined after its first trip;
	// values <= 0 select 30 seconds. After the cooldown the key re-enters
	// service half-open: its failure count restarts from zero, so one more
	// failure window is needed to re-trip — but a key that re-trips after
	// a half-open probe escalates along the Backoff schedule (Cooldown ·
	// 2^consecutive-trips, capped at MaxCooldown) instead of re-entering
	// on the fixed interval. A success while in service resets the
	// escalation.
	Cooldown time.Duration
	// MaxCooldown caps the escalated cooldown; values <= 0 select
	// 8 × Cooldown.
	MaxCooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
}

// Breaker is a keyed circuit breaker: repeated failures of one key
// (a pattern index, an input digest) within the window quarantine that key
// for the cooldown, taking it out of service without affecting other keys
// — the degraded-set alternative to crashing or serving corrupt results.
// Construct with NewBreaker; all methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	m   *Metrics

	// reentry is the escalation schedule of repeat offenders: the cooldown
	// of a key's k-th consecutive trip is reentry.Delay(k-1). It replaces
	// the old fixed-cooldown sleep with the shared jitterable Backoff
	// (configured unjittered here, so quarantine windows stay exact for
	// operators and tests alike).
	reentry Backoff

	// now is the clock, swappable in tests.
	now func() time.Time

	mu    sync.Mutex
	state map[string]*breakerEntry
}

type breakerEntry struct {
	failures []time.Time // within the window, oldest first
	until    time.Time   // quarantined while now < until
	trips    uint64
	// consecutive counts trips without an intervening in-service success:
	// it indexes the re-entry backoff schedule and resets on Success.
	consecutive int
}

// NewBreaker builds a breaker. m may be nil.
func NewBreaker(cfg BreakerConfig, m *Metrics) *Breaker {
	cfg.fill()
	return &Breaker{
		cfg:     cfg,
		m:       m,
		reentry: Backoff{Base: cfg.Cooldown, Max: cfg.MaxCooldown, Factor: 2, Jitter: -1},
		now:     time.Now,
		state:   map[string]*breakerEntry{},
	}
}

// Allow reports whether key is currently in service. A key past its
// cooldown is half-open: Allow returns true and the stale failure history
// is discarded.
func (b *Breaker) Allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.state[key]
	if e == nil {
		return true
	}
	now := b.now()
	if now.Before(e.until) {
		return false
	}
	if !e.until.IsZero() {
		// Cooldown elapsed: half-open, fresh failure budget.
		e.until = time.Time{}
		e.failures = e.failures[:0]
		b.m.QuarantineActive(int64(b.activeLocked(now)))
	}
	return true
}

// Failure records one failure of key, returning true when this failure
// tripped the breaker (the key is now quarantined).
func (b *Breaker) Failure(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	e := b.state[key]
	if e == nil {
		e = &breakerEntry{}
		b.state[key] = e
	}
	if now.Before(e.until) {
		return false // already quarantined; nothing new trips
	}
	// Slide the window.
	cutoff := now.Add(-b.cfg.Window)
	keep := e.failures[:0]
	for _, t := range e.failures {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	e.failures = append(keep, now)
	if len(e.failures) < b.cfg.Threshold {
		return false
	}
	// Escalate: the k-th consecutive trip quarantines for the k-th step of
	// the re-entry backoff schedule (first trip = base cooldown).
	e.until = now.Add(b.reentry.Delay(e.consecutive))
	e.consecutive++
	e.failures = e.failures[:0]
	e.trips++
	b.m.QuarantineTrip()
	b.m.QuarantineActive(int64(b.activeLocked(now)))
	return true
}

// Success records one success of key, clearing its failure history (a key
// must fail Threshold times within one window with no intervening success
// to trip) and resetting the cooldown escalation: a half-open probe that
// succeeds returns the key to the base schedule.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.state[key]; e != nil && !b.now().Before(e.until) {
		e.failures = e.failures[:0]
		e.consecutive = 0
	}
}

// Quarantined returns the currently quarantined keys, sorted.
func (b *Breaker) Quarantined() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var out []string
	for k, e := range b.state {
		if now.Before(e.until) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// activeLocked counts quarantined keys; callers hold b.mu.
func (b *Breaker) activeLocked(now time.Time) int {
	n := 0
	for _, e := range b.state {
		if now.Before(e.until) {
			n++
		}
	}
	return n
}

// SetClock replaces the breaker's clock; tests use it to step time
// deterministically.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}
