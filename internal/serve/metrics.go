package serve

import (
	"time"

	"bvap/internal/telemetry"
)

// Metric names exposed by the service layer. Registered lazily by
// NewMetrics; the whole subsystem runs with a nil *Metrics when the caller
// attaches no registry, and every method is nil-receiver safe so the hot
// paths pay one comparison (the parascan convention).
const (
	// MetricGeneration is a gauge of the served pattern-set generation
	// (1 at start, +1 per successful hot reload).
	MetricGeneration = "bvap_serve_generation"
	// MetricQueueDepth is a gauge of requests waiting in the admission
	// queue.
	MetricQueueDepth = "bvap_serve_queue_depth"
	// MetricInflight is a gauge of admitted, unfinished requests.
	MetricInflight = "bvap_serve_inflight"
	// MetricSheds counts requests shed by admission control, labeled by
	// reason: "queue_full", "deadline" or "draining".
	MetricSheds = "bvap_serve_sheds_total"
	// MetricAdmissionWait is a histogram of admission latency in
	// milliseconds (0 for the uncontended fast path).
	MetricAdmissionWait = "bvap_serve_admission_wait_ms"
	// MetricAdmits counts admission-gate decisions labeled by tenant and
	// outcome: "ok" (admitted), "quota" (refused by the tenant's token
	// bucket), "shed" (refused by the shared gate) or "draining". The
	// tenant label is the caller-supplied tenant id, "default" when the
	// request carried none.
	MetricAdmits = "bvap_serve_admit_total"
	// MetricScans counts scans the service completed, labeled by outcome:
	// "ok", "error", "panic" or "timeout".
	MetricScans = "bvap_serve_scans_total"
	// MetricReloads counts hot-reload attempts, labeled by result: "ok",
	// "build_failed" or "validate_failed".
	MetricReloads = "bvap_serve_reloads_total"
	// MetricQuarantineTrips counts circuit-breaker trips.
	MetricQuarantineTrips = "bvap_serve_quarantine_trips_total"
	// MetricQuarantineActive is a gauge of currently quarantined keys.
	MetricQuarantineActive = "bvap_serve_quarantine_active"
	// MetricPanics counts panics recovered into *PanicError.
	MetricPanics = "bvap_serve_panics_total"
	// MetricWatchdogTimeouts counts scans stopped by the per-scan
	// watchdog deadline.
	MetricWatchdogTimeouts = "bvap_serve_watchdog_timeouts_total"
	// MetricCheckpoints counts streaming checkpoints taken.
	MetricCheckpoints = "bvap_serve_checkpoints_total"
	// MetricCheckpointAge is a gauge of symbols consumed since the last
	// streaming checkpoint (the replay exposure of a crash right now).
	MetricCheckpointAge = "bvap_serve_checkpoint_age_symbols"
	// MetricScanDuration is a histogram of end-to-end scan latency in
	// milliseconds (admission through engine return), carrying a trace-id
	// exemplar when the scan was traced.
	MetricScanDuration = "bvap_serve_scan_duration_ms"
	// MetricScanEnergy is a histogram of per-scan energy in picojoules
	// (the calibrated serving-path estimate; see ServiceConfig), carrying a
	// trace-id exemplar when the scan was traced.
	MetricScanEnergy = "bvap_serve_scan_energy_pj"
)

// ShedReasons enumerates the label values of MetricSheds, for exposition
// and tests.
var ShedReasons = []string{"queue_full", "deadline", "draining"}

// AdmitOutcomes enumerates the outcome label values of MetricAdmits.
var AdmitOutcomes = []string{"ok", "quota", "shed", "draining"}

// AdmissionWaitBuckets is the bucket ladder of MetricAdmissionWait, in
// milliseconds.
var AdmissionWaitBuckets = []float64{0, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// ScanDurationBuckets is the bucket ladder of MetricScanDuration, in
// milliseconds: the admission ladder extended upward, since a scan holds
// its slot for the whole engine run.
var ScanDurationBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// ScanEnergyBuckets is the bucket ladder of MetricScanEnergy, in
// picojoules: decades from 10 pJ to 1 J-scale scans (1e12 pJ), wide
// because per-scan energy follows input length.
var ScanEnergyBuckets = []float64{10, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12}

// Metrics is the resolved handle set of the service's telemetry. A nil
// *Metrics is valid everywhere and records nothing.
type Metrics struct {
	generation       *telemetry.Gauge
	queueDepth       *telemetry.Gauge
	inflight         *telemetry.Gauge
	sheds            *telemetry.CounterVec
	admits           *telemetry.CounterVec
	admissionWait    *telemetry.Histogram
	scans            *telemetry.CounterVec
	reloads          *telemetry.CounterVec
	quarantineTrips  *telemetry.Counter
	quarantineActive *telemetry.Gauge
	panics           *telemetry.Counter
	watchdogTimeouts *telemetry.Counter
	checkpoints      *telemetry.Counter
	checkpointAge    *telemetry.Gauge
	scanDuration     *telemetry.Histogram
	scanEnergy       *telemetry.Histogram
}

// NewMetrics resolves the service's metric families on reg, returning nil
// for a nil registry so call sites need no branching.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		generation:       reg.Gauge(MetricGeneration, "served pattern-set generation"),
		queueDepth:       reg.Gauge(MetricQueueDepth, "requests waiting in the admission queue"),
		inflight:         reg.Gauge(MetricInflight, "admitted, unfinished requests"),
		sheds:            reg.CounterVec(MetricSheds, "requests shed by admission control", "reason"),
		admits:           reg.CounterVec(MetricAdmits, "admission-gate decisions by tenant", "tenant", "outcome"),
		admissionWait:    reg.Histogram(MetricAdmissionWait, "admission latency in milliseconds", AdmissionWaitBuckets),
		scans:            reg.CounterVec(MetricScans, "scans completed by the service", "outcome"),
		reloads:          reg.CounterVec(MetricReloads, "hot-reload attempts", "result"),
		quarantineTrips:  reg.Counter(MetricQuarantineTrips, "circuit-breaker trips"),
		quarantineActive: reg.Gauge(MetricQuarantineActive, "currently quarantined keys"),
		panics:           reg.Counter(MetricPanics, "panics recovered into PanicError"),
		watchdogTimeouts: reg.Counter(MetricWatchdogTimeouts, "scans stopped by the watchdog deadline"),
		checkpoints:      reg.Counter(MetricCheckpoints, "streaming checkpoints taken"),
		checkpointAge:    reg.Gauge(MetricCheckpointAge, "symbols consumed since the last streaming checkpoint"),
		scanDuration:     reg.Histogram(MetricScanDuration, "end-to-end scan latency in milliseconds", ScanDurationBuckets),
		scanEnergy:       reg.Histogram(MetricScanEnergy, "per-scan energy estimate in picojoules", ScanEnergyBuckets),
	}
}

// Generation records the published generation sequence.
func (m *Metrics) Generation(seq float64) {
	if m != nil {
		m.generation.Set(seq)
	}
}

// QueueDepth records the admission queue depth.
func (m *Metrics) QueueDepth(n int64) {
	if m != nil {
		m.queueDepth.Set(float64(n))
	}
}

// Inflight records the in-flight request count.
func (m *Metrics) Inflight(n int64) {
	if m != nil {
		m.inflight.Set(float64(n))
	}
}

// Shed records one shed request with its reason label.
func (m *Metrics) Shed(reason string) {
	if m != nil {
		m.sheds.With(reason).Inc()
	}
}

// Admit records one admission-gate decision for a tenant. An empty tenant
// is recorded as "default".
func (m *Metrics) Admit(tenant, outcome string) {
	if m != nil {
		if tenant == "" {
			tenant = "default"
		}
		m.admits.With(tenant, outcome).Inc()
	}
}

// AdmissionWait records one admission latency observation.
func (m *Metrics) AdmissionWait(d time.Duration) {
	if m != nil {
		m.admissionWait.Observe(float64(d) / float64(time.Millisecond))
	}
}

// Scan records one completed scan with its outcome label.
func (m *Metrics) Scan(outcome string) {
	if m != nil {
		m.scans.With(outcome).Inc()
	}
}

// Reload records one reload attempt with its result label.
func (m *Metrics) Reload(result string) {
	if m != nil {
		m.reloads.With(result).Inc()
	}
}

// QuarantineTrip records one circuit-breaker trip.
func (m *Metrics) QuarantineTrip() {
	if m != nil {
		m.quarantineTrips.Inc()
	}
}

// QuarantineActive records the number of quarantined keys.
func (m *Metrics) QuarantineActive(n int64) {
	if m != nil {
		m.quarantineActive.Set(float64(n))
	}
}

// Panic records one recovered panic.
func (m *Metrics) Panic() {
	if m != nil {
		m.panics.Inc()
	}
}

// WatchdogTimeout records one watchdog-stopped scan.
func (m *Metrics) WatchdogTimeout() {
	if m != nil {
		m.watchdogTimeouts.Inc()
	}
}

// CheckpointTaken records one streaming checkpoint and resets the age
// gauge.
func (m *Metrics) CheckpointTaken() {
	if m != nil {
		m.checkpoints.Inc()
		m.checkpointAge.Set(0)
	}
}

// CheckpointAge records the symbols consumed since the last checkpoint.
func (m *Metrics) CheckpointAge(symbols int64) {
	if m != nil {
		m.checkpointAge.Set(float64(symbols))
	}
}

// ScanDuration records one end-to-end scan latency; a non-empty traceID
// attaches an exemplar linking the observation to its flight-recorder
// trace.
func (m *Metrics) ScanDuration(d time.Duration, traceID string) {
	if m != nil {
		m.scanDuration.ObserveExemplar(float64(d)/float64(time.Millisecond), traceID)
	}
}

// ScanEnergy records one per-scan energy figure in picojoules, with the
// same exemplar linkage.
func (m *Metrics) ScanEnergy(pj float64, traceID string) {
	if m != nil {
		m.scanEnergy.ObserveExemplar(pj, traceID)
	}
}
