package serve

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Generation is one published engine generation: an opaque payload (the
// root package stores its *Engine plus served-set bookkeeping) tagged with
// a monotonically increasing sequence number.
type Generation[T any] struct {
	// Seq is 1 for the generation the service started with and increases
	// by one per successful reload.
	Seq uint64
	// Value is the generation payload.
	Value T
}

// Generations is the hot-reload cell: readers Load the current generation
// wait-free (one atomic pointer load on the scan path), while writers run
// the serialized two-phase swap protocol in Swap. Construct with
// NewGenerations.
type Generations[T any] struct {
	cur atomic.Pointer[Generation[T]]
	// swapMu serializes reloads: concurrent Swap calls queue and each
	// validates against the generation current at its turn, so N
	// concurrent reloads all apply, in some order, without losing one.
	swapMu sync.Mutex
	m      *Metrics
}

// NewGenerations publishes the initial generation (Seq 1). m may be nil.
func NewGenerations[T any](initial T, m *Metrics) *Generations[T] {
	g := &Generations[T]{m: m}
	g.cur.Store(&Generation[T]{Seq: 1, Value: initial})
	m.Generation(1)
	return g
}

// Load returns the current generation. The result is immutable; a
// concurrent Swap publishes a new Generation rather than mutating this
// one, so a scan that loaded a generation keeps using it to completion
// (zero-downtime swap).
func (g *Generations[T]) Load() *Generation[T] { return g.cur.Load() }

// Seq returns the current generation's sequence number.
func (g *Generations[T]) Seq() uint64 { return g.cur.Load().Seq }

// Swap runs the two-phase reload protocol, serialized against other
// swaps: build constructs a candidate payload, validate vets it (both run
// outside any lock the read path can observe — scans proceed on the old
// generation throughout), and only when both phases return nil is the
// candidate published. On any error the current generation is untouched
// and the error is returned wrapped in a *ReloadError naming the phase.
//
// build receives the generation being replaced so it can reuse expensive
// artifacts; validate receives the candidate.
func (g *Generations[T]) Swap(
	build func(old *Generation[T]) (T, error),
	validate func(candidate T) error,
) (*Generation[T], error) {
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	old := g.cur.Load()
	next, err := build(old)
	if err != nil {
		g.m.Reload("build_failed")
		return nil, &ReloadError{Phase: "build", Err: err}
	}
	if validate != nil {
		if err := validate(next); err != nil {
			g.m.Reload("validate_failed")
			var re *ReloadError
			if errors.As(err, &re) {
				// The validator already named its phase (e.g.
				// "crosscheck"); keep it.
				return nil, err
			}
			return nil, &ReloadError{Phase: "validate", Err: err}
		}
	}
	gen := &Generation[T]{Seq: old.Seq + 1, Value: next}
	g.cur.Store(gen)
	g.m.Reload("ok")
	g.m.Generation(float64(gen.Seq))
	return gen, nil
}

// Staged is a prepared-but-unpublished candidate generation: the first
// phase of the fleet-wide two-phase publish. Stage runs build+validate and
// records the base generation; Commit publishes the candidate only if the
// generation has not moved since (compare-and-swap on the sequence), and
// Abort discards it. A Staged that is never committed is rollback by
// non-publication: nothing the read path can observe ever changed.
//
// Commit and Abort are each idempotent and mutually exclusive; whichever
// runs first wins.
type Staged[T any] struct {
	g *Generations[T]
	// Base is the sequence of the generation the candidate was validated
	// against.
	Base uint64
	// Value is the prepared candidate payload.
	Value T

	mu   sync.Mutex
	done bool
}

// Stage runs the prepare phase of a two-phase publish: build and validate
// exactly as Swap does (serialized against Swaps and other Stages), but
// stop short of publication, returning the staged candidate for a later
// Commit or Abort. Errors are *ReloadError values as in Swap.
func (g *Generations[T]) Stage(
	build func(old *Generation[T]) (T, error),
	validate func(candidate T) error,
) (*Staged[T], error) {
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	old := g.cur.Load()
	next, err := build(old)
	if err != nil {
		g.m.Reload("build_failed")
		return nil, &ReloadError{Phase: "build", Err: err}
	}
	if validate != nil {
		if err := validate(next); err != nil {
			g.m.Reload("validate_failed")
			var re *ReloadError
			if errors.As(err, &re) {
				return nil, err
			}
			return nil, &ReloadError{Phase: "validate", Err: err}
		}
	}
	return &Staged[T]{g: g, Base: old.Seq, Value: next}, nil
}

// Commit publishes the staged candidate, failing with ErrStaleGeneration
// (wrapped in a *ReloadError with Phase "commit") when another publish
// landed since Stage — the candidate was validated against a generation
// that no longer serves, so letting it through could silently undo the
// interleaved reload. Idempotent: a second Commit (or a Commit after
// Abort) returns a stale error without side effects.
func (s *Staged[T]) Commit() (*Generation[T], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, &ReloadError{Phase: "commit", Err: ErrStaleGeneration}
	}
	s.g.swapMu.Lock()
	defer s.g.swapMu.Unlock()
	old := s.g.cur.Load()
	if old.Seq != s.Base {
		s.done = true
		s.g.m.Reload("stale")
		return nil, &ReloadError{Phase: "commit", Err: ErrStaleGeneration}
	}
	gen := &Generation[T]{Seq: old.Seq + 1, Value: s.Value}
	s.g.cur.Store(gen)
	s.done = true
	s.g.m.Reload("ok")
	s.g.m.Generation(float64(gen.Seq))
	return gen, nil
}

// Abort discards the staged candidate. Idempotent; a no-op after Commit.
func (s *Staged[T]) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	s.g.m.Reload("aborted")
}
