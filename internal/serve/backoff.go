package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// Backoff is a jittered exponential backoff schedule, shared by every
// retry loop in the serving stack: the cluster client's inter-node request
// retries, the breaker's escalating half-open re-entry cooldown, and any
// future probe loop. It is deliberately deterministic given a Seed so the
// resilience tests can pin exact schedules, while distinct unseeded
// instances still decorrelate (thundering-herd protection) because the
// jitter stream is keyed per draw.
//
// The zero value is usable: 50 ms base, 30 s cap, factor 2, 20% jitter.
type Backoff struct {
	// Base is the attempt-0 delay; values <= 0 select 50 ms.
	Base time.Duration
	// Max caps the grown delay (before jitter); values <= 0 select 30 s.
	Max time.Duration
	// Factor is the per-attempt growth multiplier; values < 1 select 2.
	Factor float64
	// Jitter is the fraction of the delay that is randomized, in [0, 1]:
	// a delay d becomes uniform in [d·(1-Jitter/2), d·(1+Jitter/2)], so
	// the expected delay is unchanged. 0 selects 0.2; negative disables
	// jitter entirely (exact schedules, for tests).
	Jitter float64
	// Seed keys the deterministic jitter stream; 0 selects a fixed
	// default. Backoff is a plain value (config travels by copy); the draw
	// counter that decorrelates successive jitter draws is package-level,
	// so copies share the stream rather than replaying it.
	Seed uint64
}

// backoffDraws decorrelates jitter draws across all Backoff values in the
// process; the per-value Seed still keys the stream, so a seeded schedule
// is reproducible draw-for-draw within one test that controls its draws.
var backoffDraws atomic.Uint64

func (b *Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 50 * time.Millisecond
	}
	return b.Base
}

func (b *Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 30 * time.Second
	}
	return b.Max
}

func (b *Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

func (b *Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.2
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// Delay returns the delay before retry `attempt` (0-based): base·factor^attempt,
// capped at Max, then jittered. Negative attempts are treated as 0.
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.base())
	f, cap := b.factor(), float64(b.max())
	for i := 0; i < attempt && d < cap; i++ {
		d *= f
	}
	if d > cap {
		d = cap
	}
	if j := b.jitter(); j > 0 {
		// u in [0,1) from a splitmix64 draw keyed by seed and draw index:
		// deterministic under a fixed Seed, decorrelated across draws.
		seed := b.Seed
		if seed == 0 {
			seed = 0x9e3779b97f4a7c15
		}
		u := float64(splitmix64(seed^backoffDraws.Add(1))>>11) / float64(1<<53)
		d *= 1 - j/2 + j*u
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Wait sleeps for Delay(attempt) or until ctx is done, returning ctx.Err()
// in the latter case — the context-aware form every retry loop should use
// instead of time.Sleep.
func (b *Backoff) Wait(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the repository's standard finalizer (internal/faults,
// internal/tracing use the same constants).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
