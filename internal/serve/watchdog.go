package serve

import (
	"context"
	"errors"
	"time"
)

// Watchdog bounds one unit of work with a wall-clock deadline layered on
// the caller's context and classifies how it ended. fn must be
// cooperative: it receives the derived context and is expected to honor
// cancellation (the engine's *Context scan paths check every chunk). A
// panic inside fn is converted to a *PanicError.
//
// The outcome distinguishes the three ways a bounded scan stops:
//
//   - OutcomeOK: fn returned nil;
//   - OutcomeTimeout: the watchdog deadline expired (the caller's own
//     context was still live) — the per-scan budget was the binding
//     constraint, and the returned error wraps
//     context.DeadlineExceeded;
//   - OutcomeCanceled: the caller's context ended first;
//   - OutcomePanic: fn panicked; the error is the *PanicError.
//   - OutcomeError: fn returned its own error.
type Outcome int

// Watchdog outcomes.
const (
	OutcomeOK Outcome = iota
	OutcomeError
	OutcomeTimeout
	OutcomeCanceled
	OutcomePanic
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeError:
		return "error"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeCanceled:
		return "canceled"
	case OutcomePanic:
		return "panic"
	}
	return "unknown"
}

// Watchdog runs fn under a deadline of d (no added deadline when d <= 0),
// classifying the result. m may be nil; panics and timeouts are counted on
// it.
func Watchdog(ctx context.Context, d time.Duration, op string, m *Metrics, fn func(ctx context.Context) error) (Outcome, error) {
	wctx := ctx
	var cancel context.CancelFunc
	if d > 0 {
		wctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var ferr error
	perr := Guard(op, func() { ferr = fn(wctx) })
	if perr != nil {
		m.Panic()
		return OutcomePanic, perr
	}
	if ferr == nil {
		return OutcomeOK, nil
	}
	switch {
	case ctx.Err() != nil:
		// The caller's own context ended; even if the watchdog context
		// also expired, the caller caused (or raced) the stop.
		return OutcomeCanceled, ferr
	case errors.Is(ferr, context.DeadlineExceeded) && wctx.Err() != nil:
		m.WatchdogTimeout()
		return OutcomeTimeout, ferr
	default:
		return OutcomeError, ferr
	}
}
