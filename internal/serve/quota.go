package serve

import (
	"sync"
	"time"
)

// QuotaConfig is one tenant's token-bucket allowance on the admission
// gate: a sustained admission rate plus a burst depth. The zero value is
// unlimited (no bucket is kept).
type QuotaConfig struct {
	// RatePerSec is the sustained admissions per second; values <= 0 mean
	// unlimited.
	RatePerSec float64
	// Burst is the bucket depth — how many admissions a tenant may take
	// instantaneously after an idle period. Values < 1 select
	// max(RatePerSec, 1).
	Burst float64
}

func (c QuotaConfig) fill() QuotaConfig {
	if c.RatePerSec > 0 && c.Burst < 1 {
		c.Burst = c.RatePerSec
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// Quotas is the per-tenant token-bucket layer of the admission gate: every
// request names a tenant (the anonymous tenant is just another key) and
// must take a token from that tenant's bucket before it may contend for an
// admission slot, so one tenant's burst cannot starve the shared
// concurrency gate. Buckets refill continuously at RatePerSec up to Burst.
//
// A nil *Quotas admits everything — the single-tenant configuration pays
// one nil check. Construct with NewQuotas; all methods are safe for
// concurrent use.
type Quotas struct {
	def      QuotaConfig
	perT     map[string]QuotaConfig
	now      func() time.Time
	mu       sync.Mutex
	state    map[string]*bucket
	maxIdle  int // bound on tracked buckets (defense against tenant-id floods)
	evictSeq uint64
}

type bucket struct {
	tokens float64
	last   time.Time
	touch  uint64
}

// maxTrackedTenants bounds the bucket map: beyond it, the least recently
// used bucket is dropped (a dropped tenant restarts with a full bucket —
// quota is a fairness device, not an accounting ledger).
const maxTrackedTenants = 4096

// NewQuotas builds the quota layer. def applies to tenants without an
// explicit entry; perTenant overrides per tenant id. When def is unlimited
// and perTenant is empty, NewQuotas returns nil (the disabled layer).
func NewQuotas(def QuotaConfig, perTenant map[string]QuotaConfig) *Quotas {
	if def.RatePerSec <= 0 && len(perTenant) == 0 {
		return nil
	}
	q := &Quotas{
		def:     def.fill(),
		perT:    make(map[string]QuotaConfig, len(perTenant)),
		now:     time.Now,
		state:   map[string]*bucket{},
		maxIdle: maxTrackedTenants,
	}
	for t, c := range perTenant {
		q.perT[t] = c.fill()
	}
	return q
}

// config resolves the tenant's quota.
func (q *Quotas) config(tenant string) QuotaConfig {
	if c, ok := q.perT[tenant]; ok {
		return c
	}
	return q.def
}

// Allow takes one token from tenant's bucket, reporting whether the tenant
// is within quota. Unlimited tenants always pass and keep no bucket.
func (q *Quotas) Allow(tenant string) bool {
	if q == nil {
		return true
	}
	cfg := q.config(tenant)
	if cfg.RatePerSec <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.state[tenant]
	if b == nil {
		b = &bucket{tokens: cfg.Burst, last: now}
		if len(q.state) >= q.maxIdle {
			q.evictLocked()
		}
		q.state[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * cfg.RatePerSec
		if b.tokens > cfg.Burst {
			b.tokens = cfg.Burst
		}
		b.last = now
	}
	q.evictSeq++
	b.touch = q.evictSeq
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the tenant's current token balance (refilled to now) and
// whether the tenant is metered at all — observability for tests and the
// healthz surface.
func (q *Quotas) Tokens(tenant string) (float64, bool) {
	if q == nil {
		return 0, false
	}
	cfg := q.config(tenant)
	if cfg.RatePerSec <= 0 {
		return 0, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.state[tenant]
	if b == nil {
		return cfg.Burst, true
	}
	tokens := b.tokens + q.now().Sub(b.last).Seconds()*cfg.RatePerSec
	if tokens > cfg.Burst {
		tokens = cfg.Burst
	}
	return tokens, true
}

// Saturation reports, per metered tenant, the consumed fraction of its
// burst budget at this instant: 0 is a full bucket, 1 is exhausted. It
// covers every explicitly configured tenant plus any tenant with live
// bucket state under the default quota — the fleet health plane's view of
// who is pressing against admission.
func (q *Quotas) Saturation() map[string]float64 {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	out := map[string]float64{}
	add := func(tenant string) {
		cfg := q.config(tenant)
		if cfg.RatePerSec <= 0 || cfg.Burst <= 0 {
			return
		}
		tokens := cfg.Burst
		if b := q.state[tenant]; b != nil {
			tokens = b.tokens + now.Sub(b.last).Seconds()*cfg.RatePerSec
			if tokens > cfg.Burst {
				tokens = cfg.Burst
			}
		}
		sat := 1 - tokens/cfg.Burst
		if sat < 0 {
			sat = 0
		}
		out[tenant] = sat
	}
	for t := range q.perT {
		add(t)
	}
	for t := range q.state {
		if _, ok := out[t]; !ok {
			add(t)
		}
	}
	return out
}

// evictLocked drops the least recently touched bucket. Callers hold q.mu.
func (q *Quotas) evictLocked() {
	var victim string
	var oldest uint64
	first := true
	for t, b := range q.state {
		if first || b.touch < oldest {
			victim, oldest, first = t, b.touch, false
		}
	}
	if !first {
		delete(q.state, victim)
	}
}

// SetClock replaces the quota clock; tests use it to step refills
// deterministically.
func (q *Quotas) SetClock(now func() time.Time) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = now
}
