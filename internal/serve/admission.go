package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds the service's concurrent and queued work. The
// zero value selects 1 concurrent slot and no wait queue (pure load
// shedding).
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests executing at once; values
	// < 1 select 1.
	MaxConcurrent int
	// MaxQueue is the number of requests allowed to wait for a slot;
	// values < 0 select 0 (a full gate sheds immediately).
	MaxQueue int
}

func (c *AdmissionConfig) fill() {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 1
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
}

// Admission is a bounded concurrency gate with a bounded wait queue and
// deadline-aware load shedding. Construct with NewAdmission; the zero
// value is not usable.
//
// The shedding policy, in order:
//
//  1. a draining gate rejects immediately with ErrDraining;
//  2. a request finding a free execution slot is admitted immediately;
//  3. otherwise it queues, unless the queue is full — then it is shed
//     immediately with ErrOverloaded ("queue_full");
//  4. a queued request whose context expires before a slot frees is shed
//     with ErrOverloaded ("deadline") wrapping the context error, so
//     callers can still distinguish cancellation from timeout with
//     errors.Is.
type Admission struct {
	slots chan struct{}
	cfg   AdmissionConfig

	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	// wg tracks admitted requests for Drain.
	wg sync.WaitGroup

	m *Metrics
}

// NewAdmission builds an admission gate. m may be nil.
func NewAdmission(cfg AdmissionConfig, m *Metrics) *Admission {
	cfg.fill()
	return &Admission{
		slots: make(chan struct{}, cfg.MaxConcurrent),
		cfg:   cfg,
		m:     m,
	}
}

// Acquire admits one request, returning a release function the caller must
// invoke exactly once when the request finishes (defer it). A nil release
// accompanies every error. The admission wait (zero for the fast path) is
// recorded on the metrics' admission-latency histogram.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a.draining.Load() {
		a.m.Shed("draining")
		return nil, ErrDraining
	}
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		a.m.AdmissionWait(0)
		return a.admit(), nil
	default:
	}
	// Slow path: queue, bounded.
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		a.m.Shed("queue_full")
		return nil, ErrOverloaded
	}
	a.m.QueueDepth(a.queued.Load())
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		a.m.QueueDepth(a.queued.Load())
	}()
	select {
	case a.slots <- struct{}{}:
		if a.draining.Load() {
			// Drain began while we were queued: give the slot back.
			<-a.slots
			a.m.Shed("draining")
			return nil, ErrDraining
		}
		a.m.AdmissionWait(time.Since(start))
		return a.admit(), nil
	case <-ctx.Done():
		a.m.Shed("deadline")
		return nil, &overloadedError{cause: ctx.Err()}
	}
}

// admit registers one in-flight request and returns its release function.
func (a *Admission) admit() func() {
	a.wg.Add(1)
	a.m.Inflight(a.inflight.Add(1))
	var once sync.Once
	return func() {
		once.Do(func() {
			a.m.Inflight(a.inflight.Add(-1))
			<-a.slots
			a.wg.Done()
		})
	}
}

// Queued returns the current wait-queue depth.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Inflight returns the number of admitted, unreleased requests.
func (a *Admission) Inflight() int64 { return a.inflight.Load() }

// Drain flips the gate into draining mode (new Acquires fail with
// ErrDraining, queued waiters are turned away as slots free) and waits for
// the in-flight requests to release, or for ctx to expire — whichever
// comes first. It returns ctx.Err() when the bound was hit with work still
// in flight. Drain is idempotent.
func (a *Admission) Drain(ctx context.Context) error {
	a.draining.Store(true)
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (a *Admission) Draining() bool { return a.draining.Load() }

// overloadedError is a deadline shed: it unwraps to both ErrOverloaded and
// the context error, so errors.Is(err, ErrOverloaded) and
// errors.Is(err, context.DeadlineExceeded) both hold.
type overloadedError struct{ cause error }

func (e *overloadedError) Error() string {
	return ErrOverloaded.Error() + ": " + e.cause.Error()
}

func (e *overloadedError) Unwrap() []error { return []error{ErrOverloaded, e.cause} }
