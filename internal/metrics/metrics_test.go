package metrics

import (
	"math"
	"strings"
	"testing"

	"bvap/internal/archmodel"
	"bvap/internal/hwsim"
)

func sampleStats() *hwsim.Stats {
	s := &hwsim.Stats{
		Arch:               archmodel.BVAP,
		Symbols:            10000,
		Cycles:             11000,
		Matches:            42,
		MatchEnergyPJ:      5000,
		TransitionEnergyPJ: 3000,
		BVMEnergyPJ:        2000,
		WireEnergyPJ:       500,
		LeakageEnergyPJ:    100,
		Tiles:              2,
		AreaUm2:            2 * 20000,
	}
	return s
}

func TestFromStats(t *testing.T) {
	p := FromStats("BVAP", sampleStats())
	if p.Label != "BVAP" || p.Matches != 42 {
		t.Fatalf("point = %+v", p)
	}
	// 10600 pJ over 10000 symbols = 1.06 pJ/sym = 0.00106 nJ/B.
	if math.Abs(p.EnergyPerSymbolNJ-0.00106) > 1e-9 {
		t.Fatalf("energy = %g", p.EnergyPerSymbolNJ)
	}
	if math.Abs(p.AreaMm2-0.04) > 1e-12 {
		t.Fatalf("area = %g", p.AreaMm2)
	}
	// Throughput: 2 GHz × (10000/11000) × 8 bits.
	wantThpt := 2.0 * 10000 / 11000 * 8
	if math.Abs(p.ThroughputGbps-wantThpt) > 1e-9 {
		t.Fatalf("throughput = %g, want %g", p.ThroughputGbps, wantThpt)
	}
	if math.Abs(p.ComputeDensity-wantThpt/0.04) > 1e-6 {
		t.Fatalf("density = %g", p.ComputeDensity)
	}
	if p.FoM <= 0 || p.EDP <= 0 || p.PowerW <= 0 {
		t.Fatalf("derived metrics nonpositive: %+v", p)
	}
}

func TestFoMDefinition(t *testing.T) {
	// FoM = total energy (mJ) × area (mm²) / throughput (Gbps).
	s := sampleStats()
	p := FromStats("x", s)
	want := s.TotalEnergyPJ() * 1e-9 * p.AreaMm2 / p.ThroughputGbps
	if math.Abs(p.FoM-want) > 1e-15 {
		t.Fatalf("FoM = %g, want %g", p.FoM, want)
	}
}

func TestNormalized(t *testing.T) {
	a := FromStats("a", sampleStats())
	n := a.Normalized(a)
	for name, v := range map[string]float64{
		"energy": n.EnergyPerSymbolNJ, "area": n.AreaMm2, "thpt": n.ThroughputGbps,
		"density": n.ComputeDensity, "edp": n.EDP, "fom": n.FoM, "power": n.PowerW,
	} {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("self-normalized %s = %g, want 1", name, v)
		}
	}
	// Division by a zero-base metric yields 0, not Inf.
	z := a.Normalized(Point{})
	if !(z.EnergyPerSymbolNJ == 0 && z.FoM == 0) {
		t.Fatalf("zero base: %+v", z)
	}
}

func TestGeoMean(t *testing.T) {
	ps := []Point{{FoM: 1}, {FoM: 4}, {FoM: 16}}
	got := GeoMean(ps, func(p Point) float64 { return p.FoM })
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %g, want 4", got)
	}
	// Zero entries are skipped, empty input yields 0.
	if GeoMean(nil, func(p Point) float64 { return 1 }) != 0 {
		t.Fatal("empty geomean")
	}
	mixed := []Point{{FoM: 0}, {FoM: 9}}
	if got := GeoMean(mixed, func(p Point) float64 { return p.FoM }); got != 9 {
		t.Fatalf("geomean with zero = %g", got)
	}
}

func TestTableSorted(t *testing.T) {
	out := Table([]Point{{Label: "zzz"}, {Label: "aaa"}})
	if strings.Index(out, "aaa") > strings.Index(out, "zzz") {
		t.Fatal("table not sorted by label")
	}
}

func TestZeroStatsSafe(t *testing.T) {
	p := FromStats("empty", &hwsim.Stats{Arch: archmodel.CA})
	if p.EnergyPerSymbolNJ != 0 || p.ThroughputGbps != 0 || p.FoM != 0 {
		t.Fatalf("zero stats produced nonzero metrics: %+v", p)
	}
}

// TestDegenerateStatsTable audits every derived metric — including EDP and
// FoM — over the degenerate runs an empty workload can produce: all must be
// exactly 0, never NaN or ±Inf.
func TestDegenerateStatsTable(t *testing.T) {
	cases := []struct {
		name string
		st   hwsim.Stats
	}{
		{"zero value", hwsim.Stats{}},
		{"no cycles", hwsim.Stats{Arch: archmodel.BVAP, Symbols: 512}},
		{"no symbols", hwsim.Stats{Arch: archmodel.CAMA, Cycles: 512}},
		{"no area", hwsim.Stats{Arch: archmodel.EAP, Symbols: 512, Cycles: 512}},
		{"energy only", hwsim.Stats{Arch: archmodel.CNT, MatchEnergyPJ: 100}},
	}
	for _, tc := range cases {
		p := FromStats(tc.name, &tc.st)
		fields := map[string]float64{
			"EnergyPerSymbolNJ": p.EnergyPerSymbolNJ,
			"AreaMm2":           p.AreaMm2,
			"ThroughputGbps":    p.ThroughputGbps,
			"PowerW":            p.PowerW,
			"ComputeDensity":    p.ComputeDensity,
			"EDP":               p.EDP,
			"FoM":               p.FoM,
		}
		for name, v := range fields {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", tc.name, name, v)
			}
		}
		// Derived ratios with zero denominators return 0 consistently.
		if tc.st.Cycles == 0 && (p.ThroughputGbps != 0 || p.EDP != 0 || p.FoM != 0) {
			t.Errorf("%s: throughput-derived metrics nonzero without cycles: %+v", tc.name, p)
		}
		// Normalizing against the degenerate point must also stay finite.
		n := FromStats("ok", sampleStats()).Normalized(p)
		for name, v := range map[string]float64{"EDP": n.EDP, "FoM": n.FoM, "energy": n.EnergyPerSymbolNJ} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: normalized %s = %v", tc.name, name, v)
			}
		}
	}
}
