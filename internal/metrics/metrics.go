// Package metrics derives the evaluation metrics of §8 from raw simulation
// statistics: energy per symbol, compute density, power, energy-delay
// product, and the paper's figure of merit FoM = energy × area / throughput.
// It also provides the normalization helpers the figures use (Fig. 11/12
// normalize to CAMA, Fig. 13 to CAMA, Fig. 14 to CA).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"bvap/internal/hwsim"
)

// Point is the full metric set for one (architecture, workload) pair.
type Point struct {
	Label string
	// EnergyPerSymbolNJ is nJ/byte, as reported in Fig. 14.
	EnergyPerSymbolNJ float64
	// AreaMm2 is the silicon area.
	AreaMm2 float64
	// ThroughputGbps is the sustained input rate.
	ThroughputGbps float64
	// PowerW is average power.
	PowerW float64
	// ComputeDensity is throughput per area (Gbps/mm²).
	ComputeDensity float64
	// EDP is the energy-delay product per symbol (pJ·ns).
	EDP float64
	// FoM is total energy × area / throughput (mJ·mm²/Gbps); lower is
	// better.
	FoM float64
	// Matches is carried through for sanity checking.
	Matches uint64
}

// FromStats derives a Point from finished simulation statistics.
func FromStats(label string, s *hwsim.Stats) Point {
	p := Point{Label: label, Matches: s.Matches}
	p.EnergyPerSymbolNJ = s.EnergyPerSymbolPJ() / 1000
	p.AreaMm2 = s.AreaMm2()
	p.ThroughputGbps = s.ThroughputGbps()
	p.PowerW = s.PowerW()
	if p.AreaMm2 > 0 {
		p.ComputeDensity = p.ThroughputGbps / p.AreaMm2
	}
	// Delay per symbol in ns.
	if s.Symbols > 0 && p.ThroughputGbps > 0 {
		delayNs := 8 / p.ThroughputGbps
		p.EDP = s.EnergyPerSymbolPJ() * delayNs
	}
	if p.ThroughputGbps > 0 {
		totalEnergyMJ := s.TotalEnergyPJ() * 1e-9 // pJ → mJ
		p.FoM = totalEnergyMJ * p.AreaMm2 / p.ThroughputGbps
	}
	return p
}

// Normalized returns p with every metric divided by the corresponding
// metric of base (the figures' "normalized to CAMA/CA" presentation).
func (p Point) Normalized(base Point) Point {
	out := p
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	out.EnergyPerSymbolNJ = div(p.EnergyPerSymbolNJ, base.EnergyPerSymbolNJ)
	out.AreaMm2 = div(p.AreaMm2, base.AreaMm2)
	out.ThroughputGbps = div(p.ThroughputGbps, base.ThroughputGbps)
	out.PowerW = div(p.PowerW, base.PowerW)
	out.ComputeDensity = div(p.ComputeDensity, base.ComputeDensity)
	out.EDP = div(p.EDP, base.EDP)
	out.FoM = div(p.FoM, base.FoM)
	return out
}

func (p Point) String() string {
	return fmt.Sprintf("%-8s energy=%.4f nJ/B  area=%.3f mm²  thpt=%.2f Gbps  density=%.2f Gbps/mm²  power=%.3f W  EDP=%.3f  FoM=%.5f",
		p.Label, p.EnergyPerSymbolNJ, p.AreaMm2, p.ThroughputGbps, p.ComputeDensity, p.PowerW, p.EDP, p.FoM)
}

// GeoMean returns the geometric mean of the selected metric over points —
// how the paper averages "across all benchmarks".
func GeoMean(points []Point, metric func(Point) float64) float64 {
	if len(points) == 0 {
		return 0
	}
	prod := 1.0
	n := 0
	for _, p := range points {
		v := metric(p)
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Table renders points as an aligned text table, sorted by label for
// stable output.
func Table(points []Point) string {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	out := ""
	for _, p := range sorted {
		out += p.String() + "\n"
	}
	return out
}
