package hwsim

import (
	"fmt"

	"bvap/internal/archmodel"
	"bvap/internal/faults"
	"bvap/internal/hwconf"
	"bvap/internal/nbva"
)

// BVAPSystem simulates a BVAP bank executing a compiled configuration.
// Construct one with NewBVAPSystem, feed it input with Run or Step, and read
// the accumulated Stats.
type BVAPSystem struct {
	stats    Stats
	machines []*bvapMachine
	// tiles mirrors the config placement; activity is attributed to
	// tiles in proportion to the STEs each tile hosts of a machine.
	tiles []bvapTile
	// arrayStall[i] accumulates stall cycles of array i this step.
	arrayStall []int
	arrays     int
	streaming  bool
	// maxWordsAll is the largest virtual word count across machines; in
	// streaming mode (BVAP-S) the system clock is set by this.
	maxWordsAll int
	// matchEnds, when enabled, records match end positions per machine.
	recordEnds bool
	ends       [][]int
	pos        int
	io         *ioModel
	ioPending  []bool
	ioReports  []int
	tileActive []float64 // per-step scratch
	// tileScale scales each tile's per-symbol SM/ST cost; 1 for whole
	// tiles, the occupancy fraction under custom sizing.
	tileScale []float64
	variant   Variant
	// sink, when non-nil, receives per-stage energy, stall and occupancy
	// events; the nil path adds no allocations to Step. xsink caches the
	// optional ProvenanceSink extension (resolved once in SetSink) so the
	// hot path never repeats the type assertion; activeScratch is the
	// reusable buffer MachineActivity id lists are built in.
	sink          Sink
	xsink         ProvenanceSink
	activeScratch []int
	// ioReportedPJ / leakReportedPJ track what the sink has already been
	// told, so repeated Finish calls emit deltas only.
	ioReportedPJ   float64
	leakReportedPJ float64

	// faults, when non-nil, injects hardware faults into Step; the nil
	// path pays a single nil check (mirroring sink). parityOn charges the
	// per-BV parity energy surcharge; parityCharged/parityAreaUm2 track
	// the area surcharge so SetFaults can be called repeatedly.
	faults        *faults.Injector
	parityOn      bool
	parityCharged bool
	parityAreaUm2 float64
	faultScratch  []int
}

// Variant selects design-ablation knobs on the BVAP simulator, modeling the
// alternatives the paper argues against (§3 naïve PE array, §5 routing
// strategies, §6 event-driven clocking, §5 virtual BV sizing).
type Variant struct {
	// Routing selects the Swap-step routing implementation.
	Routing archmodel.Routing
	// EventDriven gates the BVM on BV-STE activity (the adopted design);
	// when false the BVM phase runs on every symbol at full clock.
	EventDriven bool
	// VirtualSizing uses per-instruction virtual word counts; when false
	// every BV processes all 8 physical words.
	VirtualSizing bool
	// NaivePE replaces the BVM with the §3 per-transition PE array:
	// every enabled transition transforms a full vector before
	// aggregation, and the array area grows quadratically with the BVs
	// per tile.
	NaivePE bool
}

// DefaultVariant is the paper's BVAP design point.
func DefaultVariant() Variant {
	return Variant{Routing: archmodel.RoutingSemiParallel, EventDriven: true, VirtualSizing: true}
}

// SetVariant reconfigures the simulator's design point. Call before Run;
// it adjusts the area accounting for the variant's BVM implementation.
func (s *BVAPSystem) SetVariant(v Variant) {
	s.variant = v
	delta := v.Routing.MFCBAreaUm2() - archmodel.RoutingSemiParallel.MFCBAreaUm2()
	if v.NaivePE {
		delta += archmodel.NaivePEAreaUm2() - archmodel.BVMAreaUm2
	}
	s.stats.SetAreaUm2(s.stats.AreaUm2 + delta*1.05*float64(len(s.tiles)))
}

type bvapMachine struct {
	index    int
	ah       *nbva.AHNBVA
	runner   *nbva.AHRunner
	words    int
	tiles    []int     // tiles hosting parts of this machine
	share    []float64 // fraction of the machine's STEs on each tile
	bvStates int
	// prevBVActive tracks the previous cycle's active BV count so BV
	// resets are charged once per deactivation.
	prevBVActive int
}

type bvapTile struct {
	stes   int
	bvstes int
	array  int
	fcb    bool // tile pair in FCB mode (§6): 2× silicon, full crossbar
}

// NewBVAPSystem builds a simulator from a configuration. streaming selects
// the BVAP-S mode (§6): the BVM runs every symbol at a constant, lower
// system clock, and the SM/ST circuits run at reduced supply voltage.
func NewBVAPSystem(cfg *hwconf.Config, streaming bool) (*BVAPSystem, error) {
	arch := archmodel.BVAP
	if streaming {
		arch = archmodel.BVAPS
	}
	sys := &BVAPSystem{streaming: streaming}
	sys.stats.Arch = arch

	machineTiles := map[int][]int{}
	tileUnits := 0.0
	for _, tp := range cfg.Tiles {
		sys.tiles = append(sys.tiles, bvapTile{
			stes:   tp.STEs,
			bvstes: tp.BVSTEs,
			array:  tp.Tile / archmodel.TilesPerArray,
			fcb:    tp.FCBMode,
		})
		if tp.FCBMode {
			tileUnits += 2 // an FCB placement occupies a physical tile pair
		} else {
			tileUnits++
		}
		for _, m := range tp.Machines {
			machineTiles[m] = append(machineTiles[m], tp.Tile)
		}
	}
	sys.arrays = (len(sys.tiles) + archmodel.TilesPerArray - 1) / archmodel.TilesPerArray
	if sys.arrays == 0 {
		sys.arrays = 1
	}
	sys.arrayStall = make([]int, sys.arrays)

	prov := cfg.ProvenanceIndex()
	for i := range cfg.Machines {
		m := &cfg.Machines[i]
		if m.Unsupported != "" {
			sys.machines = append(sys.machines, nil)
			continue
		}
		ah, err := MachineFromConfig(m)
		if err != nil {
			return nil, err
		}
		bm := &bvapMachine{
			index:    i,
			ah:       ah,
			runner:   nbva.NewAHRunner(ah),
			words:    MaxWords(m),
			tiles:    machineTiles[i],
			bvStates: ah.BVStateCount(),
		}
		if len(bm.tiles) == 0 {
			return nil, fmt.Errorf("hwsim: machine %d (%q) is not placed on any tile", i, m.Regex)
		}
		// Activity splits across a machine's tiles by STE share. With a
		// provenance table the share is the actual STE count per tile;
		// otherwise (older images) it falls back to an equal split.
		perTile := prov.MachineTileSTEs(i)
		covered := 0
		for _, t := range bm.tiles {
			covered += perTile[t]
		}
		for _, t := range bm.tiles {
			if covered > 0 {
				bm.share = append(bm.share, float64(perTile[t])/float64(covered))
			} else {
				bm.share = append(bm.share, 1/float64(len(bm.tiles)))
			}
		}
		sys.machines = append(sys.machines, bm)
	}
	sys.stats.finalizeAreaF(tileUnits)
	sys.ends = make([][]int, len(cfg.Machines))
	sys.tileActive = make([]float64, len(sys.tiles))
	sys.tileScale = make([]float64, len(sys.tiles))
	for i := range sys.tileScale {
		sys.tileScale[i] = 1
	}
	sys.variant = DefaultVariant()
	if !streaming {
		// BVAP-S connects directly to the sensor and needs no input
		// buffering (§6); standard BVAP streams through the bank I/O
		// hierarchy.
		sys.io = newIOModel(sys.arrays)
		sys.ioPending = make([]bool, sys.arrays)
		sys.ioReports = make([]int, sys.arrays)
	}
	return sys, nil
}

// SetCustomSizing sizes the hardware to the STEs and BVs actually used (§8
// micro-benchmarks: "we customize the memory size for a single regex").
// Call before Run.
func (s *BVAPSystem) SetCustomSizing() {
	tilesF := 0.0
	area := 0.0
	for i, t := range s.tiles {
		steFrac := float64(t.stes) / archmodel.STEsPerTile
		bvFrac := float64(t.bvstes) / archmodel.BVsPerTile
		s.tileScale[i] = steFrac
		tilesF += steFrac
		area += archmodel.BVAPCustomTileAreaUm2(steFrac, bvFrac)
	}
	s.stats.finalizeAreaF(tilesF)
	s.stats.SetAreaUm2(area * 1.05)
}

// RecordMatchEnds enables per-machine match-position recording (used by the
// consistency checks; costs memory proportional to the match count).
func (s *BVAPSystem) RecordMatchEnds(on bool) { s.recordEnds = on }

// SetSink attaches a telemetry sink receiving per-stage energy, per-array
// stall and per-step occupancy events. Pass nil to detach; with no sink the
// Step hot path performs a single nil check and allocates nothing. Sinks
// additionally implementing ProvenanceSink (the activity profiler; combine
// several with FanOut) also receive per-machine and per-tile events.
func (s *BVAPSystem) SetSink(k Sink) {
	s.sink = k
	s.xsink, _ = k.(ProvenanceSink)
}

// MatchEnds returns the recorded match end positions of machine i.
func (s *BVAPSystem) MatchEnds(i int) []int { return s.ends[i] }

// Stats returns the accumulated statistics.
func (s *BVAPSystem) Stats() *Stats { return &s.stats }

// Reset clears the machine states and the position counter but keeps the
// accumulated statistics.
func (s *BVAPSystem) Reset() {
	for _, m := range s.machines {
		if m != nil {
			m.runner.Reset()
		}
	}
	s.pos = 0
}

// Run processes a byte stream.
func (s *BVAPSystem) Run(input []byte) {
	for _, b := range input {
		s.Step(b)
	}
}

// Step processes one input symbol: one full SM → bit-vector-processing → ST
// round across all tiles, with per-event energy and stall accounting. When
// a Sink is attached the same per-event energies are additionally streamed
// to it, attributed to pipeline stages; the Stats accumulation order is
// identical with and without a sink, so results do not depend on
// instrumentation. With a fault injector attached (SetFaults), pre-symbol
// fault injection runs first; the nil path pays a single nil check.
func (s *BVAPSystem) Step(b byte) {
	if s.faults != nil && s.faultStep(b) {
		return // symbol consumed by a stream-drop fault
	}
	s.stepCore(b)
}

// stepCore is the fault-free datapath of Step.
func (s *BVAPSystem) stepCore(b byte) {
	st := &s.stats
	st.Symbols++
	for i := range s.arrayStall {
		s.arrayStall[i] = 0
	}

	// Per-stage accumulators for the sink, summed locally and emitted
	// once per step. Every update is guarded on sinkOn so the
	// uninstrumented path pays predictable branches instead of float
	// dependency chains (pinned by BenchmarkTelemetryOverhead).
	sinkOn := s.sink != nil
	xsinkOn := s.xsink != nil
	var snkRead, snkSwap, snkRoute, snkReset, snkIdle float64
	var snkMatch, snkTrans, snkWire float64
	activeTotal := 0.0
	matchesThisStep := 0

	// Per-BV parity (fault detection): every BV storage access also reads
	// or writes its parity bits. Charged only while hardware injection is
	// live — the degraded replay path models the clean software engine.
	parityLive := s.parityOn && !s.faults.Suppressed()
	parityOps := 0

	tileActive := s.tileActive
	for i := range tileActive {
		tileActive[i] = 0
	}
	for _, m := range s.machines {
		if m == nil {
			continue
		}
		matched := m.runner.Step(b)
		if matched {
			st.Matches++
			matchesThisStep++
			if s.recordEnds {
				s.ends[m.index] = append(s.ends[m.index], s.pos)
			}
			if s.io != nil {
				s.ioReports[s.tiles[m.tiles[0]].array]++
			}
		}
		active := float64(m.runner.ActiveStates())
		if sinkOn {
			activeTotal += active
		}
		if xsinkOn {
			s.activeScratch = m.runner.AppendActive(s.activeScratch[:0])
			s.xsink.MachineActivity(m.index, m.runner.ActiveStates(), s.activeScratch)
		}
		for ti, tile := range m.tiles {
			tileActive[tile] += active * m.share[ti]
		}
		// Bit-vector-processing phase: event-driven in BVAP mode,
		// every cycle in BVAP-S mode or with event-driven clocking
		// ablated.
		bvActive := m.runner.ActiveBVStates()
		words := m.words
		if !s.variant.VirtualSizing && m.bvStates > 0 {
			words = archmodel.PhysicalBVWords
		}
		alwaysOn := s.streaming || (!s.variant.EventDriven && m.bvStates > 0)
		if bvActive > 0 || alwaysOn {
			reads := m.runner.ReadOps()
			if parityLive {
				mops := reads + m.runner.SwapOps()
				parityOps += mops
				if xsinkOn {
					s.xsink.MachineStageEnergy(m.index, StageParity,
						float64(mops)*parityOverheadFrac*archmodel.BitVector.EnergyPJ(1))
				}
			}
			bvFrac := 0.0
			if m.bvStates > 0 {
				bvFrac = float64(bvActive) / float64(m.bvStates)
			}
			e := archmodel.BVMReadEnergyPJ(reads)
			st.BVMEnergyPJ += e
			if sinkOn {
				snkRead += e
			}
			if xsinkOn {
				s.xsink.MachineStageEnergy(m.index, StageBVMRead, e)
			}
			if s.variant.NaivePE {
				e = archmodel.NaivePESwapEnergyPJ(m.runner.SwapOps(), words)
				st.BVMEnergyPJ += e
				if sinkOn {
					snkSwap += e
				}
				if xsinkOn {
					s.xsink.MachineStageEnergy(m.index, StageBVMSwap, e)
				}
			} else {
				base := archmodel.BVMSwapEnergyPJ(
					m.runner.ActiveStorageBVs(), m.runner.ActiveSet1BVs(),
					words, bvFrac)
				e = base * s.variant.Routing.MFCBEnergyScale()
				st.BVMEnergyPJ += e
				// Attribute the crossbar overhead beyond the
				// semi-parallel baseline to the routing stage.
				if sinkOn {
					if e > base {
						snkSwap += base
						snkRoute += e - base
					} else {
						snkSwap += e
					}
				}
				if xsinkOn {
					if e > base {
						s.xsink.MachineStageEnergy(m.index, StageBVMSwap, base)
						s.xsink.MachineStageEnergy(m.index, StageRouting, e-base)
					} else {
						s.xsink.MachineStageEnergy(m.index, StageBVMSwap, e)
					}
				}
			}
			e = archmodel.BVMResetEnergyPJ(m.prevBVActive - bvActive)
			st.BVMEnergyPJ += e
			if sinkOn {
				snkReset += e
			}
			if xsinkOn {
				s.xsink.MachineStageEnergy(m.index, StageBVMReset, e)
			}
			if (bvActive > 0 || alwaysOn) && !s.streaming {
				// The Global Controller stalls the machine's
				// array for the BVM phase (§6).
				stall := s.variant.Routing.StallCycles(words)
				for _, tile := range m.tiles {
					a := s.tiles[tile].array
					if stall > s.arrayStall[a] {
						s.arrayStall[a] = stall
					}
				}
			}
		}
		m.prevBVActive = bvActive
	}

	// Per-tile SM/ST/wire energy: every placed tile sees every symbol.
	// In always-on modes (BVAP-S, or event-driven clocking ablated) each
	// tile's BVM additionally clocks an idle phase when none of its
	// BV-STEs activated.
	alwaysOnBVM := s.streaming || !s.variant.EventDriven
	arch := st.Arch
	for ti := range s.tiles {
		scale := s.tileScale[ti]
		if xsinkOn {
			s.xsink.TileActivity(ti, tileActive[ti])
		}
		if alwaysOnBVM && s.tiles[ti].bvstes > 0 {
			e := archmodel.BVMIdlePhasePJ(archmodel.PhysicalBVWords) * scale
			st.BVMEnergyPJ += e
			if sinkOn {
				snkIdle += e
			}
		}
		capacity := float64(archmodel.STEsPerTile)
		if s.tiles[ti].fcb {
			capacity = float64(archmodel.FCBModeSTEs)
		}
		frac := 0.0
		if s.tiles[ti].stes > 0 {
			frac = tileActive[ti] / (capacity * scale)
		}
		e := arch.MatchEnergyPJ(frac) * scale
		st.MatchEnergyPJ += e
		if sinkOn {
			snkMatch += e
		}
		if s.tiles[ti].fcb {
			e = archmodel.FCBTransitionEnergyPJ(frac) * scale
		} else {
			e = arch.TransitionEnergyPJ(frac) * scale
		}
		st.TransitionEnergyPJ += e
		e2 := arch.WireEnergyPJ() * scale
		st.WireEnergyPJ += e2
		if sinkOn {
			snkTrans += e
			snkWire += e2
		}
	}

	// Parity surcharge: one parity bit per 8-bit BV word means every BV
	// storage access also accesses 12.5% extra SRAM (Table-4-style per-op
	// energy). Charged only when parity protection is enabled.
	if parityLive && parityOps > 0 {
		e := float64(parityOps) * parityOverheadFrac * archmodel.BitVector.EnergyPJ(1)
		st.ParityEnergyPJ += e
		if sinkOn {
			s.sink.StageEnergy(StageParity, e)
		}
	}

	// Timing: in BVAP mode the slowest array sets the symbol's cycle
	// cost (all arrays broadcast the same stream); BVAP-S has a constant
	// longer cycle already reflected in its lower symbol clock.
	maxStall := 0
	if !s.streaming {
		for _, stall := range s.arrayStall {
			if stall > maxStall {
				maxStall = stall
			}
		}
	}
	var ioIn0, ioOut0 uint64
	if xsinkOn && s.io != nil {
		ioIn0, ioOut0 = s.io.inputStalls, s.io.outputStalls
	}
	ioExtra := 0
	if s.io != nil {
		// BVM stall cycles let the FIFOs refill before the symbol is
		// consumed (§6's latency hiding).
		if maxStall > 0 {
			s.io.idle(maxStall, s.ioPending)
		}
		for a := range s.ioPending {
			s.ioPending[a] = true
		}
		for s.io.tick(s.ioPending, s.ioReports) > 0 {
			ioExtra++
			if ioExtra > 256 {
				break // pathological congestion; avoid livelock
			}
		}
		for a := range s.ioReports {
			s.ioReports[a] = 0
		}
	}
	st.Cycles += uint64(1 + maxStall + ioExtra)
	st.StallCycles += uint64(maxStall + ioExtra)
	if s.sink != nil {
		s.sink.StageEnergy(StageMatch, snkMatch)
		s.sink.StageEnergy(StageTransition, snkTrans)
		s.sink.StageEnergy(StageBVMRead, snkRead)
		s.sink.StageEnergy(StageBVMSwap, snkSwap)
		s.sink.StageEnergy(StageBVMReset, snkReset)
		s.sink.StageEnergy(StageBVMIdle, snkIdle)
		s.sink.StageEnergy(StageRouting, snkRoute)
		s.sink.StageEnergy(StageWire, snkWire)
		for a, stall := range s.arrayStall {
			s.sink.StallCycles(a, stall+ioExtra)
		}
		if xsinkOn {
			s.xsink.Stall(StallBVM, maxStall)
			ioIn, ioOut := 0, 0
			if s.io != nil {
				ioIn = int(s.io.inputStalls - ioIn0)
				ioOut = int(s.io.outputStalls - ioOut0)
			}
			s.xsink.Stall(StallIOInput, ioIn)
			s.xsink.Stall(StallIOOutput, ioOut)
		}
		s.sink.StepDone(1+maxStall+ioExtra, activeTotal, matchesThisStep)
	}
	s.pos++
}

// Finish closes the run: I/O observables are folded in and leakage is
// charged over the final cycle count. Call it once after the last Step/Run.
// The terminal stages (io_buffer, leakage) are reported to the sink here;
// repeated Finish calls emit deltas only, so the sink's stage totals stay
// consistent with Stats.
func (s *BVAPSystem) Finish() *Stats {
	if s.io != nil {
		s.stats.IOEnergyPJ = s.io.bufferPJ
		s.stats.InputStallCycles = s.io.inputStalls
		s.stats.OutputStallCycles = s.io.outputStalls
	}
	s.stats.addLeakage()
	if s.sink != nil {
		s.sink.StageEnergy(StageIOBuffer, s.stats.IOEnergyPJ-s.ioReportedPJ)
		s.sink.StageEnergy(StageLeakage, s.stats.LeakageEnergyPJ-s.leakReportedPJ)
	}
	s.ioReportedPJ = s.stats.IOEnergyPJ
	s.leakReportedPJ = s.stats.LeakageEnergyPJ
	return &s.stats
}
