package hwsim

import (
	"fmt"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/glushkov"
)

// BaselineSystem simulates the unfolding architectures the paper compares
// against: CAMA, CA, eAP, and CNT (CAMA with counter elements). All share
// the two-phase state-matching / state-transition pipeline; they differ in
// match structure (CAM vs SRAM), crossbar (FCB vs RCB), clock, and whether
// counter elements absorb counter-unambiguous repetitions.
type BaselineSystem struct {
	stats    Stats
	machines []*baselineMachine
	tiles    int
	tilesF   float64
	capacity float64 // STE capacity used as the activity denominator

	recordEnds bool
	ends       [][]int
	pos        int

	// sink, when non-nil, receives per-stage energy and occupancy events;
	// xsink caches the optional ProvenanceSink extension and activeScratch
	// backs its MachineActivity id lists.
	sink           Sink
	xsink          ProvenanceSink
	activeScratch  []int
	leakReportedPJ float64
}

type baselineMachine struct {
	index    int
	runner   *glushkov.Runner
	states   int
	counters int
}

// NewBaselineSystem builds a simulator for arch over the given compiled
// baseline machines (from compiler.CompileBaseline or compiler.CompileCNT).
// Unsupported machines are skipped (they are reported by the compiler).
func NewBaselineSystem(arch archmodel.Arch, machines []compiler.BaselineMachine) (*BaselineSystem, error) {
	if arch != archmodel.CAMA && arch != archmodel.CA && arch != archmodel.EAP && arch != archmodel.CNT {
		return nil, fmt.Errorf("hwsim: %v is not a baseline architecture", arch)
	}
	sys := &BaselineSystem{}
	sys.stats.Arch = arch
	var sizes []int
	for i := range machines {
		m := &machines[i]
		if !m.Supported {
			sys.machines = append(sys.machines, nil)
			continue
		}
		sys.machines = append(sys.machines, &baselineMachine{
			index:    i,
			runner:   glushkov.NewRunner(m.NFA),
			states:   m.STEs,
			counters: m.Counters,
		})
		sizes = append(sizes, m.STEs)
	}
	sys.tiles = packTiles(sizes, archmodel.STEsPerTile)
	sys.tilesF = float64(sys.tiles)
	sys.capacity = float64(sys.tiles * archmodel.STEsPerTile)
	sys.stats.finalizeArea(sys.tiles)
	sys.ends = make([][]int, len(machines))
	return sys, nil
}

// SetCustomSizing sizes the hardware to exactly the STEs in use instead of
// whole 256-STE tiles — the single-regex "customized memory size" of the §8
// micro-benchmarks. Call before Run.
func (s *BaselineSystem) SetCustomSizing() {
	total := 0
	for _, m := range s.machines {
		if m != nil {
			total += m.states
		}
	}
	if total == 0 {
		total = 1
	}
	s.tilesF = float64(total) / archmodel.STEsPerTile
	s.capacity = float64(total)
	s.stats.finalizeAreaF(s.tilesF)
}

// packTiles first-fit-decreasing bin packs machine STE counts into tiles;
// machines larger than one tile span several (cross-tile transitions use
// the array's global switch).
func packTiles(sizes []int, capacity int) int {
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	var free []int
	tiles := 0
	for _, s := range sizes {
		for s >= capacity {
			tiles++
			s -= capacity
		}
		if s == 0 {
			continue
		}
		placed := false
		for i := range free {
			if free[i] >= s {
				free[i] -= s
				placed = true
				break
			}
		}
		if !placed {
			tiles++
			free = append(free, capacity-s)
		}
	}
	if tiles == 0 {
		tiles = 1
	}
	return tiles
}

// RecordMatchEnds enables per-machine match recording.
func (s *BaselineSystem) RecordMatchEnds(on bool) { s.recordEnds = on }

// SetSink attaches a telemetry sink receiving per-stage energy and per-step
// occupancy events. Pass nil to detach. Sinks additionally implementing
// ProvenanceSink receive per-machine activity and counter-energy events
// (baseline placements carry no per-tile provenance, so TileActivity is
// never called).
func (s *BaselineSystem) SetSink(k Sink) {
	s.sink = k
	s.xsink, _ = k.(ProvenanceSink)
}

// MatchEnds returns the recorded match end positions of machine i.
func (s *BaselineSystem) MatchEnds(i int) []int { return s.ends[i] }

// Stats returns the accumulated statistics.
func (s *BaselineSystem) Stats() *Stats { return &s.stats }

// Reset clears machine state but keeps statistics.
func (s *BaselineSystem) Reset() {
	for _, m := range s.machines {
		if m != nil {
			m.runner.Reset()
		}
	}
	s.pos = 0
}

// Run processes a byte stream.
func (s *BaselineSystem) Run(input []byte) {
	for _, b := range input {
		s.Step(b)
	}
}

// Step processes one input symbol.
func (s *BaselineSystem) Step(b byte) {
	st := &s.stats
	st.Symbols++
	totalActive := 0
	totalAvail := 0
	matchesThisStep := 0
	snkCounter := 0.0
	for _, m := range s.machines {
		if m == nil {
			continue
		}
		if m.runner.Step(b) {
			st.Matches++
			matchesThisStep++
			if s.recordEnds {
				s.ends[m.index] = append(s.ends[m.index], s.pos)
			}
		}
		totalActive += m.runner.ActiveCount()
		totalAvail += m.runner.AvailableCount()
		if s.xsink != nil {
			s.activeScratch = m.runner.AppendActive(s.activeScratch[:0])
			s.xsink.MachineActivity(m.index, m.runner.ActiveCount(), s.activeScratch)
		}
		if st.Arch == archmodel.CNT && m.counters > 0 && m.runner.ActiveCount() > 0 {
			e := archmodel.CounterEnergyPJFor(m.counters)
			st.CounterEnergyPJ += e
			snkCounter += e
			if s.xsink != nil {
				s.xsink.MachineStageEnergy(m.index, StageCounter, e)
			}
		}
	}
	// Per-tile energy at the fleet-average activity (the per-tile cost
	// functions are affine in activity, so the sum over tiles is exact).
	availFrac := float64(totalAvail) / s.capacity
	activeFrac := float64(totalActive) / s.capacity
	arch := st.Arch
	matchPJ := s.tilesF * arch.MatchEnergyPJ(availFrac)
	transPJ := s.tilesF * arch.TransitionEnergyPJ(activeFrac)
	wirePJ := s.tilesF * arch.WireEnergyPJ()
	st.MatchEnergyPJ += matchPJ
	st.TransitionEnergyPJ += transPJ
	st.WireEnergyPJ += wirePJ
	st.Cycles++
	if s.sink != nil {
		s.sink.StageEnergy(StageMatch, matchPJ)
		s.sink.StageEnergy(StageTransition, transPJ)
		s.sink.StageEnergy(StageWire, wirePJ)
		s.sink.StageEnergy(StageCounter, snkCounter)
		s.sink.StepDone(1, float64(totalActive), matchesThisStep)
	}
	s.pos++
}

// Finish closes the run, charging leakage. Leakage is reported to the sink
// as a delta, so repeated Finish calls keep the stage totals consistent
// with Stats.
func (s *BaselineSystem) Finish() *Stats {
	s.stats.addLeakage()
	if s.sink != nil {
		s.sink.StageEnergy(StageLeakage, s.stats.LeakageEnergyPJ-s.leakReportedPJ)
	}
	s.leakReportedPJ = s.stats.LeakageEnergyPJ
	return &s.stats
}
