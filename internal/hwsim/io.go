package hwsim

// ioModel implements the §6 input/output hierarchy of the BVAP bank level:
//
//   - per bank, a 128-entry ping-pong Bank Input Buffer refilled over DMA;
//   - per-array 8-entry input FIFOs that request four symbols from their
//     bank buffer whenever they hold fewer than four, served by a polling
//     arbiter (one grant of four symbols per bank per cycle — the paper
//     sizes banks at four arrays precisely so this bandwidth matches the
//     arrays' aggregate demand);
//   - per-array 2-entry report FIFOs draining into a 64-entry Bank Output
//     FIFO over a shared bus (one report per bank per cycle); a full
//     report path stalls the array.
//
// The model advances in system-clock cycles alongside the compute
// pipeline: BVM stall cycles give the FIFOs time to refill (the "two
// levels of buffering [that] partially hide the latency"), and input
// starvation or output congestion surface as extra stall cycles.
type ioModel struct {
	arrays int
	banks  int

	bankIn    []int // per-bank input buffer occupancy
	bankOut   []int // per-bank output buffer occupancy
	arrayIn   []int // per-array input FIFO occupancy
	arrayOut  []int // per-array report FIFO occupancy
	arbiterRR []int // per-bank polling arbiter position

	// dmaHold > 0 suspends the DMA refill of every bank buffer for that
	// many cycles — the recovery penalty of a corrupted DMA beat injected
	// by the fault layer (the ping-pong buffer re-requests the beat).
	dmaHold int

	// Accumulated observables.
	inputStalls  uint64
	outputStalls uint64
	bufferPJ     float64
}

const (
	ioArraysPerBank  = 4
	bankInCapacity   = 128
	arrayInCapacity  = 8
	arrayInThreshold = 4
	refillBurst      = 4
	arrayOutCapacity = 2
	bankOutCapacity  = 64
	// dmaSymbolsPerCycle is the DMA refill bandwidth into each bank
	// buffer; the ping-pong organization sustains one 4-symbol beat per
	// cycle.
	dmaSymbolsPerCycle = 4
	// bufferAccessPJ is the energy of moving one symbol through one
	// buffer level (small latch-based FIFOs).
	bufferAccessPJ = 0.02
)

func newIOModel(arrays int) *ioModel {
	if arrays < 1 {
		arrays = 1
	}
	banks := (arrays + ioArraysPerBank - 1) / ioArraysPerBank
	io := &ioModel{
		arrays:    arrays,
		banks:     banks,
		bankIn:    make([]int, banks),
		bankOut:   make([]int, banks),
		arrayIn:   make([]int, arrays),
		arrayOut:  make([]int, arrays),
		arbiterRR: make([]int, banks),
	}
	for b := range io.bankIn {
		io.bankIn[b] = bankInCapacity
	}
	for i := range io.arrayIn {
		io.arrayIn[i] = arrayInCapacity
	}
	return io
}

// bankArrays returns the [lo, hi) array range of bank b.
func (io *ioModel) bankArrays(b int) (lo, hi int) {
	lo = b * ioArraysPerBank
	hi = lo + ioArraysPerBank
	if hi > io.arrays {
		hi = io.arrays
	}
	return lo, hi
}

// tick advances the I/O hierarchy by one system cycle. pending[i] reports
// whether array i still needs to consume a symbol this cycle; tick clears
// the flag on success and leaves it set when the array stalls (input
// starvation or report congestion). reports[i] is the number of match
// reports array i emits along with its symbol (nil for idle cycles). tick
// returns how many arrays remain pending.
func (io *ioModel) tick(pending []bool, reports []int) int {
	for b := 0; b < io.banks; b++ {
		lo, hi := io.bankArrays(b)
		n := hi - lo
		// DMA refills the bank buffer (suspended while a corrupted beat
		// is being re-requested).
		if io.dmaHold == 0 {
			io.bankIn[b] += dmaSymbolsPerCycle
			if io.bankIn[b] > bankInCapacity {
				io.bankIn[b] = bankInCapacity
			}
		}
		// The polling arbiter grants one refill per bank per cycle.
		for i := 0; i < n; i++ {
			a := lo + (io.arbiterRR[b]+i)%n
			if io.arrayIn[a] <= arrayInThreshold && io.bankIn[b] > 0 {
				burst := refillBurst
				if burst > io.bankIn[b] {
					burst = io.bankIn[b]
				}
				if io.arrayIn[a]+burst > arrayInCapacity {
					burst = arrayInCapacity - io.arrayIn[a]
				}
				io.arrayIn[a] += burst
				io.bankIn[b] -= burst
				io.bufferPJ += float64(burst) * bufferAccessPJ
				io.arbiterRR[b] = (a - lo + 1) % n
				break
			}
		}
		// Output bus: one report per bank per cycle moves from an
		// array FIFO to the bank FIFO; DMA drains the bank FIFO.
		for i := 0; i < n; i++ {
			a := lo + (io.arbiterRR[b]+i)%n
			if io.arrayOut[a] > 0 && io.bankOut[b] < bankOutCapacity {
				io.arrayOut[a]--
				io.bankOut[b]++
				io.bufferPJ += bufferAccessPJ
				break
			}
		}
		if io.bankOut[b] > 0 {
			io.bankOut[b]--
		}
	}
	if io.dmaHold > 0 {
		io.dmaHold--
	}

	remaining := 0
	for a := 0; a < io.arrays; a++ {
		if !pending[a] {
			continue
		}
		// Input starvation.
		if io.arrayIn[a] == 0 {
			remaining++
			io.inputStalls++
			continue
		}
		// Output congestion: a full report FIFO stalls the array (§6:
		// "a full alert is sent to the Global Controller to stall the
		// array").
		if reports != nil && reports[a] > 0 && io.arrayOut[a] >= arrayOutCapacity {
			remaining++
			io.outputStalls++
			continue
		}
		io.arrayIn[a]--
		io.bufferPJ += bufferAccessPJ
		if reports != nil && reports[a] > 0 {
			io.arrayOut[a] += reports[a]
			if io.arrayOut[a] > arrayOutCapacity {
				io.arrayOut[a] = arrayOutCapacity
			}
			io.bufferPJ += float64(reports[a]) * bufferAccessPJ
		}
		pending[a] = false
	}
	return remaining
}

// idle ticks the hierarchy for cycles in which no array consumes input
// (BVM stall cycles): buffers refill, reports drain.
func (io *ioModel) idle(cycles int, scratch []bool) {
	for i := range scratch {
		scratch[i] = false
	}
	for c := 0; c < cycles; c++ {
		io.tick(scratch, nil)
	}
}

// injectOverflow models a corrupted DMA beat hitting array a's input path:
// the array FIFO and its bank buffer are invalidated (their contents came
// from the bad beat) and the DMA stalls while the ping-pong buffer
// re-requests the beat; the array's report FIFO jams full for one drain.
// The resulting buffer-flag excursions are architecturally visible, so the
// fault layer records these as always detected.
func (io *ioModel) injectOverflow(a int) {
	if a < 0 || a >= io.arrays {
		return
	}
	io.arrayIn[a] = 0
	io.bankIn[a/ioArraysPerBank] = 0
	io.arrayOut[a] = arrayOutCapacity
	io.dmaHold = ioOverflowDMAHoldCycles
}

// ioCheckpoint snapshots the functional occupancy state of the hierarchy.
// Monotone observables (stall counters, buffer energy) are excluded: work
// discarded by a rollback stays charged.
type ioCheckpoint struct {
	bankIn, bankOut   []int
	arrayIn, arrayOut []int
	arbiterRR         []int
	dmaHold           int
}

func (io *ioModel) checkpoint() *ioCheckpoint {
	return &ioCheckpoint{
		bankIn:    append([]int(nil), io.bankIn...),
		bankOut:   append([]int(nil), io.bankOut...),
		arrayIn:   append([]int(nil), io.arrayIn...),
		arrayOut:  append([]int(nil), io.arrayOut...),
		arbiterRR: append([]int(nil), io.arbiterRR...),
		dmaHold:   io.dmaHold,
	}
}

func (io *ioModel) restore(ck *ioCheckpoint) {
	copy(io.bankIn, ck.bankIn)
	copy(io.bankOut, ck.bankOut)
	copy(io.arrayIn, ck.arrayIn)
	copy(io.arrayOut, ck.arrayOut)
	copy(io.arbiterRR, ck.arbiterRR)
	io.dmaHold = ck.dmaHold
}
