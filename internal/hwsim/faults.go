package hwsim

// Fault-injection and resilience wiring of the BVAP simulator: narrow hook
// points in Step and the I/O model let a faults.Injector flip BVM bits,
// corrupt STE active latches, drop/duplicate BVAP-S input symbols and
// overflow the I/O buffers; Checkpoint/Restore give the resilience harness
// windowed rollback; and the per-BV parity option charges its Table-4-style
// energy/area surcharge so the protection/efficiency trade-off is
// measurable. The nil path mirrors the telemetry Sink: with no injector
// attached, Step pays a single nil check and allocates nothing.

import (
	"bvap/internal/archmodel"
	"bvap/internal/faults"
	"bvap/internal/nbva"
)

const (
	// parityOverheadFrac models per-BV parity as one parity bit per 8-bit
	// BV word: a 12.5% surcharge on BV storage accesses (Table 4's
	// BitVector energy) and on the BVM's SRAM area.
	parityOverheadFrac = 0.125
	// ioOverflowDMAHoldCycles is how long a corrupted DMA beat stalls the
	// bank refill: the ping-pong buffer must re-request the beat.
	ioOverflowDMAHoldCycles = 2
)

// SetFaults attaches (or with nil detaches) a fault injector. Call before
// Run; when the plan enables parity, the BVM area of every BV-carrying tile
// grows by the parity surcharge and every BV read/swap op charges parity
// energy. With no injector the Step hot path pays one nil check.
func (s *BVAPSystem) SetFaults(in *faults.Injector) {
	if s.parityCharged {
		s.stats.SetAreaUm2(s.stats.AreaUm2 - s.parityAreaUm2)
		s.parityCharged = false
		s.parityAreaUm2 = 0
	}
	s.faults = in
	s.parityOn = in != nil && in.ParityOn()
	if s.parityOn {
		area := 0.0
		for i, t := range s.tiles {
			if t.bvstes > 0 {
				area += archmodel.BVMAreaUm2 * parityOverheadFrac * s.tileScale[i] * 1.05
			}
		}
		s.parityAreaUm2 = area
		s.parityCharged = true
		s.stats.SetAreaUm2(s.stats.AreaUm2 + area)
	}
	if in != nil && s.faultScratch == nil {
		s.faultScratch = make([]int, 0, 64)
	}
}

// FaultStats returns the injector's counters (zero value with no injector).
func (s *BVAPSystem) FaultStats() faults.Stats {
	if s.faults == nil {
		return faults.Stats{}
	}
	return s.faults.Stats()
}

// Pos returns the committed stream position: symbols consumed since start,
// excluding rolled-back work. Part of the faults.Target surface.
func (s *BVAPSystem) Pos() int { return s.pos }

// NumMachines returns the number of configured machines (including
// unsupported placeholders). Part of the faults.Target surface.
func (s *BVAPSystem) NumMachines() int { return len(s.machines) }

// sysCheckpoint is the concrete checkpoint of a BVAPSystem: runner
// frontiers and vectors, stream position, per-machine BV-activity history,
// match-end high-water marks, and I/O occupancies. Monotone observables
// (energy, cycles, symbols, stall counts) are deliberately excluded —
// rolled-back work stays charged, which is the measured cost of recovery.
type sysCheckpoint struct {
	// owner pins the checkpoint to the system it was taken on: runner
	// snapshots index into that system's machines, so restoring onto a
	// different system would silently corrupt it. Restore checks identity.
	owner   *BVAPSystem
	pos     int
	runners []*runnerCk
	endsLen []int
	io      *ioCheckpoint
}

type runnerCk struct {
	snap   *nbva.RunnerSnapshot
	prevBV int
}

// Checkpoint implements faults.Target.
func (s *BVAPSystem) Checkpoint() faults.Checkpoint {
	ck := &sysCheckpoint{owner: s, pos: s.pos}
	for _, m := range s.machines {
		if m == nil {
			ck.runners = append(ck.runners, nil)
			continue
		}
		ck.runners = append(ck.runners, &runnerCk{
			snap:   m.runner.Snapshot(),
			prevBV: m.prevBVActive,
		})
	}
	ck.endsLen = make([]int, len(s.ends))
	for i := range s.ends {
		ck.endsLen[i] = len(s.ends[i])
	}
	if s.io != nil {
		ck.io = s.io.checkpoint()
	}
	return ck
}

// Restore implements faults.Target: it rewinds the functional state to a
// checkpoint taken on this system. Accumulated statistics are not rewound.
func (s *BVAPSystem) Restore(c faults.Checkpoint) {
	ck, ok := c.(*sysCheckpoint)
	if !ok || ck == nil {
		panic("hwsim: Restore with a checkpoint from a different system type")
	}
	if ck.owner != s {
		panic("hwsim: Restore with a checkpoint taken on a different system")
	}
	s.pos = ck.pos
	for i, m := range s.machines {
		if m == nil || ck.runners[i] == nil {
			continue
		}
		m.runner.Restore(ck.runners[i].snap)
		m.prevBVActive = ck.runners[i].prevBV
	}
	for i := range s.ends {
		if ck.endsLen[i] <= len(s.ends[i]) {
			s.ends[i] = s.ends[i][:ck.endsLen[i]]
		}
	}
	if s.io != nil && ck.io != nil {
		s.io.restore(ck.io)
	}
}

// faultStep applies pre-symbol fault injection. It returns true when the
// symbol was consumed entirely by a fault (a dropped BVAP-S symbol) and
// stepCore must not run.
func (s *BVAPSystem) faultStep(b byte) bool {
	in := s.faults
	if in.Suppressed() {
		return false
	}
	pos := uint64(s.pos)
	if s.streaming {
		if in.Fire(faults.SiteStreamDrop, pos, 0) {
			in.Record(faults.Event{
				Pos: pos, Site: faults.SiteStreamDrop,
				Machine: -1, State: -1, Bit: -1, Array: -1,
			})
			// The symbol never reaches the pipeline: the system clock
			// still ticks, no match/transition work happens.
			s.stats.Symbols++
			s.stats.Cycles++
			if s.sink != nil {
				s.sink.StepDone(1, 0, 0)
			}
			s.pos++
			return true
		}
		if in.Fire(faults.SiteStreamDup, pos, 0) {
			in.Record(faults.Event{
				Pos: pos, Site: faults.SiteStreamDup,
				Machine: -1, State: -1, Bit: -1, Array: -1,
			})
			s.stepCore(b) // the duplicated copy; Step runs the original
		}
	}
	for mi, m := range s.machines {
		if m == nil || !in.MachineAllowed(mi) {
			continue
		}
		if in.Fire(faults.SiteBVBitFlip, pos, mi) {
			s.injectBitFlip(in, pos, mi, m)
		}
		if in.Fire(faults.SiteSTEActive, pos, mi) {
			s.injectSTECorrupt(in, pos, mi, m)
		}
	}
	if s.io != nil {
		for a := 0; a < s.arrays; a++ {
			if in.Fire(faults.SiteIOOverflow, pos, a) {
				s.io.injectOverflow(a)
				// Buffer full/empty flags are architecturally visible
				// (§6 stalls the array on them), so overflows are
				// always detected.
				in.Record(faults.Event{
					Pos: pos, Site: faults.SiteIOOverflow,
					Machine: -1, State: -1, Bit: -1, Array: a,
					Detected: true,
				})
			}
		}
	}
	return false
}

// injectBitFlip flips one bit of a deterministically chosen active BV
// vector of machine mi. With parity the flip is detected (the next word
// access fails its parity check); without it the corruption is silent.
func (s *BVAPSystem) injectBitFlip(in *faults.Injector, pos uint64, mi int, m *bvapMachine) {
	s.faultScratch = s.faultScratch[:0]
	for _, q := range m.runner.ActiveList() {
		if m.ah.States[q].Width > 0 {
			s.faultScratch = append(s.faultScratch, q)
		}
	}
	if len(s.faultScratch) == 0 {
		return // no SRAM content to corrupt this cycle
	}
	q := s.faultScratch[in.Pick(faults.SiteBVBitFlip, pos, mi, 1, len(s.faultScratch))]
	width := m.ah.States[q].Width
	bit := 1 + in.Pick(faults.SiteBVBitFlip, pos, mi, 2, width)
	if !m.runner.FlipBit(q, bit) {
		return
	}
	in.Record(faults.Event{
		Pos: pos, Site: faults.SiteBVBitFlip,
		Machine: mi, State: q, Bit: bit, Array: -1,
		Detected: in.ParityOn(),
	})
}

// injectSTECorrupt upsets an active-bit latch of machine mi: half the draws
// silently deactivate an active state, the other half spuriously activate
// an idle one. Neither is covered by BV parity — these are the silent
// corruptions only the end-to-end cross-check can surface.
func (s *BVAPSystem) injectSTECorrupt(in *faults.Injector, pos uint64, mi int, m *bvapMachine) {
	active := m.runner.ActiveList()
	kind := in.Pick(faults.SiteSTEActive, pos, mi, 1, 2)
	if kind == 0 && len(active) > 0 {
		q := active[in.Pick(faults.SiteSTEActive, pos, mi, 2, len(active))]
		if m.runner.Deactivate(q) {
			in.Record(faults.Event{
				Pos: pos, Site: faults.SiteSTEActive,
				Machine: mi, State: q, Bit: -1, Array: -1,
			})
		}
		return
	}
	q := in.Pick(faults.SiteSTEActive, pos, mi, 3, m.ah.Size())
	if m.runner.ForceActive(q) {
		in.Record(faults.Event{
			Pos: pos, Site: faults.SiteSTEActive,
			Machine: mi, State: q, Bit: -1, Array: -1,
		})
	}
}
