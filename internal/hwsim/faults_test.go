package hwsim

import (
	"testing"

	"bvap/internal/faults"
)

// faultPatterns exercise BV-carrying counting states (bit-flip targets),
// plain STEs (active-latch targets) and enough structure that corruptions
// change observable match behaviour.
var faultPatterns = []string{"ab{3}c", "a(.a){3}b", "x{2,30}y", "a{1,100}b"}

func faultSystem(t *testing.T, streaming bool) *BVAPSystem {
	t.Helper()
	res := compileFor(t, faultPatterns)
	sys, err := NewBVAPSystem(res.Config, streaming)
	if err != nil {
		t.Fatal(err)
	}
	sys.RecordMatchEnds(true)
	return sys
}

// TestFaultInjectionDeterminism pins the headline guarantee: two systems
// built from the same config with same-seed injectors produce bit-identical
// fault traces, counters, match ends and energy.
func TestFaultInjectionDeterminism(t *testing.T) {
	input := randomInput(7, 6000, "abcxy")
	run := func() (*BVAPSystem, *faults.Injector) {
		sys := faultSystem(t, false)
		in, err := faults.NewInjector(faults.UniformPlan(42, 2e-3, true))
		if err != nil {
			t.Fatal(err)
		}
		sys.SetFaults(in)
		sys.Run(input)
		sys.Finish()
		return sys, in
	}
	a, ina := run()
	b, inb := run()

	sa, sb := ina.Stats(), inb.Stats()
	if sa != sb {
		t.Fatalf("fault stats diverge:\n a=%+v\n b=%+v", sa, sb)
	}
	if sa.TotalInjected() == 0 {
		t.Fatal("rate 2e-3 over 6000 symbols injected nothing; test is vacuous")
	}
	ta, tb := ina.Trace(), inb.Trace()
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("trace[%d] diverges: %+v vs %+v", i, ta[i], tb[i])
		}
	}
	if ea, eb := a.Stats().TotalEnergyPJ(), b.Stats().TotalEnergyPJ(); ea != eb {
		t.Fatalf("energy diverges: %g vs %g", ea, eb)
	}
	for i := range faultPatterns {
		if !equalInts(a.MatchEnds(i), b.MatchEnds(i)) {
			t.Fatalf("machine %d match ends diverge", i)
		}
	}
}

// TestFaultNilPlanZeroAlloc pins the nil-path promise: with no injector
// attached, Step allocates nothing.
func TestFaultNilPlanZeroAlloc(t *testing.T) {
	sys := faultSystem(t, false)
	sys.RecordMatchEnds(false)
	// Warm up so runner scratch buffers reach steady-state capacity.
	sys.Run(randomInput(8, 2048, "abcxy"))
	input := randomInput(9, 256, "abcxy")
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		sys.Step(input[i%len(input)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Step with nil fault plan allocates %.1f per call, want 0", allocs)
	}
}

// TestFaultCheckpointRestore pins windowed rollback: restoring a checkpoint
// and replaying the same bytes at the same attempt reproduces the exact
// functional state (position and match ends), because fault draws are keyed
// by absolute position, not execution history.
func TestFaultCheckpointRestore(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		sys := faultSystem(t, streaming)
		in, err := faults.NewInjector(faults.UniformPlan(11, 5e-3, true))
		if err != nil {
			t.Fatal(err)
		}
		sys.SetFaults(in)
		input := randomInput(10, 4096, "abcxy")
		prefix, window := input[:1000], input[1000:1512]
		for _, b := range prefix {
			sys.Step(b)
		}
		ck := sys.Checkpoint()
		// Stream-dup faults advance the position for the duplicated copy, so
		// the checkpoint position is what Restore must return to — not the
		// raw prefix length.
		basePos := sys.Pos()
		baseEnds := make([]int, len(faultPatterns))
		for i := range faultPatterns {
			baseEnds[i] = len(sys.MatchEnds(i))
		}
		for _, b := range window {
			sys.Step(b)
		}
		firstPos := sys.Pos()
		first := make([][]int, len(faultPatterns))
		for i := range faultPatterns {
			first[i] = append([]int(nil), sys.MatchEnds(i)...)
		}

		sys.Restore(ck)
		if sys.Pos() != basePos {
			t.Fatalf("streaming=%v: Pos after restore = %d, want %d", streaming, sys.Pos(), basePos)
		}
		for i := range faultPatterns {
			if len(sys.MatchEnds(i)) != baseEnds[i] {
				t.Fatalf("streaming=%v: machine %d ends not truncated: %d vs %d",
					streaming, i, len(sys.MatchEnds(i)), baseEnds[i])
			}
		}
		for _, b := range window {
			sys.Step(b)
		}
		if sys.Pos() != firstPos {
			t.Fatalf("streaming=%v: replay Pos = %d, want %d", streaming, sys.Pos(), firstPos)
		}
		for i := range faultPatterns {
			if !equalInts(sys.MatchEnds(i), first[i]) {
				t.Fatalf("streaming=%v: machine %d replay diverges:\n first  %v\n replay %v",
					streaming, i, first[i], sys.MatchEnds(i))
			}
		}
	}
}

// TestFaultParityArea pins the parity surcharge accounting: attaching a
// parity-enabled injector grows the area, detaching restores it exactly, and
// a parity-off injector charges nothing.
func TestFaultParityArea(t *testing.T) {
	sys := faultSystem(t, false)
	base := sys.Stats().AreaUm2
	in, err := faults.NewInjector(faults.UniformPlan(1, 1e-4, true))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaults(in)
	withParity := sys.Stats().AreaUm2
	if withParity <= base {
		t.Fatalf("parity did not grow area: %g -> %g", base, withParity)
	}
	sys.SetFaults(nil)
	if got := sys.Stats().AreaUm2; got != base {
		t.Fatalf("area not restored after detach: %g, want %g", got, base)
	}
	off, err := faults.NewInjector(faults.UniformPlan(1, 1e-4, false))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaults(off)
	if got := sys.Stats().AreaUm2; got != base {
		t.Fatalf("parity-off injector changed area: %g, want %g", got, base)
	}
}

// TestFaultStreamDropAll pins the BVAP-S drop site: at drop rate 1 every
// symbol is consumed by the fault, so the clock ticks but nothing matches.
func TestFaultStreamDropAll(t *testing.T) {
	sys := faultSystem(t, true)
	in, err := faults.NewInjector(&faults.Plan{Seed: 1, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaults(in)
	input := []byte("abbbc abbbc xxxy abbbc")
	sys.Run(input)
	st := sys.Finish()
	if st.Symbols != uint64(len(input)) {
		t.Fatalf("symbols = %d, want %d", st.Symbols, len(input))
	}
	if st.Matches != 0 {
		t.Fatalf("dropped stream still matched %d times", st.Matches)
	}
	fs := sys.FaultStats()
	if fs.Injected[faults.SiteStreamDrop] != uint64(len(input)) {
		t.Fatalf("drop count = %d, want %d", fs.Injected[faults.SiteStreamDrop], len(input))
	}
	// Drops are a streaming-only fault site: the non-streaming system must
	// ignore the plan's drop rate entirely.
	flat := faultSystem(t, false)
	flat.SetFaults(mustInjector(t, &faults.Plan{Seed: 1, DropRate: 1}))
	flat.Run(input)
	flat.Finish()
	if n := flat.FaultStats().TotalInjected(); n != 0 {
		t.Fatalf("non-streaming system injected %d stream faults", n)
	}
}

func mustInjector(t *testing.T, p *faults.Plan) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}
