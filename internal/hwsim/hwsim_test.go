package hwsim

import (
	"math/rand"
	"testing"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/nbva"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
)

func compileFor(t *testing.T, patterns []string) *compiler.Result {
	t.Helper()
	res, err := compiler.Compile(patterns, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

func randomInput(seed int64, n int, alphabet string) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}

func TestMachineFromConfigRoundTrip(t *testing.T) {
	// The machine reconstructed from the JSON config must behave exactly
	// like the compiler's in-memory AH automaton.
	patterns := []string{"ab{3}c", "a(.a){3}b", "ab{2,114}c", "x(ab|cd){6}y"}
	res := compileFor(t, patterns)
	input := randomInput(1, 2000, "abcdxy")
	for i := range patterns {
		m, err := MachineFromConfig(&res.Config.Machines[i])
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		got := m.MatchEnds(input)
		want := res.Machines[i].MatchEnds(input)
		if !equalInts(got, want) {
			t.Fatalf("machine %d (%q): config %v, memory %v", i, patterns[i], got, want)
		}
	}
}

func TestBVAPConsistencyWithSoftwareMatcher(t *testing.T) {
	// The paper's §8 consistency check: the hardware simulator's match
	// results must agree with the reliable software matcher.
	patterns := []string{
		"ab{3}c",
		"a(.a){3}b",
		"ab{2,30}c",
		`\d{5}`,
		"x(ab|cd){6}y",
		"ab{64}c",
		"a{1,100}b",
	}
	res := compileFor(t, patterns)
	sys, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	sys.RecordMatchEnds(true)
	input := randomInput(2, 4000, "abcdxy0123456789")
	sys.Run(input)
	sys.Finish()
	for i, pat := range patterns {
		ref := swmatch.MustNew(pat)
		want := ref.MatchEnds(input)
		got := sys.MatchEnds(i)
		if !equalInts(got, want) {
			t.Errorf("%q: hw %d ends, sw %d ends", pat, len(got), len(want))
		}
	}
}

func TestBaselineConsistencyWithSoftwareMatcher(t *testing.T) {
	patterns := []string{"ab{3}c", "a(.a){3}b", "ab{2,30}c", "xy*z"}
	input := randomInput(3, 3000, "abcxyz")
	for _, arch := range []archmodel.Arch{archmodel.CAMA, archmodel.CA, archmodel.EAP} {
		ms := compiler.CompileBaseline(patterns)
		sys, err := NewBaselineSystem(arch, ms)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		sys.RecordMatchEnds(true)
		sys.Run(input)
		sys.Finish()
		for i, pat := range patterns {
			want := swmatch.MustNew(pat).MatchEnds(input)
			if !equalInts(sys.MatchEnds(i), want) {
				t.Errorf("%v %q: mismatch", arch, pat)
			}
		}
	}
}

func TestCNTConsistency(t *testing.T) {
	patterns := []string{"aaaaaaaaaaaaaaaaa{64}b{64}"}
	ms := compiler.CompileCNT(patterns)
	sys, err := NewBaselineSystem(archmodel.CNT, ms)
	if err != nil {
		t.Fatal(err)
	}
	sys.RecordMatchEnds(true)
	input := randomInput(4, 3000, "ab")
	sys.Run(input)
	sys.Finish()
	want := swmatch.MustNew(patterns[0]).MatchEnds(input)
	if !equalInts(sys.MatchEnds(0), want) {
		t.Fatal("CNT match mismatch")
	}
}

func TestBVAPEnergyAdvantageOnCounting(t *testing.T) {
	// The headline result, in miniature: on a counting-heavy workload,
	// BVAP must use less energy per symbol than CAMA, which must use less
	// than eAP and CA; area must be smaller too.
	patterns := []string{
		"abcdefgh.{200}x", "ijklmnop.{150}y", "qrstuvwx.{300}z",
		"header.{128}end", "body.{256}tail",
	}
	input := randomInput(5, 8000, "abcdefghijklmnopqrstuvwxyz.")

	res := compileFor(t, patterns)
	bvap, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	bvap.Run(input)
	bvapStats := bvap.Finish()

	baselines := map[archmodel.Arch]*Stats{}
	for _, arch := range []archmodel.Arch{archmodel.CAMA, archmodel.CA, archmodel.EAP} {
		sys, err := NewBaselineSystem(arch, compiler.CompileBaseline(patterns))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(input)
		baselines[arch] = sys.Finish()
	}

	eBVAP := bvapStats.EnergyPerSymbolPJ()
	eCAMA := baselines[archmodel.CAMA].EnergyPerSymbolPJ()
	eCA := baselines[archmodel.CA].EnergyPerSymbolPJ()
	eEAP := baselines[archmodel.EAP].EnergyPerSymbolPJ()
	if !(eBVAP < eCAMA && eCAMA < eEAP && eEAP < eCA) {
		t.Fatalf("energy ordering violated: BVAP=%.1f CAMA=%.1f eAP=%.1f CA=%.1f",
			eBVAP, eCAMA, eEAP, eCA)
	}
	if bvapStats.AreaUm2 >= baselines[archmodel.CAMA].AreaUm2 {
		t.Fatalf("BVAP area %.0f ≥ CAMA area %.0f on counting workload",
			bvapStats.AreaUm2, baselines[archmodel.CAMA].AreaUm2)
	}
}

func TestBVAPSStreamingMode(t *testing.T) {
	patterns := []string{"abcd.{100}x"}
	input := randomInput(6, 5000, "abcdx.")
	res := compileFor(t, patterns)

	normal, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	normal.Run(input)
	ns := normal.Finish()

	res2 := compileFor(t, patterns)
	streaming, err := NewBVAPSystem(res2.Config, true)
	if err != nil {
		t.Fatal(err)
	}
	streaming.Run(input)
	ss := streaming.Finish()

	// BVAP-S: lower throughput, lower energy (voltage-scaled SM/ST), and
	// no dynamic stalls (constant cycle).
	if ss.ThroughputGbps() >= ns.ThroughputGbps() {
		t.Fatalf("BVAP-S throughput %.2f ≥ BVAP %.2f", ss.ThroughputGbps(), ns.ThroughputGbps())
	}
	if ss.MatchEnergyPJ >= ns.MatchEnergyPJ {
		t.Fatalf("BVAP-S match energy not reduced: %.1f vs %.1f", ss.MatchEnergyPJ, ns.MatchEnergyPJ)
	}
	if ss.StallCycles != 0 {
		t.Fatalf("BVAP-S has stalls: %d", ss.StallCycles)
	}
	// Both modes must find the same matches.
	if ss.Matches != ns.Matches {
		t.Fatalf("matches differ: %d vs %d", ss.Matches, ns.Matches)
	}
}

func TestStallsOnlyWhenBVMActive(t *testing.T) {
	// A regex without counting never activates the BVM: no stalls, no BVM
	// energy (event-driven scheme, §6).
	res := compileFor(t, []string{"abcxyz"})
	sys, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	input := randomInput(7, 2000, "abcxyz")
	sys.Run(input)
	st := sys.Finish()
	if st.StallCycles != 0 {
		t.Fatalf("stalls without BVM: %d", st.StallCycles)
	}
	if st.BVMEnergyPJ != 0 {
		t.Fatalf("BVM energy without BV-STEs: %.2f", st.BVMEnergyPJ)
	}
	if st.Cycles != st.Symbols {
		t.Fatalf("cycles %d ≠ symbols %d", st.Cycles, st.Symbols)
	}
}

func TestStallsGrowWithActivation(t *testing.T) {
	// Higher BV activation ratio α → more stall cycles → lower throughput
	// (Fig. 11's compute-density trend).
	mk := func(alpha float64) *Stats {
		// a{64}b: the counting scope is entered from the initial
		// state, so the BVM activates on every 'a' — α is directly
		// the fraction of a's in the input.
		res := compileFor(t, []string{"a{64}b"})
		sys, err := NewBVAPSystem(res.Config, false)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(8))
		input := make([]byte, 6000)
		for i := range input {
			if r.Float64() < alpha {
				input[i] = 'a'
			} else {
				input[i] = 'b'
			}
		}
		sys.Run(input)
		return sys.Finish()
	}
	low := mk(0.05)
	high := mk(0.50)
	if high.StallCycles <= low.StallCycles {
		t.Fatalf("stalls did not grow with α: %d vs %d", low.StallCycles, high.StallCycles)
	}
	if high.ThroughputGbps() >= low.ThroughputGbps() {
		t.Fatalf("throughput did not drop with α")
	}
}

func TestPackTiles(t *testing.T) {
	cases := []struct {
		sizes []int
		want  int
	}{
		{nil, 1},
		{[]int{10}, 1},
		{[]int{256}, 1},
		{[]int{257}, 2},
		{[]int{4096}, 16},
		{[]int{200, 200, 200}, 3},
		{[]int{128, 128, 128, 128}, 2},
		{[]int{250, 6, 250, 6}, 2},
	}
	for _, tc := range cases {
		sizes := append([]int(nil), tc.sizes...)
		if got := packTiles(sizes, 256); got != tc.want {
			t.Errorf("packTiles(%v) = %d, want %d", tc.sizes, got, tc.want)
		}
	}
}

func TestQuickBVAPAgainstNBVA(t *testing.T) {
	// Property: for random counting regexes and inputs, the full pipeline
	// (compile → JSON → reconstruct → cycle-simulate) matches the plain
	// NBVA semantics.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		bound := 2 + r.Intn(90)
		lo := 1 + r.Intn(bound)
		pat := ""
		switch trial % 3 {
		case 0:
			pat = "ab{" + itoa(bound) + "}c"
		case 1:
			pat = "a(bc){" + itoa(lo) + "," + itoa(bound+lo) + "}d"
		default:
			pat = "xa{" + itoa(bound) + "}y|z"
		}
		res, err := compiler.Compile([]string{pat}, compiler.Options{BVSizeBits: 32, UnfoldThreshold: 4})
		if err != nil || res.Machines[0] == nil {
			t.Fatalf("compile %q failed", pat)
		}
		sys, err := NewBVAPSystem(res.Config, trial%2 == 1)
		if err != nil {
			t.Fatal(err)
		}
		sys.RecordMatchEnds(true)
		input := randomInput(int64(trial), 1500, "abcdxyz")
		sys.Run(input)
		want := nbva.MustBuild(regex.MustParse(pat)).MatchEnds(input)
		if !equalInts(sys.MatchEnds(0), want) {
			t.Fatalf("trial %d %q: hw %v ends, nbva %v ends", trial, pat, len(sys.MatchEnds(0)), len(want))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// densePattern mirrors the compiler's FCB test: a starred alternation whose
// Glushkov graph has quadratic edge density.
func densePattern(k int) string {
	out := "("
	for i := 0; i < k; i++ {
		if i > 0 {
			out += "|"
		}
		out += string(rune('a'+i%26)) + string(rune('b'+i%25))
	}
	return out + ")*z"
}

func TestFCBSimulationCosts(t *testing.T) {
	// An FCB placement is a physical tile pair: the simulator must count
	// two tiles of area for it.
	resDense := compileFor(t, []string{densePattern(40)})
	fcb := false
	for _, tp := range resDense.Config.Tiles {
		if tp.FCBMode {
			fcb = true
		}
	}
	if !fcb {
		t.Skip("pattern not dense enough to trigger FCB mode")
	}
	resSparse := compileFor(t, []string{"abcdefgh"})
	mk := func(res *compiler.Result) *Stats {
		sys, err := NewBVAPSystem(res.Config, false)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run([]byte("abcdefghzzabz"))
		return sys.Finish()
	}
	dense := mk(resDense)
	sparse := mk(resSparse)
	if dense.TilesF != 2 {
		t.Fatalf("FCB tile units = %v, want 2", dense.TilesF)
	}
	if sparse.TilesF != 1 {
		t.Fatalf("RCB tile units = %v, want 1", sparse.TilesF)
	}
	if dense.AreaUm2 <= sparse.AreaUm2 {
		t.Fatal("FCB placement should cost more area")
	}
}
