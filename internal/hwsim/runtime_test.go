package hwsim

import (
	"strings"
	"testing"

	"bvap/internal/charclass"
	"bvap/internal/hwconf"
)

func TestMachineFromConfigRejectsUnsupported(t *testing.T) {
	m := hwconf.Machine{Regex: "x", Unsupported: "because"}
	if _, err := MachineFromConfig(&m); err == nil {
		t.Fatal("unsupported machine accepted")
	}
}

func TestMachineFromConfigRejectsBadClass(t *testing.T) {
	m := hwconf.Machine{
		Regex: "x",
		STEs:  []hwconf.STE{{ID: 0, Class: "zz"}},
	}
	if _, err := MachineFromConfig(&m); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestMachineFromConfigRejectsBadInstruction(t *testing.T) {
	m := hwconf.Machine{
		Regex: "x",
		STEs: []hwconf.STE{{
			ID:          0,
			Class:       hwconf.EncodeClass(charclass.Single('a')),
			IsBV:        true,
			WidthBits:   8,
			Instruction: 0xffff, // reserved bits set
		}},
	}
	if _, err := MachineFromConfig(&m); err == nil {
		t.Fatal("bad instruction accepted")
	}
}

func TestMachineFromConfigRejectsBVWithoutSwap(t *testing.T) {
	// A BV-STE whose instruction has no swap action cannot express an
	// AH action.
	m := hwconf.Machine{
		Regex: "x",
		STEs: []hwconf.STE{{
			ID:          0,
			Class:       hwconf.EncodeClass(charclass.Single('a')),
			IsBV:        true,
			WidthBits:   8,
			Instruction: 0, // NoRead + SwapNone + 1 word
		}},
	}
	if _, err := MachineFromConfig(&m); err == nil {
		t.Fatal("BV without swap action accepted")
	}
	if _, err := MachineFromConfig(&m); err != nil && !strings.Contains(err.Error(), "swap") {
		t.Fatalf("unhelpful error: %v", MachineFromConfigErr(&m))
	}
}

func MachineFromConfigErr(m *hwconf.Machine) error {
	_, err := MachineFromConfig(m)
	return err
}

func TestNewBVAPSystemRejectsUnplacedMachine(t *testing.T) {
	// A supported machine missing from every tile is a mapping bug the
	// simulator must refuse to hide.
	cfg := &hwconf.Config{
		Version: hwconf.FormatVersion,
		Params:  hwconf.Params{BVSizeBits: 64, UnfoldThreshold: 8},
		Machines: []hwconf.Machine{{
			Regex:   "a",
			STEs:    []hwconf.STE{{ID: 0, Class: hwconf.EncodeClass(charclass.Single('a'))}},
			Initial: []int{0},
			Finals:  []int{0},
		}},
		// No tiles reference machine 0.
		Tiles: []hwconf.TilePlacement{{Tile: 0, STEs: 1}},
	}
	if _, err := NewBVAPSystem(cfg, false); err == nil {
		t.Fatal("unplaced machine accepted")
	}
}

func TestMaxWordsIgnoresPlainSTEs(t *testing.T) {
	res := compileFor(t, []string{"ab{300}c"})
	words := MaxWords(&res.Config.Machines[0])
	if words != 8 {
		t.Fatalf("MaxWords = %d, want 8 (64-bit chunks)", words)
	}
	res = compileFor(t, []string{"abc"})
	if got := MaxWords(&res.Config.Machines[0]); got != 0 {
		t.Fatalf("MaxWords without BVs = %d", got)
	}
}
