package hwsim

import (
	"bytes"
	"testing"

	"bvap/internal/compiler"
	"bvap/internal/hwconf"
)

// FuzzMachineFromConfig feeds arbitrary bytes through the full
// configuration path — hwconf.Read (parse + Validate), machine
// reconstruction, simulator construction, and a short simulated run — and
// asserts the only acceptable failure mode is a returned error. A
// Validate'd image must never panic the simulator or drive it into
// allocations disproportionate to the image, no matter how the bytes were
// mangled.
//
// The seed corpus is real compiler output over patterns that exercise every
// structural feature: plain STEs, BV-STEs with each swap action, gated
// edges, anchors, case folding, multi-machine placement, and an
// unsupported pattern.
func FuzzMachineFromConfig(f *testing.F) {
	seeds := [][]string{
		{"abc"},
		{"ab{3}c"},
		{"a(.a){3}b", "x{2,30}y"},
		{"(?i)get /[a-z]{8}", "^hdr.{10}z", "bad("},
		{"a{100}", "b{2,5}(cd){6}e"},
	}
	for _, pats := range seeds {
		res, err := compiler.Compile(pats, compiler.DefaultOptions())
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Config.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), false)
		f.Add(buf.Bytes(), true)
	}
	input := []byte("abcab{3}c xyhdrz get /abcdefgh 0123aaaaab")
	f.Fuzz(func(t *testing.T, data []byte, streaming bool) {
		cfg, err := hwconf.Read(bytes.NewReader(data))
		if err != nil {
			return // rejected images are the expected failure mode
		}
		sys, err := NewBVAPSystem(cfg, streaming)
		if err != nil {
			return
		}
		sys.RecordMatchEnds(true)
		sys.Run(input)
		st := sys.Finish()
		if st.Symbols != uint64(len(input)) {
			t.Fatalf("ran %d symbols, want %d", st.Symbols, len(input))
		}
		if st.TotalEnergyPJ() < 0 {
			t.Fatalf("negative energy %v", st.TotalEnergyPJ())
		}
	})
}
