package hwsim

import (
	"bytes"
	"testing"

	"bvap/internal/compiler"
	"bvap/internal/hwconf"
)

// FuzzMachineFromConfig feeds arbitrary bytes through the full
// configuration path — hwconf.Read (parse + Validate), machine
// reconstruction, simulator construction, and a short simulated run — and
// asserts the only acceptable failure mode is a returned error. A
// Validate'd image must never panic the simulator or drive it into
// allocations disproportionate to the image, no matter how the bytes were
// mangled.
//
// The seed corpus is real compiler output over patterns that exercise every
// structural feature: plain STEs, BV-STEs with each swap action, gated
// edges, anchors, case folding, multi-machine placement, and an
// unsupported pattern.
func FuzzMachineFromConfig(f *testing.F) {
	seeds := [][]string{
		{"abc"},
		{"ab{3}c"},
		{"a(.a){3}b", "x{2,30}y"},
		{"(?i)get /[a-z]{8}", "^hdr.{10}z", "bad("},
		{"a{100}", "b{2,5}(cd){6}e"},
	}
	for _, pats := range seeds {
		res, err := compiler.Compile(pats, compiler.DefaultOptions())
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Config.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), false)
		f.Add(buf.Bytes(), true)
	}
	input := []byte("abcab{3}c xyhdrz get /abcdefgh 0123aaaaab")
	f.Fuzz(func(t *testing.T, data []byte, streaming bool) {
		cfg, err := hwconf.Read(bytes.NewReader(data))
		if err != nil {
			return // rejected images are the expected failure mode
		}
		// The pattern↔tile provenance decoder must stay in bounds on any
		// Validate'd image: spans reference real machines and tiles, no
		// STE resolves outside its machine, and per-tile totals never
		// exceed the machine's state count.
		idx := cfg.ProvenanceIndex()
		for mi := range cfg.Machines {
			m := &cfg.Machines[mi]
			total := 0
			for tile, n := range idx.MachineTileSTEs(mi) {
				if tile < 0 || tile >= len(cfg.Tiles) {
					t.Fatalf("machine %d provenance references tile %d of %d", mi, tile, len(cfg.Tiles))
				}
				if n <= 0 {
					t.Fatalf("machine %d tile %d has non-positive STE count %d", mi, tile, n)
				}
				total += n
			}
			if total > len(m.STEs) {
				t.Fatalf("machine %d provenance covers %d STEs, machine has %d", mi, total, len(m.STEs))
			}
			for q := -1; q <= len(m.STEs); q++ {
				tile, ok := idx.STETile(mi, q)
				if !ok {
					continue
				}
				if tile < 0 || tile >= len(cfg.Tiles) {
					t.Fatalf("STETile(%d,%d) = %d out of %d tiles", mi, q, tile, len(cfg.Tiles))
				}
				if q < 0 || q >= len(m.STEs) {
					t.Fatalf("STETile(%d,%d) resolved an out-of-range STE", mi, q)
				}
			}
		}
		sys, err := NewBVAPSystem(cfg, streaming)
		if err != nil {
			return
		}
		sys.RecordMatchEnds(true)
		sink := &boundsCheckSink{t: t, tiles: len(cfg.Tiles), machines: len(cfg.Machines)}
		sys.SetSink(sink)
		sys.Run(input)
		st := sys.Finish()
		if st.Symbols != uint64(len(input)) {
			t.Fatalf("ran %d symbols, want %d", st.Symbols, len(input))
		}
		if st.TotalEnergyPJ() < 0 {
			t.Fatalf("negative energy %v", st.TotalEnergyPJ())
		}
	})
}

// boundsCheckSink is a ProvenanceSink asserting every provenance-resolved
// event stays within the image's machine and tile ranges, no matter how the
// image bytes were mangled.
type boundsCheckSink struct {
	t        *testing.T
	tiles    int
	machines int
}

func (k *boundsCheckSink) StageEnergy(stage Stage, pj float64) {
	if stage < 0 || stage >= NumStages {
		k.t.Fatalf("stage %d out of range", stage)
	}
}
func (k *boundsCheckSink) StallCycles(array, cycles int) {
	if array < 0 || cycles < 0 {
		k.t.Fatalf("stall event array=%d cycles=%d", array, cycles)
	}
}
func (k *boundsCheckSink) StepDone(cycles int, active float64, matches int) {
	if cycles < 1 || active < 0 || matches < 0 {
		k.t.Fatalf("step event cycles=%d active=%v matches=%d", cycles, active, matches)
	}
}
func (k *boundsCheckSink) MachineStageEnergy(m int, stage Stage, pj float64) {
	if m < 0 || m >= k.machines || stage < 0 || stage >= NumStages {
		k.t.Fatalf("machine stage event m=%d stage=%d", m, stage)
	}
}
func (k *boundsCheckSink) MachineActivity(m, active int, ids []int) {
	if m < 0 || m >= k.machines || active < 0 || len(ids) != active {
		k.t.Fatalf("machine activity event m=%d active=%d ids=%d", m, active, len(ids))
	}
}
func (k *boundsCheckSink) TileActivity(tile int, active float64) {
	if tile < 0 || tile >= k.tiles || active < 0 {
		k.t.Fatalf("tile activity event tile=%d active=%v", tile, active)
	}
}
func (k *boundsCheckSink) Stall(cause StallCause, cycles int) {
	if cause < 0 || cause >= NumStallCauses || cycles < 0 {
		k.t.Fatalf("stall event cause=%d cycles=%d", cause, cycles)
	}
}
