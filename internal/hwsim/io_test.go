package hwsim

import "testing"

func TestIOSteadyStateNoStalls(t *testing.T) {
	// Four arrays per bank is the paper's sizing: aggregate demand (four
	// symbols/cycle) equals the refill bandwidth, so a steady stream
	// never starves.
	io := newIOModel(4)
	pending := make([]bool, 4)
	reports := make([]int, 4)
	for cycle := 0; cycle < 10000; cycle++ {
		for a := range pending {
			pending[a] = true
		}
		retries := 0
		for io.tick(pending, reports) > 0 {
			retries++
			if retries > 100 {
				t.Fatalf("cycle %d: livelock", cycle)
			}
		}
	}
	if io.inputStalls > 200 {
		t.Fatalf("steady state input stalls = %d", io.inputStalls)
	}
	if io.outputStalls != 0 {
		t.Fatalf("output stalls without reports = %d", io.outputStalls)
	}
}

func TestIOMultiBankScaling(t *testing.T) {
	// Ten arrays span three banks; per-bank bandwidth keeps the fleet
	// fed (this is why §6 sizes banks at four arrays).
	io := newIOModel(10)
	if io.banks != 3 {
		t.Fatalf("banks = %d, want 3", io.banks)
	}
	pending := make([]bool, 10)
	reports := make([]int, 10)
	stallCycles := 0
	for cycle := 0; cycle < 5000; cycle++ {
		for a := range pending {
			pending[a] = true
		}
		for io.tick(pending, reports) > 0 {
			stallCycles++
			if stallCycles > 5000 {
				t.Fatal("starvation in multi-bank configuration")
			}
		}
	}
	if stallCycles > 500 {
		t.Fatalf("multi-bank stall cycles = %d", stallCycles)
	}
}

func TestIOOutputCongestion(t *testing.T) {
	// A pathological 100% match rate must back-pressure through the
	// 2-entry array FIFO and the shared bus.
	io := newIOModel(4)
	pending := make([]bool, 4)
	reports := []int{1, 1, 1, 1}
	congestion := uint64(0)
	for cycle := 0; cycle < 2000; cycle++ {
		for a := range pending {
			pending[a] = true
		}
		retries := 0
		for io.tick(pending, reports) > 0 {
			retries++
			if retries > 50 {
				break
			}
		}
		congestion = io.outputStalls
	}
	if congestion == 0 {
		t.Fatal("100% match rate produced no output congestion")
	}
}

func TestIOIdleRefills(t *testing.T) {
	io := newIOModel(2)
	pending := make([]bool, 2)
	reports := make([]int, 2)
	// Drain the FIFOs.
	for i := 0; i < 6; i++ {
		for a := range pending {
			pending[a] = true
		}
		io.tick(pending, reports)
	}
	before := io.arrayIn[0] + io.arrayIn[1]
	io.idle(8, pending)
	after := io.arrayIn[0] + io.arrayIn[1]
	if after < before {
		t.Fatalf("idle cycles drained the FIFOs: %d -> %d", before, after)
	}
	// FIFOs only request data below the 4-entry threshold (§6), so idle
	// refills park them above it, not necessarily full.
	for a, level := range io.arrayIn {
		if level <= arrayInThreshold {
			t.Fatalf("array %d still below threshold after idle: %d", a, level)
		}
	}
}

func TestIOBufferEnergyAccumulates(t *testing.T) {
	io := newIOModel(1)
	pending := []bool{true}
	io.tick(pending, []int{0})
	if io.bufferPJ <= 0 {
		t.Fatal("no buffer energy charged")
	}
}

func TestBVAPSystemReportsIOStats(t *testing.T) {
	res := compileFor(t, []string{"needle"})
	sys, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 4096)
	copy(input, "needle")
	sys.Run(input)
	st := sys.Finish()
	if st.IOEnergyPJ <= 0 {
		t.Fatal("I/O energy missing from stats")
	}
	// A quiet stream on one array must not stall on I/O.
	if st.InputStallCycles > 10 {
		t.Fatalf("input stalls = %d", st.InputStallCycles)
	}
}

func TestStreamingSkipsIOModel(t *testing.T) {
	res := compileFor(t, []string{"needle"})
	sys, err := NewBVAPSystem(res.Config, true)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(make([]byte, 1000))
	st := sys.Finish()
	if st.IOEnergyPJ != 0 {
		t.Fatal("BVAP-S should bypass the bank I/O hierarchy")
	}
}
