package hwsim

import (
	"fmt"

	"bvap/internal/hwconf"
	"bvap/internal/isa"
	"bvap/internal/nbva"
)

// MachineFromConfig reconstructs an executable AH-NBVA from its serialized
// form. The configuration is the authoritative hardware image: simulating
// the reconstructed machine (rather than the compiler's in-memory one)
// means the JSON round trip is on the tested path.
func MachineFromConfig(m *hwconf.Machine) (*nbva.AHNBVA, error) {
	if m.Unsupported != "" {
		return nil, fmt.Errorf("hwsim: machine %q is unsupported: %s", m.Regex, m.Unsupported)
	}
	ah := &nbva.AHNBVA{Anchored: m.Anchored}
	for i, s := range m.STEs {
		cls, err := hwconf.DecodeClass(s.Class)
		if err != nil {
			return nil, fmt.Errorf("hwsim: machine %q STE %d: %v", m.Regex, i, err)
		}
		st := nbva.AHState{Class: cls}
		if s.IsBV {
			in, err := isa.Decode(s.Instruction)
			if err != nil {
				return nil, fmt.Errorf("hwsim: machine %q STE %d: %v", m.Regex, i, err)
			}
			if s.WidthBits < 1 || s.WidthBits > isa.PhysicalBVBits {
				return nil, fmt.Errorf("hwsim: machine %q STE %d: BV width %d out of range [1,%d]",
					m.Regex, i, s.WidthBits, isa.PhysicalBVBits)
			}
			st.Width = s.WidthBits
			switch in.Swap {
			case isa.SwapSet1:
				st.Action = nbva.ActSet1
			case isa.SwapCopy:
				st.Action = nbva.ActCopy
			case isa.SwapShift:
				st.Action = nbva.ActShift
			default:
				return nil, fmt.Errorf("hwsim: machine %q STE %d: BV without swap action", m.Regex, i)
			}
			if lo, hi, ok := in.ReadSpan(); ok {
				if hi > st.Width {
					hi = st.Width // virtual words round widths up
				}
				if lo > st.Width {
					// A clamped upper end is the virtual-word overhang;
					// a lower end past the width would read outside the
					// vector (and panic at Eval time), so reject the
					// image instead of building the machine.
					return nil, fmt.Errorf("hwsim: machine %q STE %d: read pointer %d past BV width %d",
						m.Regex, i, lo, st.Width)
				}
				if lo == hi {
					st.Read = nbva.ReadBit(lo)
				} else {
					st.Read = nbva.ReadRange(lo, hi)
				}
			} else {
				st.Read = nbva.NoRead()
			}
		} else {
			st.Read = nbva.NoRead()
		}
		ah.States = append(ah.States, st)
		ah.Origin = append(ah.Origin, i)
	}
	for _, e := range m.Edges {
		ah.Edges = append(ah.Edges, nbva.AHEdge{From: e.From, To: e.To, Gated: e.Gated})
	}
	ah.Initial = append(ah.Initial, m.Initial...)
	ah.Finals = append(ah.Finals, m.Finals...)
	ah.Finalize()
	return ah, nil
}

// MaxWords returns the largest virtual word count among a machine's BV-STEs
// (this sets the machine's Swap-step latency and therefore its stall
// contribution).
func MaxWords(m *hwconf.Machine) int {
	max := 0
	for _, s := range m.STEs {
		if !s.IsBV {
			continue
		}
		in, err := isa.Decode(s.Instruction)
		if err != nil {
			continue
		}
		if in.Words > max {
			max = in.Words
		}
	}
	return max
}
