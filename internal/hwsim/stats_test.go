package hwsim

import (
	"math"
	"strings"
	"testing"

	"bvap/internal/archmodel"
)

// TestStatsZeroValueDerived is the satellite audit test: every derived
// metric must return 0 — never NaN or ±Inf — on empty or degenerate runs
// (no symbols, no cycles, no area), for every architecture.
func TestStatsZeroValueDerived(t *testing.T) {
	arches := []archmodel.Arch{
		archmodel.BVAP, archmodel.BVAPS, archmodel.CAMA,
		archmodel.CA, archmodel.EAP, archmodel.CNT,
	}
	cases := []struct {
		name string
		st   Stats
	}{
		{"zero value", Stats{}},
		{"symbols without cycles", Stats{Symbols: 100}},
		{"cycles without symbols", Stats{Cycles: 100}},
		{"energy without symbols", Stats{MatchEnergyPJ: 5, WireEnergyPJ: 1}},
	}
	for _, arch := range arches {
		for _, tc := range cases {
			st := tc.st
			st.Arch = arch
			for name, v := range map[string]float64{
				"EnergyPerSymbolPJ": st.EnergyPerSymbolPJ(),
				"ThroughputGbps":    st.ThroughputGbps(),
				"AreaMm2":           st.AreaMm2(),
				"PowerW":            st.PowerW(),
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%v/%s: %s = %v", arch, tc.name, name, v)
				}
			}
			if st.Symbols == 0 && st.EnergyPerSymbolPJ() != 0 {
				t.Errorf("%v/%s: EnergyPerSymbolPJ = %v, want 0", arch, tc.name, st.EnergyPerSymbolPJ())
			}
			if st.Cycles == 0 && (st.ThroughputGbps() != 0 || st.PowerW() != 0) {
				t.Errorf("%v/%s: throughput/power nonzero on zero cycles", arch, tc.name)
			}
		}
	}
}

// TestBreakdownGolden pins the Breakdown table layout: the zero case and a
// populated case with exact shares.
func TestBreakdownGolden(t *testing.T) {
	var empty Stats
	if got := empty.Breakdown(); got != "no energy recorded\n" {
		t.Fatalf("empty breakdown = %q", got)
	}

	st := Stats{
		MatchEnergyPJ:      60,
		TransitionEnergyPJ: 25,
		BVMEnergyPJ:        10,
		LeakageEnergyPJ:    5,
	}
	want := strings.Join([]string{
		"component             energy (pJ)   share",
		"state matching               60.0   60.0%",
		"state transition             25.0   25.0%",
		"bit-vector module            10.0   10.0%",
		"leakage                       5.0    5.0%",
		"total                       100.0  100.0%",
		"",
	}, "\n")
	if got := st.Breakdown(); got != want {
		t.Errorf("breakdown mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Zero components are elided.
	if strings.Contains(st.Breakdown(), "counter elements") {
		t.Error("zero component rendered")
	}
}
