// Package hwsim is the cycle-accurate simulator of the BVAP evaluation (§8):
// it executes compiled configurations on a model of the BVAP hardware
// (tiles, arrays, BVM Read/Swap timing, dynamic stall control, event-driven
// BVM clocking, the BVAP-S streaming mode) and on the baseline architectures
// CAMA, CA, eAP and CNT, accumulating per-event energy from the Table 4
// circuit models and cycle counts from the clock model.
//
// "The simulator emulates hardware behavior cycle by cycle with the actual
// dataflow" — the dataflow here is the real AH-NBVA execution; energy and
// time are attributed per event as the run proceeds.
package hwsim

import (
	"fmt"

	"bvap/internal/archmodel"
)

// Stats accumulates the raw observables of one simulation run.
type Stats struct {
	Arch    archmodel.Arch
	Symbols uint64
	// Cycles is the system-clock cycle count including BVM stalls (the
	// maximum over arrays, which all broadcast the same stream).
	Cycles      uint64
	StallCycles uint64
	Matches     uint64

	// Energy breakdown in picojoules.
	MatchEnergyPJ      float64
	TransitionEnergyPJ float64
	BVMEnergyPJ        float64
	CounterEnergyPJ    float64
	WireEnergyPJ       float64
	IOEnergyPJ         float64
	LeakageEnergyPJ    float64
	// ParityEnergyPJ is the per-BV parity protection surcharge (fault
	// detection, enabled via SetFaults with a parity plan): one parity bit
	// per 8-bit BV word adds 12.5% to every BV storage access. Zero on
	// unprotected runs.
	ParityEnergyPJ float64

	// I/O hierarchy stall breakdown (§6): input starvation and report
	// congestion cycles, included in Cycles.
	InputStallCycles  uint64
	OutputStallCycles uint64

	Tiles int
	// TilesF is the (possibly fractional) tile count: the §8
	// micro-benchmarks size the memory to a single regex instead of
	// whole 256-STE tiles.
	TilesF  float64
	AreaUm2 float64
}

// TotalEnergyPJ sums the breakdown.
func (s *Stats) TotalEnergyPJ() float64 {
	return s.MatchEnergyPJ + s.TransitionEnergyPJ + s.BVMEnergyPJ +
		s.CounterEnergyPJ + s.WireEnergyPJ + s.IOEnergyPJ + s.LeakageEnergyPJ +
		s.ParityEnergyPJ
}

// EnergyPerSymbolPJ is the paper's primary efficiency metric (pJ/byte; the
// figures report nJ/byte = this / 1000).
func (s *Stats) EnergyPerSymbolPJ() float64 {
	if s.Symbols == 0 {
		return 0
	}
	return s.TotalEnergyPJ() / float64(s.Symbols)
}

// ThroughputGbps is symbols × 8 bits over wall-clock time at the
// architecture's symbol clock.
func (s *Stats) ThroughputGbps() float64 {
	if s.Cycles == 0 {
		return 0
	}
	perCycleSymbols := float64(s.Symbols) / float64(s.Cycles)
	return s.Arch.SymbolClockGHz() * perCycleSymbols * 8
}

// AreaMm2 converts the accumulated area to mm².
func (s *Stats) AreaMm2() float64 { return s.AreaUm2 / 1e6 }

// PowerW is average power: energy over wall-clock time.
func (s *Stats) PowerW() float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / (s.Arch.SymbolClockGHz() * 1e9)
	return s.TotalEnergyPJ() * 1e-12 / seconds
}

func (s *Stats) String() string {
	return fmt.Sprintf("%s: %d symbols, %d cycles, %d matches, %.2f pJ/sym, %.3f mm², %.2f Gbps",
		s.Arch, s.Symbols, s.Cycles, s.Matches, s.EnergyPerSymbolPJ(), s.AreaMm2(), s.ThroughputGbps())
}

// finalizeArea fills the area fields from the tile count: tiles at the
// architecture's tile cost plus a 5% hierarchy overhead for the array and
// bank I/O buffers, controllers and wiring (§6).
func (s *Stats) finalizeArea(tiles int) { s.finalizeAreaF(float64(tiles)) }

// finalizeAreaF is finalizeArea for fractional (custom-sized) tiles.
func (s *Stats) finalizeAreaF(tilesF float64) {
	s.TilesF = tilesF
	s.Tiles = int(tilesF)
	if float64(s.Tiles) < tilesF {
		s.Tiles++
	}
	s.AreaUm2 = tilesF * s.Arch.Tile().AreaUm2 * 1.05
}

// SetAreaUm2 overrides the computed area (the micro-benchmarks size the
// BVAP tile's BVM portion by the BVs actually used).
func (s *Stats) SetAreaUm2(area float64) { s.AreaUm2 = area }

// Breakdown renders the per-component energy split as an aligned table —
// the view a hardware evaluation section reports alongside the totals.
func (s *Stats) Breakdown() string {
	total := s.TotalEnergyPJ()
	if total == 0 {
		return "no energy recorded\n"
	}
	rows := []struct {
		name string
		pj   float64
	}{
		{"state matching", s.MatchEnergyPJ},
		{"state transition", s.TransitionEnergyPJ},
		{"bit-vector module", s.BVMEnergyPJ},
		{"counter elements", s.CounterEnergyPJ},
		{"global wires", s.WireEnergyPJ},
		{"I/O buffers", s.IOEnergyPJ},
		{"BV parity", s.ParityEnergyPJ},
		{"leakage", s.LeakageEnergyPJ},
	}
	out := fmt.Sprintf("%-18s %14s %7s\n", "component", "energy (pJ)", "share")
	for _, r := range rows {
		if r.pj == 0 {
			continue
		}
		out += fmt.Sprintf("%-18s %14.1f %6.1f%%\n", r.name, r.pj, r.pj/total*100)
	}
	out += fmt.Sprintf("%-18s %14.1f %6.1f%%\n", "total", total, 100.0)
	return out
}

// addLeakage charges tile leakage for the whole run.
func (s *Stats) addLeakage() {
	perTilePerCycle := s.Arch.LeakageEnergyPJ(s.Arch.SymbolClockGHz())
	s.LeakageEnergyPJ += perTilePerCycle * s.TilesF * float64(s.Cycles)
}
