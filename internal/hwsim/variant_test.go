package hwsim

import (
	"testing"

	"bvap/internal/archmodel"
)

func runVariant(t *testing.T, v Variant, input []byte) *Stats {
	t.Helper()
	res := compileFor(t, []string{"attack.{200}end", "x{64}y"})
	sys, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetVariant(v)
	sys.Run(input)
	return sys.Finish()
}

func TestVariantDefaultsMatchPlainSystem(t *testing.T) {
	input := randomInput(41, 4000, "atckendxy.")
	base := runVariant(t, DefaultVariant(), input)

	res := compileFor(t, []string{"attack.{200}end", "x{64}y"})
	plain, err := NewBVAPSystem(res.Config, false)
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(input)
	ps := plain.Finish()
	if base.TotalEnergyPJ() != ps.TotalEnergyPJ() || base.Cycles != ps.Cycles {
		t.Fatalf("default variant diverges from plain system: %v vs %v",
			base.TotalEnergyPJ(), ps.TotalEnergyPJ())
	}
}

func TestVariantNaivePEArea(t *testing.T) {
	input := randomInput(42, 2000, "atckendxy.")
	base := runVariant(t, DefaultVariant(), input)
	naive := DefaultVariant()
	naive.NaivePE = true
	ns := runVariant(t, naive, input)
	wantDelta := (archmodel.NaivePEAreaUm2() - archmodel.BVMAreaUm2) * 1.05
	got := ns.AreaUm2 - base.AreaUm2
	if got < wantDelta*0.9 || got > wantDelta*1.1*2 {
		t.Fatalf("naive PE area delta = %.0f, want ≈%.0f per tile", got, wantDelta)
	}
	// Matches are semantics-independent of the variant.
	if ns.Matches != base.Matches {
		t.Fatal("variant changed match results")
	}
}

func TestVariantSerialRoutingStalls(t *testing.T) {
	input := randomInput(43, 6000, "xy")
	serial := DefaultVariant()
	serial.Routing = archmodel.RoutingSerial
	ss := runVariant(t, serial, input)
	base := runVariant(t, DefaultVariant(), input)
	if ss.StallCycles <= base.StallCycles {
		t.Fatalf("serial stalls %d ≤ semi-parallel %d", ss.StallCycles, base.StallCycles)
	}
	parallel := DefaultVariant()
	parallel.Routing = archmodel.RoutingParallel
	pps := runVariant(t, parallel, input)
	if pps.StallCycles >= base.StallCycles {
		t.Fatalf("parallel stalls %d ≥ semi-parallel %d", pps.StallCycles, base.StallCycles)
	}
}

func TestVariantAlwaysOnBVM(t *testing.T) {
	// A workload that rarely activates the BVM: always-on clocking must
	// burn idle-phase energy and stall every symbol.
	input := randomInput(44, 3000, "zzzzzzzq")
	always := DefaultVariant()
	always.EventDriven = false
	as := runVariant(t, always, input)
	base := runVariant(t, DefaultVariant(), input)
	if as.BVMEnergyPJ <= base.BVMEnergyPJ {
		t.Fatalf("always-on BVM energy %.1f ≤ event-driven %.1f", as.BVMEnergyPJ, base.BVMEnergyPJ)
	}
	if as.Cycles <= base.Cycles {
		t.Fatalf("always-on cycles %d ≤ event-driven %d", as.Cycles, base.Cycles)
	}
}

func TestVariantFullWordsSlower(t *testing.T) {
	// A small-bound pattern (2-word virtual BV) loses its latency edge
	// when virtual sizing is disabled.
	res := compileFor(t, []string{"a{16}b"})
	input := randomInput(45, 6000, "ab")
	run := func(v Variant) *Stats {
		sys, err := NewBVAPSystem(res.Config, false)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetVariant(v)
		sys.Run(input)
		return sys.Finish()
	}
	base := run(DefaultVariant())
	full := DefaultVariant()
	full.VirtualSizing = false
	fs := run(full)
	if fs.StallCycles <= base.StallCycles {
		t.Fatalf("full-words stalls %d ≤ virtual-sized %d", fs.StallCycles, base.StallCycles)
	}
}
