package hwsim

// Per-stage instrumentation of the simulated pipeline. The evaluation's
// attribution question — which stage (state match, state transition, BVM
// read/swap, MFCB routing, I/O buffering...) consumes which share of the
// energy and cycles — is answered by streaming per-step events into a Sink
// instead of only reading the terminal Stats aggregate.
//
// The contract is zero overhead when disabled: every emission site guards
// on a single nil check, and the simulators allocate nothing extra on the
// Step hot path when no sink is attached (pinned by
// BenchmarkTelemetryOverhead at the repository root).

import (
	"fmt"
	"strconv"

	"bvap/internal/telemetry"
)

// Stage identifies one pipeline stage of the modeled hardware for energy
// attribution. The stages partition Stats' energy breakdown exactly: the
// per-stage energies a Sink observes sum to Stats.TotalEnergyPJ().
type Stage int

const (
	// StageMatch is the state-matching circuit (CAM / SRAM rows).
	StageMatch Stage = iota
	// StageTransition is the state-transition crossbar (RCB or FCB).
	StageTransition
	// StageBVMRead is the Bit Vector Module's Read step.
	StageBVMRead
	// StageBVMSwap is the BVM's Swap step (vector transform + writeback).
	StageBVMSwap
	// StageBVMReset charges bit-vector resets on BV deactivation.
	StageBVMReset
	// StageBVMIdle is the idle BVM phase clocked in always-on modes
	// (BVAP-S, or the event-driven-clocking ablation).
	StageBVMIdle
	// StageRouting is the MFCB routing overhead of the Swap step beyond
	// the semi-parallel baseline (serial/parallel ablations).
	StageRouting
	// StageWire is the global wire energy.
	StageWire
	// StageCounter is the counter-element energy (CNT baseline only).
	StageCounter
	// StageIOBuffer is the bank/array input and report buffering energy.
	StageIOBuffer
	// StageLeakage is leakage over the run's cycle count.
	StageLeakage
	// StageParity is the per-BV parity protection surcharge (fault
	// detection; zero on unprotected runs).
	StageParity

	// NumStages is the number of attribution stages.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageMatch:
		return "match"
	case StageTransition:
		return "transition"
	case StageBVMRead:
		return "bvm_read"
	case StageBVMSwap:
		return "bvm_swap"
	case StageBVMReset:
		return "bvm_reset"
	case StageBVMIdle:
		return "bvm_idle"
	case StageRouting:
		return "mfcb_routing"
	case StageWire:
		return "wire"
	case StageCounter:
		return "counter"
	case StageIOBuffer:
		return "io_buffer"
	case StageLeakage:
		return "leakage"
	case StageParity:
		return "parity"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Sink observes per-step simulation events. Implementations must be cheap:
// the simulators call into the sink on every symbol of an instrumented
// run. A nil Sink disables instrumentation entirely.
//
// Sinks are driven from the simulator's goroutine only; they do not need
// to be safe for concurrent use by the simulator (TelemetrySink's backing
// metrics are nevertheless atomically updated, so concurrent *readers* —
// an expvar or pprof HTTP handler — are safe).
type Sink interface {
	// StageEnergy attributes pj picojoules to one pipeline stage. Called
	// zero or more times per Step, plus once per terminal stage
	// (io_buffer, leakage) from Finish.
	StageEnergy(stage Stage, pj float64)
	// StallCycles reports array's stall cycles for the current step
	// (zero included, so stall histograms have a denominator).
	StallCycles(array int, cycles int)
	// StepDone closes one symbol's accounting: the step's cycle cost
	// (1 + stalls), the active-state occupancy across machines, and the
	// number of pattern matches that ended at this symbol.
	StepDone(cycles int, activeStates float64, matches int)
}

// StallCause classifies why the pipeline lost cycles on a step.
type StallCause int

const (
	// StallBVM counts Global-Controller stalls for the BVM phase (§6):
	// whole-system cycles, set by the slowest array.
	StallBVM StallCause = iota
	// StallIOInput counts input-FIFO starvation, in array-cycles (several
	// arrays can starve on the same system cycle).
	StallIOInput
	// StallIOOutput counts report-path congestion, in array-cycles.
	StallIOOutput

	// NumStallCauses is the number of stall causes.
	NumStallCauses
)

func (c StallCause) String() string {
	switch c {
	case StallBVM:
		return "bvm"
	case StallIOInput:
		return "io_input"
	case StallIOOutput:
		return "io_output"
	}
	return fmt.Sprintf("StallCause(%d)", int(c))
}

// ProvenanceSink is an optional extension of Sink carrying the per-machine
// and per-tile provenance the activity profiler needs: which machine (and
// thereby which source pattern) and which tile each event belongs to.
// SetSink detects the extension with a one-time type assertion, so the
// per-step cost is the same single nil check as the base interface; the
// extra per-machine emissions run only when the attached sink implements
// this interface.
//
// The extended events carry *weights*, not an exact energy partition: the
// per-machine stage energies sum to the corresponding Sink.StageEnergy
// totals only up to float association error. Exact conservation is the
// attribution layer's job (profile.Attribute), which partitions the
// terminal Stats directly.
type ProvenanceSink interface {
	Sink
	// MachineStageEnergy attributes pj picojoules of one stage to machine
	// m (the config/machine index, which equals the source-pattern index).
	MachineStageEnergy(m int, stage Stage, pj float64)
	// MachineActivity reports machine m's post-step active-state count
	// and the ids of the active states. ids is the simulator's scratch
	// buffer: valid only for the duration of the call, in the runner's
	// deterministic commit order. It may be nil when the machine is idle.
	MachineActivity(m int, active int, ids []int)
	// TileActivity reports tile t's active-STE occupancy for this step
	// (fractional: machines spanning several tiles split their activity by
	// STE share).
	TileActivity(t int, active float64)
	// Stall reports this step's lost cycles by cause. StallBVM is in
	// system cycles; the I/O causes are in array-cycles (see StallCause).
	Stall(cause StallCause, cycles int)
}

// FanOut combines sinks into one: every event is forwarded to each member
// in order. Nil members are dropped; with zero non-nil members FanOut
// returns nil (= instrumentation off), and a single member is returned
// unwrapped. When at least one member implements ProvenanceSink the
// combined sink does too, forwarding the extended events to the members
// that accept them.
func FanOut(sinks ...Sink) Sink {
	var base []Sink
	var prov []ProvenanceSink
	for _, k := range sinks {
		if k == nil {
			continue
		}
		base = append(base, k)
		if pk, ok := k.(ProvenanceSink); ok {
			prov = append(prov, pk)
		}
	}
	switch {
	case len(base) == 0:
		return nil
	case len(base) == 1:
		return base[0]
	case len(prov) == 0:
		return &multiSink{sinks: base}
	}
	return &provMultiSink{multiSink{sinks: base}, prov}
}

type multiSink struct{ sinks []Sink }

func (m *multiSink) StageEnergy(stage Stage, pj float64) {
	for _, k := range m.sinks {
		k.StageEnergy(stage, pj)
	}
}

func (m *multiSink) StallCycles(array int, cycles int) {
	for _, k := range m.sinks {
		k.StallCycles(array, cycles)
	}
}

func (m *multiSink) StepDone(cycles int, activeStates float64, matches int) {
	for _, k := range m.sinks {
		k.StepDone(cycles, activeStates, matches)
	}
}

type provMultiSink struct {
	multiSink
	prov []ProvenanceSink
}

func (m *provMultiSink) MachineStageEnergy(mi int, stage Stage, pj float64) {
	for _, k := range m.prov {
		k.MachineStageEnergy(mi, stage, pj)
	}
}

func (m *provMultiSink) MachineActivity(mi int, active int, ids []int) {
	for _, k := range m.prov {
		k.MachineActivity(mi, active, ids)
	}
}

func (m *provMultiSink) TileActivity(t int, active float64) {
	for _, k := range m.prov {
		k.TileActivity(t, active)
	}
}

func (m *provMultiSink) Stall(cause StallCause, cycles int) {
	for _, k := range m.prov {
		k.Stall(cause, cycles)
	}
}

// Metric names exposed by TelemetrySink.
const (
	MetricStageEnergy  = "bvap_stage_energy_picojoules_total"
	MetricStallCycles  = "bvap_stall_cycles"
	MetricSymbols      = "bvap_sim_symbols_total"
	MetricCycles       = "bvap_sim_cycles_total"
	MetricMatches      = "bvap_sim_matches_total"
	MetricActiveStates = "bvap_sim_active_states"
	MetricOccupancy    = "bvap_sim_active_states_distribution"
)

// TelemetrySink adapts a telemetry.Registry (and optionally a Tracer) to
// the Sink interface: per-stage energy float counters, per-array stall
// histograms, step/cycle/match counters, an active-state occupancy gauge
// and distribution, and — when a tracer is attached — a per-cycle Chrome
// counter track of active-state occupancy on a virtual (cycle-number) time
// axis.
type TelemetrySink struct {
	stages [NumStages]*telemetry.FloatCounter

	stallVec *telemetry.HistogramVec
	stalls   []*telemetry.Histogram // resolved per array index

	symbols   *telemetry.Counter
	cycles    *telemetry.Counter
	matches   *telemetry.Counter
	active    *telemetry.Gauge
	occupancy *telemetry.Histogram

	tracer      *telemetry.Tracer
	sampleEvery uint64
	steps       uint64
	cycleClock  uint64
}

// NewTelemetrySink registers the simulator metric families on reg and
// returns a sink feeding them.
func NewTelemetrySink(reg *telemetry.Registry) *TelemetrySink {
	k := &TelemetrySink{
		stallVec: reg.HistogramVec(MetricStallCycles,
			"per-step BVM stall cycles by array", telemetry.DefaultStallBuckets, "array"),
		symbols: reg.Counter(MetricSymbols, "input symbols processed"),
		cycles:  reg.Counter(MetricCycles, "system-clock cycles including stalls"),
		matches: reg.Counter(MetricMatches, "pattern matches reported"),
		active:  reg.Gauge(MetricActiveStates, "active NFA states after the last step"),
		occupancy: reg.Histogram(MetricOccupancy,
			"distribution of per-step active-state occupancy", telemetry.DefaultStallBuckets),
	}
	stageVec := reg.FloatCounterVec(MetricStageEnergy,
		"energy attributed to each pipeline stage, in picojoules", "stage")
	for s := Stage(0); s < NumStages; s++ {
		k.stages[s] = stageVec.With(s.String())
	}
	return k
}

// TraceOccupancy attaches a tracer that receives a per-cycle counter track
// of active-state occupancy, sampled every `every` steps (every < 1 is
// treated as 1). The track's time axis is the simulated cycle count.
func (k *TelemetrySink) TraceOccupancy(tr *telemetry.Tracer, every int) {
	if every < 1 {
		every = 1
	}
	k.tracer = tr
	k.sampleEvery = uint64(every)
}

// StageEnergy implements Sink.
func (k *TelemetrySink) StageEnergy(stage Stage, pj float64) {
	if stage < 0 || stage >= NumStages {
		return
	}
	k.stages[stage].Add(pj)
}

// StageEnergyPJ returns the energy attributed to a stage so far.
func (k *TelemetrySink) StageEnergyPJ(stage Stage) float64 {
	if stage < 0 || stage >= NumStages {
		return 0
	}
	return k.stages[stage].Value()
}

// TotalStageEnergyPJ sums the per-stage energy counters; on a finished run
// it equals Stats.TotalEnergyPJ() up to float association error.
func (k *TelemetrySink) TotalStageEnergyPJ() float64 {
	total := 0.0
	for s := Stage(0); s < NumStages; s++ {
		total += k.stages[s].Value()
	}
	return total
}

// StallCycles implements Sink.
func (k *TelemetrySink) StallCycles(array int, cycles int) {
	for array >= len(k.stalls) {
		k.stalls = append(k.stalls, k.stallVec.With(strconv.Itoa(len(k.stalls))))
	}
	k.stalls[array].Observe(float64(cycles))
}

// StepDone implements Sink.
func (k *TelemetrySink) StepDone(cycles int, activeStates float64, matches int) {
	k.symbols.Inc()
	k.cycles.Add(uint64(cycles))
	if matches > 0 {
		k.matches.Add(uint64(matches))
	}
	k.active.Set(activeStates)
	k.occupancy.Observe(activeStates)
	k.cycleClock += uint64(cycles)
	k.steps++
	if k.tracer != nil && k.steps%k.sampleEvery == 0 {
		k.tracer.CounterAt(float64(k.cycleClock), "active_states",
			map[string]float64{"states": activeStates})
	}
}
