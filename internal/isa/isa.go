// Package isa defines the BVAP Bit Vector Module instruction set (Table 3 of
// the paper). Each BV in a BVM holds one instruction in its instruction
// buffer; the instruction programs
//
//   - the Read-step behaviour: no-read (BV-read defaults to '1'), the exact
//     read r(n) with a 6-bit bit pointer, or one of the three range reads
//     rAll = r(1,K), rHalf = r(1,K/2), rQuarter = r(1,K/4) implemented by
//     OR-ing 8, 4 or 2 bitlines of the 8×8 SRAM array;
//   - the Swap-step action: copy, shift, or set1 (the paper's combination
//     forms r(n)·set1 etc. are a read paired with the set1 swap action);
//   - the virtual BV size, expressed in 8-bit words (1–8), which sets how
//     many Swap cycles the semi-parallel word-serial routing needs.
//
// Instructions encode into a 16-bit word for the configuration format.
package isa

import "fmt"

// PhysicalBVBits is the hardware bit vector width: a 64-bit BV built from an
// 8×8 8T-SRAM array (§5).
const PhysicalBVBits = 64

// WordBits is the MFCB routing width: 8 bits per cycle (two 4-port
// cross-points, §5).
const WordBits = 8

// MaxWords is the number of words in a physical BV.
const MaxWords = PhysicalBVBits / WordBits

// ReadKind selects the Read-step behaviour.
type ReadKind uint8

const (
	// NoRead: the BV performs no read; its BV-read output defaults to 1.
	NoRead ReadKind = iota
	// ReadN is the exact read r(n): BV-read = v[n].
	ReadN
	// ReadAll is rAll = r(1, K): OR of all K bits of the virtual BV.
	ReadAll
	// ReadHalf is rHalf = r(1, K/2).
	ReadHalf
	// ReadQuarter is rQuarter = r(1, K/4).
	ReadQuarter
)

func (k ReadKind) String() string {
	switch k {
	case NoRead:
		return "no-read"
	case ReadN:
		return "r(n)"
	case ReadAll:
		return "rAll"
	case ReadHalf:
		return "rHalf"
	case ReadQuarter:
		return "rQuarter"
	}
	return fmt.Sprintf("ReadKind(%d)", uint8(k))
}

// SwapKind selects the Swap-step action.
type SwapKind uint8

const (
	// SwapNone: the BV does not update in the Swap step (pure readers).
	SwapNone SwapKind = iota
	// SwapCopy: write words back at the read address (v := v_in).
	SwapCopy
	// SwapShift: write words back at address+1 with the last word
	// right-fed by zero (v := shft(v_in)).
	SwapShift
	// SwapSet1: power-gate the array and emit the stored constant
	// [1, 0, …, 0].
	SwapSet1
)

func (k SwapKind) String() string {
	switch k {
	case SwapNone:
		return "none"
	case SwapCopy:
		return "copy"
	case SwapShift:
		return "shift"
	case SwapSet1:
		return "set1"
	}
	return fmt.Sprintf("SwapKind(%d)", uint8(k))
}

// Instruction is one BV instruction (one row of Table 3, with the pointer
// and virtual size fields explicit).
type Instruction struct {
	Read ReadKind
	// Pointer is the 1-based bit position for ReadN (1..64); 0 otherwise.
	Pointer int
	Swap    SwapKind
	// Words is the virtual BV size in 8-bit words (1..8). Smaller virtual
	// BVs cut Swap-step cycles and energy (§5).
	Words int
}

// Validate reports whether the instruction is well formed.
func (in Instruction) Validate() error {
	if in.Words < 1 || in.Words > MaxWords {
		return fmt.Errorf("isa: virtual size %d words out of range [1,%d]", in.Words, MaxWords)
	}
	switch in.Read {
	case ReadN:
		if in.Pointer < 1 || in.Pointer > in.Words*WordBits {
			return fmt.Errorf("isa: r(n) pointer %d out of range [1,%d]", in.Pointer, in.Words*WordBits)
		}
	case NoRead, ReadAll, ReadHalf, ReadQuarter:
		if in.Pointer != 0 {
			return fmt.Errorf("isa: pointer %d set for %v", in.Pointer, in.Read)
		}
	default:
		return fmt.Errorf("isa: unknown read kind %d", in.Read)
	}
	if in.Swap > SwapSet1 {
		return fmt.Errorf("isa: unknown swap kind %d", in.Swap)
	}
	return nil
}

// VirtualBits returns the virtual BV width in bits.
func (in Instruction) VirtualBits() int { return in.Words * WordBits }

// ReadSpan returns the [lo, hi] bit range the Read step inspects, and
// ok=false for NoRead.
func (in Instruction) ReadSpan() (lo, hi int, ok bool) {
	switch in.Read {
	case ReadN:
		return in.Pointer, in.Pointer, true
	case ReadAll:
		return 1, in.VirtualBits(), true
	case ReadHalf:
		return 1, in.VirtualBits() / 2, true
	case ReadQuarter:
		return 1, in.VirtualBits() / 4, true
	default:
		return 0, 0, false
	}
}

// String renders the instruction in the paper's notation, e.g.
// "rHalf·set1/16b" or "r(19)/24b".
func (in Instruction) String() string {
	var s string
	switch {
	case in.Read == NoRead && in.Swap == SwapNone:
		s = "nop"
	case in.Read == NoRead:
		s = in.Swap.String()
	case in.Read == ReadN && in.Swap == SwapNone:
		s = fmt.Sprintf("r(%d)", in.Pointer)
	case in.Read == ReadN:
		s = fmt.Sprintf("r(%d)·%s", in.Pointer, in.Swap)
	case in.Swap == SwapNone:
		s = in.Read.String()
	default:
		s = fmt.Sprintf("%s·%s", in.Read, in.Swap)
	}
	return fmt.Sprintf("%s/%db", s, in.VirtualBits())
}

// Encoding layout of the 16-bit instruction word:
//
//	bits 0..2   read kind
//	bits 3..8   pointer - 1 (6 bits; Fig. 4's "actual 6 bits")
//	bits 9..10  swap kind
//	bits 11..13 words - 1 (3 bits)
//	bits 14..15 reserved, zero
const (
	readShift    = 0
	pointerShift = 3
	swapShift    = 9
	wordsShift   = 11
)

// Encode packs the instruction into its 16-bit configuration word. It
// panics on invalid instructions; validate first when handling user input.
func (in Instruction) Encode() uint16 {
	if err := in.Validate(); err != nil {
		panic(err)
	}
	ptr := 0
	if in.Read == ReadN {
		ptr = in.Pointer - 1
	}
	return uint16(in.Read)<<readShift |
		uint16(ptr)<<pointerShift |
		uint16(in.Swap)<<swapShift |
		uint16(in.Words-1)<<wordsShift
}

// Decode unpacks a 16-bit configuration word.
func Decode(w uint16) (Instruction, error) {
	in := Instruction{
		Read:  ReadKind(w >> readShift & 0x7),
		Swap:  SwapKind(w >> swapShift & 0x3),
		Words: int(w>>wordsShift&0x7) + 1,
	}
	if in.Read == ReadN {
		in.Pointer = int(w>>pointerShift&0x3f) + 1
	}
	if w>>14 != 0 {
		return Instruction{}, fmt.Errorf("isa: reserved bits set in %#04x", w)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// Table3 returns the instruction set as published: every legal combination
// of a read with a swap action, for a given virtual size. It is used by the
// documentation generator and by tests that pin the ISA.
func Table3(words int) []Instruction {
	reads := []struct {
		kind ReadKind
		ptr  int
	}{
		{NoRead, 0}, {ReadN, words * WordBits}, {ReadAll, 0}, {ReadHalf, 0}, {ReadQuarter, 0},
	}
	swaps := []SwapKind{SwapNone, SwapCopy, SwapShift, SwapSet1}
	var out []Instruction
	for _, r := range reads {
		for _, s := range swaps {
			in := Instruction{Read: r.kind, Pointer: r.ptr, Swap: s, Words: words}
			if in.Validate() == nil {
				out = append(out, in)
			}
		}
	}
	return out
}
