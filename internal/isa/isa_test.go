package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Read: NoRead, Swap: SwapNone, Words: 1},
		{Read: NoRead, Swap: SwapCopy, Words: 8},
		{Read: NoRead, Swap: SwapShift, Words: 4},
		{Read: NoRead, Swap: SwapSet1, Words: 1},
		{Read: ReadN, Pointer: 1, Swap: SwapNone, Words: 1},
		{Read: ReadN, Pointer: 64, Swap: SwapSet1, Words: 8},
		{Read: ReadN, Pointer: 19, Swap: SwapCopy, Words: 3},
		{Read: ReadAll, Swap: SwapSet1, Words: 8},
		{Read: ReadHalf, Swap: SwapShift, Words: 4},
		{Read: ReadQuarter, Swap: SwapNone, Words: 2},
	}
	for _, in := range cases {
		w := in.Encode()
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("decode(%v encoded %#04x): %v", in, w, err)
		}
		if out != in {
			t.Fatalf("round trip %v -> %#04x -> %v", in, w, out)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instruction{
		{Read: NoRead, Swap: SwapNone, Words: 0},
		{Read: NoRead, Swap: SwapNone, Words: 9},
		{Read: ReadN, Pointer: 0, Swap: SwapNone, Words: 1},
		{Read: ReadN, Pointer: 9, Swap: SwapNone, Words: 1}, // past virtual size
		{Read: ReadN, Pointer: 65, Swap: SwapNone, Words: 8},
		{Read: ReadAll, Pointer: 3, Swap: SwapNone, Words: 8},
		{Read: ReadKind(7), Swap: SwapNone, Words: 1},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", in)
		}
	}
}

func TestReadSpan(t *testing.T) {
	cases := []struct {
		in     Instruction
		lo, hi int
		ok     bool
	}{
		{Instruction{Read: NoRead, Words: 8}, 0, 0, false},
		{Instruction{Read: ReadN, Pointer: 13, Words: 8}, 13, 13, true},
		{Instruction{Read: ReadAll, Words: 8}, 1, 64, true},
		{Instruction{Read: ReadHalf, Words: 8}, 1, 32, true},
		{Instruction{Read: ReadQuarter, Words: 8}, 1, 16, true},
		{Instruction{Read: ReadAll, Words: 2}, 1, 16, true},
		{Instruction{Read: ReadHalf, Words: 4}, 1, 16, true},
	}
	for _, tc := range cases {
		lo, hi, ok := tc.in.ReadSpan()
		if lo != tc.lo || hi != tc.hi || ok != tc.ok {
			t.Errorf("ReadSpan(%v) = %d,%d,%v; want %d,%d,%v", tc.in, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}

func TestString(t *testing.T) {
	cases := map[string]Instruction{
		"nop/8b":        {Read: NoRead, Swap: SwapNone, Words: 1},
		"shift/64b":     {Read: NoRead, Swap: SwapShift, Words: 8},
		"r(3)/8b":       {Read: ReadN, Pointer: 3, Swap: SwapNone, Words: 1},
		"r(6)·set1/8b":  {Read: ReadN, Pointer: 6, Swap: SwapSet1, Words: 1},
		"rAll·set1/64b": {Read: ReadAll, Swap: SwapSet1, Words: 8},
		"rHalf/32b":     {Read: ReadHalf, Swap: SwapNone, Words: 4},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable3Complete(t *testing.T) {
	// 5 reads × 4 swaps = 20 legal combinations per virtual size.
	set := Table3(8)
	if len(set) != 20 {
		t.Fatalf("Table3 size = %d, want 20", len(set))
	}
	seen := map[uint16]bool{}
	for _, in := range set {
		w := in.Encode()
		if seen[w] {
			t.Fatalf("duplicate encoding %#04x for %v", w, in)
		}
		seen[w] = true
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(w uint16) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		// Valid decodes must re-encode to a word that decodes equal.
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
