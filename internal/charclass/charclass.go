// Package charclass implements character classes over the byte alphabet
// Σ = {0, ..., 255}. A character class is the predicate σ ⊆ Σ that labels
// transitions (and, after the homogeneous Glushkov construction, states) in
// the automata models used throughout this repository.
//
// Classes are represented as 256-bit sets stored in four uint64 words, so
// membership tests, unions, intersections and equality are branch-free and
// allocation-free. The zero value is the empty class.
package charclass

import (
	"fmt"
	"math/bits"
	"strings"
)

// AlphabetSize is the number of symbols in the input alphabet. BVAP, like the
// AP-style processors it extends, processes one 8-bit symbol per cycle.
const AlphabetSize = 256

// Class is a set of byte symbols. It is a value type: all operations return
// new classes and never mutate their receivers.
type Class struct {
	bits [4]uint64
}

// Empty returns the class containing no symbols.
func Empty() Class { return Class{} }

// Any returns the class Σ containing every symbol (the PCRE "." with DOTALL,
// written Σ in the paper).
func Any() Class {
	return Class{bits: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
}

// Single returns the singleton class {b}.
func Single(b byte) Class {
	var c Class
	c.bits[b>>6] = 1 << (b & 63)
	return c
}

// Range returns the class containing every symbol in [lo, hi]. It panics if
// lo > hi, which indicates a parser bug rather than bad user input.
func Range(lo, hi byte) Class {
	if lo > hi {
		panic(fmt.Sprintf("charclass: invalid range %d-%d", lo, hi))
	}
	var c Class
	for b := int(lo); b <= int(hi); b++ {
		c.bits[b>>6] |= 1 << (uint(b) & 63)
	}
	return c
}

// Of returns the class containing exactly the given symbols.
func Of(symbols ...byte) Class {
	var c Class
	for _, b := range symbols {
		c.bits[b>>6] |= 1 << (b & 63)
	}
	return c
}

// FromString returns the class containing every byte of s.
func FromString(s string) Class {
	var c Class
	for i := 0; i < len(s); i++ {
		b := s[i]
		c.bits[b>>6] |= 1 << (b & 63)
	}
	return c
}

// Contains reports whether symbol b is a member of the class.
func (c Class) Contains(b byte) bool {
	return c.bits[b>>6]&(1<<(b&63)) != 0
}

// IsEmpty reports whether the class contains no symbols.
func (c Class) IsEmpty() bool {
	return c.bits[0]|c.bits[1]|c.bits[2]|c.bits[3] == 0
}

// Count returns the number of symbols in the class.
func (c Class) Count() int {
	return bits.OnesCount64(c.bits[0]) + bits.OnesCount64(c.bits[1]) +
		bits.OnesCount64(c.bits[2]) + bits.OnesCount64(c.bits[3])
}

// Union returns c ∪ d.
func (c Class) Union(d Class) Class {
	var r Class
	for i := range r.bits {
		r.bits[i] = c.bits[i] | d.bits[i]
	}
	return r
}

// Intersect returns c ∩ d.
func (c Class) Intersect(d Class) Class {
	var r Class
	for i := range r.bits {
		r.bits[i] = c.bits[i] & d.bits[i]
	}
	return r
}

// Negate returns Σ \ c.
func (c Class) Negate() Class {
	var r Class
	for i := range r.bits {
		r.bits[i] = ^c.bits[i]
	}
	return r
}

// Minus returns c \ d.
func (c Class) Minus(d Class) Class {
	var r Class
	for i := range r.bits {
		r.bits[i] = c.bits[i] &^ d.bits[i]
	}
	return r
}

// Equal reports whether c and d contain the same symbols.
func (c Class) Equal(d Class) bool { return c.bits == d.bits }

// Overlaps reports whether c ∩ d is nonempty.
func (c Class) Overlaps(d Class) bool {
	return c.bits[0]&d.bits[0]|c.bits[1]&d.bits[1]|
		c.bits[2]&d.bits[2]|c.bits[3]&d.bits[3] != 0
}

// Symbols returns the members of the class in ascending order.
func (c Class) Symbols() []byte {
	out := make([]byte, 0, c.Count())
	for w := 0; w < 4; w++ {
		word := c.bits[w]
		for word != 0 {
			i := bits.TrailingZeros64(word)
			out = append(out, byte(w<<6+i))
			word &= word - 1
		}
	}
	return out
}

// Min returns the smallest symbol in the class and ok=false if it is empty.
func (c Class) Min() (b byte, ok bool) {
	for w := 0; w < 4; w++ {
		if c.bits[w] != 0 {
			return byte(w<<6 + bits.TrailingZeros64(c.bits[w])), true
		}
	}
	return 0, false
}

// Hash returns a well-distributed 64-bit hash of the class, suitable for use
// as a map key component when deduplicating classes in the symbol encoder.
func (c Class) Hash() uint64 {
	const m = 0x9e3779b97f4a7c15
	h := uint64(0)
	for _, w := range c.bits {
		h ^= w
		h *= m
		h = bits.RotateLeft64(h, 31)
	}
	return h
}

// Perl-style shorthand classes.
var (
	digit      = Range('0', '9')
	wordClass  = Range('a', 'z').Union(Range('A', 'Z')).Union(digit).Union(Single('_'))
	spaceClass = Of(' ', '\t', '\n', '\v', '\f', '\r')
)

// Digit returns \d.
func Digit() Class { return digit }

// NotDigit returns \D.
func NotDigit() Class { return digit.Negate() }

// Word returns \w.
func Word() Class { return wordClass }

// NotWord returns \W.
func NotWord() Class { return wordClass.Negate() }

// Space returns \s.
func Space() Class { return spaceClass }

// NotSpace returns \S.
func NotSpace() Class { return spaceClass.Negate() }

// FoldCase returns the class closed under ASCII case folding: for every
// letter member, the other-case letter is included too. Rule sets
// (Snort/Suricata in particular) use the PCRE (?i) modifier pervasively;
// the hardware realizes it by widening STE predicates.
func (c Class) FoldCase() Class {
	out := c
	for b := byte('a'); b <= 'z'; b++ {
		if c.Contains(b) {
			out = out.Union(Single(b - 'a' + 'A'))
		}
	}
	for b := byte('A'); b <= 'Z'; b++ {
		if c.Contains(b) {
			out = out.Union(Single(b - 'A' + 'a'))
		}
	}
	return out
}

// ranges returns the maximal runs [lo,hi] of consecutive members.
func (c Class) ranges() [][2]byte {
	var out [][2]byte
	inRun := false
	var lo byte
	for b := 0; b < AlphabetSize; b++ {
		if c.Contains(byte(b)) {
			if !inRun {
				inRun = true
				lo = byte(b)
			}
		} else if inRun {
			inRun = false
			out = append(out, [2]byte{lo, byte(b - 1)})
		}
	}
	if inRun {
		out = append(out, [2]byte{lo, 255})
	}
	return out
}

func writeEscaped(sb *strings.Builder, b byte) {
	switch {
	case b == '\\' || b == ']' || b == '^' || b == '-':
		sb.WriteByte('\\')
		sb.WriteByte(b)
	case b >= 0x20 && b < 0x7f:
		sb.WriteByte(b)
	case b == '\n':
		sb.WriteString(`\n`)
	case b == '\r':
		sb.WriteString(`\r`)
	case b == '\t':
		sb.WriteString(`\t`)
	default:
		fmt.Fprintf(sb, `\x%02x`, b)
	}
}

// String renders the class in regex syntax: "." for Σ, a bare (possibly
// escaped) literal for singletons, and a bracket expression otherwise. A
// class covering more than half of Σ is rendered negated.
func (c Class) String() string {
	if c.Equal(Any()) {
		return "."
	}
	if c.IsEmpty() {
		return "[]"
	}
	if c.Count() == 1 {
		b, _ := c.Min()
		var sb strings.Builder
		writeEscaped(&sb, b)
		return sb.String()
	}
	neg := false
	body := c
	if c.Count() > AlphabetSize/2 {
		neg = true
		body = c.Negate()
	}
	var sb strings.Builder
	sb.WriteByte('[')
	if neg {
		sb.WriteByte('^')
	}
	for _, r := range body.ranges() {
		writeEscaped(&sb, r[0])
		if r[1] > r[0] {
			if r[1] > r[0]+1 {
				sb.WriteByte('-')
			}
			writeEscaped(&sb, r[1])
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
