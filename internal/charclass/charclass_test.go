package charclass

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAndAny(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Count() != 0 {
		t.Fatalf("Empty() not empty: count=%d", e.Count())
	}
	a := Any()
	if a.Count() != AlphabetSize {
		t.Fatalf("Any() count = %d, want %d", a.Count(), AlphabetSize)
	}
	for b := 0; b < AlphabetSize; b++ {
		if e.Contains(byte(b)) {
			t.Fatalf("Empty contains %d", b)
		}
		if !a.Contains(byte(b)) {
			t.Fatalf("Any missing %d", b)
		}
	}
}

func TestSingle(t *testing.T) {
	for b := 0; b < AlphabetSize; b++ {
		c := Single(byte(b))
		if c.Count() != 1 || !c.Contains(byte(b)) {
			t.Fatalf("Single(%d) wrong: count=%d", b, c.Count())
		}
		if min, ok := c.Min(); !ok || min != byte(b) {
			t.Fatalf("Single(%d).Min() = %d, %v", b, min, ok)
		}
	}
}

func TestRange(t *testing.T) {
	c := Range('a', 'f')
	if c.Count() != 6 {
		t.Fatalf("Range count = %d, want 6", c.Count())
	}
	for b := byte('a'); b <= 'f'; b++ {
		if !c.Contains(b) {
			t.Fatalf("Range missing %q", b)
		}
	}
	if c.Contains('g') || c.Contains('`') {
		t.Fatal("Range has out-of-range members")
	}
	// Cross-word range.
	c = Range(60, 70)
	if c.Count() != 11 {
		t.Fatalf("cross-word range count = %d", c.Count())
	}
}

func TestRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(5,1) did not panic")
		}
	}()
	Range(5, 1)
}

func TestOfAndFromString(t *testing.T) {
	c := Of('x', 'y', 'z')
	d := FromString("zyx")
	if !c.Equal(d) {
		t.Fatalf("Of != FromString: %v vs %v", c, d)
	}
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Range('a', 'm')
	b := Range('h', 'z')
	u := a.Union(b)
	if u.Count() != 26 {
		t.Fatalf("union count = %d, want 26", u.Count())
	}
	i := a.Intersect(b)
	if i.Count() != 6 { // h..m
		t.Fatalf("intersect count = %d, want 6", i.Count())
	}
	m := a.Minus(b)
	if m.Count() != 7 { // a..g
		t.Fatalf("minus count = %d, want 7", m.Count())
	}
	n := a.Negate()
	if n.Count() != AlphabetSize-13 {
		t.Fatalf("negate count = %d", n.Count())
	}
	if !a.Overlaps(b) {
		t.Fatal("a should overlap b")
	}
	if a.Overlaps(Range('n', 'z')) {
		t.Fatal("disjoint classes reported overlapping")
	}
}

func TestSymbols(t *testing.T) {
	c := Of(3, 200, 64, 127, 128)
	got := c.Symbols()
	want := []byte{3, 64, 127, 128, 200}
	if len(got) != len(want) {
		t.Fatalf("symbols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symbols[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPerlClasses(t *testing.T) {
	if Digit().Count() != 10 {
		t.Fatalf("\\d count = %d", Digit().Count())
	}
	if Word().Count() != 63 { // 26+26+10+1
		t.Fatalf("\\w count = %d", Word().Count())
	}
	if Space().Count() != 6 {
		t.Fatalf("\\s count = %d", Space().Count())
	}
	if !Digit().Union(NotDigit()).Equal(Any()) {
		t.Fatal("\\d ∪ \\D != Σ")
	}
	if !Word().Union(NotWord()).Equal(Any()) {
		t.Fatal("\\w ∪ \\W != Σ")
	}
	if !Space().Union(NotSpace()).Equal(Any()) {
		t.Fatal("\\s ∪ \\S != Σ")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{Any(), "."},
		{Empty(), "[]"},
		{Single('a'), "a"},
		{Single('\n'), `\n`},
		{Single(0x01), `\x01`},
		{Range('a', 'c'), "[a-c]"},
		{Of('a', 'b'), "[ab]"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String(%v bits) = %q, want %q", tc.c.Symbols(), got, tc.want)
		}
	}
}

// randomClass builds a class from a random 256-bit membership mask.
func randomClass(r *rand.Rand) Class {
	var c Class
	for b := 0; b < AlphabetSize; b++ {
		if r.Intn(2) == 1 {
			c = c.Union(Single(byte(b)))
		}
	}
	return c
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClass(r), randomClass(r)
		// ¬(a ∪ b) == ¬a ∩ ¬b
		return a.Union(b).Negate().Equal(a.Negate().Intersect(b.Negate()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutesAndCountConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClass(r), randomClass(r)
		u := a.Union(b)
		if !u.Equal(b.Union(a)) {
			return false
		}
		// |a ∪ b| = |a| + |b| - |a ∩ b|
		return u.Count() == a.Count()+b.Count()-a.Intersect(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNegateInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomClass(r)
		return a.Negate().Negate().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashEqualClasses(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomClass(r)
		b := a.Union(Empty()) // structural copy
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
