// Package hwconf defines the JSON configuration format produced by the BVAP
// compiler (§7, compilation step 5) and consumed by the cycle-accurate
// simulator: the machines (one AH-NBVA per regex), per-STE predicates and BV
// instructions, routing, and the tile/array/bank placement.
package hwconf

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"bvap/internal/charclass"
	"bvap/internal/isa"
)

// FormatVersion identifies the configuration schema revision.
const FormatVersion = 1

// Config is a complete hardware programming image.
type Config struct {
	Version int    `json:"version"`
	Params  Params `json:"params"`
	// Machines holds one compiled automaton per source regex, in input
	// order. Regexes the target cannot support are still listed, with
	// Unsupported set and no states.
	Machines []Machine `json:"machines"`
	// Tiles is the placement: which machines each tile hosts and its
	// resulting occupancy.
	Tiles []TilePlacement `json:"tiles"`
	// Provenance optionally records which STE ids of each machine landed on
	// which tile, as run-length-encoded spans. Images without it (older
	// compilers, hand-written configs) still validate; consumers fall back
	// to "tile unknown". See ProvenanceIndex.
	Provenance []TileSpan `json:"provenance,omitempty"`
}

// Params records the compiler parameters that shaped the image.
type Params struct {
	// BVSizeBits is the virtual bit-vector size K used for splitting.
	BVSizeBits int `json:"bv_size_bits"`
	// UnfoldThreshold is the unfolding threshold (unfold_th).
	UnfoldThreshold int `json:"unfold_threshold"`
}

// Machine is one compiled AH-NBVA.
type Machine struct {
	Regex string `json:"regex"`
	// Unsupported is set when the regex cannot be mapped (e.g. its
	// repetition bound exceeds the per-tile BV capacity even after
	// splitting) and explains why.
	Unsupported string `json:"unsupported,omitempty"`
	// Anchored marks a ^-anchored pattern: its initial STEs use the
	// hardware's start-of-data mode instead of arming on every symbol.
	Anchored bool `json:"anchored,omitempty"`

	STEs    []STE  `json:"stes,omitempty"`
	Edges   []Edge `json:"edges,omitempty"`
	Initial []int  `json:"initial,omitempty"`
	Finals  []int  `json:"finals,omitempty"`
}

// STE is one State Transition Element. BV-STEs additionally carry a bit
// vector width, an action and an encoded instruction word.
type STE struct {
	ID int `json:"id"`
	// Class is the 256-bit predicate, hex encoded (64 hex digits, byte 0
	// first; bit i of byte j covers symbol j*8+i).
	Class string `json:"class"`
	// IsBV marks a BV-STE; the remaining fields apply only to BV-STEs.
	IsBV bool `json:"is_bv,omitempty"`
	// WidthBits is the bit vector's logical width (≤ the virtual size
	// rounded up to whole words).
	WidthBits int `json:"width_bits,omitempty"`
	// Instruction is the encoded Table 3 instruction word.
	Instruction uint16 `json:"instruction,omitempty"`
	// Action is the Swap-step action name (for human inspection; the
	// instruction word is authoritative).
	Action string `json:"action,omitempty"`
}

// Edge is one transition of the AH-NBVA. Gated edges require the source
// STE's BV-read to pass.
type Edge struct {
	From  int  `json:"from"`
	To    int  `json:"to"`
	Gated bool `json:"gated,omitempty"`
}

// TilePlacement records which machines a tile hosts. FCBMode marks a tile
// *pair* reconfigured as one fully connected 128-STE unit (§6): machines
// whose transition graphs are too dense for the Reduced CrossBar route
// there, at twice the silicon per placement and half the capacity.
type TilePlacement struct {
	Tile     int   `json:"tile"`
	Machines []int `json:"machines"`
	STEs     int   `json:"stes"`
	BVSTEs   int   `json:"bv_stes"`
	FCBMode  bool  `json:"fcb_mode,omitempty"`
}

// EncodeClass serializes a character class as 64 hex digits.
func EncodeClass(c charclass.Class) string {
	var buf [32]byte
	for b := 0; b < charclass.AlphabetSize; b++ {
		if c.Contains(byte(b)) {
			buf[b>>3] |= 1 << (uint(b) & 7)
		}
	}
	return hex.EncodeToString(buf[:])
}

// DecodeClass parses the hex form produced by EncodeClass.
func DecodeClass(s string) (charclass.Class, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return charclass.Class{}, fmt.Errorf("hwconf: bad class encoding: %v", err)
	}
	if len(raw) != 32 {
		return charclass.Class{}, fmt.Errorf("hwconf: class encoding has %d bytes, want 32", len(raw))
	}
	c := charclass.Empty()
	for b := 0; b < charclass.AlphabetSize; b++ {
		if raw[b>>3]&(1<<(uint(b)&7)) != 0 {
			c = c.Union(charclass.Single(byte(b)))
		}
	}
	return c, nil
}

// Write serializes the configuration as indented JSON.
func (c *Config) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Read parses a configuration and validates its structure.
func Read(r io.Reader) (*Config, error) {
	var c Config
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("hwconf: %v", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Structural limits a configuration must respect. They mirror the modeled
// hardware (a tile holds 256 STEs and 48 64-bit BVs) plus generous caps on
// the image size, so a corrupt or hostile configuration is rejected up
// front instead of driving the simulator into huge allocations or
// out-of-range indexing.
const (
	// MaxMachines bounds the number of machines in one image.
	MaxMachines = 1 << 16
	// MaxMachineSTEs bounds one machine's state count (far above anything
	// the tile mapper would place, which tops out at tiles × 256).
	MaxMachineSTEs = 1 << 16
	// MaxTiles bounds the placement (and thereby the simulator's
	// array/bank structures derived from the largest tile index).
	MaxTiles = 1 << 16
	// maxTileSTEs and maxTileBVs are the per-tile occupancy capacities
	// (archmodel.STEsPerTile and BVsPerTile; an FCB placement spans a tile
	// pair, so its BV budget doubles).
	maxTileSTEs = 256
	maxTileBVs  = 48
)

// Validate checks the configuration: referential integrity (STE ids, edge
// and state indices, tile→machine references), decodability of every BV
// instruction against its declared width, class encodings, occupancy
// bounds, and the structural caps above. A Validate'd configuration is safe
// to hand to the simulator: reconstruction cannot index out of range or
// allocate disproportionately to the image size.
func (c *Config) Validate() error {
	if c.Version != FormatVersion {
		return fmt.Errorf("hwconf: unsupported version %d", c.Version)
	}
	if k := c.Params.BVSizeBits; k < 0 || k > isa.PhysicalBVBits || (k > 0 && k < isa.WordBits) {
		return fmt.Errorf("hwconf: invalid bv size %d (want 0 or %d..%d)", k, isa.WordBits, isa.PhysicalBVBits)
	}
	if c.Params.UnfoldThreshold < 0 {
		return fmt.Errorf("hwconf: negative unfold threshold %d", c.Params.UnfoldThreshold)
	}
	if len(c.Machines) > MaxMachines {
		return fmt.Errorf("hwconf: %d machines exceeds the %d cap", len(c.Machines), MaxMachines)
	}
	if len(c.Tiles) > MaxTiles {
		return fmt.Errorf("hwconf: %d tiles exceeds the %d cap", len(c.Tiles), MaxTiles)
	}
	for mi := range c.Machines {
		m := &c.Machines[mi]
		if m.Unsupported != "" {
			continue
		}
		n := len(m.STEs)
		if n > MaxMachineSTEs {
			return fmt.Errorf("hwconf: machine %d has %d STEs, exceeding the %d cap", mi, n, MaxMachineSTEs)
		}
		for i, s := range m.STEs {
			if s.ID != i {
				return fmt.Errorf("hwconf: machine %d STE %d has id %d", mi, i, s.ID)
			}
			if _, err := DecodeClass(s.Class); err != nil {
				return fmt.Errorf("hwconf: machine %d STE %d: %v", mi, i, err)
			}
			if !s.IsBV {
				continue
			}
			if s.WidthBits < 1 || s.WidthBits > isa.PhysicalBVBits {
				return fmt.Errorf("hwconf: machine %d BV-STE %d has width %d (want 1..%d)",
					mi, i, s.WidthBits, isa.PhysicalBVBits)
			}
			in, err := isa.Decode(s.Instruction)
			if err != nil {
				return fmt.Errorf("hwconf: machine %d BV-STE %d: %v", mi, i, err)
			}
			if in.Swap == isa.SwapNone {
				return fmt.Errorf("hwconf: machine %d BV-STE %d: instruction %v has no swap action", mi, i, in)
			}
			if s.WidthBits > in.VirtualBits() {
				return fmt.Errorf("hwconf: machine %d BV-STE %d: width %d exceeds the %d-bit virtual BV",
					mi, i, s.WidthBits, in.VirtualBits())
			}
			// The upper span end may overhang the logical width (virtual
			// words round widths up; the runtime clamps it), but a lower
			// end past the width would read out of the vector.
			if lo, _, ok := in.ReadSpan(); ok && lo > s.WidthBits {
				return fmt.Errorf("hwconf: machine %d BV-STE %d: read pointer %d past width %d",
					mi, i, lo, s.WidthBits)
			}
		}
		seenEdge := make(map[Edge]bool, len(m.Edges))
		for _, e := range m.Edges {
			if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
				return fmt.Errorf("hwconf: machine %d edge %+v out of range", mi, e)
			}
			key := Edge{From: e.From, To: e.To}
			if seenEdge[key] {
				return fmt.Errorf("hwconf: machine %d has duplicate edge %d→%d", mi, e.From, e.To)
			}
			seenEdge[key] = true
		}
		for _, q := range m.Initial {
			if q < 0 || q >= n {
				return fmt.Errorf("hwconf: machine %d initial %d out of range", mi, q)
			}
		}
		for _, q := range m.Finals {
			if q < 0 || q >= n {
				return fmt.Errorf("hwconf: machine %d final %d out of range", mi, q)
			}
		}
	}
	placed := make(map[int]bool)
	for ti, tp := range c.Tiles {
		// The simulator indexes its tile structures positionally, so the
		// declared tile id must equal the slice index (this also implies
		// uniqueness and the MaxTiles cap, via the len(c.Tiles) check above).
		if tp.Tile != ti {
			return fmt.Errorf("hwconf: tile at position %d declares id %d (ids must be dense and in order)", ti, tp.Tile)
		}
		if tp.STEs < 0 || tp.STEs > maxTileSTEs {
			return fmt.Errorf("hwconf: tile %d occupancy %d STEs out of range [0,%d]", tp.Tile, tp.STEs, maxTileSTEs)
		}
		bvCap := maxTileBVs
		if tp.FCBMode {
			bvCap *= 2 // FCB placements span a physical tile pair
		}
		if tp.BVSTEs < 0 || tp.BVSTEs > bvCap {
			return fmt.Errorf("hwconf: tile %d occupancy %d BV-STEs out of range [0,%d]", tp.Tile, tp.BVSTEs, bvCap)
		}
		if tp.BVSTEs > tp.STEs {
			return fmt.Errorf("hwconf: tile %d has %d BV-STEs but only %d STEs", tp.Tile, tp.BVSTEs, tp.STEs)
		}
		for _, m := range tp.Machines {
			if m < 0 || m >= len(c.Machines) {
				return fmt.Errorf("hwconf: tile %d references machine %d", tp.Tile, m)
			}
			placed[m] = true
		}
	}
	for mi := range c.Machines {
		if c.Machines[mi].Unsupported == "" && len(c.Machines[mi].STEs) > 0 && !placed[mi] {
			return fmt.Errorf("hwconf: machine %d (%q) is not placed on any tile", mi, c.Machines[mi].Regex)
		}
	}
	return c.validateProvenance()
}

// SupportedMachines returns the indices of machines that compiled and were
// placed.
func (c *Config) SupportedMachines() []int {
	var out []int
	for i := range c.Machines {
		if c.Machines[i].Unsupported == "" {
			out = append(out, i)
		}
	}
	return out
}
