// Package hwconf defines the JSON configuration format produced by the BVAP
// compiler (§7, compilation step 5) and consumed by the cycle-accurate
// simulator: the machines (one AH-NBVA per regex), per-STE predicates and BV
// instructions, routing, and the tile/array/bank placement.
package hwconf

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"bvap/internal/charclass"
)

// FormatVersion identifies the configuration schema revision.
const FormatVersion = 1

// Config is a complete hardware programming image.
type Config struct {
	Version int    `json:"version"`
	Params  Params `json:"params"`
	// Machines holds one compiled automaton per source regex, in input
	// order. Regexes the target cannot support are still listed, with
	// Unsupported set and no states.
	Machines []Machine `json:"machines"`
	// Tiles is the placement: which machines each tile hosts and its
	// resulting occupancy.
	Tiles []TilePlacement `json:"tiles"`
}

// Params records the compiler parameters that shaped the image.
type Params struct {
	// BVSizeBits is the virtual bit-vector size K used for splitting.
	BVSizeBits int `json:"bv_size_bits"`
	// UnfoldThreshold is the unfolding threshold (unfold_th).
	UnfoldThreshold int `json:"unfold_threshold"`
}

// Machine is one compiled AH-NBVA.
type Machine struct {
	Regex string `json:"regex"`
	// Unsupported is set when the regex cannot be mapped (e.g. its
	// repetition bound exceeds the per-tile BV capacity even after
	// splitting) and explains why.
	Unsupported string `json:"unsupported,omitempty"`
	// Anchored marks a ^-anchored pattern: its initial STEs use the
	// hardware's start-of-data mode instead of arming on every symbol.
	Anchored bool `json:"anchored,omitempty"`

	STEs    []STE  `json:"stes,omitempty"`
	Edges   []Edge `json:"edges,omitempty"`
	Initial []int  `json:"initial,omitempty"`
	Finals  []int  `json:"finals,omitempty"`
}

// STE is one State Transition Element. BV-STEs additionally carry a bit
// vector width, an action and an encoded instruction word.
type STE struct {
	ID int `json:"id"`
	// Class is the 256-bit predicate, hex encoded (64 hex digits, byte 0
	// first; bit i of byte j covers symbol j*8+i).
	Class string `json:"class"`
	// IsBV marks a BV-STE; the remaining fields apply only to BV-STEs.
	IsBV bool `json:"is_bv,omitempty"`
	// WidthBits is the bit vector's logical width (≤ the virtual size
	// rounded up to whole words).
	WidthBits int `json:"width_bits,omitempty"`
	// Instruction is the encoded Table 3 instruction word.
	Instruction uint16 `json:"instruction,omitempty"`
	// Action is the Swap-step action name (for human inspection; the
	// instruction word is authoritative).
	Action string `json:"action,omitempty"`
}

// Edge is one transition of the AH-NBVA. Gated edges require the source
// STE's BV-read to pass.
type Edge struct {
	From  int  `json:"from"`
	To    int  `json:"to"`
	Gated bool `json:"gated,omitempty"`
}

// TilePlacement records which machines a tile hosts. FCBMode marks a tile
// *pair* reconfigured as one fully connected 128-STE unit (§6): machines
// whose transition graphs are too dense for the Reduced CrossBar route
// there, at twice the silicon per placement and half the capacity.
type TilePlacement struct {
	Tile     int   `json:"tile"`
	Machines []int `json:"machines"`
	STEs     int   `json:"stes"`
	BVSTEs   int   `json:"bv_stes"`
	FCBMode  bool  `json:"fcb_mode,omitempty"`
}

// EncodeClass serializes a character class as 64 hex digits.
func EncodeClass(c charclass.Class) string {
	var buf [32]byte
	for b := 0; b < charclass.AlphabetSize; b++ {
		if c.Contains(byte(b)) {
			buf[b>>3] |= 1 << (uint(b) & 7)
		}
	}
	return hex.EncodeToString(buf[:])
}

// DecodeClass parses the hex form produced by EncodeClass.
func DecodeClass(s string) (charclass.Class, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return charclass.Class{}, fmt.Errorf("hwconf: bad class encoding: %v", err)
	}
	if len(raw) != 32 {
		return charclass.Class{}, fmt.Errorf("hwconf: class encoding has %d bytes, want 32", len(raw))
	}
	c := charclass.Empty()
	for b := 0; b < charclass.AlphabetSize; b++ {
		if raw[b>>3]&(1<<(uint(b)&7)) != 0 {
			c = c.Union(charclass.Single(byte(b)))
		}
	}
	return c, nil
}

// Write serializes the configuration as indented JSON.
func (c *Config) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Read parses a configuration and validates its structure.
func Read(r io.Reader) (*Config, error) {
	var c Config
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("hwconf: %v", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks referential integrity of the configuration.
func (c *Config) Validate() error {
	if c.Version != FormatVersion {
		return fmt.Errorf("hwconf: unsupported version %d", c.Version)
	}
	if c.Params.BVSizeBits < 0 || c.Params.BVSizeBits > 0 && c.Params.BVSizeBits < 8 {
		return fmt.Errorf("hwconf: invalid bv size %d", c.Params.BVSizeBits)
	}
	for mi := range c.Machines {
		m := &c.Machines[mi]
		if m.Unsupported != "" {
			continue
		}
		n := len(m.STEs)
		for i, s := range m.STEs {
			if s.ID != i {
				return fmt.Errorf("hwconf: machine %d STE %d has id %d", mi, i, s.ID)
			}
			if len(s.Class) != 64 {
				return fmt.Errorf("hwconf: machine %d STE %d class length %d", mi, i, len(s.Class))
			}
			if s.IsBV && s.WidthBits < 1 {
				return fmt.Errorf("hwconf: machine %d BV-STE %d has width %d", mi, i, s.WidthBits)
			}
		}
		for _, e := range m.Edges {
			if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
				return fmt.Errorf("hwconf: machine %d edge %+v out of range", mi, e)
			}
		}
		for _, q := range m.Initial {
			if q < 0 || q >= n {
				return fmt.Errorf("hwconf: machine %d initial %d out of range", mi, q)
			}
		}
		for _, q := range m.Finals {
			if q < 0 || q >= n {
				return fmt.Errorf("hwconf: machine %d final %d out of range", mi, q)
			}
		}
	}
	for _, tp := range c.Tiles {
		for _, m := range tp.Machines {
			if m < 0 || m >= len(c.Machines) {
				return fmt.Errorf("hwconf: tile %d references machine %d", tp.Tile, m)
			}
		}
	}
	return nil
}

// SupportedMachines returns the indices of machines that compiled and were
// placed.
func (c *Config) SupportedMachines() []int {
	var out []int
	for i := range c.Machines {
		if c.Machines[i].Unsupported == "" {
			out = append(out, i)
		}
	}
	return out
}
