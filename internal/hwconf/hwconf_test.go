package hwconf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bvap/internal/charclass"
	"bvap/internal/isa"
)

func TestClassCodecRoundTrip(t *testing.T) {
	cases := []charclass.Class{
		charclass.Empty(),
		charclass.Any(),
		charclass.Single(0),
		charclass.Single(255),
		charclass.Range('a', 'z'),
		charclass.Digit(),
		charclass.Word().Negate(),
	}
	for _, c := range cases {
		enc := EncodeClass(c)
		if len(enc) != 64 {
			t.Fatalf("encoding length %d", len(enc))
		}
		dec, err := DecodeClass(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(c) {
			t.Fatalf("round trip failed for %v", c)
		}
	}
}

func TestQuickClassCodec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := charclass.Empty()
		for i := 0; i < 64; i++ {
			c = c.Union(charclass.Single(byte(r.Intn(256))))
		}
		dec, err := DecodeClass(EncodeClass(c))
		return err == nil && dec.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeClassErrors(t *testing.T) {
	for _, bad := range []string{"", "zz", strings.Repeat("0", 63), strings.Repeat("0", 66), strings.Repeat("g", 64)} {
		if _, err := DecodeClass(bad); err == nil {
			t.Errorf("DecodeClass(%q) accepted", bad)
		}
	}
}

func validConfig() *Config {
	return &Config{
		Version: FormatVersion,
		Params:  Params{BVSizeBits: 64, UnfoldThreshold: 8},
		Machines: []Machine{
			{
				Regex: "ab{3}c",
				STEs: []STE{
					{ID: 0, Class: EncodeClass(charclass.Single('a'))},
					{ID: 1, Class: EncodeClass(charclass.Single('b')), IsBV: true, WidthBits: 3,
						Instruction: isa.Instruction{Read: isa.ReadN, Pointer: 3, Swap: isa.SwapShift, Words: 1}.Encode(),
						Action:      "shift"},
					{ID: 2, Class: EncodeClass(charclass.Single('c'))},
				},
				Edges:   []Edge{{From: 0, To: 1}, {From: 1, To: 1}, {From: 1, To: 2, Gated: true}},
				Initial: []int{0},
				Finals:  []int{2},
			},
			{Regex: "bad(", Unsupported: "syntax error"},
		},
		Tiles: []TilePlacement{{Tile: 0, Machines: []int{0}, STEs: 3, BVSTEs: 1}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := validConfig()
	var buf bytes.Buffer
	if err := cfg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Machines) != 2 || back.Machines[0].Regex != "ab{3}c" {
		t.Fatalf("round trip lost machines: %+v", back.Machines)
	}
	if back.Machines[1].Unsupported == "" {
		t.Fatal("unsupported flag lost")
	}
	if got := back.SupportedMachines(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("SupportedMachines = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad version", func(c *Config) { c.Version = 99 }},
		{"bad bv size", func(c *Config) { c.Params.BVSizeBits = 5 }},
		{"ste id mismatch", func(c *Config) { c.Machines[0].STEs[1].ID = 7 }},
		{"bad class length", func(c *Config) { c.Machines[0].STEs[0].Class = "abcd" }},
		{"bv without width", func(c *Config) { c.Machines[0].STEs[1].WidthBits = 0 }},
		{"edge out of range", func(c *Config) { c.Machines[0].Edges[0].To = 9 }},
		{"negative edge", func(c *Config) { c.Machines[0].Edges[0].From = -1 }},
		{"initial out of range", func(c *Config) { c.Machines[0].Initial[0] = 5 }},
		{"final out of range", func(c *Config) { c.Machines[0].Finals[0] = -2 }},
		{"tile bad machine", func(c *Config) { c.Tiles[0].Machines[0] = 4 }},
		{"bad class hex", func(c *Config) { c.Machines[0].STEs[0].Class = strings.Repeat("zz", 32) }},
		{"bv width over physical", func(c *Config) { c.Machines[0].STEs[1].WidthBits = 65 }},
		{"bv width over virtual", func(c *Config) { c.Machines[0].STEs[1].WidthBits = 9 }},
		{"undecodable instruction", func(c *Config) { c.Machines[0].STEs[1].Instruction = 0xffff }},
		{"bv without swap action", func(c *Config) {
			c.Machines[0].STEs[1].Instruction = isa.Instruction{Read: isa.ReadAll, Swap: isa.SwapNone, Words: 1}.Encode()
		}},
		{"read pointer past width", func(c *Config) {
			c.Machines[0].STEs[1].Instruction = isa.Instruction{Read: isa.ReadN, Pointer: 7, Swap: isa.SwapShift, Words: 1}.Encode()
		}},
		{"duplicate edge", func(c *Config) { c.Machines[0].Edges = append(c.Machines[0].Edges, Edge{From: 0, To: 1, Gated: true}) }},
		{"negative tile", func(c *Config) { c.Tiles[0].Tile = -1 }},
		{"duplicate tile", func(c *Config) { c.Tiles = append(c.Tiles, c.Tiles[0]) }},
		{"tile ste overflow", func(c *Config) { c.Tiles[0].STEs = 257 }},
		{"tile bv overflow", func(c *Config) { c.Tiles[0].BVSTEs = 49 }},
		{"negative occupancy", func(c *Config) { c.Tiles[0].STEs = -1 }},
		{"more bvs than stes", func(c *Config) { c.Tiles[0].BVSTEs = 4 }},
		{"unplaced machine", func(c *Config) { c.Tiles[0].Machines = nil }},
		{"bad unfold threshold", func(c *Config) { c.Params.UnfoldThreshold = -1 }},
	}
	for _, m := range mutations {
		cfg := validConfig()
		m.mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version": 3}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}
