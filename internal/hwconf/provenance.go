package hwconf

import (
	"fmt"
	"sort"
)

// Pattern ↔ tile provenance. The placement in Config.Tiles records only how
// many STEs of which machines each tile hosts; attribution and hot-state
// ranking additionally need to know *which* STEs of a machine landed where.
// The compiler emits one TileSpan per contiguous run of a machine's STE ids
// placed on one tile; ProvenanceIndex is the decoder the simulator and the
// profiler use to answer "which tile hosts STE q of machine m?".

// TileSpan locates a contiguous run of one machine's STEs on a tile:
// STE ids First .. First+Count-1 of machine Machine live on tile Tile.
type TileSpan struct {
	Machine int `json:"machine"`
	Tile    int `json:"tile"`
	First   int `json:"first"`
	Count   int `json:"count"`
}

// validateProvenance checks the provenance table against the machines and
// the placement: references must be in range, spans must lie inside their
// machine's STE range, and no STE may be claimed by two spans. Tiles are
// indexed positionally (Validate pins TilePlacement.Tile == index), so a
// span's tile is checked against len(c.Tiles).
func (c *Config) validateProvenance() error {
	if len(c.Provenance) == 0 {
		return nil
	}
	if len(c.Provenance) > MaxTiles*8 {
		return fmt.Errorf("hwconf: %d provenance spans exceeds the %d cap", len(c.Provenance), MaxTiles*8)
	}
	// covered[machine] marks STE ids already claimed, allocated lazily so a
	// hostile image cannot force allocations beyond its own machine sizes.
	covered := map[int]map[int]bool{}
	for i, sp := range c.Provenance {
		if sp.Machine < 0 || sp.Machine >= len(c.Machines) {
			return fmt.Errorf("hwconf: provenance span %d references machine %d", i, sp.Machine)
		}
		m := &c.Machines[sp.Machine]
		if m.Unsupported != "" {
			return fmt.Errorf("hwconf: provenance span %d references unsupported machine %d", i, sp.Machine)
		}
		if sp.Tile < 0 || sp.Tile >= len(c.Tiles) {
			return fmt.Errorf("hwconf: provenance span %d references tile %d of %d", i, sp.Tile, len(c.Tiles))
		}
		if sp.Count < 1 || sp.First < 0 || sp.First+sp.Count > len(m.STEs) {
			return fmt.Errorf("hwconf: provenance span %d covers STEs [%d,%d) of machine %d with %d STEs",
				i, sp.First, sp.First+sp.Count, sp.Machine, len(m.STEs))
		}
		cov := covered[sp.Machine]
		if cov == nil {
			cov = make(map[int]bool, sp.Count)
			covered[sp.Machine] = cov
		}
		for q := sp.First; q < sp.First+sp.Count; q++ {
			if cov[q] {
				return fmt.Errorf("hwconf: provenance claims STE %d of machine %d twice", q, sp.Machine)
			}
			cov[q] = true
		}
	}
	return nil
}

// ProvenanceIndex answers STE → tile queries over a validated provenance
// table. Build one with Config.ProvenanceIndex.
type ProvenanceIndex struct {
	// spans[machine] holds that machine's spans sorted by First.
	spans map[int][]TileSpan
}

// ProvenanceIndex builds the pattern↔tile decoder. It returns nil when the
// configuration carries no provenance table (older images), which callers
// treat as "tile unknown".
func (c *Config) ProvenanceIndex() *ProvenanceIndex {
	if len(c.Provenance) == 0 {
		return nil
	}
	idx := &ProvenanceIndex{spans: make(map[int][]TileSpan)}
	for _, sp := range c.Provenance {
		idx.spans[sp.Machine] = append(idx.spans[sp.Machine], sp)
	}
	for m := range idx.spans {
		s := idx.spans[m]
		sort.Slice(s, func(i, j int) bool { return s[i].First < s[j].First })
	}
	return idx
}

// STETile returns the tile hosting STE q of machine m. ok is false when the
// index holds no span covering that STE (nil index, unknown machine, or an
// id outside every span).
func (p *ProvenanceIndex) STETile(m, q int) (tile int, ok bool) {
	if p == nil {
		return 0, false
	}
	spans := p.spans[m]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].First+spans[i].Count > q })
	if i < len(spans) && q >= spans[i].First {
		return spans[i].Tile, true
	}
	return 0, false
}

// MachineTileSTEs returns how many STEs of machine m each tile hosts,
// keyed by tile index. It returns nil for machines without provenance.
func (p *ProvenanceIndex) MachineTileSTEs(m int) map[int]int {
	if p == nil || len(p.spans[m]) == 0 {
		return nil
	}
	out := make(map[int]int)
	for _, sp := range p.spans[m] {
		out[sp.Tile] += sp.Count
	}
	return out
}

// SpansFromSTEs run-length encodes a machine's (tile, STE id) assignment
// into TileSpans: ids is the set of STE ids of machine m placed on tile,
// in any order. The compiler uses this to emit the provenance table.
func SpansFromSTEs(machine, tile int, ids []int) []TileSpan {
	if len(ids) == 0 {
		return nil
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	var out []TileSpan
	first, count := sorted[0], 1
	for _, q := range sorted[1:] {
		if q == first+count {
			count++
			continue
		}
		out = append(out, TileSpan{Machine: machine, Tile: tile, First: first, Count: count})
		first, count = q, 1
	}
	return append(out, TileSpan{Machine: machine, Tile: tile, First: first, Count: count})
}
