package compiler

import (
	"testing"

	"bvap/internal/isa"
	"bvap/internal/nbva"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
)

// TestSection4WorkedExample pins the paper's §4 walkthrough: with K = 8 the
// regex ab{2,5}(cd){6}e is rewritten to abb{1,4}(cd){6}e and compiled to an
// AH-NBVA whose b-chunk uses the rHalf read (r(1,4) on an 8-bit virtual BV)
// combined with set1 on the split entry copy, and whose (cd){6} group exits
// through r(6).
func TestSection4WorkedExample(t *testing.T) {
	res, err := Compile([]string{"ab{2,5}(cd){6}e"}, Options{BVSizeBits: 8, UnfoldThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report.PerRegex[0]
	if !rep.Supported {
		t.Fatalf("unsupported: %s", rep.Reason)
	}
	m := res.Config.Machines[0]
	instrs := map[string]int{}
	for _, s := range m.STEs {
		if !s.IsBV {
			continue
		}
		in, err := isa.Decode(s.Instruction)
		if err != nil {
			t.Fatal(err)
		}
		instrs[in.String()]++
	}
	t.Logf("instruction histogram: %v", instrs)
	// The b{1,4} chunk: a shift loop with the rHalf exit read, and a
	// set1 entry copy carrying the same read (the paper's rHalf·set1).
	if instrs["rHalf·shift/8b"] == 0 {
		t.Errorf("missing rHalf·shift/8b: %v", instrs)
	}
	if instrs["rHalf·set1/8b"] == 0 {
		t.Errorf("missing rHalf·set1/8b (the paper's combination form): %v", instrs)
	}
	// The (cd){6} group: d carries the exact exit read r(6); c and the
	// split copies move the vector with copy/shift.
	rdSeen := false
	for name := range instrs {
		if name == "r(6)·copy/8b" || name == "r(6)·shift/8b" {
			rdSeen = true
		}
	}
	if !rdSeen {
		t.Errorf("missing the r(6) exit read: %v", instrs)
	}

	// Functional equivalence of the compiled machine.
	ref := swmatch.MustNew("ab{2,5}(cd){6}e")
	inputs := []string{
		"abbcdcdcdcdcdcde",      // 2 b's, 6 cd's → match
		"abbbbbcdcdcdcdcdcde",   // 5 b's → match
		"abcdcdcdcdcdcde",       // 1 b → no match
		"abbcdcdcdcdcde",        // 5 cd's → no match
		"abbbbbbcdcdcdcdcdcde",  // 6 b's → no match
		"xxabbcdcdcdcdcdcdexxx", // embedded match
	}
	for _, in := range inputs {
		got := res.Machines[0].MatchEnds([]byte(in))
		want := ref.MatchEnds([]byte(in))
		if !equalInts(got, want) {
			t.Errorf("input %q: compiled %v, reference %v", in, got, want)
		}
	}
}

// TestVirtualSizesSelected verifies that the compiler exploits virtual BV
// sizing: a 19-bit exact chunk uses 3 words, not the full 8.
func TestVirtualSizesSelected(t *testing.T) {
	res, err := Compile([]string{"ab{147}c"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	words := map[int]int{}
	for _, s := range res.Config.Machines[0].STEs {
		if !s.IsBV {
			continue
		}
		in, err := isa.Decode(s.Instruction)
		if err != nil {
			t.Fatal(err)
		}
		words[in.Words]++
	}
	// b{147} → b{64}b{64}b{19}: two 8-word chunks and one 3-word chunk
	// (each with a set1 entry copy after the AH split).
	if words[8] == 0 || words[3] == 0 {
		t.Fatalf("virtual word histogram = %v, want both 8- and 3-word BVs", words)
	}
}

// TestAHReadHomogeneity checks the invariant the hardware relies on: after
// the AH transformation each BV state has exactly one read instruction,
// shared by all its gated out-edges and its finalization.
func TestAHReadHomogeneity(t *testing.T) {
	patterns := []string{"ab{2,5}(cd){6}e", "a(bc){3}d{4,12}e", "x.{200}y|z{9}"}
	for _, pat := range patterns {
		ast := LegalizeNesting(regex.Normalize(regex.MustParse(pat)))
		ast = regex.Rewrite(ast, regex.Options{UnfoldThreshold: 4, BVSize: 16})
		machine, err := nbva.Build(ast)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		if _, err := nbva.Transform(machine); err != nil {
			t.Fatalf("%q: read homogeneity violated: %v", pat, err)
		}
	}
}
