// Package compiler implements the BVAP regex-to-hardware compiler (§7):
// parsing, legalization, rewriting (unfold threshold + bounded-repetition
// splitting), NBVA construction, the AH transformation, instruction
// selection against the Table 3 ISA, greedy tile mapping, and emission of
// the JSON configuration consumed by the cycle simulator.
//
// The package also compiles the baseline images (CA/eAP/CAMA and CNT) used
// by the evaluation: baselines unfold every bounded repetition; CNT keeps a
// hardware counter for counter-unambiguous repetitions and unfolds the
// ambiguous ones.
package compiler

import (
	"context"
	"fmt"
	"sort"

	"bvap/internal/archmodel"
	"bvap/internal/charclass"
	"bvap/internal/encoding"
	"bvap/internal/glushkov"
	"bvap/internal/hwconf"
	"bvap/internal/isa"
	"bvap/internal/nbva"
	"bvap/internal/regex"
	"bvap/internal/telemetry"
)

// Options are the user-controlled compilation parameters (§7 and the §8
// design space exploration).
type Options struct {
	// BVSizeBits is the virtual bit-vector size K (8–64, power of two).
	BVSizeBits int
	// UnfoldThreshold is the largest upper bound unfolded instead of
	// counted.
	UnfoldThreshold int

	// Tracer, when non-nil, receives per-phase compile spans and
	// per-pattern structured events (rewrite decisions, tile mapping).
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, accrues compile counters (phase wall time,
	// Table 3 read-kind hits, rewrite decisions, resource totals).
	Metrics *telemetry.Registry

	// Ctx, when non-nil, cancels compilation between patterns and before
	// tile mapping: Compile returns the context's error wrapped with the
	// position it stopped at. Nil means no cancellation.
	Ctx context.Context
	// MaxTotalSTEs, when positive, is a compile-time resource budget:
	// patterns whose STEs would push the running total past the budget
	// are marked unsupported with KindBudget instead of failing the batch
	// (per-pattern failure isolation).
	MaxTotalSTEs int
}

// DefaultOptions mirrors regex.DefaultOptions: K = 64, threshold 8.
func DefaultOptions() Options { return Options{BVSizeBits: 64, UnfoldThreshold: 8} }

func (o Options) validate() error {
	k := o.BVSizeBits
	if k < 8 || k > isa.PhysicalBVBits || k&(k-1) != 0 {
		return fmt.Errorf("compiler: bv size %d must be a power of two in [8, %d]", k, isa.PhysicalBVBits)
	}
	if o.UnfoldThreshold < 0 {
		return fmt.Errorf("compiler: negative unfold threshold")
	}
	return nil
}

// Failure kinds recorded in RegexReport.Kind for unsupported patterns; the
// root package maps them onto its sentinel error taxonomy (errors.Is).
const (
	// KindSyntax marks a pattern the parser rejected.
	KindSyntax = "syntax"
	// KindCapacity marks a pattern that parsed but exceeds a hardware
	// resource limit (STEs, BV clusters, instruction encodings).
	KindCapacity = "capacity"
	// KindBudget marks a pattern skipped because the caller's compile
	// budget (Options.MaxTotalSTEs) was exhausted.
	KindBudget = "budget"
)

// RegexReport summarizes one compiled regex.
type RegexReport struct {
	Pattern string
	// Supported is false when the regex cannot be mapped to BVAP.
	Supported bool
	Reason    string
	// Kind classifies the failure when Supported is false: KindSyntax,
	// KindCapacity or KindBudget. Empty for supported patterns.
	Kind string
	// STEs and BVSTEs are the AH-NBVA resource counts.
	STEs   int
	BVSTEs int
	// UnfoldedSTEs is the state count a baseline needs for this regex.
	UnfoldedSTEs int
	// MaxBound is the largest repetition bound in the source.
	MaxBound int
	// Words is the largest virtual BV word count used.
	Words int
	// CAMEntries is the number of CAM rows the pattern's character
	// classes occupy under the CAMA-style symbol encoding (§7 step 2);
	// complex classes cost more than one row per STE.
	CAMEntries int
}

// Report aggregates compilation results.
type Report struct {
	PerRegex     []RegexReport
	TotalSTEs    int
	TotalBVSTEs  int
	TotalCAM     int
	Tiles        int
	Unsupported  int
	UnfoldedSTEs int
}

// Result bundles everything a Compile call produces.
type Result struct {
	Config *hwconf.Config
	// Machines holds the executable AH automata in machine order (nil
	// entries for unsupported regexes); the functional simulator and the
	// consistency checks run these directly.
	Machines []*nbva.AHNBVA
	Report   Report
}

// Compile compiles a set of regexes into a BVAP configuration.
func Compile(patterns []string, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	cfg := &hwconf.Config{
		Version: hwconf.FormatVersion,
		Params: hwconf.Params{
			BVSizeBits:      opt.BVSizeBits,
			UnfoldThreshold: opt.UnfoldThreshold,
		},
	}
	res := &Result{Config: cfg}
	in := newInstr(opt)
	for i, pat := range patterns {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("compiler: compilation canceled at pattern %d of %d: %w",
					i, len(patterns), err)
			}
		}
		machine, ah, rep := compileOne(pat, opt, in)
		if rep.Supported && opt.MaxTotalSTEs > 0 &&
			res.Report.TotalSTEs+rep.STEs > opt.MaxTotalSTEs {
			// Budget exhaustion isolates per pattern: this pattern (and
			// any later ones that don't fit) is skipped, the batch
			// continues.
			reason := fmt.Sprintf("compile budget: %d STEs would exceed the %d-STE budget (%d used)",
				rep.STEs, opt.MaxTotalSTEs, res.Report.TotalSTEs)
			rep = RegexReport{Pattern: pat, Kind: KindBudget, Reason: reason,
				MaxBound: rep.MaxBound, UnfoldedSTEs: rep.UnfoldedSTEs}
			machine = hwconf.Machine{Regex: pat, Unsupported: reason}
			ah = nil
		}
		in.patternDone(machine, rep, opt)
		cfg.Machines = append(cfg.Machines, machine)
		res.Machines = append(res.Machines, ah)
		res.Report.PerRegex = append(res.Report.PerRegex, rep)
		if rep.Supported {
			res.Report.TotalSTEs += rep.STEs
			res.Report.TotalBVSTEs += rep.BVSTEs
			res.Report.TotalCAM += rep.CAMEntries
			res.Report.UnfoldedSTEs += rep.UnfoldedSTEs
		} else {
			res.Report.Unsupported++
		}
	}
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("compiler: compilation canceled before tile mapping: %w", err)
		}
	}
	mapDone := in.phase("tile-mapping", "")
	cfg.Tiles, cfg.Provenance = mapToTiles(cfg)
	mapDone()
	in.mappingDone(cfg)
	res.Report.Tiles = len(cfg.Tiles)
	return res, nil
}

// compileOne runs the per-regex pipeline, returning the serialized machine,
// the executable AH automaton, and the report entry. The optional instr
// context receives one wall-time span per phase (parse → rewrite → glushkov
// → ah → instruction-selection).
func compileOne(pat string, opt Options, in *instr) (hwconf.Machine, *nbva.AHNBVA, RegexReport) {
	rep := RegexReport{Pattern: pat}
	fail := func(kind, reason string) (hwconf.Machine, *nbva.AHNBVA, RegexReport) {
		rep.Supported = false
		rep.Kind = kind
		rep.Reason = reason
		return hwconf.Machine{Regex: pat, Unsupported: reason}, nil, rep
	}
	done := in.phase("parse", pat)
	ast, anchored, err := regex.ParseAnchored(pat)
	if err != nil {
		done()
		return fail(KindSyntax, err.Error())
	}
	st := regex.Analyze(ast)
	rep.MaxBound = st.MaxUpperBound
	rep.UnfoldedSTEs = st.UnfoldedLiterals
	done()

	done = in.phase("rewrite", pat)
	ast = LegalizeNesting(regex.Normalize(ast))
	ast = regex.Rewrite(ast, regex.Options{
		UnfoldThreshold: opt.UnfoldThreshold,
		BVSize:          opt.BVSizeBits,
	})
	done()

	done = in.phase("glushkov", pat)
	machine, err := nbva.Build(ast)
	done()
	if err != nil {
		return fail(KindCapacity, err.Error())
	}
	machine.Anchored = anchored

	done = in.phase("ah", pat)
	ah, err := nbva.Transform(machine)
	if err != nil {
		done()
		return fail(KindCapacity, err.Error())
	}
	// A machine may span tiles (read-gated transitions travel over the
	// ordinary state-transition network), but each vector-connected
	// cluster must fit one tile: the MFCB cannot route vectors across
	// tiles (§6). set1 states are power-gated constant generators (§5)
	// and need no BV storage, which is what makes a tile's maximum
	// repetition bound 48 × 64 = 3072.
	if ah.Size() > archmodel.STEsPerTile*archmodel.TilesPerArray {
		done()
		return fail(KindCapacity, fmt.Sprintf("needs %d STEs, array capacity is %d",
			ah.Size(), archmodel.STEsPerTile*archmodel.TilesPerArray))
	}
	for _, cl := range bvClusters(ah) {
		if cl.storageBVs > archmodel.BVsPerTile {
			done()
			return fail(KindCapacity, fmt.Sprintf("counting cluster needs %d BVs, tile capacity is %d",
				cl.storageBVs, archmodel.BVsPerTile))
		}
		if cl.stes > archmodel.STEsPerTile {
			done()
			return fail(KindCapacity, fmt.Sprintf("counting cluster needs %d STEs, tile capacity is %d",
				cl.stes, archmodel.STEsPerTile))
		}
	}
	done()

	done = in.phase("instruction-selection", pat)
	m, maxWords, err := serializeMachine(pat, ah)
	if err != nil {
		done()
		return fail(KindCapacity, err.Error())
	}
	// §7 step 2: generate (and self-check) the symbol encoding schema.
	classes := make([]charclass.Class, 0, ah.Size())
	for _, s := range ah.States {
		classes = append(classes, s.Class)
		if err := encoding.Verify(s.Class, encoding.Encode(s.Class)); err != nil {
			done()
			return fail(KindCapacity, err.Error())
		}
	}
	done()
	rep.Supported = true
	rep.STEs = ah.Size()
	rep.BVSTEs = ah.BVStateCount()
	rep.Words = maxWords
	rep.CAMEntries = encoding.Analyze(classes).Entries
	return m, ah, rep
}

// serializeMachine lowers an AH-NBVA into the configuration schema,
// selecting a Table 3 instruction for every BV-STE.
func serializeMachine(pat string, ah *nbva.AHNBVA) (hwconf.Machine, int, error) {
	m := hwconf.Machine{Regex: pat, Anchored: ah.Anchored}
	maxWords := 0
	for id, s := range ah.States {
		ste := hwconf.STE{ID: id, Class: hwconf.EncodeClass(s.Class)}
		if s.Width > 0 {
			in, err := SelectInstruction(s)
			if err != nil {
				return hwconf.Machine{}, 0, fmt.Errorf("state %d: %v", id, err)
			}
			ste.IsBV = true
			ste.WidthBits = s.Width
			ste.Instruction = in.Encode()
			ste.Action = in.Swap.String()
			if in.Words > maxWords {
				maxWords = in.Words
			}
		}
		m.STEs = append(m.STEs, ste)
	}
	for _, e := range ah.Edges {
		m.Edges = append(m.Edges, hwconf.Edge{From: e.From, To: e.To, Gated: e.Gated})
	}
	m.Initial = append(m.Initial, ah.Initial...)
	m.Finals = append(m.Finals, ah.Finals...)
	return m, maxWords, nil
}

// SelectInstruction maps an AH state's action and read onto a Table 3
// instruction. The virtual size is the smallest word count that both holds
// the vector and makes the range read expressible as rAll, rHalf or
// rQuarter.
func SelectInstruction(s nbva.AHState) (isa.Instruction, error) {
	words := (s.Width + isa.WordBits - 1) / isa.WordBits
	if words > isa.MaxWords {
		return isa.Instruction{}, fmt.Errorf("width %d exceeds the physical BV", s.Width)
	}
	in := isa.Instruction{Words: words}
	switch s.Action {
	case nbva.ActSet1:
		in.Swap = isa.SwapSet1
	case nbva.ActCopy:
		in.Swap = isa.SwapCopy
	case nbva.ActShift:
		in.Swap = isa.SwapShift
	default:
		return isa.Instruction{}, fmt.Errorf("bv state with action %v", s.Action)
	}
	r := s.Read
	switch {
	case r.None:
		in.Read = isa.NoRead
	case r.Lo == r.Hi:
		in.Read = isa.ReadN
		in.Pointer = r.Lo
	case r.Lo == 1:
		// Grow the virtual size until the span is a supported
		// fraction of it.
		for w := words; w <= isa.MaxWords; w++ {
			bits := w * isa.WordBits
			switch r.Hi {
			case bits:
				in.Read, in.Words = isa.ReadAll, w
				return in, validated(in)
			case bits / 2:
				in.Read, in.Words = isa.ReadHalf, w
				return in, validated(in)
			case bits / 4:
				in.Read, in.Words = isa.ReadQuarter, w
				return in, validated(in)
			}
		}
		return isa.Instruction{}, fmt.Errorf("range read r(1,%d) not realizable", r.Hi)
	default:
		return isa.Instruction{}, fmt.Errorf("read %v must be rewritten (lo must be 1 or lo==hi)", r)
	}
	return in, validated(in)
}

func validated(in isa.Instruction) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("compiler: selected invalid instruction: %v", err)
	}
	return nil
}

// fcbFanInThreshold is the per-state fan-in above which a machine's graph
// exceeds the Reduced CrossBar's row connectivity and must be placed on a
// tile pair reconfigured to FCB mode (§6). The RCB exploits the sparsity of
// real automata; a state fed by dozens of predecessors (dense starred
// alternations) needs the full crossbar. AH splitting multiplies edges
// mechanically, so fan-in — not average density — is the routability proxy.
const fcbFanInThreshold = 32

// needsFCB reports whether a serialized machine's transition graph is too
// dense for RCB routing.
func needsFCB(m *hwconf.Machine) bool {
	if len(m.STEs) == 0 {
		return false
	}
	fanIn := make([]int, len(m.STEs))
	for _, e := range m.Edges {
		fanIn[e.To]++
	}
	for _, f := range fanIn {
		if f > fcbFanInThreshold {
			return true
		}
	}
	return false
}

// cluster is a vector-connected group of BV states: states joined by edges
// that deliver vectors through the MFCB (destination action copy or shift).
// A cluster must map into a single tile.
type cluster struct {
	stes       int   // states in the cluster
	storageBVs int   // BVs with SRAM storage (copy/shift actions)
	ids        []int // member STE ids (populated by machineClusters only)
}

// bvClusters computes the vector-connected clusters of an AH automaton.
func bvClusters(ah *nbva.AHNBVA) []cluster {
	n := ah.Size()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range ah.Edges {
		from, to := ah.States[e.From], ah.States[e.To]
		if from.Width > 0 && to.Width > 0 &&
			(to.Action == nbva.ActCopy || to.Action == nbva.ActShift) {
			union(e.From, e.To)
		}
	}
	groups := map[int]*cluster{}
	for q, s := range ah.States {
		if s.Width == 0 {
			continue
		}
		root := find(q)
		g := groups[root]
		if g == nil {
			g = &cluster{}
			groups[root] = g
		}
		g.stes++
		if s.Action != nbva.ActSet1 {
			g.storageBVs++
		}
	}
	out := make([]cluster, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	return out
}

// machineClusters recomputes clusters from a serialized machine (the
// configuration is authoritative for mapping).
func machineClusters(m *hwconf.Machine) []cluster {
	n := len(m.STEs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	isBV := func(i int) bool { return m.STEs[i].IsBV }
	carriesVector := func(i int) bool {
		return isBV(i) && (m.STEs[i].Action == "copy" || m.STEs[i].Action == "shift")
	}
	for _, e := range m.Edges {
		if isBV(e.From) && carriesVector(e.To) {
			parent[find(e.From)] = find(e.To)
		}
	}
	groups := map[int]*cluster{}
	for q := range m.STEs {
		if !isBV(q) {
			continue
		}
		root := find(q)
		g := groups[root]
		if g == nil {
			g = &cluster{}
			groups[root] = g
		}
		g.stes++
		g.ids = append(g.ids, q)
		if m.STEs[q].Action != "set1" {
			g.storageBVs++
		}
	}
	out := make([]cluster, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	return out
}

// mapToTiles performs the greedy mapping of machines onto 256-STE / 48-BV
// tiles (first-fit decreasing, the strategy §8 adopts from CAMA). Clusters
// are atomic; plain (non-BV) states of a machine may spill into any tile
// with spare STE capacity, since ordinary state transitions cross tiles
// through the array's global switch.
//
// Alongside the placement it returns the pattern↔tile provenance table:
// one TileSpan per contiguous run of a machine's STE ids on a tile, so the
// profiler can answer "which tile hosts STE q of machine m?".
func mapToTiles(cfg *hwconf.Config) ([]hwconf.TilePlacement, []hwconf.TileSpan) {
	type item struct {
		machine int
		stes    int
		bvs     int
		fcb     bool
		ids     []int // STE ids this item carries, sorted ascending
	}
	var items []item
	for i := range cfg.Machines {
		m := &cfg.Machines[i]
		if m.Unsupported != "" {
			continue
		}
		fcb := needsFCB(m)
		clustered := make(map[int]bool, len(m.STEs))
		for _, cl := range machineClusters(m) {
			items = append(items, item{machine: i, stes: cl.stes, bvs: cl.storageBVs, fcb: fcb, ids: cl.ids})
			for _, q := range cl.ids {
				clustered[q] = true
			}
		}
		if plain := len(m.STEs) - len(clustered); plain > 0 {
			ids := make([]int, 0, plain)
			for q := range m.STEs {
				if !clustered[q] {
					ids = append(ids, q)
				}
			}
			items = append(items, item{machine: i, stes: plain, fcb: fcb, ids: ids})
		}
	}
	// First-fit decreasing by BV demand then STE demand.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0; j-- {
			a, b := items[j], items[j-1]
			if a.bvs > b.bvs || (a.bvs == b.bvs && a.stes > b.stes) {
				items[j], items[j-1] = b, a
			} else {
				break
			}
		}
	}
	var tiles []hwconf.TilePlacement
	// onTile[machine][tile] collects the STE ids placed there, run-length
	// encoded into TileSpans once the mapping is complete.
	onTile := map[int]map[int][]int{}
	record := func(machine, tile int, ids []int) {
		byTile := onTile[machine]
		if byTile == nil {
			byTile = map[int][]int{}
			onTile[machine] = byTile
		}
		byTile[tile] = append(byTile[tile], ids...)
	}
	place := func(it item) {
		capacity := archmodel.STEsPerTile
		if it.fcb {
			capacity = archmodel.FCBModeSTEs
		}
		for ti := range tiles {
			t := &tiles[ti]
			if t.FCBMode != it.fcb {
				continue
			}
			if t.STEs+it.stes <= capacity && t.BVSTEs+it.bvs <= archmodel.BVsPerTile {
				t.STEs += it.stes
				t.BVSTEs += it.bvs
				addMachine(t, it.machine)
				record(it.machine, ti, it.ids)
				return
			}
		}
		t := hwconf.TilePlacement{Tile: len(tiles), STEs: it.stes, BVSTEs: it.bvs, FCBMode: it.fcb}
		addMachine(&t, it.machine)
		record(it.machine, len(tiles), it.ids)
		tiles = append(tiles, t)
	}
	for _, it := range items {
		capacity := archmodel.STEsPerTile
		if it.fcb {
			capacity = archmodel.FCBModeSTEs
		}
		// Plain-state items larger than a placement split freely.
		for it.stes > capacity {
			place(item{machine: it.machine, stes: capacity, fcb: it.fcb, ids: it.ids[:capacity]})
			it.stes -= capacity
			it.ids = it.ids[capacity:]
		}
		place(it)
	}
	// Emit provenance spans in deterministic (machine, tile) order.
	var spans []hwconf.TileSpan
	for m := 0; m < len(cfg.Machines); m++ {
		byTile := onTile[m]
		if byTile == nil {
			continue
		}
		tilesOf := make([]int, 0, len(byTile))
		for t := range byTile {
			tilesOf = append(tilesOf, t)
		}
		sort.Ints(tilesOf)
		for _, t := range tilesOf {
			spans = append(spans, hwconf.SpansFromSTEs(m, t, byTile[t])...)
		}
	}
	return tiles, spans
}

func addMachine(t *hwconf.TilePlacement, m int) {
	for _, existing := range t.Machines {
		if existing == m {
			return
		}
	}
	t.Machines = append(t.Machines, m)
}

// LegalizeNesting removes nested counting, which the single-BV-per-state
// hardware cannot represent: when a bounded repetition contains another
// counting repetition in its body, the cheaper of the two (estimated as
// bound × body positions) is unfolded. The pass repeats until no nesting
// remains.
func LegalizeNesting(n regex.Node) regex.Node {
	for {
		changed := false
		n = legalizeOnce(n, &changed)
		if !changed {
			return n
		}
	}
}

func legalizeOnce(n regex.Node, changed *bool) regex.Node {
	switch n := n.(type) {
	case regex.Empty, regex.Lit:
		return n
	case *regex.Concat:
		factors := make([]regex.Node, len(n.Factors))
		for i, f := range n.Factors {
			factors[i] = legalizeOnce(f, changed)
		}
		return regex.NewConcat(factors...)
	case *regex.Alt:
		alts := make([]regex.Node, len(n.Alternatives))
		for i, a := range n.Alternatives {
			alts[i] = legalizeOnce(a, changed)
		}
		return regex.NewAlt(alts...)
	case *regex.Star:
		return &regex.Star{Sub: legalizeOnce(n.Sub, changed)}
	case *regex.Repeat:
		sub := legalizeOnce(n.Sub, changed)
		if isCounting(n) && containsCounting(sub) {
			*changed = true
			outerCost := boundOf(n) * positions(sub)
			if innerCost := innerCountingCost(sub); innerCost <= outerCost {
				// Unfold the inner repetitions.
				return regex.NewRepeat(regex.Unfold(sub, regex.MaxBound), n.Min, n.Max)
			}
			// Unfold the outer repetition.
			return unfoldOuter(sub, n.Min, n.Max)
		}
		return regex.NewRepeat(sub, n.Min, n.Max)
	default:
		return n
	}
}

func isCounting(r *regex.Repeat) bool { return !(r.Min == 0 && r.Max == 1) }

func containsCounting(n regex.Node) bool {
	found := false
	regex.Walk(n, func(m regex.Node) {
		if r, ok := m.(*regex.Repeat); ok && isCounting(r) {
			found = true
		}
	})
	return found
}

func boundOf(r *regex.Repeat) int {
	if r.Max == regex.Unbounded {
		if r.Min == 0 {
			return 1
		}
		return r.Min
	}
	return r.Max
}

func positions(n regex.Node) int {
	c := 0
	regex.Walk(n, func(m regex.Node) {
		if _, ok := m.(regex.Lit); ok {
			c++
		}
	})
	return c
}

// innerCountingCost estimates the unfolding cost of the counting
// repetitions inside n.
func innerCountingCost(n regex.Node) int {
	cost := 0
	regex.Walk(n, func(m regex.Node) {
		if r, ok := m.(*regex.Repeat); ok && isCounting(r) {
			cost += boundOf(r) * positions(r.Sub)
		}
	})
	return cost
}

func unfoldOuter(sub regex.Node, min, max int) regex.Node {
	if max == regex.Unbounded {
		var factors []regex.Node
		for i := 0; i < min; i++ {
			factors = append(factors, sub)
		}
		factors = append(factors, &regex.Star{Sub: sub})
		return regex.NewConcat(factors...)
	}
	var factors []regex.Node
	for i := 0; i < min; i++ {
		factors = append(factors, sub)
	}
	for i := min; i < max; i++ {
		factors = append(factors, regex.NewRepeat(sub, 0, 1))
	}
	return regex.NewConcat(factors...)
}

// BaselineMachine is one regex compiled for an unfolding architecture.
type BaselineMachine struct {
	Pattern     string
	NFA         *glushkov.NFA
	Supported   bool
	Reason      string
	STEs        int
	Tiles       int
	CounterSTEs int // CNT only: STEs saved by counters, kept for reporting
	Counters    int // CNT only: counter elements used
}

// MaxSTEsPerRegex is the AP-style per-regex limit (§3: "Previous AP-style
// hardware is limited to at most 4096 STEs per regex").
const MaxSTEsPerRegex = 4096

// CompileBaseline compiles regexes for CA, eAP or CAMA by full unfolding. A
// machine may span multiple tiles within an array (cross-tile transitions
// use the array's global switch), up to the 4096-STE AP limit.
func CompileBaseline(patterns []string) []BaselineMachine {
	out := make([]BaselineMachine, 0, len(patterns))
	for _, pat := range patterns {
		out = append(out, compileBaselineOne(pat, false))
	}
	return out
}

// CompileCNT compiles regexes for the CNT baseline: CAMA plus counter
// elements. Counter-unambiguous repetitions use one counter element each;
// counter-ambiguous ones are unfolded (§8's micro-benchmark discussion).
func CompileCNT(patterns []string) []BaselineMachine {
	out := make([]BaselineMachine, 0, len(patterns))
	for _, pat := range patterns {
		out = append(out, compileBaselineOne(pat, true))
	}
	return out
}

func compileBaselineOne(pat string, counters bool) BaselineMachine {
	m := BaselineMachine{Pattern: pat}
	ast, anchored, err := regex.ParseAnchored(pat)
	if err != nil {
		m.Reason = err.Error()
		return m
	}
	ast = regex.Normalize(ast)
	var stes int
	if counters {
		// The counter image determines STE and counter cost; the
		// functional NFA below still uses the fully unfolded automaton
		// so CNT match results are exact (a counter element enforces
		// the same bound the unfolded chain does).
		lowered, nCounters, saved := LowerUnambiguousCounting(ast)
		m.Counters = nCounters
		m.CounterSTEs = saved
		stes = positions(regex.FullyUnfold(lowered)) + nCounters
	} else {
		stes = positions(regex.FullyUnfold(ast))
	}
	if stes > MaxSTEsPerRegex {
		m.Reason = fmt.Sprintf("needs %d STEs, AP-style limit is %d", stes, MaxSTEsPerRegex)
		return m
	}
	nfa, err := glushkov.Build(regex.FullyUnfold(ast))
	if err != nil {
		m.Reason = err.Error()
		return m
	}
	nfa.Anchored = anchored
	m.NFA = nfa
	m.Supported = true
	m.STEs = stes
	m.Tiles = (stes + archmodel.STEsPerTile - 1) / archmodel.STEsPerTile
	return m
}

// LowerUnambiguousCounting rewrites counter-unambiguous bounded repetitions
// into a single-position placeholder (they are handled by a counter element
// at runtime) and returns the rewritten AST, the number of counters used,
// and the unfolded STEs those counters saved.
//
// A repetition is counter-unambiguous when its counter can never hold two
// values at once: we use the conservative single-class criterion of [17] —
// the body is one character class, the bound is exact ({n}), and no
// predecessor of the repetition can re-enter it while it counts (the body
// class is disjoint from the classes that can immediately precede the
// repetition). CNT executes such repetitions with one STE plus one counter.
func LowerUnambiguousCounting(n regex.Node) (out regex.Node, counters, savedSTEs int) {
	switch n := n.(type) {
	case regex.Empty, regex.Lit:
		return n, 0, 0
	case *regex.Concat:
		factors := make([]regex.Node, len(n.Factors))
		prevClass := charclass.Empty()
		first := true
		for i, f := range n.Factors {
			if rep, ok := f.(*regex.Repeat); ok && isCounting(rep) && !first {
				if lit, ok := rep.Sub.(regex.Lit); ok && rep.Min == rep.Max &&
					!lit.Class.Overlaps(prevClass) {
					// Counter-unambiguous: keep one position; the
					// counter tracks the bound.
					factors[i] = lit
					counters++
					savedSTEs += rep.Max - 1
					prevClass = lit.Class
					continue
				}
			}
			sub, c, s := LowerUnambiguousCounting(f)
			factors[i] = sub
			counters += c
			savedSTEs += s
			prevClass = lastClassOf(f)
			first = false
		}
		return regex.NewConcat(factors...), counters, savedSTEs
	case *regex.Alt:
		alts := make([]regex.Node, len(n.Alternatives))
		for i, a := range n.Alternatives {
			sub, c, s := LowerUnambiguousCounting(a)
			alts[i] = sub
			counters += c
			savedSTEs += s
		}
		return regex.NewAlt(alts...), counters, savedSTEs
	case *regex.Star:
		sub, c, s := LowerUnambiguousCounting(n.Sub)
		return &regex.Star{Sub: sub}, c, s
	case *regex.Repeat:
		sub, c, s := LowerUnambiguousCounting(n.Sub)
		return regex.NewRepeat(sub, n.Min, n.Max), c, s
	default:
		return n, 0, 0
	}
}

// lastClassOf approximates the set of symbols a node can end with.
func lastClassOf(n regex.Node) charclass.Class {
	switch n := n.(type) {
	case regex.Lit:
		return n.Class
	case *regex.Concat:
		if len(n.Factors) == 0 {
			return charclass.Empty()
		}
		c := lastClassOf(n.Factors[len(n.Factors)-1])
		// If the tail is nullable the previous factor can also end the
		// match; be conservative and union backwards.
		for i := len(n.Factors) - 1; i > 0 && regex.Nullable(n.Factors[i]); i-- {
			c = c.Union(lastClassOf(n.Factors[i-1]))
		}
		return c
	case *regex.Alt:
		c := charclass.Empty()
		for _, a := range n.Alternatives {
			c = c.Union(lastClassOf(a))
		}
		return c
	case *regex.Star:
		return lastClassOf(n.Sub)
	case *regex.Repeat:
		return lastClassOf(n.Sub)
	default:
		return charclass.Empty()
	}
}
