package compiler

import (
	"strings"
	"testing"

	"bvap/internal/archmodel"
)

// densePattern builds a regex whose Glushkov graph is dense: a starred
// alternation of k two-symbol branches has complete last×first bipartite
// wiring, so the edge count grows with k² while states grow with k.
func densePattern(k int) string {
	branches := make([]string, k)
	for i := range branches {
		branches[i] = string(rune('a'+i%26)) + string(rune('b'+i%25))
	}
	return "(" + strings.Join(branches, "|") + ")*z"
}

func TestDenseMachineRoutedToFCB(t *testing.T) {
	res := compile(t, []string{densePattern(40)}, DefaultOptions())
	if !res.Report.PerRegex[0].Supported {
		t.Fatalf("unsupported: %s", res.Report.PerRegex[0].Reason)
	}
	m := &res.Config.Machines[0]
	if !needsFCB(m) {
		t.Skip("generated fan-in below threshold; widen the pattern")
	}
	fcbTiles := 0
	for _, tp := range res.Config.Tiles {
		if tp.FCBMode {
			fcbTiles++
			if tp.STEs > archmodel.FCBModeSTEs {
				t.Fatalf("FCB placement holds %d STEs, capacity %d", tp.STEs, archmodel.FCBModeSTEs)
			}
		}
	}
	if fcbTiles == 0 {
		t.Fatal("dense machine not placed in FCB mode")
	}
}

func TestSparseMachineStaysRCB(t *testing.T) {
	res := compile(t, []string{"abcdef", "ab{40}c"}, DefaultOptions())
	for _, tp := range res.Config.Tiles {
		if tp.FCBMode {
			t.Fatalf("sparse machines placed in FCB mode: %+v", tp)
		}
	}
}

func TestFCBAndRCBDoNotShareTiles(t *testing.T) {
	res := compile(t, []string{densePattern(40), "plainword"}, DefaultOptions())
	for _, tp := range res.Config.Tiles {
		hasDense, hasSparse := false, false
		for _, mi := range tp.Machines {
			if mi == 0 {
				hasDense = true
			} else {
				hasSparse = true
			}
		}
		if hasDense && hasSparse && needsFCB(&res.Config.Machines[0]) {
			t.Fatalf("FCB and RCB machines share tile %d", tp.Tile)
		}
	}
}
