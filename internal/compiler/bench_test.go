package compiler

import "testing"

func BenchmarkCompilePipeline(b *testing.B) {
	patterns := []string{
		"(?i)attack[0-9a-f]{32}end",
		"url=.{8000}",
		"ab{2,114}c",
		`\d{3}-\d{4}`,
		"x(ab|cd){6}y",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(patterns, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileBaselineUnfolded(b *testing.B) {
	patterns := []string{"a.{2000}b", "x.{1000}y"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompileBaseline(patterns)
	}
}
