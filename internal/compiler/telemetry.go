package compiler

// Compile-pipeline instrumentation: per-phase wall-time spans (parse →
// rewrite → Glushkov → AH → instruction-selection → tile-mapping) and
// per-pattern structured events recording the rewrite decisions the §7
// pipeline took — unfold vs. split, the virtual BV sizes chosen, which of
// the restricted reads (rAll/rHalf/rQuarter) instruction selection hit,
// and how many tiles the mapping used. Everything is optional: with no
// Tracer and no Metrics registry in Options, compilation takes a single
// nil check per phase.

import (
	"time"

	"bvap/internal/hwconf"
	"bvap/internal/isa"
	"bvap/internal/telemetry"
)

// Compile-metric names exposed on the Options.Metrics registry.
const (
	MetricCompilePhaseSeconds = "bvap_compile_phase_seconds_total"
	MetricCompileReadHits     = "bvap_compile_read_hits_total"
	MetricCompileRewrites     = "bvap_compile_rewrite_total"
	MetricCompilePatterns     = "bvap_compile_patterns_total"
	MetricCompileUnsupported  = "bvap_compile_unsupported_total"
	MetricCompileSTEs         = "bvap_compile_stes_total"
	MetricCompileBVSTEs       = "bvap_compile_bvstes_total"
	MetricCompileTiles        = "bvap_compile_tiles"
	MetricCompileBVWords      = "bvap_compile_bv_words"
)

// instr bundles the optional compile-time instrumentation. A nil *instr is
// fully inert; every method is nil-receiver safe.
type instr struct {
	tracer *telemetry.Tracer

	phaseSeconds *telemetry.FloatCounterVec
	readHits     *telemetry.CounterVec
	rewrites     *telemetry.CounterVec
	patterns     *telemetry.Counter
	unsupported  *telemetry.Counter
	stes         *telemetry.Counter
	bvstes       *telemetry.Counter
	tiles        *telemetry.Gauge
	bvWords      *telemetry.Histogram
}

// newInstr builds the instrumentation context from Options; it returns nil
// when neither a tracer nor a metrics registry is configured.
func newInstr(opt Options) *instr {
	if opt.Tracer == nil && opt.Metrics == nil {
		return nil
	}
	in := &instr{tracer: opt.Tracer}
	if reg := opt.Metrics; reg != nil {
		in.phaseSeconds = reg.FloatCounterVec(MetricCompilePhaseSeconds,
			"wall time spent in each compiler phase", "phase")
		in.readHits = reg.CounterVec(MetricCompileReadHits,
			"Table 3 read kinds selected for BV-STEs", "read")
		in.rewrites = reg.CounterVec(MetricCompileRewrites,
			"per-pattern rewrite decisions (unfold, split, counted)", "decision")
		in.patterns = reg.Counter(MetricCompilePatterns, "patterns compiled")
		in.unsupported = reg.Counter(MetricCompileUnsupported,
			"patterns rejected as unsupported")
		in.stes = reg.Counter(MetricCompileSTEs, "STEs allocated across patterns")
		in.bvstes = reg.Counter(MetricCompileBVSTEs, "BV-STEs allocated across patterns")
		in.tiles = reg.Gauge(MetricCompileTiles, "tiles used by the last compilation")
		in.bvWords = reg.Histogram(MetricCompileBVWords,
			"virtual BV word counts chosen by instruction selection",
			[]float64{1, 2, 3, 4, 5, 6, 7, 8})
	}
	return in
}

// phase opens a wall-time span for one compiler phase (optionally scoped
// to a pattern); the returned func closes the span and accrues the phase's
// duration counter. Always call the returned func exactly once.
func (in *instr) phase(name, pattern string) func() {
	if in == nil {
		return func() {}
	}
	start := time.Now()
	var sp *telemetry.Span
	if in.tracer != nil {
		sp = in.tracer.Span(name, "compiler")
		if pattern != "" {
			sp.SetArg("pattern", pattern)
		}
	}
	return func() {
		if in.phaseSeconds != nil {
			in.phaseSeconds.With(name).Add(time.Since(start).Seconds())
		}
		sp.End()
	}
}

// patternDone records the per-pattern outcome: counters, the rewrite
// decision taken, the read kinds and virtual BV sizes selected, and a
// structured trace event carrying all of it.
func (in *instr) patternDone(m hwconf.Machine, rep RegexReport, opt Options) {
	if in == nil {
		return
	}
	// Rewrite decision classification: a pattern whose largest bound is at
	// or below the threshold is unfolded outright; one whose bound
	// exceeds the virtual BV size K is split; any pattern that kept
	// BV-STEs is counted in hardware.
	unfolded := rep.Supported && rep.MaxBound > 0 && rep.MaxBound <= opt.UnfoldThreshold
	split := rep.Supported && rep.MaxBound > opt.BVSizeBits
	counted := rep.Supported && rep.BVSTEs > 0

	readCounts := map[string]int{}
	maxWords := 0
	for _, s := range m.STEs {
		if !s.IsBV {
			continue
		}
		insn, err := isa.Decode(s.Instruction)
		if err != nil {
			continue
		}
		readCounts[insn.Read.String()]++
		if in.bvWords != nil {
			in.bvWords.Observe(float64(insn.Words))
		}
		if insn.Words > maxWords {
			maxWords = insn.Words
		}
	}

	if in.patterns != nil {
		in.patterns.Inc()
		if !rep.Supported {
			in.unsupported.Inc()
		} else {
			in.stes.Add(uint64(rep.STEs))
			in.bvstes.Add(uint64(rep.BVSTEs))
		}
		if unfolded {
			in.rewrites.With("unfold").Inc()
		}
		if split {
			in.rewrites.With("split").Inc()
		}
		if counted {
			in.rewrites.With("counted").Inc()
		}
		for read, n := range readCounts {
			in.readHits.With(read).Add(uint64(n))
		}
	}

	if in.tracer != nil {
		args := map[string]any{
			"pattern":          rep.Pattern,
			"supported":        rep.Supported,
			"stes":             rep.STEs,
			"bv_stes":          rep.BVSTEs,
			"unfolded_stes":    rep.UnfoldedSTEs,
			"max_bound":        rep.MaxBound,
			"bv_size":          opt.BVSizeBits,
			"unfold_threshold": opt.UnfoldThreshold,
			"decision_unfold":  unfolded,
			"decision_split":   split,
			"decision_counted": counted,
			"max_bv_words":     maxWords,
		}
		if !rep.Supported {
			args["reason"] = rep.Reason
		}
		for read, n := range readCounts {
			args["reads_"+read] = n
		}
		in.tracer.Instant("rewrite_decision", "compiler", args)
	}
}

// mappingDone records tile usage after the greedy mapping: the global tile
// gauge plus one trace event per pattern with the tiles it landed on.
func (in *instr) mappingDone(cfg *hwconf.Config) {
	if in == nil {
		return
	}
	if in.tiles != nil {
		in.tiles.Set(float64(len(cfg.Tiles)))
	}
	if in.tracer == nil {
		return
	}
	perMachine := map[int]int{}
	for _, tp := range cfg.Tiles {
		for _, m := range tp.Machines {
			perMachine[m]++
		}
	}
	for i := range cfg.Machines {
		m := &cfg.Machines[i]
		if m.Unsupported != "" {
			continue
		}
		in.tracer.Instant("tile_mapping", "compiler", map[string]any{
			"pattern": m.Regex,
			"machine": i,
			"tiles":   perMachine[i],
		})
	}
}
