package compiler

import (
	"bvap/internal/archmodel"
	"bvap/internal/hwconf"
)

// MappingStats summarizes how well a configuration's machines pack into
// tiles. The evaluation accounts whole tiles ("The wasted BVM area due to
// the partial use of BVs was considered", §8), so utilization directly
// drives the area results.
type MappingStats struct {
	Tiles int
	// STEUtilization is occupied STEs over provisioned STEs (tiles×256).
	STEUtilization float64
	// BVUtilization is occupied storage BVs over provisioned BVs
	// (tiles×48).
	BVUtilization float64
	// WastedBVMFrac is the fraction of provisioned BVM capacity that
	// carries no bit vector — silicon paid for but idle.
	WastedBVMFrac float64
	// MaxSTEs and MaxBVs are the most loaded tile's occupancies.
	MaxSTEs int
	MaxBVs  int
}

// ComputeMappingStats derives MappingStats from a configuration's placement.
func ComputeMappingStats(cfg *hwconf.Config) MappingStats {
	var s MappingStats
	s.Tiles = len(cfg.Tiles)
	if s.Tiles == 0 {
		return s
	}
	stes, bvs := 0, 0
	for _, tp := range cfg.Tiles {
		stes += tp.STEs
		bvs += tp.BVSTEs
		if tp.STEs > s.MaxSTEs {
			s.MaxSTEs = tp.STEs
		}
		if tp.BVSTEs > s.MaxBVs {
			s.MaxBVs = tp.BVSTEs
		}
	}
	s.STEUtilization = float64(stes) / float64(s.Tiles*archmodel.STEsPerTile)
	s.BVUtilization = float64(bvs) / float64(s.Tiles*archmodel.BVsPerTile)
	s.WastedBVMFrac = 1 - s.BVUtilization
	return s
}
