package compiler

import (
	"bytes"
	"math/rand"
	"testing"

	"bvap/internal/archmodel"
	"bvap/internal/hwconf"
	"bvap/internal/isa"
	"bvap/internal/nbva"
	"bvap/internal/regex"
)

func compile(t *testing.T, patterns []string, opt Options) *Result {
	t.Helper()
	res, err := Compile(patterns, opt)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

func TestCompileSnortURLExample(t *testing.T) {
	// §3: url=.{8000} needs 8004 STEs unfolded and only ~270 in BVAP.
	res := compile(t, []string{"url=.{8000}"}, DefaultOptions())
	rep := res.Report.PerRegex[0]
	if !rep.Supported {
		t.Fatalf("unsupported: %s", rep.Reason)
	}
	if rep.UnfoldedSTEs != 8004 {
		t.Fatalf("unfolded = %d, want 8004", rep.UnfoldedSTEs)
	}
	// 8000/64 = 125 counting chunks; with AH copies the paper reports
	// ~270 STEs. Ours must be in that ballpark and far below unfolding.
	if rep.STEs < 126 || rep.STEs > 300 {
		t.Fatalf("BVAP STEs = %d, want ≈270 (well below 8004)", rep.STEs)
	}
	// 8000/64 = 125 chunks, each one set1 constant generator plus one
	// storage BV (shift) after the AH split.
	if rep.BVSTEs != 250 {
		t.Fatalf("BV-STEs = %d, want 250", rep.BVSTEs)
	}
	// Storage demand is 125 BVs → three 48-BV tiles.
	if got := len(res.Config.Tiles); got != 3 {
		t.Fatalf("tiles = %d, want 3", got)
	}
}

func TestCompileProducesValidConfig(t *testing.T) {
	patterns := []string{
		"ab{3}c",
		"a(.a){3}b",
		"ab{2,114}c",
		`\d{5}-\d{4}`,
		"x(ab|cd){6}y",
		"hello",
	}
	res := compile(t, patterns, DefaultOptions())
	if err := res.Config.Validate(); err != nil {
		t.Fatalf("invalid config: %v", err)
	}
	if res.Report.Unsupported != 0 {
		for _, r := range res.Report.PerRegex {
			if !r.Supported {
				t.Errorf("unsupported %q: %s", r.Pattern, r.Reason)
			}
		}
	}
	// JSON round trip.
	var buf bytes.Buffer
	if err := res.Config.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := hwconf.Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back.Machines) != len(patterns) {
		t.Fatalf("machines = %d", len(back.Machines))
	}
	// Every BV-STE's instruction must decode.
	for mi, m := range back.Machines {
		for _, s := range m.STEs {
			if !s.IsBV {
				continue
			}
			if _, err := isa.Decode(s.Instruction); err != nil {
				t.Errorf("machine %d STE %d: %v", mi, s.ID, err)
			}
		}
	}
}

func TestInstructionSelection(t *testing.T) {
	cases := []struct {
		state nbva.AHState
		want  string
	}{
		{nbva.AHState{Width: 64, Action: nbva.ActShift, Read: nbva.NoRead()}, "shift/64b"},
		{nbva.AHState{Width: 64, Action: nbva.ActCopy, Read: nbva.ReadBit(64)}, "r(64)·copy/64b"},
		{nbva.AHState{Width: 64, Action: nbva.ActShift, Read: nbva.ReadRange(1, 64)}, "rAll·shift/64b"},
		{nbva.AHState{Width: 32, Action: nbva.ActSet1, Read: nbva.ReadRange(1, 32)}, "rAll·set1/32b"},
		{nbva.AHState{Width: 16, Action: nbva.ActShift, Read: nbva.ReadRange(1, 16)}, "rAll·shift/16b"},
		{nbva.AHState{Width: 4, Action: nbva.ActShift, Read: nbva.ReadRange(1, 4)}, "rHalf·shift/8b"},
		{nbva.AHState{Width: 2, Action: nbva.ActShift, Read: nbva.ReadRange(1, 2)}, "rQuarter·shift/8b"},
		{nbva.AHState{Width: 19, Action: nbva.ActCopy, Read: nbva.ReadBit(19)}, "r(19)·copy/24b"},
	}
	for _, tc := range cases {
		in, err := SelectInstruction(tc.state)
		if err != nil {
			t.Errorf("SelectInstruction(%+v): %v", tc.state, err)
			continue
		}
		if in.String() != tc.want {
			t.Errorf("SelectInstruction(%+v) = %s, want %s", tc.state, in, tc.want)
		}
	}
}

func TestInstructionSelectionRejects(t *testing.T) {
	// r(1,5) is not K, K/2 or K/4 of any word count.
	if _, err := SelectInstruction(nbva.AHState{Width: 5, Action: nbva.ActShift, Read: nbva.ReadRange(1, 5)}); err == nil {
		t.Fatal("accepted unrealizable range read")
	}
	if _, err := SelectInstruction(nbva.AHState{Width: 200, Action: nbva.ActCopy, Read: nbva.NoRead()}); err == nil {
		t.Fatal("accepted width beyond physical BV")
	}
	if _, err := SelectInstruction(nbva.AHState{Width: 8, Action: nbva.ActShift, Read: nbva.ReadRange(2, 5)}); err == nil {
		t.Fatal("accepted un-rewritten range read")
	}
}

func TestTileMappingRespectsCapacity(t *testing.T) {
	// 40 small machines with counting: each needs a few BVs; tiles must
	// respect both limits.
	var patterns []string
	for i := 0; i < 40; i++ {
		patterns = append(patterns, "ab{9}c{2,30}d")
	}
	res := compile(t, patterns, DefaultOptions())
	for _, tp := range res.Config.Tiles {
		if tp.STEs > archmodel.STEsPerTile {
			t.Fatalf("tile %d overflows STEs: %d", tp.Tile, tp.STEs)
		}
		if tp.BVSTEs > archmodel.BVsPerTile {
			t.Fatalf("tile %d overflows BVs: %d", tp.Tile, tp.BVSTEs)
		}
	}
	if len(res.Config.Tiles) < 2 {
		t.Fatalf("tiles = %d, expected the BV limit to force multiple tiles", len(res.Config.Tiles))
	}
}

func TestOversizedRegexUnsupported(t *testing.T) {
	// A counting body with more positions than a tile has BVs cannot be
	// placed: the cluster's vectors would have to cross tiles.
	body := ""
	for i := 0; i < 50; i++ {
		body += string(rune('a' + i%26))
	}
	res := compile(t, []string{"(" + body + "){30}x"}, DefaultOptions())
	if res.Report.PerRegex[0].Supported {
		t.Fatal("50-position counting cluster should exceed the 48-BV tile")
	}
	// An enormous repetition exceeds the per-array STE budget even after
	// splitting.
	res = compile(t, []string{"a.{300000}b"}, DefaultOptions())
	if res.Report.PerRegex[0].Supported {
		t.Fatal("300000-bound repetition should exceed the array")
	}
	// The §6 per-tile bound 3072 = 48 BVs × 64 bits fits exactly.
	res = compile(t, []string{"a.{3072}b"}, DefaultOptions())
	if !res.Report.PerRegex[0].Supported {
		t.Fatalf("bound 3072 should fit: %s", res.Report.PerRegex[0].Reason)
	}
}

func TestLegalizeNesting(t *testing.T) {
	n := LegalizeNesting(regex.Normalize(regex.MustParse("(a{3}b){20}")))
	// The inner a{3} is cheaper to unfold than the outer ×20.
	if _, err := nbva.Build(n); err != nil {
		t.Fatalf("legalized AST still rejected: %v", err)
	}
	// Outer cheaper case: (a{100}b){2}.
	n = LegalizeNesting(regex.Normalize(regex.MustParse("(a{100}b){2}")))
	if _, err := nbva.Build(n); err != nil {
		t.Fatalf("legalized AST still rejected: %v", err)
	}
	st := regex.Analyze(n)
	if st.MaxUpperBound != 100 {
		t.Fatalf("outer unfolding should keep a{100}: %+v", st)
	}
}

func TestCompiledMachinesMatchSemantics(t *testing.T) {
	// Differential test: the compiled AH machine must agree with the
	// uncompiled NBVA built from the original pattern (the compiler's
	// rewriting must preserve the language).
	patterns := []string{
		"ab{3}c", "a(.a){3}b", "ab{2,30}c", "a{17}", "ab{147}c",
		"a{1,100}", "(ab){9}", "a(b|c){5}d",
	}
	r := rand.New(rand.NewSource(7))
	for _, pat := range patterns {
		res := compile(t, []string{pat}, Options{BVSizeBits: 16, UnfoldThreshold: 4})
		if res.Machines[0] == nil {
			t.Fatalf("%q unsupported: %s", pat, res.Report.PerRegex[0].Reason)
		}
		ref := nbva.MustBuild(regex.Normalize(regex.MustParse(pat)))
		for trial := 0; trial < 20; trial++ {
			input := make([]byte, 200)
			for i := range input {
				input[i] = byte('a' + r.Intn(4))
			}
			got := res.Machines[0].MatchEnds(input)
			want := ref.MatchEnds(input)
			if !equalInts(got, want) {
				t.Fatalf("%q: compiled %v, reference %v", pat, got, want)
			}
		}
	}
}

func TestCompileBaseline(t *testing.T) {
	ms := CompileBaseline([]string{"ab{100}c", "a.{5000}b", "xyz"})
	if !ms[0].Supported || ms[0].STEs != 102 {
		t.Fatalf("machine 0: %+v", ms[0])
	}
	if ms[1].Supported {
		t.Fatal("5002 STEs exceeds the AP 4096 limit")
	}
	if !ms[2].Supported || ms[2].STEs != 3 || ms[2].Tiles != 1 {
		t.Fatalf("machine 2: %+v", ms[2])
	}
	if ms[0].Tiles != 1 {
		t.Fatalf("machine 0 tiles = %d", ms[0].Tiles)
	}
}

func TestCompileCNT(t *testing.T) {
	// ra{64}b{m} (§8, Fig. 12): a{64} is counter-ambiguous (preceded by
	// 'a'), b{64} is not.
	r16 := "aaaaaaaaaaaaaaaa"
	ms := CompileCNT([]string{r16 + "a{64}b{64}"})
	m := ms[0]
	if !m.Supported {
		t.Fatalf("unsupported: %s", m.Reason)
	}
	if m.Counters != 1 {
		t.Fatalf("counters = %d, want 1 (only b{64})", m.Counters)
	}
	// a{64} unfolds (64 STEs), b{64} uses 1 STE + 1 counter.
	want := 16 + 64 + 1 + 1
	if m.STEs != want {
		t.Fatalf("STEs = %d, want %d", m.STEs, want)
	}
	// CNT still matches correctly.
	input := append(bytes.Repeat([]byte{'a'}, 80), bytes.Repeat([]byte{'b'}, 64)...)
	ends := m.NFA.MatchEnds(input)
	if len(ends) == 0 {
		t.Fatal("CNT NFA missed the match")
	}
}

func TestCNTLoweringSemanticsPreserved(t *testing.T) {
	// Lowering replaces b{n} by b for the STE image; the *full* automaton
	// with counters must match the original language. We validate the
	// structural accounting instead: savings = Σ (n-1).
	ast := regex.Normalize(regex.MustParse("xa{10}yb{20}"))
	_, counters, saved := LowerUnambiguousCounting(ast)
	if counters != 2 || saved != 9+19 {
		t.Fatalf("counters=%d saved=%d", counters, saved)
	}
	// Overlapping predecessor blocks the counter.
	ast = regex.Normalize(regex.MustParse("aa{10}"))
	_, counters, _ = LowerUnambiguousCounting(ast)
	if counters != 0 {
		t.Fatalf("ambiguous repetition got a counter")
	}
}

func TestOptionsValidation(t *testing.T) {
	for _, bad := range []Options{
		{BVSizeBits: 0, UnfoldThreshold: 4},
		{BVSizeBits: 12, UnfoldThreshold: 4},
		{BVSizeBits: 128, UnfoldThreshold: 4},
		{BVSizeBits: 64, UnfoldThreshold: -1},
	} {
		if _, err := Compile([]string{"a"}, bad); err == nil {
			t.Errorf("Options %+v accepted", bad)
		}
	}
}

func TestParseErrorReported(t *testing.T) {
	res := compile(t, []string{"a(b"}, DefaultOptions())
	if res.Report.PerRegex[0].Supported {
		t.Fatal("parse error not reported")
	}
	if res.Report.Unsupported != 1 {
		t.Fatal("unsupported count wrong")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComputeMappingStats(t *testing.T) {
	res := compile(t, []string{"ab{300}c", "xy", "p.{600}q"}, DefaultOptions())
	s := ComputeMappingStats(res.Config)
	if s.Tiles != len(res.Config.Tiles) {
		t.Fatalf("tiles = %d", s.Tiles)
	}
	if s.STEUtilization <= 0 || s.STEUtilization > 1 {
		t.Fatalf("STE utilization = %f", s.STEUtilization)
	}
	if s.BVUtilization <= 0 || s.BVUtilization > 1 {
		t.Fatalf("BV utilization = %f", s.BVUtilization)
	}
	if s.WastedBVMFrac < 0 || s.WastedBVMFrac >= 1 {
		t.Fatalf("wasted BVM = %f", s.WastedBVMFrac)
	}
	if s.MaxSTEs > archmodel.STEsPerTile || s.MaxBVs > archmodel.BVsPerTile {
		t.Fatalf("max occupancy exceeds capacity: %+v", s)
	}
	// Empty config.
	empty := ComputeMappingStats(&hwconf.Config{Version: hwconf.FormatVersion})
	if empty.Tiles != 0 || empty.STEUtilization != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}
