package compiler

import (
	"bytes"
	"testing"

	"bvap/internal/hwconf"
)

// TestProvenanceCoversPlacement compiles pattern sets exercising every
// structural feature and checks the emitted provenance table: it must
// survive hwconf round-trip validation, cover every STE of every supported
// machine exactly once, agree with the per-tile occupancy counts, and
// resolve every STE to a tile hosting its machine.
func TestProvenanceCoversPlacement(t *testing.T) {
	sets := [][]string{
		{"abc"},
		{"ab{3}c"},
		{"a(.a){3}b", "x{2,30}y"},
		{"(?i)get /[a-z]{8}", "^hdr.{10}z", "bad("},
		{"a{100}", "b{2,5}(cd){6}e", "abc"},
	}
	for _, pats := range sets {
		res, err := Compile(pats, DefaultOptions())
		if err != nil {
			t.Fatalf("Compile(%q): %v", pats, err)
		}
		var buf bytes.Buffer
		if err := res.Config.Write(&buf); err != nil {
			t.Fatal(err)
		}
		cfg, err := hwconf.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip of %q: %v", pats, err)
		}
		idx := cfg.ProvenanceIndex()
		supported := cfg.SupportedMachines()
		hasStates := false
		for _, mi := range supported {
			if len(cfg.Machines[mi].STEs) > 0 {
				hasStates = true
			}
		}
		if !hasStates {
			continue
		}
		if idx == nil {
			t.Fatalf("Compile(%q) emitted no provenance", pats)
		}
		// Every STE of every supported machine resolves to a tile that
		// lists the machine.
		for _, mi := range supported {
			m := &cfg.Machines[mi]
			perTile := idx.MachineTileSTEs(mi)
			total := 0
			for _, n := range perTile {
				total += n
			}
			if total != len(m.STEs) {
				t.Errorf("%q machine %d: provenance covers %d STEs, machine has %d",
					pats, mi, total, len(m.STEs))
			}
			for q := range m.STEs {
				tile, ok := idx.STETile(mi, q)
				if !ok {
					t.Fatalf("%q machine %d STE %d: no tile", pats, mi, q)
				}
				found := false
				for _, hosted := range cfg.Tiles[tile].Machines {
					if hosted == mi {
						found = true
					}
				}
				if !found {
					t.Errorf("%q machine %d STE %d → tile %d, which does not host the machine",
						pats, mi, q, tile)
				}
			}
		}
		// Per-tile provenance totals match the placement's occupancy.
		perTileTotal := make(map[int]int)
		for _, sp := range cfg.Provenance {
			perTileTotal[sp.Tile] += sp.Count
		}
		for ti, tp := range cfg.Tiles {
			if perTileTotal[ti] != tp.STEs {
				t.Errorf("%q tile %d: provenance claims %d STEs, placement records %d",
					pats, ti, perTileTotal[ti], tp.STEs)
			}
		}
	}
}

// TestSpansFromSTEs checks the run-length encoder on unordered and gapped
// id sets.
func TestSpansFromSTEs(t *testing.T) {
	if got := hwconf.SpansFromSTEs(0, 0, nil); got != nil {
		t.Fatalf("empty ids → %v, want nil", got)
	}
	got := hwconf.SpansFromSTEs(2, 5, []int{7, 3, 4, 9, 8, 1})
	want := []hwconf.TileSpan{
		{Machine: 2, Tile: 5, First: 1, Count: 1},
		{Machine: 2, Tile: 5, First: 3, Count: 2},
		{Machine: 2, Tile: 5, First: 7, Count: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
