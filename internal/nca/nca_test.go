package nca

import (
	"testing"

	"bvap/internal/glushkov"
	"bvap/internal/regex"
)

func TestFigure1NCAExecution(t *testing.T) {
	// Fig. 1: the NCA for Σ*aΣ{3}. Under partial-match semantics the
	// leading Σ* is the implicit initial availability, so we build aΣ{3}.
	// The figure's input is b,a,b,a,a,b,a,a,a after the initial row; we
	// replay it and check the configuration of the counting state and
	// the outputs.
	a := MustBuild(regex.MustParse("a.{3}"))
	if a.Size() != 2 {
		t.Fatalf("size = %d, want 2 (a and the counting Σ)", a.Size())
	}
	// State 0 = 'a' (no counter), state 1 = Σ with counter bound 3.
	if a.States[0].Counter || !a.States[1].Counter || a.States[1].Bound != 3 {
		t.Fatalf("states = %+v", a.States)
	}

	r := NewRunner(a)
	steps := []struct {
		in       byte
		q1Vals   []int // live counter values at the counting state
		expected bool  // output
	}{
		{'b', nil, false},
		{'a', nil, false},         // q1 (the 'a' state) becomes active
		{'b', []int{1}, false},    // counting starts
		{'a', []int{2}, false},    // also restarts the 'a' state
		{'a', []int{1, 3}, true},  // count 3 reached → match
		{'b', []int{1, 2}, false}, // Fig. 1 row "b": {(q2,1),(q2,2)}
		{'a', []int{2, 3}, true},  // Fig. 1 row "a": {(q2,2),(q2,3)} → 1
		{'a', []int{1, 3}, true},  // Fig. 1 row "a": {(q2,1),(q2,3)} → 1
		{'a', []int{1, 2}, false}, // Fig. 1 last row: {(q2,1),(q2,2)} → 0
	}
	for i, st := range steps {
		got := r.Step(st.in)
		if got != st.expected {
			t.Fatalf("step %d (%q): output = %v, want %v", i, st.in, got, st.expected)
		}
		vals := r.Values(1)
		if len(vals) != len(st.q1Vals) {
			t.Fatalf("step %d (%q): counter values = %v, want %v", i, st.in, vals, st.q1Vals)
		}
		for j := range vals {
			if vals[j] != st.q1Vals[j] {
				t.Fatalf("step %d (%q): counter values = %v, want %v", i, st.in, vals, st.q1Vals)
			}
		}
	}
}

func TestExample22Structure(t *testing.T) {
	// Example 2.2: Σ*σ1σ2{n} has three NCA states (q0 implicit here).
	a := MustBuild(regex.MustParse("ab{5}"))
	if a.Size() != 2 {
		t.Fatalf("size = %d, want 2", a.Size())
	}
	if a.States[1].Bound != 5 {
		t.Fatalf("bound = %d, want 5", a.States[1].Bound)
	}
	// Match requires exactly 5 b's.
	ends := a.MatchEnds([]byte("abbbbbb"))
	if len(ends) != 1 || ends[0] != 5 {
		t.Fatalf("ends = %v, want [5]", ends)
	}
}

func TestGroupRepetition(t *testing.T) {
	// a(Σa){3}b from §3 — the paper's running example, over "abaaabab":
	// the match ends at the final input (index 7).
	a := MustBuild(regex.MustParse("a(.a){3}b"))
	ends := a.MatchEnds([]byte("abaaabab"))
	if len(ends) != 1 || ends[0] != 7 {
		t.Fatalf("ends = %v, want [7]", ends)
	}
}

func TestRangeRepetition(t *testing.T) {
	a := MustBuild(regex.MustParse("xa{2,4}y"))
	match := func(s string) bool {
		return len(a.MatchEnds([]byte(s))) > 0
	}
	if match("xay") {
		t.Error("xa{2,4}y matched 1 repetition")
	}
	for _, s := range []string{"xaay", "xaaay", "xaaaay"} {
		if !match(s) {
			t.Errorf("xa{2,4}y failed to match %q", s)
		}
	}
	if match("xaaaaay") {
		t.Error("xa{2,4}y matched 5 repetitions")
	}
}

func TestZeroMinRepetition(t *testing.T) {
	// x a{0,2} y: the counting scope is bypassable.
	a := MustBuild(regex.MustParse("xa{0,2}y"))
	match := func(s string) bool { return len(a.MatchEnds([]byte(s))) > 0 }
	for _, s := range []string{"xy", "xay", "xaay"} {
		if !match(s) {
			t.Errorf("xa{0,2}y failed to match %q", s)
		}
	}
	if match("xaaay") {
		t.Error("xa{0,2}y matched 3 repetitions")
	}
}

// equivalence with unfolded Glushkov NFAs on counting patterns.
func TestAgainstUnfoldedNFA(t *testing.T) {
	patterns := []string{
		"ab{3}c",
		"a(bc){2,4}d",
		"a.{5}b",
		"x(ab|c){3}y",
		"a{2,6}",
		"ab{1,3}c{2}",
		"a(b+c){2}d",
	}
	inputs := []string{
		"abbbc", "abcbcd", "axxxxxb", "xababcaby", "aaaa",
		"abbbcabcc", "abcbccd", "abbbcabbbc", "aaaaaaaa",
		"xcababy", "abcc", "",
		"abbcc", "abbccabcc",
	}
	for _, pat := range patterns {
		n := regex.MustParse(pat)
		nca := MustBuild(n)
		nfa := glushkov.MustBuild(regex.FullyUnfold(n))
		for _, in := range inputs {
			got := nca.MatchEnds([]byte(in))
			want := nfa.MatchEnds([]byte(in))
			if !equalInts(got, want) {
				t.Errorf("pattern %q input %q: nca %v, nfa %v", pat, in, got, want)
			}
		}
	}
}

func TestNestedCountingRejected(t *testing.T) {
	if _, err := Build(regex.MustParse("(a{3}b){4}")); err == nil {
		t.Fatal("nested counting accepted")
	}
}

func TestUnboundedNormalized(t *testing.T) {
	// Build runs Normalize itself: a{3,} becomes a{3}a*.
	a := MustBuild(regex.MustParse("xa{3,}y"))
	match := func(s string) bool { return len(a.MatchEnds([]byte(s))) > 0 }
	if match("xaay") {
		t.Error("matched 2 reps")
	}
	for _, s := range []string{"xaaay", "xaaaaaay"} {
		if !match(s) {
			t.Errorf("failed to match %q", s)
		}
	}
}

func TestGuardHolds(t *testing.T) {
	g := RangeGuard(2, 5)
	for v, want := range map[int]bool{1: false, 2: true, 5: true, 6: false} {
		if g.Holds(v) != want {
			t.Errorf("RangeGuard(2,5).Holds(%d) = %v", v, g.Holds(v))
		}
	}
	if !True().Holds(42) {
		t.Error("True guard failed")
	}
}

func TestRunnerResetNCA(t *testing.T) {
	a := MustBuild(regex.MustParse("ab{2}"))
	r := NewRunner(a)
	r.Step('a')
	r.Step('b')
	r.Reset()
	if r.Step('b') {
		t.Fatal("stale state after reset")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
