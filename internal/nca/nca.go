// Package nca implements nondeterministic counter automata (NCAs), the
// classical counting model (§2 of the paper) that NBVAs encode in hardware
// form. States may carry a counter register; transitions carry a guard over
// the source counter and an assignment for the destination counter.
//
// NCA simulation maintains a *set* of counter values per counting state,
// because regexes can be counter-ambiguous (Fig. 1): the same control state
// may be reached with several distinct counts simultaneously. This set-based
// simulation is exactly what the bit vectors of package nbva implement in
// hardware, and the two packages are implemented independently so that the
// cross-model equivalence tests are meaningful.
package nca

import (
	"fmt"
	"sort"

	"bvap/internal/charclass"
	"bvap/internal/regex"
)

// State is a control state. Homogeneity (inherited from the Glushkov
// construction) lets the character class live on the state: every transition
// entering the state is labeled with it.
type State struct {
	Class charclass.Class
	// Counter reports whether the state carries a counter register.
	Counter bool
	// Bound is the largest value the counter may take (the repetition's
	// upper bound n). Zero when Counter is false.
	Bound int
}

// Guard restricts a transition based on the source state's counter value.
type Guard struct {
	// Lo ≤ x ≤ Hi must hold for the transition to fire. A guard over a
	// counterless source is the trivial guard {0, 0} with Trivial true.
	Lo, Hi  int
	Trivial bool
}

// True is the always-true guard used for counterless sources.
func True() Guard { return Guard{Trivial: true} }

// RangeGuard is the guard lo ≤ x ≤ hi.
func RangeGuard(lo, hi int) Guard { return Guard{Lo: lo, Hi: hi} }

// Holds reports whether value x satisfies the guard.
func (g Guard) Holds(x int) bool { return g.Trivial || (g.Lo <= x && x <= g.Hi) }

// Assign describes how the destination counter value is produced.
type Assign uint8

const (
	// AssignNone: the destination has no counter.
	AssignNone Assign = iota
	// AssignSet1: x := 1 (entering a counting scope).
	AssignSet1
	// AssignKeep: x := x (moving within an iteration of the scope).
	AssignKeep
	// AssignIncr: x := x + 1 (the scope's back edge, starting the next
	// iteration).
	AssignIncr
)

func (a Assign) String() string {
	switch a {
	case AssignNone:
		return "-"
	case AssignSet1:
		return "x:=1"
	case AssignKeep:
		return "x:=x"
	case AssignIncr:
		return "x++"
	}
	return fmt.Sprintf("Assign(%d)", uint8(a))
}

// Transition is an edge (p, σ, φ, q, ϑ). The class σ is the destination
// state's class (homogeneity), so it is not stored on the edge.
type Transition struct {
	From   int
	To     int
	Guard  Guard
	Assign Assign
}

// Final marks an accepting state together with the predicate its counter
// must satisfy for a match to be reported.
type Final struct {
	State int
	Guard Guard
}

// NCA is a nondeterministic counter automaton specialized to the shape the
// regex construction produces: at most one counter per state and partial
// (streaming) match semantics, where the initial states are available at
// every input position.
type NCA struct {
	States       []State
	Initial      []int
	Trans        []Transition
	Finals       []Final
	AcceptsEmpty bool

	// byDest indexes Trans by destination for the simulation loop.
	byDest [][]int
}

// Size returns the number of control states.
func (a *NCA) Size() int { return len(a.States) }

// finalize builds the destination index; construction calls it once.
func (a *NCA) finalize() {
	a.byDest = make([][]int, len(a.States))
	for i, t := range a.Trans {
		a.byDest[t.To] = append(a.byDest[t.To], i)
	}
}

// Config is a simulation configuration: per-state activity and, for counting
// states, the set of live counter values.
type Config struct {
	active []bool
	// values[q] is the sorted set of counter values at q (nil for
	// counterless states).
	values [][]int
}

// Runner simulates an NCA over a byte stream.
type Runner struct {
	nca  *NCA
	cur  Config
	next Config
}

// NewRunner returns a Runner in the start-of-stream configuration.
func NewRunner(a *NCA) *Runner {
	mk := func() Config {
		return Config{
			active: make([]bool, a.Size()),
			values: make([][]int, a.Size()),
		}
	}
	return &Runner{nca: a, cur: mk(), next: mk()}
}

// Reset returns the runner to the start-of-stream configuration.
func (r *Runner) Reset() {
	for q := range r.cur.active {
		r.cur.active[q] = false
		r.cur.values[q] = r.cur.values[q][:0]
	}
}

// Active reports whether state q is active in the current configuration.
func (r *Runner) Active(q int) bool { return r.cur.active[q] }

// Values returns the live counter values of state q (sorted, read-only).
func (r *Runner) Values(q int) []int { return r.cur.values[q] }

// insertValue adds v to a sorted set.
func insertValue(set []int, v int) []int {
	i := sort.SearchInts(set, v)
	if i < len(set) && set[i] == v {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = v
	return set
}

// Step consumes one input symbol and reports whether a match ends at it.
func (r *Runner) Step(b byte) bool {
	a := r.nca
	for q := range r.next.active {
		r.next.active[q] = false
		r.next.values[q] = r.next.values[q][:0]
	}
	for q := range a.States {
		st := &a.States[q]
		if !st.Class.Contains(b) {
			continue
		}
		for _, ti := range a.byDest[q] {
			t := a.Trans[ti]
			if !r.cur.active[t.From] {
				continue
			}
			switch t.Assign {
			case AssignNone:
				if a.States[t.From].Counter {
					for _, v := range r.cur.values[t.From] {
						if t.Guard.Holds(v) {
							r.next.active[q] = true
							break
						}
					}
				} else if t.Guard.Holds(0) {
					r.next.active[q] = true
				}
			case AssignSet1:
				fire := false
				if a.States[t.From].Counter {
					for _, v := range r.cur.values[t.From] {
						if t.Guard.Holds(v) {
							fire = true
							break
						}
					}
				} else {
					fire = t.Guard.Holds(0)
				}
				if fire {
					r.next.active[q] = true
					r.next.values[q] = insertValue(r.next.values[q], 1)
				}
			case AssignKeep:
				for _, v := range r.cur.values[t.From] {
					if t.Guard.Holds(v) {
						r.next.active[q] = true
						r.next.values[q] = insertValue(r.next.values[q], v)
					}
				}
			case AssignIncr:
				for _, v := range r.cur.values[t.From] {
					if t.Guard.Holds(v) && v+1 <= st.Bound {
						r.next.active[q] = true
						r.next.values[q] = insertValue(r.next.values[q], v+1)
					}
				}
			}
		}
	}
	// Initial states are available on every cycle (partial matching).
	for _, q := range a.Initial {
		st := &a.States[q]
		if !st.Class.Contains(b) {
			continue
		}
		r.next.active[q] = true
		if st.Counter {
			r.next.values[q] = insertValue(r.next.values[q], 1)
		}
	}
	// A counting state with no live values is dead.
	for q := range a.States {
		if a.States[q].Counter && len(r.next.values[q]) == 0 {
			r.next.active[q] = false
		}
	}
	r.cur, r.next = r.next, r.cur
	// Output phase.
	for _, f := range a.Finals {
		if !r.cur.active[f.State] {
			continue
		}
		if !a.States[f.State].Counter {
			return true
		}
		for _, v := range r.cur.values[f.State] {
			if f.Guard.Holds(v) {
				return true
			}
		}
	}
	return false
}

// MatchEnds runs the NCA over input and returns every index where a match
// ends.
func (a *NCA) MatchEnds(input []byte) []int {
	r := NewRunner(a)
	var ends []int
	for i, b := range input {
		if r.Step(b) {
			ends = append(ends, i)
		}
	}
	return ends
}

// Build constructs an NCA from a regex. The regex must be normalized (no
// {n,} forms, no counting over nullable bodies — see regex.Normalize) and
// must not nest bounded repetitions inside bounded repetitions; the compiler
// legalizes such patterns by unfolding before reaching this construction.
func Build(n regex.Node) (*NCA, error) {
	n = regex.Normalize(n)
	b := &ncaBuilder{}
	info, err := b.build(n, -1)
	if err != nil {
		return nil, err
	}
	a := &NCA{
		States:       b.states,
		Initial:      info.first,
		AcceptsEmpty: info.nullable,
	}
	for _, e := range b.edges {
		a.Trans = append(a.Trans, b.edgeTransition(e))
	}
	for _, p := range info.last {
		a.Finals = append(a.Finals, Final{State: p, Guard: b.exitGuard(p)})
	}
	a.finalize()
	return a, nil
}

// MustBuild is Build for known-good inputs; it panics on error.
func MustBuild(n regex.Node) *NCA {
	a, err := Build(n)
	if err != nil {
		panic(err)
	}
	return a
}

type scope struct {
	min, max int
}

type edge struct {
	from, to int
	back     bool // the counting scope's back edge (increment)
}

type buildInfo struct {
	nullable bool
	first    []int
	last     []int
}

type ncaBuilder struct {
	states  []State
	scopes  []scope
	scopeOf []int // scope index per state, -1 if none
	edges   []edge
}

func (b *ncaBuilder) newPos(c charclass.Class, scopeIdx int) int {
	b.states = append(b.states, State{Class: c})
	b.scopeOf = append(b.scopeOf, scopeIdx)
	return len(b.states) - 1
}

func (b *ncaBuilder) link(from, to []int, back bool) {
	for _, p := range from {
		for _, q := range to {
			b.edges = append(b.edges, edge{from: p, to: q, back: back})
		}
	}
}

// exitGuard is the guard a transition (or acceptance) leaving state p must
// satisfy: the scope's completed-iterations range, or trivially true.
func (b *ncaBuilder) exitGuard(p int) Guard {
	si := b.scopeOf[p]
	if si < 0 {
		return True()
	}
	s := b.scopes[si]
	lo := s.min
	if lo < 1 {
		lo = 1 // entering the loop at all completes one iteration
	}
	return RangeGuard(lo, s.max)
}

// edgeTransition derives the guard and assignment of an edge from the scope
// membership of its endpoints.
func (b *ncaBuilder) edgeTransition(e edge) Transition {
	sp, sq := b.scopeOf[e.from], b.scopeOf[e.to]
	t := Transition{From: e.from, To: e.to}
	switch {
	case sp == sq && sp >= 0 && e.back:
		// Back edge of the scope: x < max / x++.
		t.Guard = RangeGuard(1, b.scopes[sp].max-1)
		t.Assign = AssignIncr
	case sp == sq && sp >= 0:
		// Intra-iteration edge: x := x.
		t.Guard = True()
		t.Assign = AssignKeep
	case sq >= 0:
		// Entering scope sq (from outside, or from a different scope,
		// which requires the source scope's exit guard).
		t.Guard = b.exitGuard(e.from)
		t.Assign = AssignSet1
	default:
		// Leaving a scope, or plain NFA edge.
		t.Guard = b.exitGuard(e.from)
		t.Assign = AssignNone
	}
	return t
}

func (b *ncaBuilder) build(n regex.Node, scopeIdx int) (buildInfo, error) {
	switch n := n.(type) {
	case regex.Empty:
		return buildInfo{nullable: true}, nil
	case regex.Lit:
		p := b.newPos(n.Class, scopeIdx)
		return buildInfo{first: []int{p}, last: []int{p}}, nil
	case *regex.Concat:
		cur := buildInfo{nullable: true}
		for _, f := range n.Factors {
			fi, err := b.build(f, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			b.link(cur.last, fi.first, false)
			next := buildInfo{nullable: cur.nullable && fi.nullable}
			// Positions of cur and fi are disjoint: plain appends.
			next.first = append(next.first, cur.first...)
			if cur.nullable {
				next.first = append(next.first, fi.first...)
			}
			next.last = append(next.last, fi.last...)
			if fi.nullable {
				next.last = append(next.last, cur.last...)
			}
			cur = next
		}
		return cur, nil
	case *regex.Alt:
		var out buildInfo
		for _, alt := range n.Alternatives {
			ai, err := b.build(alt, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out, nil
	case *regex.Star:
		si, err := b.build(n.Sub, scopeIdx)
		if err != nil {
			return buildInfo{}, err
		}
		b.link(si.last, si.first, false)
		return buildInfo{nullable: true, first: si.first, last: si.last}, nil
	case *regex.Repeat:
		if n.Min == 0 && n.Max == 1 { // r? is classical
			ri, err := b.build(n.Sub, scopeIdx)
			if err != nil {
				return buildInfo{}, err
			}
			ri.nullable = true
			return ri, nil
		}
		if n.Max == regex.Unbounded {
			return buildInfo{}, fmt.Errorf("nca: unbounded repetition %s survived normalization", n)
		}
		if scopeIdx >= 0 || hasCounting(n.Sub) {
			return buildInfo{}, fmt.Errorf("nca: nested bounded repetition %s must be legalized by unfolding", n)
		}
		if regex.Nullable(n.Sub) {
			return buildInfo{}, fmt.Errorf("nca: counting over nullable body %s survived normalization", n)
		}
		b.scopes = append(b.scopes, scope{min: n.Min, max: n.Max})
		idx := len(b.scopes) - 1
		ri, err := b.build(n.Sub, idx)
		if err != nil {
			return buildInfo{}, err
		}
		b.link(ri.last, ri.first, true)
		for i := range b.states {
			if b.scopeOf[i] == idx {
				b.states[i].Counter = true
				b.states[i].Bound = n.Max
			}
		}
		ri.nullable = n.Min == 0
		return ri, nil
	default:
		return buildInfo{}, fmt.Errorf("nca: unknown node type %T", n)
	}
}

// hasCounting reports whether n contains a counting repetition (anything but
// r?).
func hasCounting(n regex.Node) bool {
	found := false
	regex.Walk(n, func(m regex.Node) {
		if r, ok := m.(*regex.Repeat); ok && !(r.Min == 0 && r.Max == 1) {
			found = true
		}
	})
	return found
}

func appendUnique(dst []int, src []int) []int {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}
