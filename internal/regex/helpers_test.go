package regex

import "bvap/internal/charclass"

// singleOf returns the singleton class {b}; shorthand for tests.
func singleOf(b byte) charclass.Class { return charclass.Single(b) }
