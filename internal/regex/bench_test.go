package regex

import "testing"

func BenchmarkParse(b *testing.B) {
	pattern := `(?i)header[0-9a-f]{32}\x00.{100}(trailer|end){2,8}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewrite(b *testing.B) {
	ast := MustParse("ab{2,514}c{1000}d{3,}e")
	opt := Options{UnfoldThreshold: 8, BVSize: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rewrite(ast, opt)
	}
}

func BenchmarkFullyUnfoldLarge(b *testing.B) {
	ast := MustParse("a.{1000}b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FullyUnfold(ast)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	ast := MustParse("ab{2,514}c{1000}(de|fg){3,}h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(ast)
	}
}
