package regex

// This file implements the compiler rewriting passes of §7 of the paper:
//
//   1. normalization: r{n,} → r{n}·r*, and repetitions with nullable bodies
//      are lowered so that the NBVA counting construction never has to count
//      iterations that can match ε;
//   2. splitting: bounded repetitions that do not fit the virtual bit-vector
//      size K, or whose range read is not one of the three hardware-supported
//      reads rAll = r(1,K), rHalf = r(1,K/2), rQuarter = r(1,K/4), are split
//      into smaller equivalent pieces (Example 7.2);
//   3. unfolding: repetitions whose upper bound is at or below the unfolding
//      threshold are unfolded into concatenations of optional copies
//      (Example 7.1).
//
// The passes are exposed individually for testing and combined by Rewrite.

// Options configures the rewriting pipeline.
type Options struct {
	// UnfoldThreshold is the largest finite upper bound that is unfolded
	// rather than counted (unfold_th in the paper's design space
	// exploration; Table 5 reports best values between 4 and 12). Values
	// below 2 are treated as 2, because the compiler always unfolds
	// bounds ≤ 2 (§7, compilation step 1).
	UnfoldThreshold int

	// BVSize is the virtual bit vector size K. It must be a power of two
	// and at least 8, or zero to disable splitting (splitting disabled is
	// used by the theoretical-model tests, which allow arbitrary reads).
	BVSize int
}

// DefaultOptions returns the configuration used when the caller does not run
// a design space exploration: K = 64 (the physical BV size, optimal or tied
// for four of the paper's seven datasets) and unfold threshold 8.
func DefaultOptions() Options {
	return Options{UnfoldThreshold: 8, BVSize: 64}
}

func (o Options) effectiveThreshold() int {
	if o.UnfoldThreshold < 2 {
		return 2
	}
	return o.UnfoldThreshold
}

// Rewrite applies the full §7 pipeline: normalize, split to fit the bit
// vector size, and unfold small bounds. The result contains only repetitions
// of the forms r{n,n} with n ≤ K, r{1,c} and r{0,c} with c ∈ {K, K/2, K/4},
// plus * over arbitrary sub-expressions.
func Rewrite(n Node, opt Options) Node {
	n = Normalize(n)
	if opt.BVSize > 0 {
		n = SplitBounds(n, opt.BVSize, opt.effectiveThreshold())
	}
	n = Unfold(n, opt.effectiveThreshold())
	return n
}

// Normalize removes the repetition forms the later passes do not handle:
// r{n,} becomes r{n}·r*, and a bounded repetition whose body is nullable has
// its lower bound dropped to zero (matching i < Min nonempty iterations is
// already possible by letting the remaining iterations match ε). A bounded
// repetition whose body is nullable is then unfolded outright, because
// counting iterations that can match the empty string is not supported by
// the shift-based NBVA encoding.
func Normalize(n Node) Node {
	switch n := n.(type) {
	case Empty, Lit:
		return n
	case *Concat:
		factors := make([]Node, len(n.Factors))
		for i, f := range n.Factors {
			factors[i] = Normalize(f)
		}
		return NewConcat(factors...)
	case *Alt:
		alts := make([]Node, len(n.Alternatives))
		for i, a := range n.Alternatives {
			alts[i] = Normalize(a)
		}
		return NewAlt(alts...)
	case *Star:
		return &Star{Sub: Normalize(n.Sub)}
	case *Repeat:
		sub := Normalize(n.Sub)
		if n.Max == Unbounded {
			if Nullable(sub) {
				// r nullable ⇒ r{n,} ≡ r*.
				return &Star{Sub: sub}
			}
			// r{n,} = r{n}·r*.
			return NewConcat(NewRepeat(sub, n.Min, n.Min), &Star{Sub: sub})
		}
		if Nullable(sub) {
			// r nullable ⇒ r{m,n} ≡ r{0,n} = (r?)^n; unfold now.
			return unfoldRepeat(sub, 0, n.Max)
		}
		return NewRepeat(sub, n.Min, n.Max)
	default:
		return n
	}
}

// Unfold unfolds every bounded repetition whose (finite) upper bound is at
// most threshold, per Example 7.1: r{m,n} becomes r^m · (r?)^(n-m).
// Repetitions with larger bounds are kept (their bodies are still processed).
func Unfold(n Node, threshold int) Node {
	switch n := n.(type) {
	case Empty, Lit:
		return n
	case *Concat:
		factors := make([]Node, len(n.Factors))
		for i, f := range n.Factors {
			factors[i] = Unfold(f, threshold)
		}
		return NewConcat(factors...)
	case *Alt:
		alts := make([]Node, len(n.Alternatives))
		for i, a := range n.Alternatives {
			alts[i] = Unfold(a, threshold)
		}
		return NewAlt(alts...)
	case *Star:
		return &Star{Sub: Unfold(n.Sub, threshold)}
	case *Repeat:
		sub := Unfold(n.Sub, threshold)
		if n.Max == Unbounded {
			// Normalize has removed these, but be robust when Unfold
			// is called directly: unfold the mandatory prefix.
			if n.Min <= threshold {
				return NewConcat(unfoldRepeat(sub, n.Min, n.Min), &Star{Sub: sub})
			}
			return NewConcat(NewRepeat(sub, n.Min, n.Min), &Star{Sub: sub})
		}
		if n.Max <= threshold {
			return unfoldRepeat(sub, n.Min, n.Max)
		}
		return NewRepeat(sub, n.Min, n.Max)
	default:
		return n
	}
}

// unfoldRepeat expands r{min,max} (finite max) into r^min · (r?)^(max-min).
func unfoldRepeat(sub Node, min, max int) Node {
	factors := make([]Node, 0, max)
	for i := 0; i < min; i++ {
		factors = append(factors, sub)
	}
	for i := min; i < max; i++ {
		factors = append(factors, NewRepeat(sub, 0, 1))
	}
	return NewConcat(factors...)
}

// FullyUnfold removes every bounded repetition regardless of size; this is
// the "existing solution with unfolding" of §3, used to build the NFAs that
// the baseline architectures (CA, eAP, CAMA) execute. Unbounded {n,} forms
// become r^n·r*.
func FullyUnfold(n Node) Node {
	return Unfold(Normalize(n), MaxBound)
}

// SplitBounds rewrites bounded repetitions so every surviving counted form
// is realizable with a bit vector of size ≤ K and the hardware's restricted
// read set (Example 7.2):
//
//   - exact r{n} with n > K splits into r{K}·…·r{K}·r{rem};
//   - r{m,n} with m ≥ 2 first becomes r{m-1}·r{1,n-m+1} (§4);
//   - a range r{1,h} (or r{0,h}) is decomposed into chunks whose maxima are
//     taken greedily from {K, K/2, K/4}, with only the first chunk keeping
//     the nonzero lower bound; a remainder smaller than K/4 is kept as a
//     small repetition if it is at or below the unfold threshold (the Unfold
//     pass will expand it) and otherwise emitted as an exact-plus-optionals
//     form that needs no range read.
func SplitBounds(n Node, k, threshold int) Node {
	if k < 8 || k&(k-1) != 0 {
		panic("regex: BVSize must be a power of two ≥ 8")
	}
	switch n := n.(type) {
	case Empty, Lit:
		return n
	case *Concat:
		factors := make([]Node, len(n.Factors))
		for i, f := range n.Factors {
			factors[i] = SplitBounds(f, k, threshold)
		}
		return NewConcat(factors...)
	case *Alt:
		alts := make([]Node, len(n.Alternatives))
		for i, a := range n.Alternatives {
			alts[i] = SplitBounds(a, k, threshold)
		}
		return NewAlt(alts...)
	case *Star:
		return &Star{Sub: SplitBounds(n.Sub, k, threshold)}
	case *Repeat:
		sub := SplitBounds(n.Sub, k, threshold)
		if n.Max == Unbounded {
			return NewConcat(splitExact(sub, n.Min, k), &Star{Sub: sub})
		}
		if n.Min == n.Max {
			return splitExact(sub, n.Min, k)
		}
		if n.Max <= threshold {
			// Small enough to unfold later; no need to split.
			return NewRepeat(sub, n.Min, n.Max)
		}
		// r{m,n} → r{m-1} · r{1, n-m+1} (§4 rewriting).
		lo := 1
		min, max := n.Min, n.Max
		if min == 0 {
			lo = 0
			min = 1 // the range part is {0, max}
		}
		prefix := splitExact(sub, min-1, k)
		return NewConcat(prefix, splitRange(sub, lo, max-min+1, k, threshold))
	default:
		return n
	}
}

// splitExact splits r{n} into chunks of at most K (Example 7.2's
// ab{147}c → ab{64}b{64}b{19}c).
func splitExact(sub Node, n, k int) Node {
	if n == 0 {
		return Empty{}
	}
	var factors []Node
	for n > k {
		factors = append(factors, NewRepeat(sub, k, k))
		n -= k
	}
	factors = append(factors, NewRepeat(sub, n, n))
	return NewConcat(factors...)
}

// splitRange decomposes r{lo,h} with lo ∈ {0,1} into hardware-readable
// chunks. The chunk maxima are drawn greedily from {K, K/2, K/4}; the
// nonzero lower bound is carried by the first chunk only, so the minima sum
// to lo and the maxima sum to h.
func splitRange(sub Node, lo, h, k, threshold int) Node {
	var factors []Node
	remaining := h
	first := true
	chunkMin := func() int {
		if first && lo > 0 {
			first = false
			return 1
		}
		first = false
		return 0
	}
	for _, c := range []int{k, k / 2, k / 4} {
		for remaining >= c {
			factors = append(factors, NewRepeat(sub, chunkMin(), c))
			remaining -= c
			if remaining == 0 {
				break
			}
		}
	}
	if remaining > 0 {
		min := chunkMin()
		if remaining <= threshold || remaining == 1 {
			// Small residue: keep as a repetition; Unfold expands it.
			factors = append(factors, NewRepeat(sub, min, remaining))
		} else {
			// Residue above the unfold threshold but below K/4: there
			// is no hardware range read of this width, so expand into
			// the read-free exact-plus-optionals form r^min·(r?)^rest.
			factors = append(factors, unfoldRepeat(sub, min, remaining))
		}
	}
	return NewConcat(factors...)
}

// RealizableReads reports the range-read widths supported for virtual BV
// size k: rAll, rHalf and rQuarter.
func RealizableReads(k int) [3]int { return [3]int{k, k / 2, k / 4} }

// CheckRealizable reports whether every repetition remaining in n can be
// mapped onto the hardware with virtual BV size k and the restricted read
// set. It is used by tests and by the compiler as a post-rewrite assertion.
func CheckRealizable(n Node, k int) bool {
	ok := true
	Walk(n, func(m Node) {
		r, isRep := m.(*Repeat)
		if !isRep {
			return
		}
		if r.Max == Unbounded {
			ok = false
			return
		}
		if r.Min == r.Max {
			if r.Max > k {
				ok = false
			}
			return
		}
		if r.Min == 0 && r.Max == 1 {
			return // r? needs no counting
		}
		if r.Min > 1 {
			ok = false
			return
		}
		reads := RealizableReads(k)
		if r.Max != reads[0] && r.Max != reads[1] && r.Max != reads[2] {
			ok = false
		}
	})
	return ok
}
