// Package regex implements the PCRE-subset regular expression front end of
// the BVAP compiler: an AST, a parser, a printer, the rewriting passes of §7
// of the paper (unfolding below a threshold and splitting large bounded
// repetitions so they fit a fixed bit-vector size), and structural statistics
// used by the evaluation (counting density, unfolded NFA size).
//
// The grammar is the one given in §2 of the paper,
//
//	r ::= ε | σ | (r|r) | r·r | r* | r+ | r? | r{n} | r{m,n} | r{n,}
//
// where σ ranges over character classes.
package regex

import (
	"fmt"
	"strings"

	"bvap/internal/charclass"
)

// Unbounded marks the missing upper bound of r{n,} in Repeat.Max.
const Unbounded = -1

// Node is a node of the regex AST. Nodes are immutable after construction;
// rewriting passes build new trees.
type Node interface {
	// String renders the node in (parenthesized where needed) PCRE syntax.
	String() string
	// precedence returns the binding strength used by String to decide
	// where parentheses are required.
	precedence() int
}

// Empty matches the empty string ε.
type Empty struct{}

// Lit matches any single symbol in its character class.
type Lit struct {
	Class charclass.Class
}

// Concat matches the concatenation of its factors, in order.
type Concat struct {
	Factors []Node
}

// Alt matches any one of its alternatives.
type Alt struct {
	Alternatives []Node
}

// Star matches zero or more repetitions of Sub (r*).
type Star struct {
	Sub Node
}

// Repeat is the bounded repetition r{Min,Max}. Max == Unbounded encodes
// r{Min,}. The parser normalizes r+ to r{1,} and r? to r{0,1}; r{n} is
// Min == Max == n.
type Repeat struct {
	Sub Node
	Min int
	Max int
}

const (
	precAlt = iota
	precConcat
	precRepeat
	precAtom
)

func (Empty) precedence() int   { return precAtom }
func (Lit) precedence() int     { return precAtom }
func (*Concat) precedence() int { return precConcat }
func (*Alt) precedence() int    { return precAlt }
func (*Star) precedence() int   { return precRepeat }
func (*Repeat) precedence() int { return precRepeat }

func wrap(n Node, min int) string {
	s := n.String()
	if n.precedence() < min {
		return "(" + s + ")"
	}
	return s
}

func (Empty) String() string { return "()" }

func (l Lit) String() string { return l.Class.String() }

func (c *Concat) String() string {
	var sb strings.Builder
	for _, f := range c.Factors {
		sb.WriteString(wrap(f, precConcat))
	}
	return sb.String()
}

func (a *Alt) String() string {
	parts := make([]string, len(a.Alternatives))
	for i, alt := range a.Alternatives {
		parts[i] = wrap(alt, precConcat)
	}
	return strings.Join(parts, "|")
}

func (s *Star) String() string { return wrap(s.Sub, precAtom) + "*" }

func (r *Repeat) String() string {
	base := wrap(r.Sub, precAtom)
	switch {
	case r.Min == 0 && r.Max == 1:
		return base + "?"
	case r.Min == 1 && r.Max == Unbounded:
		return base + "+"
	case r.Max == Unbounded:
		return fmt.Sprintf("%s{%d,}", base, r.Min)
	case r.Min == r.Max:
		return fmt.Sprintf("%s{%d}", base, r.Min)
	default:
		return fmt.Sprintf("%s{%d,%d}", base, r.Min, r.Max)
	}
}

// NewConcat builds a concatenation, flattening nested concatenations and
// dropping ε factors. It returns Empty for zero factors and the factor itself
// for one.
func NewConcat(factors ...Node) Node {
	flat := make([]Node, 0, len(factors))
	for _, f := range factors {
		switch f := f.(type) {
		case Empty:
			// ε is the unit of concatenation.
		case *Concat:
			flat = append(flat, f.Factors...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return Empty{}
	case 1:
		return flat[0]
	}
	return &Concat{Factors: flat}
}

// NewAlt builds an alternation, flattening nested alternations. It returns
// the alternative itself when there is exactly one.
func NewAlt(alts ...Node) Node {
	flat := make([]Node, 0, len(alts))
	for _, a := range alts {
		if aa, ok := a.(*Alt); ok {
			flat = append(flat, aa.Alternatives...)
		} else {
			flat = append(flat, a)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Alt{Alternatives: flat}
}

// NewRepeat builds a bounded (or {n,}-style unbounded) repetition, applying
// the standard simplifications r{0,0} = ε, r{1,1} = r, ε{m,n} = ε and
// r{0,} = r*.
func NewRepeat(sub Node, min, max int) Node {
	if _, ok := sub.(Empty); ok {
		return Empty{}
	}
	switch {
	case min == 0 && max == 0:
		return Empty{}
	case min == 1 && max == 1:
		return sub
	case min == 0 && max == Unbounded:
		return &Star{Sub: sub}
	}
	return &Repeat{Sub: sub, Min: min, Max: max}
}

// Literal builds the concatenation of singleton classes matching s exactly.
func Literal(s string) Node {
	if s == "" {
		return Empty{}
	}
	factors := make([]Node, len(s))
	for i := 0; i < len(s); i++ {
		factors[i] = Lit{Class: charclass.Single(s[i])}
	}
	return NewConcat(factors...)
}

// Nullable reports whether the language of n contains the empty string.
func Nullable(n Node) bool {
	switch n := n.(type) {
	case Empty:
		return true
	case Lit:
		return false
	case *Concat:
		for _, f := range n.Factors {
			if !Nullable(f) {
				return false
			}
		}
		return true
	case *Alt:
		for _, a := range n.Alternatives {
			if Nullable(a) {
				return true
			}
		}
		return false
	case *Star:
		return true
	case *Repeat:
		return n.Min == 0 || Nullable(n.Sub)
	default:
		panic(fmt.Sprintf("regex: unknown node type %T", n))
	}
}

// Walk calls fn for n and every descendant of n in preorder.
func Walk(n Node, fn func(Node)) {
	fn(n)
	switch n := n.(type) {
	case *Concat:
		for _, f := range n.Factors {
			Walk(f, fn)
		}
	case *Alt:
		for _, a := range n.Alternatives {
			Walk(a, fn)
		}
	case *Star:
		Walk(n.Sub, fn)
	case *Repeat:
		Walk(n.Sub, fn)
	}
}

// Equal reports structural equality of two ASTs.
func Equal(a, b Node) bool {
	switch a := a.(type) {
	case Empty:
		_, ok := b.(Empty)
		return ok
	case Lit:
		bl, ok := b.(Lit)
		return ok && a.Class.Equal(bl.Class)
	case *Concat:
		bc, ok := b.(*Concat)
		if !ok || len(a.Factors) != len(bc.Factors) {
			return false
		}
		for i := range a.Factors {
			if !Equal(a.Factors[i], bc.Factors[i]) {
				return false
			}
		}
		return true
	case *Alt:
		ba, ok := b.(*Alt)
		if !ok || len(a.Alternatives) != len(ba.Alternatives) {
			return false
		}
		for i := range a.Alternatives {
			if !Equal(a.Alternatives[i], ba.Alternatives[i]) {
				return false
			}
		}
		return true
	case *Star:
		bs, ok := b.(*Star)
		return ok && Equal(a.Sub, bs.Sub)
	case *Repeat:
		br, ok := b.(*Repeat)
		return ok && a.Min == br.Min && a.Max == br.Max && Equal(a.Sub, br.Sub)
	default:
		panic(fmt.Sprintf("regex: unknown node type %T", a))
	}
}
