package regex

import "testing"

// FuzzParse checks that the parser never panics and that every accepted
// pattern survives a print/re-parse round trip. Run with
// `go test -fuzz FuzzParse ./internal/regex` to explore beyond the seeds.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"", "a", "ab{3}c", "a{2,5}", "(ab|cd)*e", "[a-z]{10}", "[^a]",
		`\d{3}-\d{4}`, `\x41\x42`, "a(bc){2}d{1,3}ef{2,}g{7}",
		"(?i)Attack", "(?i:get) x", ".*a.{100}", "a{", "a{}", "a{3,", "a{,3}",
		"(((", ")))", "[", "]", `\`, "a**", "a|{3}", "{3}", "(?i)(?i)a",
		"a{9999999999}", "[\\d-\\w]", "[]a]", "[a-]", "a|", "|a", "||",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		n, err := Parse(pattern)
		if err != nil {
			return
		}
		// Accepted patterns must print and re-parse to an equal AST.
		printed := n.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, pattern, err)
		}
		if !Equal(n, n2) {
			t.Fatalf("round trip changed the AST: %q -> %q", pattern, printed)
		}
		// The rewriting pipeline must accept any parsed pattern without
		// panicking, and its output must stay realizable.
		out := Rewrite(n, Options{UnfoldThreshold: 4, BVSize: 16})
		if out == nil {
			t.Fatal("Rewrite returned nil")
		}
	})
}
