package regex

// Stats summarizes the structural properties of a regex that drive the
// paper's motivation numbers (§1: bounded repetition appears in 37% of
// regexes and accounts for 85% of all NFA states after unfolding) and the
// hardware resource estimates.
type Stats struct {
	// Literals is the number of character-class occurrences (Glushkov
	// positions) in the regex as written, without unfolding.
	Literals int

	// BoundedRepetitions is the number of bounded-repetition operators
	// {n}, {m,n} or {n,} in the regex.
	BoundedRepetitions int

	// MaxUpperBound is the largest finite upper bound, or the largest
	// lower bound of an {n,} form, appearing anywhere in the regex.
	MaxUpperBound int

	// NontrivialCounting reports whether any bounded repetition has an
	// upper (or {n,} lower) bound greater than 4, the paper's threshold
	// for "non-trivial" counting.
	NontrivialCounting bool

	// UnfoldedLiterals is the number of Glushkov positions after all
	// bounded repetitions are unfolded: the NFA state count a baseline
	// automata processor needs.
	UnfoldedLiterals int

	// CountingLiterals is the number of unfolded positions contributed by
	// bounded repetitions (UnfoldedLiterals minus the positions the regex
	// would have if every {m,n} were replaced by a single copy of its
	// body).
	CountingLiterals int
}

// HasCounting reports whether the regex contains any bounded repetition.
func (s Stats) HasCounting() bool { return s.BoundedRepetitions > 0 }

// Analyze computes Stats for a regex.
func Analyze(n Node) Stats {
	var s Stats
	s.Literals = countLiterals(n)
	Walk(n, func(m Node) {
		r, ok := m.(*Repeat)
		if !ok {
			return
		}
		// r? is an operator of classical regexes, not counting.
		if r.Min == 0 && r.Max == 1 {
			return
		}
		s.BoundedRepetitions++
		bound := r.Max
		if bound == Unbounded {
			bound = r.Min
		}
		if bound > s.MaxUpperBound {
			s.MaxUpperBound = bound
		}
		if bound > 4 {
			s.NontrivialCounting = true
		}
	})
	s.UnfoldedLiterals = unfoldedLiterals(n)
	s.CountingLiterals = s.UnfoldedLiterals - collapsedLiterals(n)
	return s
}

// countLiterals counts character-class occurrences without unfolding.
func countLiterals(n Node) int {
	c := 0
	Walk(n, func(m Node) {
		if _, ok := m.(Lit); ok {
			c++
		}
	})
	return c
}

// unfoldedLiterals counts Glushkov positions after unfolding every bounded
// repetition: each r{m,n} multiplies its body's positions by n (by m for
// {m,}).
func unfoldedLiterals(n Node) int {
	switch n := n.(type) {
	case Empty:
		return 0
	case Lit:
		return 1
	case *Concat:
		total := 0
		for _, f := range n.Factors {
			total += unfoldedLiterals(f)
		}
		return total
	case *Alt:
		total := 0
		for _, a := range n.Alternatives {
			total += unfoldedLiterals(a)
		}
		return total
	case *Star:
		return unfoldedLiterals(n.Sub)
	case *Repeat:
		copies := n.Max
		if copies == Unbounded {
			copies = n.Min
			if copies == 0 {
				copies = 1
			}
		}
		if copies == 0 {
			copies = 1
		}
		return copies * unfoldedLiterals(n.Sub)
	default:
		return 0
	}
}

// collapsedLiterals counts positions with every bounded repetition collapsed
// to a single copy of its body: the state count a counting-aware automaton
// (NCA/NBVA) needs.
func collapsedLiterals(n Node) int {
	switch n := n.(type) {
	case Empty:
		return 0
	case Lit:
		return 1
	case *Concat:
		total := 0
		for _, f := range n.Factors {
			total += collapsedLiterals(f)
		}
		return total
	case *Alt:
		total := 0
		for _, a := range n.Alternatives {
			total += collapsedLiterals(a)
		}
		return total
	case *Star:
		return collapsedLiterals(n.Sub)
	case *Repeat:
		return collapsedLiterals(n.Sub)
	default:
		return 0
	}
}
