package regex

import "testing"

func TestMaxMatchLen(t *testing.T) {
	cases := []struct {
		pattern string
		want    int
		bounded bool
	}{
		{"abc", 3, true},
		{"", 0, true},
		{"a|bc|def", 3, true},
		{"a{5}", 5, true},
		{"a{2,7}", 7, true},
		{"(ab){3}c", 7, true},
		{"a?b", 2, true},
		{"[a-z]{10}[0-9]{2,4}", 14, true},
		{"(a|bb){3}", 6, true},
		{"(a{4}){5}", 20, true},
		{"a*", 0, false},
		{"a+", 0, false},
		{"a{3,}", 0, false},
		{"ab*c", 0, false},
		{"(a|b*)c", 0, false},
		{"(a{40000}){40000}", 0, false}, // product above reachCap → unbounded

		// Nested bounded repeats: the outer bound multiplies the inner
		// body's maximum, not its minimum.
		{"(a{2,3}){2,4}", 12, true},
		{"((a{2,3}){2}){3}", 18, true},
		{"(b(a{2,3}){2,4}c){2}", 28, true},
		// Alternation of repeats under a bound: max picks the widest branch
		// before the outer multiplication.
		{"(a{2,3}|b{5,7}){2,3}", 21, true},
		{"(a{2,3}|b{5,7}){2,3}x{0,2}", 23, true},
		// Zero-min bounds still contribute their maximum.
		{"(a{0,3}){0,2}", 6, true},
		{"(a?){5}", 5, true},
		// Unboundedness propagates through either nesting level.
		{"(a*){3}", 0, false},
		{"(a{2,}){2,4}", 0, false},
		// reachCap boundary: a product of exactly 2^30 is still bounded,
		// one more repetition tips it to unbounded.
		{"(a{32768}){32768}", 1 << 30, true},
		{"(a{32768}){32769}", 0, false},
	}
	for _, c := range cases {
		ast, err := Parse(c.pattern)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.pattern, err)
		}
		got, ok := MaxMatchLen(ast)
		if ok != c.bounded {
			t.Errorf("MaxMatchLen(%q) bounded = %v, want %v", c.pattern, ok, c.bounded)
			continue
		}
		if c.bounded && got != c.want {
			t.Errorf("MaxMatchLen(%q) = %d, want %d", c.pattern, got, c.want)
		}
	}
}

// TestMaxMatchLenIsUpperBound cross-checks the analysis against the
// unfolded-literal count: the reach bound can never exceed the total
// unfolded positions (every consumed symbol is one position), and for pure
// concatenations of bounded pieces the two agree.
func TestMaxMatchLenIsUpperBound(t *testing.T) {
	for _, pattern := range []string{
		"abc", "a{5}", "(ab){3}c", "[a-z]{10}[0-9]{2,4}", "x(y{2}|zz{3})w",
	} {
		ast, err := Parse(pattern)
		if err != nil {
			t.Fatal(err)
		}
		reach, ok := MaxMatchLen(ast)
		if !ok {
			t.Fatalf("MaxMatchLen(%q) unexpectedly unbounded", pattern)
		}
		if unfolded := Analyze(ast).UnfoldedLiterals; reach > unfolded {
			t.Errorf("MaxMatchLen(%q) = %d exceeds unfolded positions %d", pattern, reach, unfolded)
		}
	}
}
