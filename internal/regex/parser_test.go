package regex

import (
	"strings"
	"testing"

	"bvap/internal/charclass"
)

func TestParseRoundTrip(t *testing.T) {
	// Patterns whose String() form should parse back to an equal AST.
	patterns := []string{
		"abc",
		"a|b|c",
		"a*b+c?",
		"a{3}",
		"a{2,5}",
		"a{4,}",
		"(ab|cd)*e",
		"[a-z]{10}",
		"[^a-z]",
		`\d{3}-\d{4}`,
		`\x41\x42`,
		"a(bc){2}d{1,3}ef{2,}g{7}",
		".*a.{100}",
		"url=.{80}",
	}
	for _, pat := range patterns {
		n1, err := Parse(pat)
		if err != nil {
			t.Fatalf("Parse(%q): %v", pat, err)
		}
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)=%q): %v", pat, n1.String(), err)
		}
		if !Equal(n1, n2) {
			t.Errorf("round trip failed for %q: %q vs %q", pat, n1, n2)
		}
	}
}

func TestParseStructure(t *testing.T) {
	n := MustParse("a(bc){2}d")
	c, ok := n.(*Concat)
	if !ok || len(c.Factors) != 3 {
		t.Fatalf("expected 3-factor concat, got %T %v", n, n)
	}
	rep, ok := c.Factors[1].(*Repeat)
	if !ok || rep.Min != 2 || rep.Max != 2 {
		t.Fatalf("expected (bc){2}, got %v", c.Factors[1])
	}
	body, ok := rep.Sub.(*Concat)
	if !ok || len(body.Factors) != 2 {
		t.Fatalf("expected bc body, got %v", rep.Sub)
	}
}

func TestParsePostfixForms(t *testing.T) {
	if r, ok := MustParse("a+").(*Repeat); !ok || r.Min != 1 || r.Max != Unbounded {
		t.Fatalf("a+ parsed wrong: %v", MustParse("a+"))
	}
	if r, ok := MustParse("a?").(*Repeat); !ok || r.Min != 0 || r.Max != 1 {
		t.Fatalf("a? parsed wrong")
	}
	if _, ok := MustParse("a*").(*Star); !ok {
		t.Fatalf("a* parsed wrong")
	}
	if r, ok := MustParse("a{5,}").(*Repeat); !ok || r.Min != 5 || r.Max != Unbounded {
		t.Fatalf("a{5,} parsed wrong")
	}
	// a{0,} normalizes to a*.
	if _, ok := MustParse("a{0,}").(*Star); !ok {
		t.Fatalf("a{0,} should normalize to star")
	}
	// a{1} collapses to a.
	if _, ok := MustParse("a{1}").(Lit); !ok {
		t.Fatalf("a{1} should collapse to literal")
	}
}

func TestParseClasses(t *testing.T) {
	n := MustParse("[a-cx]")
	lit, ok := n.(Lit)
	if !ok {
		t.Fatalf("class parsed to %T", n)
	}
	want := charclass.Range('a', 'c').Union(charclass.Single('x'))
	if !lit.Class.Equal(want) {
		t.Fatalf("[a-cx] = %v", lit.Class)
	}
	neg := MustParse("[^a]").(Lit)
	if neg.Class.Contains('a') || !neg.Class.Contains('b') || neg.Class.Count() != 255 {
		t.Fatalf("[^a] wrong: %v", neg.Class)
	}
	// ']' allowed as first member; '-' literal at end.
	bracket := MustParse("[]a]").(Lit)
	if !bracket.Class.Contains(']') || !bracket.Class.Contains('a') {
		t.Fatalf("[]a] wrong")
	}
	dash := MustParse("[a-]").(Lit)
	if !dash.Class.Contains('-') || !dash.Class.Contains('a') || dash.Class.Count() != 2 {
		t.Fatalf("[a-] wrong: %v", dash.Class)
	}
	// Shorthand inside class.
	dw := MustParse(`[\d_]`).(Lit)
	if !dw.Class.Contains('5') || !dw.Class.Contains('_') {
		t.Fatalf(`[\d_] wrong`)
	}
}

func TestParseEscapes(t *testing.T) {
	cases := map[string]byte{
		`\n`:   '\n',
		`\t`:   '\t',
		`\r`:   '\r',
		`\x41`: 'A',
		`\x00`: 0,
		`\xff`: 0xff,
		`\.`:   '.',
		`\\`:   '\\',
		`\{`:   '{',
		`\[`:   '[',
	}
	for pat, want := range cases {
		lit, ok := MustParse(pat).(Lit)
		if !ok || !lit.Class.Equal(charclass.Single(want)) {
			t.Errorf("Parse(%q) = %v, want single %q", pat, MustParse(pat), want)
		}
	}
}

func TestParseClamAVStyle(t *testing.T) {
	// The ClamAV example from §3: two character sequences interleaved by
	// 9139 arbitrary characters.
	pat := `\x43\x30\x30\x30.{9139}\x65\x6e\x75\x00`
	n := MustParse(pat)
	st := Analyze(n)
	if st.MaxUpperBound != 9139 {
		t.Fatalf("max bound = %d, want 9139", st.MaxUpperBound)
	}
	if st.UnfoldedLiterals != 4+9139+4 {
		t.Fatalf("unfolded literals = %d, want %d", st.UnfoldedLiterals, 4+9139+4)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(",
		")",
		"a)",
		"(a",
		"*a",
		"+",
		"?",
		"[",
		"[]",
		"[z-a]",
		`\`,
		`\q`,
		`\xzz`,
		"a{5,3}",
	}
	for _, pat := range bad {
		if _, err := Parse(pat); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", pat)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("ab(c")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "parenthesis") {
		t.Fatalf("unhelpful error: %v", err)
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("error is not *ParseError: %T", err)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestLoneBraceIsLiteral(t *testing.T) {
	// PCRE treats '{' not followed by a valid bound as a literal.
	n := MustParse("a{b}")
	want := Literal("a{b}")
	if !Equal(n, want) {
		t.Fatalf("a{b} = %v, want literal", n)
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		pat  string
		want bool
	}{
		{"a", false},
		{"a*", true},
		{"a?", true},
		{"a|b*", true},
		{"ab*", false},
		{"a{0,3}", true},
		{"a{1,3}", false},
		{"(a?b?){3}", true},
		{"()", true},
	}
	for _, tc := range cases {
		if got := Nullable(MustParse(tc.pat)); got != tc.want {
			t.Errorf("Nullable(%q) = %v, want %v", tc.pat, got, tc.want)
		}
	}
}

func TestDeepNestingRejected(t *testing.T) {
	deep := strings.Repeat("(", MaxGroupDepth+1) + "a" + strings.Repeat(")", MaxGroupDepth+1)
	if _, err := Parse(deep); err == nil {
		t.Fatal("pathological nesting accepted")
	}
	ok := strings.Repeat("(", 50) + "a" + strings.Repeat(")", 50)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("reasonable nesting rejected: %v", err)
	}
}
