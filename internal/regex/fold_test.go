package regex_test

import (
	"fmt"
	"math/rand"
	"testing"

	"bvap/internal/charclass"
	"bvap/internal/glushkov"
	"bvap/internal/regex"
)

func matchAny(t *testing.T, pattern, input string) bool {
	t.Helper()
	nfa, err := glushkov.Build(regex.FullyUnfold(regex.MustParse(pattern)))
	if err != nil {
		t.Fatalf("%q: %v", pattern, err)
	}
	return len(nfa.MatchEnds([]byte(input))) > 0
}

func TestFoldCaseGlobal(t *testing.T) {
	for _, in := range []string{"attack", "ATTACK", "AtTaCk"} {
		if !matchAny(t, "(?i)attack", in) {
			t.Errorf("(?i)attack missed %q", in)
		}
	}
	if matchAny(t, "attack", "ATTACK") {
		t.Error("case-sensitive pattern matched upper case")
	}
}

func TestFoldCaseGroup(t *testing.T) {
	// (?i:...) folds only inside the group.
	if !matchAny(t, "(?i:get) /path", "GET /path") {
		t.Error("(?i:get) missed GET")
	}
	if matchAny(t, "(?i:get) /path", "GET /PATH") {
		t.Error("folding leaked past the group")
	}
}

func TestFoldCaseClass(t *testing.T) {
	lit, ok := regex.MustParse("(?i)[a-c]").(regex.Lit)
	if !ok {
		t.Fatal("not a literal")
	}
	want := charclass.Range('a', 'c').Union(charclass.Range('A', 'C'))
	if !lit.Class.Equal(want) {
		t.Fatalf("(?i)[a-c] = %v", lit.Class)
	}
	// Negation happens after folding: (?i)[^a] excludes both cases.
	neg := regex.MustParse("(?i)[^a]").(regex.Lit)
	if neg.Class.Contains('a') || neg.Class.Contains('A') {
		t.Fatal("(?i)[^a] contains a case of 'a'")
	}
	if !neg.Class.Contains('b') {
		t.Fatal("(?i)[^a] lost 'b'")
	}
}

func TestFoldCaseWithCounting(t *testing.T) {
	if !matchAny(t, "(?i)ab{3}c", "ABBBC") {
		t.Error("folded counting pattern missed")
	}
	if matchAny(t, "(?i)ab{3}c", "ABBC") {
		t.Error("folded counting pattern over-matched")
	}
}

func TestFoldCaseNonLetters(t *testing.T) {
	// Digits and punctuation are unaffected.
	lit := regex.MustParse("(?i)5").(regex.Lit)
	if lit.Class.Count() != 1 {
		t.Fatalf("(?i)5 widened: %v", lit.Class)
	}
}

func TestFoldCaseClassFunction(t *testing.T) {
	c := charclass.Single('x').FoldCase()
	if !c.Contains('x') || !c.Contains('X') || c.Count() != 2 {
		t.Fatalf("FoldCase(x) = %v", c)
	}
	// Idempotent.
	if !c.FoldCase().Equal(c) {
		t.Fatal("FoldCase not idempotent")
	}
	// Σ stays Σ.
	if !charclass.Any().FoldCase().Equal(charclass.Any()) {
		t.Fatal("FoldCase(Σ) changed")
	}
}

func TestUnsupportedModifierRejected(t *testing.T) {
	for _, pat := range []string{"(?m)a", "(?<name>a)", "(?=a)"} {
		if _, err := regex.Parse(pat); err == nil {
			t.Errorf("%q accepted", pat)
		}
	}
}

// TestQuickRewritePreservesLanguage checks the compiler's rewriting pipeline
// end to end: the rewritten pattern (split to the hardware's read set and
// partially unfolded) must recognize exactly the language of the original,
// observed through unfolded Glushkov NFAs on random inputs.
func TestQuickRewritePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		lo := r.Intn(4)
		hi := lo + 1 + r.Intn(120)
		var pat string
		switch trial % 3 {
		case 0:
			pat = fmt.Sprintf("xa{%d}y", hi)
		case 1:
			pat = fmt.Sprintf("xa{%d,%d}y", lo, hi)
		default:
			pat = fmt.Sprintf("x(ab){%d,%d}y", lo, hi)
		}
		k := []int{8, 16, 32, 64}[r.Intn(4)]
		th := []int{2, 4, 8}[r.Intn(3)]
		orig := regex.MustParse(pat)
		rewritten := regex.Rewrite(orig, regex.Options{UnfoldThreshold: th, BVSize: k})
		a := glushkov.MustBuild(regex.FullyUnfold(orig))
		b := glushkov.MustBuild(regex.FullyUnfold(rewritten))
		input := make([]byte, 3*hi+20)
		for i := range input {
			input[i] = "aabxy"[r.Intn(5)]
		}
		ea, eb := a.MatchEnds(input), b.MatchEnds(input)
		if len(ea) != len(eb) {
			t.Fatalf("%q K=%d th=%d: %d vs %d match ends", pat, k, th, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%q K=%d th=%d: end %d differs", pat, k, th, i)
			}
		}
	}
}
