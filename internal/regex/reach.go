package regex

// Reach analysis for the sharded parallel scanner. A chunk of a large input
// can be scanned independently of its predecessors when every pattern's
// matches have bounded length: a match ending inside the chunk then depends
// only on the last MaxMatchLen symbols before it, so replaying that many
// bytes before the chunk start reconstructs exactly the frontier the
// sequential scan would have had (see internal/parascan and DESIGN.md,
// "Concurrency model"). Patterns containing *, + or {n,} have unbounded
// reach and force the scanner back to the sequential path.

// reachCap bounds the products computed by MaxMatchLen so pathological
// nested repetitions (a{60000}){60000} cannot overflow; anything larger is
// reported unbounded, which is always safe (the caller falls back to the
// sequential scan).
const reachCap = 1 << 30

// MaxMatchLen returns an upper bound on the number of symbols in any string
// of n's language, and whether such a bound exists. The bound is exact for
// the unfolded form: concatenation sums, alternation takes the maximum, and
// r{m,n} multiplies by n. Star, plus and {n,} make the language's reach
// unbounded (unless the repeated body only matches ε).
func MaxMatchLen(n Node) (int, bool) {
	switch n := n.(type) {
	case Empty:
		return 0, true
	case Lit:
		return 1, true
	case *Concat:
		total := 0
		for _, f := range n.Factors {
			l, ok := MaxMatchLen(f)
			if !ok {
				return 0, false
			}
			total += l
			if total > reachCap {
				return 0, false
			}
		}
		return total, true
	case *Alt:
		max := 0
		for _, a := range n.Alternatives {
			l, ok := MaxMatchLen(a)
			if !ok {
				return 0, false
			}
			if l > max {
				max = l
			}
		}
		return max, true
	case *Star:
		if l, ok := MaxMatchLen(n.Sub); ok && l == 0 {
			return 0, true // (ε)* still only matches ε
		}
		return 0, false
	case *Repeat:
		l, ok := MaxMatchLen(n.Sub)
		if !ok {
			return 0, false
		}
		if l == 0 {
			return 0, true
		}
		if n.Max == Unbounded {
			return 0, false
		}
		if n.Max > reachCap/l {
			return 0, false
		}
		return l * n.Max, true
	default:
		return 0, false
	}
}
