package regex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExample71Unfold(t *testing.T) {
	// §7 Example 7.1: with threshold 4,
	// a(bc){2}d{1,3}ef{2,}g{7} → abcbcdd?d?efff*g{7}.
	in := MustParse("a(bc){2}d{1,3}ef{2,}g{7}")
	got := Unfold(Normalize(in), 4)
	want := MustParse("abcbcdd?d?efff*g{7}")
	if !Equal(got, want) {
		t.Fatalf("unfold = %q, want %q", got, want)
	}
}

func TestExample72SplitExact(t *testing.T) {
	// §7 Example 7.2: ab{147}c → ab{64}b{64}b{19}c with K=64.
	in := MustParse("ab{147}c")
	got := SplitBounds(Normalize(in), 64, 4)
	want := MustParse("ab{64}b{64}b{19}c")
	if !Equal(got, want) {
		t.Fatalf("split = %q, want %q", got, want)
	}
}

func TestExample72SplitRange(t *testing.T) {
	// §7 Example 7.2: ab{2,114}c splits into chunks with min-sum 2 and
	// max-sum 114 realizable by rAll/rHalf/rQuarter. The paper writes
	// b{1,64}b{1,32}b{0,16}b{0,2}; our splitter first peels the exact
	// prefix (§4's r{m-1}·r{1,n-m+1} rule), producing the equivalent
	// b{1}b{1,64}b{0,32}b{0,16}b{0,1} — same minimum (2) and maximum
	// (114) totals, all range reads in {64,32,16}.
	in := MustParse("ab{2,114}c")
	got := SplitBounds(Normalize(in), 64, 4)
	min, max := repetitionSpan(got, 'b')
	if min != 2 || max != 114 {
		t.Fatalf("split span = {%d,%d}, want {2,114}; got %q", min, max, got)
	}
	if !CheckRealizable(got, 64) {
		t.Fatalf("split result not realizable: %q", got)
	}
}

func TestExample72SplitRange100(t *testing.T) {
	// a{1,100} → a{1,64}a{0,32}a?a?a?a? after split+unfold with
	// threshold 4 (the paper's third Example 7.2 rewrite).
	in := MustParse("xa{1,100}y")
	got := Rewrite(in, Options{UnfoldThreshold: 4, BVSize: 64})
	want := MustParse("xa{1,64}a{0,32}a?a?a?a?y")
	if !Equal(got, want) {
		t.Fatalf("rewrite = %q, want %q", got, want)
	}
}

// repetitionSpan sums the min/max contributions of every factor whose body
// matches the single symbol c, counting plain literals as {1,1}.
func repetitionSpan(n Node, c byte) (min, max int) {
	var walk func(Node)
	walk = func(m Node) {
		switch m := m.(type) {
		case Lit:
			if m.Class.Count() == 1 {
				if b, _ := m.Class.Min(); b == c {
					min++
					max++
				}
			}
		case *Concat:
			for _, f := range m.Factors {
				walk(f)
			}
		case *Repeat:
			if lit, ok := m.Sub.(Lit); ok && lit.Class.Count() == 1 {
				if b, _ := lit.Class.Min(); b == c {
					min += m.Min
					max += m.Max
				}
			}
		}
	}
	walk(n)
	return min, max
}

func TestNormalizeUnboundedToStar(t *testing.T) {
	got := Normalize(MustParse("a{3,}"))
	want := MustParse("a{3}a*")
	if !Equal(got, want) {
		t.Fatalf("normalize a{3,} = %q, want %q", got, want)
	}
}

func TestNormalizeNullableBody(t *testing.T) {
	// (a?){3} has a nullable body: it must be lowered to an unfolded
	// optional form because counting nullable iterations is unsupported.
	got := Normalize(MustParse("(a?){3}"))
	if !CheckRealizable(got, 64) {
		t.Fatalf("nullable-body repetition survived: %q", got)
	}
	// (a?){2,} ≡ a*.
	got = Normalize(MustParse("(a?){2,}"))
	if _, ok := got.(*Star); !ok {
		t.Fatalf("(a?){2,} = %q, want a*", got)
	}
}

func TestRewriteRealizable(t *testing.T) {
	patterns := []string{
		"ab{147}c",
		"ab{2,114}c",
		"a{1,100}",
		".{9139}",
		"x{5}",
		"(ab){33}",
		"a{63}|b{65}",
		"a{7,}b",
		"url=.{8000}",
		"a{16}b{16,64}c{0,200}",
	}
	for _, k := range []int{16, 32, 64, 128} {
		for _, pat := range patterns {
			got := Rewrite(MustParse(pat), Options{UnfoldThreshold: 4, BVSize: k})
			if !CheckRealizable(got, k) {
				t.Errorf("Rewrite(%q, K=%d) not realizable: %q", pat, k, got)
			}
		}
	}
}

func TestFullyUnfoldRemovesAllCounting(t *testing.T) {
	for _, pat := range []string{"a{17}", "a{3,90}b{4,}", "(ab){9}c{2,5}"} {
		got := FullyUnfold(MustParse(pat))
		Walk(got, func(m Node) {
			if r, ok := m.(*Repeat); ok && !(r.Min == 0 && r.Max == 1) {
				t.Errorf("FullyUnfold(%q) kept repetition %v", pat, r)
			}
		})
	}
}

// genBoundedPattern builds a random pattern with bounded repetitions for the
// property test.
func genBoundedPattern(r *rand.Rand) Node {
	letters := "ab"
	body := Lit{Class: singleOf(letters[r.Intn(len(letters))])}
	min := 1 + r.Intn(5)
	max := min + 1 + r.Intn(200) // max > min so NewRepeat never collapses
	return NewConcat(Literal("x"), NewRepeat(body, min, max), Literal("y"))
}

func TestQuickSplitPreservesSpan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genBoundedPattern(r)
		rep := n.(*Concat).Factors[1].(*Repeat)
		body, _ := rep.Sub.(Lit)
		b, _ := body.Class.Min()
		split := SplitBounds(n, 64, 4)
		min, max := repetitionSpan(split, b)
		return min == rep.Min && max == rep.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRewriteRealizable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genBoundedPattern(r)
		k := []int{16, 32, 64, 128}[r.Intn(4)]
		return CheckRealizable(Rewrite(n, Options{UnfoldThreshold: 4, BVSize: k}), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeStats(t *testing.T) {
	st := Analyze(MustParse(".*a.{100}"))
	if !st.HasCounting() || st.MaxUpperBound != 100 {
		t.Fatalf("stats = %+v", st)
	}
	// 102 positions when unfolded (a + 100 dots + leading .*), per §1.
	if st.UnfoldedLiterals != 102 {
		t.Fatalf("unfolded = %d, want 102", st.UnfoldedLiterals)
	}
	if st.CountingLiterals != 99 {
		t.Fatalf("counting literals = %d, want 99", st.CountingLiterals)
	}
	st = Analyze(MustParse("abc"))
	if st.HasCounting() || st.NontrivialCounting || st.UnfoldedLiterals != 3 {
		t.Fatalf("plain stats = %+v", st)
	}
	st = Analyze(MustParse("a{4}"))
	if st.NontrivialCounting {
		t.Fatal("bound 4 should be trivial")
	}
	st = Analyze(MustParse("a{5}"))
	if !st.NontrivialCounting {
		t.Fatal("bound 5 should be non-trivial")
	}
}
