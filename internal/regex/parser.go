package regex

import (
	"fmt"
	"strconv"
	"strings"

	"bvap/internal/charclass"
)

// ParseError describes a syntax error in a regex, with the byte offset where
// it was detected.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("regex: parse error at offset %d in %q: %s", e.Pos, e.Pattern, e.Msg)
}

// MaxBound is the largest repetition bound the parser accepts. The largest
// bound observed in the paper's datasets exceeds 10,000 (e.g. the ClamAV
// pattern with {9139}); we allow a comfortable margin above that.
const MaxBound = 1 << 20

// MaxGroupDepth bounds group nesting so adversarial patterns cannot
// overflow the recursive-descent parser's stack.
const MaxGroupDepth = 500

// Parse parses a PCRE-subset pattern into an AST. Supported syntax: literals;
// `.`; escapes \n \r \t \f \v \0 \xHH \d \D \w \W \s \S and escaped
// metacharacters; bracket classes with ranges and negation; grouping with
// (...), (?:...) and (?i:...); alternation; and the postfix operators
// * + ? {n} {m,n} {n,}. A leading ^ anchors the match to the start of the
// stream (AP hardware's "start of data" STE mode) — use ParseAnchored to
// observe it; $ and backreferences are not supported.
func Parse(pattern string) (Node, error) {
	n, _, err := ParseAnchored(pattern)
	return n, err
}

// ParseAnchored is Parse plus the start-anchor flag: a leading ^ (optionally
// after a (?i) modifier) restricts matches to begin at the first input
// symbol instead of at every position.
func ParseAnchored(pattern string) (Node, bool, error) {
	p := &parser{src: pattern}
	anchored := false
	// Allow (?i)^... as well as ^(?i)... — rule sets write both.
	if strings.HasPrefix(p.src[p.pos:], "(?i)") {
		p.foldCase = true
		p.pos += 4
	}
	if !p.eof() && p.peek() == '^' {
		anchored = true
		p.pos++
	}
	n, err := p.parseAlt()
	if err != nil {
		return nil, false, err
	}
	if p.pos != len(p.src) {
		return nil, false, p.errorf("unexpected %q", p.src[p.pos])
	}
	return n, anchored, nil
}

// MustParse is like Parse but panics on error. It is intended for tests and
// for compiled-in example patterns.
func MustParse(pattern string) Node {
	n, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src   string
	pos   int
	depth int
	// foldCase applies ASCII case folding to every class parsed while
	// set (the PCRE (?i) modifier).
	foldCase bool
}

// fold applies the active case-folding mode to a class.
func (p *parser) fold(c charclass.Class) charclass.Class {
	if p.foldCase {
		return c.FoldCase()
	}
	return c
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte { return p.src[p.pos] }

// parseAlt parses alternation, the lowest-precedence operator.
func (p *parser) parseAlt() (Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Node{first}
	for !p.eof() && p.peek() == '|' {
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	return NewAlt(alts...), nil
}

// parseConcat parses a (possibly empty) sequence of repeated atoms.
func (p *parser) parseConcat() (Node, error) {
	var factors []Node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		f, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		factors = append(factors, f)
	}
	return NewConcat(factors...), nil
}

// parseRepeat parses an atom followed by any number of postfix operators.
func (p *parser) parseRepeat() (Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			atom = NewRepeat(atom, 0, Unbounded)
		case '+':
			p.pos++
			atom = NewRepeat(atom, 1, Unbounded)
		case '?':
			p.pos++
			atom = NewRepeat(atom, 0, 1)
		case '{':
			min, max, ok, err := p.parseBounds()
			if err != nil {
				return nil, err
			}
			if !ok {
				// Not a valid bound expression; PCRE treats a lone
				// '{' as a literal. We follow suit.
				return atom, nil
			}
			atom = NewRepeat(atom, min, max)
		default:
			return atom, nil
		}
	}
	return atom, nil
}

// parseBounds parses {n}, {m,n} or {n,} starting at '{'. It returns ok=false
// without consuming input when the braces do not form a bound expression.
func (p *parser) parseBounds() (min, max int, ok bool, err error) {
	start := p.pos
	p.pos++ // consume '{'
	min, okMin := p.parseInt()
	if !okMin {
		p.pos = start
		return 0, 0, false, nil
	}
	max = min
	if !p.eof() && p.peek() == ',' {
		p.pos++
		if !p.eof() && p.peek() == '}' {
			max = Unbounded
		} else {
			var okMax bool
			max, okMax = p.parseInt()
			if !okMax {
				p.pos = start
				return 0, 0, false, nil
			}
		}
	}
	if p.eof() || p.peek() != '}' {
		p.pos = start
		return 0, 0, false, nil
	}
	p.pos++ // consume '}'
	if max != Unbounded && max < min {
		return 0, 0, false, p.errorf("invalid bound {%d,%d}: max < min", min, max)
	}
	if min > MaxBound || max > MaxBound {
		return 0, 0, false, p.errorf("repetition bound exceeds %d", MaxBound)
	}
	return min, max, true, nil
}

func (p *parser) parseInt() (int, bool) {
	start := p.pos
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, false
	}
	v, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, false
	}
	return v, true
}

// parseAtom parses a group, a bracket class, `.`, an escape, or a literal.
func (p *parser) parseAtom() (Node, error) {
	if p.eof() {
		return Empty{}, nil
	}
	switch c := p.peek(); c {
	case '(':
		p.pos++
		p.depth++
		if p.depth > MaxGroupDepth {
			return nil, p.errorf("group nesting exceeds %d", MaxGroupDepth)
		}
		defer func() { p.depth-- }()
		restoreFold := p.foldCase
		restore := false
		// Group modifiers. (?: is a non-capturing group (the hardware
		// has no capture semantics, so all groups behave alike);
		// (?i) enables ASCII case folding for the rest of the pattern
		// and (?i:...) for the group only.
		if !p.eof() && p.peek() == '?' {
			switch {
			case p.pos+1 < len(p.src) && p.src[p.pos+1] == ':':
				p.pos += 2
			case p.pos+2 < len(p.src) && p.src[p.pos+1] == 'i' && p.src[p.pos+2] == ')':
				p.pos += 3
				p.foldCase = true
				return p.parseAtomOrEmpty()
			case p.pos+2 < len(p.src) && p.src[p.pos+1] == 'i' && p.src[p.pos+2] == ':':
				p.pos += 3
				p.foldCase = true
				restore = true
			default:
				return nil, p.errorf("unsupported group modifier")
			}
		}
		inner, err := p.parseAlt()
		if restore {
			p.foldCase = restoreFold
		}
		if err != nil {
			return nil, err
		}
		if p.eof() || p.peek() != ')' {
			return nil, p.errorf("missing closing parenthesis")
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return Lit{Class: charclass.Any()}, nil
	case '\\':
		cls, err := p.parseEscape()
		if err != nil {
			return nil, err
		}
		return Lit{Class: p.fold(cls)}, nil
	case '*', '+', '?':
		return nil, p.errorf("repetition operator %q with nothing to repeat", c)
	case '^':
		return nil, p.errorf("^ is only supported as a start anchor at the beginning of the pattern")
	case '$':
		return nil, p.errorf("the end anchor $ is not supported (streaming partial-match semantics)")
	case ')':
		return nil, p.errorf("unmatched closing parenthesis")
	default:
		p.pos++
		return Lit{Class: p.fold(charclass.Single(c))}, nil
	}
}

// parseAtomOrEmpty parses the next atom, or ε when the pattern ends or an
// alternation/group boundary follows (used after a bare (?i) modifier).
func (p *parser) parseAtomOrEmpty() (Node, error) {
	if p.eof() || p.peek() == '|' || p.peek() == ')' {
		return Empty{}, nil
	}
	return p.parseAtom()
}

// parseEscape parses a backslash escape and returns its character class.
func (p *parser) parseEscape() (charclass.Class, error) {
	p.pos++ // consume backslash
	if p.eof() {
		return charclass.Class{}, p.errorf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	switch c {
	case 'n':
		return charclass.Single('\n'), nil
	case 'r':
		return charclass.Single('\r'), nil
	case 't':
		return charclass.Single('\t'), nil
	case 'f':
		return charclass.Single('\f'), nil
	case 'v':
		return charclass.Single('\v'), nil
	case '0':
		return charclass.Single(0), nil
	case 'a':
		return charclass.Single(7), nil
	case 'e':
		return charclass.Single(27), nil
	case 'd':
		return charclass.Digit(), nil
	case 'D':
		return charclass.NotDigit(), nil
	case 'w':
		return charclass.Word(), nil
	case 'W':
		return charclass.NotWord(), nil
	case 's':
		return charclass.Space(), nil
	case 'S':
		return charclass.NotSpace(), nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return charclass.Class{}, p.errorf(`\x needs two hex digits`)
		}
		v, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return charclass.Class{}, p.errorf(`bad \x escape %q`, p.src[p.pos:p.pos+2])
		}
		p.pos += 2
		return charclass.Single(byte(v)), nil
	default:
		// Escaped metacharacter or punctuation stands for itself.
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			return charclass.Class{}, p.errorf(`unsupported escape \%c`, c)
		}
		return charclass.Single(c), nil
	}
}

// parseClass parses a bracket expression [...] or [^...].
func (p *parser) parseClass() (Node, error) {
	p.pos++ // consume '['
	negate := false
	if !p.eof() && p.peek() == '^' {
		negate = true
		p.pos++
	}
	cls := charclass.Empty()
	first := true
	for {
		if p.eof() {
			return nil, p.errorf("missing closing bracket")
		}
		if p.peek() == ']' && !first {
			p.pos++
			break
		}
		first = false
		lo, loIsClass, loCls, err := p.classAtom()
		if err != nil {
			return nil, err
		}
		if loIsClass {
			cls = cls.Union(loCls)
			continue
		}
		// Possible range lo-hi.
		if p.pos+1 < len(p.src) && p.peek() == '-' && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, hiIsClass, _, err := p.classAtom()
			if err != nil {
				return nil, err
			}
			if hiIsClass {
				return nil, p.errorf("invalid range endpoint (shorthand class)")
			}
			if hi < lo {
				return nil, p.errorf("invalid range %q-%q", lo, hi)
			}
			cls = cls.Union(charclass.Range(lo, hi))
		} else {
			cls = cls.Union(charclass.Single(lo))
		}
	}
	// Case folding applies to the positive members before negation:
	// (?i)[^a] excludes both cases of 'a'.
	cls = p.fold(cls)
	if negate {
		cls = cls.Negate()
	}
	if cls.IsEmpty() {
		return nil, p.errorf("empty character class")
	}
	return Lit{Class: cls}, nil
}

// classAtom parses a single element inside a bracket expression: either a
// byte (possibly escaped) or a shorthand class like \d.
func (p *parser) classAtom() (b byte, isClass bool, cls charclass.Class, err error) {
	if p.eof() {
		return 0, false, charclass.Class{}, p.errorf("missing closing bracket")
	}
	c := p.peek()
	if c != '\\' {
		p.pos++
		return c, false, charclass.Class{}, nil
	}
	cl, err := p.parseEscape()
	if err != nil {
		return 0, false, charclass.Class{}, err
	}
	if cl.Count() == 1 {
		m, _ := cl.Min()
		return m, false, charclass.Class{}, nil
	}
	return 0, true, cl, nil
}
