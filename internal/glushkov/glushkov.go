// Package glushkov implements the Glushkov position-automaton construction
// (§2 of the paper) for classical regexes, and an NFA execution engine.
//
// The Glushkov construction produces ε-free automata that are homogeneous:
// every transition entering a state is labeled with the same character class.
// Homogeneity is what lets AP-style hardware push predicates from edges onto
// states (STEs), and it is the property the AH transformation generalizes to
// bit-vector actions.
//
// Build accepts only classical operators (ε, σ, concatenation, alternation,
// *, +, ?). Bounded repetitions must be removed first, either by unfolding
// (regex.FullyUnfold — the baseline architectures' approach) or by the
// counting-aware NBVA construction in package nbva.
package glushkov

import (
	"fmt"

	"bvap/internal/charclass"
	"bvap/internal/regex"
)

// State is one position state of a Glushkov NFA. Because the automaton is
// homogeneous, the character class lives on the state, exactly like an STE's
// predicate in AP-style hardware.
type State struct {
	Class charclass.Class
	Final bool
}

// NFA is a homogeneous ε-free position automaton. The implicit initial state
// q0 is not materialized: Initial lists the states reachable from it, and
// AcceptsEmpty records whether q0 itself is final (the regex is nullable).
type NFA struct {
	States       []State
	Initial      []int   // first(r): states enterable at a match start
	Follow       [][]int // Follow[p]: states enterable after p
	AcceptsEmpty bool
	// Anchored restricts matches to begin at the first input symbol (the
	// AP hardware's "start of data" STE mode, the regex ^ anchor).
	Anchored bool
}

// Size returns the number of position states (the STE count for hardware).
func (a *NFA) Size() int { return len(a.States) }

// Build constructs the Glushkov NFA of a classical regex. It returns an
// error if the regex still contains bounded repetitions other than ? and +.
func Build(n regex.Node) (*NFA, error) {
	b := &builder{}
	info, err := b.build(n)
	if err != nil {
		return nil, err
	}
	a := &NFA{
		States:       b.states,
		Initial:      info.first,
		Follow:       b.follow,
		AcceptsEmpty: info.nullable,
	}
	for _, p := range info.last {
		a.States[p].Final = true
	}
	return a, nil
}

// MustBuild is Build for known-good inputs; it panics on error.
func MustBuild(n regex.Node) *NFA {
	a, err := Build(n)
	if err != nil {
		panic(err)
	}
	return a
}

type info struct {
	nullable bool
	first    []int
	last     []int
}

type builder struct {
	states []State
	follow [][]int
	// followSeen mirrors follow as per-source bitsets for O(1) duplicate
	// checks: wide unfolded ranges like .{8,4000} produce Θ(n²) follow
	// edges, and a linear duplicate scan per insertion would make
	// construction cubic.
	followSeen [][]uint64
}

func (b *builder) newPos(c charclass.Class) int {
	b.states = append(b.states, State{Class: c})
	b.follow = append(b.follow, nil)
	b.followSeen = append(b.followSeen, nil)
	return len(b.states) - 1
}

func (b *builder) link(from []int, to []int) {
	for _, p := range from {
		seen := b.followSeen[p]
		for _, q := range to {
			w := q >> 6
			if w >= len(seen) {
				grown := make([]uint64, w+1)
				copy(grown, seen)
				seen = grown
				b.followSeen[p] = seen
			}
			bit := uint64(1) << (uint(q) & 63)
			if seen[w]&bit != 0 {
				continue
			}
			seen[w] |= bit
			b.follow[p] = append(b.follow[p], q)
		}
	}
}

func appendUnique(dst []int, src []int) []int {
	for _, s := range src {
		found := false
		for _, d := range dst {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	return dst
}

func (b *builder) build(n regex.Node) (info, error) {
	switch n := n.(type) {
	case regex.Empty:
		return info{nullable: true}, nil
	case regex.Lit:
		p := b.newPos(n.Class)
		return info{first: []int{p}, last: []int{p}}, nil
	case *regex.Concat:
		cur := info{nullable: true}
		for _, f := range n.Factors {
			fi, err := b.build(f)
			if err != nil {
				return info{}, err
			}
			b.link(cur.last, fi.first)
			next := info{nullable: cur.nullable && fi.nullable}
			// Positions of cur and fi are disjoint: plain appends.
			next.first = append(next.first, cur.first...)
			if cur.nullable {
				next.first = append(next.first, fi.first...)
			}
			next.last = append(next.last, fi.last...)
			if fi.nullable {
				next.last = append(next.last, cur.last...)
			}
			cur = next
		}
		return cur, nil
	case *regex.Alt:
		var out info
		for _, alt := range n.Alternatives {
			ai, err := b.build(alt)
			if err != nil {
				return info{}, err
			}
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out, nil
	case *regex.Star:
		si, err := b.build(n.Sub)
		if err != nil {
			return info{}, err
		}
		b.link(si.last, si.first)
		return info{nullable: true, first: si.first, last: si.last}, nil
	case *regex.Repeat:
		switch {
		case n.Min == 0 && n.Max == 1: // r?
			ri, err := b.build(n.Sub)
			if err != nil {
				return info{}, err
			}
			ri.nullable = true
			return ri, nil
		case n.Min == 1 && n.Max == regex.Unbounded: // r+
			ri, err := b.build(n.Sub)
			if err != nil {
				return info{}, err
			}
			b.link(ri.last, ri.first)
			return ri, nil
		default:
			return info{}, fmt.Errorf("glushkov: bounded repetition %s must be unfolded or compiled via nbva", n)
		}
	default:
		return info{}, fmt.Errorf("glushkov: unknown node type %T", n)
	}
}

// Runner executes an NFA over a byte stream with AP-style partial-match
// semantics: the initial states are made available on every cycle, so a match
// may begin at any input position; a match is reported at each position where
// a final state is active.
//
// The runner is sparse: each step costs time proportional to the number of
// available and active states, not to the automaton size. Unfolded baseline
// automata reach thousands of states with only a handful active, so this is
// what makes the benchmark harness tractable.
type Runner struct {
	nfa *NFA
	// availStamp[q] == epoch marks q available this cycle;
	// activeStamp[q] == epoch marks q fired this cycle.
	availStamp  []uint64
	activeStamp []uint64
	epoch       uint64
	availList   []int
	activeList  []int
	started     bool
}

// NewRunner creates a Runner in its initial configuration.
func NewRunner(a *NFA) *Runner {
	return &Runner{
		nfa:         a,
		availStamp:  make([]uint64, a.Size()),
		activeStamp: make([]uint64, a.Size()),
		epoch:       1,
	}
}

// Reset returns the runner to the start-of-stream configuration.
func (r *Runner) Reset() {
	r.epoch++
	r.availList = r.availList[:0]
	r.activeList = r.activeList[:0]
	r.started = false
}

// ActiveCount returns how many states fired on the most recent step; the
// hardware simulator uses this to model switching energy.
func (r *Runner) ActiveCount() int { return len(r.activeList) }

// AppendActive appends the ids of the states that fired on the most recent
// step to dst and returns the extended slice. It allocates only when dst's
// capacity is insufficient, so profilers can reuse one scratch buffer.
func (r *Runner) AppendActive(dst []int) []int {
	return append(dst, r.activeList...)
}

// Step consumes one input symbol and reports whether a match ends at it.
func (r *Runner) Step(b byte) bool {
	a := r.nfa
	// State-matching phase: active = (available ∨ initial) ∧ class match.
	epoch := r.epoch
	r.epoch++
	next := r.epoch
	match := false
	r.activeList = r.activeList[:0]
	fire := func(q int) {
		if r.activeStamp[q] == next {
			return
		}
		r.activeStamp[q] = next
		r.activeList = append(r.activeList, q)
	}
	if !a.Anchored || !r.started {
		for _, q := range a.Initial {
			if a.States[q].Class.Contains(b) {
				fire(q)
			}
		}
	}
	r.started = true
	for _, q := range r.availList {
		if r.availStamp[q] == epoch && a.States[q].Class.Contains(b) {
			fire(q)
		}
	}
	// State-transition phase: availability for the next cycle.
	r.availList = r.availList[:0]
	for _, q := range r.activeList {
		if a.States[q].Final {
			match = true
		}
		for _, succ := range a.Follow[q] {
			if r.availStamp[succ] != next {
				r.availStamp[succ] = next
				r.availList = append(r.availList, succ)
			}
		}
	}
	return match
}

// AvailableCount returns how many states are available for the next step.
func (r *Runner) AvailableCount() int { return len(r.availList) }

// MatchEnds runs the NFA over input and returns every index i such that a
// match ends at input[i] (0-based). A nullable regex also matches the empty
// string at every position; callers that care can consult AcceptsEmpty.
func (a *NFA) MatchEnds(input []byte) []int {
	r := NewRunner(a)
	var ends []int
	for i, b := range input {
		if r.Step(b) {
			ends = append(ends, i)
		}
	}
	return ends
}
