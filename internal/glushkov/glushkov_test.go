package glushkov

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"bvap/internal/regex"
)

func build(t *testing.T, pattern string) *NFA {
	t.Helper()
	n, err := regex.Parse(pattern)
	if err != nil {
		t.Fatalf("parse %q: %v", pattern, err)
	}
	a, err := Build(regex.FullyUnfold(n))
	if err != nil {
		t.Fatalf("build %q: %v", pattern, err)
	}
	return a
}

func TestExample21Structure(t *testing.T) {
	// §2 Example 2.1: Σ*σ1(σ2σ3|σ4)*σ5 has six control states counting
	// the initial one. Under partial-match semantics the leading Σ* is
	// the implicit always-available initial state q0, which we do not
	// materialize, leaving the five positions σ1..σ5.
	a := build(t, "a(bc|d)*e")
	if a.Size() != 5 {
		t.Fatalf("size = %d, want 5", a.Size())
	}
	if a.AcceptsEmpty {
		t.Fatal("regex is not nullable")
	}
	finals := 0
	for _, s := range a.States {
		if s.Final {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("finals = %d, want 1", finals)
	}
}

func TestHomogeneityInvariant(t *testing.T) {
	// Glushkov automata are homogeneous by construction: the class lives
	// on the state, so the invariant is structural. Verify follow targets
	// are valid states and the initial set is nonempty for non-nullable
	// non-empty regexes.
	for _, pat := range []string{"abc", "a|b", "a*bc+", "(ab|cd)*e", ".*x.?y"} {
		a := build(t, pat)
		if len(a.Initial) == 0 {
			t.Errorf("%q: empty initial set", pat)
		}
		for p, succs := range a.Follow {
			for _, s := range succs {
				if s < 0 || s >= a.Size() {
					t.Errorf("%q: follow[%d] contains invalid %d", pat, p, s)
				}
			}
		}
	}
}

func TestMatchEndsSimple(t *testing.T) {
	a := build(t, "ab")
	ends := a.MatchEnds([]byte("xxabyabz"))
	want := []int{3, 6}
	if len(ends) != len(want) {
		t.Fatalf("ends = %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestMatchUnfoldedCounting(t *testing.T) {
	// Σ*aΣ{3} from Fig. 1: matches end where an 'a' occurred 3 symbols
	// earlier. Input "bbabaaabaa" (from the figure: outputs 1 at indices
	// 5, 7, 8 using 0-based positions of the figure's rows).
	a := build(t, ".*a.{3}")
	input := []byte("babaabaa")
	// 'a' at positions 1, 3, 4, 6, 7 → matches at 4(a@1)... compute:
	// match at i iff input[i-3] == 'a'.
	var want []int
	for i := 3; i < len(input); i++ {
		if input[i-3] == 'a' {
			want = append(want, i)
		}
	}
	got := a.MatchEnds(input)
	if len(got) != len(want) {
		t.Fatalf("ends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ends = %v, want %v", got, want)
		}
	}
}

func TestBoundedRepetitionRejected(t *testing.T) {
	n := regex.MustParse("a{30}")
	if _, err := Build(n); err == nil {
		t.Fatal("Build accepted a bounded repetition")
	}
	if !strings.Contains(buildErr(n), "unfolded") {
		t.Fatalf("unhelpful error: %s", buildErr(n))
	}
}

func buildErr(n regex.Node) string {
	_, err := Build(n)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestAcceptsEmpty(t *testing.T) {
	if !build(t, "a*").AcceptsEmpty {
		t.Fatal("a* should accept empty")
	}
	if build(t, "a+").AcceptsEmpty {
		t.Fatal("a+ should not accept empty")
	}
}

// matchEndsRef computes match-end positions using the standard library
// regexp as the oracle: a match ends at i iff some substring input[j..i]
// (j ≤ i) is in the language.
func matchEndsRef(t *testing.T, pattern string, input []byte) []int {
	t.Helper()
	re, err := regexp.Compile("^(?s:" + pattern + ")$")
	if err != nil {
		t.Fatalf("stdlib compile %q: %v", pattern, err)
	}
	var ends []int
	for i := 0; i < len(input); i++ {
		for j := 0; j <= i; j++ {
			if re.Match(input[j : i+1]) {
				ends = append(ends, i)
				break
			}
		}
	}
	return ends
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAgainstStdlib(t *testing.T) {
	patterns := []string{
		"abc", "a|bc", "a*b", "(ab)+", "a?b?c", "[ab]c[^d]",
		"a(bc|d)*e", "ab|ba", "(a|b)(c|d)", "a+b+",
	}
	inputs := []string{"", "a", "abc", "abcabc", "aabbccdd", "edcbaabcde", "bacbdbce"}
	for _, pat := range patterns {
		a := build(t, pat)
		for _, in := range inputs {
			got := a.MatchEnds([]byte(in))
			want := matchEndsRef(t, pat, []byte(in))
			if !equalInts(got, want) {
				t.Errorf("pattern %q input %q: got %v want %v", pat, in, got, want)
			}
		}
	}
}

// randPattern generates a random classical regex over {a,b,c} together with
// its stdlib-compatible string.
func randPattern(r *rand.Rand, depth int) string {
	if depth == 0 {
		return string(rune('a' + r.Intn(3)))
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(" + randPattern(r, depth-1) + ")?"
	case 4:
		return "(" + randPattern(r, depth-1) + ")+"
	default:
		return string(rune('a' + r.Intn(3)))
	}
}

func TestQuickAgainstStdlib(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randPattern(r, 3)
		n, err := regex.Parse(pat)
		if err != nil {
			return false
		}
		a, err := Build(regex.FullyUnfold(n))
		if err != nil {
			return false
		}
		input := make([]byte, 12)
		for i := range input {
			input[i] = byte('a' + r.Intn(3))
		}
		got := a.MatchEnds(input)
		want := matchEndsRef(t, pat, input)
		return equalInts(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerReset(t *testing.T) {
	a := build(t, "ab")
	r := NewRunner(a)
	r.Step('a')
	r.Reset()
	if r.Step('b') {
		t.Fatal("match after reset: stale availability")
	}
}

func TestActiveCount(t *testing.T) {
	a := build(t, ".*a")
	r := NewRunner(a)
	r.Step('a')
	if r.ActiveCount() != 2 { // the .* state and the final a state
		t.Fatalf("active = %d, want 2", r.ActiveCount())
	}
	r.Step('b')
	if r.ActiveCount() != 1 { // only the .* state
		t.Fatalf("active = %d, want 1", r.ActiveCount())
	}
}
