package glushkov

import (
	"math/rand"
	"testing"

	"bvap/internal/regex"
)

// BenchmarkSparseRunnerStep measures the per-symbol cost of a large
// unfolded automaton (the baseline simulators' hot loop): sparse stepping
// keeps it proportional to the active set, not to the 1000+ states.
func BenchmarkSparseRunnerStep(b *testing.B) {
	nfa := MustBuild(regex.FullyUnfold(regex.MustParse("attack.{1000}end")))
	r := NewRunner(nfa)
	rnd := rand.New(rand.NewSource(3))
	input := make([]byte, 4096)
	alphabet := "atckend."
	for i := range input {
		input[i] = alphabet[rnd.Intn(len(alphabet))]
	}
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(input[i%len(input)])
	}
}

func BenchmarkBuild(b *testing.B) {
	ast := regex.FullyUnfold(regex.MustParse("a.{200}b"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ast); err != nil {
			b.Fatal(err)
		}
	}
}
