package tracing

// The span-export wire form — the currency of cross-node trace stitching.
// A node answering GET /cluster/trace/{id} snapshots every retained trace
// recorded under that id into Fragments (one per local hop of the
// distributed request) and serializes them with EncodeFragments; the
// coordinator's assembler decodes each node's reply and grafts the
// fragments into one causally-ordered tree (stitch.go).
//
// Fragments deliberately carry no absolute wall-clock timestamps: node
// clocks are not comparable, so the wire form transports only durations
// and intra-fragment start offsets, and the stitcher places every fragment
// at its remote parent span's causal position. There is nothing in the
// bytes that would even permit cross-node wall-clock ordering.
//
// Layout (little-endian, mirroring the BVCK session-checkpoint idiom):
//
//	[4]  magic "BVTF"
//	u8   version (1)
//	u16  fragment count
//	per fragment:
//	  u16+bytes node id
//	  u64  trace id
//	  u64  remote parent span id (0 = root fragment)
//	  u16+bytes root operation name
//	  i64  duration, ns
//	  u8   done (0/1)
//	  f64  energy, pJ (IEEE-754 bits)
//	  u32  span count
//	  per span:
//	    u64  span id
//	    u64  parent span id (0 = child of the fragment root)
//	    u16+bytes name
//	    i64  start offset from fragment start, ns
//	    i64  duration, ns
//	    u8   done (0/1)
//	    u16  attr count
//	    per attr: u16+bytes key, u16+bytes value
//	u64  FNV-64a checksum over everything above
//
// Decoding trusts nothing: the checksum gates all parsing, every count is
// bounded by the remaining byte budget before allocation, boolean bytes
// must be exactly 0 or 1, and trailing bytes are rejected. The encoding is
// a canonical function of the Fragment values, so any accepted byte string
// re-encodes byte-identically (FuzzTraceFragmentWire pins this, mirroring
// FuzzSessionCheckpointWire).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"time"
)

// ErrFragmentCorrupt marks a span-fragment byte string that failed
// structural validation: bad magic, unknown version, checksum mismatch,
// truncation, non-canonical content, or trailing bytes.
var ErrFragmentCorrupt = errors.New("tracing: span fragment wire corrupt")

const (
	fragmentWireMagic   = "BVTF"
	fragmentWireVersion = 1

	// maxWireString caps every length-prefixed string (node ids, span
	// names, attribute keys/values) at the u16 prefix range; Encode
	// truncates longer values rather than failing.
	maxWireString = 1<<16 - 1
)

// FragmentAttr is one stringified span attribute. Values are rendered by
// the snapshot (strconv for the typed setters), preserving recording
// order so the wire form is deterministic.
type FragmentAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// FragmentSpan is one span of a fragment, with its start expressed as an
// offset from the fragment's own start (node-local monotonic time — never
// comparable across nodes).
type FragmentSpan struct {
	ID      SpanID         `json:"span_id"`
	Parent  SpanID         `json:"parent_id"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Done    bool           `json:"done"`
	Attrs   []FragmentAttr `json:"attrs,omitempty"`
}

// Fragment is one node's share of a distributed trace: the span tree of a
// single adopted trace, rooted at the hop that node served. Parent is the
// remote caller's span id (carried by X-Bvap-Span-Id); the stitcher grafts
// the fragment under that span.
type Fragment struct {
	Node     string         `json:"node"`
	TraceID  TraceID        `json:"trace_id"`
	Parent   SpanID         `json:"parent_id"`
	Name     string         `json:"name"`
	DurNS    int64          `json:"dur_ns"`
	Done     bool           `json:"done"`
	EnergyPJ float64        `json:"energy_pj,omitempty"`
	Spans    []FragmentSpan `json:"spans"`
}

// Fragment snapshots the trace as a wire-transportable fragment attributed
// to node. Open spans report elapsed time so far with Done=false, same as
// View. A nil trace yields the zero fragment.
func (t *Trace) Fragment(node string) Fragment {
	if t == nil {
		return Fragment{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	f := Fragment{
		Node:     node,
		TraceID:  t.id,
		Parent:   t.parent,
		Name:     t.name,
		Done:     t.done,
		EnergyPJ: t.energyLocked(),
		Spans:    make([]FragmentSpan, 0, len(t.spans)),
	}
	if t.done {
		f.DurNS = t.durNS
	} else {
		f.DurNS = int64(now.Sub(t.start))
	}
	for _, sp := range t.spans {
		fs := FragmentSpan{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			StartNS: int64(sp.start.Sub(t.start)),
			Done:    sp.done,
			Attrs:   fragmentAttrs(sp.attrs),
		}
		if sp.done {
			fs.DurNS = sp.durNS
		} else {
			fs.DurNS = int64(now.Sub(sp.start))
		}
		f.Spans = append(f.Spans, fs)
	}
	return f
}

func fragmentAttrs(attrs []Attr) []FragmentAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]FragmentAttr, 0, len(attrs))
	for _, a := range attrs {
		out = append(out, FragmentAttr{Key: a.Key, Value: formatAttrValue(a.Value)})
	}
	return out
}

func formatAttrValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Fragments snapshots every retained trace recorded under id as fragments
// attributed to node — the payload of GET /cluster/trace/{id}. Nil or
// empty when the recorder retains nothing under the id.
func (r *Recorder) Fragments(id TraceID, node string) []Fragment {
	traces := r.LookupAll(id)
	if len(traces) == 0 {
		return nil
	}
	out := make([]Fragment, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Fragment(node))
	}
	return out
}

// EncodeFragments serializes fragments into the self-validating BVTF wire
// form. Strings longer than 64 KiB are truncated; fragment and span counts
// beyond the u16/u32 ranges are clipped (neither happens in practice — a
// trace holds at most a few hundred spans).
func EncodeFragments(frags []Fragment) []byte {
	if len(frags) > maxWireString {
		frags = frags[:maxWireString]
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, fragmentWireMagic...)
	buf = append(buf, fragmentWireVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(frags)))
	for _, f := range frags {
		buf = appendWireString(buf, f.Node)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.TraceID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Parent))
		buf = appendWireString(buf, f.Name)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.DurNS))
		buf = appendWireBool(buf, f.Done)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.EnergyPJ))
		spans := f.Spans
		if len(spans) > math.MaxUint32 {
			spans = spans[:math.MaxUint32]
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spans)))
		for _, sp := range spans {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.ID))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.Parent))
			buf = appendWireString(buf, sp.Name)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.StartNS))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sp.DurNS))
			buf = appendWireBool(buf, sp.Done)
			attrs := sp.Attrs
			if len(attrs) > maxWireString {
				attrs = attrs[:maxWireString]
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(attrs)))
			for _, a := range attrs {
				buf = appendWireString(buf, a.Key)
				buf = appendWireString(buf, a.Value)
			}
		}
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

func appendWireString(buf []byte, s string) []byte {
	if len(s) > maxWireString {
		s = s[:maxWireString]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendWireBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// fragmentReader walks the checksummed body with bounds checks; any
// overrun flips err and every subsequent read returns zeros.
type fragmentReader struct {
	data []byte
	off  int
	err  error
}

func (r *fragmentReader) fail() {
	if r.err == nil {
		r.err = ErrFragmentCorrupt
	}
}

func (r *fragmentReader) remaining() int { return len(r.data) - r.off }

func (r *fragmentReader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *fragmentReader) u16() uint16 {
	if r.err != nil || r.remaining() < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *fragmentReader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *fragmentReader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *fragmentReader) str() string {
	n := int(r.u16())
	if r.err != nil || r.remaining() < n {
		r.fail()
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *fragmentReader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

// DecodeFragments parses the BVTF wire form. Any structural defect —
// checksum mismatch, truncation, oversized counts, non-canonical boolean
// bytes, trailing bytes — fails with an error wrapping ErrFragmentCorrupt.
func DecodeFragments(data []byte) ([]Fragment, error) {
	headerLen := len(fragmentWireMagic) + 1 + 2
	if len(data) < headerLen+8 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrFragmentCorrupt, len(data))
	}
	body, sumBytes := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := binary.LittleEndian.Uint64(sumBytes), h.Sum64(); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFragmentCorrupt)
	}
	if string(body[:4]) != fragmentWireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrFragmentCorrupt)
	}
	if body[4] != fragmentWireVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFragmentCorrupt, body[4])
	}
	r := &fragmentReader{data: body, off: len(fragmentWireMagic) + 1}
	nFrags := int(r.u16())
	// Each fragment needs ≥ 2+8+8+2+8+1+8+4 bytes even when empty.
	if nFrags > r.remaining()/41+1 {
		return nil, fmt.Errorf("%w: fragment count %d exceeds payload", ErrFragmentCorrupt, nFrags)
	}
	frags := make([]Fragment, 0, nFrags)
	for i := 0; i < nFrags && r.err == nil; i++ {
		f := Fragment{
			Node:    r.str(),
			TraceID: TraceID(r.u64()),
			Parent:  SpanID(r.u64()),
			Name:    r.str(),
			DurNS:   int64(r.u64()),
			Done:    r.boolean(),
		}
		f.EnergyPJ = math.Float64frombits(r.u64())
		nSpans := int(r.u32())
		// Each span needs ≥ 8+8+2+8+8+1+2 = 37 bytes.
		if r.err == nil && nSpans > r.remaining()/37+1 {
			return nil, fmt.Errorf("%w: span count %d exceeds payload", ErrFragmentCorrupt, nSpans)
		}
		if nSpans > 0 {
			f.Spans = make([]FragmentSpan, 0, nSpans)
		}
		for j := 0; j < nSpans && r.err == nil; j++ {
			sp := FragmentSpan{
				ID:      SpanID(r.u64()),
				Parent:  SpanID(r.u64()),
				Name:    r.str(),
				StartNS: int64(r.u64()),
				DurNS:   int64(r.u64()),
				Done:    r.boolean(),
			}
			nAttrs := int(r.u16())
			// Each attr needs ≥ 2+2 bytes.
			if r.err == nil && nAttrs > r.remaining()/4+1 {
				return nil, fmt.Errorf("%w: attr count %d exceeds payload", ErrFragmentCorrupt, nAttrs)
			}
			if nAttrs > 0 {
				sp.Attrs = make([]FragmentAttr, 0, nAttrs)
			}
			for k := 0; k < nAttrs && r.err == nil; k++ {
				sp.Attrs = append(sp.Attrs, FragmentAttr{Key: r.str(), Value: r.str()})
			}
			f.Spans = append(f.Spans, sp)
		}
		frags = append(frags, f)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated content", ErrFragmentCorrupt)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFragmentCorrupt, r.remaining())
	}
	return frags, nil
}
