package tracing

// Stitch assembles span fragments collected from every node of a fleet
// into one causally-ordered trace tree. Ordering is strictly by parent
// links: a fragment's position in the tree is the span that caused it (the
// remote caller's client span, carried by X-Bvap-Span-Id), and a
// fragment's spans are placed at their offsets from that anchor. Wall
// clocks are never compared across nodes — node clocks can disagree by
// more than a fast RPC takes, so the stitched timeline is causal time, not
// fleet-wide wall time. Within one fragment (one node's monotonic clock)
// offsets are exact.
//
// A span or fragment whose parent id resolves to no span in any fragment
// is an orphan: it is kept (attached at the nearest enclosing root so no
// data is dropped) and counted, and the fleetobs gate asserts the count is
// zero for a healthy fleet.

import (
	"io"
	"sort"

	"bvap/internal/telemetry"
)

// StitchedSpan is one node of the assembled cross-node trace tree. Every
// fragment contributes one synthetic root (SpanID "" — the hop itself,
// e.g. "cluster.scan" on the serving node) plus one StitchedSpan per real
// span.
type StitchedSpan struct {
	Node     string `json:"node"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUS is the span's causal start offset in microseconds: its
	// fragment's anchor position plus the span's node-local offset.
	StartUS  float64           `json:"start_us"`
	DurUS    float64           `json:"dur_us"`
	Done     bool              `json:"done"`
	Orphan   bool              `json:"orphan,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*StitchedSpan   `json:"children,omitempty"`
}

// StitchedTrace is the assembled fleet-wide view of one trace id.
type StitchedTrace struct {
	TraceID   string   `json:"trace_id"`
	Name      string   `json:"name"`
	Nodes     []string `json:"nodes"`
	Fragments int      `json:"fragments"`
	SpanCount int      `json:"span_count"`
	// Orphans counts spans and fragments whose parent link resolved to no
	// span in any collected fragment — nonzero means the trace is
	// incomplete (a node evicted its half, or span context was dropped).
	Orphans  int             `json:"orphans"`
	DurUS    float64         `json:"dur_us"`
	EnergyPJ float64         `json:"energy_pj,omitempty"`
	Roots    []*StitchedSpan `json:"roots"`
}

// stitchFrag is the per-fragment working state of the assembler.
type stitchFrag struct {
	f        Fragment
	root     *StitchedSpan
	spans    []*StitchedSpan // parallel to f.Spans
	children []*stitchFrag   // fragments anchored under one of this fragment's spans
	anchorIn map[*StitchedSpan][]*stitchFrag
	placed   bool
}

// Stitch assembles fragments (from any number of nodes, in any order) into
// one causally-ordered trace tree for trace id.
func Stitch(id TraceID, frags []Fragment) *StitchedTrace {
	st := &StitchedTrace{TraceID: id.String(), Fragments: len(frags)}
	nodes := map[string]bool{}
	spanIndex := map[SpanID]*StitchedSpan{} // real spans across all fragments
	spanFrag := map[SpanID]*stitchFrag{}
	work := make([]*stitchFrag, 0, len(frags))

	for _, f := range frags {
		nodes[f.Node] = true
		st.EnergyPJ += f.EnergyPJ
		sf := &stitchFrag{
			f: f,
			root: &StitchedSpan{
				Node:  f.Node,
				Name:  f.Name,
				DurUS: float64(f.DurNS) / 1e3,
				Done:  f.Done,
			},
			anchorIn: map[*StitchedSpan][]*stitchFrag{},
		}
		if f.Parent != 0 {
			sf.root.ParentID = f.Parent.String()
		}
		sf.spans = make([]*StitchedSpan, len(f.Spans))
		for i, sp := range f.Spans {
			ss := &StitchedSpan{
				Node:   f.Node,
				SpanID: sp.ID.String(),
				Name:   sp.Name,
				DurUS:  float64(sp.DurNS) / 1e3,
				Done:   sp.Done,
				Attrs:  attrStringMap(sp.Attrs),
			}
			if sp.Parent != 0 {
				ss.ParentID = sp.Parent.String()
			}
			sf.spans[i] = ss
			if sp.ID != 0 {
				spanIndex[sp.ID] = ss
				spanFrag[sp.ID] = sf
			}
		}
		work = append(work, sf)
	}
	st.Nodes = sortedKeys(nodes)

	// Pass 1: intra-fragment span tree. A span parents under another span
	// of the same fragment, or under the fragment root when its parent is
	// zero; a dangling in-fragment parent is an orphan kept at the root.
	for _, sf := range work {
		for i, sp := range sf.f.Spans {
			ss := sf.spans[i]
			switch {
			case sp.Parent == 0:
				sf.root.Children = append(sf.root.Children, ss)
			default:
				if parent, ok := spanIndex[sp.Parent]; ok && spanFrag[sp.Parent] == sf && parent != ss {
					parent.Children = append(parent.Children, ss)
				} else {
					ss.Orphan = true
					st.Orphans++
					sf.root.Children = append(sf.root.Children, ss)
				}
			}
			st.SpanCount++
		}
	}

	// Pass 2: inter-fragment grafting. A fragment anchors under its remote
	// parent span wherever that span lives; a missing parent (or a cycle —
	// adversarial input only) demotes the fragment to an orphan root.
	var roots []*stitchFrag
	for _, sf := range work {
		if sf.f.Parent == 0 {
			roots = append(roots, sf)
			continue
		}
		anchor, ok := spanIndex[sf.f.Parent]
		owner := spanFrag[sf.f.Parent]
		if !ok || owner == sf {
			sf.root.Orphan = true
			st.Orphans++
			roots = append(roots, sf)
			continue
		}
		owner.children = append(owner.children, sf)
		owner.anchorIn[anchor] = append(owner.anchorIn[anchor], sf)
	}

	// Cycle guard: any fragment not reachable from a root (possible only
	// with forged parent links) becomes an orphan root.
	var walk func(sf *stitchFrag)
	walk = func(sf *stitchFrag) {
		if sf.placed {
			return
		}
		sf.placed = true
		for _, c := range sf.children {
			walk(c)
		}
	}
	for _, sf := range roots {
		walk(sf)
	}
	for _, sf := range work {
		if !sf.placed {
			sf.root.Orphan = true
			st.Orphans++
			sf.children = nil
			sf.anchorIn = map[*StitchedSpan][]*stitchFrag{}
			roots = append(roots, sf)
			walk(sf)
		}
	}

	// Pass 3: causal placement. A root fragment starts at 0; every other
	// fragment starts where its anchor span starts; spans start at their
	// fragment base plus their node-local offset.
	var place func(sf *stitchFrag, baseUS float64)
	place = func(sf *stitchFrag, baseUS float64) {
		sf.root.StartUS = baseUS
		for i, sp := range sf.f.Spans {
			sf.spans[i].StartUS = baseUS + float64(sp.StartNS)/1e3
		}
		for anchor, children := range sf.anchorIn {
			for _, c := range children {
				place(c, anchor.StartUS)
			}
		}
		// Orphan-rooted children (cleared anchorIn) never appear here.
		if end := sf.root.StartUS + sf.root.DurUS; end > st.DurUS {
			st.DurUS = end
		}
	}
	for _, sf := range roots {
		place(sf, 0)
		st.Roots = append(st.Roots, sf.root)
	}

	// Graft fragment roots into their anchor spans' child lists and sort
	// every child list deterministically.
	for _, sf := range work {
		for anchor, children := range sf.anchorIn {
			for _, c := range children {
				anchor.Children = append(anchor.Children, c.root)
			}
		}
	}
	var sortTree func(ss *StitchedSpan)
	sortTree = func(ss *StitchedSpan) {
		sort.SliceStable(ss.Children, func(i, j int) bool {
			a, b := ss.Children[i], ss.Children[j]
			if a.StartUS != b.StartUS {
				return a.StartUS < b.StartUS
			}
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			return a.SpanID < b.SpanID
		})
		for _, c := range ss.Children {
			sortTree(c)
		}
	}
	sort.SliceStable(st.Roots, func(i, j int) bool {
		a, b := st.Roots[i], st.Roots[j]
		if a.Orphan != b.Orphan {
			return !a.Orphan
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
	for _, r := range st.Roots {
		sortTree(r)
	}
	if len(roots) > 0 {
		st.Name = st.Roots[0].Name
	}
	return st
}

func attrStringMap(attrs []FragmentAttr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteChrome renders the stitched trace as a Chrome trace_event document,
// one process lane per node (pid = node index in the sorted node list) so
// the viewer shows each node's spans in its own track, timestamped on the
// causal axis.
func (st *StitchedTrace) WriteChrome(w io.Writer) error {
	tr := telemetry.NewTracer(w, telemetry.FormatChrome)
	pidOf := make(map[string]int, len(st.Nodes))
	for i, n := range st.Nodes {
		pidOf[n] = i + 1
	}
	var emit func(ss *StitchedSpan)
	emit = func(ss *StitchedSpan) {
		args := map[string]any{"node": ss.Node}
		if ss.SpanID != "" {
			args["span_id"] = ss.SpanID
		}
		if ss.ParentID != "" {
			args["parent_id"] = ss.ParentID
		}
		if ss.Orphan {
			args["orphan"] = true
		}
		for k, v := range ss.Attrs {
			args[k] = v
		}
		dur := ss.DurUS
		if dur <= 0 {
			dur = 0.001
		}
		cat := "span"
		if ss.SpanID == "" {
			cat = "fragment"
		}
		tr.Emit(telemetry.Event{
			Name: ss.Name, Cat: cat, Ph: "X",
			Ts: ss.StartUS, Dur: dur,
			Pid: pidOf[ss.Node], Tid: 1,
			Args: args,
		})
		for _, c := range ss.Children {
			emit(c)
		}
	}
	for _, r := range st.Roots {
		emit(r)
	}
	return tr.Close()
}
