package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
)

// threeHopFragments models coordinator → node-b → node-c: the coordinator's
// client span anchors node-b's fragment, whose own client span anchors
// node-c's. Span ids are hand-picked so the test controls every link.
func threeHopFragments() []Fragment {
	return []Fragment{
		{
			Node: "node-c", TraceID: 0xabc, Parent: 21, Name: "cluster.scan",
			DurNS: 400_000, Done: true, EnergyPJ: 2,
			Spans: []FragmentSpan{
				{ID: 31, Name: "engine.scan", StartNS: 50_000, DurNS: 300_000, Done: true},
			},
		},
		{
			Node: "coordinator", TraceID: 0xabc, Name: "http.scan",
			DurNS: 2_000_000, Done: true, EnergyPJ: 1,
			Spans: []FragmentSpan{
				{ID: 11, Name: "cluster.client /cluster/scan", StartNS: 100_000, DurNS: 1_500_000, Done: true,
					Attrs: []FragmentAttr{{Key: "peer", Value: "http://node-b"}}},
			},
		},
		{
			Node: "node-b", TraceID: 0xabc, Parent: 11, Name: "cluster.scan",
			DurNS: 1_000_000, Done: true, EnergyPJ: 4,
			Spans: []FragmentSpan{
				{ID: 21, Parent: 22, Name: "cluster.client /cluster/scan", StartNS: 200_000, DurNS: 600_000, Done: true},
				{ID: 22, Name: "cluster.forward", StartNS: 150_000, DurNS: 700_000, Done: true},
			},
		},
	}
}

func findSpan(roots []*StitchedSpan, name string) *StitchedSpan {
	var walk func(ss *StitchedSpan) *StitchedSpan
	walk = func(ss *StitchedSpan) *StitchedSpan {
		if ss.Name == name {
			return ss
		}
		for _, c := range ss.Children {
			if got := walk(c); got != nil {
				return got
			}
		}
		return nil
	}
	for _, r := range roots {
		if got := walk(r); got != nil {
			return got
		}
	}
	return nil
}

func TestStitchThreeHopChain(t *testing.T) {
	st := Stitch(0xabc, threeHopFragments())

	if st.Orphans != 0 {
		t.Fatalf("healthy chain stitched with %d orphans", st.Orphans)
	}
	if len(st.Roots) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(st.Roots), st.Roots)
	}
	if st.Name != "http.scan" || st.Roots[0].Node != "coordinator" {
		t.Fatalf("root is %q on %q, want http.scan on coordinator", st.Name, st.Roots[0].Node)
	}
	if got, want := st.Nodes, []string{"coordinator", "node-b", "node-c"}; len(got) != 3 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("nodes = %v, want %v", got, want)
	}
	if st.Fragments != 3 || st.SpanCount != 4 {
		t.Fatalf("fragments=%d spans=%d, want 3 and 4", st.Fragments, st.SpanCount)
	}
	if st.EnergyPJ != 7 {
		t.Fatalf("energy = %v, want 7 (sum of fragments)", st.EnergyPJ)
	}

	// Parent links: client span on the coordinator holds node-b's fragment
	// root; node-b's inner client span holds node-c's.
	client := findSpan(st.Roots, "cluster.client /cluster/scan")
	if client == nil || client.Node != "coordinator" {
		t.Fatalf("coordinator client span missing: %+v", client)
	}
	var hopB *StitchedSpan
	for _, c := range client.Children {
		if c.Node == "node-b" && c.SpanID == "" {
			hopB = c
		}
	}
	if hopB == nil {
		t.Fatalf("node-b fragment not grafted under the client span: %+v", client.Children)
	}
	// Causal placement: node-b's fragment starts exactly where the client
	// span starts (100µs), and its spans are offset from there.
	if hopB.StartUS != 100 {
		t.Fatalf("node-b fragment StartUS = %v, want 100 (anchor span start)", hopB.StartUS)
	}
	fwd := findSpan([]*StitchedSpan{hopB}, "cluster.forward")
	if fwd == nil || fwd.StartUS != 250 {
		t.Fatalf("cluster.forward StartUS = %+v, want 250 (100 base + 150 offset)", fwd)
	}
	hopC := findSpan(st.Roots, "engine.scan")
	if hopC == nil || hopC.Node != "node-c" {
		t.Fatal("node-c spans missing from the stitched tree")
	}
	// node-c anchors under node-b's client span: base 100+200=300, span +50.
	if hopC.StartUS != 350 {
		t.Fatalf("engine.scan StartUS = %v, want 350", hopC.StartUS)
	}
}

func TestStitchOrderInsensitive(t *testing.T) {
	frags := threeHopFragments()
	a, _ := json.Marshal(Stitch(0xabc, frags))
	reversed := []Fragment{frags[2], frags[1], frags[0]}
	b, _ := json.Marshal(Stitch(0xabc, reversed))
	if !bytes.Equal(a, b) {
		t.Fatalf("stitch depends on fragment arrival order:\n%s\n%s", a, b)
	}
}

func TestStitchOrphans(t *testing.T) {
	frags := threeHopFragments()
	// Drop the coordinator fragment: node-b's parent link (span 11) now
	// resolves nowhere, so its whole subtree re-roots as an orphan, while
	// node-c (anchored on node-b's span 21) still grafts cleanly.
	st := Stitch(0xabc, []Fragment{frags[0], frags[2]})
	if st.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1 (node-b fragment root)", st.Orphans)
	}
	if len(st.Roots) != 1 || !st.Roots[0].Orphan || st.Roots[0].Node != "node-b" {
		t.Fatalf("roots = %+v, want single orphan root on node-b", st.Roots)
	}
	if findSpan(st.Roots, "engine.scan") == nil {
		t.Fatal("node-c spans lost: orphaned ancestor must not drop descendants")
	}

	// A dangling intra-fragment parent is also an orphan, kept at its
	// fragment root.
	st2 := Stitch(1, []Fragment{{
		Node: "n", TraceID: 1, Name: "hop", DurNS: 10, Done: true,
		Spans: []FragmentSpan{{ID: 5, Parent: 99, Name: "dangling", DurNS: 1, Done: true}},
	}})
	if st2.Orphans != 1 {
		t.Fatalf("dangling span orphans = %d, want 1", st2.Orphans)
	}
	sp := findSpan(st2.Roots, "dangling")
	if sp == nil || !sp.Orphan {
		t.Fatalf("dangling span not kept as orphan: %+v", sp)
	}
}

func TestStitchCycleDoesNotHang(t *testing.T) {
	// Forged input: two fragments anchored under each other's spans. The
	// stitcher must terminate and keep both as orphan roots.
	frags := []Fragment{
		{Node: "a", TraceID: 1, Parent: 20, Name: "ha", DurNS: 10, Done: true,
			Spans: []FragmentSpan{{ID: 10, Name: "sa", DurNS: 1, Done: true}}},
		{Node: "b", TraceID: 1, Parent: 10, Name: "hb", DurNS: 10, Done: true,
			Spans: []FragmentSpan{{ID: 20, Name: "sb", DurNS: 1, Done: true}}},
	}
	st := Stitch(1, frags)
	if len(st.Roots) != 2 {
		t.Fatalf("cycle: got %d roots, want both fragments re-rooted", len(st.Roots))
	}
	if st.Orphans == 0 {
		t.Fatal("cycle produced no orphans")
	}
	// Self-anchoring is equally adversarial.
	self := Stitch(2, []Fragment{{Node: "a", TraceID: 2, Parent: 7, Name: "h", DurNS: 1, Done: true,
		Spans: []FragmentSpan{{ID: 7, Name: "s", DurNS: 1, Done: true}}}})
	if len(self.Roots) != 1 || !self.Roots[0].Orphan {
		t.Fatalf("self-anchored fragment not demoted to orphan root: %+v", self.Roots)
	}
}

func TestStitchedWriteChromeValidJSON(t *testing.T) {
	st := Stitch(0xabc, threeHopFragments())
	var buf bytes.Buffer
	if err := st.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc not JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7 (3 fragment roots + 4 spans)", len(doc.TraceEvents))
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph=%q, want X", ev.Name, ev.Ph)
		}
		pids[ev.Pid] = true
	}
	if len(pids) != 3 {
		t.Fatalf("got %d process lanes, want one per node (3)", len(pids))
	}
}
