package tracing

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"bvap/internal/hwsim"
)

func TestIDFormatRoundTrip(t *testing.T) {
	for _, v := range []uint64{1, 0xdeadbeef, 0xffffffffffffffff, 0x0123456789abcdef} {
		id := TraceID(v)
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("String(%#x) = %q, want 16 hex digits", v, s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Fatalf("ParseTraceID(%q) = %v, %v, want %v", s, back, err, id)
		}
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestNextIDNeverZeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		v := nextID()
		if v == 0 {
			t.Fatal("nextID returned 0")
		}
		if seen[v] {
			t.Fatalf("nextID repeated %#x", v)
		}
		seen[v] = true
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 || tr.IDString() != "" || tr.Name() != "" || !tr.Start().IsZero() || tr.Duration() != 0 {
		t.Fatal("nil Trace accessors not zero")
	}
	tr.SetInt("k", 1)
	tr.SetStr("k", "v")
	tr.SetFloat("k", 1)
	tr.SetBool("k", true)
	tr.SetEnergy(EnergyPartition{})
	tr.SetEnergyEstimate(1)
	if tr.EnergyEstimated() {
		t.Fatal("nil Trace EnergyEstimated")
	}
	if _, ok := tr.EnergyPJ(); ok {
		t.Fatal("nil Trace EnergyPJ ok")
	}
	if _, ok := tr.Energy(); ok {
		t.Fatal("nil Trace Energy ok")
	}
	if p, r := tr.Pinned(); p || r != "" {
		t.Fatal("nil Trace Pinned")
	}
	if v := tr.View(); v.TraceID != "" || len(v.Spans) != 0 {
		t.Fatal("nil Trace View not zero")
	}

	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil Trace StartSpan returned span")
	}
	sp.End()
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.SetFloat("k", 1)
	if sp.ID() != 0 {
		t.Fatal("nil Span ID")
	}

	var r *Recorder
	ctx, got := r.StartTrace(context.Background(), "scan")
	if got != nil || ctx != context.Background() {
		t.Fatal("nil Recorder StartTrace not pass-through")
	}
	r.Record(nil)
	r.Record(NewTrace("x"))
	if r.Recorded() != 0 || r.PinnedTotal() != 0 || r.Recent() != nil || r.Pinned() != nil {
		t.Fatal("nil Recorder not empty")
	}
	if r.Lookup(1) != nil {
		t.Fatal("nil Recorder Lookup")
	}
	if (r.Config() != Config{}) {
		t.Fatal("nil Recorder Config not zero")
	}
}

func TestContextPropagationAndParenting(t *testing.T) {
	tr := NewTrace("scan")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext invented a trace")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("NewContext(nil trace) changed the context")
	}

	ctx1, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx1, "inner")
	if outer == nil || inner == nil {
		t.Fatal("spans not created")
	}
	inner.SetInt("attempt", 1)
	inner.End()
	outer.End()
	outer.End() // idempotent
	tr.finish()

	v := tr.View()
	if len(v.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(v.Spans))
	}
	if v.Spans[0].Name != "outer" || v.Spans[0].ParentID != "" {
		t.Fatalf("outer span wrong: %+v", v.Spans[0])
	}
	if v.Spans[1].Name != "inner" || v.Spans[1].ParentID != v.Spans[0].SpanID {
		t.Fatalf("inner span not parented under outer: %+v", v.Spans[1])
	}
	if v.Spans[1].Attrs["attempt"] != 1 {
		t.Fatalf("inner attrs = %v", v.Spans[1].Attrs)
	}
	if !v.Done || v.DurationMS < 0 {
		t.Fatalf("trace view not finished: %+v", v)
	}
}

func TestAttrOverwrite(t *testing.T) {
	tr := NewTrace("x")
	tr.SetStr("outcome", "ok")
	tr.SetStr("outcome", "panic")
	tr.SetInt("n", 3)
	v := tr.View()
	if len(v.Attrs) != 2 || v.Attrs["outcome"] != "panic" || v.Attrs["n"] != 3 {
		t.Fatalf("attrs = %v", v.Attrs)
	}
}

// TestTracingDisabledPathAllocationFree pins the disabled tracing path —
// no *Trace in the context — at zero allocations per operation, the same
// contract TestUninstrumentedStepAllocationFree enforces for the hwsim
// step path. If this fails, the serve path's tracing-off overhead
// guarantee is broken: fix the allocation, do not relax the test.
func TestTracingDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	var rec *Recorder
	work := func() {
		ctx2, tr := rec.StartTrace(ctx, "scan")
		ctx3, sp := StartSpan(ctx2, "scan")
		sp.SetInt("input_bytes", 4096)
		sp.SetStr("outcome", "ok")
		_, sp2 := StartSpan(ctx3, "shard")
		sp2.SetFloat("pj", 1.5)
		sp2.End()
		sp.End()
		tr.SetEnergyEstimate(1)
		rec.Record(tr)
		_ = tr.IDString()
		// The cross-node propagation helpers ride the same hot path: the
		// cluster client consults them on every request.
		_ = SpanFromContext(ctx3).IDString()
		_ = tr.RemoteParent()
	}
	work() // warm up
	if allocs := testing.AllocsPerRun(10, work); allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v allocs/op, want 0", allocs)
	}
}

func TestRecorderRingWrapAndLookup(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4, PinCapacity: 2})
	if got := r.Config(); got.Capacity != 4 || got.PinCapacity != 2 {
		t.Fatalf("Config() = %+v", got)
	}
	var ids []TraceID
	for i := 0; i < 7; i++ {
		_, tr := r.StartTrace(context.Background(), "scan")
		tr.SetInt("i", i)
		ids = append(ids, tr.ID())
		r.Record(tr)
	}
	if r.Recorded() != 7 {
		t.Fatalf("Recorded() = %d, want 7", r.Recorded())
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent() kept %d, want 4", len(recent))
	}
	// Newest first: traces 6,5,4,3.
	for i, tr := range recent {
		if tr.ID() != ids[6-i] {
			t.Fatalf("Recent()[%d] = %v, want %v", i, tr.ID(), ids[6-i])
		}
	}
	if r.Lookup(ids[6]) == nil || r.Lookup(ids[3]) == nil {
		t.Fatal("Lookup lost a retained trace")
	}
	if r.Lookup(ids[0]) != nil {
		t.Fatal("Lookup returned an evicted trace")
	}
	if r.Lookup(0) != nil {
		t.Fatal("Lookup(0) returned a trace")
	}
	if len(r.Pinned()) != 0 || r.PinnedTotal() != 0 {
		t.Fatal("budget-free recorder pinned something")
	}
}

func TestRecorderPinsOverBudget(t *testing.T) {
	r := NewRecorder(Config{LatencyBudget: time.Nanosecond, EnergyBudgetPJ: 100})
	_, slow := r.StartTrace(context.Background(), "scan")
	time.Sleep(100 * time.Microsecond)
	r.Record(slow)
	if p, reason := slow.Pinned(); !p || reason != "latency_budget" {
		t.Fatalf("slow trace pinned=%v reason=%q", p, reason)
	}

	r2 := NewRecorder(Config{EnergyBudgetPJ: 100})
	_, hot := r2.StartTrace(context.Background(), "scan")
	hot.SetEnergyEstimate(1e6)
	r2.Record(hot)
	if p, reason := hot.Pinned(); !p || reason != "energy_budget" {
		t.Fatalf("hot trace pinned=%v reason=%q", p, reason)
	}
	if len(r2.Pinned()) != 1 || r2.PinnedTotal() != 1 {
		t.Fatalf("pin ring holds %d (total %d), want 1", len(r2.Pinned()), r2.PinnedTotal())
	}
	if r2.Lookup(hot.ID()) != hot {
		t.Fatal("pinned trace not found by Lookup")
	}

	r3 := NewRecorder(Config{LatencyBudget: time.Nanosecond, EnergyBudgetPJ: 1})
	_, both := r3.StartTrace(context.Background(), "scan")
	both.SetEnergyEstimate(10)
	time.Sleep(10 * time.Microsecond)
	r3.Record(both)
	if _, reason := both.Pinned(); reason != "latency_budget+energy_budget" {
		t.Fatalf("double-budget reason = %q", reason)
	}
}

func TestRecorderConcurrentRecordAndRead(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8, PinCapacity: 4, LatencyBudget: time.Nanosecond})
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range r.Recent() {
				_ = tr.View()
			}
			for _, tr := range r.Pinned() {
				_, _ = tr.Pinned()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, tr := r.StartTrace(context.Background(), "scan")
				_, sp := StartSpan(NewContext(context.Background(), tr), "stage")
				sp.End()
				r.Record(tr)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Recorded() != 2000 {
		t.Fatalf("Recorded() = %d, want 2000", r.Recorded())
	}
	if len(r.Recent()) != 8 {
		t.Fatalf("Recent() kept %d, want 8", len(r.Recent()))
	}
}

func TestViewEnergyFields(t *testing.T) {
	tr := NewTrace("scan")
	tr.SetEnergyEstimate(123.5)
	if !tr.EnergyEstimated() {
		t.Fatal("estimate not flagged")
	}
	v := tr.View()
	if v.EnergyPJ != 123.5 || !v.EnergyEstimated || v.EnergyStagesPJ != nil {
		t.Fatalf("estimate view = %+v", v)
	}

	var p EnergyPartition
	p.Stages[hwsim.StageMatch] = 10
	p.Stages[hwsim.StageLeakage] = 2.5
	p.TotalPJ = 12.5
	tr.SetEnergy(p)
	if tr.EnergyEstimated() {
		t.Fatal("exact partition still flagged as estimate")
	}
	if pj, ok := tr.EnergyPJ(); !ok || pj != 12.5 {
		t.Fatalf("EnergyPJ = %v, %v", pj, ok)
	}
	v = tr.View()
	if v.EnergyPJ != 12.5 || v.EnergyEstimated {
		t.Fatalf("exact view = %+v", v)
	}
	if len(v.EnergyStagesPJ) != 2 || v.EnergyStagesPJ["match"] != 10 || v.EnergyStagesPJ["leakage"] != 2.5 {
		t.Fatalf("stage map = %v", v.EnergyStagesPJ)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := NewTrace("scan")
	ctx := NewContext(context.Background(), tr)
	ctx1, outer := StartSpan(ctx, "scan")
	_, shard := StartSpan(ctx1, "shard")
	shard.SetInt("attempt", 1)
	shard.End()
	outer.End()
	tr.SetEnergyEstimate(42)
	tr.finish()

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome document invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (trace + 2 spans)", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "scan" || doc.TraceEvents[0].Args["trace_id"] != tr.IDString() {
		t.Fatalf("root event wrong: %+v", doc.TraceEvents[0])
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
	}
	if doc.TraceEvents[2].Args["parent_id"] == "" {
		t.Fatal("shard event lost its parent")
	}
}

func TestEnergySinkPartitionExact(t *testing.T) {
	k := NewEnergySink()
	k.StageEnergy(hwsim.StageMatch, 0.1)
	k.StageEnergy(hwsim.StageMatch, 0.2)
	k.StageEnergy(hwsim.StageTransition, 0.3)
	k.StageEnergy(hwsim.StageLeakage, 1e-9)
	k.StageEnergy(hwsim.Stage(-1), 99) // out of range: dropped
	k.StageEnergy(hwsim.NumStages, 99)
	k.StepDone(3, 1, 2)
	k.StepDone(2, 1, 0)
	if k.Symbols() != 2 || k.Cycles() != 5 || k.Matches() != 2 {
		t.Fatalf("counters = %d/%d/%d", k.Symbols(), k.Cycles(), k.Matches())
	}

	// Stats whose TotalEnergyPJ differs from the streamed sum by real
	// association error.
	st := &hwsim.Stats{MatchEnergyPJ: 0.1 + 0.2, TransitionEnergyPJ: 0.3, LeakageEnergyPJ: 1e-9}
	p := k.Partition(st)
	if p.TotalPJ != st.TotalEnergyPJ() {
		t.Fatalf("TotalPJ = %v, want %v", p.TotalPJ, st.TotalEnergyPJ())
	}
	if got := p.Sum(); got != p.TotalPJ {
		t.Fatalf("Sum() = %b, TotalPJ = %b: not bit-exact", got, p.TotalPJ)
	}

	tr := NewTrace("sim")
	p2 := k.Finish(tr, st)
	if p2.TotalPJ != p.TotalPJ {
		t.Fatalf("Finish partition differs: %v vs %v", p2.TotalPJ, p.TotalPJ)
	}
	v := tr.View()
	if v.Attrs["sim_symbols"] != 2 || v.Attrs["sim_cycles"] != 5 || v.Attrs["sim_matches"] != 2 {
		t.Fatalf("sim attrs = %v", v.Attrs)
	}
	if tr.EnergyEstimated() {
		t.Fatal("exact partition flagged as estimate")
	}
	// Nil-trace Finish still returns the partition.
	if p3 := k.Finish(nil, st); p3.TotalPJ != p.TotalPJ {
		t.Fatalf("nil-trace Finish = %v", p3.TotalPJ)
	}
}
