package tracing

import (
	"context"
	"sync/atomic"
	"time"
)

// Config tunes a flight Recorder. The zero value keeps 256 recent traces
// and 32 pinned traces with no budgets (nothing pins).
type Config struct {
	// Capacity is the recent-trace ring size; values < 1 select 256.
	Capacity int
	// PinCapacity is the black-box ring size; values < 1 select 32.
	PinCapacity int
	// LatencyBudget pins any recorded trace whose duration exceeds it;
	// 0 disables latency pinning.
	LatencyBudget time.Duration
	// EnergyBudgetPJ pins any recorded trace whose energy (exact partition
	// total, or the calibrated estimate) exceeds it; 0 disables energy
	// pinning.
	EnergyBudgetPJ float64
}

// Recorder is the always-on flight recorder: a fixed-size lock-light ring
// of completed traces plus a second ring ("black box") pinning traces that
// exceeded a latency or energy budget. Recording is wait-free — one
// atomic slot index increment and one atomic pointer store per trace — so
// it sits on the serve path without a lock. A nil *Recorder is valid
// everywhere and records nothing (the disabled-tracing configuration).
type Recorder struct {
	cfg      Config
	ring     []atomic.Pointer[Trace]
	next     atomic.Uint64
	pins     []atomic.Pointer[Trace]
	pinNext  atomic.Uint64
	recorded atomic.Uint64
	pinTotal atomic.Uint64
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity < 1 {
		cfg.Capacity = 256
	}
	if cfg.PinCapacity < 1 {
		cfg.PinCapacity = 32
	}
	return &Recorder{
		cfg:  cfg,
		ring: make([]atomic.Pointer[Trace], cfg.Capacity),
		pins: make([]atomic.Pointer[Trace], cfg.PinCapacity),
	}
}

// Config returns the recorder's resolved configuration (zero value for a
// nil recorder).
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// StartTrace begins a trace named name and returns a derived context
// carrying it. A nil recorder returns (ctx, nil) unchanged — the single
// enablement check of the serve path. The caller that starts a trace owns
// recording it: pair with a deferred Record.
func (r *Recorder) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if r == nil {
		return ctx, nil
	}
	t := NewTrace(name)
	return NewContext(ctx, t), t
}

// StartTraceRemote is StartTrace under an id assigned by a remote peer:
// the local span tree records (and is later looked up) under the caller's
// trace id, rejoining the two nodes' halves of one request. A zero id
// degrades to StartTrace.
func (r *Recorder) StartTraceRemote(ctx context.Context, name string, id TraceID) (context.Context, *Trace) {
	return r.StartTraceRemoteSpan(ctx, name, id, 0)
}

// StartTraceRemoteSpan is StartTraceRemote also adopting the caller's span
// id (from the X-Bvap-Span-Id header): the resulting trace remembers which
// remote span caused it, so the fleet stitcher can graft this node's span
// tree under the caller's client span. A zero parent means the remote end
// sent no span context (or tracing is disabled there).
func (r *Recorder) StartTraceRemoteSpan(ctx context.Context, name string, id TraceID, parent SpanID) (context.Context, *Trace) {
	if r == nil {
		return ctx, nil
	}
	t := NewTraceWithParent(id, parent, name)
	return NewContext(ctx, t), t
}

// Record finalizes the trace and stores it in the recent ring, pinning it
// into the black box when it exceeded a budget. Nil-safe on both sides.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	dur, energyPJ := t.finish()
	r.ring[(r.next.Add(1)-1)%uint64(len(r.ring))].Store(t)
	r.recorded.Add(1)

	reason := ""
	if r.cfg.LatencyBudget > 0 && dur > r.cfg.LatencyBudget {
		reason = "latency_budget"
	}
	if r.cfg.EnergyBudgetPJ > 0 && energyPJ > r.cfg.EnergyBudgetPJ {
		if reason != "" {
			reason += "+energy_budget"
		} else {
			reason = "energy_budget"
		}
	}
	if reason != "" {
		t.setPinned(reason)
		r.pins[(r.pinNext.Add(1)-1)%uint64(len(r.pins))].Store(t)
		r.pinTotal.Add(1)
	}
}

// Recorded returns the total traces recorded (including ones the ring has
// since evicted).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.recorded.Load()
}

// PinnedTotal returns the total traces pinned into the black box
// (including evicted ones).
func (r *Recorder) PinnedTotal() uint64 {
	if r == nil {
		return 0
	}
	return r.pinTotal.Load()
}

// Recent returns the retained completed traces, newest first.
func (r *Recorder) Recent() []*Trace {
	if r == nil {
		return nil
	}
	return collect(r.ring, r.next.Load())
}

// Pinned returns the retained black-box traces, newest first.
func (r *Recorder) Pinned() []*Trace {
	if r == nil {
		return nil
	}
	return collect(r.pins, r.pinNext.Load())
}

// collect walks a ring newest-first. next is the slot index one past the
// most recent store; concurrent recording can at worst replace a slot
// mid-walk with a newer trace, which stays correct (every returned trace
// was recorded).
func collect(ring []atomic.Pointer[Trace], next uint64) []*Trace {
	n := uint64(len(ring))
	out := make([]*Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		if t := ring[(next-1-i+2*n)%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Lookup finds a retained trace by id (recent ring first, then the black
// box), or nil.
func (r *Recorder) Lookup(id TraceID) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	for _, ring := range [][]atomic.Pointer[Trace]{r.ring, r.pins} {
		for i := range ring {
			if t := ring[i].Load(); t != nil && t.id == id {
				return t
			}
		}
	}
	return nil
}

// LookupAll returns every retained trace recorded under id, deduplicated
// across the recent and pinned rings. Unlike Lookup it can return more than
// one trace: a node that serves several hops of the same distributed
// request (e.g. prepare then commit of a two-phase publish) records one
// adopted trace per hop, all sharing the caller's trace id. Used by the
// span-fragment exporter.
func (r *Recorder) LookupAll(id TraceID) []*Trace {
	if r == nil || id == 0 {
		return nil
	}
	var out []*Trace
	seen := map[*Trace]bool{}
	for _, ring := range [][]atomic.Pointer[Trace]{r.ring, r.pins} {
		for i := range ring {
			if t := ring[i].Load(); t != nil && t.id == id && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
