package tracing

// Exact per-trace energy accounting. The per-stage energies a hwsim.Sink
// streams during a run sum to Stats.TotalEnergyPJ() only up to float
// association error (the order of additions differs); Partition snaps the
// streamed breakdown onto the terminal Stats total with profile.SnapSum —
// the same conservation primitive the per-pattern attribution layer uses —
// so every trace's stage energies sum to the scan's TotalEnergyPJ()
// bit-for-bit. TestTraceEnergyExactAcrossArchitectures (repository root)
// property-tests the guarantee on every modeled architecture.

import (
	"bvap/internal/hwsim"
	"bvap/internal/profile"
)

// EnergyPartition is one scan's exact per-stage energy split.
type EnergyPartition struct {
	// Stages holds pJ per hwsim.Stage. Summed left-to-right (stage order)
	// the values reproduce TotalPJ bit-for-bit.
	Stages [hwsim.NumStages]float64
	// TotalPJ equals Stats.TotalEnergyPJ() of the partitioned run exactly.
	TotalPJ float64
}

// Sum is the left-to-right stage sum — equal to TotalPJ bit-for-bit by
// construction.
func (p *EnergyPartition) Sum() float64 {
	s := 0.0
	for i := range p.Stages {
		s += p.Stages[i]
	}
	return s
}

// ByStage renders the nonzero stages as a name→pJ map (the JSON view).
func (p *EnergyPartition) ByStage() map[string]float64 {
	out := make(map[string]float64)
	for i, pj := range p.Stages {
		if pj != 0 {
			out[hwsim.Stage(i).String()] = pj
		}
	}
	return out
}

// EnergySink is a hwsim.Sink accruing the per-stage energy (and the
// step/cycle/match counters) of one simulated scan for a trace. Attach it
// with Simulator.SetSink (or combine with hwsim.FanOut), run, finalize the
// simulation, then call Partition or Finish with the terminal Stats.
//
// Like every Sink it is driven from the simulator's goroutine only.
type EnergySink struct {
	stages  [hwsim.NumStages]float64
	symbols uint64
	cycles  uint64
	matches uint64
}

// NewEnergySink returns an empty sink.
func NewEnergySink() *EnergySink { return &EnergySink{} }

// StageEnergy implements hwsim.Sink.
func (k *EnergySink) StageEnergy(stage hwsim.Stage, pj float64) {
	if stage < 0 || stage >= hwsim.NumStages {
		return
	}
	k.stages[stage] += pj
}

// StallCycles implements hwsim.Sink.
func (k *EnergySink) StallCycles(int, int) {}

// StepDone implements hwsim.Sink.
func (k *EnergySink) StepDone(cycles int, _ float64, matches int) {
	k.symbols++
	k.cycles += uint64(cycles)
	k.matches += uint64(matches)
}

// Symbols returns the symbols observed so far.
func (k *EnergySink) Symbols() uint64 { return k.symbols }

// Cycles returns the cycles observed so far.
func (k *EnergySink) Cycles() uint64 { return k.cycles }

// Matches returns the matches observed so far.
func (k *EnergySink) Matches() uint64 { return k.matches }

// Partition closes the accounting against the run's terminal Stats: the
// streamed per-stage energies are snapped (largest stage absorbs the
// association error, a few ULPs at most) so their left-to-right sum equals
// st.TotalEnergyPJ() bit-for-bit. Call after the simulation is finalized
// (Simulator.Result / system Finish), which emits the terminal io_buffer
// and leakage charges into the sink.
func (k *EnergySink) Partition(st *hwsim.Stats) EnergyPartition {
	p := EnergyPartition{Stages: k.stages, TotalPJ: st.TotalEnergyPJ()}
	argmax := 0
	for i := range p.Stages {
		if p.Stages[i] > p.Stages[argmax] {
			argmax = i
		}
	}
	profile.SnapSum(p.Stages[:], p.TotalPJ, argmax)
	return p
}

// Finish records the exact partition plus the run counters on the trace
// and returns the partition. A nil trace still returns the partition.
func (k *EnergySink) Finish(tr *Trace, st *hwsim.Stats) EnergyPartition {
	p := k.Partition(st)
	tr.SetEnergy(p)
	tr.SetInt("sim_symbols", int(k.symbols))
	tr.SetInt("sim_cycles", int(k.cycles))
	tr.SetInt("sim_matches", int(k.matches))
	return p
}
