package tracing

// JSON and Chrome-trace views of a trace. View snapshots the span tree
// under the trace lock into plain structs (what /debug/flight and
// /debug/trace/{id} marshal); WriteChrome converts a trace through the
// existing telemetry emitter into the chrome://tracing / Perfetto
// trace_event document.

import (
	"io"
	"time"

	"bvap/internal/telemetry"
)

// SpanView is the JSON form of one span.
type SpanView struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUS is the span's start offset from the trace start, microseconds.
	StartUS float64 `json:"start_us"`
	// DurUS is the span duration in microseconds; for a span still open when
	// the snapshot was taken (watchdog-abandoned scan goroutine) it is the
	// elapsed time so far and Done is false.
	DurUS float64        `json:"dur_us"`
	Done  bool           `json:"done"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceView is the JSON form of one trace.
type TraceView struct {
	TraceID    string         `json:"trace_id"`
	Name       string         `json:"name"`
	Start      string         `json:"start"` // RFC3339Nano
	DurationMS float64        `json:"duration_ms"`
	Done       bool           `json:"done"`
	Pinned     bool           `json:"pinned,omitempty"`
	PinReason  string         `json:"pin_reason,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	// EnergyPJ is the trace's energy figure: the exact simulator partition
	// total when one was recorded (EnergyEstimated false; the per-stage
	// split is in EnergyStagesPJ and sums to EnergyPJ bit-for-bit), else the
	// calibrated serving-path estimate (EnergyEstimated true).
	EnergyPJ        float64            `json:"energy_pj,omitempty"`
	EnergyEstimated bool               `json:"energy_estimated,omitempty"`
	EnergyStagesPJ  map[string]float64 `json:"energy_stages_pj,omitempty"`
	Spans           []SpanView         `json:"spans"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// View snapshots the trace for JSON marshaling. Safe to call while worker
// goroutines still mutate spans; open spans report elapsed time with
// Done=false. A nil trace yields the zero view.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		TraceID: t.id.String(),
		Name:    t.name,
		Start:   t.start.Format(time.RFC3339Nano),
		Done:    t.done,
		Pinned:  t.pinned,
		Attrs:   attrMap(t.attrs),
		Spans:   make([]SpanView, 0, len(t.spans)),
	}
	v.PinReason = t.pinReason
	if t.done {
		v.DurationMS = float64(t.durNS) / float64(time.Millisecond)
	} else {
		v.DurationMS = float64(now.Sub(t.start)) / float64(time.Millisecond)
	}
	if t.energy != nil {
		v.EnergyPJ = t.energy.TotalPJ
		v.EnergyStagesPJ = t.energy.ByStage()
	} else if t.estPJ != 0 {
		v.EnergyPJ = t.estPJ
		v.EnergyEstimated = true
	}
	for _, sp := range t.spans {
		sv := SpanView{
			SpanID:  sp.id.String(),
			Name:    sp.name,
			StartUS: float64(sp.start.Sub(t.start)) / float64(time.Microsecond),
			Done:    sp.done,
			Attrs:   attrMap(sp.attrs),
		}
		if sp.parent != 0 {
			sv.ParentID = sp.parent.String()
		}
		if sp.done {
			sv.DurUS = float64(sp.durNS) / float64(time.Microsecond)
		} else {
			sv.DurUS = float64(now.Sub(sp.start)) / float64(time.Microsecond)
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}

// WriteChrome renders the trace as a Chrome trace_event document through
// the telemetry emitter: one "X" event for the whole trace plus one per
// span, timestamped as offsets from the trace start so the viewer's time
// axis matches StartUS/DurUS in the JSON view.
func (t *Trace) WriteChrome(w io.Writer) error {
	v := t.View()
	tr := telemetry.NewTracer(w, telemetry.FormatChrome)
	args := map[string]any{"trace_id": v.TraceID}
	for k, val := range v.Attrs {
		args[k] = val
	}
	if v.EnergyPJ != 0 {
		args["energy_pj"] = v.EnergyPJ
		args["energy_estimated"] = v.EnergyEstimated
	}
	if v.Pinned {
		args["pin_reason"] = v.PinReason
	}
	tr.Emit(telemetry.Event{
		Name: v.Name, Cat: "trace", Ph: "X",
		Ts: 0, Dur: v.DurationMS * 1000, Args: args,
	})
	for _, sp := range v.Spans {
		sargs := map[string]any{"span_id": sp.SpanID}
		if sp.ParentID != "" {
			sargs["parent_id"] = sp.ParentID
		}
		for k, val := range sp.Attrs {
			sargs[k] = val
		}
		dur := sp.DurUS
		if dur <= 0 {
			dur = 0.001 // keep the event visible in viewers
		}
		tr.Emit(telemetry.Event{
			Name: sp.Name, Cat: "span", Ph: "X",
			Ts: sp.StartUS, Dur: dur, Args: sargs,
		})
	}
	return tr.Close()
}
