// Package tracing is the request-scoped observability layer of the serving
// path: 64-bit trace/span identifiers propagated through context.Context,
// per-stage wall-clock spans, an exact hwsim energy partition per trace,
// and a lock-light flight recorder (recorder.go) that keeps the last N
// completed traces plus a threshold-triggered "black box" of scans that
// blew a latency or energy budget.
//
// Design constraints, in order:
//
//  1. zero overhead when disabled — every entry point is nil-receiver safe
//     and the disabled path (no *Trace in the context) performs no
//     allocation and no locking: one context.Value lookup and one nil
//     check. TestTracingDisabledPathAllocationFree pins this at 0
//     allocs/op, the same way TestUninstrumentedStepAllocationFree pins
//     the hwsim hot path;
//  2. exact energy accounting — a trace's per-stage energy partition sums
//     left-to-right to Stats.TotalEnergyPJ() bit-for-bit (energy.go
//     reuses profile.SnapSum, the attribution layer's conservation
//     primitive);
//  3. stdlib only, like internal/telemetry.
//
// Attribute setters are typed (SetInt/SetStr/SetFloat/SetBool) rather than
// taking `any` so the disabled path never boxes arguments before the nil
// check.
package tracing

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request-scoped trace. Zero is "no trace".
type TraceID uint64

// String renders the id as 16 lowercase hex digits (the form logged as
// trace_id and accepted by ParseTraceID and bvapd's /debug/trace/{id}).
func (t TraceID) String() string { return formatID(uint64(t)) }

// SpanID identifies one span within a trace. Zero is "no span" (a root
// span's parent).
type SpanID uint64

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return formatID(uint64(s)) }

func formatID(v uint64) string {
	var buf [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// ParseTraceID parses the String() form (1–16 hex digits, leading zeros
// optional). It is strict so HTTP handlers can distinguish a malformed id
// (parse error → 400) from a well-formed id that simply isn't retained
// (lookup miss → 404): empty strings, ids longer than 16 digits, non-hex
// characters, sign prefixes, and the all-zero id ("no trace") are all
// errors.
func ParseTraceID(s string) (TraceID, error) {
	v, err := parseID(s)
	return TraceID(v), err
}

// ParseSpanID parses the String() form of a span id with the same
// strictness as ParseTraceID.
func ParseSpanID(s string) (SpanID, error) {
	v, err := parseID(s)
	return SpanID(v), err
}

func parseID(s string) (uint64, error) {
	if s == "" || len(s) > 16 {
		return 0, errIDSyntax(s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return 0, errIDSyntax(s)
		}
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, errIDSyntax(s)
	}
	return v, nil
}

func errIDSyntax(s string) error {
	return &strconv.NumError{Func: "ParseTraceID", Num: s, Err: strconv.ErrSyntax}
}

// idState drives the process-wide id generator: a golden-gamma counter
// finalized by splitmix64 (the repository's deterministic-hash idiom, see
// internal/faults), seeded once from the clock so concurrent processes
// don't collide.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) ^ 0x9e3779b97f4a7c15) }

func nextID() uint64 {
	for {
		if v := splitmix64(idState.Add(0x9e3779b97f4a7c15)); v != 0 {
			return v
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Attr is one typed key/value attribute on a trace or span.
type Attr struct {
	Key   string
	Value any
}

// Trace is one request's span tree plus its trace-level attributes and
// energy accounting. All methods are safe for concurrent use (shard and
// chunk spans run on worker goroutines) and nil-receiver safe, so
// instrumented code needs no enablement branches.
type Trace struct {
	id     TraceID
	name   string
	start  time.Time
	parent SpanID // remote parent span (cross-node adoption); 0 = local root

	mu        sync.Mutex
	spans     []*Span
	attrs     []Attr
	energy    *EnergyPartition
	estPJ     float64 // calibrated estimate, pJ; 0 = none
	durNS     int64   // set once by finish
	done      bool
	pinned    bool
	pinReason string
}

// NewTrace starts a trace with a fresh id.
func NewTrace(name string) *Trace {
	return &Trace{id: TraceID(nextID()), name: name, start: time.Now()}
}

// NewTraceWithID starts a trace adopting an externally assigned id — the
// cross-node propagation path: a peer's request carries its trace id in a
// header, and the local segment of the work records under the same id so
// /debug/trace/{id} on either node finds its half of the request. A zero
// id falls back to a fresh one.
func NewTraceWithID(id TraceID, name string) *Trace {
	return NewTraceWithParent(id, 0, name)
}

// NewTraceWithParent is NewTraceWithID carrying the remote caller's span id
// as well: the peer that issued the request records a client span and sends
// its id alongside the trace id, and the fleet stitcher later grafts this
// trace's local span tree under that span to rebuild the cross-node causal
// tree. A zero id falls back to a fresh trace; a zero parent means the
// local segment is a root.
func NewTraceWithParent(id TraceID, parent SpanID, name string) *Trace {
	if id == 0 {
		return NewTrace(name)
	}
	return &Trace{id: id, name: name, parent: parent, start: time.Now()}
}

// RemoteParent returns the remote caller's span id this trace was adopted
// under (0 for a local root or a nil trace).
func (t *Trace) RemoteParent() SpanID {
	if t == nil {
		return 0
	}
	return t.parent
}

// ID returns the trace id (0 for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// IDString returns the hex trace id, or "" for a nil trace — the form
// every serve-path log line and histogram exemplar carries.
func (t *Trace) IDString() string {
	if t == nil {
		return ""
	}
	return t.id.String()
}

// Name returns the trace's root operation name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start returns the trace's start time (zero for a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Duration returns the recorded duration for a finished trace and the
// running elapsed time otherwise.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return time.Duration(t.durNS)
	}
	return time.Since(t.start)
}

// finish closes the trace (idempotently) and returns its duration and the
// energy used for budget checks.
func (t *Trace) finish() (time.Duration, float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.durNS = int64(time.Since(t.start))
		t.done = true
	}
	return time.Duration(t.durNS), t.energyLocked()
}

// energyLocked returns the exact partition total when one was recorded and
// the calibrated estimate otherwise. Caller holds t.mu.
func (t *Trace) energyLocked() float64 {
	if t.energy != nil {
		return t.energy.TotalPJ
	}
	return t.estPJ
}

// EnergyPJ returns the trace's energy (exact partition total if recorded,
// else the calibrated estimate) and whether any energy was recorded.
func (t *Trace) EnergyPJ() (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.energyLocked(), t.energy != nil || t.estPJ != 0
}

// Energy returns a copy of the exact per-stage partition, if one was
// recorded.
func (t *Trace) Energy() (EnergyPartition, bool) {
	if t == nil {
		return EnergyPartition{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.energy == nil {
		return EnergyPartition{}, false
	}
	return *t.energy, true
}

// SetEnergy records the exact per-stage energy partition (see
// EnergySink.Partition: the stage values sum to Stats.TotalEnergyPJ()
// bit-for-bit).
func (t *Trace) SetEnergy(p EnergyPartition) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.energy = &p
	t.mu.Unlock()
}

// SetEnergyEstimate records a calibrated per-scan energy estimate in pJ
// (the serving path runs the software engine, so its live energy figure is
// rate × input bytes from a per-generation simulator calibration, clearly
// distinguished from the exact simulator partition).
func (t *Trace) SetEnergyEstimate(pj float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.estPJ = pj
	t.mu.Unlock()
}

// EnergyEstimated reports whether the trace's energy figure is a
// calibrated estimate rather than an exact partition.
func (t *Trace) EnergyEstimated() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.energy == nil && t.estPJ != 0
}

// Pinned reports whether the flight recorder pinned this trace into its
// black box, and why ("latency_budget", "energy_budget" or both).
func (t *Trace) Pinned() (bool, string) {
	if t == nil {
		return false, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pinned, t.pinReason
}

func (t *Trace) setPinned(reason string) {
	t.mu.Lock()
	t.pinned, t.pinReason = true, reason
	t.mu.Unlock()
}

// setAttr appends (or overwrites) one trace-level attribute.
func (t *Trace) setAttr(key string, v any) {
	t.mu.Lock()
	t.attrs = setAttr(t.attrs, key, v)
	t.mu.Unlock()
}

func setAttr(attrs []Attr, key string, v any) []Attr {
	for i := range attrs {
		if attrs[i].Key == key {
			attrs[i].Value = v
			return attrs
		}
	}
	return append(attrs, Attr{Key: key, Value: v})
}

// SetInt records an integer trace attribute.
func (t *Trace) SetInt(key string, v int) {
	if t == nil {
		return
	}
	t.setAttr(key, v)
}

// SetStr records a string trace attribute.
func (t *Trace) SetStr(key, v string) {
	if t == nil {
		return
	}
	t.setAttr(key, v)
}

// SetFloat records a float trace attribute.
func (t *Trace) SetFloat(key string, v float64) {
	if t == nil {
		return
	}
	t.setAttr(key, v)
}

// SetBool records a boolean trace attribute.
func (t *Trace) SetBool(key string, v bool) {
	if t == nil {
		return
	}
	t.setAttr(key, v)
}

// StartSpan opens a root-level span on the trace. Prefer the package-level
// StartSpan when a context is at hand — it parents the span under the
// enclosing one.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

func (t *Trace) newSpan(name string, parent SpanID) *Span {
	sp := &Span{tr: t, id: SpanID(nextID()), parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Span is one timed stage of a trace. Mutations synchronize on the owning
// trace's lock, so a span abandoned by a watchdog-timeout scan can still
// End safely while the flight recorder serves the completed trace.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	// Guarded by tr.mu.
	durNS int64
	done  bool
	attrs []Attr
}

// ID returns the span id (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// IDString returns the hex span id, or "" for a nil span — the form the
// cluster client stamps into the X-Bvap-Span-Id header. The empty string
// (rather than sixteen zeros) keeps the disabled path header-free.
func (s *Span) IDString() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// Parent returns the span's parent span id (0 for a root or nil span).
func (s *Span) Parent() SpanID {
	if s == nil {
		return 0
	}
	return s.parent
}

// Name returns the span's operation name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span (idempotently).
func (s *Span) End() {
	if s == nil {
		return
	}
	d := int64(time.Since(s.start))
	s.tr.mu.Lock()
	if !s.done {
		s.durNS, s.done = d, true
	}
	s.tr.mu.Unlock()
}

func (s *Span) setAttr(key string, v any) {
	s.tr.mu.Lock()
	s.attrs = setAttr(s.attrs, key, v)
	s.tr.mu.Unlock()
}

// SetInt records an integer span attribute.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// SetStr records a string span attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// SetFloat records a float span attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

// traceKey and spanKey carry the active trace and enclosing span through
// context.Context.
type (
	traceKey struct{}
	spanKey  struct{}
)

// NewContext returns ctx carrying the trace. A nil trace returns ctx
// unchanged, so the disabled path allocates nothing.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil. It never allocates.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFromContext returns the context's enclosing span, or nil. It never
// allocates — the cluster client calls it on every outbound request whether
// or not tracing is enabled.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a span on the context's trace, parented under the
// context's enclosing span, and returns a context carrying the new span as
// the parent for nested stages. Without a trace in the context it returns
// (ctx, nil) with no allocation — the serve path calls this on every scan
// whether or not tracing is enabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := SpanID(0)
	if ps, ok := ctx.Value(spanKey{}).(*Span); ok && ps != nil {
		parent = ps.id
	}
	sp := tr.newSpan(name, parent)
	return context.WithValue(ctx, spanKey{}, sp), sp
}
