package tracing

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// sampleFragments builds a realistic two-node fragment set by actually
// running the tracing layer, so the wire tests exercise the same shapes
// the cluster exports.
func sampleFragments(t testing.TB) []Fragment {
	t.Helper()
	rec := NewRecorder(Config{Capacity: 8})

	// Coordinator hop: a root trace with one client span.
	ctx, root := rec.StartTrace(context.Background(), "fleet.publish")
	ctx1, client := StartSpan(ctx, "cluster.client /cluster/prepare")
	client.SetStr("peer", "http://node-b")
	client.SetInt("attempt", 1)
	_, inner := StartSpan(ctx1, "encode")
	inner.End()
	client.End()
	root.SetEnergyEstimate(12.5)
	rec.Record(root)

	// Server hop on another node, parented under the client span.
	_, remote := rec.StartTraceRemoteSpan(context.Background(), "cluster.prepare", root.ID(), client.ID())
	sp := remote.StartSpan("compile")
	sp.SetFloat("pj", 3.25)
	sp.End()
	remote.finish()

	frags := root.Fragment("node-a")
	return append([]Fragment{frags}, remote.Fragment("node-b"))
}

func TestFragmentWireRoundTrip(t *testing.T) {
	frags := sampleFragments(t)
	wire := EncodeFragments(frags)
	back, err := DecodeFragments(wire)
	if err != nil {
		t.Fatalf("DecodeFragments: %v", err)
	}
	if len(back) != len(frags) {
		t.Fatalf("got %d fragments, want %d", len(back), len(frags))
	}
	for i := range frags {
		a, b := frags[i], back[i]
		if a.Node != b.Node || a.TraceID != b.TraceID || a.Parent != b.Parent ||
			a.Name != b.Name || a.DurNS != b.DurNS || a.Done != b.Done || a.EnergyPJ != b.EnergyPJ {
			t.Fatalf("fragment %d header mismatch:\n  sent %+v\n  got  %+v", i, a, b)
		}
		if len(a.Spans) != len(b.Spans) {
			t.Fatalf("fragment %d: %d spans decoded, want %d", i, len(b.Spans), len(a.Spans))
		}
		for j := range a.Spans {
			as, bs := a.Spans[j], b.Spans[j]
			if as.ID != bs.ID || as.Parent != bs.Parent || as.Name != bs.Name ||
				as.StartNS != bs.StartNS || as.DurNS != bs.DurNS || as.Done != bs.Done {
				t.Fatalf("fragment %d span %d mismatch:\n  sent %+v\n  got  %+v", i, j, as, bs)
			}
			if len(as.Attrs) != len(bs.Attrs) {
				t.Fatalf("fragment %d span %d attrs: %v vs %v", i, j, as.Attrs, bs.Attrs)
			}
			for k := range as.Attrs {
				if as.Attrs[k] != bs.Attrs[k] {
					t.Fatalf("fragment %d span %d attr %d: %v vs %v", i, j, k, as.Attrs[k], bs.Attrs[k])
				}
			}
		}
	}
	// Canonical form: re-encoding the decoded value is byte-identical.
	if again := EncodeFragments(back); !bytes.Equal(again, wire) {
		t.Fatal("re-encode of decoded fragments is not byte-identical")
	}
}

func TestFragmentWireEmptySet(t *testing.T) {
	wire := EncodeFragments(nil)
	back, err := DecodeFragments(wire)
	if err != nil || len(back) != 0 {
		t.Fatalf("empty set round-trip: %v, %v", back, err)
	}
}

func TestFragmentWireRejectsCorruption(t *testing.T) {
	wire := EncodeFragments(sampleFragments(t))

	cases := map[string][]byte{
		"empty":     {},
		"short":     wire[:10],
		"magic":     append([]byte("XXXX"), wire[4:]...),
		"truncated": wire[:len(wire)-3],
		"trailing":  append(append([]byte{}, wire...), 0),
	}
	// Flip one byte anywhere: the checksum must catch it.
	flipped := append([]byte{}, wire...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bitflip"] = flipped

	for name, data := range cases {
		if _, err := DecodeFragments(data); !errors.Is(err, ErrFragmentCorrupt) {
			t.Errorf("%s: error = %v, want ErrFragmentCorrupt", name, err)
		}
	}
}

func TestFragmentCarriesNoWallClock(t *testing.T) {
	// The wire form must transport only durations and intra-fragment
	// offsets: two encodes of equal fragment values are byte-identical
	// regardless of when they happen, which could not hold if absolute
	// timestamps leaked in.
	frag := Fragment{
		Node: "n1", TraceID: 7, Name: "hop", DurNS: 1000, Done: true,
		Spans: []FragmentSpan{{ID: 9, Name: "s", StartNS: 10, DurNS: 20, Done: true}},
	}
	if !bytes.Equal(EncodeFragments([]Fragment{frag}), EncodeFragments([]Fragment{frag})) {
		t.Fatal("encoding is not a pure function of the fragment value")
	}
}

func TestRecorderFragments(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 8})
	_, tr1 := rec.StartTrace(context.Background(), "hop1")
	rec.Record(tr1)
	// A second hop of the same distributed trace on this node.
	_, tr2 := rec.StartTraceRemoteSpan(context.Background(), "hop2", tr1.ID(), 42)
	rec.Record(tr2)

	frags := rec.Fragments(tr1.ID(), "node-x")
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2 (both hops retained)", len(frags))
	}
	for _, f := range frags {
		if f.Node != "node-x" || f.TraceID != tr1.ID() {
			t.Fatalf("fragment misattributed: %+v", f)
		}
	}
	if got := rec.Fragments(TraceID(0xdead), "node-x"); got != nil {
		t.Fatalf("unknown id yielded fragments: %v", got)
	}
}

// FuzzTraceFragmentWire throws arbitrary bytes at the fragment decoder.
// Any input must either be rejected with ErrFragmentCorrupt or decode into
// fragments that re-encode byte-identically — the canonical-form contract
// the federator relies on, mirroring FuzzSessionCheckpointWire.
func FuzzTraceFragmentWire(f *testing.F) {
	f.Add(EncodeFragments(nil))
	f.Add(EncodeFragments([]Fragment{{
		Node: "n1", TraceID: 1, Parent: 2, Name: "hop", DurNS: 5, Done: true, EnergyPJ: 1.5,
		Spans: []FragmentSpan{{ID: 3, Parent: 0, Name: "s", StartNS: 1, DurNS: 2, Done: true,
			Attrs: []FragmentAttr{{Key: "k", Value: "v"}}}},
	}}))
	f.Add([]byte{})
	f.Add([]byte("BVTF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		frags, err := DecodeFragments(data)
		if err != nil {
			if !errors.Is(err, ErrFragmentCorrupt) {
				t.Fatalf("decode error is untyped: %v", err)
			}
			return
		}
		again := EncodeFragments(frags)
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted wire does not re-encode byte-identically:\n in  %x\n out %x", data, again)
		}
	})
}
