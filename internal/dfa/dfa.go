// Package dfa implements subset-construction determinization of Glushkov
// NFAs with streaming partial-match semantics. It exists for two reasons
// rooted in §2 of the paper:
//
//   - it demonstrates the blowup that motivates NFA-based hardware: a
//     counting pattern like .*a.{n} determinizes to Θ(2ⁿ) states, because
//     the DFA must remember which of the last n positions held an 'a'
//     (tests in this package measure the claim directly);
//   - it is a third, independently constructed matching oracle for the
//     repository's differential tests (AH-NBVA vs NCA vs swmatch vs DFA).
//
// Construction is lazy with an explicit state cap, so callers can both use
// small DFAs for matching and observe when a pattern explodes.
package dfa

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bvap/internal/glushkov"
)

// ErrTooLarge is reported when determinization exceeds the state cap.
var ErrTooLarge = errors.New("dfa: state cap exceeded")

// DFA is a determinized automaton with partial-match semantics baked in:
// the initial NFA states are re-armed on every symbol, so the subset
// transition function already encodes `.*` prefixing, and a subset is
// accepting if it contains an NFA final state.
type DFA struct {
	nfa *glushkov.NFA
	// trans[s][b] is the successor of state s on symbol b.
	trans [][256]int
	// accept[s] reports whether a match ends when state s is entered.
	accept []bool
	cap    int

	// subsets keyed by their canonical signature → DFA state id.
	ids     map[string]int
	subsets [][]int
}

// Build determinizes the NFA eagerly up to maxStates subsets. Use Lazy for
// on-demand construction.
func Build(nfa *glushkov.NFA, maxStates int) (*DFA, error) {
	d := Lazy(nfa, maxStates)
	// Force full construction with a worklist.
	work := []int{0}
	seen := map[int]bool{0: true}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for b := 0; b < 256; b++ {
			succ, err := d.step(s, byte(b))
			if err != nil {
				return nil, err
			}
			if !seen[succ] {
				seen[succ] = true
				work = append(work, succ)
			}
		}
	}
	return d, nil
}

// Lazy prepares a DFA whose subsets materialize on demand during matching.
func Lazy(nfa *glushkov.NFA, maxStates int) *DFA {
	if maxStates < 1 {
		maxStates = 1
	}
	d := &DFA{nfa: nfa, cap: maxStates, ids: map[string]int{}}
	d.intern(nil) // state 0: the empty subset (only initial re-arming live)
	return d
}

// Size returns the number of materialized DFA states.
func (d *DFA) Size() int { return len(d.subsets) }

// intern returns the id of a subset, materializing it if new.
func (d *DFA) intern(subset []int) int {
	key := signature(subset)
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := len(d.subsets)
	d.ids[key] = id
	d.subsets = append(d.subsets, append([]int(nil), subset...))
	var row [256]int
	for i := range row {
		row[i] = -1
	}
	d.trans = append(d.trans, row)
	acc := false
	for _, q := range subset {
		if d.nfa.States[q].Final {
			acc = true
			break
		}
	}
	d.accept = append(d.accept, acc)
	return id
}

func signature(subset []int) string {
	var sb strings.Builder
	for _, q := range subset {
		fmt.Fprintf(&sb, "%x,", q)
	}
	return sb.String()
}

// step returns the successor state of s on b, materializing it if needed.
func (d *DFA) step(s int, b byte) (int, error) {
	if next := d.trans[s][b]; next >= 0 {
		return next, nil
	}
	nfa := d.nfa
	set := map[int]bool{}
	// Successors of the subset's members.
	for _, q := range d.subsets[s] {
		for _, succ := range nfa.Follow[q] {
			if nfa.States[succ].Class.Contains(b) {
				set[succ] = true
			}
		}
	}
	// Partial-match semantics: initial states re-arm every symbol.
	for _, q := range nfa.Initial {
		if nfa.States[q].Class.Contains(b) {
			set[q] = true
		}
	}
	subset := make([]int, 0, len(set))
	for q := range set {
		subset = append(subset, q)
	}
	sort.Ints(subset)
	if _, exists := d.ids[signature(subset)]; !exists && len(d.subsets) >= d.cap {
		return 0, fmt.Errorf("%w (cap %d)", ErrTooLarge, d.cap)
	}
	next := d.intern(subset)
	d.trans[s][b] = next
	return next, nil
}

// MatchEnds runs the DFA over input, returning every index where a match
// ends. Construction happens lazily; ErrTooLarge is returned if the subset
// space exceeds the cap.
func (d *DFA) MatchEnds(input []byte) ([]int, error) {
	s := 0
	var ends []int
	for i, b := range input {
		next, err := d.step(s, b)
		if err != nil {
			return ends, err
		}
		s = next
		if d.accept[s] {
			ends = append(ends, i)
		}
	}
	return ends, nil
}

// Runner is a streaming matcher over a lazily built DFA.
type Runner struct {
	d   *DFA
	cur int
}

// NewRunner returns a streaming runner at the start state.
func (d *DFA) NewRunner() *Runner { return &Runner{d: d} }

// Step consumes one byte; it reports whether a match ends at it, and an
// error when determinization exceeds the cap.
func (r *Runner) Step(b byte) (bool, error) {
	next, err := r.d.step(r.cur, b)
	if err != nil {
		return false, err
	}
	r.cur = next
	return r.d.accept[next], nil
}

// Reset returns the runner to the start state.
func (r *Runner) Reset() { r.cur = 0 }
