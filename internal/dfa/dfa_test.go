package dfa

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"bvap/internal/glushkov"
	"bvap/internal/nbva"
	"bvap/internal/regex"
	"bvap/internal/swmatch"
)

func nfaFor(t *testing.T, pattern string) *glushkov.NFA {
	t.Helper()
	return glushkov.MustBuild(regex.FullyUnfold(regex.MustParse(pattern)))
}

func TestBasicMatching(t *testing.T) {
	d := Lazy(nfaFor(t, "ab{3}c"), 1<<16)
	ends, err := d.MatchEnds([]byte("xxabbbcyy abbbc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 || ends[0] != 6 || ends[1] != 14 {
		t.Fatalf("ends = %v", ends)
	}
}

func TestAgainstReferenceMatchers(t *testing.T) {
	patterns := []string{
		"ab{3}c", "a(.a){3}b", "a{2,6}", "x(ab|c){3}y", "a+b{3}c*",
		"(?i)get.{4}http",
	}
	r := rand.New(rand.NewSource(23))
	for _, pat := range patterns {
		d := Lazy(nfaFor(t, pat), 1<<18)
		ref := swmatch.MustNew(pat)
		bva := nbva.MustBuild(regex.MustParse(pat))
		for trial := 0; trial < 15; trial++ {
			input := make([]byte, 60)
			for i := range input {
				input[i] = "abcxyGETHp"[r.Intn(10)]
			}
			got, err := d.MatchEnds(input)
			if err != nil {
				t.Fatalf("%q: %v", pat, err)
			}
			want := ref.MatchEnds(input)
			alt := bva.MatchEnds(input)
			if !equalInts(got, want) || !equalInts(got, alt) {
				t.Fatalf("%q input %q: dfa %v, swmatch %v, nbva %v", pat, input, got, want, alt)
			}
		}
	}
}

// TestExponentialBlowup measures the §2 claim: determinizing .*a.{n}
// requires Θ(2ⁿ) states because the DFA must remember which of the last n
// symbols were 'a'.
func TestExponentialBlowup(t *testing.T) {
	sizes := map[int]int{}
	for _, n := range []int{2, 4, 6, 8, 10} {
		d, err := Build(nfaFor(t, fmt.Sprintf("a.{%d}", n)), 1<<16)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sizes[n] = d.Size()
	}
	// Each +2 on the bound must multiply the DFA size by ≈4.
	for _, n := range []int{4, 6, 8, 10} {
		ratio := float64(sizes[n]) / float64(sizes[n-2])
		if ratio < 3 {
			t.Fatalf("blowup missing: size(%d)=%d size(%d)=%d", n-2, sizes[n-2], n, sizes[n])
		}
	}
	t.Logf("DFA sizes for a.{n}: %v (NBVA needs 2 states regardless)", sizes)
}

func TestStateCapEnforced(t *testing.T) {
	d := Lazy(nfaFor(t, "a.{14}"), 64)
	input := make([]byte, 4096)
	r := rand.New(rand.NewSource(2))
	for i := range input {
		input[i] = "ab"[r.Intn(2)]
	}
	_, err := d.MatchEnds(input)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestRunnerStreaming(t *testing.T) {
	d := Lazy(nfaFor(t, "ab"), 128)
	r := d.NewRunner()
	m, err := r.Step('a')
	if err != nil || m {
		t.Fatal("premature match")
	}
	m, err = r.Step('b')
	if err != nil || !m {
		t.Fatal("missed match")
	}
	r.Reset()
	if m, _ := r.Step('b'); m {
		t.Fatal("stale state after reset")
	}
}

func TestEagerBuildSmall(t *testing.T) {
	d, err := Build(nfaFor(t, "abc"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() < 3 || d.Size() > 16 {
		t.Fatalf("size = %d", d.Size())
	}
	// Transition table fully materialized: no errors during matching.
	if _, err := d.MatchEnds([]byte("zzabczz")); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
