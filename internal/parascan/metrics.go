package parascan

import "bvap/internal/telemetry"

// Metric names exposed by the parallel scan subsystem. Registered lazily by
// NewMetrics; the whole subsystem runs with a nil *Metrics when the caller
// attaches no registry, and every method is nil-receiver safe so the hot
// paths pay one comparison.
const (
	// MetricWorkersBusy is a gauge of worker goroutines currently
	// executing a shard (batch input or chunk).
	MetricWorkersBusy = "bvap_parascan_workers_busy"
	// MetricBatchInputs counts inputs scanned by ScanBatch.
	MetricBatchInputs = "bvap_parascan_batch_inputs_total"
	// MetricChunks counts chunks scanned by FindAllParallel.
	MetricChunks = "bvap_parascan_chunks_scanned_total"
	// MetricSeamReplays counts chunk scans that replayed a non-empty seam
	// window (every chunk but the first, absent clamping at offset 0).
	MetricSeamReplays = "bvap_parascan_seam_replays_total"
	// MetricSeamReplayBytes counts the warm-up bytes re-scanned at seams —
	// the redundancy the parallel decomposition pays for independence.
	MetricSeamReplayBytes = "bvap_parascan_seam_replay_bytes_total"
	// MetricFallbacks counts FindAllParallel calls that degraded to the
	// sequential scan, labeled by reason: "unbounded_reach" (a supported
	// pattern with *, + or {n,}), "short_input" (one chunk suffices) or
	// "window_dominates" (the seam window is at least the chunk size, so
	// replay would outweigh useful work).
	MetricFallbacks = "bvap_parascan_fallback_total"
	// MetricShardRetries counts shard-local re-scans after a cross-check
	// mismatch (the RunResilient-style detect/retry ladder of ScanBatch).
	MetricShardRetries = "bvap_parascan_shard_retries_total"
	// MetricShardFallbacks counts shards that exhausted their retries and
	// degraded to the independent reference matcher's output.
	MetricShardFallbacks = "bvap_parascan_shard_fallbacks_total"
)

// FallbackReasons enumerates the label values of MetricFallbacks, for
// exposition and tests.
var FallbackReasons = []string{"unbounded_reach", "short_input", "window_dominates"}

// Metrics is the resolved handle set of the subsystem's telemetry. A nil
// *Metrics is valid everywhere and records nothing.
type Metrics struct {
	workersBusy     *telemetry.Gauge
	batchInputs     *telemetry.Counter
	chunks          *telemetry.Counter
	seamReplays     *telemetry.Counter
	seamReplayBytes *telemetry.Counter
	shardRetries    *telemetry.Counter
	shardFallbacks  *telemetry.Counter
	fallbacks       *telemetry.CounterVec
}

// NewMetrics resolves the subsystem's metric families on reg, returning nil
// for a nil registry so call sites need no branching.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		workersBusy:     reg.Gauge(MetricWorkersBusy, "parallel-scan worker goroutines currently busy"),
		batchInputs:     reg.Counter(MetricBatchInputs, "inputs scanned by ScanBatch"),
		chunks:          reg.Counter(MetricChunks, "chunks scanned by FindAllParallel"),
		seamReplays:     reg.Counter(MetricSeamReplays, "chunk scans that replayed a seam window"),
		seamReplayBytes: reg.Counter(MetricSeamReplayBytes, "warm-up bytes re-scanned at chunk seams"),
		shardRetries:    reg.Counter(MetricShardRetries, "shard-local re-scans after a cross-check mismatch"),
		shardFallbacks:  reg.Counter(MetricShardFallbacks, "shards degraded to the reference matcher after exhausting retries"),
		fallbacks:       reg.CounterVec(MetricFallbacks, "FindAllParallel calls degraded to the sequential scan", "reason"),
	}
}

func (m *Metrics) workerBusy(delta float64) {
	if m != nil {
		m.workersBusy.Add(delta)
	}
}

// BatchInput records one scanned batch input.
func (m *Metrics) BatchInput() {
	if m != nil {
		m.batchInputs.Inc()
	}
}

// ChunkScanned records one scanned chunk and its seam replay cost.
func (m *Metrics) ChunkScanned(replayBytes int) {
	if m == nil {
		return
	}
	m.chunks.Inc()
	if replayBytes > 0 {
		m.seamReplays.Inc()
		m.seamReplayBytes.Add(uint64(replayBytes))
	}
}

// Fallback records one sequential-scan fallback with its reason label.
func (m *Metrics) Fallback(reason string) {
	if m != nil {
		m.fallbacks.With(reason).Inc()
	}
}

// ShardRetry records one shard-local re-scan.
func (m *Metrics) ShardRetry() {
	if m != nil {
		m.shardRetries.Inc()
	}
}

// ShardFallback records one shard degraded to the reference path.
func (m *Metrics) ShardFallback() {
	if m != nil {
		m.shardFallbacks.Inc()
	}
}
