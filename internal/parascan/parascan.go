// Package parascan is the concurrency substrate of the engine's sharded
// parallel scanner (Engine.ScanBatch / Engine.FindAllParallel in the root
// package). It owns the three mechanisms that are independent of the
// automata model and therefore testable in isolation:
//
//   - chunk planning: splitting one large input into shards whose live
//     regions tile the input exactly, each preceded by a bounded-history
//     replay window (the seam) that reconstructs the sequential scanner's
//     frontier at the shard boundary — the data-parallel decomposition of
//     Sin'ya & Matsuzaki's Simultaneous Finite Automata, specialised to
//     patterns with bounded reach;
//   - a bounded, order-preserving worker pool: ForEach schedules indices
//     onto a fixed number of goroutines while the caller writes results
//     into per-index slots, so output order is deterministic regardless of
//     scheduling;
//   - scanner pooling: a typed sync.Pool wrapper that lets workers reuse
//     streams (allocation-free steady state) without threading ownership
//     through the scheduler.
//
// The package deliberately knows nothing about regexes or matches: the root
// package supplies closures over its own Stream type. That keeps the
// dependency arrow pointing the usual way (bvap → internal/parascan) and
// makes the chunk-boundary math property-testable without compiling
// patterns.
package parascan

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Chunk is one shard of a single input. The half-open live region
// [Start, End) is the part of the input this shard is responsible for:
// matches ending inside it belong to this shard and to no other. Scanning
// begins earlier, at ReplayStart, so the shard's automaton frontier at
// Start equals the sequential scanner's; matches ending in the warm-up
// region [ReplayStart, Start) are discarded (the previous shard owns them).
type Chunk struct {
	Index       int
	ReplayStart int
	Start       int
	End         int
}

// ReplayLen returns the length of the warm-up region.
func (c Chunk) ReplayLen() int { return c.Start - c.ReplayStart }

// PlanChunks tiles an input of inputLen bytes into chunks of chunkSize with
// a replay window of window bytes before every chunk but the first. The
// live regions partition [0, inputLen) exactly; ReplayStart never goes
// below zero. chunkSize < 1 yields a single chunk (no parallelism); a zero
// inputLen yields no chunks.
func PlanChunks(inputLen, chunkSize, window int) []Chunk {
	if inputLen <= 0 {
		return nil
	}
	if chunkSize < 1 {
		chunkSize = inputLen
	}
	if window < 0 {
		window = 0
	}
	out := make([]Chunk, 0, (inputLen+chunkSize-1)/chunkSize)
	for lo := 0; lo < inputLen; lo += chunkSize {
		hi := lo + chunkSize
		if hi > inputLen {
			hi = inputLen
		}
		r := lo - window
		if r < 0 {
			r = 0
		}
		out = append(out, Chunk{Index: len(out), ReplayStart: r, Start: lo, End: hi})
	}
	return out
}

// Workers normalizes a worker-count option: values < 1 select
// runtime.GOMAXPROCS(0), and the count never exceeds n (there is no point
// parking goroutines with nothing to do).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach calls fn(ctx, i) exactly once for every index in [0, n) that it
// starts, distributing indices over min(workers, n) goroutines (workers < 1
// selects GOMAXPROCS). Indices are claimed in order from an atomic cursor;
// a canceled ctx stops workers from claiming further indices, and ForEach
// then returns ctx.Err() — fn invocations already in flight run to
// completion first, so the caller may read its result slots immediately.
// The caller is responsible for making fn's writes race-free (the intended
// shape is one pre-allocated slot per index). m may be nil.
func ForEach(ctx context.Context, n, workers int, m *Metrics, fn func(ctx context.Context, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				m.workerBusy(1)
				fn(ctx, i)
				m.workerBusy(-1)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Pool is a typed sync.Pool of reusable scanners. The zero value is not
// usable; construct with NewPool.
type Pool[S any] struct{ p sync.Pool }

// NewPool returns a pool that manufactures fresh values with newFn when
// empty. newFn runs lazily, on the first Get that misses, so constructing a
// Pool is cheap even when newFn is expensive.
func NewPool[S any](newFn func() S) *Pool[S] {
	return &Pool[S]{p: sync.Pool{New: func() any { return newFn() }}}
}

// Get takes a scanner from the pool, constructing one if necessary. The
// caller owns it until Put.
func (p *Pool[S]) Get() S { return p.p.Get().(S) }

// Put returns a scanner to the pool. The caller must not use it afterwards.
func (p *Pool[S]) Put(s S) { p.p.Put(s) }
