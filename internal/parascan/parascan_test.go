package parascan

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bvap/internal/telemetry"
)

// TestPlanChunksTilesExactly property-tests the chunk planner: across many
// random (inputLen, chunkSize, window) triples, the live regions must
// partition [0, inputLen) exactly, in order, and every replay start must be
// window bytes before the live start (clamped at zero).
func TestPlanChunksTilesExactly(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		inputLen := r.Intn(10_000)
		chunkSize := r.Intn(512) - 1 // includes -1 and 0 (degenerate)
		window := r.Intn(300) - 1    // includes -1 (degenerate)
		chunks := PlanChunks(inputLen, chunkSize, window)
		if inputLen == 0 {
			if chunks != nil {
				t.Fatalf("PlanChunks(0,...) = %v, want nil", chunks)
			}
			continue
		}
		pos := 0
		for j, c := range chunks {
			if c.Index != j {
				t.Fatalf("chunk %d has Index %d", j, c.Index)
			}
			if c.Start != pos {
				t.Fatalf("chunk %d starts at %d, want %d (gap or overlap)", j, c.Start, pos)
			}
			if c.End <= c.Start || c.End > inputLen {
				t.Fatalf("chunk %d has bad live region [%d,%d)", j, c.Start, c.End)
			}
			wantReplay := c.Start - window
			if window < 0 {
				wantReplay = c.Start
			}
			if wantReplay < 0 {
				wantReplay = 0
			}
			if c.ReplayStart != wantReplay {
				t.Fatalf("chunk %d replay start %d, want %d", j, c.ReplayStart, wantReplay)
			}
			if c.ReplayLen() != c.Start-c.ReplayStart {
				t.Fatalf("chunk %d ReplayLen %d inconsistent", j, c.ReplayLen())
			}
			pos = c.End
		}
		if pos != inputLen {
			t.Fatalf("chunks end at %d, want %d", pos, inputLen)
		}
	}
}

func TestPlanChunksSingleChunkDegenerate(t *testing.T) {
	chunks := PlanChunks(100, 0, 5)
	if len(chunks) != 1 || chunks[0].Start != 0 || chunks[0].End != 100 || chunks[0].ReplayStart != 0 {
		t.Fatalf("degenerate chunkSize: %v", chunks)
	}
}

// TestForEachVisitsEveryIndexOnce pins the scheduler contract: every index
// in [0, n) is visited exactly once, for every worker count.
func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 8, 64} {
		const n = 1000
		var visits [n]atomic.Int32
		err := ForEach(context.Background(), n, workers, nil, func(_ context.Context, i int) {
			visits[i].Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil, func(context.Context, int) {
		t.Fatal("fn called for n=0")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachCancellation checks that a cancel stops workers from claiming
// new indices and surfaces ctx.Err(), while in-flight work completes before
// ForEach returns (no goroutine outlives the call).
func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	var finished atomic.Int32
	err := ForEach(ctx, 10_000, 4, nil, func(ctx context.Context, i int) {
		started.Add(1)
		if started.Load() > 8 {
			cancel()
		}
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("started %d != finished %d: ForEach returned with work in flight", s, f)
	}
	if s := started.Load(); s == 10_000 {
		t.Fatal("cancellation did not stop index claiming")
	}
}

func TestForEachPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	if err := ForEach(ctx, 100, 4, nil, func(context.Context, int) { called = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-canceled context may let a worker slip one claim in only if it
	// checked before cancel; with cancel() strictly before ForEach the
	// check must fail first.
	if called {
		t.Fatal("fn ran under a pre-canceled context")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(-2, 0); w != 1 {
		t.Fatalf("Workers(-2, 0) = %d, want 1", w)
	}
}

func TestPoolReuse(t *testing.T) {
	var made atomic.Int32
	p := NewPool(func() *int {
		made.Add(1)
		v := new(int)
		return v
	})
	s := p.Get()
	*s = 42
	p.Put(s)
	// sync.Pool gives no hard reuse guarantee, but single-goroutine
	// get-after-put without an intervening GC returns the same object.
	if got := p.Get(); got != s {
		t.Log("pool did not reuse (GC ran?) — acceptable, but unusual in-test")
	}
	if made.Load() < 1 {
		t.Fatal("newFn never ran")
	}
}

// TestMetricsNilSafe pins that the whole Metrics surface is nil-receiver
// safe: the subsystem must run without a registry.
func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.BatchInput()
	m.ChunkScanned(10)
	m.Fallback("unbounded_reach")
	m.ShardRetry()
	m.ShardFallback()
	m.workerBusy(1)
	if got := NewMetrics(nil); got != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", got)
	}
}

func TestMetricsAccrue(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	m.BatchInput()
	m.BatchInput()
	m.ChunkScanned(0)  // first chunk: no seam
	m.ChunkScanned(17) // replayed seam
	m.Fallback("short_input")
	m.ShardRetry()
	m.ShardFallback()

	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		if r, ok := s.Labels["reason"]; ok {
			key += "{" + r + "}"
		}
		got[key] = s.Value
	}
	want := map[string]float64{
		MetricBatchInputs:                 2,
		MetricChunks:                      2,
		MetricSeamReplays:                 1,
		MetricSeamReplayBytes:             17,
		MetricFallbacks + "{short_input}": 1,
		MetricShardRetries:                1,
		MetricShardFallbacks:              1,
		MetricWorkersBusy:                 0,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

// TestForEachWorkersBusyGauge checks the busy gauge returns to zero and
// never exceeds the worker cap.
func TestForEachWorkersBusyGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	var mu sync.Mutex
	peak := 0.0
	err := ForEach(context.Background(), 64, 4, m, func(context.Context, int) {
		mu.Lock()
		if v := m.workersBusy.Value(); v > peak {
			peak = v
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.workersBusy.Value(); v != 0 {
		t.Fatalf("busy gauge = %v after ForEach, want 0", v)
	}
	if peak < 1 || peak > 4 {
		t.Fatalf("busy gauge peak = %v, want within [1, 4]", peak)
	}
}
