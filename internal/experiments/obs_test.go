package experiments

import (
	"bytes"
	"testing"
)

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("obs is a wall-clock experiment")
	}
	res, rep, err := Obs(ObsOptions{
		Sample:   8,
		InputLen: 16 << 10,
		Scans:    4,
		Rounds:   2,
	})
	if err != nil {
		t.Fatalf("Obs: %v", err)
	}
	if res.DisabledAllocsPerOp != 0 {
		t.Errorf("disabled path allocates %.1f per op", res.DisabledAllocsPerOp)
	}
	if !res.EnergyExact {
		t.Errorf("energy partition inexact: trace %v vs stats %v", res.EnergyTracePJ, res.EnergyStatsPJ)
	}
	if res.TracesRecorded == 0 {
		t.Error("traced side recorded no traces")
	}
	if res.SpansPerTrace == 0 {
		t.Error("recorded trace has no spans")
	}
	if res.UntracedMBps <= 0 || res.TracedMBps <= 0 {
		t.Errorf("throughput not measured: untraced %.2f traced %.2f", res.UntracedMBps, res.TracedMBps)
	}

	if len(rep.Cells) != 3 {
		t.Fatalf("%d bench cells, want 3", len(rep.Cells))
	}
	if rep.Cells[0].Arch != "obs-disabled" || rep.Cells[0].Allocs != 0 {
		t.Errorf("disabled cell mismatch: %+v", rep.Cells[0])
	}
	if rep.Cells[2].Arch != "obs-energy" || rep.Cells[2].EnergyPJ != res.EnergyTracePJ {
		t.Errorf("energy cell mismatch: %+v", rep.Cells[2])
	}
	if rep.Cells[2].Symbols != res.EnergySymbols || rep.Cells[2].Symbols == 0 {
		t.Errorf("energy cell symbols %d, want %d != 0", rep.Cells[2].Symbols, res.EnergySymbols)
	}

	var buf bytes.Buffer
	RenderObs(&buf, res)
	if buf.Len() == 0 {
		t.Error("RenderObs produced nothing")
	}
}
