package experiments

import "testing"

// TestFaultsExperimentMonotone pins the construction that makes the sweep
// readable: fault sets nest across rates (a draw that fires at rate r fires
// at every r' > r), so injected counts and every recovery counter derived
// from detection are non-decreasing in the rate column. Energy is
// deliberately NOT asserted monotone — silent STE deactivations can
// suppress downstream work (see EXPERIMENTS.md).
func TestFaultsExperimentMonotone(t *testing.T) {
	opt := FaultsOptions{
		Sample:   8,
		InputLen: 4096,
		Rates:    []float64{0, 2e-3, 2e-2},
		Seed:     1,
	}
	rows, err := Faults(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opt.Rates) {
		t.Fatalf("rows = %d, want %d", len(rows), len(opt.Rates))
	}
	zero := rows[0]
	if zero.Injected != 0 || zero.Retries != 0 || zero.Fallbacks != 0 {
		t.Fatalf("rate-0 row injected faults: %+v", zero)
	}
	if zero.EnergyOverhead != 0 {
		t.Fatalf("rate-0 row is its own baseline; overhead = %g", zero.EnergyOverhead)
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.Injected < prev.Injected {
			t.Errorf("Injected not monotone at rate %g: %d < %d", cur.Rate, cur.Injected, prev.Injected)
		}
		if cur.Detected < prev.Detected {
			t.Errorf("Detected not monotone at rate %g: %d < %d", cur.Rate, cur.Detected, prev.Detected)
		}
		if cur.Retries < prev.Retries {
			t.Errorf("Retries not monotone at rate %g: %d < %d", cur.Rate, cur.Retries, prev.Retries)
		}
		if cur.Fallbacks < prev.Fallbacks {
			t.Errorf("Fallbacks not monotone at rate %g: %d < %d", cur.Rate, cur.Fallbacks, prev.Fallbacks)
		}
		// The rate-0 row is the plain datapath (no harness), so window
		// counts are only comparable among harnessed rows.
		if prev.Rate > 0 && cur.Windows != prev.Windows {
			t.Errorf("window count changed with rate: %d vs %d", cur.Windows, prev.Windows)
		}
	}
	last := rows[len(rows)-1]
	if last.Injected == 0 {
		t.Fatal("highest rate injected nothing; sweep is vacuous")
	}
	if last.Detected == 0 {
		t.Fatal("parity-on sweep detected nothing at the highest rate")
	}
}
