package experiments

// The throughput experiment measures the sharded parallel scan engine —
// the software analogue of the many concurrent streams a BVAP tile array
// services — against the sequential scanner on one dataset's workload:
//
//   - "seq"          one Stream over the whole corpus (the oracle);
//   - "batch-wN"     ScanBatch over the corpus split into independent
//                    pieces, N workers (input-level parallelism);
//   - "par-wN-cC"    FindAllParallel over the whole corpus, N workers and
//                    C-byte chunks with seam-window replay (chunk-level
//                    parallelism).
//
// Match-set equivalence is asserted inside the experiment (batch rows
// against per-piece sequential scans, chunk rows against the whole-corpus
// scan), so a throughput row can never silently trade correctness for
// speed. Symbols and matches are counted, deterministic metrics; wall
// clock and speedup are informational and never compared by CompareBench.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"bvap"
	"bvap/internal/datasets"
)

// ThroughputOptions parameterizes the throughput experiment. Zero values
// select a CI-smoke-sized configuration.
type ThroughputOptions struct {
	Dataset  string // default "Snort"
	Sample   int    // patterns sampled from the dataset (default 40)
	InputLen int    // total corpus bytes (default 1 MiB)
	Inputs   int    // batch pieces the corpus is split into (default 32)
	Workers  []int  // worker counts swept (default 1, 2, 4, NumCPU)
	Chunks   []int  // chunk sizes for the par rows (default 4096, 16384)
	// MaxReach drops sampled patterns whose maximal match length exceeds
	// it (or is unbounded): chunk parallelism needs a bounded seam window,
	// and a window rivaling the chunk size degenerates to replay (default
	// 512). The same filtered set drives every row, so all modes scan the
	// same machine.
	MaxReach int
	// Reps is how many times each row is timed; the minimum wall time is
	// reported (default 3).
	Reps int
}

func (o *ThroughputOptions) fill() {
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 40
	}
	if o.InputLen == 0 {
		o.InputLen = 1 << 20
	}
	if o.Inputs == 0 {
		o.Inputs = 32
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4}
		if n := runtime.NumCPU(); n > 4 {
			o.Workers = append(o.Workers, n)
		}
	}
	if len(o.Chunks) == 0 {
		o.Chunks = []int{4096, 16384}
	}
	if o.MaxReach == 0 {
		o.MaxReach = 512
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
}

// ThroughputRow is one measured scan mode.
type ThroughputRow struct {
	Mode    string `json:"mode"` // "seq", "batch-wN", "par-wN-cC"
	Workers int    `json:"workers"`
	Chunk   int    `json:"chunk,omitempty"`

	// Counted metrics: deterministic across runs of the same commit.
	Symbols uint64 `json:"symbols"`
	Matches uint64 `json:"matches"`

	// Informational metrics.
	Allocs  uint64  `json:"allocs"`
	WallMs  float64 `json:"wall_ms"`
	MBps    float64 `json:"mb_s"`
	Speedup float64 `json:"speedup_vs_seq"`
}

// ThroughputResult is the experiment's structured output.
type ThroughputResult struct {
	Dataset    string          `json:"dataset"`
	Patterns   int             `json:"patterns"` // bounded-reach patterns kept
	Dropped    int             `json:"dropped"`  // sampled patterns dropped by MaxReach
	SeamWindow int             `json:"seam_window"`
	Rows       []ThroughputRow `json:"rows"`
}

// Throughput runs the parallel-vs-sequential throughput matrix and returns
// both the structured rows and a BENCH-schema report (cells keyed by
// dataset × mode) so runs can be regression-compared with CompareBench.
func Throughput(opt ThroughputOptions) (*ThroughputResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	sampled := prof.Sample(opt.Sample)
	var patterns []string
	for _, p := range sampled {
		reach, bounded, err := bvap.PatternReach(p)
		if err == nil && bounded && reach <= opt.MaxReach {
			patterns = append(patterns, p)
		}
	}
	if len(patterns) == 0 {
		return nil, nil, fmt.Errorf("throughput: no bounded-reach patterns within %d bytes in %s sample", opt.MaxReach, opt.Dataset)
	}
	eng, err := bvap.Compile(patterns, bvap.WithBVSize(perfBVSize), bvap.WithUnfoldThreshold(perfUnfoldTh))
	if err != nil {
		return nil, nil, err
	}
	res := &ThroughputResult{
		Dataset:  opt.Dataset,
		Patterns: len(patterns),
		Dropped:  len(sampled) - len(patterns),
	}
	res.SeamWindow, _ = eng.SeamWindow()

	input := prof.Input(opt.InputLen, patterns)
	pieces := splitPieces(input, opt.Inputs)

	ctx := context.Background()

	// Sequential oracles: the whole corpus (chunk rows compare against
	// this) and the per-piece scans (batch rows compare against these).
	var seqWhole []bvap.Match
	seq := measure(opt.Reps, func() {
		seqWhole = eng.FindAll(input)
	})
	seq.Mode, seq.Workers = "seq", 1
	seq.Symbols = uint64(len(input))
	seq.Matches = uint64(len(seqWhole))
	seq.finish(len(input), seq.WallMs)
	res.Rows = append(res.Rows, seq)

	wantPieces := make([][]bvap.Match, len(pieces))
	pieceMatches := uint64(0)
	for i, p := range pieces {
		wantPieces[i] = eng.FindAll(p)
		pieceMatches += uint64(len(wantPieces[i]))
	}

	for _, w := range opt.Workers {
		workers := w
		var results []bvap.BatchResult
		row := measure(opt.Reps, func() {
			var err error
			results, err = eng.ScanBatch(ctx, pieces, &bvap.BatchOptions{Workers: workers})
			if err != nil {
				panic(err) // background ctx: cannot happen
			}
		})
		for i, r := range results {
			if r.Err != nil {
				return nil, nil, fmt.Errorf("throughput: batch piece %d: %v", i, r.Err)
			}
			if !sameMatches(r.Matches, wantPieces[i]) {
				return nil, nil, fmt.Errorf("throughput: batch-w%d piece %d diverged from sequential scan", workers, i)
			}
		}
		row.Mode, row.Workers = fmt.Sprintf("batch-w%d", workers), workers
		row.Symbols = uint64(len(input))
		row.Matches = pieceMatches
		row.finish(len(input), seq.WallMs)
		res.Rows = append(res.Rows, row)
	}

	for _, w := range opt.Workers {
		if w < 2 {
			continue // chunk parallelism needs >1 worker to be interesting
		}
		for _, c := range opt.Chunks {
			workers, chunk := w, c
			var got []bvap.Match
			row := measure(opt.Reps, func() {
				var err error
				got, err = eng.FindAllParallel(ctx, input, &bvap.ParallelOptions{Workers: workers, ChunkSize: chunk})
				if err != nil {
					panic(err)
				}
			})
			if !sameMatches(got, seqWhole) {
				return nil, nil, fmt.Errorf("throughput: par-w%d-c%d diverged from sequential scan", workers, chunk)
			}
			row.Mode = fmt.Sprintf("par-w%d-c%d", workers, chunk)
			row.Workers, row.Chunk = workers, chunk
			row.Symbols = uint64(len(input))
			row.Matches = uint64(len(seqWhole))
			row.finish(len(input), seq.WallMs)
			res.Rows = append(res.Rows, row)
		}
	}

	return res, throughputBench(opt, res), nil
}

// splitPieces cuts input into n near-equal pieces (fewer when input is
// shorter than n bytes).
func splitPieces(input []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	if n > len(input) {
		n = len(input)
	}
	if n == 0 {
		return [][]byte{input}
	}
	pieces := make([][]byte, 0, n)
	size := (len(input) + n - 1) / n
	for off := 0; off < len(input); off += size {
		end := off + size
		if end > len(input) {
			end = len(input)
		}
		pieces = append(pieces, input[off:end])
	}
	return pieces
}

// measure times fn Reps times and returns a row holding the minimum wall
// time and the allocation count of the final repetition.
func measure(reps int, fn func()) ThroughputRow {
	var row ThroughputRow
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		fn()
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if d < best {
			best = d
		}
		row.Allocs = m1.Mallocs - m0.Mallocs
	}
	row.WallMs = float64(best) / float64(time.Millisecond)
	return row
}

// finish derives the informational rates from the measured wall time.
func (r *ThroughputRow) finish(inputLen int, seqWallMs float64) {
	if r.WallMs > 0 {
		r.MBps = float64(inputLen) / (r.WallMs / 1e3) / 1e6
		r.Speedup = seqWallMs / r.WallMs
	}
}

// sameMatches compares two match slices for exact equality (nil and empty
// both mean "no matches").
func sameMatches(a, b []bvap.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// throughputBench shapes a throughput run as a BENCH-schema report — one
// cell per mode, dataset × mode-label as the cell key — so CI can
// regression-compare the counted metrics (symbols and matches exactly,
// allocations within the bounded threshold) against a committed baseline
// with the ordinary CompareBench machinery. Cycle and energy columns stay
// zero: the software scanner has no hardware model attached.
func throughputBench(opt ThroughputOptions, res *ThroughputResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
		},
	}
	for _, row := range res.Rows {
		rep.Params.Archs = append(rep.Params.Archs, row.Mode)
		rep.Cells = append(rep.Cells, BenchCell{
			Dataset:         res.Dataset,
			Arch:            row.Mode,
			Patterns:        res.Patterns,
			Symbols:         row.Symbols,
			Matches:         row.Matches,
			Allocs:          row.Allocs,
			RunMs:           row.WallMs,
			SimThroughputMB: row.MBps,
		})
	}
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderThroughput prints the throughput table.
func RenderThroughput(w io.Writer, res *ThroughputResult) {
	fmt.Fprintf(w, "Throughput — parallel scan vs sequential (%s, %d bounded-reach patterns, %d dropped, seam window %d B)\n",
		res.Dataset, res.Patterns, res.Dropped, res.SeamWindow)
	fmt.Fprintf(w, "  %-16s %8s %9s %10s %10s %9s %8s\n",
		"mode", "workers", "chunk", "matches", "wall ms", "MB/s", "speedup")
	for _, r := range res.Rows {
		chunk := "-"
		if r.Chunk > 0 {
			chunk = fmt.Sprintf("%d", r.Chunk)
		}
		fmt.Fprintf(w, "  %-16s %8d %9s %10d %10.2f %9.1f %7.2fx\n",
			r.Mode, r.Workers, chunk, r.Matches, r.WallMs, r.MBps, r.Speedup)
	}
	fmt.Fprintln(w)
}
