package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig11Shape(t *testing.T) {
	points, err := Fig11(Fig11Options{
		Ns:       []int{16, 64, 256},
		Alphas:   []float64{0.05, 0.20},
		InputLen: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	get := func(n int, a float64) Fig11Point {
		for _, p := range points {
			if p.N == n && p.Alpha == a {
				return p
			}
		}
		t.Fatalf("missing point n=%d a=%f", n, a)
		return Fig11Point{}
	}
	// Paper shape: for large n BVAP is better on both metrics; both
	// metrics improve as n grows; higher α worsens both.
	for _, a := range []float64{0.05, 0.20} {
		if !(get(256, a).EnergyNorm < get(64, a).EnergyNorm) {
			t.Errorf("alpha %.2f: energy did not improve with n", a)
		}
		if !(get(256, a).DensityNorm > get(64, a).DensityNorm && get(64, a).DensityNorm > get(16, a).DensityNorm) {
			t.Errorf("alpha %.2f: density did not grow with n", a)
		}
	}
	if get(256, 0.05).EnergyNorm >= 1 {
		t.Error("BVAP should beat CAMA on energy at n=256, alpha=5%")
	}
	if get(64, 0.05).EnergyNorm >= 1 {
		t.Error("BVAP should beat CAMA on energy at n=64, alpha=5%")
	}
	if get(64, 0.05).DensityNorm <= 1 {
		t.Error("BVAP should beat CAMA on density at n=64")
	}
	// Higher α hurts both metrics.
	if get(64, 0.20).EnergyNorm <= get(64, 0.05).EnergyNorm {
		t.Error("energy should worsen with α")
	}
	if get(64, 0.20).DensityNorm >= get(64, 0.05).DensityNorm {
		t.Error("density should worsen with α")
	}
}

func TestFig12Shape(t *testing.T) {
	points, err := Fig12(Fig12Options{Ms: []int{64, 512}, InputLen: 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Paper: BVAP consistently consumes less energy than CNT, and
		// both beat CAMA on this workload; BVAP has higher compute
		// density than CNT for m ≤ 512.
		if p.BVAPEnergyNorm >= p.CNTEnergyNorm {
			t.Errorf("m=%d: BVAP energy %.3f ≥ CNT %.3f", p.M, p.BVAPEnergyNorm, p.CNTEnergyNorm)
		}
		if p.BVAPEnergyNorm >= 1 {
			t.Errorf("m=%d: BVAP energy ≥ CAMA", p.M)
		}
		if p.BVAPDensityNorm <= p.CNTDensityNorm {
			t.Errorf("m=%d: BVAP density %.3f ≤ CNT %.3f", p.M, p.BVAPDensityNorm, p.CNTDensityNorm)
		}
	}
}

func TestFig13AndTable5(t *testing.T) {
	points, err := Fig13(DSEOptions{
		BVSizes:   []int{16, 64},
		UnfoldThs: []int{4, 12},
		Sample:    30,
		InputLen:  800,
		Datasets:  []string{"Prosite", "Snort"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*2*2 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	best := Table5(points)
	if len(best) != 2 {
		t.Fatalf("best = %d datasets", len(best))
	}
	for _, b := range best {
		// The selected FoM must be the minimum of its dataset's cells.
		for _, p := range points {
			if p.Dataset == b.Dataset && p.FoMNorm < b.FoMNorm {
				t.Errorf("%s: Table5 picked %.3f but %.3f exists", b.Dataset, b.FoMNorm, p.FoMNorm)
			}
		}
	}
}

func TestFig14AndSummary(t *testing.T) {
	rows, err := Fig14(Fig14Options{
		Sample:   30,
		InputLen: 1200,
		Datasets: []string{"Snort", "SpamAssassin"},
		Params: map[string]BestParams{
			"Snort":        {BVSize: 64, UnfoldTh: 12},
			"SpamAssassin": {BVSize: 16, UnfoldTh: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, arch := range []string{"BVAP", "BVAP-S", "CAMA", "eAP", "CA"} {
			if _, ok := row.Points[arch]; !ok {
				t.Fatalf("%s: missing %s", row.Dataset, arch)
			}
		}
		// CA normalizes to 1.0 everywhere.
		ca := row.Norm["CA"]
		if ca.EnergyPerSymbolNJ != 1 || ca.AreaMm2 != 1 || ca.FoM != 1 {
			t.Fatalf("%s: CA normalization wrong: %+v", row.Dataset, ca)
		}
		// On the counting-heavy Snort profile, BVAP must beat every
		// baseline on energy and FoM.
		if row.Dataset == "Snort" {
			b := row.Norm["BVAP"]
			if b.EnergyPerSymbolNJ >= row.Norm["CAMA"].EnergyPerSymbolNJ {
				t.Error("Snort: BVAP energy ≥ CAMA")
			}
			if b.FoM >= row.Norm["CAMA"].FoM {
				t.Error("Snort: BVAP FoM ≥ CAMA")
			}
			if b.AreaMm2 >= row.Norm["CAMA"].AreaMm2 {
				t.Error("Snort: BVAP area ≥ CAMA")
			}
		}
	}
	s := Summarize(rows)
	if s.EnergyReductionVsCA < 0.5 {
		t.Errorf("energy reduction vs CA = %.2f, expected large", s.EnergyReductionVsCA)
	}
	if s.SEnergySaving <= 0 || s.SThroughputLoss <= 0 {
		t.Errorf("BVAP-S tradeoff wrong: %+v", s)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderFig11(&buf, []Fig11Point{{N: 16, Alpha: 0.05, EnergyNorm: 0.5, DensityNorm: 2}})
	RenderFig12(&buf, []Fig12Point{{M: 64, BVAPEnergyNorm: 0.4, CNTEnergyNorm: 0.8, BVAPDensityNorm: 3, CNTDensityNorm: 1.5}})
	RenderFig13(&buf, []DSEPoint{{Dataset: "Snort", BVSize: 64, UnfoldTh: 8, DensityNorm: 1.2, EDPNorm: 0.4, FoMNorm: 0.1}})
	RenderTable5(&buf, []BestParams{{Dataset: "Snort", BVSize: 64, UnfoldTh: 12, FoMNorm: 0.1}})
	RenderSummary(&buf, Summary{EnergyReductionVsCAMA: 0.67})
	out := buf.String()
	for _, want := range []string{"Figure 11", "Figure 12", "Figure 13", "Table 5", "Summary", "Snort"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestMicroInputAlpha(t *testing.T) {
	in := microInput(3, 50000, 0.10, 64, 'a')
	aCount := 0
	for _, b := range in {
		if b == 'a' {
			aCount++
		}
	}
	frac := float64(aCount) / float64(len(in))
	// Runs of 16+64 a's at density ~α(1+16/64).
	if frac < 0.05 || frac > 0.25 {
		t.Fatalf("a-fraction = %.3f, not near 0.125", frac)
	}
}

func TestCommonSubsetFilters(t *testing.T) {
	patterns := []string{"abc", "a.{8000}b", "x{3}y"}
	out := commonSubset(patterns)
	if len(out) != 2 {
		t.Fatalf("common subset = %v", out)
	}
	for _, p := range out {
		if p == "a.{8000}b" {
			t.Fatal("baseline-unsupported pattern survived")
		}
	}
}

func TestStride2Experiment(t *testing.T) {
	rows, err := Stride2(Stride2Options{
		Sample:   15,
		InputLen: 600,
		Datasets: []string{"RegexLib", "Prosite"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.States1 == 0 || r.States2 <= r.States1 {
			t.Fatalf("%s: states %d -> %d", r.Dataset, r.States1, r.States2)
		}
		if r.Expansion <= 1 {
			t.Fatalf("%s: expansion %.2f", r.Dataset, r.Expansion)
		}
		if r.ThroughputGain != 2 {
			t.Fatalf("%s: throughput gain %.1f", r.Dataset, r.ThroughputGain)
		}
	}
	var buf bytes.Buffer
	RenderStride2(&buf, rows)
	if !strings.Contains(buf.String(), "2-stride") {
		t.Fatal("render output wrong")
	}
}
