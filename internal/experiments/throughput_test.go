package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallTPOpts keeps the experiment CI-test sized.
func smallTPOpts() ThroughputOptions {
	return ThroughputOptions{
		Dataset:  "Snort",
		Sample:   12,
		InputLen: 1 << 15,
		Inputs:   8,
		Workers:  []int{1, 2},
		Chunks:   []int{2048},
		Reps:     1,
	}
}

func TestThroughputRowsAndEquivalence(t *testing.T) {
	res, rep, err := Throughput(smallTPOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns == 0 {
		t.Fatal("no bounded-reach patterns survived the filter")
	}
	// Expected modes: seq, batch-w1, batch-w2, par-w2-c2048.
	want := []string{"seq", "batch-w1", "batch-w2", "par-w2-c2048"}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d (%+v)", len(res.Rows), len(want), res.Rows)
	}
	for i, mode := range want {
		if res.Rows[i].Mode != mode {
			t.Fatalf("row %d mode = %q, want %q", i, res.Rows[i].Mode, mode)
		}
		if res.Rows[i].Symbols != uint64(smallTPOpts().InputLen) {
			t.Fatalf("row %q symbols = %d, want %d", mode, res.Rows[i].Symbols, smallTPOpts().InputLen)
		}
	}
	// Batch rows scan the same corpus piece-wise: they agree with each
	// other; chunk rows agree with seq exactly (equivalence is asserted
	// inside Throughput; this pins the reported counters too).
	if res.Rows[1].Matches != res.Rows[2].Matches {
		t.Fatalf("batch rows disagree: %d vs %d", res.Rows[1].Matches, res.Rows[2].Matches)
	}
	if res.Rows[3].Matches != res.Rows[0].Matches {
		t.Fatalf("par row matches %d, seq %d", res.Rows[3].Matches, res.Rows[0].Matches)
	}
	// Bench shaping: one cell per row, counted metrics carried over.
	if len(rep.Cells) != len(res.Rows) {
		t.Fatalf("bench cells = %d, want %d", len(rep.Cells), len(res.Rows))
	}
	for i, c := range rep.Cells {
		if c.Arch != res.Rows[i].Mode || c.Symbols != res.Rows[i].Symbols || c.Matches != res.Rows[i].Matches {
			t.Fatalf("cell %d mismatch: %+v vs %+v", i, c, res.Rows[i])
		}
	}
}

func TestThroughputDeterministicCountedMetrics(t *testing.T) {
	r1, b1, err := Throughput(smallTPOpts())
	if err != nil {
		t.Fatal(err)
	}
	r2, b2, err := Throughput(smallTPOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rows {
		if r1.Rows[i].Symbols != r2.Rows[i].Symbols || r1.Rows[i].Matches != r2.Rows[i].Matches {
			t.Fatalf("counted metrics not deterministic for %q", r1.Rows[i].Mode)
		}
	}
	// A report self-compares clean under CompareBench (symbols/matches
	// exact; allocs within threshold by construction on identical runs).
	if regs := CompareBench(b2, b1, Thresholds{AllocsFrac: 3}); len(regs) != 0 {
		t.Fatalf("self-compare regressions: %v", regs)
	}
}

func TestRenderThroughput(t *testing.T) {
	res, _, err := Throughput(smallTPOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderThroughput(&buf, res)
	out := buf.String()
	for _, want := range []string{"Throughput", "seq", "batch-w2", "par-w2-c2048", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
