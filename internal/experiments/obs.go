package experiments

// The obs experiment measures the cost of the observability layer itself,
// in three cells:
//
//   - disabled (counted): allocations per operation of the full tracing
//     surface — StartTrace/StartSpan/attr setters/End/Record — against a
//     nil flight recorder. The serve path runs this code on every scan
//     whether or not tracing is enabled, so the disabled path is required
//     to be allocation-free; the cell's alloc count is a counted metric
//     pinned at zero (any baseline comparison regresses if it grows).
//   - overhead (informational): the same scan workload through two
//     identically configured services, one with a flight recorder attached
//     and one without; the throughput delta is the live cost of tracing.
//     Wall-clock and load dependent, never baseline-compared.
//   - energy (counted): a simulation run with the tracing energy sink
//     attached must partition its energy so the per-stage vector sums
//     bit-exactly to the hardware model's Stats.TotalEnergyPJ(). The
//     partition total and per-stage split are counted metrics.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"bvap"
	"bvap/internal/datasets"
	"bvap/internal/tracing"
)

// ObsOptions parameterizes the observability-overhead experiment. Zero
// values select a CI-smoke-sized run.
type ObsOptions struct {
	Dataset   string // default "Snort"
	Sample    int    // patterns sampled (default 20)
	InputLen  int    // bytes per scan (default 64 KiB)
	Scans     int    // timed scans per side per round (default 32)
	Rounds    int    // alternating measurement rounds (default 3)
	AllocRuns int    // testing.AllocsPerRun rounds for the disabled cell (default 100)
}

func (o *ObsOptions) fill() {
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 20
	}
	if o.InputLen == 0 {
		o.InputLen = 64 << 10
	}
	if o.Scans == 0 {
		o.Scans = 32
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.AllocRuns == 0 {
		o.AllocRuns = 100
	}
}

// ObsResult is the experiment's structured output.
type ObsResult struct {
	Dataset  string `json:"dataset"`
	Patterns int    `json:"patterns"`

	// Disabled path (counted, must be zero).
	DisabledAllocsPerOp float64 `json:"disabled_allocs_per_op"`

	// Live overhead (informational).
	ScansPerSide   int     `json:"scans_per_side"`
	UntracedMBps   float64 `json:"untraced_mb_s"`
	TracedMBps     float64 `json:"traced_mb_s"`
	OverheadPct    float64 `json:"overhead_pct"`
	TracesRecorded uint64  `json:"traces_recorded"`
	SpansPerTrace  int     `json:"spans_per_trace"`

	// Energy partition exactness (counted).
	EnergySymbols    uint64  `json:"energy_symbols"`
	EnergyMatches    uint64  `json:"energy_matches"`
	EnergyStatsPJ    float64 `json:"energy_stats_pj"`
	EnergyTracePJ    float64 `json:"energy_trace_pj"`
	EnergyExact      bool    `json:"energy_exact"`
	EnergyStageCount int     `json:"energy_stage_count"`
}

// Obs measures the observability layer's own cost and returns the
// structured result plus a BENCH-schema report. It fails outright when the
// disabled path allocates or the energy partition is inexact — those are
// contracts, not measurements.
func Obs(opt ObsOptions) (*ObsResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	patterns := prof.Sample(opt.Sample)
	input := prof.Input(opt.InputLen, patterns)
	res := &ObsResult{Dataset: opt.Dataset, Patterns: len(patterns), ScansPerSide: opt.Scans * opt.Rounds}

	if err := obsDisabledAllocs(opt, res); err != nil {
		return nil, nil, err
	}
	if err := obsOverhead(opt, patterns, input, res); err != nil {
		return nil, nil, err
	}
	if err := obsEnergyExact(patterns, input, res); err != nil {
		return nil, nil, err
	}
	return res, obsBench(opt, res), nil
}

// obsDisabledAllocs pins the nil-recorder tracing surface at zero
// allocations per operation — the same contract the unit test
// TestTracingDisabledPathAllocationFree enforces, measured here so a
// baseline comparison also catches it.
func obsDisabledAllocs(opt ObsOptions, res *ObsResult) error {
	var rec *tracing.Recorder
	ctx := context.Background()
	work := func() {
		tctx, tr := rec.StartTrace(ctx, "obs.disabled")
		tr.SetInt("input_bytes", 4096)
		tr.SetStr("outcome", "ok")
		sctx, sp := tracing.StartSpan(tctx, "scan")
		_, shard := tracing.StartSpan(sctx, "shard")
		shard.SetInt("matches", 0)
		shard.End()
		sp.End()
		tr.SetEnergyEstimate(1.5)
		_ = tr.IDString()
		rec.Record(tr)
	}
	work() // warm up any lazy runtime state outside the measured runs
	res.DisabledAllocsPerOp = testing.AllocsPerRun(opt.AllocRuns, work)
	if res.DisabledAllocsPerOp != 0 {
		return fmt.Errorf("obs: disabled tracing path allocates %.1f per op, want 0", res.DisabledAllocsPerOp)
	}
	return nil
}

// obsOverhead times the same scan workload with and without a flight
// recorder attached, alternating rounds to share thermal/scheduler noise,
// and keeps each side's best round.
func obsOverhead(opt ObsOptions, patterns []string, input []byte, res *ObsResult) error {
	newSvc := func(rec *tracing.Recorder) (*bvap.Service, error) {
		return bvap.NewService(patterns, &bvap.ServiceConfig{FlightRecorder: rec})
	}
	plain, err := newSvc(nil)
	if err != nil {
		return fmt.Errorf("obs: compile: %v", err)
	}
	defer plain.Close()
	rec := tracing.NewRecorder(tracing.Config{Capacity: 256})
	traced, err := newSvc(rec)
	if err != nil {
		return err
	}
	defer traced.Close()

	ctx := context.Background()
	side := func(svc *bvap.Service) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < opt.Scans; i++ {
			if _, err := svc.Scan(ctx, input); err != nil {
				return 0, fmt.Errorf("obs: scan: %v", err)
			}
		}
		return time.Since(start), nil
	}
	// Warm-up pass on both sides before timing anything.
	if _, err := side(plain); err != nil {
		return err
	}
	if _, err := side(traced); err != nil {
		return err
	}
	bestPlain, bestTraced := time.Duration(0), time.Duration(0)
	for r := 0; r < opt.Rounds; r++ {
		dp, err := side(plain)
		if err != nil {
			return err
		}
		dt, err := side(traced)
		if err != nil {
			return err
		}
		if bestPlain == 0 || dp < bestPlain {
			bestPlain = dp
		}
		if bestTraced == 0 || dt < bestTraced {
			bestTraced = dt
		}
	}

	bytesPerSide := float64(opt.Scans) * float64(len(input))
	res.UntracedMBps = bytesPerSide / (1 << 20) / bestPlain.Seconds()
	res.TracedMBps = bytesPerSide / (1 << 20) / bestTraced.Seconds()
	if res.UntracedMBps > 0 {
		res.OverheadPct = (1 - res.TracedMBps/res.UntracedMBps) * 100
	}
	res.TracesRecorded = rec.Recorded()
	if recent := rec.Recent(); len(recent) > 0 {
		res.SpansPerTrace = len(recent[0].View().Spans)
	}
	if res.TracesRecorded == 0 {
		return fmt.Errorf("obs: traced service recorded no traces")
	}
	return nil
}

// obsEnergyExact runs one simulation with the tracing energy sink attached
// and requires the recorded per-stage partition to sum bit-exactly to the
// hardware model's total.
func obsEnergyExact(patterns []string, input []byte, res *ObsResult) error {
	engine, err := bvap.Compile(patterns)
	if err != nil {
		return err
	}
	sim, err := engine.NewSimulator(bvap.ArchBVAP)
	if err != nil {
		return err
	}
	sink := sim.TraceEnergy()
	sim.Run(input)
	r := sim.Result() // finalize: charges terminal leakage and I/O
	st := sim.Stats()

	tr := tracing.NewTrace("obs.energy")
	sink.Finish(tr, st)
	p, ok := tr.Energy()
	if !ok {
		return fmt.Errorf("obs: energy sink recorded no partition")
	}
	res.EnergySymbols = r.Symbols
	res.EnergyMatches = r.Matches
	res.EnergyStatsPJ = st.TotalEnergyPJ()
	res.EnergyTracePJ = p.Sum()
	res.EnergyStageCount = len(p.ByStage())
	res.EnergyExact = p.Sum() == st.TotalEnergyPJ() && p.TotalPJ == st.TotalEnergyPJ()
	if !res.EnergyExact {
		return fmt.Errorf("obs: partition sum %v != stats total %v", p.Sum(), st.TotalEnergyPJ())
	}
	return nil
}

// obsBench shapes the run as a BENCH-schema report: the disabled cell's
// alloc count and the energy cell's symbols/matches/energy are counted;
// the overhead cell carries informational throughput only.
func obsBench(opt ObsOptions, res *ObsResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
			Archs:    []string{"obs-disabled", "obs-traced", "obs-energy"},
		},
	}
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  res.Dataset,
		Arch:     "obs-disabled",
		Patterns: res.Patterns,
		Allocs:   uint64(res.DisabledAllocsPerOp),
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:         res.Dataset,
		Arch:            "obs-traced",
		Patterns:        res.Patterns,
		SimThroughputMB: res.TracedMBps,
		Stalls: map[string]uint64{
			"scans_per_side":  uint64(res.ScansPerSide),
			"traces_recorded": res.TracesRecorded,
			"spans_per_trace": uint64(res.SpansPerTrace),
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  res.Dataset,
		Arch:     "obs-energy",
		Patterns: res.Patterns,
		Symbols:  res.EnergySymbols,
		Matches:  res.EnergyMatches,
		EnergyPJ: res.EnergyTracePJ,
	})
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderObs prints the observability-overhead summary.
func RenderObs(w io.Writer, res *ObsResult) {
	fmt.Fprintf(w, "Obs — tracing overhead (%s, %d patterns)\n", res.Dataset, res.Patterns)
	fmt.Fprintf(w, "  disabled: %.1f allocs/op across the full tracing surface (contract: 0)\n",
		res.DisabledAllocsPerOp)
	fmt.Fprintf(w, "  traced:   %.1f MB/s vs %.1f MB/s untraced — %.2f%% overhead over %d scans/side\n",
		res.TracedMBps, res.UntracedMBps, res.OverheadPct, res.ScansPerSide)
	fmt.Fprintf(w, "            %d traces recorded, %d spans on the latest\n",
		res.TracesRecorded, res.SpansPerTrace)
	fmt.Fprintf(w, "  energy:   partition %.6g pJ over %d stages == stats %.6g pJ (exact=%v)\n",
		res.EnergyTracePJ, res.EnergyStageCount, res.EnergyStatsPJ, res.EnergyExact)
}
