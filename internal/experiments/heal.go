package experiments

// The heal soak is the self-healing fleet's proof: N in-process bvapd
// nodes under gossip membership, M concurrent BVAP-S streams, a standby
// node joining mid-run and a node force-killed mid-stream — WITHOUT any
// driver-side migration. Unlike the cluster soak (where the driver holds
// the wire checkpoint and re-places streams itself), the heal driver
// persists nothing but a position and a match log: recovery is entirely
//
//	owner := GET /cluster/ring?key=id        (any live node)
//	POST owner /cluster/session/sync {id, have}
//
// and the fleet supplies the durable bytes from replicated checkpoint
// records (R-way chain replication at quorum), re-delivering the match
// delta past the driver's durable position. The counted claim: across a
// join (ownership hand-off) and a kill (orphan adoption), every stream's
// delivered log equals the origin engine's uninterrupted FindAll, byte
// for byte, with zero checkpoint loss, and survivor membership converges
// (equal epochs, victim dead) within the probe-interval bound.
//
// With -heal-inject-loss the replication factor drops to 1, so killing a
// stream's owner destroys the only durable record: the soak must then
// fail loudly (the driver's sync answers 404 checkpoint-loss), which CI
// pins as a non-zero exit — the failure detector's failure detector.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"time"

	"bvap"
	"bvap/internal/cluster"
	"bvap/internal/datasets"
	"bvap/internal/serve"
)

// HealSoakOptions parameterizes the self-healing soak. Zero values select
// a CI-smoke-sized run (a few seconds under -race).
type HealSoakOptions struct {
	Nodes           int    // initial fleet size (default 3)
	Streams         int    // concurrent sessions (default 6)
	Dataset         string // pattern source (default "Snort")
	Sample          int    // patterns sampled (default 12)
	InputLen        int    // per-stream corpus bytes (default 32 KiB)
	ChunkLen        int    // feed granularity (default 1500)
	CheckpointEvery int    // chunks between durable checkpoints (default 3)
	Interval        int    // session commit interval in symbols (default 1024)
	Kills           int    // forced node kills mid-stream (default 1)
	Joins           int    // standby nodes joining mid-stream (default 1)
	Replicas        int    // checkpoint replication factor R (default 2)
	InjectLoss      bool   // force R=1 so a kill loses checkpoints (must fail)

	ProbeInterval  time.Duration // membership probe cadence (default 20ms)
	SuspectTimeout time.Duration // suspect → dead (default 3× probe)
}

func (o *HealSoakOptions) fill() {
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.Streams == 0 {
		o.Streams = 6
	}
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 12
	}
	if o.InputLen == 0 {
		o.InputLen = 32 << 10
	}
	if o.ChunkLen == 0 {
		o.ChunkLen = 1500
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 3
	}
	if o.Interval == 0 {
		o.Interval = 1024
	}
	if o.Kills == 0 {
		o.Kills = 1
	}
	if o.Kills > o.Nodes-1 {
		o.Kills = o.Nodes - 1
	}
	if o.Joins == 0 {
		o.Joins = 1
	}
	if o.Joins > 0 && o.Kills > 0 && o.Streams < 2 {
		o.Streams = 2 // the join and the kill each pin their own stream
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.InjectLoss {
		o.Replicas = 1
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 20 * time.Millisecond
	}
	if o.SuspectTimeout == 0 {
		o.SuspectTimeout = 3 * o.ProbeInterval
	}
}

// HealSoakResult is the experiment's structured output.
type HealSoakResult struct {
	Nodes    int `json:"nodes"`
	Joins    int `json:"joins"`
	Kills    int `json:"kills"`
	Streams  int `json:"streams"`
	Patterns int `json:"patterns"`
	Replicas int `json:"replicas"`

	// Exactly-once correctness across the join and the kill (counted).
	StreamSymbols    uint64 `json:"stream_symbols"`
	StreamReports    uint64 `json:"stream_reports"`
	ReferenceReports uint64 `json:"reference_reports"`
	ReportsExact     bool   `json:"reports_exact"`

	// Self-healing movements, summed over survivors' NodeHealth.
	Handoffs   uint64 `json:"handoffs"`
	Adoptions  uint64 `json:"adoptions"`
	Recoveries int    `json:"recoveries"` // driver-side sync recoveries

	// Membership convergence after the kill: survivors agree on epoch
	// with the victim dead, within BoundMillis.
	ConvergeMillis int64  `json:"converge_millis"`
	BoundMillis    int64  `json:"bound_millis"`
	FinalEpoch     uint64 `json:"final_epoch"`

	// Hygiene on survivors after every stream closed.
	SessionsLeft int   `json:"sessions_left"`
	StreamsOut   int64 `json:"streams_out"`
}

// healSentinel is planted in the served set so every corpus is guaranteed
// matches that cross chunk and checkpoint boundaries.
const healSentinel = "hlsoak{2}z"

// healMember is one in-process fleet member: service + gossip membership
// + node surface, with the membership probe loop and the rebalancer
// running, exactly as bvapd wires them.
type healMember struct {
	id     string
	svc    *bvap.Service
	node   *cluster.Node
	mem    *cluster.Membership
	srv    *httptest.Server
	origin *bvap.Engine
	cancel context.CancelFunc
}

// healSoakFleet tracks liveness for the driver side (which node to ask
// for ring views) and the chaos schedule (who may be killed).
type healSoakFleet struct {
	mu      sync.RWMutex
	live    map[string]*healMember // by base URL
	all     []*healMember
	drv     *cluster.Client // driver client: one attempt, no retries
	replica int
	// deadHandoffs/deadAdoptions snapshot a victim's lifetime counters at
	// kill time — the node that performed a hand-off may itself be killed
	// later, and its movements still count.
	deadHandoffs, deadAdoptions uint64
}

func (f *healSoakFleet) liveURLs() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	urls := make([]string, 0, len(f.live))
	for u := range f.live {
		urls = append(urls, u)
	}
	return urls
}

func (f *healSoakFleet) liveMembers() []*healMember {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ms := make([]*healMember, 0, len(f.live))
	for _, m := range f.live {
		ms = append(ms, m)
	}
	return ms
}

// kill severs a member without ceremony: connections cut, server down,
// loops cancelled. The ring is NOT touched — the membership layer must
// notice on its own; that is the point of the experiment.
func (f *healSoakFleet) kill(url string) *healMember {
	f.mu.Lock()
	m := f.live[url]
	delete(f.live, url)
	if m != nil {
		h := m.node.Health()
		f.deadHandoffs += h.Handoffs
		f.deadAdoptions += h.Adoptions
	}
	f.mu.Unlock()
	if m == nil {
		return nil
	}
	m.srv.CloseClientConnections()
	m.srv.Close()
	m.cancel()
	m.node.Close()
	m.svc.Close()
	return m
}

func newHealMember(i int, patterns []string, opt HealSoakOptions) (*healMember, error) {
	svc, err := bvap.NewService(patterns, nil)
	if err != nil {
		return nil, fmt.Errorf("heal soak: node %d compile: %v", i, err)
	}
	var node *cluster.Node
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		node.Handler().ServeHTTP(w, r)
	}))
	client := cluster.NewClient(cluster.ClientConfig{
		MaxAttempts:    1,
		AttemptTimeout: 10 * time.Second,
		Backoff:        serve.Backoff{Base: 2 * time.Millisecond, Jitter: -1},
		Breaker:        serve.BreakerConfig{Threshold: 1 << 20},
	})
	mem := cluster.NewMembership(cluster.MembershipConfig{
		Self:           srv.URL,
		ProbeInterval:  opt.ProbeInterval,
		SuspectTimeout: opt.SuspectTimeout,
		Client:         client,
	})
	client.SetMembership(mem)
	node = cluster.NewNode(svc, cluster.NodeConfig{
		ID:                fmt.Sprintf("heal-%d", i),
		Membership:        mem,
		Client:            client,
		Replicas:          opt.Replicas,
		RebalanceInterval: 50 * time.Millisecond,
	})
	mem.SetOnChange(node.WakeRebalance)
	ctx, cancel := context.WithCancel(context.Background())
	go mem.Run(ctx)
	go node.RunRebalancer(ctx)
	return &healMember{
		id: fmt.Sprintf("heal-%d", i), svc: svc, node: node, mem: mem,
		srv: srv, origin: svc.Engine(), cancel: cancel,
	}, nil
}

// waitHealConverge polls the live members until every one's ring holds
// exactly want with equal epochs, returning the converged epoch.
func waitHealConverge(live []*healMember, want []string, deadline time.Duration) (uint64, error) {
	limit := time.Now().Add(deadline)
	for {
		ok := true
		var epoch uint64
		for _, m := range live {
			set := m.mem.Ring().Nodes()
			if len(set) != len(want) {
				ok = false
				break
			}
			for _, u := range want {
				if st, known := m.mem.State(u); !known || st != cluster.StateAlive {
					ok = false
				}
			}
			if epoch == 0 {
				epoch = m.mem.Epoch()
			} else if m.mem.Epoch() != epoch {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			return epoch, nil
		}
		if time.Now().After(limit) {
			views := make([]string, 0, len(live))
			for _, m := range live {
				views = append(views, fmt.Sprintf("%s: ring=%v epoch=%d", m.srv.URL, m.mem.Ring().Nodes(), m.mem.Epoch()))
			}
			return 0, fmt.Errorf("membership did not converge to %d members within %v: %v", len(want), deadline, views)
		}
		time.Sleep(time.Millisecond)
	}
}

// HealSoak runs the self-healing soak and returns the structured result
// plus a BENCH-schema report (the correctness cell is counted; the
// membership cell is informational).
func HealSoak(opt HealSoakOptions) (*HealSoakResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	patterns := append([]string{healSentinel}, prof.Sample(opt.Sample)...)
	res := &HealSoakResult{
		Nodes: opt.Nodes, Joins: opt.Joins, Kills: opt.Kills,
		Streams: opt.Streams, Patterns: len(patterns), Replicas: opt.Replicas,
	}

	fleet := &healSoakFleet{
		live:    map[string]*healMember{},
		replica: opt.Replicas,
		drv: cluster.NewClient(cluster.ClientConfig{
			MaxAttempts:    1,
			AttemptTimeout: 10 * time.Second,
			Breaker:        serve.BreakerConfig{Threshold: 1 << 20},
		}),
	}
	// Bring up the initial fleet plus the standby joiners; standbys serve
	// and gossip with themselves only until the chaos schedule joins them.
	for i := 0; i < opt.Nodes+opt.Joins; i++ {
		m, err := newHealMember(i, patterns, opt)
		if err != nil {
			return nil, nil, err
		}
		fleet.all = append(fleet.all, m)
		fleet.mu.Lock()
		if i < opt.Nodes {
			fleet.live[m.srv.URL] = m
		}
		fleet.mu.Unlock()
	}
	defer func() {
		for _, m := range fleet.all {
			fleet.kill(m.srv.URL) // idempotent; standbys keyed in on join
			m.srv.Close()
			m.cancel()
			m.svc.Close()
		}
	}()
	initial := fleet.all[:opt.Nodes]
	standby := fleet.all[opt.Nodes:]
	for _, m := range initial[1:] {
		if err := m.mem.Join(context.Background(), []string{initial[0].srv.URL}); err != nil {
			return nil, nil, fmt.Errorf("heal soak: bring-up join: %w", err)
		}
	}
	initialURLs := make([]string, len(initial))
	for i, m := range initial {
		initialURLs[i] = m.srv.URL
	}
	if _, err := waitHealConverge(initial, initialURLs, 15*time.Second); err != nil {
		return nil, nil, fmt.Errorf("heal soak: bring-up: %w", err)
	}

	// Stream ids: pick the first Streams candidates, then make sure at
	// least one id's ownership MOVES to the first standby when it joins —
	// that stream forces a hand-off rather than leaving it to vnode luck.
	ids := make([]string, 0, opt.Streams)
	for i := 0; len(ids) < opt.Streams; i++ {
		ids = append(ids, fmt.Sprintf("heal-stream-%d", i))
	}
	if len(standby) > 0 {
		ringInit, ringFull := cluster.NewRing(0), cluster.NewRing(0)
		for _, m := range initial {
			ringInit.Add(m.srv.URL)
			ringFull.Add(m.srv.URL)
		}
		for _, m := range standby {
			ringFull.Add(m.srv.URL)
		}
		moves := func(id string) bool {
			return ringFull.Owner(id) == standby[0].srv.URL && ringInit.Owner(id) != standby[0].srv.URL
		}
		// The kill is pinned to ids[0]: a join-stable owner guarantees that
		// node holds the session AND heads its replication chain for the
		// stream's whole life, so with R=1 killing it provably destroys
		// the only durable record.
		stable := func(id string) bool {
			return ringFull.Owner(id) == ringInit.Owner(id)
		}
		if !stable(ids[0]) {
			for i := 0; i < 100000; i++ {
				if cand := fmt.Sprintf("heal-stream-s%d", i); stable(cand) {
					ids[0] = cand
					break
				}
			}
		}
		if !moves(ids[len(ids)-1]) {
			found := false
			for i := 0; !found && i < 100000; i++ {
				if cand := fmt.Sprintf("heal-stream-x%d", i); moves(cand) {
					ids[len(ids)-1] = cand
					found = true
				}
			}
			if !found {
				return nil, nil, errors.New("heal soak: no candidate key moves to the joining node")
			}
		}
	}

	// Per-stream corpora and oracles, as in the cluster soak: rotations
	// of one generated corpus against the origin engine's FindAll.
	base := prof.Input(opt.InputLen, patterns)
	origin := initial[0].origin
	corpora := make([][]byte, opt.Streams)
	oracles := make([][]bvap.Match, opt.Streams)
	for i := range corpora {
		rot := (i * 1013) % len(base)
		corpora[i] = append(append([]byte{}, base[rot:]...), base[:rot]...)
		oracles[i] = origin.FindAll(corpora[i])
		res.StreamSymbols += uint64(len(corpora[i]))
		res.ReferenceReports += uint64(len(oracles[i]))
	}

	if err := runHealStreams(opt, fleet, standby, ids, corpora, oracles, res); err != nil {
		return nil, nil, err
	}

	// Hygiene: every stream closed, so survivors must hold no sessions
	// and no checked-out pooled streams.
	for _, m := range fleet.liveMembers() {
		h := m.node.Health()
		res.SessionsLeft += h.Sessions
		res.Handoffs += h.Handoffs
		res.Adoptions += h.Adoptions
		res.StreamsOut += m.origin.StreamsOut()
		if h.Epoch > res.FinalEpoch {
			res.FinalEpoch = h.Epoch
		}
	}
	fleet.mu.RLock()
	res.Handoffs += fleet.deadHandoffs
	res.Adoptions += fleet.deadAdoptions
	fleet.mu.RUnlock()
	if res.SessionsLeft != 0 {
		return nil, nil, fmt.Errorf("heal soak: %d sessions still live on survivors after close", res.SessionsLeft)
	}
	if res.StreamsOut != 0 {
		return nil, nil, fmt.Errorf("heal soak: %d pooled streams still checked out on survivors", res.StreamsOut)
	}
	if opt.Joins > 0 && res.Handoffs == 0 {
		return nil, nil, errors.New("heal soak: a join moved ownership but no session was handed off")
	}
	if opt.Kills > 0 && res.Recoveries == 0 {
		return nil, nil, errors.New("heal soak: a node was killed but no driver ran sync recovery")
	}
	return res, healBench(opt, res), nil
}

// healGate is a driver↔chaos rendezvous pinning one chaos event to one
// mid-flight stream: the gated driver parks right after its first durable
// checkpoint (closing ready) and resumes only once the event — join plus
// hand-off, or kill plus convergence — has actually happened (done). This
// is what makes the soak deterministic rather than a race between fast
// streams and a progress-sampling chaos loop.
type healGate struct {
	readyOnce, doneOnce sync.Once
	ready, done         chan struct{}
}

func newHealGate() *healGate {
	return &healGate{ready: make(chan struct{}), done: make(chan struct{})}
}

// arrive parks the driver until the gated event completes.
func (g *healGate) arrive() {
	g.readyOnce.Do(func() { close(g.ready) })
	<-g.done
}

func (g *healGate) release() { g.doneOnce.Do(func() { close(g.done) }) }

// runHealStreams drives all streams while the chaos goroutine joins the
// standby (pinned to the stream whose ownership moves) and kills the
// owner of the kill-pinned stream mid-flight.
func runHealStreams(opt HealSoakOptions, fleet *healSoakFleet, standby []*healMember, ids []string, corpora [][]byte, oracles [][]bvap.Match, res *HealSoakResult) error {
	type streamOut struct {
		log        []cluster.Match
		recoveries int
		err        error
	}
	outs := make([]streamOut, len(ids))

	var progressMu sync.Mutex
	addProgress := func(int) {}

	// Gates: the engineered moving stream (last id) pins the join; stream
	// 0 pins the kill — its owner at kill time provably holds a live
	// mid-flight session with durable progress.
	var moveGate, killGate *healGate
	if opt.Joins > 0 {
		moveGate = newHealGate()
	}
	if opt.Kills > 0 {
		killGate = newHealGate()
	}
	gates := make([]*healGate, len(ids))
	if killGate != nil {
		gates[0] = killGate
	}
	if moveGate != nil {
		gates[len(ids)-1] = moveGate
	}

	sumHandoffs := func() uint64 {
		var total uint64
		for _, m := range fleet.liveMembers() {
			total += m.node.Health().Handoffs
		}
		return total
	}

	stop := make(chan struct{})
	chaosErr := make(chan error, 1)
	go func() {
		defer close(chaosErr)
		defer func() {
			if moveGate != nil {
				moveGate.release()
			}
			if killGate != nil {
				killGate.release()
			}
		}()
		for j := 0; j < opt.Joins; j++ {
			if j == 0 && moveGate != nil {
				select { // wait for the pinned stream's durable checkpoint
				case <-moveGate.ready:
				case <-stop:
				}
			}
			m := standby[j]
			if err := m.mem.Join(context.Background(), fleet.liveURLs()); err != nil {
				chaosErr <- fmt.Errorf("heal soak: standby join: %w", err)
				return
			}
			fleet.mu.Lock()
			fleet.live[m.srv.URL] = m
			fleet.mu.Unlock()
			if _, err := waitHealConverge(fleet.liveMembers(), fleet.liveURLs(), 15*time.Second); err != nil {
				chaosErr <- fmt.Errorf("heal soak: post-join: %w", err)
				return
			}
			if j == 0 && moveGate != nil {
				// The pinned stream's session is parked on its old owner;
				// the epoch change must hand it off before the driver may
				// proceed (and discover the move through a 404).
				limit := time.Now().Add(15 * time.Second)
				for sumHandoffs() == 0 {
					if time.Now().After(limit) {
						chaosErr <- errors.New("heal soak: ownership moved but no hand-off within 15s")
						return
					}
					time.Sleep(time.Millisecond)
				}
				moveGate.release()
			}
			// One synchronous scan per survivor before any kill: the join
			// changed failover chains, and records replicated to the OLD
			// chain must reach the new one (repairCycle) or a kill inside
			// that window could destroy the only reachable copy. The
			// background rebalancers do this too — forcing it here makes
			// the kill phase deterministic instead of racing them.
			for _, m := range fleet.liveMembers() {
				m.node.Rebalance(context.Background())
			}
		}
		for k := 0; k < opt.Kills; k++ {
			if k == 0 && killGate != nil {
				select {
				case <-killGate.ready:
				case <-stop:
				}
			}
			live := fleet.liveMembers()
			if len(live) <= 1 {
				continue
			}
			// Kill the CURRENT owner of the pinned stream: it holds the
			// stream's live session and — under -heal-inject-loss (R=1) —
			// its only durable record.
			victim := live[0].mem.Ring().Owner(ids[0])
			fleet.mu.RLock()
			_, ok := fleet.live[victim]
			fleet.mu.RUnlock()
			if !ok {
				victim = live[0].srv.URL
			}
			start := time.Now()
			fleet.kill(victim)
			bound := opt.SuspectTimeout + 20*opt.ProbeInterval + 3*time.Second
			epoch, err := waitHealConverge(fleet.liveMembers(), fleet.liveURLs(), bound)
			if err != nil {
				chaosErr <- fmt.Errorf("heal soak: post-kill: %w", err)
				return
			}
			progressMu.Lock()
			res.ConvergeMillis = time.Since(start).Milliseconds()
			res.BoundMillis = bound.Milliseconds()
			res.FinalEpoch = epoch
			progressMu.Unlock()
			if k == 0 && killGate != nil {
				killGate.release()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			log, rec, err := driveHealStream(opt, fleet, ids[i], corpora[i], addProgress, gates[i])
			outs[i] = streamOut{log: log, recoveries: rec, err: err}
		}(i)
	}
	wg.Wait()
	close(stop)
	if err := <-chaosErr; err != nil {
		return err
	}

	res.ReportsExact = true
	for i, out := range outs {
		if out.err != nil {
			return fmt.Errorf("heal soak: stream %s: %w", ids[i], out.err)
		}
		res.Recoveries += out.recoveries
		res.StreamReports += uint64(len(out.log))
		want := oracles[i]
		if len(out.log) != len(want) {
			res.ReportsExact = false
			return fmt.Errorf("heal soak: stream %s delivered %d reports, oracle %d — exactly-once broken",
				ids[i], len(out.log), len(want))
		}
		for j, m := range out.log {
			if m.Pattern != want[j].Pattern || m.End != want[j].End {
				res.ReportsExact = false
				return fmt.Errorf("heal soak: stream %s report %d = %+v, oracle %+v — replay diverged",
					ids[i], j, m, want[j])
			}
		}
	}
	return nil
}

// errHealTerminal wraps driver failures that must end the stream (and the
// soak): checkpoint loss (404 on sync with durable progress) and delivery
// gaps (409) are protocol violations, not transients.
var errHealTerminal = errors.New("terminal recovery failure")

// driveHealStream feeds one corpus with NO driver-side migration: the
// driver persists only its durable position and match log; every failure
// — node death, hand-off, lost checkpoint ack — is recovered through the
// uniform ring-resolve + session-sync path, which re-delivers the match
// delta from the fleet's replicated checkpoint records. A non-nil gate
// parks the stream after its first durable checkpoint until the chaos
// event pinned to it has happened.
func driveHealStream(opt HealSoakOptions, fleet *healSoakFleet, id string, corpus []byte, addProgress func(int), gate *healGate) ([]cluster.Match, int, error) {
	ctx := context.Background()
	var (
		log        []cluster.Match
		durableLen int
		durablePos int64
		owner      string
		recoveries int
	)

	// recoverable classifies a failed call: transport-level errors and
	// 404/503 answers all route through sync (the node may be dead, the
	// session re-placed, or the peer not yet the owner); anything else is
	// a real protocol error.
	recoverable := func(err error) bool {
		var pe *cluster.PeerError
		if !errors.As(err, &pe) {
			return false
		}
		return pe.Status == 0 || pe.Status == http.StatusNotFound || pe.Status == http.StatusServiceUnavailable
	}

	// sync lands the session at its durable checkpoint on the current
	// ring owner and truncates + re-extends the log to match. It is also
	// how the stream STARTS (have=0 opens a fresh session), making every
	// driver path uniform.
	sync := func() error {
		limit := time.Now().Add(30 * time.Second)
		for attempt := 0; ; attempt++ {
			if time.Now().After(limit) {
				return fmt.Errorf("no owner answered sync for %s within 30s", id)
			}
			urls := fleet.liveURLs()
			if len(urls) == 0 {
				return errors.New("fleet has no live nodes")
			}
			base := urls[attempt%len(urls)]
			var view cluster.RingView
			if err := fleet.drv.GetJSON(ctx, base, "/cluster/ring?key="+url.QueryEscape(id), &view); err != nil || view.Owner == "" {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			var sy cluster.SessionResponse
			err := fleet.drv.PostJSON(ctx, view.Owner, "/cluster/session/sync",
				cluster.SessionSyncRequest{SessionID: id, Have: durablePos, Interval: opt.Interval}, &sy)
			if err == nil {
				owner = view.Owner
				log = append(log[:durableLen], sy.Matches...)
				durablePos = sy.Pos
				durableLen = len(log)
				return nil
			}
			var pe *cluster.PeerError
			if errors.As(err, &pe) {
				switch pe.Status {
				case http.StatusNotFound:
					return fmt.Errorf("%w: checkpoint lost for %s at %d: %v", errHealTerminal, id, durablePos, err)
				case http.StatusConflict:
					return fmt.Errorf("%w: delivery gap for %s: %v", errHealTerminal, id, err)
				}
			}
			// Transport error or 503 (owner still converging): retry.
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := sync(); err != nil { // opens the session (have = 0)
		return nil, recoveries, err
	}

	pos := int(durablePos)
	sinceCk := 0
	for pos < len(corpus) {
		end := pos + opt.ChunkLen
		if end > len(corpus) {
			end = len(corpus)
		}
		var resp cluster.SessionResponse
		if err := fleet.drv.PostJSON(ctx, owner, "/cluster/session/feed",
			cluster.SessionFeedRequest{SessionID: id, Chunk: corpus[pos:end]}, &resp); err != nil {
			if !recoverable(err) {
				return nil, recoveries, err
			}
			recoveries++
			if err := sync(); err != nil {
				return nil, recoveries, err
			}
			pos, sinceCk = int(durablePos), 0
			continue
		}
		log = append(log, resp.Matches...)
		addProgress(end - pos)
		pos = end
		sinceCk++
		if sinceCk >= opt.CheckpointEvery || pos == len(corpus) {
			var ck cluster.SessionResponse
			if err := fleet.drv.PostJSON(ctx, owner, "/cluster/session/checkpoint",
				cluster.SessionRequest{SessionID: id}, &ck); err != nil {
				if !recoverable(err) {
					return nil, recoveries, err
				}
				recoveries++
				if err := sync(); err != nil {
					return nil, recoveries, err
				}
				pos, sinceCk = int(durablePos), 0
				continue
			}
			log = append(log, ck.Matches...)
			durablePos = ck.Pos
			durableLen = len(log)
			sinceCk = 0
			if gate != nil {
				gate.arrive() // park until the pinned chaos event lands
				gate = nil
			}
		}
	}

	// Close on the session's owner; a close lost to a re-placement or a
	// kill syncs (restoring a live session on the owner) and retries, so
	// no survivor is left holding a live session or adoptable records.
	for attempt := 0; attempt < 10; attempt++ {
		var cl cluster.SessionResponse
		err := fleet.drv.PostJSON(ctx, owner, "/cluster/session/close",
			cluster.SessionRequest{SessionID: id}, &cl)
		if err == nil {
			return append(log, cl.Matches...), recoveries, nil
		}
		if !recoverable(err) {
			return nil, recoveries, err
		}
		recoveries++
		if err := sync(); err != nil {
			return nil, recoveries, err
		}
	}
	return nil, recoveries, fmt.Errorf("stream %s could not close on any owner", id)
}

// healBench shapes the soak as a BENCH-schema report: the correctness
// cell's symbols and reports are counted; the membership cell carries
// informational convergence and movement counters.
func healBench(opt HealSoakOptions, res *HealSoakResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
			Archs:    []string{"heal-correctness", "heal-membership"},
		},
	}
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "heal-correctness",
		Patterns: res.Patterns,
		Symbols:  res.StreamSymbols,
		Matches:  res.StreamReports,
		Stalls: map[string]uint64{
			"nodes":      uint64(res.Nodes),
			"streams":    uint64(res.Streams),
			"kills":      uint64(res.Kills),
			"joins":      uint64(res.Joins),
			"recoveries": uint64(res.Recoveries),
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "heal-membership",
		Patterns: res.Patterns,
		Stalls: map[string]uint64{
			"replicas":    uint64(res.Replicas),
			"handoffs":    res.Handoffs,
			"adoptions":   res.Adoptions,
			"epoch":       res.FinalEpoch,
			"converge_ms": uint64(res.ConvergeMillis),
			"bound_ms":    uint64(res.BoundMillis),
		},
	})
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderHealSoak prints the self-healing soak summary.
func RenderHealSoak(w io.Writer, res *HealSoakResult) {
	fmt.Fprintf(w, "Heal soak — %d nodes (+%d join, %d kill), %d streams, %d patterns, R=%d\n",
		res.Nodes, res.Joins, res.Kills, res.Streams, res.Patterns, res.Replicas)
	fmt.Fprintf(w, "  exactly-once: %d symbols, %d reports (%d reference), exact=%v with NO driver-side migration\n",
		res.StreamSymbols, res.StreamReports, res.ReferenceReports, res.ReportsExact)
	fmt.Fprintf(w, "  self-healing: %d handoffs, %d adoptions, %d driver sync recoveries\n",
		res.Handoffs, res.Adoptions, res.Recoveries)
	fmt.Fprintf(w, "  membership:   converged in %dms (bound %dms), final epoch %d\n",
		res.ConvergeMillis, res.BoundMillis, res.FinalEpoch)
	fmt.Fprintf(w, "  hygiene:      %d sessions left, %d pooled streams checked out on survivors\n",
		res.SessionsLeft, res.StreamsOut)
}
