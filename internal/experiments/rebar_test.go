package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bvap/internal/rebar"
)

const rebarTestDir = "../../testdata/rebar"

func TestRebarExperiment(t *testing.T) {
	opt := RebarOptions{
		Dir:     rebarTestDir,
		Engines: []string{"bvap/findall", "bvap/parallel", "swmatch", "go/regexp"},
		Reps:    1,
	}
	res, rep, err := Rebar(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases < 20 {
		t.Errorf("cases = %d, want >= 20", res.Cases)
	}
	if res.Mismatches != 0 {
		t.Errorf("mismatches = %d", res.Mismatches)
	}
	if want := res.Cases * len(opt.Engines); len(res.Cells) != want {
		t.Errorf("cells = %d, want %d", len(res.Cells), want)
	}
	if len(res.Ratios) != res.Cases {
		t.Errorf("ratios = %d, want one per case (%d)", len(res.Ratios), res.Cases)
	}
	for _, r := range res.Ratios {
		if r.Ratio <= 0 {
			t.Errorf("%s: non-positive ratio %g", r.Case, r.Ratio)
		}
	}

	// BENCH shape: one cell per (case, engine) plus one informational
	// ratio cell per case, pinned schema and params.
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Errorf("schema = %d", rep.SchemaVersion)
	}
	if want := len(res.Cells) + len(res.Ratios); len(rep.Cells) != want {
		t.Errorf("report cells = %d, want %d", len(rep.Cells), want)
	}
	if rep.Params.Sample != res.Cases || rep.Params.InputLen == 0 {
		t.Errorf("params = %+v", rep.Params)
	}
	for _, c := range rep.Cells {
		if c.Arch == "ratio/bvap-vs-go" {
			if c.Symbols != 0 || c.Matches != 0 {
				t.Errorf("ratio cell %s carries counted metrics", c.Dataset)
			}
			continue
		}
		if c.Symbols == 0 {
			t.Errorf("cell %s/%s has no symbols", c.Dataset, c.Arch)
		}
	}

	// A second run over the same suite must be CompareBench-clean: counts
	// are deterministic, timing is informational.
	res2, rep2, err := Rebar(opt)
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
	if regs := CompareBench(rep2, rep, Thresholds{AllocsFrac: 10}); len(regs) != 0 {
		t.Errorf("self-compare regressions: %v", regs)
	}
}

func TestRebarExperimentDetectsMismatch(t *testing.T) {
	dir := t.TempDir()
	bad := `
[[bench]]
name = 'wrong-count'
model = 'count'
regex = 'abc'
haystack = { generator = 'literal', literal = 'abc', repeat = 4 }
count = [{ engine = '.*', count = 3 }]
engines = ['swmatch', 'go/regexp']
`
	if err := os.WriteFile(filepath.Join(dir, "bad.toml"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	res, rep, err := Rebar(RebarOptions{Dir: dir, Reps: 1})
	if err == nil {
		t.Fatal("mismatched count passed")
	}
	if _, ok := err.(*rebar.MismatchError); !ok {
		t.Fatalf("error type %T (%v), want *rebar.MismatchError", err, err)
	}
	// The failing run still produces a renderable result and report.
	if res == nil || rep == nil {
		t.Fatal("mismatch run returned no result/report")
	}
	if res.Mismatches != 2 {
		t.Errorf("mismatches = %d, want 2", res.Mismatches)
	}
	var sb strings.Builder
	RenderRebar(&sb, res)
	if !strings.Contains(sb.String(), "wrong-count/swmatch") {
		t.Errorf("render does not list the mismatching cell:\n%s", sb.String())
	}
}

func TestRebarExperimentFilter(t *testing.T) {
	res, _, err := Rebar(RebarOptions{
		Dir:     rebarTestDir,
		Filter:  "^literal-abc$",
		Engines: []string{"swmatch"},
		Reps:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 1 || len(res.Cells) != 1 {
		t.Errorf("filtered run: %d cases, %d cells", res.Cases, len(res.Cells))
	}
}
