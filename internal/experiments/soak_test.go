package experiments

import (
	"bytes"
	"testing"
	"time"
)

func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is a wall-clock experiment")
	}
	res, rep, err := Soak(SoakOptions{
		Sample:   8,
		InputLen: 64 << 10,
		Duration: 300 * time.Millisecond,
		Scanners: 4,
		Reloads:  3,
	})
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if !res.ReportsExact {
		t.Error("session reports diverged from reference")
	}
	if res.SessionReports != res.ReferenceReports {
		t.Errorf("reports %d != reference %d", res.SessionReports, res.ReferenceReports)
	}
	if res.ReloadsOK != 3 || res.FinalGeneration != 4 {
		t.Errorf("reloads ok %d, final generation %d; want 3 and 4", res.ReloadsOK, res.FinalGeneration)
	}
	if res.DroppedCorrectMatches != 0 {
		t.Errorf("dropped correct matches = %d", res.DroppedCorrectMatches)
	}
	if res.StreamsOut != 0 {
		t.Errorf("streams out = %d", res.StreamsOut)
	}
	if res.Scans == 0 {
		t.Error("overload phase completed no scans")
	}

	// The report carries the counted correctness cell.
	if len(rep.Cells) != 2 {
		t.Fatalf("%d bench cells, want 2", len(rep.Cells))
	}
	if rep.Cells[0].Arch != "soak-correctness" || rep.Cells[0].Matches != res.SessionReports {
		t.Errorf("correctness cell mismatch: %+v", rep.Cells[0])
	}

	var buf bytes.Buffer
	RenderSoak(&buf, res)
	if buf.Len() == 0 {
		t.Error("RenderSoak produced nothing")
	}
}
