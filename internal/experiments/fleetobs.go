package experiments

// The fleetobs experiment gates the fleet observability plane end to end,
// in four cells:
//
//   - trace (counted): every ring-routed scan through an N-node fleet —
//     driven so the entry node is never the ring owner, forcing the
//     forwarding hop — must assemble into exactly one stitched trace with
//     a fragment from every hop (driver, entry node, owner node), a
//     single driver root, correct parent links, and ZERO orphans. The
//     orphan count is a counted metric pinned at zero.
//   - federate (counted): the federated fleet metrics snapshot must sum
//     per-node counters exactly — bvap_serve_scans_total and the
//     bvap_serve_scan_duration_ms / bvap_serve_scan_energy_pj histogram
//     counts are compared against the per-node registries with ==, not a
//     tolerance.
//   - slo (counted): a burn-rate monitor over one node's real scan
//     counters, driven on a simulated clock, must stay silent through a
//     healthy baseline (zero transitions) and fire on an injected
//     deadline regression (scans forced past their watchdog deadline
//     count as non-ok outcomes), then resolve once the regression stops.
//   - disabled (counted): the full tracing surface the serve and cluster
//     paths touch per request — including the remote span-context
//     adoption used for cross-node stitching — against a nil recorder is
//     pinned at zero allocations per operation.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"bvap"
	"bvap/internal/cluster"
	"bvap/internal/datasets"
	"bvap/internal/serve"
	"bvap/internal/slo"
	"bvap/internal/telemetry"
	"bvap/internal/tracing"
)

// FleetObsOptions parameterizes the fleet observability gate. Zero values
// select a CI-smoke-sized run (a second or two under -race).
type FleetObsOptions struct {
	Nodes     int    // fleet size (default 3)
	Dataset   string // pattern source (default "Snort")
	Sample    int    // patterns sampled (default 12)
	InputLen  int    // bytes per scan (default 4 KiB)
	Scans     int    // forced-forward ring-routed scans (default 24)
	AllocRuns int    // testing.AllocsPerRun rounds for the disabled cell (default 100)
}

func (o *FleetObsOptions) fill() {
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.Nodes < 2 {
		o.Nodes = 2 // forwarding needs a second node
	}
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 12
	}
	if o.InputLen == 0 {
		o.InputLen = 4 << 10
	}
	if o.Scans == 0 {
		o.Scans = 24
	}
	if o.AllocRuns == 0 {
		o.AllocRuns = 100
	}
}

// FleetObsResult is the experiment's structured output.
type FleetObsResult struct {
	Nodes    int `json:"nodes"`
	Patterns int `json:"patterns"`

	// Trace stitching (counted; Orphans pinned at zero).
	Scans          int `json:"scans"`
	ForwardedScans int `json:"forwarded_scans"`
	Traces         int `json:"traces"`
	Fragments      int `json:"fragments"`
	Spans          int `json:"spans"`
	Orphans        int `json:"orphans"`

	// Metrics federation exactness (counted).
	FleetScans      uint64  `json:"fleet_scans"`
	NodeScansSum    uint64  `json:"node_scans_sum"`
	FleetDurCount   uint64  `json:"fleet_duration_count"`
	FleetEnergyPJ   float64 `json:"fleet_energy_pj"`
	FederationExact bool    `json:"federation_exact"`

	// SLO burn-rate monitoring (counted transitions).
	SLOBaselineTransitions uint64 `json:"slo_baseline_transitions"` // must be 0
	SLOFired               bool   `json:"slo_fired"`
	SLOResolved            bool   `json:"slo_resolved"`
	SLOTransitions         uint64 `json:"slo_transitions"` // must be 2 (fire, resolve)

	// Disabled path (counted, must be zero).
	DisabledAllocsPerOp float64 `json:"disabled_allocs_per_op"`
}

// obsFleet is the in-process fleet the experiment drives: every node has a
// recorder, a registry, and the shared ring, so keyed scans hop to their
// owner and every hop leaves a span fragment behind.
type obsFleet struct {
	nodes  []*cluster.Node
	svcs   []*bvap.Service
	regs   []*telemetry.Registry
	srvs   []*httptest.Server
	peers  []string
	ring   *cluster.Ring
	client *cluster.Client
}

func newObsFleet(opt FleetObsOptions, patterns []string) (*obsFleet, error) {
	f := &obsFleet{nodes: make([]*cluster.Node, opt.Nodes)}
	// Servers first: the ring is keyed by base URL, which the node configs
	// need, and which httptest only assigns at start. The handler closes
	// over the node slot so the node can be built afterwards.
	for i := 0; i < opt.Nodes; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.nodes[i].Handler().ServeHTTP(w, r)
		}))
		f.srvs = append(f.srvs, srv)
		f.peers = append(f.peers, srv.URL)
	}
	f.ring = cluster.NewRing(0)
	for _, p := range f.peers {
		f.ring.Add(p)
	}
	f.client = cluster.NewClient(cluster.ClientConfig{
		MaxAttempts:    2,
		AttemptTimeout: 10 * time.Second,
		Backoff:        serve.Backoff{Base: 2 * time.Millisecond, Jitter: -1},
		Breaker:        serve.BreakerConfig{Threshold: 1 << 20},
	})
	for i := 0; i < opt.Nodes; i++ {
		reg := telemetry.NewRegistry()
		rec := tracing.NewRecorder(tracing.Config{Capacity: 4 * opt.Scans})
		svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{Metrics: reg, FlightRecorder: rec})
		if err != nil {
			f.close()
			return nil, fmt.Errorf("fleetobs: node %d compile: %v", i, err)
		}
		f.nodes[i] = cluster.NewNode(svc, cluster.NodeConfig{
			ID:       fmt.Sprintf("node-%d", i),
			Recorder: rec,
			Metrics:  reg,
			Self:     f.peers[i],
			Ring:     f.ring,
			Client:   f.client,
		})
		f.svcs = append(f.svcs, svc)
		f.regs = append(f.regs, reg)
	}
	return f, nil
}

func (f *obsFleet) close() {
	for _, n := range f.nodes {
		if n != nil {
			n.Close()
		}
	}
	for _, s := range f.svcs {
		s.Close()
	}
	for _, srv := range f.srvs {
		srv.Close()
	}
}

// keyOwnedBy finds a routing key whose ring owner is peer index want.
func (f *obsFleet) keyOwnedBy(want int) (string, error) {
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("fleetobs-%d-%d", want, i)
		if f.ring.Owner(key) == f.peers[want] {
			return key, nil
		}
	}
	return "", fmt.Errorf("fleetobs: no key hashes to node %d", want)
}

// FleetObs runs the fleet observability gate and returns the structured
// result plus a BENCH-schema report. The stitching, federation, SLO and
// disabled-path properties are contracts: any violation fails the run
// outright rather than reporting a degraded number.
func FleetObs(opt FleetObsOptions) (*FleetObsResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	patterns := prof.Sample(opt.Sample)
	input := prof.Input(opt.InputLen, patterns)
	res := &FleetObsResult{Nodes: opt.Nodes, Patterns: len(patterns)}

	fleet, err := newObsFleet(opt, patterns)
	if err != nil {
		return nil, nil, err
	}
	defer fleet.close()

	if err := fleetObsTraces(opt, fleet, input, res); err != nil {
		return nil, nil, err
	}
	if err := fleetObsFederation(fleet, res); err != nil {
		return nil, nil, err
	}
	if err := fleetObsSLO(opt, patterns, input, res); err != nil {
		return nil, nil, err
	}
	if err := fleetObsDisabledAllocs(opt, res); err != nil {
		return nil, nil, err
	}
	return res, fleetObsBench(opt, res), nil
}

// fleetObsTraces drives forced-forward scans through the ring — the entry
// node is deliberately never the key's owner — and requires every scan to
// stitch into one complete, orphan-free, causally-ordered trace.
func fleetObsTraces(opt FleetObsOptions, fleet *obsFleet, input []byte, res *FleetObsResult) error {
	driver := tracing.NewRecorder(tracing.Config{Capacity: 2 * opt.Scans})
	fed := cluster.NewFederator(fleet.client, fleet.peers, cluster.FederatorConfig{
		LocalID: "driver", Local: telemetry.NewRegistry(), LocalRecorder: driver,
	})
	ctx := context.Background()
	for s := 0; s < opt.Scans; s++ {
		ownerIdx := s % opt.Nodes
		entryIdx := (ownerIdx + 1) % opt.Nodes
		key, err := fleet.keyOwnedBy(ownerIdx)
		if err != nil {
			return err
		}
		tctx, root := driver.StartTrace(ctx, "fleetobs.scan")
		var resp cluster.ScanResponse
		if err := fleet.client.PostJSON(tctx, fleet.peers[entryIdx], "/cluster/scan",
			cluster.ScanRequest{Input: input, Key: key}, &resp); err != nil {
			return fmt.Errorf("fleetobs: scan %d: %v", s, err)
		}
		driver.Record(root)
		wantNode := fmt.Sprintf("node-%d", ownerIdx)
		if resp.Node != wantNode {
			return fmt.Errorf("fleetobs: scan %d executed on %q, want ring owner %q", s, resp.Node, wantNode)
		}
		res.Scans++
		res.ForwardedScans++

		st, err := fed.FleetTrace(ctx, root.ID())
		if err != nil {
			return fmt.Errorf("fleetobs: scan %d trace assembly: %v", s, err)
		}
		res.Traces++
		res.Fragments += st.Fragments
		res.Spans += st.SpanCount
		res.Orphans += st.Orphans
		if st.Orphans != 0 {
			return fmt.Errorf("fleetobs: scan %d stitched with %d orphan span(s) — span context dropped somewhere in the fleet", s, st.Orphans)
		}
		if len(st.Roots) != 1 || st.Roots[0].Node != "driver" {
			return fmt.Errorf("fleetobs: scan %d has %d root(s) (first on %q), want one on the driver",
				s, len(st.Roots), rootNode(st))
		}
		// One fragment per hop: driver, entry node, owner node.
		if st.Fragments != 3 {
			return fmt.Errorf("fleetobs: scan %d stitched %d fragments, want 3 (driver + entry + owner)", s, st.Fragments)
		}
		want := map[string]bool{"driver": true, fmt.Sprintf("node-%d", entryIdx): true, wantNode: true}
		for _, n := range st.Nodes {
			if !want[n] {
				return fmt.Errorf("fleetobs: scan %d trace includes unexpected node %q", s, n)
			}
			delete(want, n)
		}
		if len(want) != 0 {
			return fmt.Errorf("fleetobs: scan %d trace missing hops %v (nodes %v)", s, want, st.Nodes)
		}
	}
	return nil
}

func rootNode(st *tracing.StitchedTrace) string {
	if len(st.Roots) == 0 {
		return ""
	}
	return st.Roots[0].Node
}

// fleetObsFederation scrapes every node and requires the fleet-level
// counters to be the exact sum of the per-node registries.
func fleetObsFederation(fleet *obsFleet, res *FleetObsResult) error {
	fed := cluster.NewFederator(fleet.client, fleet.peers, cluster.FederatorConfig{})
	snap := fed.Scrape(context.Background())
	if snap.MergeErr != nil {
		return fmt.Errorf("fleetobs: federation merge: %v", snap.MergeErr)
	}
	for _, n := range snap.Nodes {
		if n.Err != nil {
			return fmt.Errorf("fleetobs: scrape of %s failed: %v", n.Node, n.Err)
		}
	}
	var fleetScans, fleetDur uint64
	var energySeen bool
	for _, s := range snap.Fleet {
		switch s.Name {
		case serve.MetricScans:
			fleetScans += uint64(s.Value)
		case serve.MetricScanDuration:
			fleetDur = s.Count
		case serve.MetricScanEnergy:
			energySeen = true
			res.FleetEnergyPJ = s.Value
		}
	}
	var nodeScans, nodeDur uint64
	for _, reg := range fleet.regs {
		for _, s := range reg.Snapshot() {
			switch s.Name {
			case serve.MetricScans:
				nodeScans += uint64(s.Value)
			case serve.MetricScanDuration:
				nodeDur += s.Count
			}
		}
	}
	res.FleetScans, res.NodeScansSum, res.FleetDurCount = fleetScans, nodeScans, fleetDur
	res.FederationExact = fleetScans == nodeScans && fleetDur == nodeDur && fleetScans > 0
	if !res.FederationExact {
		return fmt.Errorf("fleetobs: federation inexact: fleet scans %d vs node sum %d, fleet duration count %d vs node sum %d",
			fleetScans, nodeScans, fleetDur, nodeDur)
	}
	if !energySeen {
		return fmt.Errorf("fleetobs: fleet snapshot is missing %s", serve.MetricScanEnergy)
	}
	return nil
}

// fleetObsSLO drives a burn-rate monitor over one standalone node's real
// scan counters on a simulated clock: a healthy baseline must not page; an
// injected deadline regression (every scan forced past its watchdog
// deadline, an unambiguously non-ok outcome) must fire and then resolve.
func fleetObsSLO(opt FleetObsOptions, patterns []string, input []byte, res *FleetObsResult) error {
	reg := telemetry.NewRegistry()
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{Metrics: reg})
	if err != nil {
		return err
	}
	defer svc.Close()
	source := func() (good, total float64) {
		for _, s := range reg.Snapshot() {
			if s.Name == serve.MetricScans {
				total += s.Value
				if s.Labels["outcome"] == "ok" {
					good += s.Value
				}
			}
		}
		return good, total
	}
	mon := slo.NewMonitor([]slo.Objective{{
		Name:   "scan-deadline",
		Target: 0.999,
		Source: source,
	}}, nil)

	// Healthy baseline: ten simulated minutes of successful scans.
	ctx := context.Background()
	now := time.Unix(1_700_000_000, 0)
	for tick := 0; tick < 60; tick++ {
		for i := 0; i < 2; i++ {
			if _, err := svc.Scan(ctx, input); err != nil {
				return fmt.Errorf("fleetobs: baseline scan: %v", err)
			}
		}
		now = now.Add(10 * time.Second)
		mon.Observe(now)
	}
	if st := mon.Status(now)[0]; st.Transitions != 0 || st.Firing {
		res.SLOBaselineTransitions = st.Transitions
		return fmt.Errorf("fleetobs: healthy baseline paged: %+v", st)
	}

	// Injected regression: a service sharing the registry whose watchdog
	// deadline is unmeetable — every scan lands in the counters with a
	// non-ok outcome. Distinct inputs dodge the quarantine breaker, whose
	// refusals would stop reaching the counter.
	bad, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		ScanTimeout:         time.Nanosecond,
		QuarantineThreshold: 1 << 30,
		Metrics:             reg,
	})
	if err != nil {
		return err
	}
	defer bad.Close()
	for tick := 0; tick < 30; tick++ {
		for i := 0; i < 2; i++ {
			in := append([]byte(fmt.Sprintf("fleetobs-%d-%d-", tick, i)), input...)
			if _, err := bad.Scan(ctx, in); err == nil {
				return fmt.Errorf("fleetobs: 1ns-deadline scan succeeded")
			}
		}
		now = now.Add(10 * time.Second)
		mon.Observe(now)
	}
	if !mon.Firing() {
		return fmt.Errorf("fleetobs: injected deadline regression did not fire: %+v", mon.Status(now))
	}
	res.SLOFired = true

	// Recovery: the fast window clears within simulated minutes of the fix.
	for tick := 0; tick < 40; tick++ {
		for i := 0; i < 2; i++ {
			if _, err := svc.Scan(ctx, input); err != nil {
				return fmt.Errorf("fleetobs: recovery scan: %v", err)
			}
		}
		now = now.Add(10 * time.Second)
		mon.Observe(now)
	}
	if mon.Firing() {
		return fmt.Errorf("fleetobs: alert still firing after recovery: %+v", mon.Status(now))
	}
	res.SLOResolved = true
	res.SLOTransitions = mon.Status(now)[0].Transitions
	if res.SLOTransitions != 2 {
		return fmt.Errorf("fleetobs: %d alert transitions, want exactly 2 (fire, resolve)", res.SLOTransitions)
	}
	return nil
}

// fleetObsDisabledAllocs pins the nil-recorder tracing surface — including
// the remote span-context adoption the cluster path runs per forwarded
// request — at zero allocations per operation.
func fleetObsDisabledAllocs(opt FleetObsOptions, res *FleetObsResult) error {
	var rec *tracing.Recorder
	ctx := context.Background()
	work := func() {
		// The coordinator side: root trace, client span, attrs.
		tctx, tr := rec.StartTrace(ctx, "fleetobs.disabled")
		tr.SetStr("node", "node-0")
		sctx, sp := tracing.StartSpan(tctx, "cluster.forward")
		sp.SetInt("owner", 1)
		_ = tracing.SpanFromContext(sctx).IDString()
		sp.End()
		// The serving side: adopting remote span context.
		rctx, child := rec.StartTraceRemoteSpan(ctx, "cluster.scan", tr.ID(), sp.ID())
		_ = child.RemoteParent()
		_, inner := tracing.StartSpan(rctx, "engine.scan")
		inner.End()
		rec.Record(child)
		rec.Record(tr)
	}
	work() // warm up any lazy runtime state outside the measured runs
	res.DisabledAllocsPerOp = testing.AllocsPerRun(opt.AllocRuns, work)
	if res.DisabledAllocsPerOp != 0 {
		return fmt.Errorf("fleetobs: disabled tracing path allocates %.1f per op, want 0", res.DisabledAllocsPerOp)
	}
	return nil
}

// fleetObsBench shapes the run as a BENCH-schema report: the trace cell's
// orphan count and the disabled cell's alloc count are counted metrics
// pinned at zero; the federation cell's exact sums are counted.
func fleetObsBench(opt FleetObsOptions, res *FleetObsResult) *BenchReport {
	boolCount := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
			Archs:    []string{"fleet-trace", "fleet-federate", "fleet-slo", "fleet-disabled"},
		},
	}
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "fleet-trace",
		Patterns: res.Patterns,
		Allocs:   uint64(res.Orphans), // pinned at zero
		Stalls: map[string]uint64{
			"nodes":     uint64(res.Nodes),
			"scans":     uint64(res.Scans),
			"forwarded": uint64(res.ForwardedScans),
			"traces":    uint64(res.Traces),
			"fragments": uint64(res.Fragments),
			"spans":     uint64(res.Spans),
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "fleet-federate",
		Patterns: res.Patterns,
		Symbols:  res.FleetScans,
		Matches:  res.NodeScansSum,
		EnergyPJ: res.FleetEnergyPJ,
		Stalls: map[string]uint64{
			"exact":          boolCount(res.FederationExact),
			"duration_count": res.FleetDurCount,
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "fleet-slo",
		Patterns: res.Patterns,
		Stalls: map[string]uint64{
			"baseline_transitions": res.SLOBaselineTransitions,
			"fired":                boolCount(res.SLOFired),
			"resolved":             boolCount(res.SLOResolved),
			"transitions":          res.SLOTransitions,
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "fleet-disabled",
		Patterns: res.Patterns,
		Allocs:   uint64(res.DisabledAllocsPerOp),
	})
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderFleetObs prints the fleet observability summary.
func RenderFleetObs(w io.Writer, res *FleetObsResult) {
	fmt.Fprintf(w, "Fleetobs — %d nodes, %d patterns\n", res.Nodes, res.Patterns)
	fmt.Fprintf(w, "  traces:   %d ring-routed scans (%d forwarded) → %d stitched traces, %d fragments, %d spans, %d orphans (contract: 0)\n",
		res.Scans, res.ForwardedScans, res.Traces, res.Fragments, res.Spans, res.Orphans)
	fmt.Fprintf(w, "  federate: fleet scans %d == node sum %d, duration count %d, energy %.6g pJ (exact=%v)\n",
		res.FleetScans, res.NodeScansSum, res.FleetDurCount, res.FleetEnergyPJ, res.FederationExact)
	fmt.Fprintf(w, "  slo:      baseline transitions %d, fired=%v, resolved=%v, transitions %d (contract: 0 then 2)\n",
		res.SLOBaselineTransitions, res.SLOFired, res.SLOResolved, res.SLOTransitions)
	fmt.Fprintf(w, "  disabled: %.1f allocs/op across the tracing + remote-span surface (contract: 0)\n",
		res.DisabledAllocsPerOp)
}
