package experiments

// The fault-injection experiment: sweep the injection rate over a dataset
// workload and measure what the resilience stack delivers — detection rate,
// recovery retries, degraded (software-fallback) windows, silent escapes
// caught by the reference cross-check, and the energy overhead of parity
// protection plus re-execution relative to a fault-free run of the same
// workload. Because the injector's fault sets are nested across rates
// (threshold firing on a shared hash), the injected/detected/fallback
// columns are monotone in the rate by construction — a property the tests
// pin.

import (
	"context"
	"fmt"
	"io"

	"bvap/internal/compiler"
	"bvap/internal/datasets"
	"bvap/internal/faults"
	"bvap/internal/hwsim"
	"bvap/internal/swmatch"
)

// FaultsOptions parameterizes the fault-injection sweep.
type FaultsOptions struct {
	// Dataset names the workload profile (default "Snort").
	Dataset string
	// Sample is the number of patterns drawn (default 24).
	Sample int
	// InputLen is the stream length in bytes (default 1 << 15).
	InputLen int
	// Rates are the per-site injection rates swept (default
	// {0, 1e-4, 5e-4, 2e-3, 1e-2}).
	Rates []float64
	// Seed selects the deterministic fault stream (default 1).
	Seed int64
	// Window and MaxRetries tune the recovery harness (defaults 256, 2).
	Window     int
	MaxRetries int
	// Streaming selects the BVAP-S input model (stream drop/dup faults
	// instead of I/O buffer overflows).
	Streaming bool
	// NoParity disables the per-BV parity detection circuit (parity is
	// on by default; without it only I/O faults are detected, so the
	// sweep shows what the surcharge buys).
	NoParity bool
}

func (o *FaultsOptions) fill() {
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 24
	}
	if o.InputLen == 0 {
		o.InputLen = 1 << 15
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0, 1e-4, 5e-4, 2e-3, 1e-2}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Window == 0 {
		o.Window = 256
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
}

// FaultsRow is one rate point of the sweep.
type FaultsRow struct {
	Rate float64
	// Injected/Detected/Silent are the injector's counters.
	Injected, Detected, Silent uint64
	// DetectionRate is Detected / Injected.
	DetectionRate float64
	// Windows/Retries/Fallbacks/Mismatches are the harness counters.
	Windows, Retries, Fallbacks, Mismatches uint64
	// EnergyPerSymbolPJ is the run's energy efficiency including parity
	// and re-execution overhead; EnergyOverhead is its ratio to the
	// rate-0 row minus 1.
	EnergyPerSymbolPJ float64
	EnergyOverhead    float64
	// ParityEnergyPJ is the parity surcharge alone.
	ParityEnergyPJ float64
}

// Faults runs the fault-injection sweep.
func Faults(opt FaultsOptions) ([]FaultsRow, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, err
	}
	patterns := prof.Sample(opt.Sample)
	input := prof.Input(opt.InputLen, patterns)
	copt := compiler.DefaultOptions()
	res, err := compiler.Compile(patterns, copt)
	if err != nil {
		return nil, err
	}

	// One reference matcher per machine for the silent-corruption
	// cross-check (skipping patterns whose unfolded form is too large).
	refs := make([]*swmatch.Matcher, len(res.Report.PerRegex))
	for i, pr := range res.Report.PerRegex {
		if !pr.Supported || pr.UnfoldedSTEs > 4096 {
			continue
		}
		if m, err := swmatch.New(pr.Pattern); err == nil {
			refs[i] = m
		}
	}

	var out []FaultsRow
	baseline := 0.0
	for _, rate := range opt.Rates {
		sys, err := hwsim.NewBVAPSystem(res.Config, opt.Streaming)
		if err != nil {
			return nil, err
		}
		row := FaultsRow{Rate: rate}
		if rate == 0 {
			// Fault-free reference run: no injector, no parity, no
			// harness — the plain datapath.
			sys.Run(input)
			st := sys.Finish()
			row.EnergyPerSymbolPJ = st.EnergyPerSymbolPJ()
		} else {
			plan := faults.UniformPlan(opt.Seed, rate, !opt.NoParity)
			inj, err := faults.NewInjector(plan)
			if err != nil {
				return nil, err
			}
			sys.SetFaults(inj)
			sys.RecordMatchEnds(true)
			for i := range refs {
				if refs[i] != nil {
					refs[i].Reset()
				}
			}
			h, err := faults.NewHarness(sys, inj, faults.HarnessConfig{
				Window:     opt.Window,
				MaxRetries: opt.MaxRetries,
				Reference:  refs,
			})
			if err != nil {
				return nil, err
			}
			rep, err := h.Run(context.Background(), input)
			if err != nil {
				return nil, fmt.Errorf("faults sweep rate=%g: %v", rate, err)
			}
			st := sys.Finish()
			fs := rep.Faults
			row.Injected = fs.TotalInjected()
			row.Detected = fs.Detected
			row.Silent = fs.Silent
			row.DetectionRate = fs.DetectionRate()
			row.Windows = rep.Windows
			row.Retries = rep.Retries
			row.Fallbacks = rep.Fallbacks
			row.Mismatches = rep.Mismatches
			row.EnergyPerSymbolPJ = st.EnergyPerSymbolPJ()
			row.ParityEnergyPJ = st.ParityEnergyPJ
		}
		if rate == 0 {
			baseline = row.EnergyPerSymbolPJ
		}
		if baseline > 0 {
			row.EnergyOverhead = row.EnergyPerSymbolPJ/baseline - 1
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFaults prints the sweep as an aligned table.
func RenderFaults(w io.Writer, opt FaultsOptions, rows []FaultsRow) {
	opt.fill()
	mode := "BVAP"
	if opt.Streaming {
		mode = "BVAP-S"
	}
	fmt.Fprintf(w, "Fault injection — %s on %s, seed %d, parity %v, window %d, retries %d\n",
		mode, opt.Dataset, opt.Seed, !opt.NoParity, opt.Window, opt.MaxRetries)
	fmt.Fprintf(w, "%10s %9s %9s %7s %7s %8s %8s %6s %6s %11s %9s\n",
		"rate", "injected", "detected", "det%", "silent",
		"windows", "retries", "fback", "misma", "pJ/sym", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2g %9d %9d %6.1f%% %7d %8d %8d %6d %6d %11.4f %8.2f%%\n",
			r.Rate, r.Injected, r.Detected, r.DetectionRate*100, r.Silent,
			r.Windows, r.Retries, r.Fallbacks, r.Mismatches,
			r.EnergyPerSymbolPJ, r.EnergyOverhead*100)
	}
}
