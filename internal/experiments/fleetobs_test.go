package experiments

import (
	"bytes"
	"testing"
)

func TestFleetObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleetobs spins up an in-process fleet")
	}
	res, rep, err := FleetObs(FleetObsOptions{
		Nodes:    3,
		Sample:   6,
		InputLen: 2 << 10,
		Scans:    6,
	})
	if err != nil {
		t.Fatalf("FleetObs: %v", err)
	}
	if res.Orphans != 0 {
		t.Errorf("stitched traces carry %d orphans", res.Orphans)
	}
	if res.Traces != res.Scans || res.ForwardedScans != res.Scans {
		t.Errorf("traces=%d forwarded=%d, want both == scans=%d", res.Traces, res.ForwardedScans, res.Scans)
	}
	// Forced-forward scans: three fragments per trace, every one stitched.
	if res.Fragments != 3*res.Scans {
		t.Errorf("fragments=%d, want %d", res.Fragments, 3*res.Scans)
	}
	if res.Spans <= res.Fragments {
		t.Errorf("spans=%d, want more than one per fragment root (%d)", res.Spans, res.Fragments)
	}
	if !res.FederationExact || res.FleetScans != res.NodeScansSum {
		t.Errorf("federation inexact: fleet %d vs nodes %d", res.FleetScans, res.NodeScansSum)
	}
	if res.SLOBaselineTransitions != 0 || !res.SLOFired || !res.SLOResolved || res.SLOTransitions != 2 {
		t.Errorf("slo cell: baseline=%d fired=%v resolved=%v transitions=%d",
			res.SLOBaselineTransitions, res.SLOFired, res.SLOResolved, res.SLOTransitions)
	}
	if res.DisabledAllocsPerOp != 0 {
		t.Errorf("disabled path allocates %.1f per op", res.DisabledAllocsPerOp)
	}

	if len(rep.Cells) != 4 {
		t.Fatalf("%d bench cells, want 4", len(rep.Cells))
	}
	if rep.Cells[0].Arch != "fleet-trace" || rep.Cells[0].Allocs != 0 {
		t.Errorf("trace cell mismatch: %+v", rep.Cells[0])
	}
	if rep.Cells[1].Arch != "fleet-federate" || rep.Cells[1].Symbols != rep.Cells[1].Matches {
		t.Errorf("federate cell mismatch: %+v", rep.Cells[1])
	}
	if rep.Cells[3].Arch != "fleet-disabled" || rep.Cells[3].Allocs != 0 {
		t.Errorf("disabled cell mismatch: %+v", rep.Cells[3])
	}

	var buf bytes.Buffer
	RenderFleetObs(&buf, res)
	if buf.Len() == 0 {
		t.Error("RenderFleetObs produced nothing")
	}
}
