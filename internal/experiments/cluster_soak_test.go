package experiments

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// settleClusterGoroutines waits up to 5s for the goroutine count to fall
// back to the pre-soak baseline — HTTP servers, chaos goroutines and stream
// drivers all wind down asynchronously.
func settleClusterGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// TestClusterSoak is the PR's acceptance gate: N≥3 in-process nodes,
// rolling coordinated reloads, forced node kills mid-stream, tenant quota
// pressure — and every stream's delivered report log byte-identical to the
// origin engine's uninterrupted reference, with no goroutine left behind.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak is a wall-clock experiment")
	}
	before := runtime.NumGoroutine()

	res, rep, err := ClusterSoak(ClusterSoakOptions{
		Nodes:    3,
		Streams:  6,
		Sample:   8,
		InputLen: 32 << 10,
		Kills:    2,
	})
	if err != nil {
		t.Fatalf("ClusterSoak: %v", err)
	}
	if !res.ReportsExact || res.StreamReports != res.ReferenceReports {
		t.Errorf("reports %d vs reference %d (exact=%v); exactly-once broken",
			res.StreamReports, res.ReferenceReports, res.ReportsExact)
	}
	if res.Kills != 2 {
		t.Errorf("kills = %d, want 2", res.Kills)
	}
	if res.PublishesOK != 2 {
		t.Errorf("publishes ok = %d, want 2", res.PublishesOK)
	}
	if res.FinalGeneration < 2 {
		t.Errorf("surviving generation = %d; coordinated reloads did not land", res.FinalGeneration)
	}
	if res.QuotaRefused == 0 {
		t.Error("metered tenant was never refused")
	}
	if res.OpenRefused != 0 {
		t.Errorf("unmetered tenant refused %d times", res.OpenRefused)
	}
	if res.StreamsOut != 0 {
		t.Errorf("streams out = %d", res.StreamsOut)
	}

	// The report carries the counted exactly-once cell plus the
	// informational control cell.
	if len(rep.Cells) != 2 {
		t.Fatalf("%d bench cells, want 2", len(rep.Cells))
	}
	if rep.Cells[0].Arch != "cluster-correctness" || rep.Cells[0].Matches != res.StreamReports {
		t.Errorf("correctness cell mismatch: %+v", rep.Cells[0])
	}
	if rep.Cells[1].Stalls["quota_refused"] != res.QuotaRefused {
		t.Errorf("control cell mismatch: %+v", rep.Cells[1])
	}

	var buf bytes.Buffer
	RenderClusterSoak(&buf, res)
	if buf.Len() == 0 {
		t.Error("RenderClusterSoak produced nothing")
	}
	t.Logf("\n%s", buf.String())

	if after := settleClusterGoroutines(before); after > before {
		t.Errorf("goroutine leak: %d before, %d after the cluster soak", before, after)
	}
}

// TestClusterSoakSingleKill covers the minimal chaos path at a smaller
// scale, including a fleet that shrinks to a lone survivor still passing
// the quota phase.
func TestClusterSoakSingleKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak is a wall-clock experiment")
	}
	res, _, err := ClusterSoak(ClusterSoakOptions{
		Nodes:     2,
		Streams:   3,
		Sample:    6,
		InputLen:  16 << 10,
		Kills:     1,
		Publishes: 1,
	})
	if err != nil {
		t.Fatalf("ClusterSoak: %v", err)
	}
	if !res.ReportsExact {
		t.Error("reports diverged with a single kill")
	}
	if res.Kills != 1 || res.PublishesOK != 1 {
		t.Errorf("kills=%d publishes=%d, want 1 and 1", res.Kills, res.PublishesOK)
	}
}
