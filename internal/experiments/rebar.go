package experiments

// The rebar experiment runs the curated competitive suite under
// testdata/rebar: declarative TOML cases (regex, generated haystack,
// verified per-engine match counts) executed head-to-head on every
// registered engine — the BVAP software scanners, the cycle-accurate
// simulator on all six architectures, the independent swmatch reference
// and the standard library's regexp. Counts are conformance assertions:
// a cell's timing is only reported when its count matched the declaration,
// and any mismatch fails the experiment. The BVAP-vs-go/regexp throughput
// ratios are informational competitive positioning, never compared.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"bvap/internal/rebar"
)

// RebarOptions parameterizes the rebar suite run.
type RebarOptions struct {
	Dir     string   // case-file directory (default "testdata/rebar")
	Filter  string   // regexp over case names
	Engines []string // engine subset (default: every registered engine)
	Reps    int      // timed runs per cell (default 2)
}

func (o *RebarOptions) fill() {
	if o.Dir == "" {
		o.Dir = "testdata/rebar"
	}
	if o.Reps == 0 {
		o.Reps = 2
	}
}

// RebarCell is one (case, engine) conformance-and-timing cell.
type RebarCell struct {
	Case      string `json:"case"`
	Group     string `json:"group,omitempty"`
	Engine    string `json:"engine"`
	Semantics string `json:"semantics,omitempty"`
	Regex     string `json:"regex"`

	Expected uint64 `json:"expected"`
	Got      uint64 `json:"got"`
	OK       bool   `json:"ok"`
	Err      string `json:"err,omitempty"`

	HaystackLen int `json:"haystack_len"`

	// Informational timing (fastest verified run; zero when !OK).
	WallMs float64 `json:"wall_ms"`
	MBps   float64 `json:"mb_s"`
}

// RebarRatio is the informational competitive position of the BVAP
// software scanner against go/regexp on one case (>1 means BVAP scanned
// faster).
type RebarRatio struct {
	Case     string  `json:"case"`
	BVAPMBps float64 `json:"bvap_mb_s"`
	GoMBps   float64 `json:"go_mb_s"`
	Ratio    float64 `json:"bvap_vs_go"`
}

// RebarResult is the experiment's structured output.
type RebarResult struct {
	Dir        string       `json:"dir"`
	Cases      int          `json:"cases"`
	Engines    []string     `json:"engines"`
	Cells      []RebarCell  `json:"cells"`
	Ratios     []RebarRatio `json:"ratios,omitempty"`
	Mismatches int          `json:"mismatches"`
}

// Rebar loads and runs the curated suite. On count mismatches the result
// and report are still returned — fully populated, so the failing run can
// be rendered and archived — alongside the *rebar.MismatchError.
func Rebar(opt RebarOptions) (*RebarResult, *BenchReport, error) {
	opt.fill()
	suite, err := rebar.LoadDir(opt.Dir)
	if err != nil {
		return nil, nil, err
	}
	cells, runErr := rebar.Run(suite, &rebar.RunOptions{
		Filter:  opt.Filter,
		Engines: opt.Engines,
		Reps:    opt.Reps,
	})
	if runErr != nil {
		if _, ok := runErr.(*rebar.MismatchError); !ok {
			return nil, nil, runErr
		}
	}

	engines := opt.Engines
	if len(engines) == 0 {
		engines = rebar.EngineNames()
	}
	res := &RebarResult{Dir: opt.Dir, Engines: engines}
	seenCases := map[string]bool{}
	perCaseMBps := map[string]map[string]float64{}
	for _, c := range cells {
		if !seenCases[c.Case] {
			seenCases[c.Case] = true
			res.Cases++
		}
		cell := RebarCell{
			Case: c.Case, Group: c.Group, Engine: c.Engine,
			Semantics: c.Semantics, Regex: c.Regex,
			Expected: c.Expected, Got: c.Got, OK: c.OK, Err: c.Err,
			HaystackLen: c.HaystackLen,
			WallMs:      float64(c.Elapsed) / float64(time.Millisecond),
			MBps:        c.MBps,
		}
		res.Cells = append(res.Cells, cell)
		if !c.OK {
			res.Mismatches++
		}
		if c.OK && c.MBps > 0 {
			if perCaseMBps[c.Case] == nil {
				perCaseMBps[c.Case] = map[string]float64{}
			}
			perCaseMBps[c.Case][c.Engine] = c.MBps
		}
	}
	for _, c := range res.Cells {
		m := perCaseMBps[c.Case]
		if m == nil || c.Engine != "bvap/findall" {
			continue
		}
		bv, goMB := m["bvap/findall"], m["go/regexp"]
		if bv > 0 && goMB > 0 {
			res.Ratios = append(res.Ratios, RebarRatio{
				Case: c.Case, BVAPMBps: bv, GoMBps: goMB, Ratio: bv / goMB,
			})
		}
	}
	return res, rebarBench(opt, res), runErr
}

// rebarBench shapes a suite run as a BENCH-schema report: one cell per
// (case, engine) keyed case × engine, with the observed count as the exact
// counted `matches` metric and the haystack length as `symbols`. The
// competitive ratios ride along as informational cells (arch
// "ratio/bvap-vs-go", the ratio in the derived FoM column); their counted
// columns are zero so CompareBench treats them as always-equal.
func rebarBench(opt RebarOptions, res *RebarResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: res.Cases,
			Archs:  res.Engines,
		},
	}
	// InputLen pins each case's haystack once (not once per engine), so
	// two runs over the same suite stay comparable.
	seen := map[string]bool{}
	for _, c := range res.Cells {
		if !seen[c.Case] {
			seen[c.Case] = true
			rep.Params.InputLen += c.HaystackLen
		}
		rep.Cells = append(rep.Cells, BenchCell{
			Dataset:         c.Case,
			Arch:            c.Engine,
			Patterns:        1,
			Symbols:         uint64(c.HaystackLen),
			Matches:         c.Got,
			RunMs:           c.WallMs,
			SimThroughputMB: c.MBps,
		})
	}
	for _, r := range res.Ratios {
		rep.Cells = append(rep.Cells, BenchCell{
			Dataset: r.Case,
			Arch:    "ratio/bvap-vs-go",
			FoM:     r.Ratio,
		})
	}
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderRebar prints the per-case conformance summary and the competitive
// ratios. Mismatching cells are listed in full.
func RenderRebar(w io.Writer, res *RebarResult) {
	fmt.Fprintf(w, "Rebar competitive conformance — %d cases × %d engines (%d cells, %d mismatches)\n",
		res.Cases, len(res.Engines), len(res.Cells), res.Mismatches)
	fmt.Fprintf(w, "  %-18s %-26s %6s %9s %9s %10s %10s %8s\n",
		"case", "regex", "bytes", "ends", "go", "bvap MB/s", "go MB/s", "bvap/go")

	type caseLine struct {
		regex                string
		bytes                int
		ends, goCount        uint64
		haveEnds, haveGo     bool
		bvapMBps, goMBps     float64
		cells, verifiedCells int
	}
	lines := map[string]*caseLine{}
	var order []string
	for _, c := range res.Cells {
		l := lines[c.Case]
		if l == nil {
			l = &caseLine{regex: c.Regex, bytes: c.HaystackLen}
			lines[c.Case] = l
			order = append(order, c.Case)
		}
		l.cells++
		if c.OK {
			l.verifiedCells++
		}
		switch {
		case c.Engine == "go/regexp":
			l.goCount, l.haveGo = c.Got, true
			l.goMBps = c.MBps
		case c.Semantics == "ends" && !l.haveEnds:
			l.ends, l.haveEnds = c.Got, true
		}
		if c.Engine == "bvap/findall" {
			l.bvapMBps = c.MBps
		}
	}
	fmtCount := func(have bool, n uint64) string {
		if !have {
			return "-"
		}
		return fmt.Sprintf("%d", n)
	}
	for _, name := range order {
		l := lines[name]
		ratio := "-"
		if l.bvapMBps > 0 && l.goMBps > 0 {
			ratio = fmt.Sprintf("%.2fx", l.bvapMBps/l.goMBps)
		}
		status := ""
		if l.verifiedCells != l.cells {
			status = fmt.Sprintf("  [%d/%d FAILED]", l.cells-l.verifiedCells, l.cells)
		}
		fmt.Fprintf(w, "  %-18s %-26s %6d %9s %9s %10.1f %10.1f %8s%s\n",
			name, l.regex, l.bytes,
			fmtCount(l.haveEnds, l.ends), fmtCount(l.haveGo, l.goCount),
			l.bvapMBps, l.goMBps, ratio, status)
	}
	if res.Mismatches > 0 {
		fmt.Fprintf(w, "\n  mismatching cells:\n")
		for _, c := range res.Cells {
			if c.OK {
				continue
			}
			detail := c.Err
			if detail == "" {
				detail = fmt.Sprintf("got %d, want %d", c.Got, c.Expected)
			}
			fmt.Fprintf(w, "    %s/%s: %s\n", c.Case, c.Engine, detail)
		}
	}
	fmt.Fprintln(w)
}
