package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestHealSoak is the self-healing acceptance gate: gossip membership, a
// standby joining mid-stream (forcing a session hand-off), a node killed
// mid-stream WITHOUT driver-side migration (forcing adoption from
// replicated checkpoints), and every stream's delivered log byte-identical
// to the origin engine's uninterrupted reference, with survivors converged
// within the probe-interval bound and nothing leaked.
func TestHealSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("heal soak is a wall-clock experiment")
	}
	before := runtime.NumGoroutine()

	res, rep, err := HealSoak(HealSoakOptions{
		Nodes:    3,
		Streams:  6,
		Sample:   8,
		InputLen: 32 << 10,
		Kills:    1,
		Joins:    1,
		Replicas: 2,
	})
	if err != nil {
		t.Fatalf("HealSoak: %v", err)
	}
	if !res.ReportsExact || res.StreamReports != res.ReferenceReports {
		t.Errorf("reports %d vs reference %d (exact=%v); exactly-once broken",
			res.StreamReports, res.ReferenceReports, res.ReportsExact)
	}
	if res.Handoffs == 0 {
		t.Error("join moved ownership but no session was handed off")
	}
	if res.Recoveries == 0 {
		t.Error("a node was killed but no driver ran sync recovery")
	}
	if res.ConvergeMillis > res.BoundMillis {
		t.Errorf("membership converged in %dms, bound %dms", res.ConvergeMillis, res.BoundMillis)
	}
	if res.FinalEpoch < 2 {
		t.Errorf("final epoch = %d; membership changes did not advance it", res.FinalEpoch)
	}
	if res.SessionsLeft != 0 || res.StreamsOut != 0 {
		t.Errorf("leaked: %d sessions, %d pooled streams", res.SessionsLeft, res.StreamsOut)
	}

	if len(rep.Cells) != 2 {
		t.Fatalf("%d bench cells, want 2", len(rep.Cells))
	}
	if rep.Cells[0].Arch != "heal-correctness" || rep.Cells[0].Matches != res.StreamReports {
		t.Errorf("correctness cell mismatch: %+v", rep.Cells[0])
	}
	if rep.Cells[1].Stalls["handoffs"] != res.Handoffs {
		t.Errorf("membership cell mismatch: %+v", rep.Cells[1])
	}

	var buf bytes.Buffer
	RenderHealSoak(&buf, res)
	if buf.Len() == 0 {
		t.Error("RenderHealSoak produced nothing")
	}
	t.Logf("\n%s", buf.String())

	if after := settleClusterGoroutines(before); after > before {
		t.Errorf("goroutine leak: %d before, %d after the heal soak", before, after)
	}
}

// TestHealSoakInjectLoss pins the negative control: with R=1, killing a
// stream's owner destroys the only durable checkpoint record, and the
// soak MUST fail with a checkpoint-loss report rather than silently
// delivering a gapped log.
func TestHealSoakInjectLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("heal soak is a wall-clock experiment")
	}
	_, _, err := HealSoak(HealSoakOptions{
		Nodes:      3,
		Streams:    3,
		Sample:     6,
		InputLen:   16 << 10,
		Kills:      1,
		Joins:      1,
		InjectLoss: true,
	})
	if err == nil {
		t.Fatal("inject-loss soak succeeded; checkpoint loss went undetected")
	}
	if !strings.Contains(err.Error(), "checkpoint lost") {
		t.Fatalf("inject-loss soak failed for the wrong reason: %v", err)
	}
}
