package experiments

import (
	"strings"
	"testing"

	"bvap/internal/hwsim"
	"bvap/internal/profile"
)

// syntheticProfiler drives a profiler through a fixed event stream so the
// renderers have deterministic input without running a simulation.
func syntheticProfiler() *profile.Profiler {
	p := profile.NewForPatterns([]string{"ab{3}c", "xy"}, profile.Options{Buckets: 4})
	// Cycle 0: a BVM stall and machine 0 active.
	p.Stall(hwsim.StallBVM, 2)
	p.MachineActivity(0, 2, []int{0, 1})
	p.StepDone(1, 2, 0)
	// Cycle 1: input starvation dominates.
	p.Stall(hwsim.StallBVM, 1)
	p.Stall(hwsim.StallIOInput, 3)
	p.MachineActivity(0, 1, []int{1})
	p.MachineActivity(1, 1, []int{0})
	p.StepDone(1, 2, 1)
	// Cycle 2: tail.
	p.Stall(hwsim.StallIOInput, 1)
	p.StepDone(1, 0, 0)
	return p
}

// TestRenderHeatmapGolden pins the exact ASCII rendering: labels, bucket
// legend, and the shade ramp mapping (max → '@', 2/3 → '*', 1/3 → '-',
// zero → space).
func TestRenderHeatmapGolden(t *testing.T) {
	p := syntheticProfiler()
	var sb strings.Builder
	RenderHeatmap(&sb, "stall cycles", p.StallHeatmap(), func(r int) string {
		return hwsim.StallCause(r).String()
	})
	golden := "stall cycles (3 buckets × 1 cycles, max 3, ramp \" .:-=+*#%@\")\n" +
		"  bvm       |*- |\n" +
		"  io_input  | @-|\n" +
		"  io_output |   |\n"
	if got := sb.String(); got != golden {
		t.Fatalf("heatmap rendering drifted:\n got: %q\nwant: %q", got, golden)
	}
}

func TestRenderHeatmapEmptyAndElision(t *testing.T) {
	var sb strings.Builder
	RenderHeatmap(&sb, "tile occupancy", nil, func(int) string { return "" })
	if got := sb.String(); got != "tile occupancy: (no activity)\n" {
		t.Fatalf("nil heatmap: %q", got)
	}
	// A fresh profiler's occupancy heatmap has no mass either.
	p := profile.NewForPatterns([]string{"a"}, profile.Options{})
	sb.Reset()
	RenderHeatmap(&sb, "occupancy", p.OccupancyHeatmap(), func(int) string { return "all" })
	if !strings.Contains(sb.String(), "(no activity)") {
		t.Fatalf("empty heatmap: %q", sb.String())
	}
}

func TestRenderHotStatesAndProfile(t *testing.T) {
	p := syntheticProfiler()
	var sb strings.Builder
	RenderHotStates(&sb, p.HotStates(0))
	out := sb.String()
	if !strings.Contains(out, "ab{3}c") || !strings.Contains(out, "xy") {
		t.Fatalf("hot states lack pattern provenance:\n%s", out)
	}
	// Baseline profilers have no tile provenance: the tile column renders
	// as "-".
	for _, line := range strings.Split(out, "\n")[1:] {
		if line == "" {
			continue
		}
		if !strings.Contains(line, " - ") {
			t.Fatalf("expected '-' tile column in %q", line)
		}
	}
	sb.Reset()
	RenderHotStates(&sb, nil)
	if !strings.Contains(sb.String(), "none activated") {
		t.Fatalf("empty hot states: %q", sb.String())
	}

	sb.Reset()
	RenderProfile(&sb, "synthetic", p, 5)
	out = sb.String()
	for _, want := range []string{"profile: synthetic", "3 symbols", "stall cycles", "io_input"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderProfile lacks %q:\n%s", want, out)
		}
	}
}

func TestRenderAttribution(t *testing.T) {
	p := syntheticProfiler()
	st := &hwsim.Stats{MatchEnergyPJ: 100, WireEnergyPJ: 20}
	var sb strings.Builder
	RenderAttribution(&sb, p.Attribute(st), 1)
	out := sb.String()
	if !strings.Contains(out, "0 pJ unattributed") {
		t.Fatalf("attribution header: %q", out)
	}
	// topK=1 keeps only the highest-energy pattern (machine 0 was the more
	// active one).
	if !strings.Contains(out, "ab{3}c") || strings.Contains(out, "\nxy") {
		t.Fatalf("topK truncation: %q", out)
	}
}
