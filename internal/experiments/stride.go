package experiments

import (
	"fmt"
	"io"

	"bvap/internal/compiler"
	"bvap/internal/datasets"
	"bvap/internal/stride"
)

// Stride2Row quantifies the Impala-style 2-stride extension on one dataset:
// doubling the symbol rate multiplies the state (and thus match-memory)
// demand by the expansion factor, so the compute-density gain is
// 2 / expansion — the trade BVAP sidesteps by accelerating counting instead
// of symbol rate.
type Stride2Row struct {
	Dataset string
	// States1 and States2 are the aggregate 1-stride and 2-stride state
	// demands over the sampled (baseline-supported) patterns.
	States1 int
	States2 int
	// Expansion is States2 / States1.
	Expansion float64
	// ThroughputGain is the symbol-rate multiplier (2 by construction).
	ThroughputGain float64
	// DensityGain is ThroughputGain / Expansion: above 1 only when the
	// automata are sparse enough.
	DensityGain float64
	// MatchesChecked counts the cross-validated match positions.
	MatchesChecked int
	// Skipped counts machines too dense to square within the pair
	// budget (unfolded wide ranges; see stride.ErrTooDense).
	Skipped int
}

// stride2EdgeBudget bounds the per-machine follow-edge count the experiment
// is willing to square and simulate.
const stride2EdgeBudget = 30000

// Stride2Options parameterizes the extension experiment.
type Stride2Options struct {
	Sample   int
	InputLen int
	Datasets []string
}

func (o *Stride2Options) fill() {
	if o.Sample == 0 {
		o.Sample = 40
	}
	if o.InputLen == 0 {
		o.InputLen = 2048
	}
	if len(o.Datasets) == 0 {
		for _, p := range datasets.Profiles() {
			o.Datasets = append(o.Datasets, p.Name)
		}
	}
}

// Stride2 measures the 2-stride trade across the benchmark datasets,
// cross-validating the squared automata against their 1-stride originals on
// the dataset corpus.
func Stride2(opt Stride2Options) ([]Stride2Row, error) {
	opt.fill()
	var rows []Stride2Row
	for _, name := range opt.Datasets {
		prof, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		patterns := prof.Sample(opt.Sample)
		machines := compiler.CompileBaseline(patterns)
		input := prof.Input(opt.InputLen, patterns)

		row := Stride2Row{Dataset: name, ThroughputGain: 2}
		for _, m := range machines {
			if !m.Supported {
				continue
			}
			// Wide unfolded ranges square into automata whose
			// simulation alone dwarfs the rest of the sweep; they are
			// exactly the ErrTooDense regime, so budget them out here
			// (and report it) rather than stalling the harness.
			if stride.EdgeCount(m.NFA) > stride2EdgeBudget {
				row.Skipped++
				continue
			}
			t2, err := stride.Transform(m.NFA)
			if err != nil {
				row.Skipped++
				continue
			}
			row.States1 += m.NFA.Size()
			row.States2 += t2.Size()
			// Functional cross-check on the corpus.
			want := m.NFA.MatchEnds(input)
			got := t2.MatchEnds(input)
			if len(got) != len(want) {
				return nil, fmt.Errorf("stride2 %s %q: %d vs %d matches",
					name, m.Pattern, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					return nil, fmt.Errorf("stride2 %s %q: match %d differs", name, m.Pattern, i)
				}
			}
			row.MatchesChecked += len(want)
		}
		if row.States1 > 0 {
			row.Expansion = float64(row.States2) / float64(row.States1)
			row.DensityGain = row.ThroughputGain / row.Expansion
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStride2 prints the extension experiment.
func RenderStride2(w io.Writer, rows []Stride2Row) {
	fmt.Fprintln(w, "Extension — Impala-style 2-stride on the unfolding baseline")
	fmt.Fprintln(w, "(2× symbol rate costs `expansion`× states; density gain = 2/expansion)")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %14s %10s %8s\n",
		"dataset", "states×1", "states×2", "expansion", "density gain", "checked", "skipped")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10d %10d %10.2f %14.2f %10d %8d\n",
			r.Dataset, r.States1, r.States2, r.Expansion, r.DensityGain, r.MatchesChecked, r.Skipped)
	}
}
