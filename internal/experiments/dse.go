package experiments

import (
	"fmt"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/datasets"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
)

// DSEPoint is one cell of Fig. 13: BVAP at a (bv_size, unfold_th)
// combination on one dataset, normalized to CAMA on the same dataset.
type DSEPoint struct {
	Dataset     string
	BVSize      int
	UnfoldTh    int
	DensityNorm float64 // higher is better
	EDPNorm     float64 // lower is better
	FoMNorm     float64 // lower is better
	Unsupported int
}

// DSEOptions parameterizes the exploration; zero values select the paper's
// sweep at a sample size that completes quickly (use cmd/bvapbench for the
// full-size run).
type DSEOptions struct {
	BVSizes   []int
	UnfoldThs []int
	Sample    int
	InputLen  int
	Datasets  []string
}

func (o *DSEOptions) fill() {
	if len(o.BVSizes) == 0 {
		o.BVSizes = []int{16, 32, 64}
	}
	if len(o.UnfoldThs) == 0 {
		o.UnfoldThs = []int{4, 8, 12}
	}
	if o.Sample == 0 {
		o.Sample = 80
	}
	if o.InputLen == 0 {
		o.InputLen = 2048
	}
	if len(o.Datasets) == 0 {
		for _, p := range datasets.Profiles() {
			o.Datasets = append(o.Datasets, p.Name)
		}
	}
}

// Fig13 runs the design space exploration of §8 across the seven datasets.
func Fig13(opt DSEOptions) ([]DSEPoint, error) {
	opt.fill()
	var out []DSEPoint
	for _, name := range opt.Datasets {
		prof, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		patterns := prof.Sample(opt.Sample)
		input := prof.Input(opt.InputLen, patterns)

		camaStats, err := runBaseline(archmodel.CAMA, patterns, input, false)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s cama: %v", name, err)
		}
		cama := metrics.FromStats("CAMA", camaStats)

		for _, k := range opt.BVSizes {
			for _, th := range opt.UnfoldThs {
				stats, unsupported, err := runBVAPCounted(patterns,
					compiler.Options{BVSizeBits: k, UnfoldThreshold: th}, input)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s k=%d th=%d: %v", name, k, th, err)
				}
				p := metrics.FromStats("BVAP", stats)
				out = append(out, DSEPoint{
					Dataset:     name,
					BVSize:      k,
					UnfoldTh:    th,
					DensityNorm: safeDiv(p.ComputeDensity, cama.ComputeDensity),
					EDPNorm:     safeDiv(p.EDP, cama.EDP),
					FoMNorm:     safeDiv(p.FoM, cama.FoM),
					Unsupported: unsupported,
				})
			}
		}
	}
	return out, nil
}

func runBVAPCounted(patterns []string, opt compiler.Options, input []byte) (*hwsim.Stats, int, error) {
	res, err := compiler.Compile(patterns, opt)
	if err != nil {
		return nil, 0, err
	}
	sys, err := hwsim.NewBVAPSystem(res.Config, false)
	if err != nil {
		return nil, 0, err
	}
	sys.Run(input)
	return sys.Finish(), res.Report.Unsupported, nil
}

// BestParams is one row of Table 5: the (bv_size, unfold_th) pair with the
// best (lowest) FoM for a dataset.
type BestParams struct {
	Dataset  string
	BVSize   int
	UnfoldTh int
	FoMNorm  float64
}

// Table5 selects the best-FoM parameters per dataset from DSE results.
func Table5(points []DSEPoint) []BestParams {
	best := map[string]*BestParams{}
	var order []string
	for _, p := range points {
		b, ok := best[p.Dataset]
		if !ok {
			order = append(order, p.Dataset)
			best[p.Dataset] = &BestParams{Dataset: p.Dataset, BVSize: p.BVSize, UnfoldTh: p.UnfoldTh, FoMNorm: p.FoMNorm}
			continue
		}
		if p.FoMNorm < b.FoMNorm {
			b.BVSize, b.UnfoldTh, b.FoMNorm = p.BVSize, p.UnfoldTh, p.FoMNorm
		}
	}
	out := make([]BestParams, 0, len(order))
	for _, name := range order {
		out = append(out, *best[name])
	}
	return out
}

// Fig14Row is one dataset's bar group in Fig. 14: every architecture's
// metrics normalized to CA.
type Fig14Row struct {
	Dataset string
	// Points holds absolute metrics keyed by architecture name; Norm
	// holds the same normalized to CA.
	Points map[string]metrics.Point
	Norm   map[string]metrics.Point
}

// Fig14Options parameterizes the real-world benchmark run.
type Fig14Options struct {
	Sample   int
	InputLen int
	Datasets []string
	// Params overrides the per-dataset compiler parameters; when nil the
	// experiment first runs the DSE and uses its Table 5 selections.
	Params map[string]BestParams
	// IncludeUnsupported keeps regexes the AP-style baselines cannot run
	// (unfolded size beyond 4096 STEs) in the comparison. The default
	// (false) restricts all architectures to the commonly supported
	// subset, which is the paper's fair-comparison methodology; BVAP
	// additionally running the monsters is reported by cmd/bvapstats.
	IncludeUnsupported bool
}

func (o *Fig14Options) fill() {
	if o.Sample == 0 {
		o.Sample = 80
	}
	if o.InputLen == 0 {
		o.InputLen = 4096
	}
	if len(o.Datasets) == 0 {
		for _, p := range datasets.Profiles() {
			o.Datasets = append(o.Datasets, p.Name)
		}
	}
}

// Fig14 runs the real-world comparison of BVAP, BVAP-S, CAMA, eAP and CA.
func Fig14(opt Fig14Options) ([]Fig14Row, error) {
	opt.fill()
	if opt.Params == nil {
		dse, err := Fig13(DSEOptions{Sample: opt.Sample, Datasets: opt.Datasets})
		if err != nil {
			return nil, err
		}
		opt.Params = map[string]BestParams{}
		for _, b := range Table5(dse) {
			opt.Params[b.Dataset] = b
		}
	}
	var rows []Fig14Row
	for _, name := range opt.Datasets {
		prof, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		patterns := prof.Sample(opt.Sample)
		if !opt.IncludeUnsupported {
			patterns = commonSubset(patterns)
		}
		input := prof.Input(opt.InputLen, patterns)
		params, ok := opt.Params[name]
		if !ok {
			params = BestParams{BVSize: 64, UnfoldTh: 8}
		}
		copt := compiler.Options{BVSizeBits: params.BVSize, UnfoldThreshold: params.UnfoldTh}

		row := Fig14Row{Dataset: name, Points: map[string]metrics.Point{}, Norm: map[string]metrics.Point{}}
		bvap, err := runBVAP(patterns, copt, input, false, false)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s bvap: %v", name, err)
		}
		row.Points["BVAP"] = metrics.FromStats("BVAP", bvap)
		bvaps, err := runBVAP(patterns, copt, input, true, false)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s bvap-s: %v", name, err)
		}
		row.Points["BVAP-S"] = metrics.FromStats("BVAP-S", bvaps)
		for _, arch := range []archmodel.Arch{archmodel.CAMA, archmodel.EAP, archmodel.CA} {
			s, err := runBaseline(arch, patterns, input, false)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s %v: %v", name, arch, err)
			}
			row.Points[arch.String()] = metrics.FromStats(arch.String(), s)
		}
		ca := row.Points["CA"]
		for name, p := range row.Points {
			row.Norm[name] = p.Normalized(ca)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Summary holds the paper's headline aggregate claims computed from Fig. 14
// rows (geometric means across datasets).
type Summary struct {
	EnergyReductionVsCAMA float64 // paper: 67%
	EnergyReductionVsCA   float64 // paper: 95%
	EnergyReductionVsEAP  float64 // paper: 94%
	AreaReductionVsCAMA   float64
	AreaReductionVsCA     float64
	AreaReductionVsEAP    float64
	FoMGainVsCAMA         float64 // paper: 4.3×
	FoMGainVsCA           float64 // paper: 50×
	FoMGainVsEAP          float64 // paper: 33×
	DensityVsCA           float64 // paper: +134%
	DensityVsEAP          float64 // paper: +62%
	ThroughputVsCAMA      float64 // paper: −11.2%
	SEnergySaving         float64 // BVAP-S vs BVAP energy; paper: 39%
	SPowerSaving          float64 // paper: 79%
	SThroughputLoss       float64 // paper: 67%
}

// Summarize computes the aggregate comparison from Fig. 14 rows.
func Summarize(rows []Fig14Row) Summary {
	ratio := func(num, den string, metric func(metrics.Point) float64) float64 {
		var ps []metrics.Point
		for _, r := range rows {
			n, d := r.Points[num], r.Points[den]
			nv, dv := metric(n), metric(d)
			if dv > 0 {
				ps = append(ps, metrics.Point{FoM: nv / dv})
			}
		}
		return metrics.GeoMean(ps, func(p metrics.Point) float64 { return p.FoM })
	}
	energy := func(p metrics.Point) float64 { return p.EnergyPerSymbolNJ }
	area := func(p metrics.Point) float64 { return p.AreaMm2 }
	fom := func(p metrics.Point) float64 { return p.FoM }
	density := func(p metrics.Point) float64 { return p.ComputeDensity }
	thpt := func(p metrics.Point) float64 { return p.ThroughputGbps }
	power := func(p metrics.Point) float64 { return p.PowerW }

	var s Summary
	s.EnergyReductionVsCAMA = 1 - ratio("BVAP", "CAMA", energy)
	s.EnergyReductionVsCA = 1 - ratio("BVAP", "CA", energy)
	s.EnergyReductionVsEAP = 1 - ratio("BVAP", "eAP", energy)
	s.AreaReductionVsCAMA = 1 - ratio("BVAP", "CAMA", area)
	s.AreaReductionVsCA = 1 - ratio("BVAP", "CA", area)
	s.AreaReductionVsEAP = 1 - ratio("BVAP", "eAP", area)
	s.FoMGainVsCAMA = invOrZero(ratio("BVAP", "CAMA", fom))
	s.FoMGainVsCA = invOrZero(ratio("BVAP", "CA", fom))
	s.FoMGainVsEAP = invOrZero(ratio("BVAP", "eAP", fom))
	s.DensityVsCA = ratio("BVAP", "CA", density) - 1
	s.DensityVsEAP = ratio("BVAP", "eAP", density) - 1
	s.ThroughputVsCAMA = 1 - ratio("BVAP", "CAMA", thpt)
	s.SEnergySaving = 1 - ratio("BVAP-S", "BVAP", energy)
	s.SPowerSaving = 1 - ratio("BVAP-S", "BVAP", power)
	s.SThroughputLoss = 1 - ratio("BVAP-S", "BVAP", thpt)
	return s
}

// commonSubset filters out patterns any compared architecture cannot run:
// baselines reject unfolded sizes beyond the AP-style 4096-STE limit, BVAP
// rejects counting clusters beyond a tile's BV capacity.
func commonSubset(patterns []string) []string {
	base := compiler.CompileBaseline(patterns)
	res, err := compiler.Compile(patterns, compiler.DefaultOptions())
	var out []string
	for i, pat := range patterns {
		if !base[i].Supported {
			continue
		}
		if err == nil && !res.Report.PerRegex[i].Supported {
			continue
		}
		out = append(out, pat)
	}
	return out
}

func invOrZero(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}
