package experiments

// The cluster soak exercises the fleet layer the way a deployment does: N
// in-process bvapd nodes behind a consistent-hash ring, M concurrent BVAP-S
// streams driven through them, while the control plane performs rolling
// two-phase coordinated reloads and the chaos schedule force-kills nodes
// mid-stream. Each stream's driver implements the kill-tolerant
// exactly-once protocol:
//
//   - matches returned by a feed are PROVISIONAL until a wire checkpoint
//     at or past their position persists at the driver;
//   - on a node kill, the driver truncates its delivered log back to the
//     durable prefix, re-resolves the stream's owner on the (shrunken)
//     ring, resumes from the durable checkpoint bytes on the new node, and
//     re-feeds — replay regenerates the truncated tail byte-identically.
//
// The counted correctness claim: after kills, migrations, and fleet-wide
// pattern publishes, every stream's delivered report log equals the origin
// engine's uninterrupted FindAll over its corpus, byte for byte. A tenant
// quota pressure phase follows: a metered tenant must be refused while an
// unmetered tenant is never refused.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"bvap"
	"bvap/internal/cluster"
	"bvap/internal/datasets"
	"bvap/internal/serve"
)

// ClusterSoakOptions parameterizes the fleet soak. Zero values select a
// CI-smoke-sized run (a few seconds under -race).
type ClusterSoakOptions struct {
	Nodes           int    // fleet size (default 3)
	Streams         int    // concurrent migrating sessions (default 6)
	Dataset         string // pattern source (default "Snort")
	Sample          int    // patterns sampled (default 12)
	InputLen        int    // per-stream corpus bytes (default 48 KiB)
	ChunkLen        int    // feed granularity (default 1500)
	CheckpointEvery int    // chunks between durable wire checkpoints (default 3)
	Interval        int    // session commit interval in symbols (default 1024)
	Kills           int    // forced node kills mid-stream (default 2)
	Publishes       int    // rolling coordinated reload rounds (default 2)
	QuotaScans      int    // per-tenant scans in the quota phase (default 24)
}

func (o *ClusterSoakOptions) fill() {
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.Streams == 0 {
		o.Streams = 6
	}
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 12
	}
	if o.InputLen == 0 {
		o.InputLen = 48 << 10
	}
	if o.ChunkLen == 0 {
		o.ChunkLen = 1500
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 3
	}
	if o.Interval == 0 {
		o.Interval = 1024
	}
	if o.Kills == 0 {
		o.Kills = 2
	}
	if o.Kills > o.Nodes-1 {
		o.Kills = o.Nodes - 1 // at least one survivor
	}
	if o.Publishes == 0 {
		o.Publishes = 2
	}
	if o.QuotaScans == 0 {
		o.QuotaScans = 24
	}
}

// ClusterSoakResult is the experiment's structured output.
type ClusterSoakResult struct {
	Nodes    int `json:"nodes"`
	Streams  int `json:"streams"`
	Patterns int `json:"patterns"`

	// Exactly-once correctness across kills and migrations (counted).
	StreamSymbols    uint64 `json:"stream_symbols"`
	StreamReports    uint64 `json:"stream_reports"`
	ReferenceReports uint64 `json:"reference_reports"`
	ReportsExact     bool   `json:"reports_exact"`
	Kills            int    `json:"kills"`
	Migrations       int    `json:"migrations"`

	// Control plane.
	PublishesOK     int    `json:"publishes_ok"`
	FinalGeneration uint64 `json:"final_generation"`

	// Tenant quota pressure (informational counts; the invariants —
	// metered refused at least once, unmetered never refused — are hard
	// failures).
	QuotaAllowed uint64 `json:"quota_allowed"`
	QuotaRefused uint64 `json:"quota_refused"`
	OpenRefused  uint64 `json:"open_refused"`

	// Hygiene: pooled streams still checked out on surviving nodes.
	StreamsOut int64 `json:"streams_out"`
}

// clusterSentinel is planted in every generation the fleet publishes, so
// reload rounds never invalidate in-flight stream checkpoints' semantics.
const clusterSentinel = "clsoak{2}z"

// soakNode is one in-process fleet member: service, node surface, HTTP
// server.
type soakNode struct {
	svc  *bvap.Service
	node *cluster.Node
	srv  *httptest.Server
	// origin is the engine the node served at bring-up: streams pin to it,
	// so its pool is where leaked session streams would show.
	origin *bvap.Engine
}

// soakFleet is the shared mutable cluster view: the ring and the live-node
// set, mutated by the chaos schedule while stream drivers read it.
type soakFleet struct {
	mu     sync.RWMutex
	ring   *cluster.Ring
	nodes  map[string]*soakNode // by base URL, live only
	client *cluster.Client
}

func (f *soakFleet) owner(key string) string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Owner(key)
}

func (f *soakFleet) peers() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ring.Nodes()
}

// kill removes a node from the ring, then severs its connections and shuts
// it down. Streams discover the death through transport errors and migrate.
func (f *soakFleet) kill(url string) *soakNode {
	f.mu.Lock()
	n := f.nodes[url]
	delete(f.nodes, url)
	f.ring.Remove(url)
	f.mu.Unlock()
	if n == nil {
		return nil
	}
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.node.Close()
	n.svc.Close()
	return n
}

// ClusterSoak runs the fleet soak and returns the structured result plus a
// BENCH-schema report (the correctness cell is counted; the control cell is
// informational).
func ClusterSoak(opt ClusterSoakOptions) (*ClusterSoakResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	patterns := append([]string{clusterSentinel}, prof.Sample(opt.Sample)...)
	res := &ClusterSoakResult{Nodes: opt.Nodes, Streams: opt.Streams, Patterns: len(patterns)}

	// Fleet bring-up: every node serves the same initial set (same
	// fingerprint), with a metered "limited" tenant for the quota phase.
	svcCfg := &bvap.ServiceConfig{
		TenantQuotas: map[string]bvap.QuotaConfig{
			"limited": {RatePerSec: 0.001, Burst: float64(opt.QuotaScans) / 3},
		},
	}
	fleet := &soakFleet{
		ring:  cluster.NewRing(0),
		nodes: map[string]*soakNode{},
		client: cluster.NewClient(cluster.ClientConfig{
			MaxAttempts:    2,
			AttemptTimeout: 10 * time.Second,
			Backoff:        serve.Backoff{Base: 2 * time.Millisecond, Jitter: -1},
			// The chaos schedule kills nodes on purpose; a breaker that
			// quarantines a dead peer is correct but irrelevant here, so
			// keep it effectively out of the way.
			Breaker: serve.BreakerConfig{Threshold: 1 << 20},
		}),
	}
	for i := 0; i < opt.Nodes; i++ {
		svc, err := bvap.NewService(patterns, svcCfg)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster soak: node %d compile: %v", i, err)
		}
		node := cluster.NewNode(svc, cluster.NodeConfig{ID: fmt.Sprintf("node-%d", i)})
		srv := httptest.NewServer(node.Handler())
		fleet.nodes[srv.URL] = &soakNode{svc: svc, node: node, srv: srv, origin: svc.Engine()}
		fleet.ring.Add(srv.URL)
	}
	defer func() {
		for url := range fleet.nodes {
			fleet.kill(url)
		}
	}()

	// Per-stream corpora: deterministic rotations of one generated corpus,
	// so streams differ while the oracle stays reproducible. The oracle is
	// the ORIGIN engine's uninterrupted FindAll — migrations pin streams to
	// the origin fingerprint regardless of later publishes.
	base := prof.Input(opt.InputLen, patterns)
	var origin *bvap.Engine
	for _, n := range fleet.nodes {
		origin = n.origin
		break
	}
	corpora := make([][]byte, opt.Streams)
	oracles := make([][]bvap.Match, opt.Streams)
	for i := range corpora {
		rot := (i * 1013) % len(base)
		corpora[i] = append(append([]byte{}, base[rot:]...), base[:rot]...)
		oracles[i] = origin.FindAll(corpora[i])
		res.StreamSymbols += uint64(len(corpora[i]))
		res.ReferenceReports += uint64(len(oracles[i]))
	}

	// Chaos schedule: interleave publishes and kills at deterministic
	// progress fractions of the longest stream.
	if err := runClusterStreams(opt, fleet, patterns, corpora, oracles, res); err != nil {
		return nil, nil, err
	}
	if err := clusterQuotaPressure(opt, fleet, res); err != nil {
		return nil, nil, err
	}

	for _, url := range fleet.peers() {
		fleet.mu.RLock()
		n := fleet.nodes[url]
		fleet.mu.RUnlock()
		if n == nil {
			continue
		}
		if gen := n.svc.Generation(); gen > res.FinalGeneration {
			res.FinalGeneration = gen
		}
		res.StreamsOut += n.origin.StreamsOut()
	}
	if res.StreamsOut != 0 {
		return nil, nil, fmt.Errorf("cluster soak: %d pooled streams still checked out on surviving nodes", res.StreamsOut)
	}
	return res, clusterBench(opt, res), nil
}

// runClusterStreams drives all streams concurrently while the chaos
// goroutine publishes and kills on a progress-based schedule.
func runClusterStreams(opt ClusterSoakOptions, fleet *soakFleet, patterns []string, corpora [][]byte, oracles [][]bvap.Match, res *ClusterSoakResult) error {
	type streamOut struct {
		log      []cluster.Match
		migrated int
		err      error
	}
	outs := make([]streamOut, opt.Streams)

	// Chaos control: the drivers report aggregate progress; the chaos
	// goroutine fires each event once when progress crosses its fraction.
	var progressMu sync.Mutex
	fed := 0
	total := 0
	for _, c := range corpora {
		total += len(c)
	}
	addProgress := func(n int) {
		progressMu.Lock()
		fed += n
		progressMu.Unlock()
	}
	progress := func() float64 {
		progressMu.Lock()
		defer progressMu.Unlock()
		return float64(fed) / float64(total)
	}

	stop := make(chan struct{})
	chaosErr := make(chan error, 1)
	go func() {
		defer close(chaosErr)
		coord := cluster.NewCoordinator(fleet.client, nil)
		type event struct {
			at      float64
			publish int // publish round (1-based), or 0 for a kill
		}
		var events []event
		for i := 0; i < opt.Publishes; i++ {
			events = append(events, event{at: float64(i+1) / float64(opt.Publishes+opt.Kills+1), publish: i + 1})
		}
		for i := 0; i < opt.Kills; i++ {
			events = append(events, event{at: float64(opt.Publishes+i+1) / float64(opt.Publishes+opt.Kills+1)})
		}
		// Once the streams finish, any events still pending fire
		// immediately: the counters always reflect the configured schedule,
		// and a publish or kill landing on a quiet fleet is harmless.
		draining := false
		next := 0
		for next < len(events) {
			if !draining {
				select {
				case <-stop:
					draining = true
				case <-time.After(time.Millisecond):
				}
				if !draining && progress() < events[next].at {
					continue
				}
			}
			ev := events[next]
			next++
			if ev.publish > 0 {
				// Rolling coordinated reload across the CURRENT live set,
				// always keeping the sentinel and the base set so stream
				// semantics never change under the fleet.
				pats := append(append([]string{}, patterns...), fmt.Sprintf("clgen%dy{%d}", ev.publish, 2+ev.publish))
				if _, err := coord.PublishTo(context.Background(), fleet.peers(),
					fmt.Sprintf("soak-round-%d", ev.publish), pats); err != nil {
					chaosErr <- fmt.Errorf("cluster soak: publish round %d: %w", ev.publish, err)
					return
				}
				progressMu.Lock()
				res.PublishesOK++
				progressMu.Unlock()
			} else {
				// Kill the first live node that still exists — forced,
				// mid-stream, connections severed.
				peers := fleet.peers()
				if len(peers) <= 1 {
					continue
				}
				fleet.kill(peers[0])
				progressMu.Lock()
				res.Kills++
				progressMu.Unlock()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := range corpora {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			log, migrated, err := driveClusterStream(opt, fleet, fmt.Sprintf("stream-%d", i), corpora[i], addProgress)
			outs[i] = streamOut{log: log, migrated: migrated, err: err}
		}(i)
	}
	wg.Wait()
	close(stop)
	if err := <-chaosErr; err != nil {
		return err
	}

	res.ReportsExact = true
	for i, out := range outs {
		if out.err != nil {
			return fmt.Errorf("cluster soak: stream %d: %w", i, out.err)
		}
		res.Migrations += out.migrated
		res.StreamReports += uint64(len(out.log))
		want := oracles[i]
		if len(out.log) != len(want) {
			res.ReportsExact = false
			return fmt.Errorf("cluster soak: stream %d delivered %d reports, oracle %d — exactly-once broken",
				i, len(out.log), len(want))
		}
		for j, m := range out.log {
			if m.Pattern != want[j].Pattern || m.End != want[j].End {
				res.ReportsExact = false
				return fmt.Errorf("cluster soak: stream %d report %d = %+v, oracle %+v — replay diverged",
					i, j, m, want[j])
			}
		}
	}
	return nil
}

// driveClusterStream feeds one corpus through the fleet with the
// truncate-on-resume exactly-once protocol. Matches from feeds are
// provisional; a wire checkpoint makes the log durable up to its position.
// On any transport failure the log rolls back to the durable prefix and the
// stream resumes on the ring's current owner from the durable bytes.
func driveClusterStream(opt ClusterSoakOptions, fleet *soakFleet, id string, corpus []byte, addProgress func(int)) ([]cluster.Match, int, error) {
	ctx := context.Background()
	var (
		log        []cluster.Match
		durableLen int
		durablePos int64
		durable    []byte // wire checkpoint; nil means "restart from zero"
		migrations int
	)
	owner := fleet.owner(id)
	if owner == "" {
		return nil, 0, errors.New("no live nodes")
	}
	if err := fleet.client.PostJSON(ctx, owner, "/cluster/session/open",
		cluster.SessionOpenRequest{SessionID: id, Interval: opt.Interval}, nil); err != nil {
		return nil, 0, fmt.Errorf("open on %s: %w", owner, err)
	}

	// migrate rolls back to the durable prefix and resumes on the current
	// owner. Feeds after the durable position re-run; replay determinism
	// makes the regenerated tail identical to the truncated one.
	migrate := func(cause error) error {
		var pe *cluster.PeerError
		if errors.As(cause, &pe) && pe.Status != 0 {
			// The node answered: a real protocol error, not a kill.
			return cause
		}
		log = log[:durableLen]
		migrations++
		for attempt := 0; attempt < opt.Nodes+1; attempt++ {
			owner = fleet.owner(id)
			if owner == "" {
				return errors.New("fleet has no live nodes")
			}
			var err error
			if durable == nil {
				err = fleet.client.PostJSON(ctx, owner, "/cluster/session/open",
					cluster.SessionOpenRequest{SessionID: id, Interval: opt.Interval}, nil)
			} else {
				err = fleet.client.PostJSON(ctx, owner, "/cluster/session/resume",
					cluster.SessionResumeRequest{SessionID: id, Checkpoint: durable, Interval: opt.Interval}, nil)
			}
			if err == nil {
				return nil
			}
			var pe *cluster.PeerError
			if errors.As(err, &pe) && pe.Status != 0 {
				return err
			}
			// The new owner died too; re-resolve and try again.
		}
		return fmt.Errorf("stream %s could not find a live owner", id)
	}

	pos := int(durablePos)
	sinceCk := 0
	for pos < len(corpus) {
		end := pos + opt.ChunkLen
		if end > len(corpus) {
			end = len(corpus)
		}
		var resp cluster.SessionResponse
		if err := fleet.client.PostJSON(ctx, owner, "/cluster/session/feed",
			cluster.SessionFeedRequest{SessionID: id, Chunk: corpus[pos:end]}, &resp); err != nil {
			if err = migrate(err); err != nil {
				return nil, migrations, err
			}
			pos = int(durablePos)
			sinceCk = 0
			continue
		}
		log = append(log, resp.Matches...)
		addProgress(end - pos)
		pos = end
		sinceCk++
		if sinceCk >= opt.CheckpointEvery || pos == len(corpus) {
			var ck cluster.SessionResponse
			if err := fleet.client.PostJSON(ctx, owner, "/cluster/session/checkpoint",
				cluster.SessionRequest{SessionID: id}, &ck); err != nil {
				if err = migrate(err); err != nil {
					return nil, migrations, err
				}
				pos = int(durablePos)
				sinceCk = 0
				continue
			}
			log = append(log, ck.Matches...)
			durable = ck.Checkpoint
			durablePos = ck.Pos
			durableLen = len(log)
			sinceCk = 0
		}
	}

	var cl cluster.SessionResponse
	if err := fleet.client.PostJSON(ctx, owner, "/cluster/session/close",
		cluster.SessionRequest{SessionID: id}, &cl); err != nil {
		// The final checkpoint ran at pos == len(corpus), so the log is
		// already durable and complete; a close lost to a kill drops
		// nothing. The dead node's session is reaped by its Node.Close.
		var pe *cluster.PeerError
		if errors.As(err, &pe) && pe.Status != 0 {
			return nil, migrations, err
		}
		return log, migrations, nil
	}
	return append(log, cl.Matches...), migrations, nil
}

// clusterQuotaPressure hammers the surviving fleet with a metered and an
// unmetered tenant. The metered tenant must hit its bucket; the unmetered
// tenant must never be refused.
func clusterQuotaPressure(opt ClusterSoakOptions, fleet *soakFleet, res *ClusterSoakResult) error {
	peers := fleet.peers()
	if len(peers) == 0 {
		return errors.New("cluster soak: no survivors for the quota phase")
	}
	// One attempt, no retry: a 429 is the signal under test, not a
	// transient to smooth over.
	client := cluster.NewClient(cluster.ClientConfig{
		MaxAttempts:    1,
		AttemptTimeout: 10 * time.Second,
		Breaker:        serve.BreakerConfig{Threshold: 1 << 20},
	})
	scan := func(tenant string) (refused bool, err error) {
		peer := peers[int(res.QuotaAllowed+res.QuotaRefused+res.OpenRefused)%len(peers)]
		req := cluster.ScanRequest{Input: []byte("noise-clsoakkz-noise"), Tenant: tenant}
		perr := client.PostJSON(context.Background(), peer, "/cluster/scan", req, nil)
		if perr == nil {
			return false, nil
		}
		var pe *cluster.PeerError
		if errors.As(perr, &pe) && pe.Status == http.StatusTooManyRequests {
			return true, nil
		}
		return false, perr
	}
	for i := 0; i < opt.QuotaScans; i++ {
		refused, err := scan("limited")
		if err != nil {
			return fmt.Errorf("cluster soak: metered scan: %w", err)
		}
		if refused {
			res.QuotaRefused++
		} else {
			res.QuotaAllowed++
		}
		if refused, err = scan(""); err != nil {
			return fmt.Errorf("cluster soak: unmetered scan: %w", err)
		} else if refused {
			res.OpenRefused++
		}
	}
	if res.QuotaRefused == 0 {
		return fmt.Errorf("cluster soak: metered tenant was never refused across %d scans", opt.QuotaScans)
	}
	if res.OpenRefused != 0 {
		return fmt.Errorf("cluster soak: unmetered tenant refused %d times; quotas must be per tenant", res.OpenRefused)
	}
	return nil
}

// clusterBench shapes the soak as a BENCH-schema report: the correctness
// cell's symbols and reports are counted; the control cell carries
// informational fleet counters.
func clusterBench(opt ClusterSoakOptions, res *ClusterSoakResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
			Archs:    []string{"cluster-correctness", "cluster-control"},
		},
	}
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "cluster-correctness",
		Patterns: res.Patterns,
		Symbols:  res.StreamSymbols,
		Matches:  res.StreamReports,
		Stalls: map[string]uint64{
			"nodes":      uint64(res.Nodes),
			"streams":    uint64(res.Streams),
			"kills":      uint64(res.Kills),
			"migrations": uint64(res.Migrations),
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  opt.Dataset,
		Arch:     "cluster-control",
		Patterns: res.Patterns,
		Stalls: map[string]uint64{
			"publishes_ok":  uint64(res.PublishesOK),
			"generation":    res.FinalGeneration,
			"quota_allowed": res.QuotaAllowed,
			"quota_refused": res.QuotaRefused,
			"open_refused":  res.OpenRefused,
		},
	})
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderClusterSoak prints the fleet soak summary.
func RenderClusterSoak(w io.Writer, res *ClusterSoakResult) {
	fmt.Fprintf(w, "Cluster soak — %d nodes, %d streams, %d patterns\n", res.Nodes, res.Streams, res.Patterns)
	fmt.Fprintf(w, "  exactly-once: %d symbols, %d reports (%d reference), exact=%v across %d kills and %d migrations\n",
		res.StreamSymbols, res.StreamReports, res.ReferenceReports, res.ReportsExact, res.Kills, res.Migrations)
	fmt.Fprintf(w, "  control:      %d coordinated publishes applied, surviving generation %d\n",
		res.PublishesOK, res.FinalGeneration)
	fmt.Fprintf(w, "  quotas:       metered tenant %d allowed / %d refused, unmetered refused %d\n",
		res.QuotaAllowed, res.QuotaRefused, res.OpenRefused)
	fmt.Fprintf(w, "  hygiene:      %d pooled streams checked out on survivors\n", res.StreamsOut)
}
