package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationShape(t *testing.T) {
	rows, err := Ablation(AblationOptions{Sample: 50, InputLen: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	base := byName["BVAP (adopted)"]
	if base.EnergyNorm != 1 || base.AreaNorm != 1 || base.FoMNorm != 1 {
		t.Fatalf("baseline not normalized to 1: %+v", base)
	}
	// The §3 argument: the naïve PE array costs far more area (the PE
	// count grows quadratically with the BVs per tile).
	if naive := byName["naive PE array (§3)"]; naive.AreaNorm < 2 {
		t.Errorf("naive PE area = %.2fx, expected a large penalty", naive.AreaNorm)
	}
	// The §5 routing trade: serial saves area but loses throughput;
	// parallel gains (some) throughput at a large area cost; the adopted
	// semi-parallel point has the best FoM of the three.
	serial := byName["serial routing (§5)"]
	parallel := byName["parallel routing (§5)"]
	if serial.AreaNorm >= 1 {
		t.Errorf("serial routing should save area: %.3f", serial.AreaNorm)
	}
	if serial.ThroughputNorm >= 1 {
		t.Errorf("serial routing should lose throughput: %.3f", serial.ThroughputNorm)
	}
	if parallel.AreaNorm <= 1 {
		t.Errorf("parallel routing should cost area: %.3f", parallel.AreaNorm)
	}
	if parallel.ThroughputNorm < 1 {
		t.Errorf("parallel routing should not lose throughput: %.3f", parallel.ThroughputNorm)
	}
	// The §6 argument: always-on BVM destroys throughput and wastes
	// energy on idle phases.
	always := byName["always-on BVM (§6)"]
	if always.ThroughputNorm >= 0.9 {
		t.Errorf("always-on BVM throughput = %.3f, expected a big loss", always.ThroughputNorm)
	}
	if always.EnergyNorm <= 1 {
		t.Errorf("always-on BVM energy = %.3f, expected a penalty", always.EnergyNorm)
	}
	// No variant should beat the adopted design's FoM decisively (ties
	// are possible when the knob doesn't bind on this dataset).
	for _, r := range rows {
		if r.FoMNorm < 0.85 {
			t.Errorf("%s beats the adopted FoM by %.3f — model inconsistency", r.Name, r.FoMNorm)
		}
	}
}

func TestAblationUnknownDataset(t *testing.T) {
	if _, err := Ablation(AblationOptions{Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRenderAblation(t *testing.T) {
	var buf bytes.Buffer
	RenderAblation(&buf, "Snort", []AblationRow{{Name: "x", EnergyNorm: 1, AreaNorm: 2, ThroughputNorm: 0.5, FoMNorm: 4}})
	if !strings.Contains(buf.String(), "Ablation") || !strings.Contains(buf.String(), "Snort") {
		t.Fatal("render output wrong")
	}
}
