// Package experiments reproduces the paper's evaluation (§8): the Fig. 11
// and Fig. 12 micro-benchmarks, the Fig. 13 design space exploration, the
// Table 5 best-FoM parameter selection, the Fig. 14 real-world comparison,
// and the headline summary numbers. Each experiment returns structured
// rows; the renderers in this package print them in the shape the paper
// reports, and cmd/bvapbench / the top-level benchmarks drive them.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
)

// microPrefix is the 16-fold concatenation of 'a' used as r in the §8
// micro-benchmarks ("the average number of normal STEs [in RegexLib] is
// 16").
const microPrefixLen = 16

func microPrefix() string { return strings.Repeat("a", microPrefixLen) }

// runBVAP compiles patterns and runs the BVAP simulator over input,
// returning finished stats. customSize selects the micro-benchmark sizing.
func runBVAP(patterns []string, opt compiler.Options, input []byte, streaming, customSize bool) (*hwsim.Stats, error) {
	res, err := compiler.Compile(patterns, opt)
	if err != nil {
		return nil, err
	}
	sys, err := hwsim.NewBVAPSystem(res.Config, streaming)
	if err != nil {
		return nil, err
	}
	if customSize {
		sys.SetCustomSizing()
	}
	sys.Run(input)
	return sys.Finish(), nil
}

// runBaseline runs one of CAMA/CA/eAP/CNT over input.
func runBaseline(arch archmodel.Arch, patterns []string, input []byte, customSize bool) (*hwsim.Stats, error) {
	var ms []compiler.BaselineMachine
	if arch == archmodel.CNT {
		ms = compiler.CompileCNT(patterns)
	} else {
		ms = compiler.CompileBaseline(patterns)
	}
	sys, err := hwsim.NewBaselineSystem(arch, ms)
	if err != nil {
		return nil, err
	}
	if customSize {
		sys.SetCustomSizing()
	}
	sys.Run(input)
	return sys.Finish(), nil
}

// microInput builds the micro-benchmark stream: filler symbols with planted
// runs of 'a' long enough to arm the 16-symbol prefix and then drive the
// counting STE, so that the fraction of BV-activating positions is close to
// alpha. tailLen controls the run length past the arming prefix.
func microInput(seed int64, n int, alpha float64, tailLen int, tail byte) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = 'z'
	}
	runLen := microPrefixLen + tailLen
	if runLen > n {
		runLen = n
	}
	runs := int(alpha * float64(n) / float64(tailLen))
	if runs < 1 {
		runs = 1
	}
	for k := 0; k < runs; k++ {
		pos := r.Intn(n - runLen + 1)
		for j := 0; j < runLen; j++ {
			if j < microPrefixLen {
				out[pos+j] = 'a'
			} else {
				out[pos+j] = tail
			}
		}
	}
	return out
}

// Fig11Point is one bar of Fig. 11: BVAP's energy per symbol and compute
// density normalized to CAMA at a given repetition bound n and activation
// ratio α.
type Fig11Point struct {
	N           int
	Alpha       float64
	EnergyNorm  float64 // BVAP / CAMA, lower is better
	DensityNorm float64 // BVAP / CAMA, higher is better
}

// Fig11Options parameterizes the sweep; zero values select the paper's
// configuration.
type Fig11Options struct {
	Ns       []int
	Alphas   []float64
	InputLen int
	Seed     int64
}

func (o *Fig11Options) fill() {
	if len(o.Ns) == 0 {
		o.Ns = []int{8, 16, 32, 64, 128, 256, 512}
	}
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{0.05, 0.10, 0.15, 0.20}
	}
	if o.InputLen == 0 {
		o.InputLen = 20000
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
}

// Fig11 sweeps the regex r·a{n} across bounds and activation ratios.
func Fig11(opt Fig11Options) ([]Fig11Point, error) {
	opt.fill()
	var out []Fig11Point
	for _, n := range opt.Ns {
		pat := fmt.Sprintf("%sa{%d}", microPrefix(), n)
		for _, alpha := range opt.Alphas {
			input := microInput(opt.Seed, opt.InputLen, alpha, n, 'a')
			bvap, err := runBVAP([]string{pat}, compiler.DefaultOptions(), input, false, true)
			if err != nil {
				return nil, fmt.Errorf("fig11 n=%d: %v", n, err)
			}
			cama, err := runBaseline(archmodel.CAMA, []string{pat}, input, true)
			if err != nil {
				return nil, fmt.Errorf("fig11 n=%d cama: %v", n, err)
			}
			b := metrics.FromStats("BVAP", bvap)
			c := metrics.FromStats("CAMA", cama)
			out = append(out, Fig11Point{
				N:           n,
				Alpha:       alpha,
				EnergyNorm:  safeDiv(b.EnergyPerSymbolNJ, c.EnergyPerSymbolNJ),
				DensityNorm: safeDiv(b.ComputeDensity, c.ComputeDensity),
			})
		}
	}
	return out, nil
}

// Fig12Point is one x-position of Fig. 12: BVAP and CNT normalized to CAMA
// for the regex r·a{64}·b{m}.
type Fig12Point struct {
	M               int
	BVAPEnergyNorm  float64
	CNTEnergyNorm   float64
	BVAPDensityNorm float64
	CNTDensityNorm  float64
}

// Fig12Options parameterizes the sweep.
type Fig12Options struct {
	Ms       []int
	InputLen int
	Seed     int64
}

func (o *Fig12Options) fill() {
	if len(o.Ms) == 0 {
		o.Ms = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	if o.InputLen == 0 {
		o.InputLen = 20000
	}
	if o.Seed == 0 {
		o.Seed = 12
	}
}

// Fig12 compares BVAP against CNT (CAMA plus counter elements) and CAMA.
func Fig12(opt Fig12Options) ([]Fig12Point, error) {
	opt.fill()
	var out []Fig12Point
	for _, m := range opt.Ms {
		pat := fmt.Sprintf("%sa{64}b{%d}", microPrefix(), m)
		// The stream plants a^(16+64) b^m runs at α ≈ 10%.
		input := fig12Input(opt.Seed, opt.InputLen, 0.10, m)
		stats := map[string]*hwsim.Stats{}
		b, err := runBVAP([]string{pat}, compiler.DefaultOptions(), input, false, true)
		if err != nil {
			return nil, fmt.Errorf("fig12 m=%d: %v", m, err)
		}
		stats["BVAP"] = b
		for _, arch := range []archmodel.Arch{archmodel.CNT, archmodel.CAMA} {
			s, err := runBaseline(arch, []string{pat}, input, true)
			if err != nil {
				return nil, fmt.Errorf("fig12 m=%d %v: %v", m, arch, err)
			}
			stats[arch.String()] = s
		}
		pb := metrics.FromStats("BVAP", stats["BVAP"])
		pc := metrics.FromStats("CNT", stats["CNT"])
		pm := metrics.FromStats("CAMA", stats["CAMA"])
		out = append(out, Fig12Point{
			M:               m,
			BVAPEnergyNorm:  safeDiv(pb.EnergyPerSymbolNJ, pm.EnergyPerSymbolNJ),
			CNTEnergyNorm:   safeDiv(pc.EnergyPerSymbolNJ, pm.EnergyPerSymbolNJ),
			BVAPDensityNorm: safeDiv(pb.ComputeDensity, pm.ComputeDensity),
			CNTDensityNorm:  safeDiv(pc.ComputeDensity, pm.ComputeDensity),
		})
	}
	return out, nil
}

func fig12Input(seed int64, n int, alpha float64, m int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = 'z'
	}
	runLen := microPrefixLen + 64 + m
	if runLen > n/2 {
		runLen = n / 2
	}
	active := microPrefixLen + 64 + m
	runs := int(alpha * float64(n) / float64(active))
	if runs < 1 {
		runs = 1
	}
	for k := 0; k < runs; k++ {
		pos := r.Intn(n - runLen + 1)
		for j := 0; j < runLen; j++ {
			switch {
			case j < microPrefixLen+64:
				out[pos+j] = 'a'
			default:
				out[pos+j] = 'b'
			}
		}
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
