package experiments

import (
	"fmt"
	"io"
	"sort"
)

// RenderFig11 prints the micro-benchmark sweep as the two panels of
// Fig. 11 (energy per symbol and compute density, normalized to CAMA).
func RenderFig11(w io.Writer, points []Fig11Point) {
	fmt.Fprintln(w, "Figure 11 — r·a{n} micro-benchmark, BVAP normalized to CAMA")
	fmt.Fprintln(w, "(energy: lower is better; density: higher is better)")
	alphas := map[float64]bool{}
	ns := map[int]bool{}
	for _, p := range points {
		alphas[p.Alpha] = true
		ns[p.N] = true
	}
	alphaList := sortedFloats(alphas)
	nList := sortedInts(ns)
	byKey := map[[2]int]Fig11Point{}
	for _, p := range points {
		byKey[[2]int{p.N, int(p.Alpha * 1000)}] = p
	}
	for _, panel := range []string{"energy/symbol", "compute density"} {
		fmt.Fprintf(w, "\n%-18s", panel+" n=")
		for _, n := range nList {
			fmt.Fprintf(w, "%8d", n)
		}
		fmt.Fprintln(w)
		for _, a := range alphaList {
			fmt.Fprintf(w, "  alpha=%-9.0f%%", a*100)
			for _, n := range nList {
				p := byKey[[2]int{n, int(a * 1000)}]
				v := p.EnergyNorm
				if panel == "compute density" {
					v = p.DensityNorm
				}
				fmt.Fprintf(w, "%8.3f", v)
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig12 prints the CNT comparison of Fig. 12.
func RenderFig12(w io.Writer, points []Fig12Point) {
	fmt.Fprintln(w, "Figure 12 — r·a{64}·b{m}, normalized to CAMA")
	fmt.Fprintf(w, "%6s  %14s %14s  %16s %16s\n", "m",
		"BVAP energy", "CNT energy", "BVAP density", "CNT density")
	for _, p := range points {
		fmt.Fprintf(w, "%6d  %14.3f %14.3f  %16.3f %16.3f\n",
			p.M, p.BVAPEnergyNorm, p.CNTEnergyNorm, p.BVAPDensityNorm, p.CNTDensityNorm)
	}
}

// RenderFig13 prints the DSE grid of Fig. 13 per dataset.
func RenderFig13(w io.Writer, points []DSEPoint) {
	fmt.Fprintln(w, "Figure 13 — design space exploration, normalized to CAMA")
	byDataset := map[string][]DSEPoint{}
	var names []string
	for _, p := range points {
		if _, ok := byDataset[p.Dataset]; !ok {
			names = append(names, p.Dataset)
		}
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "\n%s:\n", name)
		fmt.Fprintf(w, "  %8s %10s  %10s %10s %10s\n", "bv_size", "unfold_th", "density", "EDP", "FoM")
		for _, p := range byDataset[name] {
			fmt.Fprintf(w, "  %8d %10d  %10.3f %10.3f %10.3f\n",
				p.BVSize, p.UnfoldTh, p.DensityNorm, p.EDPNorm, p.FoMNorm)
		}
	}
}

// RenderTable5 prints the best-FoM parameter table.
func RenderTable5(w io.Writer, best []BestParams) {
	fmt.Fprintln(w, "Table 5 — parameters with the best FoM per dataset")
	fmt.Fprintf(w, "%-14s %8s %10s %12s\n", "dataset", "bv_size", "unfold_th", "FoM vs CAMA")
	sorted := append([]BestParams(nil), best...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dataset < sorted[j].Dataset })
	for _, b := range sorted {
		fmt.Fprintf(w, "%-14s %8d %10d %12.3f\n", b.Dataset, b.BVSize, b.UnfoldTh, b.FoMNorm)
	}
}

// RenderFig14 prints the real-world benchmark comparison normalized to CA.
func RenderFig14(w io.Writer, rows []Fig14Row) {
	fmt.Fprintln(w, "Figure 14 — real-world benchmarks, normalized to CA")
	archOrder := []string{"BVAP", "BVAP-S", "CAMA", "eAP", "CA"}
	for _, row := range rows {
		fmt.Fprintf(w, "\n%s (CA absolute: %.3f nJ/B, %.2f mm², %.2f Gbps):\n",
			row.Dataset,
			row.Points["CA"].EnergyPerSymbolNJ,
			row.Points["CA"].AreaMm2,
			row.Points["CA"].ThroughputGbps)
		fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s %10s\n",
			"arch", "area", "energy/B", "power", "density", "thpt", "FoM")
		for _, a := range archOrder {
			n, ok := row.Norm[a]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.4f\n",
				a, n.AreaMm2, n.EnergyPerSymbolNJ, n.PowerW, n.ComputeDensity,
				n.ThroughputGbps, n.FoM)
		}
	}
}

// RenderSummary prints the headline aggregate claims next to the paper's
// published numbers.
func RenderSummary(w io.Writer, s Summary) {
	fmt.Fprintln(w, "Summary — BVAP vs baselines (geometric mean across datasets)")
	fmt.Fprintf(w, "  %-38s %10s %10s\n", "claim", "measured", "paper")
	row := func(name string, got float64, paper string) {
		fmt.Fprintf(w, "  %-38s %9.1f%% %10s\n", name, got*100, paper)
	}
	row("energy reduction vs CAMA", s.EnergyReductionVsCAMA, "67%")
	row("energy reduction vs CA", s.EnergyReductionVsCA, "95%")
	row("energy reduction vs eAP", s.EnergyReductionVsEAP, "94%")
	row("area reduction vs CAMA", s.AreaReductionVsCAMA, "42-68%")
	row("area reduction vs CA", s.AreaReductionVsCA, "42-68%")
	row("area reduction vs eAP", s.AreaReductionVsEAP, "42-68%")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs CAMA", s.FoMGainVsCAMA, "4.3x")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs CA", s.FoMGainVsCA, "50x")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs eAP", s.FoMGainVsEAP, "33x")
	row("compute density gain vs CA", s.DensityVsCA, "+134%")
	row("compute density gain vs eAP", s.DensityVsEAP, "+62%")
	row("throughput loss vs CAMA", s.ThroughputVsCAMA, "11.2%")
	row("BVAP-S energy saving vs BVAP", s.SEnergySaving, "39%")
	row("BVAP-S power saving vs BVAP", s.SPowerSaving, "79%")
	row("BVAP-S throughput loss vs BVAP", s.SThroughputLoss, "67%")
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedFloats(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
