package experiments

import (
	"fmt"
	"io"
	"sort"

	"bvap/internal/hwsim"
	"bvap/internal/profile"
)

// RenderFig11 prints the micro-benchmark sweep as the two panels of
// Fig. 11 (energy per symbol and compute density, normalized to CAMA).
func RenderFig11(w io.Writer, points []Fig11Point) {
	fmt.Fprintln(w, "Figure 11 — r·a{n} micro-benchmark, BVAP normalized to CAMA")
	fmt.Fprintln(w, "(energy: lower is better; density: higher is better)")
	alphas := map[float64]bool{}
	ns := map[int]bool{}
	for _, p := range points {
		alphas[p.Alpha] = true
		ns[p.N] = true
	}
	alphaList := sortedFloats(alphas)
	nList := sortedInts(ns)
	byKey := map[[2]int]Fig11Point{}
	for _, p := range points {
		byKey[[2]int{p.N, int(p.Alpha * 1000)}] = p
	}
	for _, panel := range []string{"energy/symbol", "compute density"} {
		fmt.Fprintf(w, "\n%-18s", panel+" n=")
		for _, n := range nList {
			fmt.Fprintf(w, "%8d", n)
		}
		fmt.Fprintln(w)
		for _, a := range alphaList {
			fmt.Fprintf(w, "  alpha=%-9.0f%%", a*100)
			for _, n := range nList {
				p := byKey[[2]int{n, int(a * 1000)}]
				v := p.EnergyNorm
				if panel == "compute density" {
					v = p.DensityNorm
				}
				fmt.Fprintf(w, "%8.3f", v)
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig12 prints the CNT comparison of Fig. 12.
func RenderFig12(w io.Writer, points []Fig12Point) {
	fmt.Fprintln(w, "Figure 12 — r·a{64}·b{m}, normalized to CAMA")
	fmt.Fprintf(w, "%6s  %14s %14s  %16s %16s\n", "m",
		"BVAP energy", "CNT energy", "BVAP density", "CNT density")
	for _, p := range points {
		fmt.Fprintf(w, "%6d  %14.3f %14.3f  %16.3f %16.3f\n",
			p.M, p.BVAPEnergyNorm, p.CNTEnergyNorm, p.BVAPDensityNorm, p.CNTDensityNorm)
	}
}

// RenderFig13 prints the DSE grid of Fig. 13 per dataset.
func RenderFig13(w io.Writer, points []DSEPoint) {
	fmt.Fprintln(w, "Figure 13 — design space exploration, normalized to CAMA")
	byDataset := map[string][]DSEPoint{}
	var names []string
	for _, p := range points {
		if _, ok := byDataset[p.Dataset]; !ok {
			names = append(names, p.Dataset)
		}
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "\n%s:\n", name)
		fmt.Fprintf(w, "  %8s %10s  %10s %10s %10s\n", "bv_size", "unfold_th", "density", "EDP", "FoM")
		for _, p := range byDataset[name] {
			fmt.Fprintf(w, "  %8d %10d  %10.3f %10.3f %10.3f\n",
				p.BVSize, p.UnfoldTh, p.DensityNorm, p.EDPNorm, p.FoMNorm)
		}
	}
}

// RenderTable5 prints the best-FoM parameter table.
func RenderTable5(w io.Writer, best []BestParams) {
	fmt.Fprintln(w, "Table 5 — parameters with the best FoM per dataset")
	fmt.Fprintf(w, "%-14s %8s %10s %12s\n", "dataset", "bv_size", "unfold_th", "FoM vs CAMA")
	sorted := append([]BestParams(nil), best...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dataset < sorted[j].Dataset })
	for _, b := range sorted {
		fmt.Fprintf(w, "%-14s %8d %10d %12.3f\n", b.Dataset, b.BVSize, b.UnfoldTh, b.FoMNorm)
	}
}

// RenderFig14 prints the real-world benchmark comparison normalized to CA.
func RenderFig14(w io.Writer, rows []Fig14Row) {
	fmt.Fprintln(w, "Figure 14 — real-world benchmarks, normalized to CA")
	archOrder := []string{"BVAP", "BVAP-S", "CAMA", "eAP", "CA"}
	for _, row := range rows {
		fmt.Fprintf(w, "\n%s (CA absolute: %.3f nJ/B, %.2f mm², %.2f Gbps):\n",
			row.Dataset,
			row.Points["CA"].EnergyPerSymbolNJ,
			row.Points["CA"].AreaMm2,
			row.Points["CA"].ThroughputGbps)
		fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s %10s\n",
			"arch", "area", "energy/B", "power", "density", "thpt", "FoM")
		for _, a := range archOrder {
			n, ok := row.Norm[a]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.4f\n",
				a, n.AreaMm2, n.EnergyPerSymbolNJ, n.PowerW, n.ComputeDensity,
				n.ThroughputGbps, n.FoM)
		}
	}
}

// RenderSummary prints the headline aggregate claims next to the paper's
// published numbers.
func RenderSummary(w io.Writer, s Summary) {
	fmt.Fprintln(w, "Summary — BVAP vs baselines (geometric mean across datasets)")
	fmt.Fprintf(w, "  %-38s %10s %10s\n", "claim", "measured", "paper")
	row := func(name string, got float64, paper string) {
		fmt.Fprintf(w, "  %-38s %9.1f%% %10s\n", name, got*100, paper)
	}
	row("energy reduction vs CAMA", s.EnergyReductionVsCAMA, "67%")
	row("energy reduction vs CA", s.EnergyReductionVsCA, "95%")
	row("energy reduction vs eAP", s.EnergyReductionVsEAP, "94%")
	row("area reduction vs CAMA", s.AreaReductionVsCAMA, "42-68%")
	row("area reduction vs CA", s.AreaReductionVsCA, "42-68%")
	row("area reduction vs eAP", s.AreaReductionVsEAP, "42-68%")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs CAMA", s.FoMGainVsCAMA, "4.3x")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs CA", s.FoMGainVsCA, "50x")
	fmt.Fprintf(w, "  %-38s %9.1fx %10s\n", "FoM gain vs eAP", s.FoMGainVsEAP, "33x")
	row("compute density gain vs CA", s.DensityVsCA, "+134%")
	row("compute density gain vs eAP", s.DensityVsEAP, "+62%")
	row("throughput loss vs CAMA", s.ThroughputVsCAMA, "11.2%")
	row("BVAP-S energy saving vs BVAP", s.SEnergySaving, "39%")
	row("BVAP-S power saving vs BVAP", s.SPowerSaving, "79%")
	row("BVAP-S throughput loss vs BVAP", s.SThroughputLoss, "67%")
}

// shadeRamp maps normalized intensity to ASCII shade, blank → densest.
const shadeRamp = " .:-=+*#%@"

// maxHeatRows caps how many heatmap rows render; dense placements would
// otherwise scroll for pages.
const maxHeatRows = 48

func shadeFor(v, max float64) byte {
	if max <= 0 || v <= 0 {
		return shadeRamp[0]
	}
	i := int(v / max * float64(len(shadeRamp)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(shadeRamp) {
		i = len(shadeRamp) - 1
	}
	return shadeRamp[i]
}

// RenderHeatmap prints h as an ASCII shade matrix: one row per heatmap row
// (labelled by label), one column per used cycle bucket, intensity
// normalized to the matrix maximum. Rows beyond maxHeatRows are summarized.
// Nil or empty heatmaps print a placeholder line.
func RenderHeatmap(w io.Writer, title string, h *profile.Heatmap, label func(r int) string) {
	if h == nil || h.UsedCols() == 0 || h.Max() == 0 {
		fmt.Fprintf(w, "%s: (no activity)\n", title)
		return
	}
	used := h.UsedCols()
	max := h.Max()
	fmt.Fprintf(w, "%s (%d buckets × %d cycles, max %.3g, ramp %q)\n",
		title, used, h.BucketCycles(), max, shadeRamp)
	rows := h.Rows()
	shown := rows
	if shown > maxHeatRows {
		shown = maxHeatRows
	}
	width := 0
	for r := 0; r < shown; r++ {
		if n := len(label(r)); n > width {
			width = n
		}
	}
	for r := 0; r < shown; r++ {
		fmt.Fprintf(w, "  %-*s |", width, label(r))
		for c := 0; c < used; c++ {
			fmt.Fprintf(w, "%c", shadeFor(h.Value(r, c), max))
		}
		fmt.Fprintln(w, "|")
	}
	if rows > shown {
		fmt.Fprintf(w, "  … %d more rows elided\n", rows-shown)
	}
}

// RenderHotStates prints the hot-state ranking as a table.
func RenderHotStates(w io.Writer, hot []profile.HotState) {
	if len(hot) == 0 {
		fmt.Fprintln(w, "hot states: (none activated)")
		return
	}
	fmt.Fprintf(w, "%-8s %6s %6s %12s  %s\n", "machine", "ste", "tile", "activations", "pattern")
	for _, h := range hot {
		tile := "-"
		if h.Tile >= 0 {
			tile = fmt.Sprintf("%d", h.Tile)
		}
		fmt.Fprintf(w, "%-8d %6d %6s %12d  %s\n", h.Machine, h.STE, tile, h.Activations, truncatePattern(h.Pattern, 40))
	}
}

// RenderAttribution prints the per-pattern energy partition, highest energy
// first, capped at topK rows (0 = all).
func RenderAttribution(w io.Writer, a profile.Attribution, topK int) {
	fmt.Fprintf(w, "energy attribution: %.3f nJ total, %.3g pJ unattributed\n",
		a.TotalPJ/1000, a.UnattributedPJ)
	rows := append([]profile.PatternEnergy(nil), a.Patterns...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].EnergyPJ > rows[j].EnergyPJ })
	if topK > 0 && len(rows) > topK {
		rows = rows[:topK]
	}
	fmt.Fprintf(w, "%12s %7s  %s\n", "energy (pJ)", "share", "pattern")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.3f %6.1f%%  %s\n", r.EnergyPJ, r.Share*100, truncatePattern(r.Pattern, 48))
	}
}

// RenderProfile prints one run's full profile: tile-occupancy and
// stall-cause heatmaps, hot states, and energy attribution weights. The
// attribution table itself needs the terminal Stats and is rendered by the
// callers that hold them; here the ranking and heatmaps suffice.
func RenderProfile(w io.Writer, title string, p *profile.Profiler, topK int) {
	fmt.Fprintf(w, "\n== profile: %s (%d symbols, %d cycles, %d matches) ==\n",
		title, p.Symbols(), p.Cycles(), p.Matches())
	RenderHeatmap(w, "tile occupancy", p.TileHeatmap(), func(r int) string {
		return fmt.Sprintf("tile%d", r)
	})
	RenderHeatmap(w, "stall cycles", p.StallHeatmap(), func(r int) string {
		return hwsim.StallCause(r).String()
	})
	RenderHotStates(w, p.HotStates(topK))
}

// RenderPerf prints a BENCH report as a per-dataset table.
func RenderPerf(w io.Writer, rep *BenchReport) {
	fmt.Fprintf(w, "perf harness — schema v%d, %s/%s %s, bv_size=%d unfold_th=%d sample=%d input=%dB\n",
		rep.SchemaVersion, rep.Environment.GOOS, rep.Environment.GOARCH,
		rep.Environment.GoVersion, rep.Params.BVSize, rep.Params.UnfoldTh,
		rep.Params.Sample, rep.Params.InputLen)
	fmt.Fprintf(w, "%-14s %-8s %10s %10s %12s %10s %10s %10s\n",
		"dataset", "arch", "cycles", "matches", "energy nJ", "nJ/B", "stalls", "run ms")
	for _, c := range rep.Cells {
		fmt.Fprintf(w, "%-14s %-8s %10d %10d %12.3f %10.4f %10d %10.1f\n",
			c.Dataset, c.Arch, c.Cycles, c.Matches, c.EnergyPJ/1000,
			c.EnergyPerSymbolNJ, c.StallCycles, c.RunMs)
	}
	fmt.Fprintf(w, "peak RSS %.1f MiB\n", float64(rep.PeakRSSBytes)/(1<<20))
}

// RenderRegressions prints a CompareBench verdict.
func RenderRegressions(w io.Writer, regs []Regression) {
	if len(regs) == 0 {
		fmt.Fprintln(w, "baseline compare: PASS (no metric outside thresholds)")
		return
	}
	fmt.Fprintf(w, "baseline compare: FAIL — %d regression(s)\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(w, "  %s\n", r.String())
	}
}

func truncatePattern(p string, n int) string {
	if len(p) <= n {
		return p
	}
	return p[:n-1] + "…"
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedFloats(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
