package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyPerf runs the smallest meaningful perf matrix: one dataset, the
// paper's design plus one baseline.
func tinyPerf(t *testing.T) *BenchReport {
	t.Helper()
	rep, err := Perf(PerfOptions{
		Datasets: []string{"Prosite"},
		Archs:    []string{"BVAP", "CAMA"},
		Sample:   6,
		InputLen: 300,
	})
	if err != nil {
		t.Fatalf("Perf: %v", err)
	}
	return rep
}

func TestPerfReportShape(t *testing.T) {
	rep := tinyPerf(t)
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d", rep.SchemaVersion)
	}
	if rep.Environment.GoVersion == "" || rep.Environment.NumCPU < 1 {
		t.Fatalf("environment block incomplete: %+v", rep.Environment)
	}
	if rep.Params.BVSize != 64 || rep.Params.UnfoldTh != 8 {
		t.Fatalf("perf params not pinned: %+v", rep.Params)
	}
	if rep.PeakRSSBytes == 0 {
		t.Fatal("peak RSS not recorded")
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Dataset != "Prosite" {
			t.Fatalf("cell dataset %q", c.Dataset)
		}
		if c.Symbols != 300 {
			t.Fatalf("%s: symbols %d, want 300", c.Arch, c.Symbols)
		}
		if c.Cycles == 0 || c.EnergyPJ <= 0 {
			t.Fatalf("%s: empty counted metrics: %+v", c.Arch, c)
		}
		if len(c.StagesPJ) == 0 {
			t.Fatalf("%s: no stage breakdown", c.Arch)
		}
		if len(c.TopPatterns) == 0 || len(c.TopPatterns) > rep.Params.TopPatterns {
			t.Fatalf("%s: %d top patterns", c.Arch, len(c.TopPatterns))
		}
		for _, r := range c.TopPatterns {
			if r.Pattern == "" {
				t.Fatalf("%s: attribution row without pattern", c.Arch)
			}
		}
	}
}

// TestPerfCountedMetricsDeterministic pins the comparability premise: the
// counted metrics are bit-identical across runs of the same commit.
func TestPerfCountedMetricsDeterministic(t *testing.T) {
	a, b := tinyPerf(t), tinyPerf(t)
	for i := range a.Cells {
		x, y := a.Cells[i], b.Cells[i]
		if x.Symbols != y.Symbols || x.Matches != y.Matches ||
			x.Cycles != y.Cycles || x.StallCycles != y.StallCycles ||
			x.EnergyPJ != y.EnergyPJ {
			t.Fatalf("counted metrics differ across runs:\n%+v\n%+v", x, y)
		}
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir → %q", p)
	}
	for _, name := range []string{"BENCH_3.json", "BENCH_7.json", "BENCH_x.json", "BENCHMARK.json", "BENCH_2.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_8.json" {
		t.Fatalf("after BENCH_7 → %q", p)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := tinyPerf(t)
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := WriteBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != rep.SchemaVersion || len(got.Cells) != len(rep.Cells) {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	for i := range got.Cells {
		if got.Cells[i].EnergyPJ != rep.Cells[i].EnergyPJ || got.Cells[i].Cycles != rep.Cells[i].Cycles {
			t.Fatalf("cell %d: counted metrics mutated by round trip", i)
		}
	}
	if regs := CompareBench(got, rep, Thresholds{}); len(regs) != 0 {
		t.Fatalf("self-compare after round trip regressed: %v", regs)
	}
}

func fakeReport(cells ...BenchCell) *BenchReport {
	return &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Params:        BenchParams{BVSize: 64, UnfoldTh: 8, Sample: 6, InputLen: 300},
		Cells:         cells,
	}
}

func fakeCell() BenchCell {
	return BenchCell{
		Dataset: "Prosite", Arch: "BVAP",
		Symbols: 300, Matches: 12, Cycles: 1000, EnergyPJ: 5000, Allocs: 400,
	}
}

func TestCompareBenchPassAndRegress(t *testing.T) {
	base := fakeReport(fakeCell())

	// Identical → pass.
	if regs := CompareBench(fakeReport(fakeCell()), base, Thresholds{}); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}

	// Within threshold and improvements → pass.
	ok := fakeCell()
	ok.Cycles = 1200   // +20% < 25%
	ok.EnergyPJ = 4000 // improvement
	ok.Allocs = 100    // improvement
	if regs := CompareBench(fakeReport(ok), base, Thresholds{}); len(regs) != 0 {
		t.Fatalf("in-threshold drift regressed: %v", regs)
	}

	// Injected regressions: cycles beyond threshold, exact-metric drift.
	bad := fakeCell()
	bad.Cycles = 1400 // +40% > 25%
	bad.Matches = 11  // exact metric
	regs := CompareBench(fakeReport(bad), base, Thresholds{})
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	byMetric := map[string]Regression{}
	for _, r := range regs {
		byMetric[r.Metric] = r
	}
	if r, ok := byMetric["cycles"]; !ok || r.Exact || r.LimitFrac != 0.25 {
		t.Fatalf("cycles regression malformed: %+v", byMetric)
	}
	if r, ok := byMetric["matches"]; !ok || !r.Exact {
		t.Fatalf("matches regression malformed: %+v", byMetric)
	}
	for _, r := range regs {
		if !strings.Contains(r.String(), "Prosite/BVAP") {
			t.Fatalf("regression string lacks cell: %q", r.String())
		}
	}

	// Custom thresholds apply.
	if regs := CompareBench(fakeReport(ok), base, Thresholds{CyclesFrac: 0.10}); len(regs) != 1 {
		t.Fatalf("tight threshold: %v", regs)
	}

	// Energy growing from a zero baseline is a regression regardless of
	// ratio.
	zero := fakeCell()
	zero.EnergyPJ = 0
	grown := fakeCell()
	grown.EnergyPJ = 1
	if regs := CompareBench(fakeReport(grown), fakeReport(zero), Thresholds{}); len(regs) != 1 {
		t.Fatalf("zero-baseline growth: %v", regs)
	}
}

func TestCompareBenchStructuralMismatches(t *testing.T) {
	base := fakeReport(fakeCell())

	// Missing cell.
	if regs := CompareBench(fakeReport(), base, Thresholds{}); len(regs) != 1 || regs[0].Metric != "missing_cell" {
		t.Fatalf("missing cell: %v", regs)
	}
	// Extra cells in current are fine.
	extra := fakeCell()
	extra.Arch = "CAMA"
	if regs := CompareBench(fakeReport(fakeCell(), extra), base, Thresholds{}); len(regs) != 0 {
		t.Fatalf("extra cell regressed: %v", regs)
	}
	// Schema mismatch short-circuits.
	cur := fakeReport(fakeCell())
	cur.SchemaVersion = BenchSchemaVersion + 1
	if regs := CompareBench(cur, base, Thresholds{}); len(regs) != 1 || regs[0].Metric != "schema_version" {
		t.Fatalf("schema mismatch: %v", regs)
	}
	// Workload-parameter mismatch short-circuits.
	cur = fakeReport(fakeCell())
	cur.Params.InputLen = 999
	if regs := CompareBench(cur, base, Thresholds{}); len(regs) != 1 || regs[0].Metric != "params" {
		t.Fatalf("params mismatch: %v", regs)
	}
}

func TestRenderPerfAndRegressions(t *testing.T) {
	rep := tinyPerf(t)
	var sb strings.Builder
	RenderPerf(&sb, rep)
	out := sb.String()
	for _, want := range []string{"schema v1", "Prosite", "BVAP", "CAMA", "peak RSS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderPerf output lacks %q:\n%s", want, out)
		}
	}
	sb.Reset()
	RenderRegressions(&sb, nil)
	if !strings.Contains(sb.String(), "PASS") {
		t.Fatalf("empty regressions: %q", sb.String())
	}
	sb.Reset()
	RenderRegressions(&sb, []Regression{{Dataset: "d", Arch: "a", Metric: "cycles", Base: 1, Current: 2, LimitFrac: 0.25}})
	if !strings.Contains(sb.String(), "FAIL") || !strings.Contains(sb.String(), "d/a cycles") {
		t.Fatalf("regression rendering: %q", sb.String())
	}
}
