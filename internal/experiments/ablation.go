package experiments

import (
	"fmt"
	"io"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/datasets"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
)

// AblationRow is one design variant's metrics normalized to the adopted
// BVAP design point (semi-parallel routing, event-driven BVM, virtual BV
// sizing, shared-crossbar BVM instead of a per-transition PE array).
type AblationRow struct {
	Name           string
	EnergyNorm     float64 // lower is better
	AreaNorm       float64 // lower is better
	ThroughputNorm float64 // higher is better
	FoMNorm        float64 // lower is better
}

// AblationOptions parameterizes the ablation run.
type AblationOptions struct {
	Dataset  string
	Sample   int
	InputLen int
}

func (o *AblationOptions) fill() {
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 60
	}
	if o.InputLen == 0 {
		o.InputLen = 4096
	}
}

// Ablation quantifies each BVAP design decision by disabling it in
// isolation and re-running the cycle simulation on a counting-heavy
// dataset. The variants mirror the alternatives §3, §5 and §6 argue
// against.
func Ablation(opt AblationOptions) ([]AblationRow, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, err
	}
	patterns := prof.Sample(opt.Sample)
	input := prof.Input(opt.InputLen, patterns)
	res, err := compiler.Compile(patterns, compiler.DefaultOptions())
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		v    hwsim.Variant
	}{
		{"BVAP (adopted)", hwsim.DefaultVariant()},
		{"naive PE array (§3)", func() hwsim.Variant {
			v := hwsim.DefaultVariant()
			v.NaivePE = true
			return v
		}()},
		{"serial routing (§5)", func() hwsim.Variant {
			v := hwsim.DefaultVariant()
			v.Routing = archmodel.RoutingSerial
			return v
		}()},
		{"parallel routing (§5)", func() hwsim.Variant {
			v := hwsim.DefaultVariant()
			v.Routing = archmodel.RoutingParallel
			return v
		}()},
		{"always-on BVM (§6)", func() hwsim.Variant {
			v := hwsim.DefaultVariant()
			v.EventDriven = false
			return v
		}()},
		{"no virtual BV sizing (§5)", func() hwsim.Variant {
			v := hwsim.DefaultVariant()
			v.VirtualSizing = false
			return v
		}()},
	}

	var base metrics.Point
	var rows []AblationRow
	for i, variant := range variants {
		sys, err := hwsim.NewBVAPSystem(res.Config, false)
		if err != nil {
			return nil, err
		}
		sys.SetVariant(variant.v)
		sys.Run(input)
		p := metrics.FromStats(variant.name, sys.Finish())
		if i == 0 {
			base = p
		}
		n := p.Normalized(base)
		rows = append(rows, AblationRow{
			Name:           variant.name,
			EnergyNorm:     n.EnergyPerSymbolNJ,
			AreaNorm:       n.AreaMm2,
			ThroughputNorm: n.ThroughputGbps,
			FoMNorm:        n.FoM,
		})
	}
	return rows, nil
}

// RenderAblation prints the ablation table.
func RenderAblation(w io.Writer, dataset string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — design choices on %s, normalized to the adopted BVAP\n", dataset)
	fmt.Fprintf(w, "%-28s %10s %10s %12s %10s\n", "variant", "energy", "area", "throughput", "FoM")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10.3f %10.3f %12.3f %10.3f\n",
			r.Name, r.EnergyNorm, r.AreaNorm, r.ThroughputNorm, r.FoMNorm)
	}
}
