package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"bvap/internal/archmodel"
	"bvap/internal/compiler"
	"bvap/internal/datasets"
	"bvap/internal/hwsim"
	"bvap/internal/metrics"
	"bvap/internal/profile"
)

// BenchSchemaVersion identifies the BENCH_<n>.json layout. Bump it when a
// field changes meaning; CompareBench refuses to compare across versions.
const BenchSchemaVersion = 1

// Pinned compiler parameters for the perf harness. Perf runs must be
// comparable across commits, so the harness never runs the DSE: every
// report uses the same (bv_size, unfold_th) point.
const (
	perfBVSize   = 64
	perfUnfoldTh = 8
)

// PerfOptions parameterizes the canonical perf harness run. Zero values
// select a configuration small enough for CI smoke runs; cmd/bvapbench
// passes its -sample/-inputlen/-datasets flags through.
type PerfOptions struct {
	Datasets []string
	Archs    []string // String() names; default: every modeled architecture
	Sample   int
	InputLen int
	// TopPatterns bounds the per-cell attribution rows kept in the report
	// (default 5).
	TopPatterns int
	// RenderTo, when non-nil, receives the ASCII profile rendering (tile
	// occupancy and stall heatmaps, hot states, attribution) of each
	// dataset's BVAP cell as it completes.
	RenderTo io.Writer
}

func (o *PerfOptions) fill() {
	if len(o.Datasets) == 0 {
		for _, p := range datasets.Profiles() {
			o.Datasets = append(o.Datasets, p.Name)
		}
	}
	if len(o.Archs) == 0 {
		o.Archs = []string{"BVAP", "BVAP-S", "CAMA", "CA", "eAP", "CNT"}
	}
	if o.Sample == 0 {
		o.Sample = 40
	}
	if o.InputLen == 0 {
		o.InputLen = 2048
	}
	if o.TopPatterns == 0 {
		o.TopPatterns = 5
	}
}

// BenchEnvironment records where a report was produced. Informational: it
// never participates in CompareBench.
type BenchEnvironment struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// BenchParams records the pinned workload parameters of a report. Two
// reports are only comparable when these match; CompareBench checks.
type BenchParams struct {
	BVSize      int      `json:"bv_size"`
	UnfoldTh    int      `json:"unfold_th"`
	Sample      int      `json:"sample"`
	InputLen    int      `json:"input_len"`
	Datasets    []string `json:"datasets"`
	Archs       []string `json:"archs"`
	TopPatterns int      `json:"top_patterns"`
}

// BenchPatternRow is one attributed pattern in a cell's top-energy list.
type BenchPatternRow struct {
	Pattern  string  `json:"pattern"`
	EnergyPJ float64 `json:"energy_pj"`
	Share    float64 `json:"share"`
}

// BenchCell is one (dataset, architecture) measurement.
//
// Counted metrics — symbols, matches, cycles, stall_cycles, energy_pj,
// stages_pj, stalls — are deterministic model outputs: bit-identical across
// runs of the same commit on the same workload. Allocation counters are
// runtime-counted and stable to within noise. Wall-clock fields
// (compile_ms, run_ms, throughput_mb_s) are informational only and never
// compared.
type BenchCell struct {
	Dataset  string `json:"dataset"`
	Arch     string `json:"arch"`
	Patterns int    `json:"patterns"`
	// Unsupported counts patterns the architecture's compiler rejected
	// (they ride along with zero activity).
	Unsupported int `json:"unsupported"`

	// Counted metrics (compared against a baseline).
	Symbols     uint64  `json:"symbols"`
	Matches     uint64  `json:"matches"`
	Cycles      uint64  `json:"cycles"`
	StallCycles uint64  `json:"stall_cycles"`
	EnergyPJ    float64 `json:"energy_pj"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`

	// Derived metrics (informational).
	EnergyPerSymbolNJ float64 `json:"energy_per_symbol_nj"`
	AreaMm2           float64 `json:"area_mm2"`
	ModelThroughput   float64 `json:"model_throughput_gbps"`
	FoM               float64 `json:"fom"`

	// Wall-clock metrics (informational).
	CompileMs       float64 `json:"compile_ms"`
	RunMs           float64 `json:"run_ms"`
	SimThroughputMB float64 `json:"sim_throughput_mb_s"`

	// StagesPJ breaks energy down by pipeline stage (profiler-observed
	// per-step energy; terminal leakage/I-O charges land in EnergyPJ only).
	StagesPJ map[string]float64 `json:"stages_pj"`
	// Stalls breaks stall cycles down by cause.
	Stalls map[string]uint64 `json:"stalls"`
	// TopPatterns lists the highest-energy patterns by exact attribution.
	TopPatterns []BenchPatternRow `json:"top_patterns"`
}

// BenchReport is the versioned BENCH_<n>.json document.
type BenchReport struct {
	SchemaVersion int              `json:"schema_version"`
	Created       string           `json:"created"` // RFC 3339; informational
	Environment   BenchEnvironment `json:"environment"`
	Params        BenchParams      `json:"params"`
	PeakRSSBytes  uint64           `json:"peak_rss_bytes"` // informational
	Cells         []BenchCell      `json:"cells"`
}

// perfSystem is the surface Perf needs from either simulated system.
type perfSystem interface {
	SetSink(hwsim.Sink)
	Run([]byte)
	Finish() *hwsim.Stats
}

// Perf runs the canonical perf matrix: every requested dataset × every
// requested architecture at the pinned compiler parameters, with a profiler
// attached, and returns the versioned report.
func Perf(opt PerfOptions) (*BenchReport, error) {
	opt.fill()
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: opt.Datasets, Archs: opt.Archs,
			TopPatterns: opt.TopPatterns,
		},
	}
	for _, name := range opt.Datasets {
		prof, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		patterns := prof.Sample(opt.Sample)
		input := prof.Input(opt.InputLen, patterns)
		for _, arch := range opt.Archs {
			cell, p, err := runPerfCell(name, arch, patterns, input, opt.TopPatterns)
			if err != nil {
				return nil, fmt.Errorf("perf %s/%s: %v", name, arch, err)
			}
			rep.Cells = append(rep.Cells, cell)
			if opt.RenderTo != nil && arch == "BVAP" {
				RenderProfile(opt.RenderTo, name, p, opt.TopPatterns)
			}
		}
	}
	rep.PeakRSSBytes = peakRSSBytes()
	return rep, nil
}

// runPerfCell measures one (dataset, architecture) cell with a profiler
// attached, returning the cell and the profiler (for rendering).
func runPerfCell(dataset, arch string, patterns []string, input []byte, topK int) (BenchCell, *profile.Profiler, error) {
	cell := BenchCell{Dataset: dataset, Arch: arch, Patterns: len(patterns)}
	copt := compiler.Options{BVSizeBits: perfBVSize, UnfoldThreshold: perfUnfoldTh}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()

	var sys perfSystem
	var p *profile.Profiler
	switch arch {
	case "BVAP", "BVAP-S":
		res, err := compiler.Compile(patterns, copt)
		if err != nil {
			return cell, nil, err
		}
		cell.Unsupported = res.Report.Unsupported
		p = profile.New(res.Config, profile.Options{})
		sys, err = hwsim.NewBVAPSystem(res.Config, arch == "BVAP-S")
		if err != nil {
			return cell, nil, err
		}
	case "CAMA", "CA", "eAP", "CNT":
		var ms []compiler.BaselineMachine
		var am archmodel.Arch
		switch arch {
		case "CAMA":
			ms, am = compiler.CompileBaseline(patterns), archmodel.CAMA
		case "CA":
			ms, am = compiler.CompileBaseline(patterns), archmodel.CA
		case "eAP":
			ms, am = compiler.CompileBaseline(patterns), archmodel.EAP
		case "CNT":
			ms, am = compiler.CompileCNT(patterns), archmodel.CNT
		}
		for _, m := range ms {
			if !m.Supported {
				cell.Unsupported++
			}
		}
		p = profile.NewForPatterns(patterns, profile.Options{})
		var err error
		sys, err = hwsim.NewBaselineSystem(am, ms)
		if err != nil {
			return cell, nil, err
		}
	default:
		return cell, nil, fmt.Errorf("unknown architecture %q", arch)
	}
	cell.CompileMs = float64(time.Since(t0)) / float64(time.Millisecond)

	sys.SetSink(p)
	t1 := time.Now()
	sys.Run(input)
	st := sys.Finish()
	runDur := time.Since(t1)
	runtime.ReadMemStats(&m1)

	cell.RunMs = float64(runDur) / float64(time.Millisecond)
	if s := runDur.Seconds(); s > 0 {
		cell.SimThroughputMB = float64(len(input)) / s / 1e6
	}
	cell.Allocs = m1.Mallocs - m0.Mallocs
	cell.AllocBytes = m1.TotalAlloc - m0.TotalAlloc

	cell.Symbols = st.Symbols
	cell.Matches = st.Matches
	cell.Cycles = st.Cycles
	cell.StallCycles = st.StallCycles
	cell.EnergyPJ = st.TotalEnergyPJ()

	pt := metrics.FromStats(arch, st)
	cell.EnergyPerSymbolNJ = pt.EnergyPerSymbolNJ
	cell.AreaMm2 = pt.AreaMm2
	cell.ModelThroughput = pt.ThroughputGbps
	cell.FoM = pt.FoM

	cell.StagesPJ = map[string]float64{}
	for s := hwsim.Stage(0); s < hwsim.NumStages; s++ {
		if pj := p.StageEnergyPJ(s); pj != 0 {
			cell.StagesPJ[s.String()] = pj
		}
	}
	cell.Stalls = map[string]uint64{}
	for c := hwsim.StallCause(0); c < hwsim.NumStallCauses; c++ {
		if n := p.StallTotal(c); n != 0 {
			cell.Stalls[c.String()] = n
		}
	}

	a := p.Attribute(st)
	rows := append([]profile.PatternEnergy(nil), a.Patterns...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].EnergyPJ > rows[j].EnergyPJ })
	if len(rows) > topK {
		rows = rows[:topK]
	}
	for _, r := range rows {
		cell.TopPatterns = append(cell.TopPatterns, BenchPatternRow{
			Pattern: r.Pattern, EnergyPJ: r.EnergyPJ, Share: r.Share,
		})
	}
	return cell, p, nil
}

// peakRSSBytes reads the process's peak resident set from
// /proc/self/status (VmHWM), falling back to the Go runtime's Sys figure on
// platforms without procfs.
func peakRSSBytes() uint64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.ParseUint(f[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Sys
}

// NextBenchPath returns dir/BENCH_<n>.json for the smallest n greater than
// every existing report in dir (starting at 1).
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		if err != nil || n < 0 {
			continue
		}
		if n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

// WriteBenchReport writes rep as indented JSON.
func WriteBenchReport(path string, rep *BenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchReport reads a BENCH_<n>.json document.
func ReadBenchReport(path string) (*BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// Thresholds bounds the acceptable relative increase of each counted
// metric in CompareBench. Zero values select the defaults (25% each, per
// EXPERIMENTS.md).
type Thresholds struct {
	CyclesFrac float64
	EnergyFrac float64
	AllocsFrac float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.CyclesFrac == 0 {
		t.CyclesFrac = 0.25
	}
	if t.EnergyFrac == 0 {
		t.EnergyFrac = 0.25
	}
	if t.AllocsFrac == 0 {
		t.AllocsFrac = 0.25
	}
	return t
}

// Regression is one metric that moved outside its threshold relative to the
// baseline report.
type Regression struct {
	Dataset string  `json:"dataset,omitempty"`
	Arch    string  `json:"arch,omitempty"`
	Metric  string  `json:"metric"`
	Base    float64 `json:"base"`
	Current float64 `json:"current"`
	// LimitFrac is the allowed relative increase (0 for exact metrics).
	LimitFrac float64 `json:"limit_frac"`
	// Exact marks metrics compared for equality (symbols, matches).
	Exact bool `json:"exact"`
}

func (r Regression) String() string {
	where := r.Metric
	if r.Dataset != "" || r.Arch != "" {
		where = fmt.Sprintf("%s/%s %s", r.Dataset, r.Arch, r.Metric)
	}
	if r.Exact {
		return fmt.Sprintf("%s: %v != baseline %v (exact metric)", where, r.Current, r.Base)
	}
	delta := 0.0
	if r.Base != 0 {
		delta = (r.Current - r.Base) / r.Base
	}
	return fmt.Sprintf("%s: %v vs baseline %v (%+.1f%%, limit +%.0f%%)",
		where, r.Current, r.Base, delta*100, r.LimitFrac*100)
}

// CompareBench compares current against a baseline report. Symbols and
// matches must be identical (the workload is deterministic); cycles, energy
// and allocation counts may increase by at most their threshold fraction.
// Improvements always pass. Cells present in the baseline but missing from
// current are regressions; extra cells in current are ignored. A schema or
// workload-parameter mismatch yields a single regression for that field.
func CompareBench(current, baseline *BenchReport, th Thresholds) []Regression {
	th = th.withDefaults()
	var regs []Regression
	if current.SchemaVersion != baseline.SchemaVersion {
		return []Regression{{
			Metric: "schema_version", Exact: true,
			Base: float64(baseline.SchemaVersion), Current: float64(current.SchemaVersion),
		}}
	}
	if current.Params.BVSize != baseline.Params.BVSize ||
		current.Params.UnfoldTh != baseline.Params.UnfoldTh ||
		current.Params.Sample != baseline.Params.Sample ||
		current.Params.InputLen != baseline.Params.InputLen {
		return []Regression{{
			Metric: "params", Exact: true,
			Base:    float64(baseline.Params.Sample)*1e6 + float64(baseline.Params.InputLen),
			Current: float64(current.Params.Sample)*1e6 + float64(current.Params.InputLen),
		}}
	}
	byKey := map[string]*BenchCell{}
	for i := range current.Cells {
		c := &current.Cells[i]
		byKey[c.Dataset+"\x00"+c.Arch] = c
	}
	for i := range baseline.Cells {
		b := &baseline.Cells[i]
		c, ok := byKey[b.Dataset+"\x00"+b.Arch]
		if !ok {
			regs = append(regs, Regression{
				Dataset: b.Dataset, Arch: b.Arch, Metric: "missing_cell", Exact: true,
				Base: 1, Current: 0,
			})
			continue
		}
		exact := func(metric string, base, cur uint64) {
			if base != cur {
				regs = append(regs, Regression{
					Dataset: b.Dataset, Arch: b.Arch, Metric: metric, Exact: true,
					Base: float64(base), Current: float64(cur),
				})
			}
		}
		bounded := func(metric string, base, cur, limit float64) {
			if cur <= base {
				return // improvements and equality always pass
			}
			if base == 0 || (cur-base)/base > limit {
				regs = append(regs, Regression{
					Dataset: b.Dataset, Arch: b.Arch, Metric: metric,
					Base: base, Current: cur, LimitFrac: limit,
				})
			}
		}
		exact("symbols", b.Symbols, c.Symbols)
		exact("matches", b.Matches, c.Matches)
		bounded("cycles", float64(b.Cycles), float64(c.Cycles), th.CyclesFrac)
		bounded("energy_pj", b.EnergyPJ, c.EnergyPJ, th.EnergyFrac)
		bounded("allocs", float64(b.Allocs), float64(c.Allocs), th.AllocsFrac)
	}
	return regs
}
