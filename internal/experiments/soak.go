package experiments

// The soak experiment exercises the long-lived service layer the way a
// deployment does, in three phases:
//
//   - correctness (counted): a streaming session feeds a deterministic
//     corpus through repeated crash/resume cycles — explicit checkpoint,
//     session abandoned, ResumeSession, re-feed from the committed cursor —
//     and the delivered report log must equal the uninterrupted FindAll
//     reference byte for byte. Symbols and reports are counted metrics.
//   - overload (informational): scanner goroutines hammer a deliberately
//     under-provisioned service; sheds/sec and the client-observed p50/p99
//     scan latency are reported. Load-dependent, never baseline-compared.
//   - reload (mixed): while the scanners run, several hot reloads swap the
//     pattern set concurrently. Every generation keeps a sentinel pattern
//     planted in every scanned input, so any successful scan that misses
//     the sentinel match is a dropped-correct-match — the zero-downtime
//     claim, counted and required to be zero. The final generation must
//     reflect every successful reload.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bvap"
	"bvap/internal/datasets"
)

// SoakOptions parameterizes the soak. Zero values select a CI-smoke-sized
// run (a couple of seconds).
type SoakOptions struct {
	Dataset            string        // default "Snort"
	Sample             int           // patterns sampled (default 20)
	InputLen           int           // session corpus bytes (default 256 KiB)
	CheckpointInterval int           // session checkpoint spacing (default 2048)
	Restarts           int           // crash/resume cycles (default 4)
	Duration           time.Duration // overload-phase wall bound (default 2s)
	Scanners           int           // concurrent scan goroutines (default 8)
	MaxConcurrent      int           // admission slots (default 2)
	MaxQueue           int           // admission queue (default 2)
	Reloads            int           // concurrent hot reloads (default 3)
}

func (o *SoakOptions) fill() {
	if o.Dataset == "" {
		o.Dataset = "Snort"
	}
	if o.Sample == 0 {
		o.Sample = 20
	}
	if o.InputLen == 0 {
		o.InputLen = 256 << 10
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 2048
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Scanners == 0 {
		o.Scanners = 8
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 2
	}
	if o.Reloads == 0 {
		o.Reloads = 3
	}
}

// soakSentinel is the pattern every soak generation keeps and every scanned
// input contains: the tracer for dropped correct matches across swaps.
const soakSentinel = "svcsoak{2}z"

// SoakResult is the experiment's structured output.
type SoakResult struct {
	Dataset  string `json:"dataset"`
	Patterns int    `json:"patterns"`

	// Correctness phase (deterministic).
	SessionSymbols   uint64 `json:"session_symbols"`
	SessionReports   uint64 `json:"session_reports"`
	ReferenceReports uint64 `json:"reference_reports"`
	Restarts         int    `json:"restarts"`
	ReportsExact     bool   `json:"reports_exact"`

	// Overload phase (informational).
	Scans          uint64  `json:"scans"`
	Sheds          uint64  `json:"sheds"`
	ShedsPerSec    float64 `json:"sheds_per_sec"`
	P50ScanMs      float64 `json:"p50_scan_ms"`
	P99ScanMs      float64 `json:"p99_scan_ms"`
	OverloadWallMs float64 `json:"overload_wall_ms"`

	// Reload phase.
	ReloadsOK             int    `json:"reloads_ok"`
	FinalGeneration       uint64 `json:"final_generation"`
	DroppedCorrectMatches uint64 `json:"dropped_correct_matches"`

	// Hygiene.
	StreamsOut int64 `json:"streams_out"`
}

// Soak runs the service soak and returns the structured result plus a
// BENCH-schema report (the correctness cell's symbols and reports are
// counted; the overload/reload cells are informational).
func Soak(opt SoakOptions) (*SoakResult, *BenchReport, error) {
	opt.fill()
	prof, err := datasets.ByName(opt.Dataset)
	if err != nil {
		return nil, nil, err
	}
	patterns := append([]string{soakSentinel}, prof.Sample(opt.Sample)...)
	res := &SoakResult{Dataset: opt.Dataset, Patterns: len(patterns), Restarts: opt.Restarts}

	if err := soakCorrectness(opt, prof, patterns, res); err != nil {
		return nil, nil, err
	}
	if err := soakOverload(opt, patterns, res); err != nil {
		return nil, nil, err
	}
	return res, soakBench(opt, res), nil
}

// soakCorrectness is the crash/resume exactly-once phase.
func soakCorrectness(opt SoakOptions, prof datasets.Profile, patterns []string, res *SoakResult) error {
	svc, err := bvap.NewService(patterns, nil)
	if err != nil {
		return fmt.Errorf("soak: compile: %v", err)
	}
	defer svc.Close()

	corpus := prof.Input(opt.InputLen, patterns)
	want := svc.Engine().FindAll(corpus)
	res.SessionSymbols = uint64(len(corpus))
	res.ReferenceReports = uint64(len(want))

	var got []bvap.Match
	cfg := &bvap.SessionConfig{
		CheckpointInterval: opt.CheckpointInterval,
		OnMatch:            func(m bvap.Match) { got = append(got, m) },
	}
	sess, err := svc.NewSession(cfg)
	if err != nil {
		return err
	}
	// Feed in awkward chunks; every segment boundary is a crash/resume
	// cycle: checkpoint, abandon the session (pending reports die with
	// it), resume from the handle and re-feed from its cursor.
	segment := len(corpus) / (opt.Restarts + 1)
	for r := 0; r <= opt.Restarts; r++ {
		end := (r + 1) * segment
		if r == opt.Restarts {
			end = len(corpus)
		}
		for off := int(sess.Pos()); off < end; {
			n := 1500
			if off+n > end {
				n = end - off
			}
			if err := sess.Feed(context.Background(), corpus[off:off+n]); err != nil {
				return fmt.Errorf("soak: feed at %d: %v", off, err)
			}
			off += n
		}
		if r == opt.Restarts {
			sess.Close()
			break
		}
		ck := sess.Checkpoint()
		// Crash: overfeed a little past the checkpoint, then drop the
		// session without Close. The tail reports are never committed.
		tail := corpus[ck.Pos():]
		if len(tail) > opt.CheckpointInterval/2 {
			tail = tail[:opt.CheckpointInterval/2]
		}
		_ = sess.Feed(context.Background(), tail)
		sess, err = svc.ResumeSession(ck, cfg)
		if err != nil {
			return fmt.Errorf("soak: resume %d: %v", r, err)
		}
	}

	res.SessionReports = uint64(len(got))
	res.ReportsExact = len(got) == len(want)
	if res.ReportsExact {
		for i := range got {
			if got[i] != want[i] {
				res.ReportsExact = false
				break
			}
		}
	}
	if !res.ReportsExact {
		return fmt.Errorf("soak: session delivered %d reports, reference %d (or order diverged)", len(got), len(want))
	}
	res.StreamsOut += svc.Engine().StreamsOut()
	return nil
}

// soakOverload is the concurrent overload + hot-reload phase.
func soakOverload(opt SoakOptions, patterns []string, res *SoakResult) error {
	svc, err := bvap.NewService(patterns, &bvap.ServiceConfig{
		MaxConcurrent: opt.MaxConcurrent,
		MaxQueue:      opt.MaxQueue,
	})
	if err != nil {
		return err
	}

	// Every scanned input carries exactly one sentinel occurrence
	// ("svcsoakkz" matches svcsoak{2}z).
	input := []byte("noise-noise-svcsoakkz-trailer-bytes")
	wantSentinel := len(svc.Engine().FindAll(input))
	if wantSentinel == 0 {
		return fmt.Errorf("soak: sentinel pattern does not match the probe input")
	}

	var scans, sheds, dropped atomic.Uint64
	latCh := make(chan time.Duration, 4096)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opt.Scanners; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				ms, err := svc.Scan(context.Background(), input)
				switch {
				case errors.Is(err, bvap.ErrOverloaded):
					sheds.Add(1)
				case err != nil:
					dropped.Add(1) // any hard failure counts against the swap claim
				default:
					scans.Add(1)
					sentinel := 0
					for _, m := range ms {
						if m.Pattern == 0 {
							sentinel++
						}
					}
					if sentinel != wantSentinel {
						dropped.Add(1)
					}
					select {
					case latCh <- time.Since(t0):
					default:
					}
				}
			}
		}()
	}

	// Concurrent hot reloads, every generation keeping the sentinel.
	var reloadWG sync.WaitGroup
	reloadErrs := make([]error, opt.Reloads)
	for i := 0; i < opt.Reloads; i++ {
		reloadWG.Add(1)
		go func(i int) {
			defer reloadWG.Done()
			pats := append([]string{soakSentinel}, patterns[1:]...)
			pats = append(pats, fmt.Sprintf("soakgen%dx{%d}", i, 2+i))
			_, reloadErrs[i] = svc.Reload(context.Background(), pats)
		}(i)
	}
	reloadWG.Wait()
	for time.Since(start) < opt.Duration {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)

	for _, err := range reloadErrs {
		if err == nil {
			res.ReloadsOK++
		}
	}
	if res.ReloadsOK != opt.Reloads {
		return fmt.Errorf("soak: %d/%d reloads failed: %v", opt.Reloads-res.ReloadsOK, opt.Reloads, reloadErrs)
	}
	res.FinalGeneration = svc.Generation()
	res.Scans = scans.Load()
	res.Sheds = sheds.Load()
	res.DroppedCorrectMatches = dropped.Load()
	res.OverloadWallMs = float64(elapsed) / float64(time.Millisecond)
	res.ShedsPerSec = float64(res.Sheds) / elapsed.Seconds()

	var lats []float64
	for d := range latCh {
		lats = append(lats, float64(d)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		res.P50ScanMs = lats[n/2]
		res.P99ScanMs = lats[n*99/100]
	}

	if err := svc.Drain(context.Background()); err != nil {
		return fmt.Errorf("soak: drain: %v", err)
	}
	res.StreamsOut += svc.Engine().StreamsOut()
	if res.DroppedCorrectMatches != 0 {
		return fmt.Errorf("soak: %d scans lost the sentinel match across reload swaps", res.DroppedCorrectMatches)
	}
	if res.StreamsOut != 0 {
		return fmt.Errorf("soak: %d pooled streams still checked out after drain", res.StreamsOut)
	}
	return nil
}

// soakBench shapes a soak run as a BENCH-schema report: the correctness
// cell's symbols and matches are deterministic counted metrics; the
// overload and reload cells carry informational wall-clock and shed rates
// (load-dependent, excluded from exact comparison by construction — their
// symbols/matches are zero).
func soakBench(opt SoakOptions, res *SoakResult) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Created:       time.Now().UTC().Format(time.RFC3339),
		Environment: BenchEnvironment{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Params: BenchParams{
			BVSize: perfBVSize, UnfoldTh: perfUnfoldTh,
			Sample: opt.Sample, InputLen: opt.InputLen,
			Datasets: []string{opt.Dataset},
			Archs:    []string{"soak-correctness", "soak-overload"},
		},
	}
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  res.Dataset,
		Arch:     "soak-correctness",
		Patterns: res.Patterns,
		Symbols:  res.SessionSymbols,
		Matches:  res.SessionReports,
		Stalls: map[string]uint64{
			"restarts": uint64(res.Restarts),
		},
	})
	rep.Cells = append(rep.Cells, BenchCell{
		Dataset:  res.Dataset,
		Arch:     "soak-overload",
		Patterns: res.Patterns,
		RunMs:    res.OverloadWallMs,
		Stalls: map[string]uint64{
			"scans":           res.Scans,
			"sheds":           res.Sheds,
			"reloads_ok":      uint64(res.ReloadsOK),
			"generation":      res.FinalGeneration,
			"dropped_correct": res.DroppedCorrectMatches,
		},
	})
	rep.PeakRSSBytes = peakRSSBytes()
	return rep
}

// RenderSoak prints the soak summary.
func RenderSoak(w io.Writer, res *SoakResult) {
	fmt.Fprintf(w, "Soak — service lifecycle under load (%s, %d patterns)\n", res.Dataset, res.Patterns)
	fmt.Fprintf(w, "  correctness: %d symbols, %d reports (%d reference), %d crash/resume cycles, exact=%v\n",
		res.SessionSymbols, res.SessionReports, res.ReferenceReports, res.Restarts, res.ReportsExact)
	fmt.Fprintf(w, "  overload:    %d scans, %d sheds (%.0f/s), scan latency p50 %.2f ms p99 %.2f ms over %.0f ms\n",
		res.Scans, res.Sheds, res.ShedsPerSec, res.P50ScanMs, res.P99ScanMs, res.OverloadWallMs)
	fmt.Fprintf(w, "  reload:      %d/%d concurrent reloads applied, final generation %d, dropped correct matches %d\n",
		res.ReloadsOK, res.ReloadsOK, res.FinalGeneration, res.DroppedCorrectMatches)
	fmt.Fprintf(w, "  hygiene:     %d pooled streams checked out after drain\n", res.StreamsOut)
}
