// Package faults is the deterministic fault-injection and resilience layer
// of the BVAP simulator. BVAP's energy wins come from dense SRAM bit
// vectors and stall-controlled word-serial routing — exactly the structures
// most exposed to soft errors and overload in a deployment — so the
// simulator models them: a seedable Plan describes *where* and *how often*
// faults strike (BVM bit flips, STE active-bit corruption, dropped or
// duplicated symbols at the BVAP-S streaming input, I/O buffer overflows),
// an Injector turns the plan into a reproducible event stream, and a
// Harness (harness.go) layers detection, bounded retry with rollback, and
// graceful degradation to the software NBVA engine on top.
//
// Determinism contract: whether a fault fires at a given (site, stream
// position, lane, attempt) is a pure function of the Plan's seed — it does
// not depend on execution state, the order of draws, or previous faults.
// Two runs with the same seed and rates therefore produce identical fault
// traces, and because firing uses a threshold comparison against the same
// hash, the fault set at rate r is a subset of the fault set at any rate
// r' > r (nested faults ⇒ monotone detection/fallback curves).
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"bvap/internal/telemetry"
)

// Site identifies a hardware structure faults can strike.
type Site int

const (
	// SiteBVBitFlip flips one bit of an active BV-STE's SRAM bit vector
	// (a classic soft error in the densest structure of the design).
	SiteBVBitFlip Site = iota
	// SiteSTEActive corrupts the active-bit latches of the state-matching
	// array: an active STE is silently deactivated, or an idle STE is
	// spuriously activated.
	SiteSTEActive
	// SiteStreamDrop loses one symbol at the BVAP-S streaming input (the
	// sensor interface has no buffering to replay from, §6).
	SiteStreamDrop
	// SiteStreamDup duplicates one symbol at the BVAP-S streaming input.
	SiteStreamDup
	// SiteIOOverflow overflows the hierarchical I/O buffers of an array:
	// a corrupted DMA beat empties the ping-pong bank buffer and jams the
	// report FIFO, surfacing as extra stall cycles.
	SiteIOOverflow

	// NumSites is the number of injection sites.
	NumSites
)

func (s Site) String() string {
	switch s {
	case SiteBVBitFlip:
		return "bv_bit_flip"
	case SiteSTEActive:
		return "ste_active"
	case SiteStreamDrop:
		return "stream_drop"
	case SiteStreamDup:
		return "stream_dup"
	case SiteIOOverflow:
		return "io_overflow"
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// Plan describes a fault-injection campaign: a seed, per-site rates
// (probability per opportunity, in [0, 1]), optional site filters, and
// whether the modeled hardware spends energy/area on per-BV parity
// protection.
type Plan struct {
	// Seed selects the deterministic fault stream. Two runs with equal
	// seeds and rates see identical faults.
	Seed int64

	// BitFlipRate is the per-machine per-symbol probability of flipping a
	// random bit in a random active BV vector.
	BitFlipRate float64
	// STECorruptRate is the per-machine per-symbol probability of
	// corrupting an active-bit latch.
	STECorruptRate float64
	// DropRate and DupRate are the per-symbol probabilities of losing or
	// duplicating a symbol at the BVAP-S streaming input. They only apply
	// to streaming-mode systems.
	DropRate float64
	DupRate  float64
	// IOOverflowRate is the per-array per-symbol probability of an I/O
	// buffer overflow. It only applies to buffered (non-streaming)
	// systems.
	IOOverflowRate float64

	// Parity enables the per-BV parity detection circuit: one parity bit
	// per 8-bit BV word (a 12.5% Table-4-style surcharge on BV storage
	// energy and BVM area). With parity, injected BV bit flips are
	// detected; without it they are silent corruptions.
	Parity bool

	// Machines, when non-empty, restricts BV and STE injection to these
	// machine indices (a site filter for targeted campaigns).
	Machines []int

	// TraceLimit caps the recorded fault trace (0 means the default of
	// 4096 events; negative disables tracing).
	TraceLimit int
}

// UniformPlan is a plan with every site rate set to rate.
func UniformPlan(seed int64, rate float64, parity bool) *Plan {
	return &Plan{
		Seed:           seed,
		BitFlipRate:    rate,
		STECorruptRate: rate,
		DropRate:       rate,
		DupRate:        rate,
		IOOverflowRate: rate,
		Parity:         parity,
	}
}

// Validate checks the plan's rates.
func (p *Plan) Validate() error {
	for s := Site(0); s < NumSites; s++ {
		r := p.rate(s)
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %v rate %g out of [0, 1]", s, r)
		}
	}
	for _, m := range p.Machines {
		if m < 0 {
			return fmt.Errorf("faults: negative machine filter %d", m)
		}
	}
	return nil
}

func (p *Plan) rate(s Site) float64 {
	switch s {
	case SiteBVBitFlip:
		return p.BitFlipRate
	case SiteSTEActive:
		return p.STECorruptRate
	case SiteStreamDrop:
		return p.DropRate
	case SiteStreamDup:
		return p.DupRate
	case SiteIOOverflow:
		return p.IOOverflowRate
	}
	return 0
}

// ParsePlan parses the CLI form of a plan: comma-separated key=value pairs.
// Keys: seed, rate (sets every site), bitflip, ste, drop, dup, io,
// parity (0/1/true/false), trace (event cap). Example:
//
//	seed=42,rate=1e-4,parity=1
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{Parity: true}
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("faults: empty plan")
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad plan term %q (want key=value)", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = n
		case "parity":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("faults: bad parity %q: %v", v, err)
			}
			p.Parity = b
		case "trace":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("faults: bad trace cap %q: %v", v, err)
			}
			p.TraceLimit = n
		case "rate", "bitflip", "ste", "drop", "dup", "io":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "rate":
				p.BitFlipRate, p.STECorruptRate = r, r
				p.DropRate, p.DupRate, p.IOOverflowRate = r, r, r
			case "bitflip":
				p.BitFlipRate = r
			case "ste":
				p.STECorruptRate = r
			case "drop":
				p.DropRate = r
			case "dup":
				p.DupRate = r
			case "io":
				p.IOOverflowRate = r
			}
		default:
			return nil, fmt.Errorf("faults: unknown plan key %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Event is one injected fault, as recorded in the trace.
type Event struct {
	// Pos is the input stream offset at which the fault struck.
	Pos uint64 `json:"pos"`
	// Attempt is the harness retry attempt (0 for the first execution).
	Attempt int  `json:"attempt"`
	Site    Site `json:"site"`
	// Machine/State/Bit locate BV and STE faults; Array locates I/O
	// faults. Unused fields are -1.
	Machine int `json:"machine"`
	State   int `json:"state"`
	Bit     int `json:"bit"`
	Array   int `json:"array"`
	// Detected reports whether the modeled detection circuit (BV parity,
	// I/O buffer flags) caught the fault.
	Detected bool `json:"detected"`
}

func (e Event) String() string {
	return fmt.Sprintf("pos=%d attempt=%d site=%v machine=%d state=%d bit=%d array=%d detected=%v",
		e.Pos, e.Attempt, e.Site, e.Machine, e.State, e.Bit, e.Array, e.Detected)
}

// Stats counts the campaign's injection and detection outcomes. The harness
// adds recovery counters (retries, fallbacks) in its Report.
type Stats struct {
	// Injected counts injected faults by site.
	Injected [NumSites]uint64
	// Detected counts faults the modeled detection hardware caught.
	Detected uint64
	// Silent counts injected faults that escaped detection.
	Silent uint64
}

// TotalInjected sums the per-site injection counts.
func (s Stats) TotalInjected() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// DetectionRate is Detected / TotalInjected (0 with no injections).
func (s Stats) DetectionRate() float64 {
	t := s.TotalInjected()
	if t == 0 {
		return 0
	}
	return float64(s.Detected) / float64(t)
}

// Metric names exposed by Injector.Instrument.
const (
	MetricFaultInjected = "bvap_fault_injected_total"
	MetricFaultDetected = "bvap_fault_detected_total"
	MetricFaultSilent   = "bvap_fault_silent_total"
)

const defaultTraceLimit = 4096

// Injector turns a Plan into a deterministic fault stream. It is driven
// from the simulator's goroutine and is not safe for concurrent use.
type Injector struct {
	plan       Plan
	machineOK  map[int]bool // nil = all machines
	attempt    int
	suppressed bool
	thresholds [NumSites]uint64

	stats      Stats
	trace      []Event
	traceLimit int

	// Optional live telemetry (nil-guarded).
	tmInjected [NumSites]*telemetry.Counter
	tmDetected *telemetry.Counter
	tmSilent   *telemetry.Counter
}

// NewInjector validates the plan and builds an injector for it.
func NewInjector(p *Plan) (*Injector, error) {
	if p == nil {
		return nil, fmt.Errorf("faults: nil plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{plan: *p, traceLimit: p.TraceLimit}
	if in.traceLimit == 0 {
		in.traceLimit = defaultTraceLimit
	}
	if len(p.Machines) > 0 {
		in.machineOK = make(map[int]bool, len(p.Machines))
		for _, m := range p.Machines {
			in.machineOK[m] = true
		}
	}
	for s := Site(0); s < NumSites; s++ {
		in.thresholds[s] = rateThreshold(p.rate(s))
	}
	return in, nil
}

// rateThreshold maps a probability to a uint64 comparison threshold so that
// the fault set is nested across rates: a hash that fires at rate r also
// fires at every rate r' ≥ r.
func rateThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// ParityOn reports whether the plan models per-BV parity protection.
func (in *Injector) ParityOn() bool { return in.plan.Parity }

// SetAttempt sets the retry-attempt salt: retries of a window draw from a
// fresh fault stream (transient faults do not recur deterministically).
func (in *Injector) SetAttempt(a int) { in.attempt = a }

// Attempt returns the current retry-attempt salt.
func (in *Injector) Attempt() int { return in.attempt }

// Suppress disables and re-enables injection; the harness suppresses faults
// while re-executing a window on the clean fallback path.
func (in *Injector) Suppress(on bool) { in.suppressed = on }

// Suppressed reports whether injection is currently suppressed.
func (in *Injector) Suppressed() bool { return in.suppressed }

// MachineAllowed applies the plan's machine site filter.
func (in *Injector) MachineAllowed(m int) bool {
	return in.machineOK == nil || in.machineOK[m]
}

// Fire reports whether site's fault strikes at stream position pos on lane
// (machine or array index). The decision is a pure function of (seed, site,
// pos, lane, attempt).
func (in *Injector) Fire(site Site, pos uint64, lane int) bool {
	if in.suppressed {
		return false
	}
	th := in.thresholds[site]
	if th == 0 {
		return false
	}
	return in.hash(site, pos, lane, 0) <= th-1 || th == ^uint64(0)
}

// Pick deterministically selects an index in [0, n) for a fired fault
// (victim state, bit position, corruption kind). salt separates independent
// choices of one event.
func (in *Injector) Pick(site Site, pos uint64, lane, salt, n int) int {
	if n <= 1 {
		return 0
	}
	return int(in.hash(site, pos, lane, salt+1) % uint64(n))
}

// hash is a splitmix64 chain over the draw coordinates.
func (in *Injector) hash(site Site, pos uint64, lane, salt int) uint64 {
	h := splitmix64(uint64(in.plan.Seed) ^ 0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(site))
	h = splitmix64(h ^ pos)
	h = splitmix64(h ^ uint64(lane))
	h = splitmix64(h ^ uint64(in.attempt))
	h = splitmix64(h ^ uint64(salt))
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Record counts one injected fault and appends it to the trace (up to the
// plan's cap).
func (in *Injector) Record(ev Event) {
	in.stats.Injected[ev.Site]++
	if ev.Detected {
		in.stats.Detected++
	} else {
		in.stats.Silent++
	}
	if c := in.tmInjected[ev.Site]; c != nil {
		c.Inc()
	}
	if ev.Detected {
		if in.tmDetected != nil {
			in.tmDetected.Inc()
		}
	} else if in.tmSilent != nil {
		in.tmSilent.Inc()
	}
	if in.traceLimit > 0 && len(in.trace) < in.traceLimit {
		ev.Attempt = in.attempt
		in.trace = append(in.trace, ev)
	}
}

// Stats returns a copy of the accumulated counters.
func (in *Injector) Stats() Stats { return in.stats }

// Trace returns the recorded fault events (capped at the plan's TraceLimit).
// Callers must not mutate the returned slice.
func (in *Injector) Trace() []Event { return in.trace }

// Instrument attaches a telemetry registry: per-site injection counters plus
// detected/silent totals accrue live as faults strike.
func (in *Injector) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		for s := range in.tmInjected {
			in.tmInjected[s] = nil
		}
		in.tmDetected, in.tmSilent = nil, nil
		return
	}
	vec := reg.CounterVec(MetricFaultInjected, "injected hardware faults by site", "site")
	for s := Site(0); s < NumSites; s++ {
		in.tmInjected[s] = vec.With(s.String())
	}
	in.tmDetected = reg.Counter(MetricFaultDetected, "injected faults caught by the modeled detection hardware")
	in.tmSilent = reg.Counter(MetricFaultSilent, "injected faults that escaped detection")
}
