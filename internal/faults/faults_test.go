package faults

import (
	"strings"
	"testing"
)

func TestFaultPlanParse(t *testing.T) {
	p, err := ParsePlan("seed=42,rate=1e-4,parity=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.BitFlipRate != 1e-4 || p.IOOverflowRate != 1e-4 || !p.Parity {
		t.Fatalf("plan = %+v", p)
	}

	p, err = ParsePlan("seed=7, bitflip=1e-3, ste=5e-4, drop=0, dup=0, io=2e-2, parity=false, trace=16")
	if err != nil {
		t.Fatal(err)
	}
	if p.BitFlipRate != 1e-3 || p.STECorruptRate != 5e-4 || p.IOOverflowRate != 2e-2 {
		t.Fatalf("per-site rates lost: %+v", p)
	}
	if p.Parity || p.TraceLimit != 16 {
		t.Fatalf("parity/trace lost: %+v", p)
	}

	// Parity defaults on: the detection circuit is part of the plan unless
	// explicitly declined.
	p, err = ParsePlan("rate=1e-5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Parity {
		t.Fatal("parity should default to true")
	}

	for _, bad := range []string{
		"", "rate", "rate=x", "seed=1,unknown=2", "rate=2", "rate=-1",
		"seed=zzz", "parity=maybe", "trace=many",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	if err := (&Plan{BitFlipRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (&Plan{DropRate: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (&Plan{Machines: []int{-1}}).Validate(); err == nil {
		t.Fatal("negative machine filter accepted")
	}
	if err := UniformPlan(1, 0.5, true).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultRateNesting pins the monotonicity construction: any (site, pos,
// lane) draw that fires at rate r must also fire at every rate r' > r, and
// the decision must be identical across injector instances with the same
// seed.
func TestFaultRateNesting(t *testing.T) {
	rates := []float64{0, 1e-6, 1e-4, 1e-2, 0.3, 1}
	injs := make([]*Injector, len(rates))
	for i, r := range rates {
		var err error
		injs[i], err = NewInjector(UniformPlan(99, r, true))
		if err != nil {
			t.Fatal(err)
		}
	}
	twin, err := NewInjector(UniformPlan(99, rates[len(rates)-1], true))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for site := Site(0); site < NumSites; site++ {
		for pos := uint64(0); pos < 3000; pos++ {
			for lane := 0; lane < 3; lane++ {
				prev := false
				for i := range rates {
					f := injs[i].Fire(site, pos, lane)
					if prev && !f {
						t.Fatalf("site %v pos %d lane %d fired at rate %g but not %g",
							site, pos, lane, rates[i-1], rates[i])
					}
					prev = f
				}
				if prev {
					fired++
				}
				if twin.Fire(site, pos, lane) != prev {
					t.Fatalf("same-seed injectors disagree at site %v pos %d lane %d", site, pos, lane)
				}
			}
		}
	}
	if fired != int(NumSites)*3000*3 {
		t.Fatalf("rate-1 plan fired %d of %d draws", fired, int(NumSites)*3000*3)
	}
	// Rate 0 never fires.
	if injs[0].Fire(SiteBVBitFlip, 1, 1) {
		t.Fatal("rate-0 plan fired")
	}
}

// TestFaultAttemptSalt pins that retries draw fresh fault streams: the
// attempt salt must change the decision for at least some draws, and
// setting it back must reproduce the original stream exactly.
func TestFaultAttemptSalt(t *testing.T) {
	in, err := NewInjector(UniformPlan(5, 0.5, true))
	if err != nil {
		t.Fatal(err)
	}
	base := make([]bool, 500)
	for pos := range base {
		base[pos] = in.Fire(SiteBVBitFlip, uint64(pos), 0)
	}
	in.SetAttempt(1)
	differs := false
	for pos := range base {
		if in.Fire(SiteBVBitFlip, uint64(pos), 0) != base[pos] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("attempt salt does not change the fault stream")
	}
	in.SetAttempt(0)
	for pos := range base {
		if in.Fire(SiteBVBitFlip, uint64(pos), 0) != base[pos] {
			t.Fatalf("attempt 0 stream not reproducible at pos %d", pos)
		}
	}
}

func TestFaultSuppress(t *testing.T) {
	in, err := NewInjector(UniformPlan(3, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	if !in.Fire(SiteSTEActive, 0, 0) {
		t.Fatal("rate-1 plan did not fire")
	}
	in.Suppress(true)
	if in.Fire(SiteSTEActive, 0, 0) {
		t.Fatal("suppressed injector fired")
	}
	in.Suppress(false)
	if !in.Fire(SiteSTEActive, 0, 0) {
		t.Fatal("unsuppressed injector did not fire")
	}
}

func TestFaultPickBoundsAndDeterminism(t *testing.T) {
	in, err := NewInjector(UniformPlan(11, 0.1, true))
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 65; n++ {
		for pos := uint64(0); pos < 200; pos++ {
			v := in.Pick(SiteBVBitFlip, pos, 2, 1, n)
			if v < 0 || v >= n {
				t.Fatalf("Pick(n=%d) = %d out of range", n, v)
			}
			if v2 := in.Pick(SiteBVBitFlip, pos, 2, 1, n); v2 != v {
				t.Fatalf("Pick not deterministic: %d vs %d", v, v2)
			}
		}
	}
	// Distinct salts must decorrelate choices.
	same := 0
	for pos := uint64(0); pos < 200; pos++ {
		if in.Pick(SiteBVBitFlip, pos, 2, 1, 64) == in.Pick(SiteBVBitFlip, pos, 2, 2, 64) {
			same++
		}
	}
	if same > 40 { // ~3 expected by chance
		t.Fatalf("salts 1 and 2 agree on %d/200 draws", same)
	}
}

func TestFaultRecordStatsAndTrace(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 1, BitFlipRate: 0.5, Parity: true, TraceLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	in.SetAttempt(3)
	in.Record(Event{Pos: 10, Site: SiteBVBitFlip, Detected: true})
	in.Record(Event{Pos: 11, Site: SiteSTEActive})
	in.Record(Event{Pos: 12, Site: SiteIOOverflow, Detected: true}) // over the cap
	st := in.Stats()
	if st.TotalInjected() != 3 || st.Detected != 2 || st.Silent != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Injected[SiteBVBitFlip] != 1 || st.Injected[SiteSTEActive] != 1 || st.Injected[SiteIOOverflow] != 1 {
		t.Fatalf("per-site counts = %+v", st.Injected)
	}
	if got := st.DetectionRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("detection rate = %v", got)
	}
	tr := in.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length %d, want cap 2", len(tr))
	}
	if tr[0].Attempt != 3 {
		t.Fatalf("trace did not stamp the attempt: %+v", tr[0])
	}
	if !strings.Contains(tr[0].String(), "bv_bit_flip") {
		t.Fatalf("event string = %q", tr[0])
	}

	// Negative TraceLimit disables tracing entirely.
	in2, err := NewInjector(&Plan{Seed: 1, BitFlipRate: 0.5, TraceLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	in2.Record(Event{Site: SiteBVBitFlip})
	if len(in2.Trace()) != 0 {
		t.Fatal("negative TraceLimit still traced")
	}
}

func TestFaultMachineFilter(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 1, BitFlipRate: 1, Machines: []int{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if in.MachineAllowed(0) || in.MachineAllowed(4) {
		t.Fatal("filter admits unlisted machines")
	}
	if !in.MachineAllowed(2) || !in.MachineAllowed(5) {
		t.Fatal("filter rejects listed machines")
	}
	open, err := NewInjector(UniformPlan(1, 0.5, true))
	if err != nil {
		t.Fatal(err)
	}
	if !open.MachineAllowed(123) {
		t.Fatal("unfiltered plan rejects a machine")
	}
}

func FuzzParsePlan(f *testing.F) {
	f.Add("seed=42,rate=1e-4,parity=1")
	f.Add("bitflip=0.5,ste=0.1,drop=0,dup=1,io=0.25,trace=8")
	f.Add("seed=-1,parity=0")
	f.Add("rate=1")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		// Anything ParsePlan accepts must validate and build an injector.
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed plan fails validation: %v (input %q)", err, s)
		}
		if _, err := NewInjector(p); err != nil {
			t.Fatalf("parsed plan fails NewInjector: %v (input %q)", err, s)
		}
	})
}
