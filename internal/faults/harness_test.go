package faults

import (
	"context"
	"errors"
	"testing"

	"bvap/internal/swmatch"
	"bvap/internal/telemetry"
)

// fakeTarget is a scripted Target: `faulty` decides, per (position, attempt),
// whether a detected fault fires at that step, and `match` marks positions as
// match ends. It lets the harness tests pin the retry/degrade control flow
// without a hardware simulator in the loop.
type fakeTarget struct {
	inj        *Injector
	pos        int
	ends       []int
	suppressed int // steps executed while injection was suppressed
	faulty     func(pos uint64, attempt int) bool
	match      func(b byte) bool
}

type fakeCk struct {
	pos     int
	endsLen int
}

func (f *fakeTarget) Step(b byte) {
	p := uint64(f.pos)
	if f.inj.Suppressed() {
		f.suppressed++
	} else if f.faulty != nil && f.faulty(p, f.inj.Attempt()) {
		f.inj.Record(Event{Pos: p, Site: SiteBVBitFlip, Detected: true})
	}
	if f.match != nil && f.match(b) {
		f.ends = append(f.ends, f.pos)
	}
	f.pos++
}

func (f *fakeTarget) Checkpoint() Checkpoint { return &fakeCk{pos: f.pos, endsLen: len(f.ends)} }
func (f *fakeTarget) Restore(c Checkpoint) {
	ck := c.(*fakeCk)
	f.pos = ck.pos
	f.ends = f.ends[:ck.endsLen]
}
func (f *fakeTarget) Pos() int              { return f.pos }
func (f *fakeTarget) NumMachines() int      { return 1 }
func (f *fakeTarget) MatchEnds(i int) []int { return f.ends }

func newFake(t *testing.T, faulty func(uint64, int) bool) (*fakeTarget, *Injector) {
	t.Helper()
	// Rate 0: the scripted fakeTarget injects via Record directly; the
	// injector only carries attempt/suppression state and counters.
	in, err := NewInjector(UniformPlan(1, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	return &fakeTarget{inj: in, faulty: faulty}, in
}

func TestHarnessCleanRun(t *testing.T) {
	ft, in := newFake(t, nil)
	h, err := NewHarness(ft, in, HarnessConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(context.Background(), make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	// 100 symbols / window 16 → 7 windows (last one short).
	if rep.Windows != 7 || rep.Retries != 0 || rep.Fallbacks != 0 {
		t.Fatalf("clean run report = %+v", rep)
	}
	if ft.pos != 100 {
		t.Fatalf("pos = %d, want 100", ft.pos)
	}
}

// TestHarnessTransientRetry pins the retry path: a fault detected only on
// attempt 0 costs exactly one rollback, and the window then commits on the
// fresh fault stream of attempt 1.
func TestHarnessTransientRetry(t *testing.T) {
	ft, in := newFake(t, func(pos uint64, attempt int) bool {
		return pos == 20 && attempt == 0
	})
	reg := telemetry.NewRegistry()
	h, err := NewHarness(ft, in, HarnessConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	h.Instrument(reg)
	rep, err := h.Run(context.Background(), make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 4 || rep.Retries != 1 || rep.Fallbacks != 0 {
		t.Fatalf("transient report = %+v", rep)
	}
	if rep.Faults.Detected != 1 || rep.Faults.TotalInjected() != 1 {
		t.Fatalf("fault stats = %+v", rep.Faults)
	}
	if in.Attempt() != 0 {
		t.Fatalf("attempt not reset after commit: %d", in.Attempt())
	}
	retries := -1.0
	for _, s := range reg.Snapshot() {
		if s.Name == MetricHarnessRetries {
			retries = s.Value
		}
	}
	if retries != 1 {
		t.Fatalf("telemetry retries = %g, want 1", retries)
	}
	if ft.pos != 64 {
		t.Fatalf("pos = %d, want 64", ft.pos)
	}
}

// TestHarnessPersistentFallback pins graceful degradation: a fault that
// fires on every attempt exhausts MaxRetries (defaulted to 2) and the window
// is replayed exactly once with injection suppressed.
func TestHarnessPersistentFallback(t *testing.T) {
	ft, in := newFake(t, func(pos uint64, attempt int) bool {
		return pos == 20 // every attempt
	})
	h, err := NewHarness(ft, in, HarnessConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(context.Background(), make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 4 || rep.Retries != 2 || rep.Fallbacks != 1 {
		t.Fatalf("persistent report = %+v", rep)
	}
	// Attempts 0, 1 and 2 each detected the fault once.
	if rep.Faults.Detected != 3 {
		t.Fatalf("detected = %d, want 3", rep.Faults.Detected)
	}
	// Exactly the degraded window ran suppressed.
	if ft.suppressed != 16 {
		t.Fatalf("suppressed steps = %d, want 16", ft.suppressed)
	}
	if in.Suppressed() {
		t.Fatal("injector left suppressed after fallback")
	}
	if ft.pos != 64 {
		t.Fatalf("pos = %d, want 64", ft.pos)
	}
}

// TestHarnessCrossCheck pins the silent-corruption escape counter: a target
// whose committed match ends disagree with the reference matcher is charged
// one mismatch per affected machine-window, and an agreeing target none.
func TestHarnessCrossCheck(t *testing.T) {
	input := []byte("xxxxaxxxxxxxxxxaxxxxxxxxxxxxxxxx") // 'a' at 4 and 15, both in window 0
	run := func(match func(b byte) bool) Report {
		ft, in := newFake(t, nil)
		ft.match = match
		h, err := NewHarness(ft, in, HarnessConfig{
			Window:    16,
			Reference: []*swmatch.Matcher{swmatch.MustNew("a")},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Run(context.Background(), input)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Faithful target: ends match the reference exactly → no mismatches.
	if rep := run(func(b byte) bool { return b == 'a' }); rep.Mismatches != 0 {
		t.Fatalf("faithful target charged %d mismatches", rep.Mismatches)
	}
	// Silently corrupted target: drops every match → one mismatching
	// machine-window (both escapes land in window 0).
	if rep := run(nil); rep.Mismatches != 1 {
		t.Fatalf("corrupted target charged %d mismatches, want 1", rep.Mismatches)
	}
}

func TestHarnessConfigErrors(t *testing.T) {
	ft, in := newFake(t, nil)
	if _, err := NewHarness(nil, in, HarnessConfig{}); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := NewHarness(ft, nil, HarnessConfig{}); err == nil {
		t.Fatal("nil injector accepted")
	}
	if _, err := NewHarness(ft, in, HarnessConfig{MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
	if _, err := NewHarness(ft, in, HarnessConfig{
		Reference: make([]*swmatch.Matcher, 3), // 3 refs for 1 machine
	}); err == nil {
		t.Fatal("reference length mismatch accepted")
	}
}

func TestHarnessCanceled(t *testing.T) {
	ft, in := newFake(t, nil)
	h, err := NewHarness(ft, in, HarnessConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Run(ctx, make([]byte, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ft.pos != 0 {
		t.Fatalf("canceled run still stepped to %d", ft.pos)
	}
}
