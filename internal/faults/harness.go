package faults

import (
	"context"
	"fmt"
	"time"

	"bvap/internal/swmatch"
	"bvap/internal/telemetry"
)

// Checkpoint is an opaque execution snapshot taken by a Target. Targets
// return their own concrete type; the harness only carries it between
// Checkpoint and Restore.
type Checkpoint any

// Target is the execution surface the Harness drives. hwsim.BVAPSystem
// implements it.
type Target interface {
	// Step consumes one input symbol (faults included, when an injector
	// is attached and not suppressed).
	Step(b byte)
	// Checkpoint snapshots the functional machine state (active states,
	// bit vectors, stream position, I/O occupancies). Monotone
	// observables — energy, cycle and symbol counters — are NOT part of
	// the snapshot: work discarded by a rollback stays charged, which is
	// exactly the re-execution overhead the resilience evaluation
	// measures.
	Checkpoint() Checkpoint
	// Restore rewinds to a snapshot taken on this target.
	Restore(Checkpoint)
	// Pos returns the committed stream position (symbols consumed since
	// start, rollbacks excluded).
	Pos() int
	// NumMachines returns the number of compiled machines.
	NumMachines() int
	// MatchEnds returns machine i's recorded absolute match-end offsets
	// (requires match recording to be enabled on the target).
	MatchEnds(machine int) []int
}

// HarnessConfig tunes the detect/retry/degrade loop.
type HarnessConfig struct {
	// Window is the checkpoint interval in symbols (default 256).
	Window int
	// MaxRetries bounds the re-executions of a window after a detection
	// before degrading to the clean fallback path (default 2).
	MaxRetries int
	// Backoff is the base delay between retries; attempt k waits
	// (k+1)·Backoff, canceled promptly by the context. Zero disables
	// waiting (simulation-speed retries).
	Backoff time.Duration
	// Reference optionally cross-checks committed output: entry i is the
	// independent software matcher for machine i (nil entries skipped).
	// Mismatches between the target's match ends and the reference count
	// as silent-corruption escapes. Requires the target to record match
	// ends.
	Reference []*swmatch.Matcher
}

// Report summarizes one harness run.
type Report struct {
	// Windows is the number of committed checkpoint windows.
	Windows uint64
	// Retries counts window re-executions triggered by detections.
	Retries uint64
	// Fallbacks counts windows that exhausted retries and were replayed
	// on the clean software path.
	Fallbacks uint64
	// Mismatches counts machine-windows whose committed match ends
	// disagreed with the reference matcher — silent corruption that
	// escaped detection and recovery.
	Mismatches uint64
	// Faults is the injector's final counter snapshot.
	Faults Stats
}

// Metric names exposed by Harness.Instrument.
const (
	MetricHarnessWindows    = "bvap_fault_windows_total"
	MetricHarnessRetries    = "bvap_fault_retries_total"
	MetricHarnessFallbacks  = "bvap_fault_fallbacks_total"
	MetricHarnessMismatches = "bvap_fault_mismatches_total"
)

// Harness executes an input stream on a fault-injected Target with
// checkpoint/rollback recovery: windows with detected faults are retried
// (fresh transient-fault draws per attempt) up to MaxRetries, then replayed
// with injection suppressed — the graceful degradation to the software NBVA
// engine, optionally cross-checked against the independent swmatch
// reference.
type Harness struct {
	target Target
	inj    *Injector
	cfg    HarnessConfig

	refLens []int // committed match-end count per machine

	tmWindows    *telemetry.Counter
	tmRetries    *telemetry.Counter
	tmFallbacks  *telemetry.Counter
	tmMismatches *telemetry.Counter
}

// NewHarness builds a harness over a target and its attached injector.
func NewHarness(t Target, inj *Injector, cfg HarnessConfig) (*Harness, error) {
	if t == nil {
		return nil, fmt.Errorf("faults: nil harness target")
	}
	if inj == nil {
		return nil, fmt.Errorf("faults: nil injector (use Target.Step directly for fault-free runs)")
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("faults: negative MaxRetries")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if len(cfg.Reference) > 0 && len(cfg.Reference) != t.NumMachines() {
		return nil, fmt.Errorf("faults: %d reference matchers for %d machines",
			len(cfg.Reference), t.NumMachines())
	}
	return &Harness{target: t, inj: inj, cfg: cfg}, nil
}

// Instrument attaches a telemetry registry: window, retry, fallback and
// mismatch counters accrue live during Run.
func (h *Harness) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		h.tmWindows, h.tmRetries, h.tmFallbacks, h.tmMismatches = nil, nil, nil, nil
		return
	}
	h.tmWindows = reg.Counter(MetricHarnessWindows, "committed resilience-harness windows")
	h.tmRetries = reg.Counter(MetricHarnessRetries, "window re-executions after fault detection")
	h.tmFallbacks = reg.Counter(MetricHarnessFallbacks, "windows degraded to the clean software path")
	h.tmMismatches = reg.Counter(MetricHarnessMismatches, "committed windows disagreeing with the reference matcher")
}

// Run processes input in checkpointed windows with detect/retry/degrade
// recovery. It returns early with the context's error when canceled; the
// partial Report is still meaningful.
func (h *Harness) Run(ctx context.Context, input []byte) (Report, error) {
	var rep Report
	t := h.target
	if len(h.cfg.Reference) > 0 && h.refLens == nil {
		h.refLens = make([]int, t.NumMachines())
		for i := range h.refLens {
			h.refLens[i] = len(t.MatchEnds(i))
		}
	}

	for start := 0; start < len(input); {
		if err := ctx.Err(); err != nil {
			rep.Faults = h.inj.Stats()
			return rep, fmt.Errorf("faults: harness canceled at offset %d: %w", start, err)
		}
		end := start + h.cfg.Window
		if end > len(input) {
			end = len(input)
		}
		window := input[start:end]
		windowPos := t.Pos()
		ck := t.Checkpoint()

		attempt := 0
		for {
			h.inj.SetAttempt(attempt)
			before := h.inj.Stats().Detected
			for _, b := range window {
				t.Step(b)
			}
			if h.inj.Stats().Detected == before {
				break // clean (or silently corrupted) window: commit
			}
			if attempt >= h.cfg.MaxRetries {
				// Degrade: replay the window on the clean software
				// path (the simulator's own AH-NBVA dataflow with
				// injection suppressed).
				t.Restore(ck)
				h.inj.Suppress(true)
				for _, b := range window {
					t.Step(b)
				}
				h.inj.Suppress(false)
				rep.Fallbacks++
				if h.tmFallbacks != nil {
					h.tmFallbacks.Inc()
				}
				break
			}
			t.Restore(ck)
			attempt++
			rep.Retries++
			if h.tmRetries != nil {
				h.tmRetries.Inc()
			}
			if err := h.backoff(ctx, attempt); err != nil {
				rep.Faults = h.inj.Stats()
				return rep, err
			}
		}
		h.inj.SetAttempt(0)

		rep.Windows++
		if h.tmWindows != nil {
			h.tmWindows.Inc()
		}
		if len(h.cfg.Reference) > 0 {
			rep.Mismatches += h.crossCheck(window, windowPos)
		}
		start = end
	}
	rep.Faults = h.inj.Stats()
	return rep, nil
}

// backoff waits (attempt)·Backoff, returning promptly on cancellation.
func (h *Harness) backoff(ctx context.Context, attempt int) error {
	if h.cfg.Backoff <= 0 {
		return nil
	}
	timer := time.NewTimer(time.Duration(attempt) * h.cfg.Backoff)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("faults: retry backoff canceled: %w", ctx.Err())
	case <-timer.C:
		return nil
	}
}

// crossCheck advances the reference matchers over a committed window and
// compares their match ends against the target's. It returns the number of
// mismatching machine-windows — corruption that escaped both detection and
// recovery.
func (h *Harness) crossCheck(window []byte, windowPos int) uint64 {
	var mismatches uint64
	for i, ref := range h.cfg.Reference {
		if ref == nil {
			continue
		}
		var want []int
		for j, b := range window {
			if ref.Step(b) {
				want = append(want, windowPos+j)
			}
		}
		got := h.target.MatchEnds(i)[h.refLens[i]:]
		h.refLens[i] = len(h.target.MatchEnds(i))
		if !equalInts(got, want) {
			mismatches++
			if h.tmMismatches != nil {
				h.tmMismatches.Inc()
			}
		}
	}
	return mismatches
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
