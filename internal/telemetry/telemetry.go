// Package telemetry is the stdlib-only observability layer of the
// repository: a metrics registry (counters, gauges and histograms with
// atomic hot paths and labeled families) plus a structured trace emitter
// (JSONL and Chrome trace_event output; see trace.go).
//
// The package exists so the simulator, the compiler and the CLI tools can
// expose per-stage counters and pipeline events as machine-readable
// artifacts (Prometheus text, JSON, Chrome traces) instead of hand-rolled
// strings. Design constraints, in order:
//
//  1. zero dependencies — only the Go standard library;
//  2. allocation-free hot paths — incrementing a resolved Counter,
//     FloatCounter, Gauge or Histogram never allocates and uses a single
//     atomic operation (plus a binary search for histograms);
//  3. deterministic exposition — Snapshot, WritePrometheus and WriteJSON
//     emit families in registration order and children in sorted label
//     order, so golden tests and diffs are stable.
//
// Labeled children are resolved once (outside the hot loop) via the *Vec
// types and then updated lock-free; resolution itself takes a lock and may
// allocate, which is why instrumented code caches the children it needs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (energy in pJ,
// seconds of wall time). Add with a negative delta is a programming error
// but is not checked on the hot path.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds f atomically (compare-and-swap loop).
func (c *FloatCounter) Add(f float64) { addFloat(&c.bits, f) }

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-value-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores f.
func (g *Gauge) Set(f float64) { g.bits.Store(math.Float64bits(f)) }

// Add adds f atomically.
func (g *Gauge) Add(f float64) { addFloat(&g.bits, f) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, f float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+f)) {
			return
		}
	}
}

// Exemplar ties one recent observation to the trace that produced it
// (OpenMetrics exemplar semantics): scrape the histogram, follow the
// trace id into bvapd's /debug/trace/{id} to see where the tail latency
// or energy went.
type Exemplar struct {
	Value    float64 `json:"value"`
	TraceID  string  `json:"trace_id"`
	UnixNano int64   `json:"unix_nano"`
}

// Histogram is a fixed-bucket distribution metric. Bucket upper bounds are
// inclusive (Prometheus "le" semantics); an implicit +Inf bucket catches
// the overflow. Observe is lock-free.
type Histogram struct {
	bounds   []float64 // sorted, immutable after construction
	counts   []atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Uint64 // float64 bits
	exemplar atomic.Pointer[Exemplar]
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; the +Inf bucket is last.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// replaces the histogram's exemplar with this observation (last-wins; one
// pointer allocation plus one atomic store on top of Observe, so callers
// on a traced path pay for the exemplar and the untraced path — empty
// traceID — pays nothing extra).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exemplar.Store(&Exemplar{Value: v, TraceID: traceID, UnixNano: time.Now().UnixNano()})
}

// Exemplar returns the most recent exemplar, or nil.
func (h *Histogram) Exemplar() *Exemplar { return h.exemplar.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// CumulativeCount returns the number of observations ≤ le, where le is one
// of the histogram's bucket bounds (any other value rounds down to the
// nearest bound below it; +Inf returns the total count). The SLO monitor
// derives latency-objective "good" counts this way without a snapshot
// allocation.
func (h *Histogram) CumulativeCount(le float64) uint64 {
	var cum uint64
	for i := range h.bounds {
		if h.bounds[i] > le {
			return cum
		}
		cum += h.counts[i].Load()
	}
	if math.IsInf(le, 1) {
		cum += h.counts[len(h.bounds)].Load()
	}
	return cum
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefaultStallBuckets is a power-of-two bucket ladder suited to per-step
// stall-cycle and occupancy distributions.
var DefaultStallBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindFloatCounter
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindFloatCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// labelSep joins label values into a child key; it cannot appear in UTF-8
// label values produced by this repository's instrumentation.
const labelSep = "\xff"

// family is one named metric family with zero or more labeled children.
type family struct {
	name      string
	help      string
	kind      kind
	labelKeys []string
	bounds    []float64 // histograms only

	mu       sync.Mutex
	children map[string]any
}

func (f *family) child(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindFloatCounter:
		c = &FloatCounter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	return c
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. Registration is idempotent: asking for an existing name
// returns the existing family (and panics if the kind or label keys
// differ, which is a programming error).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) family(name, help string, k kind, labelKeys []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with different kind or labels", name))
		}
		for i := range labelKeys {
			if f.labelKeys[i] != labelKeys[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      k,
		labelKeys: append([]string(nil), labelKeys...),
		bounds:    append([]float64(nil), bounds...),
		children:  map[string]any{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter returns the unlabeled counter with this name, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child("").(*Counter)
}

// FloatCounter returns the unlabeled float counter with this name.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	return r.family(name, help, kindFloatCounter, nil, nil).child("").(*FloatCounter)
}

// Gauge returns the unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child("").(*Gauge)
}

// Histogram returns the unlabeled histogram with this name. bounds are the
// inclusive bucket upper bounds; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, bounds).child("").(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelKeys, nil)}
}

// With resolves the child for the given label values (must match the label
// key count). Resolution locks and may allocate; cache the result outside
// hot loops.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(joinValues(v.f, values)).(*Counter)
}

// FloatCounterVec is a labeled float-counter family.
type FloatCounterVec struct{ f *family }

// FloatCounterVec registers (or returns) a labeled float counter family.
func (r *Registry) FloatCounterVec(name, help string, labelKeys ...string) *FloatCounterVec {
	return &FloatCounterVec{r.family(name, help, kindFloatCounter, labelKeys, nil)}
}

// With resolves the child for the given label values.
func (v *FloatCounterVec) With(values ...string) *FloatCounter {
	return v.f.child(joinValues(v.f, values)).(*FloatCounter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelKeys, nil)}
}

// With resolves the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(joinValues(v.f, values)).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labelKeys, bounds)}
}

// With resolves the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(joinValues(v.f, values)).(*Histogram)
}

func joinValues(f *family, values []string) string {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	return strings.Join(values, labelSep)
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound; +Inf for the last bucket.
	UpperBound float64 `json:"le"`
	// Count is cumulative: observations ≤ UpperBound.
	Count uint64 `json:"count"`
}

// Sample is one metric instance at snapshot time.
type Sample struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value; for histograms it is the sum of
	// observations.
	Value float64 `json:"value"`
	// Count is the number of observations (histograms only).
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	// Exemplar is the histogram's most recent traced observation, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot returns the current value of every registered metric, families
// in registration order, children sorted by label values.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var out []Sample
	for _, f := range families {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		for i, k := range keys {
			s := Sample{Name: f.name, Kind: f.kind.String(), Help: f.help}
			if len(f.labelKeys) > 0 {
				s.Labels = map[string]string{}
				for j, v := range strings.Split(k, labelSep) {
					if j < len(f.labelKeys) {
						s.Labels[f.labelKeys[j]] = v
					}
				}
			}
			switch c := children[i].(type) {
			case *Counter:
				s.Value = float64(c.Value())
			case *FloatCounter:
				s.Value = c.Value()
			case *Gauge:
				s.Value = c.Value()
			case *Histogram:
				s.Value = c.Sum()
				s.Count = c.Count()
				s.Exemplar = c.Exemplar()
				cum := uint64(0)
				for bi := range c.counts {
					cum += c.counts[bi].Load()
					ub := math.Inf(1)
					if bi < len(c.bounds) {
						ub = c.bounds[bi]
					}
					s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: cum})
				}
			}
			out = append(out, s)
		}
	}
	return out
}
