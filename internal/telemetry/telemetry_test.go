package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total", "steps")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same child.
	if r.Counter("steps_total", "steps") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestFloatCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	fc := r.FloatCounter("energy_pj", "energy")
	fc.Add(1.5)
	fc.Add(2.25)
	if fc.Value() != 3.75 {
		t.Fatalf("float counter = %v", fc.Value())
	}
	g := r.Gauge("occupancy", "active states")
	g.Set(7)
	g.Add(3)
	if g.Value() != 10 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stalls", "stall cycles", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 108 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot entries = %d", len(snap))
	}
	s := snap[0]
	// Cumulative: ≤1 → 2, ≤4 → 3, ≤16 → 4, +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	vec := r.FloatCounterVec("stage_energy_pj", "per-stage energy", "stage")
	vec.With("match").Add(10)
	vec.With("transition").Add(20)
	vec.With("match").Add(5)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot entries = %d", len(snap))
	}
	// Children sorted by label value: match before transition.
	if snap[0].Labels["stage"] != "match" || snap[0].Value != 15 {
		t.Errorf("sample 0 = %+v", snap[0])
	}
	if snap[1].Labels["stage"] != "transition" || snap[1].Value != 20 {
		t.Errorf("sample 1 = %+v", snap[1])
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("y", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	vec.With("only-one")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	fc := r.FloatCounter("f", "")
	h := r.Histogram("h", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				fc.Add(0.5)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if fc.Value() != 4000 {
		t.Errorf("float counter = %v", fc.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_second", "").Inc()
		r.Counter("a_first", "").Inc()
		vec := r.GaugeVec("v", "", "k")
		vec.With("z").Set(1)
		vec.With("a").Set(2)
		var sb strings.Builder
		for _, s := range r.Snapshot() {
			sb.WriteString(s.Name)
			sb.WriteString(s.Labels["k"])
			sb.WriteByte(';')
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("snapshot order not deterministic: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "b_second;a_first;") {
		t.Fatalf("families not in registration order: %q", a)
	}
}
