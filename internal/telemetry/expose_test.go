package telemetry

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one Prometheus text-format sample line:
// name{label="value",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

func buildExpositionRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bvap_sim_symbols_total", "symbols processed").Add(1024)
	stage := r.FloatCounterVec("bvap_stage_energy_picojoules_total", "per-stage energy", "stage")
	stage.With("match").Add(12.5)
	stage.With("bvm_swap").Add(0.125)
	r.Gauge("bvap_engine_active_states", "active NFA states").Set(3)
	h := r.HistogramVec("bvap_stall_cycles", "per-step stall cycles", []float64{1, 4, 16}, "array")
	h.With("0").Observe(0)
	h.With("0").Observe(6)
	return r
}

// TestPrometheusOutputParses is the golden-format test of the satellite
// checklist: every non-comment line of the Prometheus exposition must parse
// as `name{labels} value`, and comment lines must be # HELP / # TYPE.
func TestPrometheusOutputParses(t *testing.T) {
	var sb strings.Builder
	if err := buildExpositionRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as a Prometheus sample: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines")
	}
	// Spot-check the expected series are present.
	for _, want := range []string{
		"bvap_sim_symbols_total 1024",
		`bvap_stage_energy_picojoules_total{stage="match"} 12.5`,
		`bvap_stall_cycles_bucket{array="0",le="+Inf"} 2`,
		`bvap_stall_cycles_sum{array="0"} 6`,
		`bvap_stall_cycles_count{array="0"} 2`,
		"# TYPE bvap_stall_cycles histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q;\n%s", want, out)
		}
	}
}

func TestJSONOutputValid(t *testing.T) {
	var sb strings.Builder
	if err := buildExpositionRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("invalid JSON: %s", sb.String())
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("no metrics in JSON document")
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "bvap_stage_energy_picojoules_total" && m.Labels["stage"] == "match" {
			found = true
			if m.Value != 12.5 {
				t.Errorf("match energy = %v", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("labeled sample missing from JSON output")
	}
}
