package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promLine matches one Prometheus text-format sample line:
// name{label="value",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

func buildExpositionRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bvap_sim_symbols_total", "symbols processed").Add(1024)
	stage := r.FloatCounterVec("bvap_stage_energy_picojoules_total", "per-stage energy", "stage")
	stage.With("match").Add(12.5)
	stage.With("bvm_swap").Add(0.125)
	r.Gauge("bvap_engine_active_states", "active NFA states").Set(3)
	h := r.HistogramVec("bvap_stall_cycles", "per-step stall cycles", []float64{1, 4, 16}, "array")
	h.With("0").Observe(0)
	h.With("0").Observe(6)
	return r
}

// TestPrometheusOutputParses is the golden-format test of the satellite
// checklist: every non-comment line of the Prometheus exposition must parse
// as `name{labels} value`, and comment lines must be # HELP / # TYPE.
func TestPrometheusOutputParses(t *testing.T) {
	var sb strings.Builder
	if err := buildExpositionRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as a Prometheus sample: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines")
	}
	// Spot-check the expected series are present.
	for _, want := range []string{
		"bvap_sim_symbols_total 1024",
		`bvap_stage_energy_picojoules_total{stage="match"} 12.5`,
		`bvap_stall_cycles_bucket{array="0",le="+Inf"} 2`,
		`bvap_stall_cycles_sum{array="0"} 6`,
		`bvap_stall_cycles_count{array="0"} 2`,
		"# TYPE bvap_stall_cycles histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q;\n%s", want, out)
		}
	}
}

func TestJSONOutputValid(t *testing.T) {
	var sb strings.Builder
	if err := buildExpositionRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("invalid JSON: %s", sb.String())
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("no metrics in JSON document")
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "bvap_stage_energy_picojoules_total" && m.Labels["stage"] == "match" {
			found = true
			if m.Value != 12.5 {
				t.Errorf("match energy = %v", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("labeled sample missing from JSON output")
	}
}

// parsePromHistogram pulls one histogram family back out of a Prometheus
// text exposition: le → cumulative count, plus _sum and _count.
func parsePromHistogram(t *testing.T, out, name string) (buckets map[string]uint64, sum float64, count uint64) {
	t.Helper()
	buckets = map[string]uint64{}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			rest := strings.TrimPrefix(line, name+"_bucket{")
			end := strings.Index(rest, "}")
			fields := strings.Fields(rest[end+1:])
			c, err := strconv.ParseUint(fields[0], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			le := ""
			for _, kv := range strings.Split(rest[:end], ",") {
				if strings.HasPrefix(kv, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(kv, `le="`), `"`)
				}
			}
			buckets[le] = c
		case strings.HasPrefix(line, name+"_sum"):
			f, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
			sum = f
		case strings.HasPrefix(line, name+"_count"):
			c, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = c
		}
	}
	return buckets, sum, count
}

// TestHistogramExpositionRoundTrip drives a histogram with a known value
// set and checks both exposition formats agree with hand-computed
// cumulative buckets, the +Inf catch-all, and _sum/_count.
func TestHistogramExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bvap_rt_ms", "round-trip test", []float64{1, 5, 25})
	values := []float64{0.5, 1, 3, 5, 7, 30, 1000}
	wantSum := 0.0
	for _, v := range values {
		h.Observe(v)
		wantSum += v
	}
	// Inclusive le semantics: le=1 → {0.5, 1}, le=5 → +{3, 5}, le=25 → +{7},
	// +Inf → everything.
	wantCum := map[string]uint64{"1": 2, "5": 4, "25": 5, "+Inf": 7}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	buckets, sum, count := parsePromHistogram(t, sb.String(), "bvap_rt_ms")
	if len(buckets) != len(wantCum) {
		t.Fatalf("bucket lines = %v, want %v", buckets, wantCum)
	}
	for le, want := range wantCum {
		if buckets[le] != want {
			t.Errorf("bucket le=%q = %d, want %d", le, buckets[le], want)
		}
	}
	if sum != wantSum || count != uint64(len(values)) {
		t.Fatalf("_sum/_count = %v/%d, want %v/%d", sum, count, wantSum, len(values))
	}

	// The JSON document must agree, with +Inf mapped to MaxFloat64.
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 1 {
		t.Fatalf("metrics = %d, want 1", len(doc.Metrics))
	}
	m := doc.Metrics[0]
	if m.Count != uint64(len(values)) || m.Value != wantSum {
		t.Fatalf("JSON count/sum = %d/%v", m.Count, m.Value)
	}
	if len(m.Buckets) != 4 {
		t.Fatalf("JSON buckets = %d, want 4", len(m.Buckets))
	}
	last := m.Buckets[len(m.Buckets)-1]
	if last.UpperBound != math.MaxFloat64 || last.Count != 7 {
		t.Fatalf("JSON +Inf bucket = %+v", last)
	}
	prev := uint64(0)
	for _, b := range m.Buckets {
		if b.Count < prev {
			t.Fatalf("JSON buckets not cumulative: %+v", m.Buckets)
		}
		prev = b.Count
	}
}

// TestHistogramExpositionUnderConcurrentObserve hammers one histogram from
// several goroutines while repeatedly rendering it, checking every
// exposition is internally consistent: buckets cumulative, +Inf == _count,
// and the final totals exact.
func TestHistogramExpositionUnderConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bvap_conc_ms", "", []float64{1, 10, 100})
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64((g*perG + i) % 200))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		buckets, _, count := parsePromHistogram(t, sb.String(), "bvap_conc_ms")
		prev := uint64(0)
		for _, le := range []string{"1", "10", "100", "+Inf"} {
			if buckets[le] < prev {
				t.Fatalf("buckets not cumulative mid-run: %v", buckets)
			}
			prev = buckets[le]
		}
		// Observe bumps the bucket before the total count, so a concurrent
		// snapshot may see +Inf ahead of _count but never behind it.
		if buckets["+Inf"] < count {
			t.Fatalf("+Inf bucket %d < _count %d", buckets["+Inf"], count)
		}
		select {
		case <-done:
			var final strings.Builder
			if err := r.WritePrometheus(&final); err != nil {
				t.Fatal(err)
			}
			buckets, sum, count := parsePromHistogram(t, final.String(), "bvap_conc_ms")
			total := uint64(goroutines * perG)
			if count != total || buckets["+Inf"] != total {
				t.Fatalf("final count = %d, +Inf = %d, want %d", count, buckets["+Inf"], total)
			}
			// Each goroutine observes 0..199 cycling: per 200 observations,
			// 2 values ≤ 1 (0 and 1), 11 ≤ 10, 101 ≤ 100.
			cycles := total / 200
			if buckets["1"] != 2*cycles || buckets["10"] != 11*cycles || buckets["100"] != 101*cycles {
				t.Fatalf("final buckets = %v", buckets)
			}
			wantSum := float64(cycles) * (199.0 * 200.0 / 2.0)
			if sum != wantSum {
				t.Fatalf("final sum = %v, want %v", sum, wantSum)
			}
			return
		default:
		}
	}
}

func TestOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bvap_serve_scan_duration_ms", "scan latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.ObserveExemplar(42, "00000000deadbeef")
	h.ObserveExemplar(3, "") // empty trace id: no exemplar replacement

	ex := h.Exemplar()
	if ex == nil || ex.Value != 42 || ex.TraceID != "00000000deadbeef" {
		t.Fatalf("Exemplar() = %+v", ex)
	}

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics output missing # EOF terminator:\n%s", out)
	}
	// The exemplar must sit on exactly the bucket containing 42 (le=100).
	wantLine := `bvap_serve_scan_duration_ms_bucket{le="100"} 3 # {trace_id="00000000deadbeef"} 42`
	if !strings.Contains(out, wantLine) {
		t.Fatalf("OpenMetrics missing exemplar line %q:\n%s", wantLine, out)
	}
	if strings.Count(out, "# {") != 1 {
		t.Fatalf("exemplar rendered on more than one bucket:\n%s", out)
	}
	if !strings.Contains(out, `bvap_serve_scan_duration_ms_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}

	// Classic Prometheus output must stay exemplar-free (0.0.4 scrapers
	// reject the OpenMetrics syntax).
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# {") {
		t.Fatalf("classic Prometheus exposition carries exemplar syntax:\n%s", sb.String())
	}

	// And the JSON view carries it structurally.
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics[0].Exemplar == nil || doc.Metrics[0].Exemplar.TraceID != "00000000deadbeef" {
		t.Fatalf("JSON exemplar = %+v", doc.Metrics[0].Exemplar)
	}
}
