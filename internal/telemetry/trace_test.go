package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceValid is the satellite golden test: the Chrome trace
// document must be valid JSON and every event must carry the required
// ph/ts/name keys.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatChrome)
	sp := tr.Span("compile", "compiler").SetArg("patterns", 3)
	tr.Instant("rewrite_decision", "compiler", map[string]any{"pattern": "a{100}", "split": true})
	tr.CounterAt(42, "active_states", map[string]float64{"states": 7})
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !json.Valid(raw) {
		t.Fatalf("invalid trace JSON: %s", raw)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "name"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %v missing required key %q", ev, key)
			}
		}
		phases[ev["ph"].(string)] = true
	}
	for _, ph := range []string{"X", "i", "C"} {
		if !phases[ph] {
			t.Errorf("trace missing a %q event", ph)
		}
	}
}

func TestJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)
	tr.Instant("a", "cat", nil)
	tr.InstantAt(10, "b", "cat", map[string]any{"k": "v"})
	tr.Span("s", "cat").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if ev.Name == "" || ev.Ph == "" {
			t.Errorf("line %q missing name/ph", line)
		}
	}
}

// TestCounterSeriesAt covers the bulk slice-based counter emission the
// heatmap exporter uses: parallel keys/values pair up, extra entries beyond
// the shorter slice are dropped, and the serialized args are key-sorted.
func TestCounterSeriesAt(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)
	tr.CounterSeriesAt(128, "tile_occupancy", []string{"tile1", "tile0"}, []float64{2.5, 7})
	// Length mismatch: only the first value pairs.
	tr.CounterSeriesAt(256, "stall_cycles", []string{"bvm", "io_input"}, []float64{3})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ph != "C" || ev.Ts != 128 || ev.Name != "tile_occupancy" {
		t.Fatalf("event header: %+v", ev)
	}
	if ev.Args["tile0"] != 7.0 || ev.Args["tile1"] != 2.5 {
		t.Fatalf("args: %v", ev.Args)
	}
	// Serialized args are key-sorted regardless of slice order.
	if i0, i1 := strings.Index(lines[0], "tile0"), strings.Index(lines[0], "tile1"); i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("args not key-sorted: %s", lines[0])
	}
	var ev2 Event
	if err := json.Unmarshal([]byte(lines[1]), &ev2); err != nil {
		t.Fatal(err)
	}
	if len(ev2.Args) != 1 || ev2.Args["bvm"] != 3.0 {
		t.Fatalf("mismatched slices: %v", ev2.Args)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Instant("x", "", nil)
	tr.CounterAt(0, "x", nil)
	tr.CounterSeriesAt(0, "x", []string{"k"}, []float64{1})
	tr.Span("x", "").SetArg("k", 1).End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer misbehaved")
	}
}

func TestEmitAfterCloseDropped(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatChrome)
	tr.Instant("a", "", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	tr.Instant("late", "", nil)
	if buf.Len() != before {
		t.Fatal("event written after Close")
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("document invalid after Close")
	}
}
